// ssl_verify: the paper's §3.5.1 OpenSSL study, reproduced.
//
// A libfetch-style client retrieves a document over a miniature TLS stack.
// Its verification check contains the historical CVE-2008-5077-class bug:
// `if (!EVP_VerifyFinal(...))` treats the *exceptional* −1 result as success.
// The fig. 6 assertion — written in the client, instrumenting across the
// libssl/libcrypto boundary — catches the compromise the client itself
// cannot see.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "metrics/snapshot.h"
#include "queue/queue.h"
#include "runtime/runtime.h"
#include "support/log.h"
#include "sslsim/fetch.h"
#include "trace/replay.h"

namespace {

using namespace tesla;
using namespace tesla::sslsim;

class ViolationPrinter : public runtime::EventHandler {
 public:
  void OnViolation(const runtime::ClassInfo& cls, const runtime::Violation& violation) override {
    std::printf("  !! TESLA: %s — '%s'\n", runtime::ViolationKindName(violation.kind),
                violation.automaton.c_str());
    fired_.store(true, std::memory_order_relaxed);
  }
  // Atomic: with --queue-consumers > 1 violations are reported from several
  // drain threads.
  bool fired() const { return fired_.load(std::memory_order_relaxed); }
  void Reset() { fired_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> fired_{false};
};

// Writes the runtime's merged metrics snapshot to `path`: JSON when the path
// ends in ".json", Prometheus text exposition otherwise.
bool WriteMetrics(const char* path, const runtime::Runtime& rt) {
  const std::string name = path;
  const bool json = name.size() >= 5 && name.compare(name.size() - 5, 5, ".json") == 0;
  const metrics::Snapshot snapshot = rt.CollectMetrics();
  const std::string out = json ? metrics::ToJson(snapshot) : metrics::ToPrometheus(snapshot);
  std::FILE* file = std::fopen(path, "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "metrics: cannot open '%s' for writing\n", path);
    return false;
  }
  std::fwrite(out.data(), 1, out.size(), file);
  std::fclose(file);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace-out <path>: record the whole run and write a replayable capture.
  // --metrics-out <path>: write the metrics snapshot (.json → JSON, else
  // Prometheus text) after the fetches finish.
  // --async-queue: dispatch through tesla::queue drain threads instead of
  // inline on the fetching thread.
  // --queue-consumers=N: drain threads for --async-queue (shard-owning
  // multi-consumer dispatch; default 1).
  const char* trace_out = nullptr;
  const char* metrics_out = nullptr;
  bool async_queue = false;
  size_t queue_consumers = 1;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--async-queue") == 0) {
      async_queue = true;
    } else if (std::strncmp(argv[i], "--queue-consumers=", 18) == 0) {
      queue_consumers = static_cast<size_t>(std::strtoul(argv[i] + 18, nullptr, 10));
    }
  }

  // Violations are reported through our handler; silence the default log.
  SetLogLevel(LogLevel::kSilent);
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  if (trace_out != nullptr) {
    options.trace_mode = trace::TraceMode::kFullCapture;
  }
  if (metrics_out != nullptr) {
    options.metrics_mode = metrics::MetricsMode::kFull;
  }
  options.async_queue = async_queue;
  options.queue_consumers = queue_consumers;
  runtime::Runtime rt(options);

  auto manifest = FetchAssertions();
  if (!manifest.ok() || !rt.Register(manifest.value()).ok()) {
    std::fprintf(stderr, "failed to register the fig. 6 assertion\n");
    return 1;
  }
  ViolationPrinter printer;
  rt.AddHandler(&printer);
  runtime::ThreadContext ctx(rt);

  // With --async-queue the fetch path pays only an SPSC enqueue. Started
  // after Register(): consumer shard ownership is computed from the
  // compiled plan. Flush() is the checkpoint barrier before each violation
  // read below.
  std::unique_ptr<queue::EventQueue> queue;
  if (options.async_queue) {
    queue = std::make_unique<queue::EventQueue>(rt, queue::QueueOptions::FromRuntime(options));
    queue->Start();
  }
  auto checkpoint = [&queue] {
    if (queue != nullptr) {
      queue->Flush();
    }
  };

  std::printf("fig. 6 assertion registered:\n  %s\n\n",
              rt.automaton(0).source_text.c_str());

  SslInstrumentation instr{&rt, &ctx};
  FetchClient vulnerable_client(instr, SslConfig{});  // the buggy tri-state check

  std::printf("== fetching from an honest server ==\n");
  Server honest = Server::Honest(0x5eed, "<html>the real page</html>");
  FetchResult good = vulnerable_client.FetchDocument(honest);
  checkpoint();
  std::printf("  fetched: %s (EVP_VerifyFinal returned %lld)\n",
              good.document.c_str(), static_cast<long long>(good.verify_result));
  std::printf("  TESLA violations: %s\n\n", printer.fired() ? "YES" : "none");

  std::printf("== fetching from the malicious s_server (forged ASN.1 tag) ==\n");
  printer.Reset();
  Server malicious = Server::Malicious(0x5eed, "<html>attacker content</html>");
  FetchResult bad = vulnerable_client.FetchDocument(malicious);
  checkpoint();
  std::printf("  the client *believes* it fetched: %s\n", bad.document.c_str());
  std::printf("  EVP_VerifyFinal actually returned %lld (exceptional failure)\n",
              static_cast<long long>(bad.verify_result));
  std::printf("  TESLA violations: %s\n\n", printer.fired() ? "YES — compromise detected" : "none");
  bool caught = printer.fired();

  std::printf("== same malicious server, fixed client (verify != 1 rejected) ==\n");
  printer.Reset();
  SslConfig fixed;
  fixed.correct_verify_check = true;
  FetchClient fixed_client(instr, fixed);
  FetchResult rejected = fixed_client.FetchDocument(malicious);

  // Flush and stop before the verdicts: the capture and metrics below then
  // match an inline run exactly.
  if (queue != nullptr) {
    queue->Stop();
  }
  std::printf("  connection %s; TESLA violations: %s\n",
              rejected.ok ? "succeeded (!)" : "refused",
              printer.fired() ? "YES" : "none (no site reached)");

  if (trace_out != nullptr) {
    if (auto status = trace::WriteCapture(trace_out, "sslsim:fetch", rt); !status.ok()) {
      std::fprintf(stderr, "trace capture: %s\n", status.error().ToString().c_str());
      return 1;
    }
    std::printf("\ntrace capture written to %s (%llu events)\n", trace_out,
                static_cast<unsigned long long>(rt.stats().events));
  }
  if (metrics_out != nullptr) {
    if (!WriteMetrics(metrics_out, rt)) {
      return 1;
    }
    std::printf("\nmetrics written to %s\n", metrics_out);
  }

  return caught && !rejected.ok ? 0 : 1;
}
