// Quickstart: the complete TESLA pipeline on a small C-like program.
//
//   1. cfront compiles a program containing an inline temporal assertion;
//   2. the analyser emits the automaton manifest (the .tesla file);
//   3. the instrumenter weaves event hooks into the IR;
//   4. the interpreter runs the program with libtesla checking the automaton.
//
// The program models fig. 1: within `process_request`, a prior call to
// `security_check` with the same object must have returned 0. Run it and
// watch the buggy path get caught at run time.
#include <cstdio>

#include "cfront/cfront.h"
#include "instr/bridge.h"
#include "instr/instrument.h"
#include "ir/interp.h"
#include "runtime/runtime.h"

namespace {

constexpr const char* kProgram = R"(
int security_check(int object, int op) {
  // Deny odd objects; allow the rest.
  if (object % 2 == 1) { return 1; }
  return 0;
}

int do_work(int object) {
  return object * 10;
}

int process_request(int object, int op, int buggy) {
  int authorized = 0;
  if (!buggy) {
    authorized = security_check(object, op);
    if (authorized != 0) { return -1; }
  }
  // fig. 1: the check must have happened, for THIS object, earlier in this
  // call — whatever path got us here.
  TESLA_WITHIN(process_request, previously(security_check(object, ANY(int)) == 0));
  return do_work(object);
}
)";

}  // namespace

int main() {
  using namespace tesla;

  // 1. Compile (the analyser runs inside cfront on each TESLA_ macro).
  cfront::Compiler compiler;
  if (auto status = compiler.AddUnit(kProgram, "quickstart.c"); !status.ok()) {
    std::fprintf(stderr, "compile error: %s\n", status.error().ToString().c_str());
    return 1;
  }
  std::printf("=== 1. analyser output (.tesla manifest) ===\n%s\n",
              compiler.manifest().Serialize().c_str());

  // 2. Instrument the IR.
  auto instrumented =
      instr::Instrument(std::move(compiler.module()), compiler.manifest(),
                        std::vector<cfront::SiteInfo>(compiler.sites()));
  if (!instrumented.ok()) {
    std::fprintf(stderr, "instrument error: %s\n", instrumented.error().ToString().c_str());
    return 1;
  }
  std::printf("=== 2. instrumenter wove %llu hooks into the program ===\n\n",
              static_cast<unsigned long long>(instrumented->hooks_inserted));

  // 3. Run with libtesla listening.
  runtime::RuntimeOptions options;
  options.fail_stop = false;  // report instead of abort, so we can show both paths
  runtime::Runtime rt(options);
  if (auto status = rt.Register(compiler.manifest()); !status.ok()) {
    std::fprintf(stderr, "register error: %s\n", status.error().ToString().c_str());
    return 1;
  }
  runtime::ThreadContext ctx(rt);
  ir::Interpreter interp(instrumented->module);
  instr::RuntimeBridge bridge(*instrumented, rt, ctx);
  interp.SetDispatcher(&bridge);

  std::printf("=== 3. correct path: process_request(4, 1, buggy=0) ===\n");
  auto ok_run = interp.Call("process_request", {4, 1, 0});
  std::printf("returned %lld; violations so far: %llu\n\n",
              static_cast<long long>(ok_run.ok() ? *ok_run : -999),
              static_cast<unsigned long long>(rt.stats().violations));

  std::printf("=== 4. buggy path: process_request(4, 1, buggy=1) skips the check ===\n");
  auto bad_run = interp.Call("process_request", {4, 1, 1});
  std::printf("returned %lld; violations now: %llu\n\n",
              static_cast<long long>(bad_run.ok() ? *bad_run : -999),
              static_cast<unsigned long long>(rt.stats().violations));

  if (rt.stats().violations == 1) {
    std::printf("TESLA caught the missing security check. \\o/\n");
    return 0;
  }
  std::printf("unexpected violation count!\n");
  return 1;
}
