// mac_audit: the paper's §3.5.2 kernel study, reproduced.
//
// Boots the kernel simulator with the full 96-assertion TESLA suite (table 1)
// and the three historical bugs injected, runs the system-call workloads,
// and reports exactly what TESLA reported in 2013/14:
//   * kqueue polls sockets without a MAC check;
//   * one dynamic call graph authorises polls with the file's cached
//     credential instead of the active thread credential;
//   * a credential change forgets to set P_SUGID (an `eventually` property).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <memory>

#include "ipc/publisher.h"
#include "kernelsim/assertions.h"
#include "kernelsim/kernel.h"
#include "kernelsim/workloads.h"
#include "metrics/snapshot.h"
#include "profile/hints.h"
#include "profile/snapshot.h"
#include "queue/queue.h"
#include "runtime/runtime.h"
#include "support/log.h"
#include "trace/replay.h"

namespace {

using namespace tesla;
using namespace tesla::kernelsim;

class AuditLog : public runtime::EventHandler {
 public:
  void OnViolation(const runtime::ClassInfo& cls, const runtime::Violation& violation) override {
    std::printf("  !! TESLA: %s — automaton '%s' (%s)\n",
                runtime::ViolationKindName(violation.kind), violation.automaton.c_str(),
                violation.detail.c_str());
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  // Atomic: with --queue-consumers > 1 violations are reported from several
  // drain threads.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
};

// Writes the runtime's merged metrics snapshot to `path`: JSON when the path
// ends in ".json", Prometheus text exposition otherwise.
bool WriteMetrics(const char* path, const runtime::Runtime& rt) {
  const std::string name = path;
  const bool json = name.size() >= 5 && name.compare(name.size() - 5, 5, ".json") == 0;
  const metrics::Snapshot snapshot = rt.CollectMetrics();
  const std::string out = json ? metrics::ToJson(snapshot) : metrics::ToPrometheus(snapshot);
  std::FILE* file = std::fopen(path, "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "metrics: cannot open '%s' for writing\n", path);
    return false;
  }
  std::fwrite(out.data(), 1, out.size(), file);
  std::fclose(file);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace-out <path>: record the whole run and write a replayable capture.
  // --metrics-out <path>: write the metrics snapshot (.json → JSON, else
  // Prometheus text) after the workloads finish.
  // --async-queue: dispatch through tesla::queue drain threads instead of
  // inline on the simulated kernel's thread.
  // --queue-consumers=N: drain threads for --async-queue (shard-owning
  // multi-consumer dispatch; default 1).
  // --shm <name>: publish every event into a named shm segment instead of
  // checking in-process — an external sidecar (`tesla-trace attach <name>`)
  // performs all dispatch and reports the verdicts. At exit the publisher
  // waits for a sidecar to attach, so start one.
  // --profile-out <path>: profile the run and distil the workload profile
  // into a plan-hints file for --plan-hints on the next run.
  // --plan-hints <path>: load plan hints (from a previous --profile-out or
  // `tesla-trace profile --hints-out`) before Register().
  const char* trace_out = nullptr;
  const char* metrics_out = nullptr;
  const char* shm_name = nullptr;
  const char* profile_out = nullptr;
  const char* plan_hints = nullptr;
  bool async_queue = false;
  size_t queue_consumers = 1;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--shm") == 0 && i + 1 < argc) {
      shm_name = argv[++i];
    } else if (std::strcmp(argv[i], "--profile-out") == 0 && i + 1 < argc) {
      profile_out = argv[++i];
    } else if (std::strcmp(argv[i], "--plan-hints") == 0 && i + 1 < argc) {
      plan_hints = argv[++i];
    } else if (std::strcmp(argv[i], "--async-queue") == 0) {
      async_queue = true;
    } else if (std::strncmp(argv[i], "--queue-consumers=", 18) == 0) {
      queue_consumers = static_cast<size_t>(std::strtoul(argv[i] + 18, nullptr, 10));
    }
  }

  // Violations are reported through our handler; silence the default log.
  SetLogLevel(LogLevel::kSilent);
  runtime::RuntimeOptions options;
  options.fail_stop = false;  // audit mode: record every mismatch
  if (trace_out != nullptr) {
    options.trace_mode = trace::TraceMode::kFullCapture;
  }
  if (metrics_out != nullptr) {
    options.metrics_mode = metrics::MetricsMode::kFull;
  }
  options.async_queue = async_queue;
  options.queue_consumers = queue_consumers;
  if (profile_out != nullptr) {
    options.profile = true;
  }
  if (plan_hints != nullptr) {
    auto hints = profile::ReadHintsFile(plan_hints);
    if (!hints.ok()) {
      std::fprintf(stderr, "plan hints: %s\n", hints.error().ToString().c_str());
      return 1;
    }
    options.plan_hints = std::move(hints.value());
  }
  runtime::Runtime rt(options);

  auto manifest = KernelAssertions(kSetAll);
  if (!manifest.ok()) {
    std::fprintf(stderr, "assertion suite: %s\n", manifest.error().ToString().c_str());
    return 1;
  }
  if (auto status = rt.Register(manifest.value()); !status.ok()) {
    std::fprintf(stderr, "register: %s\n", status.error().ToString().c_str());
    return 1;
  }
  AuditLog audit;
  rt.AddHandler(&audit);

  // With --async-queue the kernel's instrumentation pays only an SPSC
  // enqueue; the drain threads absorb dispatch. Started after Register():
  // consumer shard ownership is computed from the compiled plan. Flush() is
  // the checkpoint barrier before each violation-count read below.
  std::unique_ptr<queue::EventQueue> queue;
  if (options.async_queue && shm_name == nullptr) {
    queue = std::make_unique<queue::EventQueue>(rt, queue::QueueOptions::FromRuntime(options));
    queue->Start();
  }

  // With --shm nothing is checked here: every event ships to the sidecar,
  // which owns the verdicts. Local violation counts stay zero by design.
  std::unique_ptr<ipc::ShmPublisher> publisher;
  if (shm_name != nullptr) {
    publisher = std::make_unique<ipc::ShmPublisher>(
        rt, shm_name, ipc::PublisherOptions::FromRuntime(options));
    if (auto status = publisher->Start("kernelsim:all"); !status.ok()) {
      std::fprintf(stderr, "shm publisher: %s\n", status.error().ToString().c_str());
      return 1;
    }
    std::printf("publishing events to shm '%s' — attach with: tesla-trace attach %s\n",
                shm_name, shm_name);
  }
  auto checkpoint = [&queue] {
    if (queue != nullptr) {
      queue->Flush();
    }
  };

  KernelConfig config;
  config.tesla = &rt;
  config.bugs.kqueue_missing_mac_check = true;
  config.bugs.poll_uses_file_credential = true;
  config.bugs.setuid_skips_sugid_flag = true;
  Kernel kernel(config);
  std::printf("kernel booted with %zu TESLA automata and 3 injected bugs%s\n\n",
              rt.class_count(),
              queue != nullptr ? " (async ingestion queue)" : "");

  Proc* proc = kernel.NewProcess(0);
  KThread td = kernel.NewThread(proc);

  std::printf("== background workloads (clean paths) ==\n");
  OpenCloseLoop(kernel, td, 200);
  BuildCompile(kernel, td, 20, 1);
  checkpoint();
  std::printf("  open/close and build traffic: %llu violations (expected 0)\n\n",
              static_cast<unsigned long long>(audit.count()));

  std::printf("== poll and select on a socket (checked paths) ==\n");
  int64_t sock = kernel.SysSocket(td);
  kernel.SysConnect(td, sock);
  kernel.SysSend(td, sock, 64);
  kernel.SysPoll(td, sock, 1);
  kernel.SysSelect(td, sock, 1);
  checkpoint();
  std::printf("  still %llu violations — poll/select do perform the MAC check\n\n",
              static_cast<unsigned long long>(audit.count()));

  std::printf("== bug 1: kqueue-based polling ==\n");
  kernel.SysKevent(td, sock, 1);
  checkpoint();

  std::printf("\n== bug 2: poll after a credential change ==\n");
  // The socket's cached f_cred now differs from the active credential; the
  // buggy call graph authorises with the wrong one.
  kernel.SysSetuid(td, 0);
  checkpoint();
  uint64_t before = audit.count();
  kernel.SysPoll(td, sock, 1);
  checkpoint();
  if (audit.count() == before) {
    std::printf("  (no violation reported?)\n");
  }

  std::printf("\n== bug 3: setuid without P_SUGID (eventually-property) ==\n");
  kernel.SysSetuid(td, 5);

  // Flush and stop before the summary: every enqueued event is dispatched,
  // so the stats, capture and metrics below match an inline run.
  if (queue != nullptr) {
    queue->Stop();
  }
  if (publisher != nullptr) {
    const ipc::PublisherStats stats = publisher->stats();
    std::printf("\n== shm publisher ==\n");
    std::printf("  published %llu events (%llu dropped), waiting for the sidecar...\n",
                static_cast<unsigned long long>(stats.published),
                static_cast<unsigned long long>(stats.dropped));
    publisher->Stop();  // blocks until a consumer has attached
    std::printf("  segment closed; the sidecar owns the verdicts\n");
    return 0;  // violation counting happened out-of-process
  }

  std::printf("\n== audit summary ==\n");
  std::printf("  violations: %llu (3 distinct bugs)\n",
              static_cast<unsigned long long>(audit.count()));
  std::printf("  events examined: %llu, transitions: %llu, instances: %llu (+%llu clones)\n",
              static_cast<unsigned long long>(rt.stats().events),
              static_cast<unsigned long long>(rt.stats().transitions),
              static_cast<unsigned long long>(rt.stats().instances_created),
              static_cast<unsigned long long>(rt.stats().instances_cloned));
  if (trace_out != nullptr) {
    if (auto status = trace::WriteCapture(trace_out, "kernelsim:all", rt); !status.ok()) {
      std::fprintf(stderr, "trace capture: %s\n", status.error().ToString().c_str());
      return 1;
    }
    std::printf("  trace capture written to %s (%llu events)\n", trace_out,
                static_cast<unsigned long long>(rt.stats().events));
  }
  if (metrics_out != nullptr) {
    if (!WriteMetrics(metrics_out, rt)) {
      return 1;
    }
    std::printf("  metrics written to %s\n", metrics_out);
  }
  if (profile_out != nullptr) {
    const profile::Snapshot snapshot = rt.CollectProfile();
    const profile::PlanHints hints = profile::HintsFromSnapshot(snapshot);
    if (auto status = profile::WriteHintsFile(profile_out, hints); !status.ok()) {
      std::fprintf(stderr, "profile: %s\n", status.error().ToString().c_str());
      return 1;
    }
    std::printf("  plan hints for %llu classes written to %s (index_scans this run: %llu)\n",
                static_cast<unsigned long long>(hints.classes.size()), profile_out,
                static_cast<unsigned long long>(rt.stats().index_scans));
  }

  // The sugid bug fires once per setuid call (two calls above).
  return audit.count() >= 3 ? 0 : 1;
}
