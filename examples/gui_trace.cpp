// gui_trace: the paper's §3.5.3 GNUstep study, reproduced.
//
// TESLA as an *introspection* tool: the fig. 8 assertion instruments ~110
// AppKit methods through the Objective-C runtime's interposition table, the
// automaton accepts everything (it is a tracing net, not a checker), and a
// custom handler records the event stream. Analysing the trace reveals the
// cursor push/pop bug: mouse-entered events not paired with mouse-exited
// events push duplicate cursors, leaving the UI in the wrong state.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "metrics/snapshot.h"
#include "objsim/appkit.h"
#include "objsim/trace.h"
#include "queue/queue.h"
#include "runtime/runtime.h"
#include "trace/replay.h"

namespace {

using namespace tesla;
using namespace tesla::objsim;

std::vector<UiEvent> MouseSweep(int steps) {
  std::vector<UiEvent> events;
  for (int i = 0; i < steps; i++) {
    events.push_back({UiEvent::Kind::kMouseMove, (i % 6) * 100 + 50, 50});
  }
  return events;
}

// Writes the runtime's merged metrics snapshot to `path`: JSON when the path
// ends in ".json", Prometheus text exposition otherwise.
bool WriteMetrics(const char* path, const runtime::Runtime& rt) {
  const std::string name = path;
  const bool json = name.size() >= 5 && name.compare(name.size() - 5, 5, ".json") == 0;
  const metrics::Snapshot snapshot = rt.CollectMetrics();
  const std::string out = json ? metrics::ToJson(snapshot) : metrics::ToPrometheus(snapshot);
  std::FILE* file = std::fopen(path, "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "metrics: cannot open '%s' for writing\n", path);
    return false;
  }
  std::fwrite(out.data(), 1, out.size(), file);
  std::fclose(file);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace-out <path>: record the whole run and write a replayable capture.
  // --metrics-out <path>: write the metrics snapshot (.json → JSON, else
  // Prometheus text) after the session ends.
  // --async-queue: dispatch through tesla::queue drain threads instead of
  // inline on the run-loop thread.
  // --queue-consumers=N: drain threads for --async-queue (shard-owning
  // multi-consumer dispatch; default 1).
  const char* trace_out = nullptr;
  const char* metrics_out = nullptr;
  bool async_queue = false;
  size_t queue_consumers = 1;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--async-queue") == 0) {
      async_queue = true;
    } else if (std::strncmp(argv[i], "--queue-consumers=", 18) == 0) {
      queue_consumers = static_cast<size_t>(std::strtoul(argv[i] + 18, nullptr, 10));
    }
  }

  runtime::RuntimeOptions options;
  options.fail_stop = false;
  if (trace_out != nullptr) {
    options.trace_mode = tesla::trace::TraceMode::kFullCapture;
  }
  if (metrics_out != nullptr) {
    options.metrics_mode = metrics::MetricsMode::kFull;
  }
  options.async_queue = async_queue;
  options.queue_consumers = queue_consumers;
  runtime::Runtime tesla_rt(options);
  runtime::ThreadContext ctx(tesla_rt);

  ObjcRuntime objc(TraceMode::kTesla);
  AppKitConfig config;
  config.cursor_unbalanced_bug = true;  // the June-2013 GNUstep bug
  AppKit app(objc, config);

  auto installed = GuiTesla::Install(tesla_rt, ctx, app);
  if (!installed.ok()) {
    std::fprintf(stderr, "install: %s\n", installed.error().ToString().c_str());
    return 1;
  }
  GuiTesla& tesla = **installed;
  tesla.EnableTraceRecording(true);

  // With --async-queue the interposed AppKit messages pay only an SPSC
  // enqueue; Stop() below flushes before the trace is analysed. Started
  // after Install(): consumer shard ownership is computed from the
  // compiled plan.
  std::unique_ptr<queue::EventQueue> queue;
  if (options.async_queue) {
    queue = std::make_unique<queue::EventQueue>(
        tesla_rt, queue::QueueOptions::FromRuntime(options));
    queue->Start();
  }

  std::printf("instrumented %zu selectors via runtime interposition (fig. 8)\n\n",
              app.InstrumentedSelectors().size());

  // Drive the app: the user sweeps the mouse across views for a few frames.
  std::vector<UiEvent> sweep = MouseSweep(18);
  for (int frame = 0; frame < 6; frame++) {
    app.RunLoopIteration(std::span<const UiEvent>(sweep.data(), sweep.size()));
  }

  // Flush and stop before the analysis: every interposed message has been
  // dispatched, so the trace below matches an inline run.
  if (queue != nullptr) {
    queue->Stop();
  }

  std::printf("run-loop iterations: %llu, messages traced: %llu, violations: %llu\n\n",
              static_cast<unsigned long long>(app.run_loop()->iterations),
              static_cast<unsigned long long>(tesla.total_events()),
              static_cast<unsigned long long>(tesla_rt.stats().violations));

  // The §3.5.3 analysis: pair pushes with pops per iteration.
  std::printf("cursor stack balance per run-loop iteration (push - pop):\n");
  int64_t total_imbalance = 0;
  for (const auto& [iteration, delta] : tesla.CursorImbalanceByIteration()) {
    std::printf("  iteration %llu: %+lld%s\n", static_cast<unsigned long long>(iteration),
                static_cast<long long>(delta), delta > 1 ? "   <-- unbalanced!" : "");
    total_imbalance += delta;
  }
  std::printf("\ncursor stack depth after the session: %zu (pushes %llu, pops %llu)\n",
              app.cursor_stack_depth(), static_cast<unsigned long long>(app.cursor_pushes()),
              static_cast<unsigned long long>(app.cursor_pops()));

  // Show a slice of the recorded trace, as handed to the GNUstep developers.
  std::printf("\nfirst cursor events in the trace:\n");
  int shown = 0;
  for (const TraceEvent& event : tesla.trace()) {
    if (event.selector == "push" || event.selector == "pop" ||
        event.selector == "mouseEntered" || event.selector == "mouseExited") {
      std::printf("  [iter %llu] %-14s receiver #%llu\n",
                  static_cast<unsigned long long>(event.iteration), event.selector.c_str(),
                  static_cast<unsigned long long>(event.receiver));
      if (++shown == 14) {
        break;
      }
    }
  }

  // §3.5.3's second insight: profiling exposes optimisation opportunities.
  auto profile = tesla.AnalyseSaveRestorePairs();
  std::printf("\ngraphics-state profile: %llu save/restore pairs, %llu elidable\n"
              "(only colour/position changed in between — \"before examining these traces\n"
              "it was not obvious that this would be a worthwhile change\")\n",
              static_cast<unsigned long long>(profile.total_pairs),
              static_cast<unsigned long long>(profile.elidable_pairs));

  std::printf("\ndiagnosis: %s\n",
              total_imbalance > 1
                  ? "mouse-entered events are not correctly paired with mouse-exited "
                    "events;\nthe same cursors are pushed onto the cursor stack multiple times."
                  : "cursor traffic is balanced.");
  if (trace_out != nullptr) {
    if (auto status = tesla::trace::WriteCapture(trace_out, "objsim:gui", tesla_rt);
        !status.ok()) {
      std::fprintf(stderr, "trace capture: %s\n", status.error().ToString().c_str());
      return 1;
    }
    std::printf("\ntrace capture written to %s (%llu events)\n", trace_out,
                static_cast<unsigned long long>(tesla_rt.stats().events));
  }
  if (metrics_out != nullptr) {
    if (!WriteMetrics(metrics_out, tesla_rt)) {
      return 1;
    }
    std::printf("\nmetrics written to %s\n", metrics_out);
  }

  return total_imbalance > 1 ? 0 : 1;
}
