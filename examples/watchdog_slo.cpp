// watchdog_slo: timed assertions (within_ms / rate) over the kernelsim
// watchdog service loop.
//
// The kernel's watchdog SLO says: once the service loop arms the hardware
// watchdog it must pat it within 10 ms, and a healthy pass never fields more
// than 8 device kicks in one 10 ms window. Neither property is an *ordering*
// — every event happens, in the right order — so no classic TESLA assertion
// can see the bug this demo injects: a retry loop that stalls the service
// thread 15 ms between arm and pat. The kSetTimed assertions catch it as
// kDeadlineExpired, fired by the deadline wheel when the (too-late) pat
// event's timestamp lands past the armed deadline.
//
// The kernel runs on a virtual clock wired into RuntimeOptions::now_ns, so
// runs are deterministic: the same flags produce the same verdicts, and a
// --trace-out capture replays to byte-identical timed verdicts from the
// recorded timestamps (no wall clock involved anywhere).
//
//   (no flags)      clean run: 0 violations, exit 0
//   --bug           inject the slow-service stall: exit 0 iff within_ms fires
//   --storm         9 kicks per pass: exit 0 iff rate() fires
//   --async-queue   dispatch through tesla::queue drain threads
//   --queue-consumers=N   drain threads for --async-queue
//   --trace-out <path>    write a replayable capture (TSLATRC v6: records
//                         carry the virtual-clock timestamps)
//   --metrics-out <path>  write the metrics snapshot (tesla_deadline_* rows)
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "kernelsim/assertions.h"
#include "kernelsim/kernel.h"
#include "kernelsim/workloads.h"
#include "metrics/snapshot.h"
#include "queue/queue.h"
#include "runtime/runtime.h"
#include "support/log.h"
#include "trace/replay.h"

namespace {

using namespace tesla;
using namespace tesla::kernelsim;

class SloLog : public runtime::EventHandler {
 public:
  void OnViolation(const runtime::ClassInfo& cls, const runtime::Violation& violation) override {
    std::printf("  !! TESLA: %s — automaton '%s' (%s)\n",
                runtime::ViolationKindName(violation.kind), violation.automaton.c_str(),
                violation.detail.c_str());
    if (violation.kind == runtime::ViolationKind::kDeadlineExpired) {
      deadline_.fetch_add(1, std::memory_order_relaxed);
    }
    if (violation.kind == runtime::ViolationKind::kRateExceeded) {
      rate_.fetch_add(1, std::memory_order_relaxed);
    }
    total_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t deadline() const { return deadline_.load(std::memory_order_relaxed); }
  uint64_t rate() const { return rate_.load(std::memory_order_relaxed); }
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> deadline_{0};
  std::atomic<uint64_t> rate_{0};
  std::atomic<uint64_t> total_{0};
};

}  // namespace

int main(int argc, char** argv) {
  const char* trace_out = nullptr;
  const char* metrics_out = nullptr;
  bool bug = false;
  bool storm = false;
  bool async_queue = false;
  size_t queue_consumers = 1;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--bug") == 0) {
      bug = true;
    } else if (std::strcmp(argv[i], "--storm") == 0) {
      storm = true;
    } else if (std::strcmp(argv[i], "--async-queue") == 0) {
      async_queue = true;
    } else if (std::strncmp(argv[i], "--queue-consumers=", 18) == 0) {
      queue_consumers = static_cast<size_t>(std::strtoul(argv[i] + 18, nullptr, 10));
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    }
  }

  SetLogLevel(LogLevel::kSilent);

  // The virtual clock: kernelsim advances it as simulated work happens and
  // every TESLA event is stamped from it — determinism end to end.
  static uint64_t clock_ns = 1'000'000'000;  // boot at t=1s, away from ts==0
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.now_ns = [] { return clock_ns; };
  options.async_queue = async_queue;
  options.queue_consumers = queue_consumers;
  if (trace_out != nullptr) {
    options.trace_mode = trace::TraceMode::kFullCapture;
  }
  if (metrics_out != nullptr) {
    options.metrics_mode = metrics::MetricsMode::kCounters;
  }
  runtime::Runtime rt(options);

  auto manifest = KernelAssertions(kSetTimed);
  if (!manifest.ok()) {
    std::fprintf(stderr, "assertion suite: %s\n", manifest.error().ToString().c_str());
    return 1;
  }
  if (auto status = rt.Register(manifest.value()); !status.ok()) {
    std::fprintf(stderr, "register: %s\n", status.error().ToString().c_str());
    return 1;
  }
  SloLog slo;
  rt.AddHandler(&slo);

  std::unique_ptr<queue::EventQueue> queue;
  if (options.async_queue) {
    queue = std::make_unique<queue::EventQueue>(rt, queue::QueueOptions::FromRuntime(options));
    queue->Start();
  }

  KernelConfig config;
  config.tesla = &rt;
  config.clock_ns = &clock_ns;
  config.bugs.watchdog_slow_service = bug;
  Kernel kernel(config);
  Proc* proc = kernel.NewProcess(0);
  KThread td = kernel.NewThread(proc);

  const int kicks = storm ? 9 : 4;
  std::printf("watchdog daemon: 8 service passes, %d kicks each%s%s\n", kicks,
              bug ? ", slow-service bug injected" : "",
              queue != nullptr ? " (async ingestion queue)" : "");
  WatchdogDaemon(kernel, td, 8, kicks);

  if (queue != nullptr) {
    queue->Stop();
  }

  std::printf("\n== SLO summary ==\n");
  std::printf("  deadline expiries: %llu, rate violations: %llu (events: %llu, "
              "deadlines armed: %llu)\n",
              static_cast<unsigned long long>(slo.deadline()),
              static_cast<unsigned long long>(slo.rate()),
              static_cast<unsigned long long>(rt.stats().events),
              static_cast<unsigned long long>(rt.stats().deadline_arms));

  if (trace_out != nullptr) {
    if (auto status = trace::WriteCapture(trace_out, "kernelsim:timed", rt); !status.ok()) {
      std::fprintf(stderr, "trace capture: %s\n", status.error().ToString().c_str());
      return 1;
    }
    std::printf("  trace capture written to %s\n", trace_out);
  }
  if (metrics_out != nullptr) {
    const metrics::Snapshot snapshot = rt.CollectMetrics();
    const std::string out = metrics::ToPrometheus(snapshot);
    std::FILE* file = std::fopen(metrics_out, "wb");
    if (file == nullptr) {
      std::fprintf(stderr, "metrics: cannot open '%s' for writing\n", metrics_out);
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), file);
    std::fclose(file);
    std::printf("  metrics written to %s\n", metrics_out);
  }

  // Exit criteria: the run demonstrates exactly what its flags injected.
  // A clean pass must be silent; a buggy pass must be caught, once per pass.
  const bool deadline_ok = bug ? slo.deadline() == 8 : slo.deadline() == 0;
  const bool rate_ok = storm ? slo.rate() == 8 : slo.rate() == 0;
  return deadline_ok && rate_ok ? 0 : 1;
}
