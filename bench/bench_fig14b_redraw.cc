// Figure 14b: "TESLA has ... little impact on user-perceived performance."
//
// Replays a recorded UI event stream (the GNU Xnee analogue of §5.3.1)
// against the AppKit simulator in four modes — baseline, tracing-capable
// runtime, interposition, full TESLA — and reports window redraw times.
// Most events repaint portions of the window; outliers are complete redraws
// (the paper's worst case was 54 ms, most redraws well under 10 ms).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "objsim/appkit.h"
#include "objsim/trace.h"
#include "runtime/runtime.h"

namespace {

using namespace tesla;
using namespace tesla::objsim;

// A deterministic "recorded" session: mostly mouse moves and clicks (partial
// repaints), a full expose every 16th iteration.
std::vector<std::vector<UiEvent>> RecordedSession(int iterations) {
  std::vector<std::vector<UiEvent>> session;
  uint64_t rng = 42;
  for (int i = 0; i < iterations; i++) {
    std::vector<UiEvent> events;
    for (int e = 0; e < 6; e++) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      int64_t x = static_cast<int64_t>((rng >> 33) % 1200);
      events.push_back({UiEvent::Kind::kMouseMove, x, 50});
      if ((rng >> 35) % 3 == 0) {
        events.push_back({UiEvent::Kind::kClick, x, 50});
      }
    }
    if (i % 16 == 15) {
      events.push_back({UiEvent::Kind::kExposeFull, 0, 0});
    } else if (i % 4 == 3) {
      events.push_back({UiEvent::Kind::kExposePartial, (i % 12) * 100, 50});
    }
    session.push_back(std::move(events));
  }
  return session;
}

struct Stats {
  double median_ms = 0;
  double p90_ms = 0;
  double max_ms = 0;
};

Stats MeasureMode(TraceMode mode) {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  runtime::Runtime tesla_rt(options);
  runtime::ThreadContext ctx(tesla_rt);

  ObjcRuntime rt(mode);
  AppKitConfig config;
  config.view_count = 12;
  config.cells_per_view = 6;
  AppKit app(rt, config);

  std::unique_ptr<GuiTesla> tesla;
  if (mode == TraceMode::kTesla) {
    auto installed = GuiTesla::Install(tesla_rt, ctx, app);
    if (!installed.ok()) {
      std::fprintf(stderr, "install: %s\n", installed.error().ToString().c_str());
      std::exit(1);
    }
    tesla = std::move(installed.value());
  } else if (mode == TraceMode::kInterposed) {
    for (const std::string& selector : app.InstrumentedSelectors()) {
      InterpositionHook hook;
      hook.pre = [](ObjcObject*, Selector, std::span<const int64_t>) {};
      rt.Interpose(selector, std::move(hook));
    }
  }

  auto session = RecordedSession(192);
  std::vector<double> redraw_ms;
  // Repeat the session to amortise noise on fast iterations.
  for (int repeat = 0; repeat < 8; repeat++) {
    for (const auto& events : session) {
      auto begin = bench::Clock::now();
      app.RunLoopIteration(std::span<const UiEvent>(events.data(), events.size()));
      redraw_ms.push_back(bench::SecondsSince(begin) * 1e3);
    }
  }

  Stats stats;
  stats.median_ms = bench::Percentile(redraw_ms, 0.5);
  stats.p90_ms = bench::Percentile(redraw_ms, 0.9);
  stats.max_ms = bench::Percentile(redraw_ms, 1.0);
  if (mode == TraceMode::kTesla && tesla_rt.stats().violations != 0) {
    std::fprintf(stderr, "unexpected violations: %llu\n",
                 static_cast<unsigned long long>(tesla_rt.stats().violations));
  }
  return stats;
}

}  // namespace

int main() {
  std::printf("Figure 14b: window redraw times under replayed UI events\n\n");
  std::printf("%-26s %12s %12s %12s\n", "mode", "median (ms)", "p90 (ms)", "max (ms)");
  std::printf("%-26s %12s %12s %12s\n", "--------------------------", "------------",
              "------------", "------------");

  const struct {
    const char* label;
    const char* key;
    TraceMode mode;
  } modes[] = {
      {"Baseline", "baseline", TraceMode::kRelease},
      {"Tracing compiled in", "tracing_compiled", TraceMode::kTracingCompiled},
      {"Interposition", "interposed", TraceMode::kInterposed},
      {"TESLA", "tesla", TraceMode::kTesla},
  };
  bench::JsonReport report("fig14b_redraw");
  for (const auto& entry : modes) {
    Stats stats = MeasureMode(entry.mode);
    std::printf("%-26s %12.3f %12.3f %12.3f\n", entry.label, stats.median_ms, stats.p90_ms,
                stats.max_ms);
    report.Add(std::string("redraw.") + entry.key + ".median", stats.median_ms, "ms");
    report.Add(std::string("redraw.") + entry.key + ".p90", stats.p90_ms, "ms");
    report.Add(std::string("redraw.") + entry.key + ".max", stats.max_ms, "ms");
  }
  std::printf("\npaper's shape: most redraws are partial and fast; outliers are full\n");
  std::printf("redraws; even under full TESLA tracing the worst redraw stays within\n");
  std::printf("smooth-animation budgets (paper: 54 ms worst, most under 10 ms).\n");
  return report.Write() ? 0 : 1;
}
