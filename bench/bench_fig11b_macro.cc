// Figure 11b: "TESLA's impact on larger workloads is comparable to existing
// debugging tools and proportional to instrumentation encountered."
//
// Two macrobenchmarks per kernel configuration:
//  * SysBench OLTP (socket intensive) — transaction mix over sockets;
//  * Clang build (FS/compute intensive) — file traffic plus user compute.
// Reports run time normalised to the Release kernel (paper: TESLA ≤ 1.35x).
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "kernelsim/assertions.h"
#include "kernelsim/kernel.h"
#include "kernelsim/workloads.h"
#include "runtime/runtime.h"

namespace {

using namespace tesla;
using namespace tesla::kernelsim;

struct Config {
  const char* label;
  bool instrumented;
  uint32_t sets;
  bool debug;
};

struct Times {
  double oltp = 0;
  double build = 0;
};

Times MeasureConfig(const Config& config) {
  std::unique_ptr<runtime::Runtime> rt;
  if (config.instrumented) {
    runtime::RuntimeOptions options;
    options.fail_stop = false;
    rt = std::make_unique<runtime::Runtime>(options);
    auto manifest = KernelAssertions(config.sets);
    if (!manifest.ok() || !rt->Register(manifest.value()).ok()) {
      std::fprintf(stderr, "failed to build %s\n", config.label);
      return {};
    }
  }
  KernelConfig kernel_config;
  kernel_config.tesla = rt.get();
  kernel_config.debug_checks = config.debug;
  Kernel kernel(kernel_config);
  Proc* proc = kernel.NewProcess(0);
  KThread td = kernel.NewThread(proc);

  Times times;
  times.oltp = bench::TimePerOp(
      [&](int iterations) { OltpTransactions(kernel, td, iterations); }, 0.2);
  times.build = bench::TimePerOp(
      [&](int iterations) { BuildCompile(kernel, td, iterations, 150); }, 0.2);
  return times;
}

}  // namespace

int main() {
  const Config configs[] = {
      {"Release", false, kSetNone, false},
      {"Debug", false, kSetNone, true},
      {"Infrastructure", true, kSetTest, false},
      {"MF", true, kSetMacFs | kSetTest, false},
      {"MS", true, kSetMacSocket | kSetTest, false},
      {"MF+MS", true, kSetMacFs | kSetMacSocket | kSetTest, false},
      {"M", true, kSetMac | kSetTest, false},
      {"All", true, kSetAll, false},
  };

  std::printf("Figure 11b: macrobenchmarks, run time normalised to Release\n\n");
  std::printf("%-18s %16s %16s\n", "configuration", "SysBench OLTP", "Clang build");
  std::printf("%-18s %16s %16s\n", "------------------", "----------------",
              "----------------");

  bench::JsonReport report("fig11b_macro");
  Times base;
  for (const Config& config : configs) {
    Times times = MeasureConfig(config);
    if (times.oltp == 0) {
      return 1;
    }
    if (base.oltp == 0) {
      base = times;
    }
    std::printf("%-18s %15.3fx %15.3fx\n", config.label, times.oltp / base.oltp,
                times.build / base.build);
    report.Add(std::string("oltp.") + config.label, times.oltp / base.oltp, "x_vs_release");
    report.Add(std::string("build.") + config.label, times.build / base.build, "x_vs_release");
  }
  std::printf("\npaper's shape: socket-intensive OLTP reacts to MS, FS/compute-intensive\n");
  std::printf("builds react to MF; the full suite stays near the Debug baseline (<=1.35x).\n");
  return report.Write() ? 0 : 1;
}
