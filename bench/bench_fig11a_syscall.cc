// Figure 11a: "A system-call–intensive microbenchmark (the lmbench suite's
// open close) is measurably slowed by TESLA."
//
// Runs the open/close loop on kernels built in the paper's configurations:
// Release, Debug (WITNESS/INVARIANTS analogue), Infrastructure (hooks + test
// assertions, nothing else), MP, MS+MP, MF+MS+MP, M, All, and All(Debug).
// Reports µs per open+close pair.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "kernelsim/assertions.h"
#include "kernelsim/kernel.h"
#include "kernelsim/workloads.h"
#include "runtime/runtime.h"

namespace {

using namespace tesla;
using namespace tesla::kernelsim;

struct Config {
  const char* label;
  bool instrumented;
  uint32_t sets;
  bool debug;
};

double MeasureConfig(const Config& config) {
  std::unique_ptr<runtime::Runtime> rt;
  if (config.instrumented) {
    runtime::RuntimeOptions options;
    options.fail_stop = false;
    rt = std::make_unique<runtime::Runtime>(options);
    auto manifest = KernelAssertions(config.sets);
    if (!manifest.ok() || !rt->Register(manifest.value()).ok()) {
      std::fprintf(stderr, "failed to build %s\n", config.label);
      return -1;
    }
  }
  KernelConfig kernel_config;
  kernel_config.tesla = rt.get();
  kernel_config.debug_checks = config.debug;
  Kernel kernel(kernel_config);
  Proc* proc = kernel.NewProcess(0);
  KThread td = kernel.NewThread(proc);

  double per_pair = bench::TimePerOp(
      [&](int iterations) { OpenCloseLoop(kernel, td, iterations); }, 0.15);
  if (rt != nullptr && rt->stats().violations != 0) {
    std::fprintf(stderr, "unexpected violations in %s\n", config.label);
  }
  return per_pair * 1e6;  // µs
}

}  // namespace

int main() {
  const Config configs[] = {
      {"Release", false, kSetNone, false},
      {"Debug", false, kSetNone, true},
      {"Infrastructure", true, kSetTest, false},
      {"MP", true, kSetMacProc | kSetTest, false},
      {"MS+MP", true, kSetMacSocket | kSetMacProc | kSetTest, false},
      {"MF+MS+MP", true, kSetMacFs | kSetMacSocket | kSetMacProc | kSetTest, false},
      {"M", true, kSetMac | kSetTest, false},
      {"All", true, kSetAll, false},
      {"All (Debug)", true, kSetAll, true},
  };

  std::printf("Figure 11a: lmbench-style open/close microbenchmark\n");
  bench::PrintHeader("time per open+close pair", "us/pair");
  bench::JsonReport report("fig11a_syscall");
  double base = 0;
  for (const Config& config : configs) {
    double micros = MeasureConfig(config);
    if (micros < 0) {
      return 1;
    }
    if (base == 0) {
      base = micros;
    }
    bench::PrintRow(config.label, micros, base);
    report.Add(std::string("open_close.") + config.label, micros, "us/pair");
  }
  std::printf("\npaper's shape: Debug ~2-3x Release; TESLA sets grow with assertion count;\n");
  std::printf("All is the slowest TESLA bar and All(Debug) adds the debug cost on top.\n");
  return report.Write() ? 0 : 1;
}
