// Metrics-observability overhead: what does tesla::metrics cost per event?
//
// Runs the bench_instances dispatch workload (one open bound, a population of
// live instances, fully-bound assertion sites through the binding-keyed
// index) under the three RuntimeOptions::metrics_mode settings:
//
//   off        — the baseline; BumpClass is a single null check
//   counters   — per-class counter shards + transition-coverage stamping
//   histograms — counters plus two steady_clock reads per dispatched event
//
// The contract (DESIGN.md "metrics"): counters mode must stay within ~5 ns
// of off per event; histograms pay the clock and are expected to cost more.
// TESLA_BENCH_SMOKE=1 shrinks populations and timing windows for CI.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "automata/lower.h"
#include "bench/bench_util.h"
#include "metrics/metrics.h"
#include "metrics/snapshot.h"
#include "runtime/runtime.h"

namespace {

using namespace tesla;

constexpr const char* kSource =
    "TESLA_PERTHREAD(call(syscall), returnfrom(syscall), previously(check(x) == 0))";

std::unique_ptr<runtime::Runtime> MakeRuntime(metrics::MetricsMode mode) {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.instance_index = true;
  options.instances_per_context = 20000;
  options.metrics_mode = mode;
  auto rt = std::make_unique<runtime::Runtime>(options);
  auto automaton = automata::CompileAssertion(kSource, {}, "metrics-bench");
  if (!automaton.ok()) {
    std::fprintf(stderr, "compile: %s\n", automaton.error().ToString().c_str());
    return nullptr;
  }
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  if (!rt->Register(manifest).ok()) {
    return nullptr;
  }
  return rt;
}

// ns per fully-bound assertion-site dispatch with `population` live instances
// under the given metrics mode.
double MeasureDispatch(metrics::MetricsMode mode, int population, double min_seconds) {
  auto rt = MakeRuntime(mode);
  if (rt == nullptr) {
    return -1;
  }
  runtime::ThreadContext ctx(*rt);
  uint32_t id = static_cast<uint32_t>(rt->FindAutomaton("metrics-bench"));
  Symbol syscall = InternString("syscall");
  Symbol check = InternString("check");

  // One open bound; each distinct check(x) value clones one instance.
  rt->OnFunctionCall(ctx, syscall, {});
  for (int v = 0; v < population; v++) {
    int64_t args[] = {v};
    rt->OnFunctionReturn(ctx, check, args, 0);
  }

  double per_event = tesla::bench::TimePerOp(
      [&](int iterations) {
        for (int i = 0; i < iterations; i++) {
          runtime::Binding site[] = {{0, i % population}};
          rt->OnAssertionSite(ctx, id, site);
        }
      },
      min_seconds);

  if (rt->stats().violations != 0 || rt->stats().overflows != 0) {
    std::fprintf(stderr, "unexpected violations/overflows (pop=%d mode=%s)\n", population,
                 metrics::MetricsModeName(mode));
    return -1;
  }
  if (mode != metrics::MetricsMode::kOff) {
    // Sanity: the shards must actually have recorded the workload, else the
    // "overhead" we report is the overhead of doing nothing.
    metrics::Snapshot snapshot = rt->CollectMetrics();
    if (snapshot.classes.empty() || snapshot.classes[0].counters[static_cast<size_t>(
                                        metrics::ClassCounter::transitions)] == 0) {
      std::fprintf(stderr, "metrics never engaged (pop=%d mode=%s)\n", population,
                   metrics::MetricsModeName(mode));
      return -1;
    }
  }
  return per_event * 1e9;
}

}  // namespace

int main() {
  // Smoke mode shrinks only the timing windows, not the population sweep:
  // the CI gate diffs this report against the committed full-run reference,
  // so both must emit the same metric set.
  const bool smoke = tesla::bench::SmokeMode();
  const double min_seconds = smoke ? 0.005 : 0.15;
  const std::vector<int> populations = {1, 64, 1024};

  const struct {
    const char* label;
    const char* key;
    metrics::MetricsMode mode;
  } modes[] = {
      {"metrics off", "off", metrics::MetricsMode::kOff},
      {"per-class counters", "counters", metrics::MetricsMode::kCounters},
      {"counters + histograms", "histograms", metrics::MetricsMode::kFull},
  };

  tesla::bench::JsonReport report("metrics");
  std::printf("Metrics overhead: site dispatch under metrics_mode off/counters/full\n");
  if (smoke) {
    std::printf("(smoke mode: reduced populations and timing windows)\n");
  }

  bool ok = true;
  for (int population : populations) {
    std::printf("\n--- %d live instance%s ---\n", population, population == 1 ? "" : "s");
    std::printf("%-24s %16s %18s\n", "mode", "ns/event", "overhead vs off");
    double baseline = -1;
    for (const auto& m : modes) {
      double per_event = MeasureDispatch(m.mode, population, min_seconds);
      if (per_event < 0) {
        ok = false;
        continue;
      }
      if (m.mode == metrics::MetricsMode::kOff) {
        baseline = per_event;
      }
      const double overhead = baseline >= 0 ? per_event - baseline : 0;
      std::printf("%-24s %16.1f %+17.1f\n", m.label, per_event, overhead);
      const std::string prefix = std::string("site_dispatch.n") + std::to_string(population);
      report.Add(prefix + "." + m.key, per_event, "ns/event");
      if (m.mode != metrics::MetricsMode::kOff && baseline >= 0) {
        report.Add(prefix + ".overhead_" + m.key, overhead, "ns");
      }
    }
  }

  std::printf("\nexpected shape: counters mode stays within a few ns of off (single-writer\n");
  std::printf("relaxed shards, one coverage-bit load when warm); histograms add the cost\n");
  std::printf("of two steady_clock reads per event.\n");
  if (!report.Write()) {
    ok = false;
  }
  return ok ? 0 : 1;
}
