// Ablation microbenchmarks (google-benchmark) for libtesla design choices
// called out in DESIGN.md:
//   * NFA state-set simulation vs determinised-DFA stepping;
//   * eager vs lazy instance initialisation at different automata counts;
//   * event cost with no matching automata (the "Infrastructure" floor).
#include <benchmark/benchmark.h>

#include <memory>

#include "automata/lower.h"
#include "bench/bench_util.h"
#include "runtime/runtime.h"

namespace {

using namespace tesla;

std::unique_ptr<runtime::Runtime> MakeRuntime(int automata_count, bool lazy, bool use_dfa) {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.lazy_init = lazy;
  options.use_dfa = use_dfa;
  auto rt = std::make_unique<runtime::Runtime>(options);
  automata::Manifest manifest;
  for (int i = 0; i < automata_count; i++) {
    auto automaton = automata::CompileAssertion(
        "TESLA_WITHIN(syscall, previously(check" + std::to_string(i) + "(x) == 0))", {},
        "a" + std::to_string(i));
    if (!automaton.ok()) {
      std::abort();
    }
    manifest.Add(std::move(automaton.value()));
  }
  if (!rt->Register(manifest).ok()) {
    std::abort();
  }
  return rt;
}

void DriveBound(runtime::Runtime& rt, runtime::ThreadContext& ctx, int64_t value) {
  static Symbol syscall = InternString("syscall");
  static Symbol check0 = InternString("check0");
  rt.OnFunctionCall(ctx, syscall, {});
  int64_t args[] = {value};
  rt.OnFunctionReturn(ctx, check0, args, 0);
  runtime::Binding site[] = {{0, value}};
  rt.OnAssertionSite(ctx, 0, site);
  rt.OnFunctionReturn(ctx, syscall, {}, 0);
}

void BM_SteppingMode(benchmark::State& state) {
  bool use_dfa = state.range(0) != 0;
  auto rt = MakeRuntime(1, /*lazy=*/true, use_dfa);
  runtime::ThreadContext ctx(*rt);
  int64_t value = 0;
  for (auto _ : state) {
    DriveBound(*rt, ctx, value++ % 5);
  }
  state.SetLabel(use_dfa ? "DFA stepping" : "NFA state-set");
}
BENCHMARK(BM_SteppingMode)->Arg(0)->Arg(1);

void BM_InitStrategy(benchmark::State& state) {
  bool lazy = state.range(0) != 0;
  int automata = static_cast<int>(state.range(1));
  auto rt = MakeRuntime(automata, lazy, /*use_dfa=*/false);
  runtime::ThreadContext ctx(*rt);
  int64_t value = 0;
  for (auto _ : state) {
    DriveBound(*rt, ctx, value++ % 5);
  }
  state.SetLabel(std::string(lazy ? "lazy" : "eager") + ", " + std::to_string(automata) +
                 " automata sharing the bound");
}
BENCHMARK(BM_InitStrategy)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({0, 96})
    ->Args({1, 96});

void BM_UnmatchedEvent(benchmark::State& state) {
  auto rt = MakeRuntime(8, /*lazy=*/true, /*use_dfa=*/false);
  runtime::ThreadContext ctx(*rt);
  Symbol unrelated = InternString("completely_unrelated_fn");
  for (auto _ : state) {
    rt->OnFunctionCall(ctx, unrelated, {});
  }
  state.SetLabel("event with no listening automata");
}
BENCHMARK(BM_UnmatchedEvent);

// Console output as usual, plus every run captured into the shared JSON
// schema (bench/README.md) so the ablations diff like the figure benches.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(tesla::bench::JsonReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      report_->Add(run.benchmark_name(), run.GetAdjustedRealTime(), "ns/op");
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  tesla::bench::JsonReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  tesla::bench::JsonReport report("ablation_runtime");
  JsonCapturingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return report.Write() ? 0 : 1;
}
