// Flight-recorder overhead and replay throughput.
//
// The trace subsystem's contract is "forensics for nearly free": the
// per-event cost of trace_mode=flight-recorder over off must stay within a
// ~15 ns budget (BENCH_trace.json records the measured delta, and
// tools/bench_diff.py gates regressions in CI). This harness measures:
//
//   * ns/event with tracing off, flight-recorder and full-capture — the
//     same fully-bound assertion-site dispatch bench_instances uses, so the
//     deltas isolate the Record() call on the OnEvent hot path;
//   * ns/event through the batch entry point (Runtime::OnEvents) vs the
//     one-at-a-time path — the batch should never be slower;
//   * replay throughput: capture a run, then drive the capture through a
//     fresh Runtime via trace::Replay and require an exact reproduction.
//
// Set TESLA_BENCH_REPLAY_FILE=<capture> to additionally time replay of an
// externally captured file (resolved through its recorded origin).
// TESLA_BENCH_SMOKE=1 shrinks populations and timing windows for CI.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "automata/lower.h"
#include "bench/bench_util.h"
#include "runtime/runtime.h"
#include "trace/replay.h"

namespace {

using namespace tesla;

constexpr const char* kSource =
    "TESLA_PERTHREAD(call(syscall), returnfrom(syscall), previously(check(x) == 0))";
constexpr const char* kBenchName = "trace-bench";

std::unique_ptr<runtime::Runtime> MakeRuntime(trace::TraceMode mode) {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.instances_per_context = 20000;
  options.trace_mode = mode;
  // Per-event cost must stay representative past the cap, so keep the cap
  // high enough that the timing loop mostly exercises the append path.
  options.trace_capture_limit = 1 << 21;
  auto rt = std::make_unique<runtime::Runtime>(options);
  auto automaton = automata::CompileAssertion(kSource, {}, kBenchName);
  if (!automaton.ok()) {
    std::fprintf(stderr, "compile: %s\n", automaton.error().ToString().c_str());
    return nullptr;
  }
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  if (!rt->Register(manifest).ok()) {
    return nullptr;
  }
  return rt;
}

// ns per fully-bound assertion-site dispatch under `mode`.
double MeasureMode(trace::TraceMode mode, double min_seconds) {
  auto rt = MakeRuntime(mode);
  if (rt == nullptr) {
    return -1;
  }
  runtime::ThreadContext ctx(*rt);
  uint32_t id = static_cast<uint32_t>(rt->FindAutomaton(kBenchName));
  Symbol syscall = InternString("syscall");
  Symbol check = InternString("check");

  rt->OnFunctionCall(ctx, syscall, {});
  int64_t args[] = {0};
  rt->OnFunctionReturn(ctx, check, args, 0);

  double per_event = tesla::bench::TimePerOp(
      [&](int iterations) {
        for (int i = 0; i < iterations; i++) {
          runtime::Binding site[] = {{0, 0}};
          rt->OnAssertionSite(ctx, id, site);
        }
      },
      min_seconds);
  if (rt->stats().violations != 0 || rt->stats().overflows != 0) {
    std::fprintf(stderr, "unexpected violations/overflows in mode %s\n",
                 trace::TraceModeName(mode));
    return -1;
  }
  return per_event * 1e9;
}

// ns per event through OnEvents (true) or one-at-a-time OnEvent (false).
double MeasureBatch(bool batched, double min_seconds) {
  auto rt = MakeRuntime(trace::TraceMode::kOff);
  if (rt == nullptr) {
    return -1;
  }
  runtime::ThreadContext ctx(*rt);
  uint32_t id = static_cast<uint32_t>(rt->FindAutomaton(kBenchName));
  Symbol syscall = InternString("syscall");
  Symbol check = InternString("check");

  rt->OnFunctionCall(ctx, syscall, {});
  int64_t args[] = {0};
  rt->OnFunctionReturn(ctx, check, args, 0);

  constexpr int kBatch = 256;
  std::vector<runtime::Event> batch;
  runtime::Binding site[] = {{0, 0}};
  for (int i = 0; i < kBatch; i++) {
    batch.push_back(runtime::Event::Site(id, site));
  }

  double per_batch = tesla::bench::TimePerOp(
      [&](int iterations) {
        for (int i = 0; i < iterations; i++) {
          if (batched) {
            rt->OnEvents(ctx, std::span<const runtime::Event>(batch.data(), batch.size()));
          } else {
            for (const runtime::Event& event : batch) {
              rt->OnEvent(ctx, event);
            }
          }
        }
      },
      min_seconds);
  return per_batch / kBatch * 1e9;
}

// Captures a run of `events` site dispatches, then times replaying it
// (runtime construction + registration + full event replay, per iteration).
// Returns ns/event; sets `matched` to the reproduction check's outcome.
double MeasureReplay(int events, double min_seconds, bool* matched) {
  auto rt = MakeRuntime(trace::TraceMode::kFullCapture);
  if (rt == nullptr) {
    return -1;
  }
  {
    runtime::ThreadContext ctx(*rt);
    uint32_t id = static_cast<uint32_t>(rt->FindAutomaton(kBenchName));
    Symbol syscall = InternString("syscall");
    Symbol check = InternString("check");
    rt->OnFunctionCall(ctx, syscall, {});
    int64_t args[] = {0};
    rt->OnFunctionReturn(ctx, check, args, 0);
    for (int i = 0; i < events; i++) {
      runtime::Binding site[] = {{0, 0}};
      rt->OnAssertionSite(ctx, id, site);
    }
  }

  std::string dir = ".";
  if (const char* env = std::getenv("TESLA_BENCH_JSON_DIR"); env != nullptr && *env != '\0') {
    dir = env;
  }
  const std::string path = dir + "/bench_trace.capture";
  // The bench automaton is not a known origin; the origin string is only
  // read back by ReplayFile, which this harness does not use for it.
  if (auto status = trace::WriteCapture(path, "bench:trace", *rt); !status.ok()) {
    std::fprintf(stderr, "capture: %s\n", status.error().ToString().c_str());
    return -1;
  }
  auto read = trace::TraceFile::Read(path);
  if (!read.ok()) {
    std::fprintf(stderr, "read: %s\n", read.error().ToString().c_str());
    return -1;
  }
  trace::TraceFile file = std::move(read.value());
  file.InternAndRemap();

  *matched = true;
  double per_replay = tesla::bench::TimePerOp(
      [&](int iterations) {
        for (int i = 0; i < iterations; i++) {
          runtime::Runtime replay_rt(trace::ReplayOptions(file));
          auto automaton = automata::CompileAssertion(kSource, {}, kBenchName);
          automata::Manifest manifest;
          manifest.Add(std::move(automaton.value()));
          if (!replay_rt.Register(manifest).ok()) {
            std::abort();
          }
          auto result = trace::Replay(file, replay_rt);
          if (!result.ok() || !result.value().matched) {
            *matched = false;
          }
        }
      },
      min_seconds);
  std::remove(path.c_str());
  return per_replay / file.records.size() * 1e9;
}

}  // namespace

int main() {
  const bool smoke = tesla::bench::SmokeMode();
  const double min_seconds = smoke ? 0.02 : 0.2;
  tesla::bench::JsonReport report("trace");

  tesla::bench::PrintHeader("trace: per-event overhead by trace_mode", "ns/event");
  const double off = MeasureMode(trace::TraceMode::kOff, min_seconds);
  const double flight = MeasureMode(trace::TraceMode::kFlightRecorder, min_seconds);
  const double full = MeasureMode(trace::TraceMode::kFullCapture, min_seconds);
  tesla::bench::PrintRow("off", off, off);
  tesla::bench::PrintRow("flight-recorder", flight, off);
  tesla::bench::PrintRow("full-capture", full, off);
  std::printf("flight-recorder overhead: %.2f ns/event (budget: 15)\n", flight - off);
  report.Add("ns_per_event_off", off, "ns");
  report.Add("ns_per_event_flight", flight, "ns");
  report.Add("ns_per_event_full", full, "ns");
  report.Add("flight_overhead_ns", flight - off, "ns");

  tesla::bench::PrintHeader("trace: batch vs single-event ingestion", "ns/event");
  const double single = MeasureBatch(false, min_seconds);
  const double batched = MeasureBatch(true, min_seconds);
  tesla::bench::PrintRow("OnEvent x N", single, single);
  tesla::bench::PrintRow("OnEvents (batch 256)", batched, single);
  report.Add("ns_per_event_single", single, "ns");
  report.Add("ns_per_event_batch", batched, "ns");

  tesla::bench::PrintHeader("trace: capture replay", "ns/event");
  bool matched = false;
  const double replay =
      MeasureReplay(smoke ? 2000 : 20000, smoke ? 0.02 : 0.1, &matched);
  tesla::bench::PrintRow("replay (fresh runtime)", replay, replay);
  std::printf("replay reproduction: %s\n", matched ? "exact" : "DIVERGED");
  report.Add("ns_per_event_replay", replay, "ns");

  if (const char* external = std::getenv("TESLA_BENCH_REPLAY_FILE");
      external != nullptr && *external != '\0') {
    auto begin = tesla::bench::Clock::now();
    auto result = trace::ReplayFile(external);
    const double elapsed = tesla::bench::SecondsSince(begin);
    if (!result.ok()) {
      std::fprintf(stderr, "replay %s: %s\n", external, result.error().ToString().c_str());
    } else {
      const double ns =
          elapsed * 1e9 / static_cast<double>(result.value().events_replayed);
      std::printf("external capture %s: %.1f ns/event, %s\n", external, ns,
                  result.value().matched ? "exact" : "DIVERGED");
      report.Add("ns_per_event_replay_external", ns, "ns");
    }
  }

  const bool ok = off > 0 && flight > 0 && full > 0 && single > 0 && batched > 0 &&
                  replay > 0 && matched;
  report.Write();
  return ok ? 0 : 1;
}
