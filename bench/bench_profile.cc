// Profiling overhead and profile-guided plan payoff.
//
// Two claims, both CI-gated against the committed BENCH_profile.json:
//
//   1. RuntimeOptions::profile costs ≤ ~5 ns per dispatched event. The shard
//      write path is a handful of relaxed load+store pairs (no RMW) plus a
//      1-in-64 sampled clock, the same discipline as tesla::metrics.
//   2. On a scan-fallback workload — partially-bound sites against a large
//      instance population — the profile's own prescription (a secondary
//      prefix index on the bound key variable, fed back as a PlanHint) makes
//      dispatch ≥ 1.5× faster. The hinted plan walks one prefix bucket where
//      the unhinted plan scans every live instance.
//
// TESLA_BENCH_SMOKE=1 shrinks the timing windows for CI; the metric set is
// identical so bench_diff can gate smoke runs against the full-run reference.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "automata/lower.h"
#include "bench/bench_util.h"
#include "profile/hints.h"
#include "profile/profile.h"
#include "profile/snapshot.h"
#include "runtime/runtime.h"

namespace {

using namespace tesla;

constexpr const char* kOneVar =
    "TESLA_PERTHREAD(call(syscall), returnfrom(syscall), previously(check(x) == 0))";
constexpr const char* kTwoVar =
    "TESLA_PERTHREAD(call(syscall), returnfrom(syscall), previously(pair(x, y) == 0))";

std::unique_ptr<runtime::Runtime> MakeRuntime(const char* source,
                                              runtime::RuntimeOptions options) {
  options.fail_stop = false;
  options.instances_per_context = 20000;
  auto rt = std::make_unique<runtime::Runtime>(options);
  auto automaton = automata::CompileAssertion(source, {}, "profile-bench");
  if (!automaton.ok()) {
    std::fprintf(stderr, "compile: %s\n", automaton.error().ToString().c_str());
    return nullptr;
  }
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  if (!rt->Register(manifest).ok()) {
    return nullptr;
  }
  return rt;
}

// ns per fully-bound assertion-site dispatch with `population` live
// instances, profiling off or on — the overhead claim. One sample = one
// fresh runtime; OverheadNs takes the min over several samples because heap
// layout varies run to run by more than the effect being measured.
double MeasureOverheadOnce(bool profile, int population, double min_seconds) {
  runtime::RuntimeOptions options;
  options.profile = profile;
  auto rt = MakeRuntime(kOneVar, options);
  if (rt == nullptr) {
    return -1;
  }
  runtime::ThreadContext ctx(*rt);
  const uint32_t id = static_cast<uint32_t>(rt->FindAutomaton("profile-bench"));
  rt->OnFunctionCall(ctx, InternString("syscall"), {});
  for (int v = 0; v < population; v++) {
    int64_t args[] = {v};
    rt->OnFunctionReturn(ctx, InternString("check"), args, 0);
  }

  const double per_event = tesla::bench::TimePerOp(
      [&](int iterations) {
        for (int i = 0; i < iterations; i++) {
          runtime::Binding site[] = {{0, i % population}};
          rt->OnAssertionSite(ctx, id, site);
        }
      },
      min_seconds);

  if (rt->stats().violations != 0 || rt->stats().overflows != 0) {
    std::fprintf(stderr, "unexpected violations/overflows (pop=%d)\n", population);
    return -1;
  }
  if (profile) {
    // Sanity: the profiler must actually have recorded the workload.
    const profile::Snapshot snapshot = rt->CollectProfile();
    if (snapshot.classes.empty() ||
        snapshot.classes[0].cell(profile::Cell::dispatches) == 0) {
      std::fprintf(stderr, "profiler never engaged (pop=%d)\n", population);
      return -1;
    }
  }
  return per_event * 1e9;
}

// Interleaved off/on pairs so slow machine phases hit both configurations;
// the mins across pairs estimate each configuration's unloaded cost.
bool MeasureOverhead(int population, double min_seconds, int samples, double* off_ns,
                     double* on_ns) {
  *off_ns = -1;
  *on_ns = -1;
  for (int s = 0; s < samples; s++) {
    const double off = MeasureOverheadOnce(false, population, min_seconds);
    const double on = MeasureOverheadOnce(true, population, min_seconds);
    if (off < 0 || on < 0) {
      return false;
    }
    if (*off_ns < 0 || off < *off_ns) {
      *off_ns = off;
    }
    if (*on_ns < 0 || on < *on_ns) {
      *on_ns = on;
    }
  }
  return true;
}

// ns per *partially-bound* site dispatch against distinct_x × per_x live
// instances — the payoff claim. Unhinted, every such dispatch scans the full
// population; with the profile-derived prefix hint it walks one bucket.
double MeasurePartialDispatch(bool hinted, int distinct_x, int per_x, double min_seconds,
                              bool* engaged) {
  runtime::RuntimeOptions options;
  if (hinted) {
    profile::ClassHint hint;
    hint.name = "profile-bench";
    hint.capacity = 4096;     // hints size the pool: leave headroom for the population
    hint.min_population = 0;
    hint.prefix_key_pos = 0;  // secondary index on x
    options.plan_hints.classes.push_back(hint);
  }
  auto rt = MakeRuntime(kTwoVar, options);
  if (rt == nullptr) {
    return -1;
  }
  runtime::ThreadContext ctx(*rt);
  const uint32_t id = static_cast<uint32_t>(rt->FindAutomaton("profile-bench"));
  rt->OnFunctionCall(ctx, InternString("syscall"), {});
  for (int x = 0; x < distinct_x; x++) {
    for (int y = 0; y < per_x; y++) {
      int64_t args[] = {x, y};
      rt->OnFunctionReturn(ctx, InternString("pair"), args, 0);
    }
  }

  const double per_event = tesla::bench::TimePerOp(
      [&](int iterations) {
        for (int i = 0; i < iterations; i++) {
          runtime::Binding site[] = {{0, i % distinct_x}};
          rt->OnAssertionSite(ctx, id, site);
        }
      },
      min_seconds);

  if (rt->stats().violations != 0 || rt->stats().overflows != 0) {
    std::fprintf(stderr, "unexpected violations/overflows (hinted=%d)\n", hinted ? 1 : 0);
    return -1;
  }
  // The two plans must really have taken different routes.
  *engaged = hinted ? rt->stats().index_probes > 0 : rt->stats().index_scans > 0;
  return per_event * 1e9;
}

}  // namespace

int main() {
  const bool smoke = tesla::bench::SmokeMode();
  const double min_seconds = smoke ? 0.005 : 0.15;
  tesla::bench::JsonReport report("profile");
  bool ok = true;

  std::printf("Profiling overhead: site dispatch with RuntimeOptions::profile off/on\n");
  if (smoke) {
    std::printf("(smoke mode: reduced timing windows)\n");
  }
  const int samples = smoke ? 2 : 5;
  for (int population : {1, 64, 1024}) {
    double off = 0;
    double on = 0;
    if (!MeasureOverhead(population, min_seconds, samples, &off, &on)) {
      ok = false;
      continue;
    }
    std::printf("  n=%-5d off %7.1f ns/event   on %7.1f ns/event   overhead %+5.1f ns\n",
                population, off, on, on - off);
    const std::string prefix = std::string("site_dispatch.n") + std::to_string(population);
    report.Add(prefix + ".off", off, "ns/event");
    report.Add(prefix + ".on", on, "ns/event");
    report.Add(prefix + ".overhead_on", on - off, "ns");
  }

  std::printf("\nProfile-guided payoff: partially-bound dispatch, 1024 live instances\n");
  std::printf("(128 distinct prefix-key values x 8 instances each)\n");
  bool scan_engaged = false;
  bool prefix_engaged = false;
  const double scan = MeasurePartialDispatch(false, 128, 8, min_seconds, &scan_engaged);
  const double prefix = MeasurePartialDispatch(true, 128, 8, min_seconds, &prefix_engaged);
  if (scan < 0 || prefix < 0 || !scan_engaged || !prefix_engaged) {
    ok = false;
  } else {
    const double speedup = prefix > 0 ? scan / prefix : 0;
    std::printf("  full scan (unhinted) %8.1f ns/event\n", scan);
    std::printf("  prefix index (hinted) %7.1f ns/event\n", prefix);
    std::printf("  speedup %.2fx (gate: >= 1.5x)\n", speedup);
    report.Add("partial_dispatch.n1024.scan", scan, "ns/event");
    report.Add("partial_dispatch.n1024.prefix", prefix, "ns/event");
    report.Add("partial_dispatch.n1024.speedup", speedup, "x");
  }

  std::printf("\nexpected shape: profiling stays within ~5 ns of off (relaxed single-writer\n");
  std::printf("shards, 1-in-64 sampled clock); the hinted plan beats the scan by the\n");
  std::printf("bucket-vs-population ratio.\n");
  if (!report.Write()) {
    ok = false;
  }
  return ok ? 0 : 1;
}
