// Figure 13: "Performance improvements with optimisation."
//
// Compares naive automaton-instance initialisation ("Pre": every bound entry
// touches every automaton sharing the bound) against the lazy-init
// optimisation of §5.2.2 ("Post": bound entry bumps an epoch; instances
// materialise on the first real event; cleanup walks only live classes).
//
//  (a) microbenchmark — MAC-checked open/close and poll loops;
//  (b) macrobenchmark — OLTP and build workloads.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "kernelsim/assertions.h"
#include "kernelsim/kernel.h"
#include "kernelsim/workloads.h"
#include "runtime/runtime.h"

namespace {

using namespace tesla;
using namespace tesla::kernelsim;

struct Harness {
  std::unique_ptr<runtime::Runtime> rt;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<KThread> td;
};

Harness MakeKernel(bool lazy) {
  Harness harness;
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.lazy_init = lazy;
  harness.rt = std::make_unique<runtime::Runtime>(options);
  auto manifest = KernelAssertions(kSetAll);
  if (!manifest.ok() || !harness.rt->Register(manifest.value()).ok()) {
    std::fprintf(stderr, "failed to build kernel\n");
    std::exit(1);
  }
  KernelConfig config;
  config.tesla = harness.rt.get();
  harness.kernel = std::make_unique<Kernel>(config);
  Proc* proc = harness.kernel->NewProcess(0);
  harness.td = std::make_unique<KThread>(harness.kernel->NewThread(proc));
  return harness;
}

}  // namespace

int main() {
  std::printf("Figure 13: naive (Pre) vs lazy-init (Post) libtesla, full assertion suite\n");
  bench::JsonReport report("fig13_lazyinit");

  // (a) microbenchmarks.
  std::printf("\n(a) microbenchmarks, us per operation\n");
  std::printf("%-24s %12s %12s %10s\n", "workload", "Pre (naive)", "Post (lazy)", "speedup");
  {
    Harness pre = MakeKernel(false);
    Harness post = MakeKernel(true);
    double pre_oc = bench::TimePerOp(
        [&](int n) { OpenCloseLoop(*pre.kernel, *pre.td, n); }, 0.15) * 1e6;
    double post_oc = bench::TimePerOp(
        [&](int n) { OpenCloseLoop(*post.kernel, *post.td, n); }, 0.15) * 1e6;
    std::printf("%-24s %12.3f %12.3f %9.1fx\n", "MAC open/close", pre_oc, post_oc,
                post_oc > 0 ? pre_oc / post_oc : 0.0);
    report.Add("micro.open_close.pre", pre_oc, "us/op");
    report.Add("micro.open_close.post", post_oc, "us/op");

    auto poll_loop = [](Harness& harness, int n) {
      int64_t sock = harness.kernel->SysSocket(*harness.td);
      for (int i = 0; i < n; i++) {
        harness.kernel->SysPoll(*harness.td, sock, 1);
      }
      harness.kernel->SysClose(*harness.td, sock);
    };
    double pre_poll =
        bench::TimePerOp([&](int n) { poll_loop(pre, n); }, 0.15) * 1e6;
    double post_poll =
        bench::TimePerOp([&](int n) { poll_loop(post, n); }, 0.15) * 1e6;
    std::printf("%-24s %12.3f %12.3f %9.1fx\n", "MAC poll", pre_poll, post_poll,
                post_poll > 0 ? pre_poll / post_poll : 0.0);
    report.Add("micro.poll.pre", pre_poll, "us/op");
    report.Add("micro.poll.post", post_poll, "us/op");
  }

  // (b) macrobenchmarks, normalised against an uninstrumented kernel.
  std::printf("\n(b) macrobenchmarks, normalised run time (Release = 1.0)\n");
  std::printf("%-24s %12s %12s\n", "workload", "Pre (naive)", "Post (lazy)");
  {
    Kernel release(KernelConfig{});
    Proc* proc = release.NewProcess(0);
    KThread release_td = release.NewThread(proc);
    double base_oltp = bench::TimePerOp(
        [&](int n) { OltpTransactions(release, release_td, n); }, 0.2);
    double base_build = bench::TimePerOp(
        [&](int n) { BuildCompile(release, release_td, n, 150); }, 0.2);

    Harness pre = MakeKernel(false);
    Harness post = MakeKernel(true);
    double pre_oltp = bench::TimePerOp(
        [&](int n) { OltpTransactions(*pre.kernel, *pre.td, n); }, 0.2);
    double post_oltp = bench::TimePerOp(
        [&](int n) { OltpTransactions(*post.kernel, *post.td, n); }, 0.2);
    double pre_build = bench::TimePerOp(
        [&](int n) { BuildCompile(*pre.kernel, *pre.td, n, 150); }, 0.2);
    double post_build = bench::TimePerOp(
        [&](int n) { BuildCompile(*post.kernel, *post.td, n, 150); }, 0.2);

    std::printf("%-24s %11.2fx %11.2fx\n", "OLTP (socket intensive)", pre_oltp / base_oltp,
                post_oltp / base_oltp);
    std::printf("%-24s %11.2fx %11.2fx\n", "Build (FS/compute)", pre_build / base_build,
                post_build / base_build);
    report.Add("macro.oltp.pre", pre_oltp / base_oltp, "x_vs_release");
    report.Add("macro.oltp.post", post_oltp / base_oltp, "x_vs_release");
    report.Add("macro.build.pre", pre_build / base_build, "x_vs_release");
    report.Add("macro.build.post", post_build / base_build, "x_vs_release");
  }

  std::printf("\npaper's shape: micro ~100x -> <7x; OLTP ~10x -> near baseline;\n");
  std::printf("builds ~2x -> <10%% overhead.\n");
  return report.Write() ? 0 : 1;
}
