// Figure 10: "The TESLA toolchain slows down the OpenSSL build process,
// especially when rebuilding incrementally."
//
// Drives the real cfront + analyser + instrumenter over a synthetic corpus
// and reports the paper's four bars (clean/incremental × default/TESLA) plus
// the slowdown ratios (paper: ~2.5x clean, ~500x incremental) and the
// smart-incremental ablation (§5.1: the cost "could be pared down through
// further build optimisation").
#include <cstdio>

#include "bench/bench_util.h"
#include "buildsim/buildsim.h"

int main() {
  using namespace tesla::buildsim;

  CorpusOptions corpus_options;
  corpus_options.units = 64;
  corpus_options.functions_per_unit = 14;
  corpus_options.statements_per_function = 10;
  Corpus corpus = GenerateCorpus(corpus_options);

  auto times = MeasureBuild(corpus);
  if (!times.ok()) {
    std::fprintf(stderr, "build failed: %s\n", times.error().ToString().c_str());
    return 1;
  }

  std::printf("Figure 10: build times (%zu translation units)\n\n", times->units);
  std::printf("%-24s %14s %14s\n", "", "Clean build", "Incremental");
  std::printf("%-24s %14s %14s\n", "", "(ms)", "(ms)");
  std::printf("%-24s %14.2f %14.3f\n", "Default", times->clean_default_s * 1e3,
              times->incremental_default_s * 1e3);
  std::printf("%-24s %14.2f %14.3f\n", "TESLA", times->clean_tesla_s * 1e3,
              times->incremental_tesla_s * 1e3);
  std::printf("\nclean slowdown:        %6.1fx   (paper: ~2.5x)\n", times->CleanSlowdown());
  std::printf("incremental slowdown:  %6.1fx   (paper: ~500x — proportional to corpus size;\n",
              times->IncrementalSlowdown());
  std::printf("                                 any .tesla change re-instruments all IR files)\n");
  std::printf("hooks woven into the program: %llu\n",
              static_cast<unsigned long long>(times->instrumented_hooks));

  tesla::bench::JsonReport report("fig10_build");
  report.Add("clean_default", times->clean_default_s * 1e3, "ms");
  report.Add("clean_tesla", times->clean_tesla_s * 1e3, "ms");
  report.Add("incremental_default", times->incremental_default_s * 1e3, "ms");
  report.Add("incremental_tesla", times->incremental_tesla_s * 1e3, "ms");
  report.Add("clean_slowdown", times->CleanSlowdown(), "x");
  report.Add("incremental_slowdown", times->IncrementalSlowdown(), "x");

  // Ablation: restrict re-instrumentation to affected units. A sparse corpus
  // (one assertion) shows the achievable win; the dense corpus above shows
  // why §5.1 calls one-to-many re-instrumentation "a fundamental problem" —
  // with assertions spread across units, almost every unit is affected.
  CorpusOptions sparse_options = corpus_options;
  sparse_options.assertion_every = corpus_options.units * 2;  // only unit 0
  Corpus sparse = GenerateCorpus(sparse_options);
  BuildOptions naive;
  BuildOptions smart;
  smart.smart_incremental = true;
  auto naive_times = MeasureBuild(sparse, naive);
  auto smart_times = MeasureBuild(sparse, smart);
  if (naive_times.ok() && smart_times.ok()) {
    std::printf("\nablation — smart incremental re-instrumentation (sparse corpus,\n");
    std::printf("one assertion):\n");
    std::printf("  naive incremental TESLA: %10.3f ms\n",
                naive_times->incremental_tesla_s * 1e3);
    std::printf("  smart incremental TESLA: %10.3f ms (%.1fx cheaper)\n",
                smart_times->incremental_tesla_s * 1e3,
                smart_times->incremental_tesla_s > 0
                    ? naive_times->incremental_tesla_s / smart_times->incremental_tesla_s
                    : 0.0);
    report.Add("sparse_incremental_naive", naive_times->incremental_tesla_s * 1e3, "ms");
    report.Add("sparse_incremental_smart", smart_times->incremental_tesla_s * 1e3, "ms");
  }
  return report.Write() ? 0 : 1;
}
