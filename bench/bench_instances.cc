// Instance-dispatch scaling: binding-indexed instance stores vs naive scan.
//
// Populates a single open bound with N live automaton instances (one per
// distinct bound value of x), then measures the cost of dispatching one
// fully-bound event — an assertion site carrying a concrete x — as N grows
// from 1 to 10k. The naive mode walks every live instance per event (O(live));
// the binding-keyed index (RuntimeOptions::instance_index) probes one hash
// bucket (O(matching)), so its per-event cost should stay near-flat.
//
// Runs the sweep in both serialisation contexts: per-thread storage and the
// sharded global store (spinlock-guarded). TESLA_BENCH_SMOKE=1 shrinks
// populations and timing windows for CI smoke runs.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "automata/lower.h"
#include "bench/bench_util.h"
#include "runtime/runtime.h"

namespace {

using namespace tesla;

constexpr const char* kPerThreadSource =
    "TESLA_PERTHREAD(call(syscall), returnfrom(syscall), previously(check(x) == 0))";
constexpr const char* kGlobalSource =
    "TESLA_GLOBAL(call(syscall), returnfrom(syscall), previously(check(x) == 0))";

std::unique_ptr<runtime::Runtime> MakeRuntime(const char* source, bool indexed) {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.instance_index = indexed;
  options.instances_per_context = 20000;
  auto rt = std::make_unique<runtime::Runtime>(options);
  auto automaton = automata::CompileAssertion(source, {}, "inst-bench");
  if (!automaton.ok()) {
    std::fprintf(stderr, "compile: %s\n", automaton.error().ToString().c_str());
    return nullptr;
  }
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  if (!rt->Register(manifest).ok()) {
    return nullptr;
  }
  return rt;
}

// ns per fully-bound assertion-site dispatch with `population` live instances.
double MeasureDispatch(const char* source, bool indexed, int population, double min_seconds) {
  auto rt = MakeRuntime(source, indexed);
  if (rt == nullptr) {
    return -1;
  }
  runtime::ThreadContext ctx(*rt);
  uint32_t id = static_cast<uint32_t>(rt->FindAutomaton("inst-bench"));
  Symbol syscall = InternString("syscall");
  Symbol check = InternString("check");

  // One open bound; each distinct check(x) value clones one instance.
  rt->OnFunctionCall(ctx, syscall, {});
  for (int v = 0; v < population; v++) {
    int64_t args[] = {v};
    rt->OnFunctionReturn(ctx, check, args, 0);
  }

  double per_event = tesla::bench::TimePerOp(
      [&](int iterations) {
        for (int i = 0; i < iterations; i++) {
          runtime::Binding site[] = {{0, i % population}};
          rt->OnAssertionSite(ctx, id, site);
        }
      },
      min_seconds);

  if (rt->stats().violations != 0 || rt->stats().overflows != 0) {
    std::fprintf(stderr, "unexpected violations/overflows (pop=%d indexed=%d)\n", population,
                 indexed);
    return -1;
  }
  // Below RuntimeOptions::index_min_population the indexed mode deliberately
  // skips the probe and scans (the small-population crossover fix this bench
  // measures at n=1); past it every fully-bound dispatch must probe.
  const size_t live = static_cast<size_t>(population) + 1;  // clones + wildcard
  const bool expect_probe = live >= rt->options().index_min_population;
  if (indexed && expect_probe && rt->stats().index_probes == 0) {
    std::fprintf(stderr, "index never engaged (pop=%d)\n", population);
    return -1;
  }
  if (indexed && !expect_probe && rt->stats().index_probes != 0) {
    std::fprintf(stderr, "index engaged below the probe threshold (pop=%d)\n", population);
    return -1;
  }
  return per_event * 1e9;
}

}  // namespace

int main() {
  const bool smoke = tesla::bench::SmokeMode();
  const double min_seconds = smoke ? 0.005 : 0.15;
  const std::vector<int> populations =
      smoke ? std::vector<int>{1, 64, 256} : std::vector<int>{1, 10, 100, 1000, 10000};

  const struct {
    const char* label;
    const char* key;
    const char* source;
  } contexts[] = {
      {"per-thread context", "perthread", kPerThreadSource},
      {"sharded global context", "global", kGlobalSource},
  };

  tesla::bench::JsonReport report("instances");
  std::printf("Instance-dispatch scaling: indexed (instance_index=on) vs naive scan\n");
  if (smoke) {
    std::printf("(smoke mode: reduced populations and timing windows)\n");
  }

  bool ok = true;
  for (const auto& context : contexts) {
    std::printf("\n--- %s ---\n", context.label);
    std::printf("%-12s %16s %16s %10s\n", "instances", "scan (ns/event)", "index (ns/event)",
                "speedup");
    double top_speedup = 0;
    int top_population = 0;
    for (int population : populations) {
      double scan = MeasureDispatch(context.source, /*indexed=*/false, population, min_seconds);
      double index = MeasureDispatch(context.source, /*indexed=*/true, population, min_seconds);
      if (scan < 0 || index < 0) {
        ok = false;
        continue;
      }
      double speedup = index > 0 ? scan / index : 0;
      std::printf("%-12d %16.1f %16.1f %9.2fx\n", population, scan, index, speedup);
      const std::string prefix =
          std::string("site_dispatch.") + context.key + ".n" + std::to_string(population);
      report.Add(prefix + ".scan", scan, "ns/event");
      report.Add(prefix + ".indexed", index, "ns/event");
      if (population >= top_population) {
        top_population = population;
        top_speedup = speedup;
      }
    }
    report.Add(std::string("site_dispatch.") + context.key + ".speedup_at_max", top_speedup,
               "x");
    std::printf("speedup at %d live instances: %.2fx\n", top_population, top_speedup);
  }

  std::printf("\nexpected shape: the scan column grows linearly with the live-instance\n");
  std::printf("population; the indexed column stays near-flat (one bucket probe per\n");
  std::printf("event), so the speedup approaches the population size.\n");
  if (!report.Write()) {
    ok = false;
  }
  return ok ? 0 : 1;
}
