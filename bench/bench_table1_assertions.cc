// Table 1: "Assertion sets referenced in figure 11."
//
// Prints the table — symbol, description, assertion count — computed from
// the actual registered suite, and verifies every assertion compiles and
// registers with libtesla.
#include <cstdio>

#include "bench/bench_util.h"
#include "kernelsim/assertions.h"
#include "runtime/runtime.h"

namespace {

struct TableRow {
  const char* symbol;
  const char* description;
  uint32_t sets;
};

}  // namespace

int main() {
  using namespace tesla::kernelsim;

  const TableRow rows[] = {
      {"MF", "MAC (filesystem)", kSetMacFs},
      {"MS", "MAC (sockets)", kSetMacSocket},
      {"MP", "MAC (processes)", kSetMacProc},
      {"M", "All MAC assertions", kSetMac},
      {"P", "Process lifetimes", kSetProc},
      {"All", "All TESLA assertions", kSetAll},
  };

  std::printf("Table 1: Assertion sets referenced in figure 11\n");
  std::printf("%-8s %-28s %10s\n", "Symbol", "Description", "Assertions");
  std::printf("%-8s %-28s %10s\n", "------", "----------------------------", "----------");
  tesla::bench::JsonReport report("table1_assertions");
  bool all_ok = true;
  for (const TableRow& row : rows) {
    size_t count = KernelAssertionSources(row.sets).size();
    std::printf("%-8s %-28s %10zu\n", row.symbol, row.description, count);
    report.Add(std::string("assertion_sets.") + row.symbol, static_cast<double>(count),
               "assertions");

    auto manifest = KernelAssertions(row.sets);
    if (!manifest.ok()) {
      std::printf("  ERROR compiling set %s: %s\n", row.symbol,
                  manifest.error().ToString().c_str());
      all_ok = false;
      continue;
    }
    tesla::runtime::RuntimeOptions options;
    options.fail_stop = false;
    tesla::runtime::Runtime rt(options);
    auto status = rt.Register(manifest.value());
    if (!status.ok()) {
      std::printf("  ERROR registering set %s: %s\n", row.symbol,
                  status.error().ToString().c_str());
      all_ok = false;
    }
  }
  std::printf("\nPaper's counts: MF=25 MS=11 MP=10 M=48 P=37 All=96\n");
  std::printf("%s\n", all_ok ? "All assertion sets compile and register." : "ERRORS above.");
  all_ok = report.Write() && all_ok;
  return all_ok ? 0 : 1;
}
