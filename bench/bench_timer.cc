// Timed-assertion (within_ms / rate) dispatch overhead.
//
// The deadline wheel's contract, CI-gated against the committed
// BENCH_timer.json: merely *registering* a timed class — so every event is
// timestamp-clamped and probes the wheel — costs at most 5 ns/event on a
// stream that never arms a deadline. The steady-state probe is one
// load-and-compare (DeadlineWheel::HasExpired), piggybacked on the clock
// value dispatch already carries; there is no timer thread to preempt
// anything.
//
// Three configurations over the same pre-stamped event stream:
//
//   untimed      no timed class registered: the machinery is compiled out of
//                the hot path entirely (any_timed_ false) — the baseline.
//   timed idle   a within_ms class registered but its bound never entered:
//                per-event clamp + empty-wheel probe. The gated ≤5 ns delta.
//   timed armed  one deadline live far in the future: the probe walks a
//                non-empty wheel. Informational — armed regions are rare.
//
// Events are pre-stamped (producer-supplied timestamps, as the queue, ipc
// and replay paths always are), so the numbers isolate the wheel machinery
// from the cost of an OS clock read. The self-clock row measures the
// unstamped inline path (one steady_clock read per event) for reference.
//
// TESLA_BENCH_SMOKE=1 shrinks the timing windows for CI; the metric set is
// identical so bench_diff can gate smoke runs against the full-run reference.
#include <cstdio>
#include <memory>
#include <string>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "bench/bench_util.h"
#include "runtime/runtime.h"

namespace {

using namespace tesla;

// The hot class: every streamed event steps its self-loop.
constexpr const char* kHotSource =
    "TESLA_WITHIN(svc, previously(ATLEAST(1, tick())))";
// The idle timed class: wd_svc never occurs in the stream, so the clause
// never arms — but its registration turns the timed machinery on.
constexpr const char* kTimedSource =
    "TESLA_WITHIN(wd_svc, within_ms(600000, TSEQUENCE(called(wd_arm), called(wd_pat))))";

std::unique_ptr<runtime::Runtime> MakeRuntime(bool with_timed) {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  auto rt = std::make_unique<runtime::Runtime>(options);
  automata::Manifest manifest;
  auto hot = automata::CompileAssertion(kHotSource, {}, "timer-hot");
  if (!hot.ok()) {
    std::fprintf(stderr, "compile: %s\n", hot.error().ToString().c_str());
    return nullptr;
  }
  manifest.Add(std::move(hot.value()));
  if (with_timed) {
    auto timed = automata::CompileAssertion(kTimedSource, {}, "timer-timed");
    if (!timed.ok()) {
      std::fprintf(stderr, "compile: %s\n", timed.error().ToString().c_str());
      return nullptr;
    }
    manifest.Add(std::move(timed.value()));
  }
  if (!rt->Register(manifest).ok()) {
    return nullptr;
  }
  return rt;
}

enum class Config { kUntimed, kTimedIdle, kTimedArmed, kSelfClock };

// ns per dispatched tick event. Pre-stamped events advance a virtual clock
// 100 ns per event (the armed deadline, 10 minutes out, never fires);
// kSelfClock leaves ts_ns zero so the runtime stamps from steady_clock.
double MeasureNsPerEvent(Config config, double min_seconds) {
  auto rt = MakeRuntime(config != Config::kUntimed);
  if (rt == nullptr) {
    return -1;
  }
  runtime::ThreadContext ctx(*rt);
  uint64_t ts = 1'000'000'000;
  auto stamped = [&ts](runtime::Event event, uint64_t at) {
    event.ts_ns = at;
    return event;
  };
  if (config == Config::kTimedArmed) {
    rt->OnEvent(ctx, stamped(runtime::Event::Call(InternString("wd_svc"), {}), ts));
    rt->OnEvent(ctx, stamped(runtime::Event::Call(InternString("wd_arm"), {}), ts));
  }
  rt->OnEvent(ctx, stamped(runtime::Event::Call(InternString("svc"), {}), ts));
  const Symbol tick = InternString("tick");
  const bool self_clock = config == Config::kSelfClock;
  return tesla::bench::TimePerOp(
             [&](int iterations) {
               for (int i = 0; i < iterations; i++) {
                 runtime::Event event = runtime::Event::Call(tick, {});
                 if (!self_clock) {
                   ts += 100;
                   event.ts_ns = ts;
                 }
                 rt->OnEvent(ctx, event);
               }
             },
             min_seconds) *
         1e9;
}

}  // namespace

int main() {
  const bool smoke = tesla::bench::SmokeMode();
  const double min_seconds = smoke ? 0.02 : 0.25;

  tesla::bench::JsonReport report("timer");
  std::printf("Timed-assertion overhead: ns per dispatched event, pre-stamped stream\n");
  if (smoke) {
    std::printf("(smoke mode: reduced timing windows)\n");
  }

  const struct {
    const char* label;
    const char* key;
    Config config;
  } rows[] = {
      {"untimed (machinery off)", "untimed", Config::kUntimed},
      {"timed registered, idle", "idle", Config::kTimedIdle},
      {"timed armed (far deadline)", "armed", Config::kTimedArmed},
      {"timed idle, self-clocked", "selfclock", Config::kSelfClock},
  };

  bool ok = true;
  double untimed = 0, idle = 0, armed = 0;
  tesla::bench::PrintHeader("timed dispatch", "ns/event");
  for (const auto& row : rows) {
    const double ns = MeasureNsPerEvent(row.config, min_seconds);
    if (ns < 0) {
      ok = false;
      continue;
    }
    if (row.config == Config::kUntimed) {
      untimed = ns;
    } else if (row.config == Config::kTimedIdle) {
      idle = ns;
    } else if (row.config == Config::kTimedArmed) {
      armed = ns;
    }
    tesla::bench::PrintRow(row.label, ns, untimed);
    report.Add(std::string("timer.") + row.key + ".ns_per_event", ns, "ns/event");
  }

  if (untimed > 0 && idle > 0) {
    const double overhead = idle - untimed;
    const double armed_overhead = armed - untimed;
    std::printf("\nidle wheel overhead: %.2f ns/event (armed: %.2f)\n", overhead,
                armed_overhead);
    report.Add("timer.idle.overhead_ns", overhead, "ns/event");
    report.Add("timer.armed.overhead_ns", armed_overhead, "ns/event");
    // The wheel contract, also gated in CI on the committed reference: an
    // idle timed class within 5 ns/event of no timed class at all. A
    // steady-state claim — smoke mode still prints but only full runs gate.
    if (!smoke && overhead > 5.0) {
      std::fprintf(stderr, "FAIL: idle timed overhead %.2f ns/event > 5\n", overhead);
      ok = false;
    }
  }

  if (!report.Write()) {
    ok = false;
  }
  return ok ? 0 : 1;
}
