// Cross-process transport: what does shipping an event into the shm segment
// cost the instrumented caller, versus the in-process async queue?
//
// Both paths interpose the same Runtime ingest hook and pay one SPSC-ring
// push per event; the shm lane speaks the queue's word format minus the
// context-pointer word, but its indices and words live in a mapped segment
// (cross-process atomics, a page-faultable region) instead of process-local
// heap. The DESIGN.md contract, self-gated here and diffed in CI against
// the committed BENCH_ipc.json: the shm enqueue costs at most 2× the
// in-process queue enqueue — going cross-process must not change the
// instrumented binary's cost class.
//
// Protocol (both sides identical, mirroring bench_queue): timed bursts into
// a ring with headroom; the consumer catches up between bursts, untimed.
// The shm consumer drains raw (PollLane, decode-and-discard) — dispatch
// cost belongs to the sidecar and is bench_queue's consumer story, not the
// producer's enqueue story measured here.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "automata/lower.h"
#include "bench/bench_util.h"
#include "ipc/publisher.h"
#include "ipc/subscriber.h"
#include "queue/queue.h"
#include "runtime/runtime.h"

namespace {

using namespace tesla;

// The same workload as bench_queue: four global automata over one alphabet,
// so the hook-side cost being measured sits on an identical event stream.
constexpr const char* kSource =
    "TESLA_GLOBAL(call(begin_txn), returnfrom(end_txn), previously(check(x) == 0))";
constexpr int kClasses = 4;
constexpr int kEventsPerBound = 3 + kClasses;

struct Workload {
  std::unique_ptr<runtime::Runtime> rt;
  uint32_t ids[kClasses] = {};
  Symbol begin_txn, check, end_txn;
};

Workload MakeWorkload() {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  Workload w;
  w.rt = std::make_unique<runtime::Runtime>(options);
  automata::Manifest manifest;
  for (int i = 0; i < kClasses; i++) {
    const std::string name = "ipc-bench-" + std::to_string(i);
    auto automaton = automata::CompileAssertion(kSource, {}, name);
    if (!automaton.ok()) {
      std::fprintf(stderr, "compile: %s\n", automaton.error().ToString().c_str());
      w.rt = nullptr;
      return w;
    }
    manifest.Add(std::move(automaton.value()));
  }
  if (!w.rt->Register(manifest).ok()) {
    w.rt = nullptr;
    return w;
  }
  for (int i = 0; i < kClasses; i++) {
    w.ids[i] = static_cast<uint32_t>(w.rt->FindAutomaton("ipc-bench-" + std::to_string(i)));
  }
  w.begin_txn = InternString("begin_txn");
  w.check = InternString("check");
  w.end_txn = InternString("end_txn");
  return w;
}

void DriveBound(runtime::Runtime& rt, runtime::ThreadContext& ctx, const Workload& w,
                int64_t v) {
  rt.OnFunctionCall(ctx, w.begin_txn, {});
  int64_t args[] = {v % 7};
  rt.OnFunctionReturn(ctx, w.check, args, 0);
  runtime::Binding site[] = {{0, v % 7}};
  for (uint32_t id : w.ids) {
    rt.OnAssertionSite(ctx, id, site);
  }
  rt.OnFunctionReturn(ctx, w.end_txn, {}, 0);
}

// In-process queue enqueue, the reference: timed bursts, Flush() (untimed)
// between them so every burst sees ring headroom.
double MeasureQueueEnqueueNs(double min_seconds) {
  Workload w = MakeWorkload();
  if (w.rt == nullptr) {
    return -1;
  }
  runtime::ThreadContext ctx(*w.rt);
  queue::QueueOptions options;
  options.ring_capacity = 1 << 16;
  options.install_hook = true;
  queue::EventQueue q(*w.rt, options);
  q.Start();

  const int kBurstBounds = (1 << 14) / kEventsPerBound;
  for (int burst = 0; burst < 10; burst++) {  // warm the ring's pages, untimed
    for (int i = 0; i < kBurstBounds; i++) {
      DriveBound(*w.rt, ctx, w, i);
    }
    q.Flush();
  }

  double best_per_event = 1e300;
  double timed_seconds = 0;
  while (timed_seconds < min_seconds) {
    q.Flush();
    const auto begin = bench::Clock::now();
    for (int i = 0; i < kBurstBounds; i++) {
      DriveBound(*w.rt, ctx, w, i);
    }
    const double elapsed = bench::SecondsSince(begin);
    timed_seconds += elapsed;
    best_per_event = std::min(best_per_event, elapsed / (kBurstBounds * kEventsPerBound));
  }
  const uint64_t dropped = q.totals().dropped;
  q.Stop();
  if (w.rt->stats().violations != 0 || dropped != 0) {
    std::fprintf(stderr, "queue workload diverged\n");
    return -1;
  }
  return best_per_event * 1e9;
}

// Shm-lane enqueue: the publisher's ingest hook ships every event into the
// mapped segment; an attached in-process subscriber decode-and-discards on
// another thread. Between bursts the producer waits (untimed) until the
// drain has caught up, so every timed burst pushes into lane headroom.
double MeasureShmEnqueueNs(double min_seconds) {
  Workload w = MakeWorkload();
  if (w.rt == nullptr) {
    return -1;
  }
  runtime::ThreadContext ctx(*w.rt);
  const std::string name = "tesla_bench_ipc_" + std::to_string(::getpid());
  ipc::PublisherOptions options;
  options.lanes = 1;
  options.lane_capacity_events = 1 << 16;
  ipc::ShmPublisher publisher(*w.rt, name, options);
  if (!publisher.Start("bench:ipc").ok()) {
    std::fprintf(stderr, "shm publisher failed to start\n");
    return -1;
  }

  auto attached = ipc::ShmSubscriber::Attach(name, 2000);
  if (!attached.ok()) {
    std::fprintf(stderr, "attach: %s\n", attached.error().ToString().c_str());
    return -1;
  }
  ipc::ShmSubscriber& subscriber = *attached.value();
  subscriber.InternSymbols();  // the spellings are already interned here; no-op remap

  std::atomic<uint64_t> drained{0};
  std::thread drainer([&subscriber, &drained] {
    std::vector<runtime::Event> batch;
    while (true) {
      batch.clear();
      const bool was_closed = subscriber.closed();
      const size_t got = subscriber.PollLane(0, batch, 1024);
      if (got == 0) {
        if (was_closed) {
          return;  // empty after closed: the lane is dry for good
        }
        std::this_thread::yield();
        continue;
      }
      drained.fetch_add(got, std::memory_order_release);
    }
  });

  const int kBurstBounds = (1 << 14) / kEventsPerBound;
  uint64_t pushed = 0;
  auto burst = [&](bool timed, double* out_elapsed) {
    // Untimed: wait for full drain so the burst never sees backpressure.
    while (drained.load(std::memory_order_acquire) < pushed) {
      std::this_thread::yield();
    }
    const auto begin = bench::Clock::now();
    for (int i = 0; i < kBurstBounds; i++) {
      DriveBound(*w.rt, ctx, w, i);
    }
    const double elapsed = bench::SecondsSince(begin);
    pushed += static_cast<uint64_t>(kBurstBounds) * kEventsPerBound;
    if (timed && out_elapsed != nullptr) {
      *out_elapsed = elapsed;
    }
  };

  for (int i = 0; i < 10; i++) {  // page-fault the lane words, untimed
    burst(false, nullptr);
  }
  double best_per_event = 1e300;
  double timed_seconds = 0;
  while (timed_seconds < min_seconds) {
    double elapsed = 0;
    burst(true, &elapsed);
    timed_seconds += elapsed;
    best_per_event = std::min(best_per_event, elapsed / (kBurstBounds * kEventsPerBound));
  }

  publisher.Stop();
  drainer.join();
  const ipc::PublisherStats stats = publisher.stats();
  if (stats.published != pushed || stats.dropped != 0 || stats.lane_overflow != 0 ||
      drained.load() != pushed) {
    std::fprintf(stderr, "shm workload diverged (published=%llu pushed=%llu drained=%llu)\n",
                 static_cast<unsigned long long>(stats.published),
                 static_cast<unsigned long long>(pushed),
                 static_cast<unsigned long long>(drained.load()));
    return -1;
  }
  return best_per_event * 1e9;
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const double min_seconds = smoke ? 0.01 : 0.3;

  std::printf("Cross-process transport: shm-lane enqueue vs in-process queue enqueue\n");
  if (smoke) {
    std::printf("(smoke mode: reduced timing windows)\n");
  }

  const double queue_ns = MeasureQueueEnqueueNs(min_seconds);
  const double shm_ns = MeasureShmEnqueueNs(min_seconds);
  if (queue_ns < 0 || shm_ns < 0) {
    return 1;
  }
  const double ratio = queue_ns > 0 ? shm_ns / queue_ns : 0;

  std::printf("\n%-36s %12.1f ns/event\n", "queue enqueue (in-process ring)", queue_ns);
  std::printf("%-36s %12.1f ns/event\n", "shm enqueue (cross-process lane)", shm_ns);
  std::printf("%-36s %12.2fx\n", "shm vs queue", ratio);
  std::printf("\nexpected shape: both paths are one SPSC push behind the same ingest\n");
  std::printf("hook; the shm lane drops the context word but writes a mapped segment.\n");
  std::printf("Going cross-process must stay within 2x of the in-process enqueue.\n");

  bench::JsonReport report("ipc");
  report.Add("queue_ring.enqueue_ns_per_event", queue_ns, "ns/event");
  report.Add("shm_ring.enqueue_ns_per_event", shm_ns, "ns/event");
  report.Add("shm_vs_queue_ratio", ratio, "x");
  bool ok = report.Write();
  if (ratio > 2.0) {
    std::fprintf(stderr, "FAIL: shm enqueue %.2fx the queue enqueue (> 2x)\n", ratio);
    ok = false;
  }
  return ok ? 0 : 1;
}
