// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation section, printing the same rows/series. Absolute numbers differ
// from the 2013 testbed; the *shape* (who wins, by what factor, where
// crossovers fall) is the reproduction target — see EXPERIMENTS.md.
#ifndef TESLA_BENCH_BENCH_UTIL_H_
#define TESLA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

// Baked in by bench/CMakeLists.txt from `git rev-parse --short HEAD`.
#ifndef TESLA_GIT_SHA
#define TESLA_GIT_SHA "unknown"
#endif

namespace tesla::bench {

using Clock = std::chrono::steady_clock;

inline double SecondsSince(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

// Runs `body(iterations)` with geometrically growing iteration counts until
// at least `min_seconds` elapses; returns seconds per iteration.
inline double TimePerOp(const std::function<void(int)>& body, double min_seconds = 0.2) {
  int iterations = 1;
  while (true) {
    auto begin = Clock::now();
    body(iterations);
    double elapsed = SecondsSince(begin);
    if (elapsed >= min_seconds) {
      break;
    }
    int grow = elapsed <= 0 ? 1000 : static_cast<int>(iterations * (min_seconds / elapsed) * 1.3);
    iterations = std::max(iterations * 2, grow);
  }
  // Repeat at the chosen count and keep the fastest run (noise floors out
  // scheduler interference on shared machines).
  double best = 1e300;
  for (int repeat = 0; repeat < 3; repeat++) {
    auto begin = Clock::now();
    body(iterations);
    best = std::min(best, SecondsSince(begin));
  }
  return best / iterations;
}

struct Row {
  std::string label;
  double value = 0;
  double baseline_ratio = 0;
};

inline void PrintHeader(const std::string& title, const std::string& value_unit) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-28s %14s %10s\n", "configuration", value_unit.c_str(), "vs base");
  std::printf("%-28s %14s %10s\n", "----------------------------", "--------------",
              "----------");
}

inline void PrintRow(const std::string& label, double value, double base) {
  std::printf("%-28s %14.3f %9.2fx\n", label.c_str(), value, base > 0 ? value / base : 0.0);
}

// Machine-readable results. Every bench binary, alongside its human-readable
// table, writes BENCH_<name>.json into $TESLA_BENCH_JSON_DIR (default: the
// current directory) so CI and regression tooling can diff runs without
// scraping stdout. Schema: bench/README.md.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  void Add(const std::string& metric, double value, const std::string& unit) {
    results_.push_back({metric, value, unit});
  }

  // Writes the report; returns false (after perror) if the file can't be
  // opened. Call once at the end of main().
  bool Write() const {
    std::string dir = ".";
    if (const char* env = std::getenv("TESLA_BENCH_JSON_DIR"); env != nullptr && *env != '\0') {
      dir = env;
    }
    std::string path = dir + "/BENCH_" + bench_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::perror(path.c_str());
      return false;
    }
    std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"git_sha\": \"%s\",\n  \"results\": [\n",
                 Escape(bench_).c_str(), Escape(TESLA_GIT_SHA).c_str());
    for (size_t i = 0; i < results_.size(); i++) {
      const Result& r = results_[i];
      std::fprintf(out, "    {\"metric\": \"%s\", \"value\": %.9g, \"unit\": \"%s\"}%s\n",
                   Escape(r.metric).c_str(), r.value, Escape(r.unit).c_str(),
                   i + 1 < results_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct Result {
    std::string metric;
    double value;
    std::string unit;
  };

  static std::string Escape(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';  // metrics are code-controlled; control chars never valid
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::vector<Result> results_;
};

// True when the caller asked for a fast smoke run (CI): iteration counts and
// instance populations should be scaled down so the binary finishes in
// seconds while still exercising every code path.
inline bool SmokeMode() {
  const char* env = std::getenv("TESLA_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && *env != '0';
}

inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * (values.size() - 1));
  return values[index];
}

}  // namespace tesla::bench

#endif  // TESLA_BENCH_BENCH_UTIL_H_
