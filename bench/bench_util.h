// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation section, printing the same rows/series. Absolute numbers differ
// from the 2013 testbed; the *shape* (who wins, by what factor, where
// crossovers fall) is the reproduction target — see EXPERIMENTS.md.
#ifndef TESLA_BENCH_BENCH_UTIL_H_
#define TESLA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace tesla::bench {

using Clock = std::chrono::steady_clock;

inline double SecondsSince(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

// Runs `body(iterations)` with geometrically growing iteration counts until
// at least `min_seconds` elapses; returns seconds per iteration.
inline double TimePerOp(const std::function<void(int)>& body, double min_seconds = 0.2) {
  int iterations = 1;
  while (true) {
    auto begin = Clock::now();
    body(iterations);
    double elapsed = SecondsSince(begin);
    if (elapsed >= min_seconds) {
      break;
    }
    int grow = elapsed <= 0 ? 1000 : static_cast<int>(iterations * (min_seconds / elapsed) * 1.3);
    iterations = std::max(iterations * 2, grow);
  }
  // Repeat at the chosen count and keep the fastest run (noise floors out
  // scheduler interference on shared machines).
  double best = 1e300;
  for (int repeat = 0; repeat < 3; repeat++) {
    auto begin = Clock::now();
    body(iterations);
    best = std::min(best, SecondsSince(begin));
  }
  return best / iterations;
}

struct Row {
  std::string label;
  double value = 0;
  double baseline_ratio = 0;
};

inline void PrintHeader(const std::string& title, const std::string& value_unit) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-28s %14s %10s\n", "configuration", value_unit.c_str(), "vs base");
  std::printf("%-28s %14s %10s\n", "----------------------------", "--------------",
              "----------");
}

inline void PrintRow(const std::string& label, double value, double base) {
  std::printf("%-28s %14.3f %9.2fx\n", label.c_str(), value, base > 0 ? value / base : 0.0);
}

inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * (values.size() - 1));
  return values[index];
}

}  // namespace tesla::bench

#endif  // TESLA_BENCH_BENCH_UTIL_H_
