// Figure 12: "Global assertions require explicit synchronisation, which
// comes at a run-time cost."
//
// Registers the same assertion in the per-thread and the global context and
// drives an identical event stream through both; the global automaton's
// store sits behind a spinlock (libtesla's explicit event serialisation).
// Reports single-threaded cost and the multi-threaded cost under contention.
#include <cstdio>
#include <thread>
#include <vector>

#include "automata/lower.h"
#include "bench/bench_util.h"
#include "runtime/runtime.h"

namespace {

using namespace tesla;

constexpr const char* kPerThreadSource =
    "TESLA_PERTHREAD(call(syscall), returnfrom(syscall), previously(check(x) == 0))";
constexpr const char* kGlobalSource =
    "TESLA_GLOBAL(call(syscall), returnfrom(syscall), previously(check(x) == 0))";

std::unique_ptr<runtime::Runtime> MakeRuntime(const char* source) {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  auto rt = std::make_unique<runtime::Runtime>(options);
  auto automaton = automata::CompileAssertion(source, {}, "ctx-bench");
  if (!automaton.ok()) {
    std::fprintf(stderr, "compile: %s\n", automaton.error().ToString().c_str());
    return nullptr;
  }
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  if (!rt->Register(manifest).ok()) {
    return nullptr;
  }
  return rt;
}

// One bound's worth of events: enter, check, site, exit.
void DriveEvents(runtime::Runtime& rt, runtime::ThreadContext& ctx, uint32_t id,
                 int iterations) {
  Symbol syscall = InternString("syscall");
  Symbol check = InternString("check");
  for (int i = 0; i < iterations; i++) {
    rt.OnFunctionCall(ctx, syscall, {});
    int64_t args[] = {i % 7};
    rt.OnFunctionReturn(ctx, check, args, 0);
    runtime::Binding site[] = {{0, i % 7}};
    rt.OnAssertionSite(ctx, static_cast<uint32_t>(id), site);
    rt.OnFunctionReturn(ctx, syscall, {}, 0);
  }
}

double MeasureSingleThread(const char* source) {
  auto rt = MakeRuntime(source);
  if (rt == nullptr) {
    return -1;
  }
  runtime::ThreadContext ctx(*rt);
  uint32_t id = static_cast<uint32_t>(rt->FindAutomaton("ctx-bench"));
  double min_seconds = bench::SmokeMode() ? 0.01 : 0.2;
  return bench::TimePerOp([&](int n) { DriveEvents(*rt, ctx, id, n); }, min_seconds) * 1e6;
}

double MeasureMultiThread(const char* source, int threads, int per_thread) {
  auto rt = MakeRuntime(source);
  if (rt == nullptr) {
    return -1;
  }
  uint32_t id = static_cast<uint32_t>(rt->FindAutomaton("ctx-bench"));
  auto begin = bench::Clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&rt, id, per_thread] {
      runtime::ThreadContext ctx(*rt);
      DriveEvents(*rt, ctx, id, per_thread);
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  double total = bench::SecondsSince(begin);
  return total / (static_cast<double>(threads) * per_thread) * 1e6;
}

// Beyond the paper: the sharded global store. K independent global automata
// driven by K threads contend on one spinlock when global_shards = 1 (the
// paper's single explicitly-synchronised store) but spread across shard
// locks otherwise, so unrelated global assertions stop serialising each
// other.
double MeasureShardedScaling(size_t shards, int threads, int per_thread) {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.global_shards = shards;
  auto rt = std::make_unique<runtime::Runtime>(options);

  automata::Manifest manifest;
  for (int g = 0; g < threads; g++) {
    const std::string n = std::to_string(g);
    auto automaton = automata::CompileAssertion(
        "TESLA_GLOBAL(call(shard_enter" + n + "), returnfrom(shard_exit" + n +
            "), previously(shard_check" + n + "(x) == 0))",
        {}, "shard-bench-" + n);
    if (!automaton.ok()) {
      std::fprintf(stderr, "compile: %s\n", automaton.error().ToString().c_str());
      return -1;
    }
    manifest.Add(std::move(automaton.value()));
  }
  if (!rt->Register(manifest).ok()) {
    return -1;
  }

  struct ClassSyms {
    Symbol enter, check, exit;
    uint32_t id;
  };
  std::vector<ClassSyms> syms;
  for (int g = 0; g < threads; g++) {
    const std::string n = std::to_string(g);
    syms.push_back({InternString("shard_enter" + n), InternString("shard_check" + n),
                    InternString("shard_exit" + n),
                    static_cast<uint32_t>(rt->FindAutomaton("shard-bench-" + n))});
  }

  auto begin = bench::Clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&rt, &syms, t, per_thread] {
      runtime::ThreadContext ctx(*rt);
      const ClassSyms& s = syms[t];
      for (int i = 0; i < per_thread; i++) {
        rt->OnFunctionCall(ctx, s.enter, {});
        int64_t args[] = {i % 7};
        rt->OnFunctionReturn(ctx, s.check, args, 0);
        runtime::Binding site[] = {{0, i % 7}};
        rt->OnAssertionSite(ctx, s.id, site);
        rt->OnFunctionReturn(ctx, s.exit, {}, 0);
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  double total = bench::SecondsSince(begin);
  return total / (static_cast<double>(threads) * per_thread) * 1e6;
}

}  // namespace

int main() {
  std::printf("Figure 12: per-thread vs global context cost\n");
  bench::PrintHeader("single thread, per bound (enter+check+site+exit)", "us/bound");
  double per_thread = MeasureSingleThread(kPerThreadSource);
  double global = MeasureSingleThread(kGlobalSource);
  if (per_thread < 0 || global < 0) {
    return 1;
  }
  bench::PrintRow("Per-thread", per_thread, per_thread);
  bench::PrintRow("Global", global, per_thread);

  const int threads = 4;
  const int per_thread_iters = bench::SmokeMode() ? 2000 : 20000;
  bench::PrintHeader("4 threads, per bound (contended)", "us/bound");
  double mt_local = MeasureMultiThread(kPerThreadSource, threads, per_thread_iters);
  double mt_global = MeasureMultiThread(kGlobalSource, threads, per_thread_iters);
  bench::PrintRow("Per-thread", mt_local, mt_local);
  bench::PrintRow("Global", mt_global, mt_local);

  bench::PrintHeader("4 threads, 4 independent global automata", "us/bound");
  double one_shard = MeasureShardedScaling(1, threads, per_thread_iters);
  double many_shards = MeasureShardedScaling(8, threads, per_thread_iters);
  if (one_shard < 0 || many_shards < 0) {
    return 1;
  }
  bench::PrintRow("1 shard (single store)", one_shard, one_shard);
  bench::PrintRow("8 shards", many_shards, one_shard);

  std::printf("\npaper's shape: the global context pays for explicit lock-based\n");
  std::printf("serialisation; contention widens the gap. Sharding the global store\n");
  std::printf("removes cross-automaton contention without changing per-class\n");
  std::printf("serialisation semantics.\n");

  bench::JsonReport report("fig12_contexts");
  report.Add("single_thread.per_thread", per_thread, "us/bound");
  report.Add("single_thread.global", global, "us/bound");
  report.Add("contended_4t.per_thread", mt_local, "us/bound");
  report.Add("contended_4t.global", mt_global, "us/bound");
  report.Add("independent_4t.global_1_shard", one_shard, "us/bound");
  report.Add("independent_4t.global_8_shards", many_shards, "us/bound");
  return report.Write() ? 0 : 1;
}
