// Async ingestion: what does the instrumented caller pay per event?
//
// The tesla::queue claim is architectural: with the EventQueue installed,
// the producer thread pays one SPSC-ring enqueue per event instead of full
// dispatch (pattern matching, instance updates and — for global automata —
// shard-lock acquisition). This harness measures both sides of that trade
// on the same workload, a global-automaton bound loop:
//
//   inline      — rt.OnEvent() full dispatch on the calling thread
//   enqueue     — EventQueue::Enqueue() bursts into a half-empty ring,
//                 timed producer-side only; the consumer drains between
//                 bursts, untimed (steady state for a latency-critical
//                 caller with queue headroom)
//
// The DESIGN.md contract, gated in CI against the committed
// BENCH_queue.json: enqueue is at least 5× cheaper than inline dispatch.
// The consumer-side dispatch throughput is reported for context — the queue
// moves the cost, it does not reduce the total.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "automata/lower.h"
#include "bench/bench_util.h"
#include "queue/queue.h"
#include "runtime/runtime.h"

namespace {

using namespace tesla;

// Global automata sharing one alphabet: the paper's deployments (Table 1)
// register many assertions over the same functions, so inline dispatch pays
// multi-class matching plus the shard spinlock on every event — precisely
// the hot-path cost the ROADMAP's async front-end item promises to move off
// the instrumented thread.
constexpr const char* kSource =
    "TESLA_GLOBAL(call(begin_txn), returnfrom(end_txn), previously(check(x) == 0))";
constexpr int kClasses = 4;
constexpr int kEventsPerBound = 3 + kClasses;  // enter, check, sites, exit

struct Workload {
  std::unique_ptr<runtime::Runtime> rt;
  uint32_t ids[kClasses] = {};
  Symbol begin_txn, check, end_txn;
};

Workload MakeWorkload() {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  Workload w;
  w.rt = std::make_unique<runtime::Runtime>(options);
  automata::Manifest manifest;
  for (int i = 0; i < kClasses; i++) {
    const std::string name = "queue-bench-" + std::to_string(i);
    auto automaton = automata::CompileAssertion(kSource, {}, name);
    if (!automaton.ok()) {
      std::fprintf(stderr, "compile: %s\n", automaton.error().ToString().c_str());
      w.rt = nullptr;
      return w;
    }
    manifest.Add(std::move(automaton.value()));
  }
  if (!w.rt->Register(manifest).ok()) {
    w.rt = nullptr;
    return w;
  }
  for (int i = 0; i < kClasses; i++) {
    w.ids[i] = static_cast<uint32_t>(
        w.rt->FindAutomaton("queue-bench-" + std::to_string(i)));
  }
  w.begin_txn = InternString("begin_txn");
  w.check = InternString("check");
  w.end_txn = InternString("end_txn");
  return w;
}

// One bound: enter, check, one site per assertion class, exit —
// kEventsPerBound events, deterministic accept for every class.
void DriveBound(runtime::Runtime& rt, runtime::ThreadContext& ctx, const Workload& w,
                int64_t v) {
  rt.OnFunctionCall(ctx, w.begin_txn, {});
  int64_t args[] = {v % 7};
  rt.OnFunctionReturn(ctx, w.check, args, 0);
  runtime::Binding site[] = {{0, v % 7}};
  for (uint32_t id : w.ids) {
    rt.OnAssertionSite(ctx, id, site);
  }
  rt.OnFunctionReturn(ctx, w.end_txn, {}, 0);
}

double MeasureInlineNs(double min_seconds) {
  Workload w = MakeWorkload();
  if (w.rt == nullptr) {
    return -1;
  }
  runtime::ThreadContext ctx(*w.rt);
  double per_bound = bench::TimePerOp(
      [&](int iterations) {
        for (int i = 0; i < iterations; i++) {
          DriveBound(*w.rt, ctx, w, i);
        }
      },
      min_seconds);
  if (w.rt->stats().violations != 0) {
    std::fprintf(stderr, "inline workload violated\n");
    return -1;
  }
  return per_bound * 1e9 / kEventsPerBound;
}

// Producer-side enqueue cost: timed bursts into a ring with headroom, the
// consumer catching up between bursts (untimed). TimePerOp's growing-window
// protocol would conflate producer and consumer speed once the ring fills,
// so this measures bursts manually and keeps the fastest per-event time.
double MeasureEnqueueNs(double min_seconds, double* consumer_ns) {
  Workload w = MakeWorkload();
  if (w.rt == nullptr) {
    return -1;
  }
  runtime::ThreadContext ctx(*w.rt);

  queue::QueueOptions options;
  options.ring_capacity = 1 << 16;
  options.install_hook = true;  // the full instrumented-caller path
  queue::EventQueue q(*w.rt, options);
  q.Start();

  const int kBurstBounds = (1 << 14) / kEventsPerBound;  // quarter-fill the ring
  // Warm up untimed until the ring has wrapped: the first pass over the ring
  // pays the page faults for its freshly mapped words, which would otherwise
  // dominate a short (smoke-mode) run that times only a handful of bursts.
  for (int burst = 0; burst < 10; burst++) {
    for (int i = 0; i < kBurstBounds; i++) {
      DriveBound(*w.rt, ctx, w, i);
    }
    q.Flush();
  }

  double best_per_event = 1e300;
  double timed_seconds = 0;
  uint64_t total_events = 0;
  const uint64_t warmup_events = q.totals().enqueued;
  const auto wall_begin = bench::Clock::now();
  while (timed_seconds < min_seconds) {
    // Untimed: let the consumer fully catch up so every burst sees headroom.
    q.Flush();
    const auto begin = bench::Clock::now();
    for (int i = 0; i < kBurstBounds; i++) {
      DriveBound(*w.rt, ctx, w, i);
    }
    const double elapsed = bench::SecondsSince(begin);
    timed_seconds += elapsed;
    total_events += static_cast<uint64_t>(kBurstBounds) * kEventsPerBound;
    best_per_event =
        std::min(best_per_event, elapsed / (kBurstBounds * kEventsPerBound));
  }
  const uint64_t enqueued = q.totals().enqueued;
  q.Stop();
  const double wall = bench::SecondsSince(wall_begin);

  if (w.rt->stats().violations != 0 || q.totals().dropped != 0 ||
      w.rt->stats().queue_events != enqueued ||
      enqueued != warmup_events + total_events) {
    std::fprintf(stderr, "async workload diverged (violations=%llu dropped=%llu)\n",
                 static_cast<unsigned long long>(w.rt->stats().violations),
                 static_cast<unsigned long long>(q.totals().dropped));
    return -1;
  }
  // Context: events/s the single consumer sustained over the whole run
  // (producer bursts + drain gaps), expressed as ns/event.
  if (consumer_ns != nullptr) {
    *consumer_ns = wall / static_cast<double>(total_events) * 1e9;
  }
  return best_per_event * 1e9;
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const double min_seconds = smoke ? 0.01 : 0.3;

  std::printf("Async queue: producer-side enqueue vs inline dispatch (global automaton)\n");
  if (smoke) {
    std::printf("(smoke mode: reduced timing windows)\n");
  }

  const double inline_ns = MeasureInlineNs(min_seconds);
  double consumer_ns = -1;
  const double enqueue_ns = MeasureEnqueueNs(min_seconds, &consumer_ns);
  if (inline_ns < 0 || enqueue_ns < 0) {
    return 1;
  }

  const double speedup = enqueue_ns > 0 ? inline_ns / enqueue_ns : 0;
  std::printf("\n%-32s %12.1f ns/event\n", "inline full dispatch", inline_ns);
  std::printf("%-32s %12.1f ns/event\n", "async enqueue (producer pays)", enqueue_ns);
  std::printf("%-32s %12.1f ns/event\n", "consumer throughput (context)", consumer_ns);
  std::printf("%-32s %12.1fx\n", "producer-side speedup", speedup);
  std::printf("\nexpected shape: enqueue is >= 5x cheaper than inline dispatch — the\n");
  std::printf("caller pays one SPSC TryPush (word stores + release publish) while the\n");
  std::printf("consumer thread absorbs matching, instance updates and shard locking.\n");

  bench::JsonReport report("queue");
  report.Add("inline.ns_per_event", inline_ns, "ns/event");
  report.Add("enqueue.ns_per_event", enqueue_ns, "ns/event");
  report.Add("consumer.ns_per_event", consumer_ns, "ns/event");
  report.Add("producer_speedup", speedup, "x");
  bool ok = report.Write();
  if (speedup < 5.0) {
    std::fprintf(stderr, "FAIL: producer-side speedup %.1fx < 5x\n", speedup);
    ok = false;
  }
  return ok ? 0 : 1;
}
