// Async ingestion: what does the instrumented caller pay per event?
//
// The tesla::queue claim is architectural: with the EventQueue installed,
// the producer thread pays one SPSC-ring enqueue per event instead of full
// dispatch (pattern matching, instance updates and — for global automata —
// shard-lock acquisition). This harness measures both sides of that trade
// on the same workload, a global-automaton bound loop:
//
//   inline      — rt.OnEvent() full dispatch on the calling thread
//   enqueue     — EventQueue::Enqueue() bursts into a half-empty ring,
//                 timed producer-side only; the consumer drains between
//                 bursts, untimed (steady state for a latency-critical
//                 caller with queue headroom)
//
// The DESIGN.md contract, gated in CI against the committed
// BENCH_queue.json: enqueue is at least 5× cheaper than inline dispatch.
// The consumer-side dispatch throughput is reported for context — the queue
// moves the cost, it does not reduce the total.
//
// The second half of the harness measures what shard-owned multi-consumer
// dispatch does to that total: a 1→N consumer sweep over a workload of
// eight disjoint-alphabet global automata spread across eight shards, four
// producer threads feeding the queue. Aggregate drain throughput is
// computed from per-consumer *thread-CPU* time (ConsumerStats::busy_ns):
// total events divided by the busiest consumer's dispatch time — the
// critical-path model, which equals wall-clock throughput once the machine
// has at least as many cores as consumers, and remains meaningful (and is
// reported honestly) when it does not. The DESIGN.md contract, self-gated
// below and in CI: ≥3× aggregate throughput at 4 consumers vs 1.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "automata/lower.h"
#include "bench/bench_util.h"
#include "queue/queue.h"
#include "runtime/runtime.h"

namespace {

using namespace tesla;

// Global automata sharing one alphabet: the paper's deployments (Table 1)
// register many assertions over the same functions, so inline dispatch pays
// multi-class matching plus the shard spinlock on every event — precisely
// the hot-path cost the ROADMAP's async front-end item promises to move off
// the instrumented thread.
constexpr const char* kSource =
    "TESLA_GLOBAL(call(begin_txn), returnfrom(end_txn), previously(check(x) == 0))";
constexpr int kClasses = 4;
constexpr int kEventsPerBound = 3 + kClasses;  // enter, check, sites, exit

struct Workload {
  std::unique_ptr<runtime::Runtime> rt;
  uint32_t ids[kClasses] = {};
  Symbol begin_txn, check, end_txn;
};

Workload MakeWorkload() {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  Workload w;
  w.rt = std::make_unique<runtime::Runtime>(options);
  automata::Manifest manifest;
  for (int i = 0; i < kClasses; i++) {
    const std::string name = "queue-bench-" + std::to_string(i);
    auto automaton = automata::CompileAssertion(kSource, {}, name);
    if (!automaton.ok()) {
      std::fprintf(stderr, "compile: %s\n", automaton.error().ToString().c_str());
      w.rt = nullptr;
      return w;
    }
    manifest.Add(std::move(automaton.value()));
  }
  if (!w.rt->Register(manifest).ok()) {
    w.rt = nullptr;
    return w;
  }
  for (int i = 0; i < kClasses; i++) {
    w.ids[i] = static_cast<uint32_t>(
        w.rt->FindAutomaton("queue-bench-" + std::to_string(i)));
  }
  w.begin_txn = InternString("begin_txn");
  w.check = InternString("check");
  w.end_txn = InternString("end_txn");
  return w;
}

// One bound: enter, check, one site per assertion class, exit —
// kEventsPerBound events, deterministic accept for every class.
void DriveBound(runtime::Runtime& rt, runtime::ThreadContext& ctx, const Workload& w,
                int64_t v) {
  rt.OnFunctionCall(ctx, w.begin_txn, {});
  int64_t args[] = {v % 7};
  rt.OnFunctionReturn(ctx, w.check, args, 0);
  runtime::Binding site[] = {{0, v % 7}};
  for (uint32_t id : w.ids) {
    rt.OnAssertionSite(ctx, id, site);
  }
  rt.OnFunctionReturn(ctx, w.end_txn, {}, 0);
}

double MeasureInlineNs(double min_seconds) {
  Workload w = MakeWorkload();
  if (w.rt == nullptr) {
    return -1;
  }
  runtime::ThreadContext ctx(*w.rt);
  double per_bound = bench::TimePerOp(
      [&](int iterations) {
        for (int i = 0; i < iterations; i++) {
          DriveBound(*w.rt, ctx, w, i);
        }
      },
      min_seconds);
  if (w.rt->stats().violations != 0) {
    std::fprintf(stderr, "inline workload violated\n");
    return -1;
  }
  return per_bound * 1e9 / kEventsPerBound;
}

// Producer-side enqueue cost: timed bursts into a ring with headroom, the
// consumer catching up between bursts (untimed). TimePerOp's growing-window
// protocol would conflate producer and consumer speed once the ring fills,
// so this measures bursts manually and keeps the fastest per-event time.
double MeasureEnqueueNs(double min_seconds, double* consumer_ns) {
  Workload w = MakeWorkload();
  if (w.rt == nullptr) {
    return -1;
  }
  runtime::ThreadContext ctx(*w.rt);

  queue::QueueOptions options;
  options.ring_capacity = 1 << 16;
  options.install_hook = true;  // the full instrumented-caller path
  queue::EventQueue q(*w.rt, options);
  q.Start();

  const int kBurstBounds = (1 << 14) / kEventsPerBound;  // quarter-fill the ring
  // Warm up untimed until the ring has wrapped: the first pass over the ring
  // pays the page faults for its freshly mapped words, which would otherwise
  // dominate a short (smoke-mode) run that times only a handful of bursts.
  for (int burst = 0; burst < 10; burst++) {
    for (int i = 0; i < kBurstBounds; i++) {
      DriveBound(*w.rt, ctx, w, i);
    }
    q.Flush();
  }

  double best_per_event = 1e300;
  double timed_seconds = 0;
  uint64_t total_events = 0;
  const uint64_t warmup_events = q.totals().enqueued;
  const auto wall_begin = bench::Clock::now();
  while (timed_seconds < min_seconds) {
    // Untimed: let the consumer fully catch up so every burst sees headroom.
    q.Flush();
    const auto begin = bench::Clock::now();
    for (int i = 0; i < kBurstBounds; i++) {
      DriveBound(*w.rt, ctx, w, i);
    }
    const double elapsed = bench::SecondsSince(begin);
    timed_seconds += elapsed;
    total_events += static_cast<uint64_t>(kBurstBounds) * kEventsPerBound;
    best_per_event =
        std::min(best_per_event, elapsed / (kBurstBounds * kEventsPerBound));
  }
  const uint64_t enqueued = q.totals().enqueued;
  q.Stop();
  const double wall = bench::SecondsSince(wall_begin);

  if (w.rt->stats().violations != 0 || q.totals().dropped != 0 ||
      w.rt->stats().queue_events != enqueued ||
      enqueued != warmup_events + total_events) {
    std::fprintf(stderr, "async workload diverged (violations=%llu dropped=%llu)\n",
                 static_cast<unsigned long long>(w.rt->stats().violations),
                 static_cast<unsigned long long>(q.totals().dropped));
    return -1;
  }
  // Context: events/s the single consumer sustained over the whole run
  // (producer bursts + drain gaps), expressed as ns/event.
  if (consumer_ns != nullptr) {
    *consumer_ns = wall / static_cast<double>(total_events) * 1e9;
  }
  return best_per_event * 1e9;
}

// --- Consumer sweep -------------------------------------------------------

// Eight global classes with disjoint alphabets, one per shard: per-shard
// dispatch work partitions cleanly across consumer-owned shards, which is
// the workload shape the ownership refactor targets (many independent
// assertions, as in the paper's Table 1 deployments).
constexpr int kSweepClasses = 8;
constexpr int kSweepProducers = 4;
constexpr int kSweepEventsPerBound = 4;  // enter, check, site, exit

struct SweepWorkload {
  std::unique_ptr<runtime::Runtime> rt;
  uint32_t ids[kSweepClasses] = {};
  Symbol enter[kSweepClasses], check[kSweepClasses], exit[kSweepClasses];
};

SweepWorkload MakeSweepWorkload() {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.global_shards = kSweepClasses;
  SweepWorkload w;
  w.rt = std::make_unique<runtime::Runtime>(options);
  automata::Manifest manifest;
  for (int k = 0; k < kSweepClasses; k++) {
    const std::string n = std::to_string(k);
    const std::string source = "TESLA_GLOBAL(call(senter" + n + "), returnfrom(sexit" + n +
                               "), previously(scheck" + n + "(x) == 0))";
    auto automaton = automata::CompileAssertion(source, {}, "sweep-" + n);
    if (!automaton.ok()) {
      std::fprintf(stderr, "compile: %s\n", automaton.error().ToString().c_str());
      w.rt = nullptr;
      return w;
    }
    manifest.Add(std::move(automaton.value()));
  }
  if (!w.rt->Register(manifest).ok()) {
    w.rt = nullptr;
    return w;
  }
  for (int k = 0; k < kSweepClasses; k++) {
    const std::string n = std::to_string(k);
    w.ids[k] = static_cast<uint32_t>(w.rt->FindAutomaton("sweep-" + n));
    w.enter[k] = InternString("senter" + n);
    w.check[k] = InternString("scheck" + n);
    w.exit[k] = InternString("sexit" + n);
  }
  return w;
}

// One accepting bound of sweep class `k`: 4 events, deterministic accept.
void DriveSweepBound(runtime::Runtime& rt, runtime::ThreadContext& ctx,
                     const SweepWorkload& w, int k, int64_t v) {
  rt.OnFunctionCall(ctx, w.enter[k], {});
  int64_t args[] = {v % 7};
  rt.OnFunctionReturn(ctx, w.check[k], args, 0);
  runtime::Binding site[] = {{0, v % 7}};
  rt.OnAssertionSite(ctx, w.ids[k], site);
  rt.OnFunctionReturn(ctx, w.exit[k], {}, 0);
}

struct SweepResult {
  double ns_per_event = -1;  // critical path: busiest consumer's busy_ns / events
  double mev_per_s = 0;
  double wall_seconds = 0;
  uint64_t events = 0;
  uint64_t forwards = 0;
  uint64_t steals = 0;
};

// Drains the whole sweep workload through `consumers` drain threads and
// reports aggregate throughput on the dispatch critical path.
SweepResult MeasureDrain(size_t consumers, int bounds_per_class) {
  SweepResult result;
  SweepWorkload w = MakeSweepWorkload();
  if (w.rt == nullptr) {
    return result;
  }
  // Contexts outlive Stop(), as the queue requires of enqueued-through
  // contexts.
  std::vector<std::unique_ptr<runtime::ThreadContext>> contexts;
  for (int p = 0; p < kSweepProducers; p++) {
    contexts.push_back(std::make_unique<runtime::ThreadContext>(*w.rt));
  }

  queue::QueueOptions options;
  options.ring_capacity = 1 << 14;
  options.consumers = consumers;
  options.install_hook = true;
  queue::EventQueue q(*w.rt, options);
  q.Start();

  // Producer p drives classes p and p + 4 (both owned by consumer p mod 4
  // in the 4-consumer configuration): every producer's shard-stage work
  // lands on one owner, and the owners partition the eight shards evenly.
  const auto wall_begin = bench::Clock::now();
  std::vector<std::thread> producers;
  for (int p = 0; p < kSweepProducers; p++) {
    producers.emplace_back([&w, &contexts, bounds_per_class, p] {
      runtime::ThreadContext& ctx = *contexts[p];
      for (int i = 0; i < bounds_per_class; i++) {
        DriveSweepBound(*w.rt, ctx, w, p, i);
        DriveSweepBound(*w.rt, ctx, w, p + kSweepProducers, i);
      }
    });
  }
  for (std::thread& producer : producers) {
    producer.join();
  }
  q.Stop();
  result.wall_seconds = bench::SecondsSince(wall_begin);

  const uint64_t expected = static_cast<uint64_t>(kSweepProducers) * 2 *
                            bounds_per_class * kSweepEventsPerBound;
  const runtime::RuntimeStats& stats = w.rt->stats();
  if (stats.violations != 0 || q.totals().dropped != 0 ||
      stats.queue_events != q.totals().enqueued || stats.queue_events != expected) {
    std::fprintf(stderr,
                 "sweep diverged at %zu consumers (events=%llu expected=%llu "
                 "violations=%llu dropped=%llu)\n",
                 consumers, static_cast<unsigned long long>(stats.queue_events),
                 static_cast<unsigned long long>(expected),
                 static_cast<unsigned long long>(stats.violations),
                 static_cast<unsigned long long>(q.totals().dropped));
    return result;
  }

  uint64_t max_busy = 0;
  for (const queue::ConsumerStats& consumer : q.consumer_stats()) {
    max_busy = std::max(max_busy, consumer.busy_ns);
  }
  if (max_busy == 0) {
    return result;
  }
  result.events = stats.queue_events;
  result.forwards = stats.queue_forwards;
  result.steals = stats.queue_steals;
  result.ns_per_event = static_cast<double>(max_busy) / static_cast<double>(result.events);
  result.mev_per_s = 1e3 / result.ns_per_event;
  return result;
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const double min_seconds = smoke ? 0.01 : 0.3;

  std::printf("Async queue: producer-side enqueue vs inline dispatch (global automaton)\n");
  if (smoke) {
    std::printf("(smoke mode: reduced timing windows)\n");
  }

  const double inline_ns = MeasureInlineNs(min_seconds);
  double consumer_ns = -1;
  const double enqueue_ns = MeasureEnqueueNs(min_seconds, &consumer_ns);
  if (inline_ns < 0 || enqueue_ns < 0) {
    return 1;
  }

  const double speedup = enqueue_ns > 0 ? inline_ns / enqueue_ns : 0;
  std::printf("\n%-32s %12.1f ns/event\n", "inline full dispatch", inline_ns);
  std::printf("%-32s %12.1f ns/event\n", "async enqueue (producer pays)", enqueue_ns);
  std::printf("%-32s %12.1f ns/event\n", "consumer throughput (context)", consumer_ns);
  std::printf("%-32s %12.1fx\n", "producer-side speedup", speedup);
  std::printf("\nexpected shape: enqueue is >= 5x cheaper than inline dispatch — the\n");
  std::printf("caller pays one SPSC TryPush (word stores + release publish) while the\n");
  std::printf("consumer thread absorbs matching, instance updates and shard locking.\n");

  // Consumer sweep: aggregate drain throughput at 1, 2 and 4 consumers.
  const int bounds_per_class = smoke ? 2000 : 60000;
  std::printf("\nShard-owned multi-consumer drain (8 classes / 8 shards, %d producers,\n"
              "%d bounds per class%s); throughput on the dispatch critical path\n"
              "(busiest consumer's thread-CPU time):\n\n",
              kSweepProducers, bounds_per_class, smoke ? ", smoke" : "");
  std::printf("%-12s %14s %14s %10s %12s %8s\n", "consumers", "ns/event", "Mev/s",
              "vs c1", "forwards", "steals");
  const size_t sweep_points[] = {1, 2, 4};
  SweepResult sweep[3];
  bool sweep_ok = true;
  for (int i = 0; i < 3; i++) {
    sweep[i] = MeasureDrain(sweep_points[i], bounds_per_class);
    if (sweep[i].ns_per_event <= 0) {
      sweep_ok = false;
      continue;
    }
    std::printf("%-12zu %14.1f %14.2f %9.2fx %12llu %8llu\n", sweep_points[i],
                sweep[i].ns_per_event, sweep[i].mev_per_s,
                sweep[0].ns_per_event > 0 ? sweep[0].ns_per_event / sweep[i].ns_per_event : 0,
                static_cast<unsigned long long>(sweep[i].forwards),
                static_cast<unsigned long long>(sweep[i].steals));
  }
  const double drain_speedup =
      sweep_ok ? sweep[0].ns_per_event / sweep[2].ns_per_event : 0;
  std::printf("\nexpected shape: shard ownership lets consumers drain without the\n");
  std::printf("global-shard spinlock, so aggregate throughput scales until forwarding\n");
  std::printf("overhead bites — >= 3x at 4 consumers on this workload.\n");

  bench::JsonReport report("queue");
  report.Add("inline.ns_per_event", inline_ns, "ns/event");
  report.Add("enqueue.ns_per_event", enqueue_ns, "ns/event");
  report.Add("consumer.ns_per_event", consumer_ns, "ns/event");
  report.Add("producer_speedup", speedup, "x");
  if (sweep_ok) {
    for (int i = 0; i < 3; i++) {
      const std::string prefix = "drain.c" + std::to_string(sweep_points[i]);
      report.Add(prefix + ".ns_per_event", sweep[i].ns_per_event, "ns/event");
      report.Add(prefix + ".mev_per_s", sweep[i].mev_per_s, "Mev/s");
    }
    report.Add("drain.speedup_c4", drain_speedup, "x");
  }
  bool ok = report.Write() && sweep_ok;
  if (speedup < 5.0) {
    std::fprintf(stderr, "FAIL: producer-side speedup %.1fx < 5x\n", speedup);
    ok = false;
  }
  // The multi-consumer contract is a steady-state claim; smoke mode's tiny
  // run still prints the sweep but only the full run gates on it.
  if (!smoke && sweep_ok && drain_speedup < 3.0) {
    std::fprintf(stderr, "FAIL: 4-consumer drain speedup %.1fx < 3x\n", drain_speedup);
    ok = false;
  }
  return ok ? 0 : 1;
}
