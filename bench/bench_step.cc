// Stepping-tier cost isolation: interpreted vs threaded-bytecode vs
// shape-specialised step kernels (RuntimeOptions::step_tier, runtime/step.h).
//
// Two workloads, each a steady-state stream of assertion-site events batched
// through OnEvents():
//   * dfa — a DFA-trackable class (previously(check(x) == 0)): the
//     specialised tier steps by one packed-row table lookup;
//   * nfa — an incallstack() class: every tier runs exact NFA union
//     semantics (mask-and-union tables in the specialised tier).
//
// Each site event carries no bindings, so it exact-matches every live
// instance: with P bound values the per-event cost is the shared dispatch
// overhead plus P kernel invocations (the (*) wildcard only consumes site
// events when a site edge exists in its pre-check state, as in the
// incallstack() variant), which is what separates the tiers. The assertion
// site self-loops, so the stream runs indefinitely inside one open bound with
// zero clones, violations or accepts.
//
// BENCH_step.json carries per-tier ns/event for both workloads plus the
// step.{specialised,interpreted}.ns_per_event aliases CI gates on: the
// specialised tier must dispatch in under 30 ns/event AND at least 2x faster
// than the interpreted tier on the same workload.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "automata/lower.h"
#include "bench/bench_util.h"
#include "runtime/runtime.h"

namespace {

using namespace tesla;
using runtime::StepTier;

constexpr const char* kDfaSource =
    "TESLA_PERTHREAD(call(syscall), returnfrom(syscall), previously(check(x) == 0))";
constexpr const char* kNfaSource =
    "TESLA_PERTHREAD(call(syscall), returnfrom(syscall), "
    "incallstack(helper) || previously(check(x) == 0))";

// Bound values live in the open bound — each site event steps at least this
// many instances. Small enough that one event stays cache-resident, large
// enough that kernel cost — not the shared dispatch prologue — dominates the
// measurement.
constexpr int kPopulation = 8;
constexpr int kBatch = 256;

struct TierCase {
  StepTier tier;
  const char* key;
};

constexpr TierCase kTiers[] = {
    {StepTier::kInterpreted, "interpreted"},
    {StepTier::kThreaded, "threaded"},
    {StepTier::kSpecialised, "specialised"},
};

std::unique_ptr<runtime::Runtime> MakeRuntime(const char* source, StepTier tier) {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.step_tier = tier;
  options.instances_per_context = 4096;
  auto rt = std::make_unique<runtime::Runtime>(options);
  auto automaton = automata::CompileAssertion(source, {}, "step-bench");
  if (!automaton.ok()) {
    std::fprintf(stderr, "compile: %s\n", automaton.error().ToString().c_str());
    return nullptr;
  }
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  if (!rt->Register(manifest).ok()) {
    return nullptr;
  }
  return rt;
}

// ns per site event, steady state: >= kPopulation instances stepping per event.
double MeasureSteps(const char* source, StepTier tier, bool in_helper, double min_seconds) {
  auto rt = MakeRuntime(source, tier);
  if (rt == nullptr) {
    return -1;
  }
  runtime::ThreadContext ctx(*rt);
  const uint32_t id = static_cast<uint32_t>(rt->FindAutomaton("step-bench"));

  // One open bound, kPopulation bound values; the NFA workload additionally
  // sits inside helper() so the incallstack() site variant stays satisfied
  // and every event is a genuine multi-symbol NFA step.
  rt->OnFunctionCall(ctx, InternString("syscall"), {});
  if (in_helper) {
    rt->OnFunctionCall(ctx, InternString("helper"), {});
  }
  for (int v = 0; v < kPopulation; v++) {
    int64_t args[] = {v};
    rt->OnFunctionReturn(ctx, InternString("check"), args, 0);
  }

  std::vector<runtime::Event> batch(kBatch, runtime::Event::Site(id, {}));
  rt->OnEvents(ctx, batch);  // warm: every instance into its self-loop state

  const uint64_t transitions_before = rt->stats().transitions;
  uint64_t batches = 0;
  double per_batch = tesla::bench::TimePerOp(
      [&](int iterations) {
        for (int i = 0; i < iterations; i++) {
          rt->OnEvents(ctx, batch);
        }
        batches += static_cast<uint64_t>(iterations);
      },
      min_seconds);

  // Steady-state sanity: every event stepped at least the bound population
  // (the (*) wildcard only joins in when a site-consuming edge exists in its
  // pre-check state, e.g. via the incallstack() variant), and nothing
  // violated, cloned or overflowed.
  const uint64_t stepped = rt->stats().transitions - transitions_before;
  const uint64_t expect = batches * kBatch * kPopulation;
  if (rt->stats().violations != 0 || rt->stats().overflows != 0 || stepped < expect) {
    std::fprintf(stderr, "bad steady state (tier=%d): %llu violations, %llu/%llu transitions\n",
                 static_cast<int>(tier),
                 static_cast<unsigned long long>(rt->stats().violations),
                 static_cast<unsigned long long>(stepped),
                 static_cast<unsigned long long>(expect));
    return -1;
  }
  return per_batch / kBatch * 1e9;
}

}  // namespace

int main() {
  const bool smoke = tesla::bench::SmokeMode();
  const double min_seconds = smoke ? 0.02 : 0.25;

  const struct {
    const char* label;
    const char* key;
    const char* source;
    bool in_helper;
  } workloads[] = {
      {"DFA-trackable class (packed kernel)", "dfa", kDfaSource, false},
      {"incallstack() class (NFA kernels)", "nfa", kNfaSource, true},
  };

  tesla::bench::JsonReport report("step");
  std::printf("Stepping-tier isolation: %d bound instances stepped per site event\n", kPopulation);
  if (smoke) {
    std::printf("(smoke mode: reduced timing windows)\n");
  }

  bool ok = true;
  double dfa_by_tier[3] = {0, 0, 0};
  for (const auto& workload : workloads) {
    std::printf("\n--- %s ---\n", workload.label);
    std::printf("%-14s %16s %10s\n", "tier", "ns/event", "vs interp");
    double interp = 0;
    for (size_t t = 0; t < 3; t++) {
      double ns = MeasureSteps(workload.source, kTiers[t].tier, workload.in_helper, min_seconds);
      if (ns < 0) {
        ok = false;
        continue;
      }
      if (kTiers[t].tier == StepTier::kInterpreted) {
        interp = ns;
      }
      if (std::string(workload.key) == "dfa") {
        dfa_by_tier[t] = ns;
      }
      std::printf("%-14s %16.1f %9.2fx\n", kTiers[t].key, ns, ns > 0 ? interp / ns : 0.0);
      report.Add(std::string("step.") + workload.key + "." + kTiers[t].key + ".ns_per_event",
                 ns, "ns/event");
    }
  }

  // The CI gate's aliases: the DFA workload is the dispatch-rate headline.
  if (dfa_by_tier[0] > 0 && dfa_by_tier[2] > 0) {
    report.Add("step.interpreted.ns_per_event", dfa_by_tier[0], "ns/event");
    report.Add("step.specialised.ns_per_event", dfa_by_tier[2], "ns/event");
    std::printf("\nspecialised dispatch: %.1f ns/event (%.2fx over interpreted)\n",
                dfa_by_tier[2], dfa_by_tier[2] > 0 ? dfa_by_tier[0] / dfa_by_tier[2] : 0.0);
  }

  // The stepping-tier contract, also gated in CI: specialised dispatch under
  // 30 ns/event AND at least 2x over the interpreted tier on the same
  // workload. A steady-state claim — smoke mode's tiny timing windows still
  // print the table but only the full run gates on it.
  if (!smoke && dfa_by_tier[0] > 0 && dfa_by_tier[2] > 0) {
    if (dfa_by_tier[2] >= 30.0) {
      std::fprintf(stderr, "FAIL: specialised dispatch %.1f ns/event >= 30\n", dfa_by_tier[2]);
      ok = false;
    }
    if (dfa_by_tier[0] < 2.0 * dfa_by_tier[2]) {
      std::fprintf(stderr, "FAIL: specialised only %.2fx over interpreted (< 2x)\n",
                   dfa_by_tier[0] / dfa_by_tier[2]);
      ok = false;
    }
  }

  if (!report.Write()) {
    ok = false;
  }
  return ok ? 0 : 1;
}
