// Figure 9: "An automaton for a MAC check assertion. Transitions are
// weighted according to their occurrence at run time."
//
// Compiles the fig. 9 assertion —
//   TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(ptr), so) == 0)
// — runs a socket-heavy workload on the instrumented kernel with the DTrace-
// style counting handler attached, maps the observed NFA state-set
// transitions onto the determinised automaton, and emits both a weighted
// table and Graphviz DOT (the machine-readable form of the figure).
#include <cstdio>
#include <map>

#include "automata/determinize.h"
#include "automata/dot.h"
#include "bench/bench_util.h"
#include "runtime/coverage.h"
#include "kernelsim/assertions.h"
#include "kernelsim/kernel.h"
#include "kernelsim/workloads.h"
#include "runtime/runtime.h"

int main() {
  using namespace tesla;
  using namespace tesla::kernelsim;

  runtime::RuntimeOptions options;
  options.fail_stop = false;
  runtime::Runtime rt(options);
  auto manifest = KernelAssertions(kSetMacSocket);
  if (!manifest.ok()) {
    std::fprintf(stderr, "manifest: %s\n", manifest.error().ToString().c_str());
    return 1;
  }
  if (auto status = rt.Register(manifest.value()); !status.ok()) {
    std::fprintf(stderr, "register: %s\n", status.error().ToString().c_str());
    return 1;
  }
  runtime::CountingHandler counter;
  rt.AddHandler(&counter);

  KernelConfig config;
  config.tesla = &rt;
  Kernel kernel(config);
  Proc* proc = kernel.NewProcess(0);
  KThread td = kernel.NewThread(proc);

  // Socket traffic with polling: drives the fig. 9 automaton.
  OltpTransactions(kernel, td, 2000);
  for (int i = 0; i < 500; i++) {
    int64_t sock = kernel.SysSocket(td);
    kernel.SysPoll(td, sock, 1);
    kernel.SysSelect(td, sock, 1);
    kernel.SysClose(td, sock);
  }

  int id = rt.FindAutomaton("mac.socket.poll");
  if (id < 0) {
    std::fprintf(stderr, "automaton not found\n");
    return 1;
  }
  const automata::Automaton& automaton = rt.automaton(static_cast<uint32_t>(id));
  const automata::Dfa& dfa = rt.dfa(static_cast<uint32_t>(id));

  automata::TransitionWeights weights =
      runtime::CoverageWeights(dfa, counter, static_cast<uint32_t>(id));
  uint64_t total = 0;
  for (const auto& [key, count] : weights) {
    total += count;
  }

  std::printf("Figure 9: weighted automaton for\n  %s\n\n", automaton.source_text.c_str());
  std::printf("%-12s %-44s %12s\n", "from", "symbol", "count");
  std::printf("%-12s %-44s %12s\n", "------------",
              "--------------------------------------------", "------------");
  for (const auto& [key, count] : weights) {
    std::string label = automaton.alphabet[key.second].ToString();
    if (key.second == automaton.init_symbol) label += "  «init»";
    if (key.second == automaton.cleanup_symbol) label += "  «cleanup»";
    if (automaton.has_site && key.second == automaton.site_symbol) label += "  «assertion»";
    std::printf("%-12s %-44s %12llu\n", dfa.StateLabel(key.first).c_str(), label.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\ntotal observed transitions: %llu (runtime transitions: %llu)\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(rt.stats().transitions));
  std::printf("violations: %llu (expected 0 on the clean kernel)\n\n",
              static_cast<unsigned long long>(rt.stats().violations));

  // §4.4.2's logical coverage view: which parts of the state graph ran.
  runtime::CoverageReport coverage =
      runtime::ComputeCoverage(automaton, dfa, counter, static_cast<uint32_t>(id));
  std::printf("---- logical coverage (paper §4.4.2) ----\n%s\n",
              coverage.ToString().c_str());

  std::printf("---- DOT (render with graphviz) ----\n%s",
              automata::ToDot(automaton, dfa, &weights).c_str());

  bench::JsonReport report("fig09_weights");
  report.Add("observed_transitions", static_cast<double>(total), "transitions");
  report.Add("runtime_transitions", static_cast<double>(rt.stats().transitions),
             "transitions");
  report.Add("weighted_edges", static_cast<double>(weights.size()), "edges");
  report.Add("violations", static_cast<double>(rt.stats().violations), "violations");
  if (!report.Write()) {
    return 1;
  }
  return rt.stats().violations == 0 ? 0 : 1;
}
