// Figure 14a: "The effect of TESLA instrumentation on sending Objective-C
// messages" — a tight message-sending loop in four modes:
//   release build / tracing-capable runtime / trivial interposition /
//   TESLA automaton processing the events (paper: up to 16x).
#include <cstdio>

#include "automata/lower.h"
#include "bench/bench_util.h"
#include "objsim/objc.h"
#include "runtime/runtime.h"

namespace {

using namespace tesla;
using namespace tesla::objsim;

double MeasureMode(TraceMode mode, runtime::Runtime* tesla_rt,
                   runtime::ThreadContext* tesla_ctx) {
  ObjcRuntime rt(mode);
  ObjcClass* cls = rt.DefineClass("Worker");
  rt.AddMethod(cls, "work", [](ObjcRuntime&, ObjcObject*, std::span<const int64_t> args) {
    return args.empty() ? 0 : args[0] + 1;
  });
  ObjcObject* object = rt.CreateObject<ObjcObject>(cls);
  Selector work = InternString("work");

  if (mode == TraceMode::kInterposed) {
    InterpositionHook hook;
    hook.pre = [](ObjcObject*, Selector, std::span<const int64_t>) {};
    rt.Interpose("work", std::move(hook));
  }
  if (mode == TraceMode::kTesla) {
    InterpositionHook hook;
    hook.pre = [tesla_rt, tesla_ctx, work](ObjcObject* receiver, Selector,
                                           std::span<const int64_t> args) {
      int64_t values[2] = {static_cast<int64_t>(receiver->id),
                           args.empty() ? 0 : args[0]};
      tesla_rt->OnFunctionCall(*tesla_ctx, work, values);
    };
    rt.Interpose("work", std::move(hook));
    // Open the tracing bound once; the loop's events feed a live automaton.
    tesla_rt->OnFunctionCall(*tesla_ctx, InternString("beginIteration"), {});
  }

  volatile int64_t sink = 0;
  double per_msg = bench::TimePerOp(
      [&](int iterations) {
        int64_t args[1] = {0};
        for (int i = 0; i < iterations; i++) {
          args[0] = i;
          sink = rt.MsgSend(object, work, args);
        }
      },
      0.2);
  (void)sink;
  return per_msg * 1e9;  // ns per message
}

}  // namespace

int main() {
  // A fig. 8-style tracing automaton listening for the benchmark's selector.
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  runtime::Runtime tesla_rt(options);
  auto automaton = automata::CompileAssertion(
      "TESLA_ASSERT(perthread, call(beginIteration), returnfrom(endIteration), "
      "previously(ATLEAST(0, work(ANY(id)))))",
      {}, "msg-bench");
  if (!automaton.ok()) {
    std::fprintf(stderr, "compile: %s\n", automaton.error().ToString().c_str());
    return 1;
  }
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  if (!tesla_rt.Register(manifest).ok()) {
    return 1;
  }
  runtime::ThreadContext ctx(tesla_rt);

  std::printf("Figure 14a: Objective-C message send cost by mode\n");
  bench::PrintHeader("tight message-send loop", "ns/message");
  bench::JsonReport report("fig14a_msgsend");
  double release = MeasureMode(TraceMode::kRelease, nullptr, nullptr);
  double tracing = MeasureMode(TraceMode::kTracingCompiled, nullptr, nullptr);
  double interposed = MeasureMode(TraceMode::kInterposed, nullptr, nullptr);
  double tesla_mode = MeasureMode(TraceMode::kTesla, &tesla_rt, &ctx);
  bench::PrintRow("Release (no tracing)", release, release);
  bench::PrintRow("Tracing compiled in", tracing, release);
  bench::PrintRow("Trivial interposition", interposed, release);
  bench::PrintRow("TESLA automaton", tesla_mode, release);
  report.Add("msgsend.release", release, "ns/message");
  report.Add("msgsend.tracing_compiled", tracing, "ns/message");
  report.Add("msgsend.interposed", interposed, "ns/message");
  report.Add("msgsend.tesla", tesla_mode, "ns/message");
  std::printf("\npaper's shape: each mode adds cost; TESLA is the most expensive\n");
  std::printf("(paper: up to 16x on message sends).\n");
  return report.Write() ? 0 : 1;
}
