#!/usr/bin/env python3
"""Minimal linter for Prometheus text exposition format 0.0.4.

Validates the output of ``--metrics-out`` / ``tesla-trace stats --prom``
without requiring a Prometheus install:

  * every sample's metric family has a # HELP and # TYPE line, and the TYPE
    precedes the first sample of that family;
  * TYPE is one of counter/gauge/histogram/summary/untyped;
  * counter sample names end in ``_total``; histogram samples use the
    ``_bucket``/``_sum``/``_count`` suffixes and bucket counts are
    monotonically non-decreasing in ``le`` order, ending at ``+Inf``;
  * every sample value parses as a float and counters/bucket counts are
    non-negative;
  * label syntax is well-formed (key="value" with closed quotes).

Usage: prom_lint.py <file> [<file> ...]   (exit 1 on any violation)
"""

import math
import re
import sys

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})?'
    r'\s+(?P<value>\S+)'
    r'(?:\s+(?P<timestamp>-?\d+))?$')
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(?:,|$)')
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def base_family(name, types):
    """Maps a sample name to its metric family name."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return name


def lint(path):
    errors = []
    helps = {}
    types = {}
    # family -> list of (le, count) for histogram bucket monotonicity.
    buckets = {}
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()

    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                errors.append(f"{lineno}: HELP line missing text: {line!r}")
            else:
                helps[parts[2]] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"{lineno}: malformed TYPE line: {line!r}")
                continue
            if parts[3] not in VALID_TYPES:
                errors.append(f"{lineno}: invalid TYPE {parts[3]!r} for {parts[2]}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # other comments are legal

        match = SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"{lineno}: unparseable sample line: {line!r}")
            continue
        name = match.group("name")
        labels_text = match.group("labels")
        labels = {}
        if labels_text is not None:
            consumed = sum(len(m.group(0)) for m in LABEL_RE.finditer(labels_text))
            labels = dict(LABEL_RE.findall(labels_text))
            if consumed != len(labels_text):
                errors.append(f"{lineno}: malformed labels {{{labels_text}}}")
        try:
            value = float(match.group("value"))
        except ValueError:
            errors.append(f"{lineno}: value {match.group('value')!r} is not a float")
            continue

        family = base_family(name, types)
        if family not in types:
            errors.append(f"{lineno}: sample {name} has no preceding # TYPE line")
            continue
        if family not in helps:
            errors.append(f"{lineno}: sample {name} has no # HELP line")
        kind = types[family]
        if kind == "counter":
            if not name.endswith("_total"):
                errors.append(f"{lineno}: counter sample {name} should end in _total")
            if value < 0 or math.isnan(value):
                errors.append(f"{lineno}: counter {name} has invalid value {value}")
        elif kind == "histogram":
            if not name.endswith(HISTOGRAM_SUFFIXES):
                errors.append(f"{lineno}: histogram sample {name} has no "
                              f"_bucket/_sum/_count suffix")
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"{lineno}: histogram bucket {name} missing le label")
                else:
                    le = float("inf") if labels["le"] == "+Inf" else float(labels["le"])
                    key = (family, tuple(sorted((k, v) for k, v in labels.items()
                                                if k != "le")))
                    buckets.setdefault(key, []).append((lineno, le, value))
            if value < 0 or math.isnan(value):
                errors.append(f"{lineno}: histogram {name} has invalid value {value}")

    for (family, _series), series in buckets.items():
        if series != sorted(series, key=lambda entry: entry[1]):
            errors.append(f"{family}: buckets not in increasing le order")
        last = -1.0
        for lineno, le, count in series:
            if count < last:
                errors.append(f"{lineno}: {family} bucket le={le} count {count} "
                              f"below previous bucket ({last}) — not cumulative")
            last = count
        if not series or not math.isinf(series[-1][1]):
            errors.append(f"{family}: bucket series does not end with le=\"+Inf\"")

    samples = sum(1 for line in lines
                  if line.strip() and not line.startswith("#"))
    return errors, samples, len(types)


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in sys.argv[1:]:
        errors, samples, families = lint(path)
        if errors:
            failed = True
            print(f"{path}: {len(errors)} problem(s):", file=sys.stderr)
            for error in errors:
                print(f"  {path}:{error}", file=sys.stderr)
        else:
            print(f"{path}: OK ({samples} samples across {families} families)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
