// teslac: the TESLA toolchain driver.
//
// Wraps the three pipeline components (paper §4: analyser, instrumenter,
// libtesla) behind one command-line tool:
//
//   teslac analyse  a.c b.c -o program.tesla     parse + lower assertions,
//                                                write the combined manifest
//   teslac dump     program.tesla                pretty-print a manifest
//   teslac dot      program.tesla -n NAME        emit Graphviz for one automaton
//   teslac run      a.c b.c --entry main [args]  compile, instrument, execute
//                                                with libtesla live
//
// `run` exits non-zero if the program traps or any assertion is violated
// (violations are reported, not fail-stopped, so all of them are visible).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "automata/determinize.h"
#include "automata/dot.h"
#include "automata/manifest.h"
#include "cfront/cfront.h"
#include "instr/bridge.h"
#include "instr/instrument.h"
#include "ir/interp.h"
#include "runtime/runtime.h"
#include "support/log.h"

namespace {

using namespace tesla;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  teslac analyse <src.c>... [-o out.tesla]\n"
               "  teslac dump <manifest.tesla>\n"
               "  teslac dot <manifest.tesla> -n <automaton>\n"
               "  teslac run <src.c>... --entry <fn> [--arg N]... [--show-ir]\n"
               "             [--emit-manifest out.tesla]   write the registered\n"
               "             assertion set as a standalone manifest blob (usable\n"
               "             as a file:<path> capture origin on any machine)\n");
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Error{"cannot open '" + path + "'"};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Compiles every listed source file into one Compiler.
Result<cfront::Compiler> CompileSources(const std::vector<std::string>& sources) {
  cfront::Compiler compiler;
  for (const std::string& path : sources) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      return text.error();
    }
    if (auto status = compiler.AddUnit(*text, path); !status.ok()) {
      return status.error();
    }
  }
  return compiler;
}

int CmdAnalyse(const std::vector<std::string>& sources, const std::string& output) {
  auto compiler = CompileSources(sources);
  if (!compiler.ok()) {
    std::fprintf(stderr, "teslac: %s\n", compiler.error().ToString().c_str());
    return 1;
  }
  std::string manifest = compiler->manifest().Serialize();
  if (output.empty() || output == "-") {
    std::fputs(manifest.c_str(), stdout);
  } else {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "teslac: cannot write '%s'\n", output.c_str());
      return 1;
    }
    out << manifest;
    std::printf("teslac: wrote %zu automata to %s\n", compiler->manifest().automata.size(),
                output.c_str());
  }
  return 0;
}

int CmdDump(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) {
    std::fprintf(stderr, "teslac: %s\n", text.error().ToString().c_str());
    return 1;
  }
  auto manifest = automata::Manifest::Deserialize(*text);
  if (!manifest.ok()) {
    std::fprintf(stderr, "teslac: %s: %s\n", path.c_str(),
                 manifest.error().ToString().c_str());
    return 1;
  }
  for (const automata::Automaton& automaton : manifest->automata) {
    std::printf("%s\n  source: %s\n%s\n", automaton.name.c_str(),
                automaton.source_text.c_str(), automaton.ToString().c_str());
  }
  return 0;
}

int CmdDot(const std::string& path, const std::string& name) {
  auto text = ReadFile(path);
  if (!text.ok()) {
    std::fprintf(stderr, "teslac: %s\n", text.error().ToString().c_str());
    return 1;
  }
  auto manifest = automata::Manifest::Deserialize(*text);
  if (!manifest.ok()) {
    std::fprintf(stderr, "teslac: %s\n", manifest.error().ToString().c_str());
    return 1;
  }
  int index = name.empty() && !manifest->automata.empty() ? 0 : manifest->Find(name);
  if (index < 0) {
    std::fprintf(stderr, "teslac: no automaton named '%s'\n", name.c_str());
    return 1;
  }
  automata::Automaton& automaton = manifest->automata[static_cast<size_t>(index)];
  automaton.Finalize();
  automata::Dfa dfa = automata::Determinize(automaton);
  std::fputs(automata::ToDot(automaton, dfa).c_str(), stdout);
  return 0;
}

class ReportingHandler : public runtime::EventHandler {
 public:
  void OnViolation(const runtime::ClassInfo& cls, const runtime::Violation& violation) override {
    std::fprintf(stderr, "teslac: VIOLATION [%s]: %s — %s\n", violation.automaton.c_str(),
                 runtime::ViolationKindName(violation.kind), violation.detail.c_str());
  }
};

int CmdRun(const std::vector<std::string>& sources, const std::string& entry,
           const std::vector<int64_t>& args, bool show_ir,
           const std::string& emit_manifest) {
  SetLogLevel(LogLevel::kSilent);  // the handler reports; no duplicate log lines
  auto compiler = CompileSources(sources);
  if (!compiler.ok()) {
    std::fprintf(stderr, "teslac: %s\n", compiler.error().ToString().c_str());
    return 1;
  }
  auto instrumented =
      instr::Instrument(std::move(compiler->module()), compiler->manifest(),
                        std::vector<cfront::SiteInfo>(compiler->sites()));
  if (!instrumented.ok()) {
    std::fprintf(stderr, "teslac: %s\n", instrumented.error().ToString().c_str());
    return 1;
  }
  if (show_ir) {
    std::fputs(ir::ToString(instrumented->module).c_str(), stdout);
  }

  runtime::RuntimeOptions options;
  options.fail_stop = false;
  runtime::Runtime rt(options);
  if (auto status = rt.Register(compiler->manifest()); !status.ok()) {
    std::fprintf(stderr, "teslac: %s\n", status.error().ToString().c_str());
    return 1;
  }
  if (!emit_manifest.empty()) {
    // The *registered* manifest, re-serialised: what a v4 capture embeds,
    // with automaton ids fixed by registration order — the exact blob a
    // file:<path> origin re-registers elsewhere.
    std::ofstream out(emit_manifest);
    if (!out) {
      std::fprintf(stderr, "teslac: cannot write '%s'\n", emit_manifest.c_str());
      return 1;
    }
    out << rt.ManifestText();
    std::fprintf(stderr, "teslac: wrote manifest to %s\n", emit_manifest.c_str());
  }
  ReportingHandler handler;
  rt.AddHandler(&handler);

  runtime::ThreadContext ctx(rt);
  ir::Interpreter interpreter(instrumented->module);
  instr::RuntimeBridge bridge(*instrumented, rt, ctx);
  interpreter.SetDispatcher(&bridge);

  auto result = interpreter.Call(entry, args);
  if (!result.ok()) {
    std::fprintf(stderr, "teslac: runtime error: %s\n", result.error().ToString().c_str());
    return 1;
  }
  std::printf("%s returned %lld\n", entry.c_str(), static_cast<long long>(*result));
  std::printf("teslac: %llu events, %llu transitions, %llu accepts, %llu violations\n",
              static_cast<unsigned long long>(rt.stats().events),
              static_cast<unsigned long long>(rt.stats().transitions),
              static_cast<unsigned long long>(rt.stats().accepts),
              static_cast<unsigned long long>(rt.stats().violations));
  return rt.stats().violations == 0 ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];

  std::vector<std::string> positional;
  std::string output;
  std::string entry = "main";
  std::string name;
  std::string emit_manifest;
  std::vector<int64_t> run_args;
  bool show_ir = false;

  for (int i = 2; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--entry" && i + 1 < argc) {
      entry = argv[++i];
    } else if (arg == "-n" && i + 1 < argc) {
      name = argv[++i];
    } else if (arg == "--arg" && i + 1 < argc) {
      run_args.push_back(std::strtoll(argv[++i], nullptr, 0));
    } else if (arg == "--emit-manifest" && i + 1 < argc) {
      emit_manifest = argv[++i];
    } else if (arg == "--show-ir") {
      show_ir = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "teslac: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }

  if (command == "analyse" || command == "analyze") {
    return positional.empty() ? Usage() : CmdAnalyse(positional, output);
  }
  if (command == "dump") {
    return positional.size() == 1 ? CmdDump(positional[0]) : Usage();
  }
  if (command == "dot") {
    return positional.size() == 1 ? CmdDot(positional[0], name) : Usage();
  }
  if (command == "run") {
    return positional.empty() ? Usage()
                              : CmdRun(positional, entry, run_args, show_ir, emit_manifest);
  }
  return Usage();
}
