#!/usr/bin/env python3
"""Tolerance-based diff of two BENCH_*.json reports.

Compares a freshly generated report against a committed reference and fails
(exit 1) when any gated metric regressed beyond the tolerance. Gated metrics
are the per-event timings (unit ``ns`` / ``ns/event`` or metric name
containing ``ns_per_event``): for those, higher is worse. Other metrics are
printed for information only.

A metric counts as a regression only when BOTH hold, so micro-benchmark noise
on small absolute values cannot fail a build by ratio alone:

  * fresh > reference * (1 + tolerance)
  * fresh - reference > abs-slack (nanoseconds)

Usage:
  bench_diff.py [--tolerance 0.25] [--abs-slack 5.0] reference.json fresh.json
"""

import argparse
import json
import sys


def load_results(path):
    with open(path) as fh:
        report = json.load(fh)
    return {r["metric"]: (float(r["value"]), r.get("unit", "")) for r in report["results"]}


def is_gated(metric, unit):
    return unit.startswith("ns") or "ns_per_event" in metric


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("reference", help="committed reference BENCH_*.json")
    parser.add_argument("fresh", help="freshly generated BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default: 0.25 = +25%%)")
    parser.add_argument("--abs-slack", type=float, default=5.0,
                        help="ignore regressions smaller than this many ns (default: 5)")
    parser.add_argument("--skip", action="append", default=[], metavar="METRIC",
                        help="report this metric but never gate on it (repeatable); for "
                             "metrics that are not comparable between run configurations, "
                             "e.g. smoke-mode replay amortising setup over fewer events")
    args = parser.parse_args()

    reference = load_results(args.reference)
    fresh = load_results(args.fresh)

    regressions = []
    print(f"{'metric':<34} {'reference':>12} {'fresh':>12} {'delta':>9}  verdict")
    for metric in sorted(set(reference) | set(fresh)):
        if metric not in reference:
            print(f"{metric:<34} {'-':>12} {fresh[metric][0]:>12.2f} {'':>9}  new metric")
            continue
        if metric not in fresh:
            print(f"{metric:<34} {reference[metric][0]:>12.2f} {'-':>12} {'':>9}  MISSING")
            regressions.append(f"{metric}: missing from fresh report")
            continue
        ref_value, unit = reference[metric]
        new_value, _ = fresh[metric]
        delta = new_value - ref_value
        ratio = new_value / ref_value if ref_value else float("inf")
        if metric in args.skip:
            verdict = "skipped"
        elif not is_gated(metric, unit):
            verdict = "info"
        elif ratio > 1 + args.tolerance and delta > args.abs_slack:
            verdict = f"REGRESSED ({ratio:.2f}x > {1 + args.tolerance:.2f}x)"
            regressions.append(f"{metric}: {ref_value:.2f} -> {new_value:.2f} ns ({ratio:.2f}x)")
        else:
            verdict = "ok"
        print(f"{metric:<34} {ref_value:>12.2f} {new_value:>12.2f} {delta:>+9.2f}  {verdict}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond +{args.tolerance * 100:.0f}%:",
              file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
