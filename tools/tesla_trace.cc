// tesla-trace: inspect and replay TESLA trace captures.
//
//   tesla-trace dump   <file>   print the header and every record
//   tesla-trace stats  <file>   print the capture's semantic summary and,
//                               for v2 captures with an embedded metrics
//                               footer, the per-class counters, latency
//                               histograms and transition-coverage table
//                               (--json / --prom re-emit that snapshot as
//                               JSON or Prometheus text instead)
//   tesla-trace replay <file>   re-run the events through a fresh Runtime
//                               and verify stats, violations and — when the
//                               capture embeds metrics — per-class counters
//                               and transition coverage all match; exit 0 on
//                               an exact reproduction
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "metrics/snapshot.h"
#include "support/log.h"
#include "trace/forensics.h"
#include "trace/format.h"
#include "trace/origins.h"
#include "trace/replay.h"

namespace {

using namespace tesla;
using namespace tesla::trace;

int Usage() {
  std::fprintf(stderr,
               "usage: tesla-trace {dump|stats|replay} <capture-file> [--json|--prom]\n");
  std::fprintf(stderr, "known origins:");
  for (const std::string& origin : KnownOrigins()) {
    std::fprintf(stderr, " %s", origin.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

void PrintHeader(const TraceFile& file) {
  std::printf("origin:   %s\n", file.origin.c_str());
  std::printf("options:  lazy_init=%d use_dfa=%d instance_index=%d "
              "instances_per_context=%" PRIu64 " global_shards=%" PRIu64 "\n",
              file.options.lazy_init ? 1 : 0, file.options.use_dfa ? 1 : 0,
              file.options.instance_index ? 1 : 0, file.options.instances_per_context,
              file.options.global_shards);
  std::printf("symbols:  %zu\n", file.symbols.size());
  std::printf("records:  %zu (%" PRIu64 " dropped at capture)\n", file.records.size(),
              file.summary.dropped);
}

void PrintSummary(const TraceFile& file) {
  std::printf("semantic stats:\n");
  for (const StatsField& field : kStatsFields) {
    std::printf("  %-26s %" PRIu64 "\n", field.name, file.summary.stats.*field.field);
  }
  std::printf("violations (%zu):\n", file.summary.violations.size());
  for (const auto& [kind, automaton] : file.summary.violations) {
    std::printf("  %s — '%s'\n", runtime::ViolationKindName(kind), automaton.c_str());
  }
}

int Dump(const TraceFile& file) {
  PrintHeader(file);
  // Resolve against the file's own symbol table — dumping never requires the
  // dumping process to know the capture's automata.
  SymbolResolver resolve = [&file](uint32_t symbol) -> std::string {
    return symbol < file.symbols.size() ? file.symbols[symbol]
                                        : "sym#" + std::to_string(symbol);
  };
  for (const TraceRecord& record : file.records) {
    std::printf("%s\n", DescribeRecord(record, resolve).c_str());
  }
  return 0;
}

int Stats(const TraceFile& file, const std::string& format) {
  if (format == "--json" || format == "--prom") {
    if (!file.summary.has_metrics) {
      std::fprintf(stderr, "tesla-trace: capture has no metrics footer "
                           "(record with metrics_mode != off)\n");
      return 1;
    }
    const std::string out = format == "--json" ? metrics::ToJson(file.summary.metrics)
                                               : metrics::ToPrometheus(file.summary.metrics);
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
  }
  PrintHeader(file);
  PrintSummary(file);
  if (file.summary.has_metrics) {
    std::printf("\n%s", metrics::RenderText(file.summary.metrics).c_str());
    const std::string uncovered = metrics::RenderUncovered(file.summary.metrics);
    if (!uncovered.empty()) {
      std::printf("\n%s", uncovered.c_str());
    }
  }
  return 0;
}

int Replay(const std::string& path) {
  SetLogLevel(LogLevel::kSilent);  // replayed violations are expected output
  Result<ReplayResult> replayed = ReplayFile(path);
  if (!replayed.ok()) {
    std::fprintf(stderr, "tesla-trace: %s\n", replayed.error().ToString().c_str());
    return 1;
  }
  const ReplayResult& result = replayed.value();
  std::printf("replayed %" PRIu64 " events, %zu violations\n", result.events_replayed,
              result.violations.size());
  if (!result.matched) {
    std::printf("DIVERGED:\n%s", result.divergence.c_str());
    return 1;
  }
  if (!result.metrics.classes.empty()) {
    std::printf("capture reproduced exactly: stats, violation sequence, per-class "
                "counters and transition coverage match\n");
  } else {
    std::printf("capture reproduced exactly: stats and violation sequence match\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3 && argc != 4) {
    return Usage();
  }
  const std::string command = argv[1];
  const std::string path = argv[2];
  const std::string format = argc == 4 ? argv[3] : "";
  if (!format.empty() && (command != "stats" || (format != "--json" && format != "--prom"))) {
    return Usage();
  }
  if (command == "replay") {
    return Replay(path);
  }
  if (command != "dump" && command != "stats") {
    return Usage();
  }
  Result<TraceFile> read = TraceFile::Read(path);
  if (!read.ok()) {
    std::fprintf(stderr, "tesla-trace: %s\n", read.error().ToString().c_str());
    return 1;
  }
  return command == "dump" ? Dump(read.value()) : Stats(read.value(), format);
}
