// tesla-trace: inspect and replay TESLA trace captures.
//
//   tesla-trace dump   <file>   print the header and every record
//   tesla-trace stats  <file>   print the capture's semantic summary
//   tesla-trace replay <file>   re-run the events through a fresh Runtime
//                               and verify stats + violations match;
//                               exit 0 on an exact reproduction
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "support/log.h"
#include "trace/forensics.h"
#include "trace/format.h"
#include "trace/origins.h"
#include "trace/replay.h"

namespace {

using namespace tesla;
using namespace tesla::trace;

int Usage() {
  std::fprintf(stderr, "usage: tesla-trace {dump|stats|replay} <capture-file>\n");
  std::fprintf(stderr, "known origins:");
  for (const std::string& origin : KnownOrigins()) {
    std::fprintf(stderr, " %s", origin.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

void PrintHeader(const TraceFile& file) {
  std::printf("origin:   %s\n", file.origin.c_str());
  std::printf("options:  lazy_init=%d use_dfa=%d instance_index=%d "
              "instances_per_context=%" PRIu64 " global_shards=%" PRIu64 "\n",
              file.options.lazy_init ? 1 : 0, file.options.use_dfa ? 1 : 0,
              file.options.instance_index ? 1 : 0, file.options.instances_per_context,
              file.options.global_shards);
  std::printf("symbols:  %zu\n", file.symbols.size());
  std::printf("records:  %zu (%" PRIu64 " dropped at capture)\n", file.records.size(),
              file.summary.dropped);
}

void PrintSummary(const TraceFile& file) {
  std::printf("semantic stats:\n");
  for (const StatsField& field : kStatsFields) {
    std::printf("  %-26s %" PRIu64 "\n", field.name, file.summary.stats.*field.field);
  }
  std::printf("violations (%zu):\n", file.summary.violations.size());
  for (const auto& [kind, automaton] : file.summary.violations) {
    std::printf("  %s — '%s'\n", runtime::ViolationKindName(kind), automaton.c_str());
  }
}

int Dump(const TraceFile& file) {
  PrintHeader(file);
  // Resolve against the file's own symbol table — dumping never requires the
  // dumping process to know the capture's automata.
  SymbolResolver resolve = [&file](uint32_t symbol) -> std::string {
    return symbol < file.symbols.size() ? file.symbols[symbol]
                                        : "sym#" + std::to_string(symbol);
  };
  for (const TraceRecord& record : file.records) {
    std::printf("%s\n", DescribeRecord(record, resolve).c_str());
  }
  return 0;
}

int Stats(const TraceFile& file) {
  PrintHeader(file);
  PrintSummary(file);
  return 0;
}

int Replay(const std::string& path) {
  SetLogLevel(LogLevel::kSilent);  // replayed violations are expected output
  Result<ReplayResult> replayed = ReplayFile(path);
  if (!replayed.ok()) {
    std::fprintf(stderr, "tesla-trace: %s\n", replayed.error().ToString().c_str());
    return 1;
  }
  const ReplayResult& result = replayed.value();
  std::printf("replayed %" PRIu64 " events, %zu violations\n", result.events_replayed,
              result.violations.size());
  if (!result.matched) {
    std::printf("DIVERGED:\n%s", result.divergence.c_str());
    return 1;
  }
  std::printf("capture reproduced exactly: stats and violation sequence match\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    return Usage();
  }
  const std::string command = argv[1];
  const std::string path = argv[2];
  if (command == "replay") {
    return Replay(path);
  }
  if (command != "dump" && command != "stats") {
    return Usage();
  }
  Result<TraceFile> read = TraceFile::Read(path);
  if (!read.ok()) {
    std::fprintf(stderr, "tesla-trace: %s\n", read.error().ToString().c_str());
    return 1;
  }
  return command == "dump" ? Dump(read.value()) : Stats(read.value());
}
