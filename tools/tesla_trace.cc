// tesla-trace: inspect, replay, aggregate and live-attach TESLA captures.
//
//   tesla-trace dump    <file>          print the header and every record
//   tesla-trace stats   <file>          print the capture's semantic summary
//                                       and, when a metrics footer is
//                                       embedded, the per-class counters,
//                                       latency histograms and transition-
//                                       coverage table (--json / --prom
//                                       re-emit that snapshot instead)
//   tesla-trace replay  <file>          re-run the events through a fresh
//                                       Runtime and verify stats, violations
//                                       and — when the capture embeds
//                                       metrics — per-class counters and
//                                       transition coverage all match; exit
//                                       0 on an exact reproduction
//   tesla-trace emit-manifest <file>    extract a capture's embedded
//                                       manifest (or resolve its origin) as
//                                       a standalone .tesla blob usable as a
//                                       file:<path> origin anywhere
//   tesla-trace attach  <shm-name>      attach to a live instrumented
//                                       process's shm segment (see
//                                       src/ipc), register its embedded
//                                       manifest, and dispatch its event
//                                       stream as an out-of-process sidecar
//                                       checker until the publisher closes
//       [--manifest f.tesla]            override the embedded manifest
//       [--origin name]                 override with a built-in origin
//       [--out capture]                 also record a replayable capture
//       [--timeout-ms N]                attach wait (default 5000)
//   tesla-trace merge   <file>... --out fleet.json [--json|--prom]
//                                       union captures from a fleet of
//                                       shards into one deterministic
//                                       report: stats summed, coverage
//                                       OR'd, violations as a census
//   tesla-trace profile <file>... [--json|--prom] [--hints-out hints]
//                                       render the embedded workload
//                                       profile (v5) — hot-class ranking,
//                                       scan-fallback offenders, capacity
//                                       headroom; multiple captures merge
//                                       first. --hints-out compiles the
//                                       profile into a PlanHints file that
//                                       feeds back into Register() (e.g.
//                                       mac_audit --plan-hints)
//
// Exit codes (scriptable error classes — the CI smokes branch on them):
//   0  success / exact reproduction
//   1  failure: divergence, corrupt input, violation in the checked stream
//   2  usage error
//   3  unreadable input (missing file, shm name never appeared, I/O error)
//   4  unknown capture origin
//   5  version mismatch (capture or shm segment newer than this build)
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "ipc/merge.h"
#include "ipc/subscriber.h"
#include "metrics/snapshot.h"
#include "profile/hints.h"
#include "profile/snapshot.h"
#include "support/log.h"
#include "trace/forensics.h"
#include "trace/format.h"
#include "trace/origins.h"
#include "trace/replay.h"

namespace {

using namespace tesla;
using namespace tesla::trace;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tesla-trace dump    <capture>\n"
               "  tesla-trace stats   <capture> [--json|--prom]\n"
               "  tesla-trace replay  <capture>\n"
               "  tesla-trace emit-manifest <capture> [--out manifest.tesla]\n"
               "  tesla-trace attach  <shm-name> [--manifest f.tesla] [--origin o]\n"
               "                      [--out capture] [--timeout-ms N]\n"
               "  tesla-trace merge   <capture>... [--out file] [--json|--prom]\n"
               "  tesla-trace profile <capture>... [--json|--prom] [--hints-out file]\n");
  std::fprintf(stderr, "known origins:");
  for (const std::string& origin : KnownOrigins()) {
    std::fprintf(stderr, " %s", origin.c_str());
  }
  std::fprintf(stderr, " file:<manifest.tesla>\n");
  return 2;
}

// Error::code (trace::ErrorCode) → the CLI's exit-code contract above.
int ExitCodeFor(const Error& error) {
  switch (error.code) {
    case kErrUnreadable:
      return 3;
    case kErrUnknownOrigin:
      return 4;
    case kErrVersionMismatch:
      return 5;
    default:
      return 1;
  }
}

int Fail(const Error& error) {
  std::fprintf(stderr, "tesla-trace: %s\n", error.ToString().c_str());
  return ExitCodeFor(error);
}

bool WriteOutput(const std::string& path, const std::string& content) {
  if (path.empty() || path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "tesla-trace: cannot write '%s'\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

void PrintHeader(const TraceFile& file) {
  std::printf("origin:   %s\n", file.origin.c_str());
  std::printf("options:  lazy_init=%d use_dfa=%d instance_index=%d "
              "instances_per_context=%" PRIu64 " global_shards=%" PRIu64 "\n",
              file.options.lazy_init ? 1 : 0, file.options.use_dfa ? 1 : 0,
              file.options.instance_index ? 1 : 0, file.options.instances_per_context,
              file.options.global_shards);
  std::printf("manifest: %s\n",
              file.manifest_text.empty() ? "none (resolve the origin)" : "embedded");
  std::printf("symbols:  %zu\n", file.symbols.size());
  std::printf("records:  %zu (%" PRIu64 " dropped at capture)\n", file.records.size(),
              file.summary.dropped);
}

void PrintSummary(const TraceFile& file) {
  std::printf("semantic stats:\n");
  for (const StatsField& field : kStatsFields) {
    std::printf("  %-26s %" PRIu64 "\n", field.name, file.summary.stats.*field.field);
  }
  std::printf("violations (%zu):\n", file.summary.violations.size());
  for (const auto& [kind, automaton] : file.summary.violations) {
    std::printf("  %s — '%s'\n", runtime::ViolationKindName(kind), automaton.c_str());
  }
}

int Dump(const TraceFile& file) {
  PrintHeader(file);
  // Resolve against the file's own symbol table — dumping never requires the
  // dumping process to know the capture's automata.
  SymbolResolver resolve = [&file](uint32_t symbol) -> std::string {
    return symbol < file.symbols.size() ? file.symbols[symbol]
                                        : "sym#" + std::to_string(symbol);
  };
  for (const TraceRecord& record : file.records) {
    std::printf("%s\n", DescribeRecord(record, resolve).c_str());
  }
  return 0;
}

int Stats(const TraceFile& file, const std::string& format) {
  if (format == "--json" || format == "--prom") {
    if (!file.summary.has_metrics) {
      std::fprintf(stderr, "tesla-trace: capture has no metrics footer "
                           "(record with metrics_mode != off)\n");
      return 1;
    }
    const std::string out = format == "--json" ? metrics::ToJson(file.summary.metrics)
                                               : metrics::ToPrometheus(file.summary.metrics);
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
  }
  PrintHeader(file);
  PrintSummary(file);
  if (file.summary.has_metrics) {
    std::printf("\n%s", metrics::RenderText(file.summary.metrics).c_str());
    const std::string uncovered = metrics::RenderUncovered(file.summary.metrics);
    if (!uncovered.empty()) {
      std::printf("\n%s", uncovered.c_str());
    }
  }
  return 0;
}

int Replay(const std::string& path) {
  SetLogLevel(LogLevel::kSilent);  // replayed violations are expected output
  Result<ReplayResult> replayed = ReplayFile(path);
  if (!replayed.ok()) {
    return Fail(replayed.error());
  }
  const ReplayResult& result = replayed.value();
  std::printf("replayed %" PRIu64 " events, %zu violations\n", result.events_replayed,
              result.violations.size());
  if (!result.matched) {
    std::printf("DIVERGED:\n%s", result.divergence.c_str());
    return 1;
  }
  if (!result.metrics.classes.empty()) {
    std::printf("capture reproduced exactly: stats, violation sequence, per-class "
                "counters and transition coverage match\n");
  } else {
    std::printf("capture reproduced exactly: stats and violation sequence match\n");
  }
  return 0;
}

// Extracts the capture's assertion set as a standalone .tesla manifest —
// the blob a `file:<path>` origin (or `tesla-trace attach --manifest`)
// consumes. Prefers the embedded v4 manifest; falls back to resolving the
// origin for older captures.
int EmitManifest(const std::string& path, const std::string& output) {
  Result<TraceFile> read = TraceFile::Read(path);
  if (!read.ok()) {
    return Fail(read.error());
  }
  std::string text = read.value().manifest_text;
  if (text.empty()) {
    Result<automata::Manifest> manifest = ManifestForOrigin(read.value().origin);
    if (!manifest.ok()) {
      return Fail(manifest.error());
    }
    text = manifest.value().Serialize();
  }
  if (!WriteOutput(output, text)) {
    return 3;
  }
  if (!output.empty() && output != "-") {
    std::fprintf(stderr, "tesla-trace: wrote manifest to %s\n", output.c_str());
  }
  return 0;
}

int Attach(const std::string& shm_name, const std::string& manifest_path,
           const std::string& origin_override, const std::string& capture_out,
           int timeout_ms) {
  SetLogLevel(LogLevel::kSilent);  // the sidecar reports through its summary
  Result<std::unique_ptr<ipc::ShmSubscriber>> attached =
      ipc::ShmSubscriber::Attach(shm_name, timeout_ms);
  if (!attached.ok()) {
    return Fail(attached.error());
  }
  ipc::ShmSubscriber& subscriber = *attached.value();

  // Manifest precedence: an explicit --manifest / --origin override, else
  // the manifest embedded in the segment, else the publisher's origin.
  Result<automata::Manifest> manifest = [&]() -> Result<automata::Manifest> {
    if (!manifest_path.empty()) {
      return ManifestForOrigin("file:" + manifest_path);
    }
    if (!origin_override.empty()) {
      return ManifestForOrigin(origin_override);
    }
    if (!subscriber.info().manifest_text.empty()) {
      return automata::Manifest::Deserialize(subscriber.info().manifest_text);
    }
    return ManifestForOrigin(subscriber.info().origin);
  }();
  if (!manifest.ok()) {
    return Fail(manifest.error());
  }

  runtime::RuntimeOptions options = subscriber.PublisherRuntimeOptions();
  options.fail_stop = false;  // the sidecar reports every violation
  options.metrics_mode = metrics::MetricsMode::kCounters;
  if (!capture_out.empty()) {
    options.trace_mode = trace::TraceMode::kFullCapture;
  }
  runtime::Runtime rt(options);
  // Intern the publisher's symbols before Register() freezes the dispatch
  // plan; site targets ride on registration order instead.
  subscriber.InternSymbols();
  if (Status status = rt.Register(manifest.value()); !status.ok()) {
    return Fail(status.error());
  }

  const ipc::DrainReport report = ipc::DrainAll(subscriber, rt);
  std::printf("drained %" PRIu64 " events in %" PRIu64 " batches from '%s'\n",
              report.events, report.batches, shm_name.c_str());
  std::printf("verdict: %" PRIu64 " violations, %" PRIu64 " accepts, %" PRIu64
              " transitions\n",
              rt.stats().violations, rt.stats().accepts, rt.stats().transitions);
  if (report.producer_dropped != 0 || report.lane_overflow != 0) {
    std::fprintf(stderr,
                 "tesla-trace: publisher dropped %" PRIu64 " events, %" PRIu64
                 " from unassigned threads — the checked stream is incomplete\n",
                 report.producer_dropped, report.lane_overflow);
  }
  if (report.producer_died) {
    std::fprintf(stderr, "tesla-trace: publisher died without closing; drained "
                         "what its lanes still held\n");
  }
  if (!capture_out.empty()) {
    if (Status status = WriteCapture(capture_out, subscriber.info().origin, rt);
        !status.ok()) {
      return Fail(status.error());
    }
    std::fprintf(stderr, "tesla-trace: wrote capture to %s\n", capture_out.c_str());
  }
  return 0;
}

int Merge(const std::vector<std::string>& paths, const std::string& output,
          const std::string& format) {
  Result<ipc::FleetReport> merged = ipc::MergeCaptureFiles(paths);
  if (!merged.ok()) {
    return Fail(merged.error());
  }
  const std::string out = format == "--prom" ? ipc::FleetToPrometheus(merged.value())
                                             : ipc::FleetToJson(merged.value());
  if (!WriteOutput(output, out)) {
    return 3;
  }
  if (!output.empty() && output != "-") {
    std::fprintf(stderr,
                 "tesla-trace: merged %" PRIu64 " shards (%" PRIu64 " events, %" PRIu64
                 " violation classes) into %s\n",
                 merged.value().shards, merged.value().events,
                 static_cast<uint64_t>(merged.value().violations.size()), output.c_str());
  }
  return 0;
}

// Renders a capture fleet's merged workload profile, and optionally compiles
// it into the PlanHints file the adaptive loop feeds back into Register().
int Profile(const std::vector<std::string>& paths, const std::string& output,
            const std::string& format, const std::string& hints_out) {
  Result<ipc::FleetReport> merged = ipc::MergeCaptureFiles(paths);
  if (!merged.ok()) {
    return Fail(merged.error());
  }
  if (!merged.value().has_profile) {
    std::fprintf(stderr, "tesla-trace: no capture carries a profile section "
                         "(record with RuntimeOptions::profile = true)\n");
    return 1;
  }
  const profile::Snapshot& snapshot = merged.value().profile;
  if (!hints_out.empty()) {
    const profile::PlanHints hints = profile::HintsFromSnapshot(snapshot);
    if (Status status = profile::WriteHintsFile(hints_out, hints); !status.ok()) {
      return Fail(status.error());
    }
    std::fprintf(stderr, "tesla-trace: wrote %zu class hints to %s\n",
                 hints.classes.size(), hints_out.c_str());
  }
  std::string out;
  if (format == "--json") {
    out = profile::ToJson(snapshot);
  } else if (format == "--prom") {
    out = profile::ToPrometheus(snapshot);
  } else {
    out = profile::RenderReport(snapshot);
  }
  if (!WriteOutput(output, out)) {
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];

  std::vector<std::string> positional;
  std::string format;
  std::string output;
  std::string manifest_path;
  std::string origin_override;
  std::string hints_out;
  int timeout_ms = 5000;

  for (int i = 2; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg == "--prom") {
      format = arg;
    } else if (arg == "--out" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (arg == "--origin" && i + 1 < argc) {
      origin_override = argv[++i];
    } else if (arg == "--hints-out" && i + 1 < argc) {
      hints_out = argv[++i];
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      timeout_ms = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "tesla-trace: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }

  if (command == "replay") {
    return positional.size() == 1 ? Replay(positional[0]) : Usage();
  }
  if (command == "emit-manifest") {
    return positional.size() == 1 ? EmitManifest(positional[0], output) : Usage();
  }
  if (command == "attach") {
    return positional.size() == 1
               ? Attach(positional[0], manifest_path, origin_override, output, timeout_ms)
               : Usage();
  }
  if (command == "merge") {
    return positional.empty() ? Usage() : Merge(positional, output, format);
  }
  if (command == "profile") {
    return positional.empty() ? Usage() : Profile(positional, output, format, hints_out);
  }
  if (command != "dump" && command != "stats") {
    return Usage();
  }
  if (positional.size() != 1) {
    return Usage();
  }
  Result<TraceFile> read = TraceFile::Read(positional[0]);
  if (!read.ok()) {
    return Fail(read.error());
  }
  return command == "dump" ? Dump(read.value()) : Stats(read.value(), format);
}
