#include "buildsim/buildsim.h"

#include <chrono>
#include <set>
#include <utility>

#include "automata/manifest.h"
#include "cfront/cfront.h"
#include "instr/instrument.h"
#include "support/intern.h"

namespace tesla::buildsim {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string FunctionName(size_t unit, size_t index) {
  return "u" + std::to_string(unit) + "_f" + std::to_string(index);
}

// One compiled "object file": the per-unit IR plus the unit's .tesla output.
struct CompiledUnit {
  ir::Module module;
  automata::Manifest manifest;
  std::vector<cfront::SiteInfo> sites;
};

Result<CompiledUnit> CompileUnit(const std::string& source, const std::string& name) {
  cfront::Compiler compiler;
  auto status = compiler.AddUnit(source, name);
  if (!status.ok()) {
    return status.error();
  }
  CompiledUnit unit;
  unit.module = std::move(compiler.module());
  unit.manifest = compiler.manifest();
  unit.sites = compiler.sites();
  return unit;
}

// Units whose instrumentation can change when `modified`'s automata change:
// the modified unit itself plus every unit defining or calling a function
// the modified unit's manifest hooks (callee- or caller-side).
std::vector<size_t> AffectedUnits(const Corpus& corpus, size_t modified,
                                  const automata::Manifest& modified_manifest) {
  std::vector<size_t> affected;
  if (corpus.units.size() != corpus.unit_sources.size()) {
    // No dependency metadata: be conservative, re-instrument everything.
    for (size_t u = 0; u < corpus.unit_sources.size(); u++) {
      affected.push_back(u);
    }
    return affected;
  }
  std::set<std::string> hooked;
  automata::InstrumentationRequirements reqs = modified_manifest.ComputeRequirements();
  for (Symbol symbol : reqs.call_hooks) {
    hooked.insert(SymbolName(symbol));
  }
  for (Symbol symbol : reqs.return_hooks) {
    hooked.insert(SymbolName(symbol));
  }
  for (Symbol symbol : reqs.caller_side) {
    hooked.insert(SymbolName(symbol));
  }
  for (Symbol symbol : reqs.stack_queries) {
    hooked.insert(SymbolName(symbol));
  }
  for (size_t u = 0; u < corpus.units.size(); u++) {
    if (u == modified) {
      affected.push_back(u);
      continue;
    }
    const UnitInfo& info = corpus.units[u];
    bool touches = false;
    for (const std::string& name : info.defines) {
      if (hooked.count(name) != 0) {
        touches = true;
        break;
      }
    }
    if (!touches) {
      for (const std::string& name : info.calls) {
        if (hooked.count(name) != 0) {
          touches = true;
          break;
        }
      }
    }
    if (touches) {
      affected.push_back(u);
    }
  }
  return affected;
}

}  // namespace

Corpus GenerateCorpus(const CorpusOptions& options) {
  Corpus corpus;
  const size_t units = options.units > 0 ? options.units : 1;
  const size_t functions = options.functions_per_unit > 0 ? options.functions_per_unit : 1;
  const size_t statements = options.statements_per_function;
  const size_t assertion_every = options.assertion_every > 0 ? options.assertion_every : 1;

  for (size_t u = 0; u < units; u++) {
    UnitInfo info;
    info.name = "unit_" + std::to_string(u) + ".c";
    info.has_assertion = u % assertion_every == 0;
    const size_t assertion_fn = functions > 1 ? 1 : 0;

    std::string tesla_source;
    std::string plain_source;
    for (size_t f = 0; f < functions; f++) {
      const std::string name = FunctionName(u, f);
      info.defines.push_back(name);

      std::string body;
      body += "int " + name + "(int x) {\n";
      body += "  int acc = x;\n";
      for (size_t s = 0; s < statements; s++) {
        body += "  acc = acc * 3 + " + std::to_string(s + 1) + ";\n";
      }
      // Call edges: an intra-unit chain plus one cross-unit edge per unit, so
      // instrumenting one unit's automata touches its neighbours (caller-side
      // hooks) — the one-to-many dependency fig. 10 is about.
      if (f > 0) {
        const std::string callee = FunctionName(u, f - 1);
        info.calls.push_back(callee);
        body += "  int c = " + callee + "(acc);\n  acc = acc + c;\n";
      } else if (u > 0) {
        const std::string callee = FunctionName(u - 1, functions - 1);
        info.calls.push_back(callee);
        body += "  int c = " + callee + "(acc);\n  acc = acc + c;\n";
      }

      std::string assertion;
      if (info.has_assertion && f == assertion_fn) {
        const std::string checked = FunctionName(u, 0);
        info.calls.push_back(checked);
        body += "  int chk = " + checked + "(x);\n  chk = chk;\n";
        assertion = "  TESLA_WITHIN(" + name + ", previously(" + checked + "(x) == 0));\n";
      }
      body += "%ASSERTION%  return acc;\n}\n";

      std::string tesla_body = body;
      tesla_body.replace(tesla_body.find("%ASSERTION%"), 11, assertion);
      std::string plain_body = body;
      plain_body.replace(plain_body.find("%ASSERTION%"), 11, "");
      tesla_source += tesla_body;
      plain_source += plain_body;
    }

    corpus.unit_names.push_back(info.name);
    corpus.unit_sources.push_back(std::move(tesla_source));
    corpus.plain_sources.push_back(std::move(plain_source));
    corpus.units.push_back(std::move(info));
  }
  return corpus;
}

Result<BuildTimes> MeasureBuild(const Corpus& corpus, const BuildOptions& options) {
  BuildTimes times;
  times.units = corpus.unit_sources.size();
  if (times.units == 0) {
    return Error{"empty corpus"};
  }
  if (corpus.plain_sources.size() != times.units) {
    return Error{"corpus is missing its default-build (plain) sources"};
  }
  const size_t modified =
      options.modified_unit < times.units ? options.modified_unit : times.units - 1;
  const size_t repeats = options.incremental_repeats > 0 ? options.incremental_repeats : 1;

  // All sections are measured warmed-up and as a minimum over a couple of
  // passes: the first compile in a process pays one-time costs (allocator,
  // lazy binding) and the sections are small enough that a single scheduler
  // blip would otherwise dominate a one-shot reading.
  constexpr size_t kCleanPasses = 2;

  // --- clean default build: compile every unit, no TESLA machinery ---
  for (size_t u = 0; u < times.units; u++) {
    auto warmup = CompileUnit(corpus.plain_sources[u], corpus.unit_names[u]);
    if (!warmup.ok()) {
      return warmup.error();
    }
  }
  Clock::time_point start;
  times.clean_default_s = 0.0;
  for (size_t pass = 0; pass < kCleanPasses; pass++) {
    start = Clock::now();
    for (size_t u = 0; u < times.units; u++) {
      auto unit = CompileUnit(corpus.plain_sources[u], corpus.unit_names[u]);
      if (!unit.ok()) {
        return unit.error();
      }
    }
    const double elapsed = SecondsSince(start);
    if (pass == 0 || elapsed < times.clean_default_s) {
      times.clean_default_s = elapsed;
    }
  }

  // --- clean TESLA build: compile + analyse every unit, merge the
  // program-wide manifest, instrument every unit against it ---
  std::vector<CompiledUnit> objects;
  times.clean_tesla_s = 0.0;
  for (size_t pass = 0; pass < kCleanPasses; pass++) {
    std::vector<CompiledUnit> pass_objects;
    pass_objects.reserve(times.units);
    start = Clock::now();
    for (size_t u = 0; u < times.units; u++) {
      auto unit = CompileUnit(corpus.unit_sources[u], corpus.unit_names[u]);
      if (!unit.ok()) {
        return unit.error();
      }
      pass_objects.push_back(std::move(unit.value()));
    }
    automata::Manifest merged;
    for (const CompiledUnit& object : pass_objects) {
      merged.Merge(object.manifest);
    }
    uint64_t hooks = 0;
    for (const CompiledUnit& object : pass_objects) {
      auto instrumented = instr::Instrument(object.module, merged,
                                            std::vector<cfront::SiteInfo>(object.sites));
      if (!instrumented.ok()) {
        return instrumented.error();
      }
      hooks += instrumented->hooks_inserted;
    }
    const double elapsed = SecondsSince(start);
    if (pass == 0 || elapsed < times.clean_tesla_s) {
      times.clean_tesla_s = elapsed;
    }
    times.instrumented_hooks = hooks;
    objects = std::move(pass_objects);
  }

  // --- incremental default build: recompile only the touched unit ---
  // Incremental rebuilds are microseconds of work, so a single scheduler
  // blip can swamp them; warm up untimed, then report the fastest rebuild.
  {
    auto warmup = CompileUnit(corpus.plain_sources[modified], corpus.unit_names[modified]);
    if (!warmup.ok()) {
      return warmup.error();
    }
  }
  times.incremental_default_s = 0.0;
  for (size_t r = 0; r < repeats; r++) {
    start = Clock::now();
    auto unit = CompileUnit(corpus.plain_sources[modified], corpus.unit_names[modified]);
    if (!unit.ok()) {
      return unit.error();
    }
    const double elapsed = SecondsSince(start);
    if (r == 0 || elapsed < times.incremental_default_s) {
      times.incremental_default_s = elapsed;
    }
  }

  // --- incremental TESLA build: recompile the touched unit, re-merge the
  // program-wide manifest, then re-instrument — naively every unit (any
  // .tesla change invalidates all instrumented IR), or, in smart mode, only
  // units the modified unit's automata can reach ---
  times.incremental_tesla_s = 0.0;
  for (size_t r = 0; r < repeats; r++) {
    start = Clock::now();
    auto rebuilt = CompileUnit(corpus.unit_sources[modified], corpus.unit_names[modified]);
    if (!rebuilt.ok()) {
      return rebuilt.error();
    }
    automata::Manifest remerged;
    for (size_t u = 0; u < times.units; u++) {
      remerged.Merge(u == modified ? rebuilt->manifest : objects[u].manifest);
    }
    std::vector<size_t> to_instrument;
    if (options.smart_incremental) {
      to_instrument = AffectedUnits(corpus, modified, rebuilt->manifest);
    } else {
      for (size_t u = 0; u < times.units; u++) {
        to_instrument.push_back(u);
      }
    }
    times.incremental_units_reinstrumented = to_instrument.size();
    for (size_t u : to_instrument) {
      const CompiledUnit& object = u == modified ? rebuilt.value() : objects[u];
      auto instrumented = instr::Instrument(object.module, remerged,
                                            std::vector<cfront::SiteInfo>(object.sites));
      if (!instrumented.ok()) {
        return instrumented.error();
      }
    }
    const double elapsed = SecondsSince(start);
    if (r == 0 || elapsed < times.incremental_tesla_s) {
      times.incremental_tesla_s = elapsed;
    }
  }

  return times;
}

}  // namespace tesla::buildsim
