// buildsim: a model of the TESLA build pipeline's cost (paper §5.1, fig. 10).
//
// The paper measures the OpenSSL build under the TESLA toolchain: a clean
// build pays ~2.5x (every translation unit runs through the analyser and the
// instrumenter), but an *incremental* build pays ~500x, because any change to
// the program-wide .tesla manifest forces re-instrumentation of every IR
// file — "a fundamental problem with one-to-many dependencies".
//
// buildsim reproduces that shape with the real pipeline: it generates a
// synthetic multi-unit corpus (each unit in the cfront dialect, with
// cross-unit calls and optional inline TESLA assertions), then drives
// cfront + analyser + instrumenter through the four build configurations
// (clean/incremental x default/TESLA) with wall-clock timing. The
// smart-incremental mode models the paper's suggested "further build
// optimisation": only units that define or call a function hooked by the
// modified unit's automata are re-instrumented.
#ifndef TESLA_BUILDSIM_BUILDSIM_H_
#define TESLA_BUILDSIM_BUILDSIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "support/result.h"

namespace tesla::buildsim {

struct CorpusOptions {
  size_t units = 16;
  size_t functions_per_unit = 8;
  size_t statements_per_function = 6;
  // Every Nth unit carries an inline TESLA assertion (1 = all units, the
  // paper's OpenSSL-like dense case). Values above `units` leave only unit 0
  // asserted — the sparse case where smart re-instrumentation pays off.
  size_t assertion_every = 1;
};

// Per-unit metadata recorded at generation time; MeasureBuild's smart
// incremental mode uses it as its (conservative) dependency oracle.
struct UnitInfo {
  std::string name;
  std::vector<std::string> defines;  // functions defined by the unit
  std::vector<std::string> calls;    // functions the unit calls
  bool has_assertion = false;
};

struct Corpus {
  std::vector<std::string> unit_names;
  std::vector<std::string> unit_sources;   // TESLA-build inputs (with assertions)
  std::vector<std::string> plain_sources;  // default-build inputs (stripped)
  std::vector<UnitInfo> units;
};

Corpus GenerateCorpus(const CorpusOptions& options = {});

struct BuildOptions {
  // Incremental rebuilds to time (the fastest rebuild is reported, so one
  // scheduler blip cannot swamp a microsecond-scale measurement).
  size_t incremental_repeats = 3;
  // Re-instrument only units affected by the modified unit's automata
  // instead of every unit (§5.1's proposed optimisation).
  bool smart_incremental = false;
  // Which unit the incremental rebuild touches. Defaults to unit 1: an
  // ordinary source edit (fig. 10's incremental case is touching one .c
  // file, not the assertion itself) — unit 0 carries the sparse corpus's
  // only assertion, and recompiling the assertion would dominate the
  // rebuild and mask the re-instrumentation cost being measured.
  size_t modified_unit = 1;
};

struct BuildTimes {
  size_t units = 0;

  // The paper's four bars (seconds).
  double clean_default_s = 0.0;
  double clean_tesla_s = 0.0;
  double incremental_default_s = 0.0;
  double incremental_tesla_s = 0.0;

  // Hooks woven across all units by the clean TESLA build.
  uint64_t instrumented_hooks = 0;
  // Units re-instrumented per incremental TESLA rebuild (naive: all).
  size_t incremental_units_reinstrumented = 0;

  double CleanSlowdown() const {
    return clean_default_s > 0.0 ? clean_tesla_s / clean_default_s : 0.0;
  }
  double IncrementalSlowdown() const {
    return incremental_default_s > 0.0 ? incremental_tesla_s / incremental_default_s : 0.0;
  }
};

// Runs the four build configurations over `corpus` and reports timings.
// Fails if any unit fails to compile or instrument.
Result<BuildTimes> MeasureBuild(const Corpus& corpus, const BuildOptions& options = {});

}  // namespace tesla::buildsim

#endif  // TESLA_BUILDSIM_BUILDSIM_H_
