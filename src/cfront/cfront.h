// cfront: a miniature C front-end for the TESLA pipeline.
//
// Plays Clang's role in paper §4.1: it parses a C-like language in which
// TESLA assertions appear inline as macro-style statements
// (`TESLA_WITHIN(f, previously(check(x) == 0));`), compiles functions to
// tesla::ir, runs the TESLA analyser over each assertion (producing the
// unit's manifest), and lowers each assertion site to a call to the reserved
// pseudo-function `__tesla_inline_assertion` — which the instrumenter later
// replaces with an event-translator hook (§4.2 "Assertions").
//
// Language subset: `int` and `struct X *` types, functions, structs,
// if/else, while, return, assignment (including compound assignment and
// ++/-- on struct fields), calls, `alloc(StructName)` for heap objects, and
// the usual integer operators. Logical && and || evaluate both operands
// (no short-circuit).
#ifndef TESLA_CFRONT_CFRONT_H_
#define TESLA_CFRONT_CFRONT_H_

#include <string>
#include <string_view>
#include <vector>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "ir/ir.h"
#include "support/result.h"

namespace tesla::cfront {

// The reserved assertion-site pseudo-function (paper §3.1, §4.2).
inline constexpr const char* kInlineAssertionFn = "__tesla_inline_assertion";

struct CompileOptions {
  automata::LowerOptions lower;
  std::string syscall_bound_function = "syscall";
};

// Metadata for one assertion site: which automaton it belongs to and, for
// each argument of the emitted `__tesla_inline_assertion` call, the automaton
// variable index that argument carries.
struct SiteInfo {
  std::string automaton;
  std::vector<uint16_t> var_indices;
};

// A multi-unit compilation: units share one module (functions and structs
// resolve across units by name, as a linker would) and one merged manifest
// (the combined .tesla file of §4.1).
class Compiler {
 public:
  explicit Compiler(CompileOptions options = {}) : options_(std::move(options)) {}

  // Compiles one translation unit into the shared module.
  Status AddUnit(std::string_view source, const std::string& unit_name);

  ir::Module& module() { return module_; }
  const ir::Module& module() const { return module_; }
  const automata::Manifest& manifest() const { return manifest_; }
  const std::vector<SiteInfo>& sites() const { return sites_; }

 private:
  friend class UnitParser;

  CompileOptions options_;
  ir::Module module_;
  automata::Manifest manifest_;
  std::vector<SiteInfo> sites_;
};

}  // namespace tesla::cfront

#endif  // TESLA_CFRONT_CFRONT_H_
