#include "cfront/cfront.h"

#include <cctype>
#include <set>

#include "parser/parser.h"

namespace tesla::cfront {
namespace {

using ir::BinOp;
using ir::Instr;
using ir::Opcode;
using ir::Reg;

struct Token {
  enum class Kind { kIdent, kInt, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  int64_t value = 0;
  int line = 1;
  size_t begin = 0;  // byte offsets into the unit source, for raw capture
  size_t end = 0;
};

Result<std::vector<Token>> TokenizeC(std::string_view source) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      line++;
      i++;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') i++;
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < source.size() && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') line++;
        i++;
      }
      i += 2;
      continue;
    }
    Token token;
    token.line = line;
    token.begin = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) || source[i] == '_')) {
        i++;
      }
      token.kind = Token::Kind::kIdent;
      token.text = std::string(source.substr(start, i - start));
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      if (i + 1 < source.size() && source[i] == '0' &&
          (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        i += 2;
        while (i < source.size() && std::isxdigit(static_cast<unsigned char>(source[i]))) i++;
      } else {
        while (i < source.size() && std::isdigit(static_cast<unsigned char>(source[i]))) i++;
      }
      token.kind = Token::Kind::kInt;
      token.text = std::string(source.substr(start, i - start));
      token.value = std::strtoll(token.text.c_str(), nullptr, 0);
    } else {
      static const char* kTwoChar[] = {"->", "++", "--", "+=", "-=", "==", "!=",
                                       "<=", ">=", "&&", "||"};
      token.kind = Token::Kind::kPunct;
      token.text = std::string(1, c);
      if (i + 1 < source.size()) {
        std::string two{c, source[i + 1]};
        for (const char* candidate : kTwoChar) {
          if (two == candidate) {
            token.text = two;
            break;
          }
        }
      }
      if (std::string("(){};,=+-*/%<>!&|.").find(c) == std::string::npos &&
          token.text.size() == 1) {
        return Error{std::string("unexpected character '") + c + "'", line, 1};
      }
      i += token.text.size();
    }
    token.end = i;
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = Token::Kind::kEnd;
  end.line = line;
  end.begin = end.end = source.size();
  tokens.push_back(end);
  return tokens;
}

const std::set<std::string>& TeslaMacros() {
  static const std::set<std::string> macros = {
      "TESLA_WITHIN",  "TESLA_GLOBAL",  "TESLA_PERTHREAD",
      "TESLA_ASSERT",  "TESLA_SYSCALL", "TESLA_SYSCALL_PREVIOUSLY",
  };
  return macros;
}

struct Local {
  Reg reg = ir::kNoReg;
  int struct_type = -1;  // for `struct X *` locals
};

}  // namespace

class UnitParser {
 public:
  UnitParser(Compiler& compiler, std::string_view source, std::string unit_name,
             std::vector<Token> tokens)
      : compiler_(compiler),
        source_(source),
        unit_name_(std::move(unit_name)),
        tokens_(std::move(tokens)) {}

  Status Run() {
    while (!Check(Token::Kind::kEnd)) {
      if (CheckIdent("struct") && PeekAhead(2).text == "{") {
        if (auto s = ParseStructDef(); !s.ok()) return s;
      } else {
        if (auto s = ParseFunction(); !s.ok()) return s;
      }
    }
    return Status::Ok();
  }

 private:
  // --- top level ---

  Status ParseStructDef() {
    Advance();  // struct
    std::string name = Peek().text;
    Advance();
    if (auto s = ExpectPunct("{"); !s.ok()) return s;
    ir::StructType type;
    type.name = name;
    while (!CheckPunct("}")) {
      // field: `int name ;` or `struct X *name ;`
      if (CheckIdent("struct")) {
        Advance();
        Advance();  // struct name (field struct types are untracked)
        if (auto s = ExpectPunct("*"); !s.ok()) return s;
      } else if (CheckIdent("int")) {
        Advance();
      } else {
        return Fail("expected field type");
      }
      ir::StructField field;
      field.name = Peek().text;
      field.symbol = InternString(field.name);
      Advance();
      type.fields.push_back(std::move(field));
      if (auto s = ExpectPunct(";"); !s.ok()) return s;
    }
    Advance();  // }
    if (auto s = ExpectPunct(";"); !s.ok()) return s;
    if (compiler_.module_.FindStruct(name) < 0) {
      compiler_.module_.AddStruct(std::move(type));
    }
    return Status::Ok();
  }

  Status ParseFunction() {
    if (!CheckIdent("int") && !CheckIdent("void")) {
      return Fail("expected function return type");
    }
    Advance();
    if (!Check(Token::Kind::kIdent)) return Fail("expected function name");
    function_ = ir::Function();
    function_.name = InternString(Peek().text);
    Advance();
    locals_.clear();
    next_reg_ = 0;
    blocks_.clear();
    blocks_.emplace_back();
    current_block_ = 0;

    if (auto s = ExpectPunct("("); !s.ok()) return s;
    while (!CheckPunct(")")) {
      int struct_type = -1;
      if (CheckIdent("struct")) {
        Advance();
        struct_type = compiler_.module_.FindStruct(Peek().text);
        if (struct_type < 0) return Fail("unknown struct '" + Peek().text + "'");
        Advance();
        if (auto s = ExpectPunct("*"); !s.ok()) return s;
      } else if (CheckIdent("int")) {
        Advance();
      } else {
        return Fail("expected parameter type");
      }
      if (!Check(Token::Kind::kIdent)) return Fail("expected parameter name");
      Reg reg = NewReg();
      locals_[Peek().text] = Local{reg, struct_type};
      Advance();
      function_.param_count++;
      if (CheckPunct(",")) Advance();
    }
    Advance();  // )
    if (auto s = ExpectPunct("{"); !s.ok()) return s;
    while (!CheckPunct("}")) {
      if (auto s = ParseStatement(); !s.ok()) return s;
    }
    Advance();  // }

    // Implicit `return 0` on fall-through.
    if (blocks_[current_block_].instrs.empty() ||
        !IsTerminated(blocks_[current_block_])) {
      Reg zero = NewReg();
      Emit(Instr{.op = Opcode::kConst, .dst = zero, .imm = 0});
      Instr ret;
      ret.op = Opcode::kRet;
      ret.a = zero;
      Emit(ret);
    }
    function_.reg_count = next_reg_;
    function_.blocks = std::move(blocks_);
    compiler_.module_.AddFunction(std::move(function_));
    return Status::Ok();
  }

  // --- statements ---

  Status ParseStatement() {
    if (CheckIdent("int") || (CheckIdent("struct") && PeekAhead(2).text == "*")) {
      return ParseDecl();
    }
    if (CheckIdent("if")) return ParseIf();
    if (CheckIdent("while")) return ParseWhile();
    if (CheckIdent("for")) return ParseFor();
    if (CheckIdent("break")) return ParseBreakContinue(true);
    if (CheckIdent("continue")) return ParseBreakContinue(false);
    if (CheckIdent("return")) return ParseReturn();
    if (Check(Token::Kind::kIdent) && TeslaMacros().count(Peek().text) != 0) {
      return ParseAssertion();
    }
    if (CheckPunct("{")) {
      Advance();
      while (!CheckPunct("}")) {
        if (auto s = ParseStatement(); !s.ok()) return s;
      }
      Advance();
      return Status::Ok();
    }

    // Assignment or expression statement.
    if (Check(Token::Kind::kIdent)) {
      const std::string name = Peek().text;
      const Token& next = PeekAhead(1);
      if (next.text == "=" ) {
        Advance();
        Advance();
        auto value = ParseExpr();
        if (!value.ok()) return value.error();
        auto local = locals_.find(name);
        if (local == locals_.end()) return Fail("unknown variable '" + name + "'");
        Emit(Instr{.op = Opcode::kMove, .dst = local->second.reg, .a = *value});
        return ExpectPunct(";");
      }
      if (next.text == "->") {
        return ParseFieldStatement(name);
      }
    }
    auto value = ParseExpr();
    if (!value.ok()) return value.error();
    return ExpectPunct(";");
  }

  Status ParseDecl() {
    int struct_type = -1;
    if (CheckIdent("struct")) {
      Advance();
      struct_type = compiler_.module_.FindStruct(Peek().text);
      if (struct_type < 0) return Fail("unknown struct '" + Peek().text + "'");
      Advance();
      if (auto s = ExpectPunct("*"); !s.ok()) return s;
    } else {
      Advance();  // int
    }
    if (!Check(Token::Kind::kIdent)) return Fail("expected variable name");
    std::string name = Peek().text;
    Advance();
    Reg reg = NewReg();
    locals_[name] = Local{reg, struct_type};
    if (CheckPunct("=")) {
      Advance();
      auto value = ParseExpr();
      if (!value.ok()) return value.error();
      Emit(Instr{.op = Opcode::kMove, .dst = reg, .a = *value});
    } else {
      Emit(Instr{.op = Opcode::kConst, .dst = reg, .imm = 0});
    }
    return ExpectPunct(";");
  }

  Status ParseFieldStatement(const std::string& name) {
    Advance();  // name
    Advance();  // ->
    if (!Check(Token::Kind::kIdent)) return Fail("expected field name");
    std::string field = Peek().text;
    Advance();

    auto local = locals_.find(name);
    if (local == locals_.end() || local->second.struct_type < 0) {
      return Fail("'" + name + "' is not a struct pointer");
    }
    uint32_t type_id = static_cast<uint32_t>(local->second.struct_type);
    int field_index = compiler_.module_.struct_type(type_id).FieldIndex(field);
    if (field_index < 0) return Fail("unknown field '" + field + "'");

    const std::string op = Peek().text;
    Reg object = local->second.reg;

    auto store = [&](Reg value) {
      Instr instr;
      instr.op = Opcode::kStoreField;
      instr.a = object;
      instr.b = value;
      instr.type_id = type_id;
      instr.field_index = static_cast<uint32_t>(field_index);
      Emit(instr);
    };
    auto load = [&]() {
      Reg dst = NewReg();
      Instr instr;
      instr.op = Opcode::kLoadField;
      instr.dst = dst;
      instr.a = object;
      instr.type_id = type_id;
      instr.field_index = static_cast<uint32_t>(field_index);
      Emit(instr);
      return dst;
    };

    if (op == "=") {
      Advance();
      auto value = ParseExpr();
      if (!value.ok()) return value.error();
      store(*value);
    } else if (op == "+=" || op == "-=") {
      Advance();
      auto value = ParseExpr();
      if (!value.ok()) return value.error();
      Reg old_value = load();
      Reg result = NewReg();
      Emit(Instr{.op = Opcode::kBin,
                 .bin = op == "+=" ? BinOp::kAdd : BinOp::kSub,
                 .dst = result,
                 .a = old_value,
                 .b = *value});
      store(result);
    } else if (op == "++" || op == "--") {
      Advance();
      Reg old_value = load();
      Reg one = NewReg();
      Emit(Instr{.op = Opcode::kConst, .dst = one, .imm = 1});
      Reg result = NewReg();
      Emit(Instr{.op = Opcode::kBin,
                 .bin = op == "++" ? BinOp::kAdd : BinOp::kSub,
                 .dst = result,
                 .a = old_value,
                 .b = one});
      store(result);
    } else {
      return Fail("expected assignment to field");
    }
    return ExpectPunct(";");
  }

  Status ParseIf() {
    Advance();  // if
    if (auto s = ExpectPunct("("); !s.ok()) return s;
    auto condition = ParseExpr();
    if (!condition.ok()) return condition.error();
    if (auto s = ExpectPunct(")"); !s.ok()) return s;

    uint32_t then_block = NewBlock();
    uint32_t else_block = NewBlock();
    uint32_t join_block = NewBlock();
    Emit(Instr{.op = Opcode::kCondBr,
               .a = *condition,
               .then_block = then_block,
               .else_block = else_block});

    current_block_ = then_block;
    if (auto s = ParseStatement(); !s.ok()) return s;
    EmitBranchIfOpen(join_block);

    current_block_ = else_block;
    if (CheckIdent("else")) {
      Advance();
      if (auto s = ParseStatement(); !s.ok()) return s;
    }
    EmitBranchIfOpen(join_block);
    current_block_ = join_block;
    return Status::Ok();
  }

  Status ParseWhile() {
    Advance();  // while
    if (auto s = ExpectPunct("("); !s.ok()) return s;
    uint32_t header = NewBlock();
    uint32_t body = NewBlock();
    uint32_t exit = NewBlock();
    EmitBranchIfOpen(header);

    current_block_ = header;
    auto condition = ParseExpr();
    if (!condition.ok()) return condition.error();
    if (auto s = ExpectPunct(")"); !s.ok()) return s;
    Emit(Instr{.op = Opcode::kCondBr, .a = *condition, .then_block = body, .else_block = exit});

    current_block_ = body;
    loops_.push_back(LoopTargets{header, exit});
    Status parsed = ParseStatement();
    loops_.pop_back();
    if (!parsed.ok()) return parsed;
    EmitBranchIfOpen(header);
    current_block_ = exit;
    return Status::Ok();
  }

  Status ParseFor() {
    Advance();  // for
    if (auto s = ExpectPunct("("); !s.ok()) return s;
    // init: a declaration, an assignment, or empty.
    if (!CheckPunct(";")) {
      if (CheckIdent("int") || (CheckIdent("struct") && PeekAhead(2).text == "*")) {
        if (auto s = ParseDecl(); !s.ok()) return s;
      } else {
        if (auto s = ParseSimpleAssignment(); !s.ok()) return s;
        if (auto s = ExpectPunct(";"); !s.ok()) return s;
      }
    } else {
      Advance();
    }

    uint32_t header = NewBlock();
    uint32_t body = NewBlock();
    uint32_t step = NewBlock();
    uint32_t exit = NewBlock();
    EmitBranchIfOpen(header);

    current_block_ = header;
    if (CheckPunct(";")) {
      // No condition: loop until break.
      Emit(Instr{.op = Opcode::kBr, .then_block = body});
      Advance();
    } else {
      auto condition = ParseExpr();
      if (!condition.ok()) return condition.error();
      Emit(Instr{.op = Opcode::kCondBr, .a = *condition, .then_block = body,
                 .else_block = exit});
      if (auto s = ExpectPunct(";"); !s.ok()) return s;
    }

    current_block_ = step;
    if (!CheckPunct(")")) {
      if (auto s = ParseSimpleAssignment(); !s.ok()) return s;
    }
    Emit(Instr{.op = Opcode::kBr, .then_block = header});
    if (auto s = ExpectPunct(")"); !s.ok()) return s;

    current_block_ = body;
    loops_.push_back(LoopTargets{step, exit});
    Status parsed = ParseStatement();
    loops_.pop_back();
    if (!parsed.ok()) return parsed;
    EmitBranchIfOpen(step);
    current_block_ = exit;
    return Status::Ok();
  }

  Status ParseBreakContinue(bool is_break) {
    Advance();
    if (loops_.empty()) {
      return Fail(is_break ? "break outside a loop" : "continue outside a loop");
    }
    Emit(Instr{.op = Opcode::kBr,
               .then_block = is_break ? loops_.back().break_target
                                      : loops_.back().continue_target});
    if (auto s = ExpectPunct(";"); !s.ok()) return s;
    current_block_ = NewBlock();  // unreachable continuation
    return Status::Ok();
  }

  // `x = expr` or `x->f <op> ...` without the trailing semicolon check for
  // assignment forms that manage it themselves; used by for-init/step.
  Status ParseSimpleAssignment() {
    if (!Check(Token::Kind::kIdent)) {
      auto value = ParseExpr();
      return value.ok() ? Status::Ok() : Status(value.error());
    }
    const std::string name = Peek().text;
    if (PeekAhead(1).text == "=") {
      Advance();
      Advance();
      auto value = ParseExpr();
      if (!value.ok()) return value.error();
      auto local = locals_.find(name);
      if (local == locals_.end()) return Fail("unknown variable '" + name + "'");
      Emit(Instr{.op = Opcode::kMove, .dst = local->second.reg, .a = *value});
      return Status::Ok();
    }
    auto value = ParseExpr();
    return value.ok() ? Status::Ok() : Status(value.error());
  }

  Status ParseReturn() {
    Advance();
    Reg value;
    if (CheckPunct(";")) {
      value = NewReg();
      Emit(Instr{.op = Opcode::kConst, .dst = value, .imm = 0});
    } else {
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.error();
      value = *expr;
    }
    Instr ret;
    ret.op = Opcode::kRet;
    ret.a = value;
    Emit(ret);
    if (auto s = ExpectPunct(";"); !s.ok()) return s;
    // Statements after a return land in a fresh (unreachable) block.
    current_block_ = NewBlock();
    return Status::Ok();
  }

  // A TESLA macro statement: capture the raw balanced-paren text, run the
  // analyser (parse + lower), emit the reserved site call.
  Status ParseAssertion() {
    const Token& macro = Peek();
    const int line = macro.line;
    size_t start = macro.begin;
    Advance();
    if (!CheckPunct("(")) return Fail("expected '(' after TESLA macro");
    int depth = 0;
    size_t end = 0;
    while (!Check(Token::Kind::kEnd)) {
      if (CheckPunct("(")) depth++;
      if (CheckPunct(")")) {
        depth--;
        if (depth == 0) {
          end = Peek().end;
          Advance();
          break;
        }
      }
      Advance();
    }
    if (end == 0) return Fail("unterminated TESLA assertion");
    if (auto s = ExpectPunct(";"); !s.ok()) return s;

    std::string text(source_.substr(start, end - start));
    std::string name = unit_name_ + ":" + std::to_string(line);
    auto automaton = automata::CompileAssertion(text, compiler_.options_.lower, name,
                                                compiler_.options_.syscall_bound_function);
    if (!automaton.ok()) {
      return Error{name + ": " + automaton.error().ToString()};
    }

    // The site call passes the current values of in-scope automaton
    // variables; the instrumenter turns it into a site-event translator.
    SiteInfo site;
    site.automaton = name;
    Instr call;
    call.op = Opcode::kCall;
    call.fn = InternString(kInlineAssertionFn);
    call.imm = static_cast<int64_t>(compiler_.sites_.size());
    for (size_t i = 0; i < automaton->variables.size(); i++) {
      auto local = locals_.find(automaton->variables[i]);
      if (local != locals_.end()) {
        call.args.push_back(local->second.reg);
        site.var_indices.push_back(static_cast<uint16_t>(i));
      }
    }
    Emit(std::move(call));
    compiler_.sites_.push_back(std::move(site));
    compiler_.manifest_.Add(std::move(automaton.value()));
    return Status::Ok();
  }

  // --- expressions (precedence climbing) ---

  Result<Reg> ParseExpr() { return ParseBinary(0); }

  struct OpLevel {
    const char* token;
    BinOp op;
    int level;
    bool logical;
  };

  Result<Reg> ParseBinary(int min_level) {
    static const OpLevel kLevels[] = {
        {"||", BinOp::kOr, 1, true},   {"&&", BinOp::kAnd, 1, true},
        {"==", BinOp::kEq, 2, false},  {"!=", BinOp::kNe, 2, false},
        {"<", BinOp::kLt, 3, false},   {"<=", BinOp::kLe, 3, false},
        {">", BinOp::kGt, 3, false},   {">=", BinOp::kGe, 3, false},
        {"+", BinOp::kAdd, 4, false},  {"-", BinOp::kSub, 4, false},
        {"*", BinOp::kMul, 5, false},  {"/", BinOp::kDiv, 5, false},
        {"%", BinOp::kMod, 5, false},
    };
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    while (Check(Token::Kind::kPunct)) {
      const OpLevel* matched = nullptr;
      for (const OpLevel& level : kLevels) {
        if (Peek().text == level.token && level.level >= min_level) {
          matched = &level;
          break;
        }
      }
      if (matched == nullptr) {
        break;
      }
      Advance();
      auto rhs = ParseBinary(matched->level + 1);
      if (!rhs.ok()) return rhs;
      Reg a = *lhs;
      Reg b = *rhs;
      if (matched->logical) {
        a = Normalize(a);
        b = Normalize(b);
      }
      Reg dst = NewReg();
      Emit(Instr{.op = Opcode::kBin, .bin = matched->op, .dst = dst, .a = a, .b = b});
      lhs = dst;
    }
    return lhs;
  }

  Reg Normalize(Reg reg) {
    Reg zero = NewReg();
    Emit(Instr{.op = Opcode::kConst, .dst = zero, .imm = 0});
    Reg dst = NewReg();
    Emit(Instr{.op = Opcode::kBin, .bin = BinOp::kNe, .dst = dst, .a = reg, .b = zero});
    return dst;
  }

  Result<Reg> ParseUnary() {
    if (CheckPunct("!")) {
      Advance();
      auto value = ParseUnary();
      if (!value.ok()) return value;
      Reg zero = NewReg();
      Emit(Instr{.op = Opcode::kConst, .dst = zero, .imm = 0});
      Reg dst = NewReg();
      Emit(Instr{.op = Opcode::kBin, .bin = BinOp::kEq, .dst = dst, .a = *value, .b = zero});
      return dst;
    }
    if (CheckPunct("-")) {
      Advance();
      auto value = ParseUnary();
      if (!value.ok()) return value;
      Reg zero = NewReg();
      Emit(Instr{.op = Opcode::kConst, .dst = zero, .imm = 0});
      Reg dst = NewReg();
      Emit(Instr{.op = Opcode::kBin, .bin = BinOp::kSub, .dst = dst, .a = zero, .b = *value});
      return dst;
    }
    return ParsePostfix();
  }

  Result<Reg> ParsePostfix() {
    auto value = ParsePrimary();
    if (!value.ok()) return value;
    while (CheckPunct("->")) {
      Advance();
      if (!Check(Token::Kind::kIdent)) return Error{"expected field name", Peek().line, 1};
      std::string field = Peek().text;
      Advance();
      // Field loads through expression values: the struct type must be
      // recoverable; only direct locals carry type information.
      if (last_struct_type_ < 0) {
        return Error{"cannot infer struct type for '->' access", Peek().line, 1};
      }
      uint32_t type_id = static_cast<uint32_t>(last_struct_type_);
      int field_index = compiler_.module_.struct_type(type_id).FieldIndex(field);
      if (field_index < 0) return Error{"unknown field '" + field + "'", Peek().line, 1};
      Reg dst = NewReg();
      Instr instr;
      instr.op = Opcode::kLoadField;
      instr.dst = dst;
      instr.a = *value;
      instr.type_id = type_id;
      instr.field_index = static_cast<uint32_t>(field_index);
      Emit(instr);
      value = dst;
      last_struct_type_ = -1;
    }
    return value;
  }

  Result<Reg> ParsePrimary() {
    last_struct_type_ = -1;
    if (Check(Token::Kind::kInt)) {
      Reg dst = NewReg();
      Emit(Instr{.op = Opcode::kConst, .dst = dst, .imm = Peek().value});
      Advance();
      return dst;
    }
    if (CheckPunct("(")) {
      Advance();
      auto value = ParseExpr();
      if (!value.ok()) return value;
      if (auto s = ExpectPunct(")"); !s.ok()) return s.error();
      return value;
    }
    if (!Check(Token::Kind::kIdent)) {
      return Error{"expected expression", Peek().line, 1};
    }
    std::string name = Peek().text;
    Advance();

    if (CheckPunct("(")) {
      Advance();
      // alloc(StructName): heap allocation.
      if (name == "alloc") {
        if (!Check(Token::Kind::kIdent)) return Error{"expected struct name", Peek().line, 1};
        int type_id = compiler_.module_.FindStruct(Peek().text);
        if (type_id < 0) {
          return Error{"unknown struct '" + Peek().text + "'", Peek().line, 1};
        }
        Advance();
        if (auto s = ExpectPunct(")"); !s.ok()) return s.error();
        Reg dst = NewReg();
        Instr instr;
        instr.op = Opcode::kAlloc;
        instr.dst = dst;
        instr.type_id = static_cast<uint32_t>(type_id);
        Emit(instr);
        last_struct_type_ = type_id;
        return dst;
      }
      Instr call;
      call.op = Opcode::kCall;
      call.fn = InternString(name);
      while (!CheckPunct(")")) {
        auto arg = ParseExpr();
        if (!arg.ok()) return arg;
        call.args.push_back(*arg);
        if (CheckPunct(",")) Advance();
      }
      Advance();  // )
      Reg dst = NewReg();
      call.dst = dst;
      Emit(std::move(call));
      return dst;
    }

    auto local = locals_.find(name);
    if (local == locals_.end()) {
      return Error{"unknown variable '" + name + "'", Peek().line, 1};
    }
    last_struct_type_ = local->second.struct_type;
    return local->second.reg;
  }

  // --- builder plumbing ---

  Reg NewReg() { return next_reg_++; }

  uint32_t NewBlock() {
    blocks_.emplace_back();
    return static_cast<uint32_t>(blocks_.size() - 1);
  }

  void Emit(Instr instr) { blocks_[current_block_].instrs.push_back(std::move(instr)); }

  static bool IsTerminated(const ir::Block& block) {
    if (block.instrs.empty()) return false;
    Opcode op = block.instrs.back().op;
    return op == Opcode::kRet || op == Opcode::kBr || op == Opcode::kCondBr;
  }

  void EmitBranchIfOpen(uint32_t target) {
    if (!IsTerminated(blocks_[current_block_])) {
      Emit(Instr{.op = Opcode::kBr, .then_block = target});
    }
  }

  // --- token plumbing ---

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAhead(size_t n) const {
    return pos_ + n < tokens_.size() ? tokens_[pos_ + n] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) pos_++;
  }
  bool Check(Token::Kind kind) const { return Peek().kind == kind; }
  bool CheckIdent(const char* text) const {
    return Peek().kind == Token::Kind::kIdent && Peek().text == text;
  }
  bool CheckPunct(const char* text) const {
    return Peek().kind == Token::Kind::kPunct && Peek().text == text;
  }
  Status ExpectPunct(const char* text) {
    if (!CheckPunct(text)) {
      return Error{std::string("expected '") + text + "', got '" + Peek().text + "'",
                   Peek().line, 1};
    }
    Advance();
    return Status::Ok();
  }
  Error Fail(const std::string& message) const { return Error{message, Peek().line, 1}; }

  Compiler& compiler_;
  std::string_view source_;
  std::string unit_name_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;

  ir::Function function_;
  std::vector<ir::Block> blocks_;
  uint32_t current_block_ = 0;
  Reg next_reg_ = 0;
  struct LoopTargets {
    uint32_t continue_target = 0;
    uint32_t break_target = 0;
  };
  std::vector<LoopTargets> loops_;
  std::unordered_map<std::string, Local> locals_;
  int last_struct_type_ = -1;
};

Status Compiler::AddUnit(std::string_view source, const std::string& unit_name) {
  auto tokens = TokenizeC(source);
  if (!tokens.ok()) {
    return Error{unit_name + ": " + tokens.error().ToString()};
  }
  UnitParser parser(*this, source, unit_name, std::move(tokens.value()));
  if (auto status = parser.Run(); !status.ok()) {
    return Error{unit_name + ": " + status.error().ToString()};
  }
  return Status::Ok();
}

}  // namespace tesla::cfront
