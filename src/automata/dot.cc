#include "automata/dot.h"

#include <cmath>
#include <sstream>

namespace tesla::automata {
namespace {

std::string EscapeLabel(const std::string& text) {
  std::string escaped;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      escaped.push_back('\\');
    }
    escaped.push_back(c);
  }
  return escaped;
}

std::string SymbolLabel(const Automaton& automaton, uint16_t symbol) {
  std::string label = automaton.alphabet[symbol].ToString();
  if (symbol == automaton.init_symbol) {
    label += " «init»";
  }
  if (symbol == automaton.cleanup_symbol) {
    label += " «cleanup»";
  }
  if (automaton.has_site && symbol == automaton.site_symbol) {
    label += " «assertion»";
  }
  return EscapeLabel(label);
}

}  // namespace

std::string ToDot(const Automaton& automaton, const Dfa& dfa, const TransitionWeights* weights,
                  StateSet highlight) {
  std::ostringstream out;
  out << "digraph \"" << EscapeLabel(automaton.name) << "\" {\n";
  out << "  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n";
  for (uint32_t state = 0; state < dfa.states.size(); state++) {
    out << "  s" << state << " [label=\"state " << state << "\\n\\\"" << dfa.StateLabel(state)
        << "\\\"\"";
    if (dfa.states[state].contains_accept) {
      out << ", peripheries=2";
    }
    if ((dfa.states[state].nfa_states & highlight) != 0) {
      out << ", style=filled, fillcolor=\"#ffd0d0\"";
    }
    out << "];\n";
  }
  for (uint32_t state = 0; state < dfa.states.size(); state++) {
    for (uint16_t symbol = 0; symbol < dfa.symbol_count; symbol++) {
      uint32_t target = dfa.states[state].transitions[symbol];
      if (target == Dfa::kNoTarget) {
        continue;
      }
      out << "  s" << state << " -> s" << target << " [label=\""
          << SymbolLabel(automaton, symbol);
      uint64_t weight = 0;
      if (weights != nullptr) {
        auto it = weights->find({state, symbol});
        if (it != weights->end()) {
          weight = it->second;
        }
        out << "\\n(" << weight << ")";
      }
      out << "\"";
      if (weights != nullptr) {
        // Pen width grows logarithmically with observed frequency (fig. 9:
        // "Transitions are weighted according to their occurrence at run time").
        double width = weight == 0 ? 0.3 : 1.0 + std::log10(static_cast<double>(weight));
        out << ", penwidth=" << width;
      }
      out << "];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string ToDotNfa(const Automaton& automaton) {
  std::ostringstream out;
  out << "digraph \"" << EscapeLabel(automaton.name) << " (NFA)\" {\n";
  out << "  rankdir=TB;\n  node [shape=circle, fontname=\"Helvetica\"];\n";
  for (uint32_t state = 0; state < automaton.state_count; state++) {
    out << "  n" << state << " [label=\"" << state << "\"";
    if (state == automaton.accept_state) {
      out << ", shape=doublecircle";
    }
    out << "];\n";
  }
  for (const Transition& transition : automaton.transitions) {
    out << "  n" << transition.from << " -> n" << transition.to << " [label=\""
        << SymbolLabel(automaton, transition.symbol) << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace tesla::automata
