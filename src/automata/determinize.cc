#include "automata/determinize.h"

#include <deque>
#include <map>
#include <sstream>

namespace tesla::automata {

std::string Dfa::StateLabel(uint32_t state) const {
  std::ostringstream out;
  out << "NFA:";
  StateSet set = states[state].nfa_states;
  bool first = true;
  while (set != 0) {
    uint32_t nfa_state = static_cast<uint32_t>(__builtin_ctzll(set));
    set &= set - 1;
    if (!first) {
      out << ",";
    }
    first = false;
    out << nfa_state;
  }
  return out.str();
}

Dfa Determinize(const Automaton& automaton) {
  Dfa dfa;
  dfa.symbol_count = static_cast<uint32_t>(automaton.alphabet.size());

  std::map<StateSet, uint32_t> index;
  std::deque<StateSet> worklist;

  auto state_of = [&](StateSet set) {
    auto it = index.find(set);
    if (it != index.end()) {
      return it->second;
    }
    uint32_t id = static_cast<uint32_t>(dfa.states.size());
    Dfa::State state;
    state.nfa_states = set;
    state.transitions.assign(dfa.symbol_count, Dfa::kNoTarget);
    state.contains_accept = (set & StateBit(automaton.accept_state)) != 0;
    dfa.states.push_back(std::move(state));
    index.emplace(set, id);
    worklist.push_back(set);
    return id;
  };

  state_of(StateBit(automaton.initial_state));
  while (!worklist.empty()) {
    StateSet set = worklist.front();
    worklist.pop_front();
    uint32_t from = index.at(set);
    for (uint16_t symbol = 0; symbol < dfa.symbol_count; symbol++) {
      StateSet next = automaton.Step(set, symbol);
      if (next == 0) {
        continue;
      }
      uint32_t to = state_of(next);
      dfa.states[from].transitions[symbol] = to;
    }
  }
  return dfa;
}

}  // namespace tesla::automata
