// Lowering: parser AST → TESLA automaton (paper §4.1's "recursive descent
// over an abstract syntax tree ... converting them into automata states and
// transitions").
#ifndef TESLA_AUTOMATA_LOWER_H_
#define TESLA_AUTOMATA_LOWER_H_

#include <cstdint>
#include <map>
#include <string>

#include "automata/automaton.h"
#include "parser/ast.h"
#include "support/result.h"

namespace tesla::automata {

struct LowerOptions {
  // Named integer constants usable in value patterns (e.g. NEXT_STATE).
  // Identifiers found here lower to literals; others become automaton
  // variables bound at run time.
  std::map<std::string, int64_t> constants;

  // Flag names usable inside flags(...) / bitmask(...) patterns
  // (e.g. IO_NOMACCHECK in fig. 7).
  std::map<std::string, uint64_t> flags;
};

// Lowers one assertion to an automaton. Fails on unknown flag names or if the
// automaton would exceed kMaxStates states.
Result<Automaton> Lower(const ast::Assertion& assertion, const LowerOptions& options = {});

// Convenience: parse + lower in one step.
Result<Automaton> CompileAssertion(const std::string& source, const LowerOptions& options = {},
                                   const std::string& name = "",
                                   const std::string& syscall_bound = "syscall");

}  // namespace tesla::automata

#endif  // TESLA_AUTOMATA_LOWER_H_
