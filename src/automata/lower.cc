#include "automata/lower.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <utility>

#include "parser/parser.h"

namespace tesla::automata {
namespace {

using ast::Assertion;
using ast::BooleanOp;
using ast::Expr;
using ast::ExprKind;
using ast::FunctionEventKind;
using ast::Modifier;
using ast::ValueKind;
using ast::ValuePattern;

// One NFA edge, tagged with the timed regions it lies inside (bit k set: the
// edge belongs to timed spec k's body). Every composition below copies edges
// wholesale, so tags survive Concat dissolving a fragment's entry state —
// after assembly, "states with a tagged out-edge" is exactly the set of
// states where the spec's obligation is still live.
struct Edge {
  uint16_t symbol = 0;
  uint32_t target = 0;
  uint32_t specs = 0;

  bool operator==(const Edge&) const = default;
};

// An epsilon-free NFA fragment with a single entry state.
// Invariant: nullable ⟺ entry ∈ accepts.
struct MiniNfa {
  // edges[state] = list of out-edges.
  std::vector<std::vector<Edge>> edges;
  uint32_t entry = 0;
  std::vector<uint32_t> accepts;
  bool nullable = false;

  uint32_t size() const { return static_cast<uint32_t>(edges.size()); }
  bool IsAccept(uint32_t state) const {
    return std::find(accepts.begin(), accepts.end(), state) != accepts.end();
  }
  void AddAccept(uint32_t state) {
    if (!IsAccept(state)) {
      accepts.push_back(state);
    }
  }
};

MiniNfa Leaf(uint16_t symbol) {
  MiniNfa nfa;
  nfa.edges.resize(2);
  nfa.edges[0].push_back({symbol, 1});
  nfa.entry = 0;
  nfa.accepts = {1};
  nfa.nullable = false;
  return nfa;
}

// Appends B's states to A's state space, returning the index offset.
uint32_t Absorb(MiniNfa* a, const MiniNfa& b) {
  uint32_t offset = a->size();
  for (const auto& out_edges : b.edges) {
    a->edges.emplace_back();
    for (const Edge& edge : out_edges) {
      a->edges.back().push_back({edge.symbol, edge.target + offset, edge.specs});
    }
  }
  return offset;
}

MiniNfa Concat(MiniNfa a, const MiniNfa& b) {
  uint32_t offset = Absorb(&a, b);
  // Every accept of A grows copies of B's entry out-edges (Glushkov concat).
  for (uint32_t accept : a.accepts) {
    for (const Edge& edge : b.edges[b.entry]) {
      a.edges[accept].push_back({edge.symbol, edge.target + offset, edge.specs});
    }
  }
  std::vector<uint32_t> accepts;
  for (uint32_t accept : b.accepts) {
    accepts.push_back(accept + offset);
  }
  if (b.nullable) {
    accepts.insert(accepts.end(), a.accepts.begin(), a.accepts.end());
  }
  a.accepts = std::move(accepts);
  a.nullable = a.nullable && b.nullable;
  return a;
}

MiniNfa Union(std::vector<MiniNfa> children) {
  MiniNfa nfa;
  nfa.edges.resize(1);  // state 0: the shared entry
  nfa.entry = 0;
  for (const MiniNfa& child : children) {
    uint32_t offset = Absorb(&nfa, child);
    for (const Edge& edge : child.edges[child.entry]) {
      nfa.edges[0].push_back({edge.symbol, edge.target + offset, edge.specs});
    }
    for (uint32_t accept : child.accepts) {
      // The child's entry accepting (nullable child) is represented by the
      // shared entry accepting instead; the child entry itself is unreachable.
      if (accept == child.entry) {
        nfa.nullable = true;
      } else {
        nfa.accepts.push_back(accept + offset);
      }
    }
    if (child.nullable) {
      nfa.nullable = true;
    }
  }
  if (nfa.nullable) {
    nfa.AddAccept(nfa.entry);
  }
  return nfa;
}

MiniNfa Star(MiniNfa a) {
  for (uint32_t accept : a.accepts) {
    if (accept == a.entry) {
      continue;
    }
    for (const auto& edge : a.edges[a.entry]) {
      auto& out = a.edges[accept];
      if (std::find(out.begin(), out.end(), edge) == out.end()) {
        out.push_back(edge);
      }
    }
  }
  a.nullable = true;
  a.AddAccept(a.entry);
  return a;
}

// Shuffle (cross) product: paper §3.4.2's construction for logical OR.
// Each event advances the component it belongs to; the result accepts when at
// least one component accepts.
MiniNfa Product(const MiniNfa& a, const MiniNfa& b) {
  MiniNfa nfa;
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> index;
  std::deque<std::pair<uint32_t, uint32_t>> worklist;

  auto state_of = [&](uint32_t sa, uint32_t sb) {
    auto key = std::make_pair(sa, sb);
    auto it = index.find(key);
    if (it != index.end()) {
      return it->second;
    }
    uint32_t id = nfa.size();
    nfa.edges.emplace_back();
    index.emplace(key, id);
    worklist.push_back(key);
    if (a.IsAccept(sa) || b.IsAccept(sb)) {
      nfa.accepts.push_back(id);
    }
    return id;
  };

  nfa.entry = state_of(a.entry, b.entry);
  while (!worklist.empty()) {
    auto [sa, sb] = worklist.front();
    worklist.pop_front();
    uint32_t from = index.at({sa, sb});
    for (const Edge& edge : a.edges[sa]) {
      uint32_t to = state_of(edge.target, sb);
      nfa.edges[from].push_back({edge.symbol, to, edge.specs});
    }
    for (const Edge& edge : b.edges[sb]) {
      uint32_t to = state_of(sa, edge.target);
      nfa.edges[from].push_back({edge.symbol, to, edge.specs});
    }
  }
  nfa.nullable = a.nullable || b.nullable;
  assert(nfa.nullable == nfa.IsAccept(nfa.entry));
  return nfa;
}

class Lowerer {
 public:
  Lowerer(const Assertion& assertion, const LowerOptions& options)
      : assertion_(assertion), options_(options) {}

  Result<Automaton> Run() {
    automaton_.name = assertion_.name;
    automaton_.context = assertion_.context;
    automaton_.source_text = parser::FormatAssertion(assertion_);

    // Symbols 0/1 by construction: init, cleanup.
    EventPattern init;
    init.kind = assertion_.start.is_call ? PatternKind::kFunctionCall
                                         : PatternKind::kFunctionReturn;
    init.function = InternString(assertion_.start.function);
    automaton_.init_symbol = automaton_.AddPattern(init);

    EventPattern cleanup;
    cleanup.kind = assertion_.end.is_call ? PatternKind::kFunctionCall
                                          : PatternKind::kFunctionReturn;
    cleanup.function = InternString(assertion_.end.function);
    automaton_.cleanup_symbol = automaton_.AddPattern(cleanup);

    auto body = Build(*assertion_.expr);
    if (!body.ok()) {
      return body.error();
    }
    Assemble(body.value());
    if (automaton_.state_count > kMaxStates) {
      return Error{"automaton exceeds " + std::to_string(kMaxStates) + " states (" +
                   std::to_string(automaton_.state_count) + ")"};
    }
    automaton_.Finalize();
    return std::move(automaton_);
  }

 private:
  Result<MiniNfa> Build(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kSequence: {
        std::vector<MiniNfa> parts;
        for (const auto& child : expr.children) {
          auto part = Build(*child);
          if (!part.ok()) return part;
          parts.push_back(std::move(part.value()));
        }
        if (parts.empty()) {
          return Error{"empty TSEQUENCE", expr.line, expr.column};
        }
        MiniNfa nfa = std::move(parts.front());
        for (size_t i = 1; i < parts.size(); i++) {
          nfa = Concat(std::move(nfa), parts[i]);
        }
        return nfa;
      }
      case ExprKind::kBoolean: {
        std::vector<MiniNfa> parts;
        for (const auto& child : expr.children) {
          auto part = Build(*child);
          if (!part.ok()) return part;
          parts.push_back(std::move(part.value()));
        }
        if (expr.bool_op == BooleanOp::kXor) {
          return Union(std::move(parts));
        }
        MiniNfa nfa = std::move(parts.front());
        for (size_t i = 1; i < parts.size(); i++) {
          nfa = Product(nfa, parts[i]);
          // The shuffle product grows multiplicatively; bail out early rather
          // than exploring a state space that can never fit in kMaxStates.
          if (nfa.size() > 4 * kMaxStates) {
            return Error{"'||' cross-product exceeds the automaton state limit", expr.line,
                         expr.column};
          }
        }
        return nfa;
      }
      case ExprKind::kAtLeast: {
        // Fast path: when every operand is a single event (the common fig. 8
        // shape, with ~110 method events), the automaton is just a chain of
        // `at_least` all-symbol hops ending in an all-symbol self-loop state —
        // build it directly instead of via Union/Star (which would create an
        // unreachable helper state per operand and overflow kMaxStates).
        bool all_leaf_events = true;
        for (const auto& child : expr.children) {
          switch (child->kind) {
            case ExprKind::kFunctionEvent:
            case ExprKind::kFieldAssign:
            case ExprKind::kAssertionSite:
            case ExprKind::kInCallStack:
              break;
            default:
              all_leaf_events = false;
              break;
          }
        }
        if (all_leaf_events) {
          std::vector<uint16_t> symbols;
          for (const auto& child : expr.children) {
            auto leaf = Build(*child);
            if (!leaf.ok()) return leaf;
            // A leaf fragment has exactly one edge: entry --symbol--> exit.
            symbols.push_back(leaf.value().edges[leaf.value().entry].front().symbol);
          }
          MiniNfa nfa;
          uint32_t chain = static_cast<uint32_t>(expr.at_least);
          nfa.edges.resize(chain + 1);
          nfa.entry = 0;
          for (uint32_t state = 0; state <= chain; state++) {
            uint32_t target = state < chain ? state + 1 : state;
            for (uint16_t symbol : symbols) {
              nfa.edges[state].push_back({symbol, target});
            }
          }
          nfa.accepts = {chain};
          nfa.nullable = chain == 0;
          return nfa;
        }
        std::vector<MiniNfa> parts;
        for (const auto& child : expr.children) {
          auto part = Build(*child);
          if (!part.ok()) return part;
          parts.push_back(std::move(part.value()));
        }
        MiniNfa unioned = Union(std::move(parts));
        MiniNfa nfa = Star(unioned);
        for (int64_t i = 0; i < expr.at_least; i++) {
          // Prepend one mandatory round per required repetition.
          nfa = Concat(unioned, std::move(nfa));
        }
        return nfa;
      }
      case ExprKind::kModified: {
        const Expr& child = *expr.children.at(0);
        switch (expr.modifier) {
          case Modifier::kOptional:
          case Modifier::kConditional: {
            // `conditional` is not given distinct semantics by the paper; we
            // treat it as `optional` (the sub-expression may or may not occur).
            auto inner = Build(child);
            if (!inner.ok()) return inner;
            MiniNfa nfa = std::move(inner.value());
            nfa.nullable = true;
            nfa.AddAccept(nfa.entry);
            return nfa;
          }
          case Modifier::kCallee:
          case Modifier::kCaller: {
            CallSide saved = side_;
            side_ = expr.modifier == Modifier::kCallee ? CallSide::kCallee : CallSide::kCaller;
            auto inner = Build(child);
            side_ = saved;
            return inner;
          }
          case Modifier::kStrict: {
            automaton_.strict = true;
            return Build(child);
          }
        }
        return Error{"unhandled modifier", expr.line, expr.column};
      }
      case ExprKind::kFunctionEvent: {
        EventPattern pattern;
        pattern.kind = expr.fn_kind == FunctionEventKind::kCall ? PatternKind::kFunctionCall
                                                                : PatternKind::kFunctionReturn;
        pattern.function = InternString(expr.function);
        pattern.args_specified = expr.args_specified;
        pattern.side = side_;
        for (const ValuePattern& value : expr.args) {
          auto match = LowerValue(value, expr);
          if (!match.ok()) return match.error();
          pattern.args.push_back(match.value());
        }
        if (expr.fn_kind == FunctionEventKind::kReturnValue) {
          pattern.match_return = true;
          auto match = LowerValue(expr.return_pattern, expr);
          if (!match.ok()) return match.error();
          pattern.return_match = match.value();
        }
        return Leaf(automaton_.AddPattern(pattern));
      }
      case ExprKind::kFieldAssign: {
        EventPattern pattern;
        pattern.kind = PatternKind::kFieldAssign;
        pattern.struct_var = VariableIndex(expr.struct_var);
        pattern.field = InternString(expr.field);
        pattern.assign_op = expr.assign_op;
        if (expr.assign_op != ast::AssignOp::kIncrement &&
            expr.assign_op != ast::AssignOp::kDecrement) {
          auto match = LowerValue(expr.assign_value, expr);
          if (!match.ok()) return match.error();
          pattern.assign_value = match.value();
        }
        return Leaf(automaton_.AddPattern(pattern));
      }
      case ExprKind::kAssertionSite: {
        return Leaf(SitePattern());
      }
      case ExprKind::kInCallStack: {
        EventPattern pattern;
        pattern.kind = PatternKind::kInCallStack;
        pattern.function = InternString(expr.function);
        uint16_t symbol = automaton_.AddPattern(pattern);
        site_variants_.push_back(symbol);
        return Leaf(symbol);
      }
      case ExprKind::kWithin:
      case ExprKind::kRate: {
        auto inner = Build(*expr.children.at(0));
        if (!inner.ok()) return inner;
        MiniNfa nfa = std::move(inner.value());
        // A nullable region has nothing to time: the obligation would arm
        // and instantly satisfy, so the clause is meaningless (and the
        // armed-mask extraction below would misfire on the entry state).
        if (nfa.nullable) {
          return Error{"timed clause region must require at least one event", expr.line,
                       expr.column};
        }
        if (timed_specs_.size() >= kMaxTimedSpecs) {
          return Error{"automaton exceeds " + std::to_string(kMaxTimedSpecs) +
                           " timed clauses",
                       expr.line, expr.column};
        }
        TimedSpec spec;
        if (expr.kind == ExprKind::kWithin) {
          spec.kind = TimedSpec::kWithin;
          spec.bound_ns = static_cast<uint64_t>(expr.time_ms) * 1'000'000u;
        } else {
          spec.kind = TimedSpec::kRate;
          spec.bound_ns = static_cast<uint64_t>(expr.rate_window_ms) * 1'000'000u;
          spec.limit = static_cast<uint64_t>(expr.rate_count);
        }
        const uint32_t bit = 1u << timed_specs_.size();
        timed_specs_.push_back(std::move(spec));
        // Tag every edge of the region fragment; composition copies tags
        // along, so Assemble can recover the region's states after the
        // fragment's entry has been dissolved into its predecessors.
        for (auto& out_edges : nfa.edges) {
          for (Edge& edge : out_edges) {
            edge.specs |= bit;
          }
        }
        return nfa;
      }
    }
    return Error{"unhandled expression", expr.line, expr.column};
  }

  uint16_t SitePattern() {
    EventPattern pattern;
    pattern.kind = PatternKind::kAssertionSite;
    uint16_t symbol = automaton_.AddPattern(pattern);
    automaton_.has_site = true;
    automaton_.site_symbol = symbol;
    return symbol;
  }

  Result<ArgMatch> LowerValue(const ValuePattern& value, const Expr& where) {
    ArgMatch match;
    switch (value.kind) {
      case ValueKind::kAny:
        match.kind = ArgMatchKind::kAny;
        return match;
      case ValueKind::kLiteral:
        match.kind = ArgMatchKind::kLiteral;
        match.literal = value.literal;
        return match;
      case ValueKind::kVariable: {
        auto constant = options_.constants.find(value.variable);
        if (constant != options_.constants.end()) {
          match.kind = ArgMatchKind::kLiteral;
          match.literal = constant->second;
          return match;
        }
        match.kind = ArgMatchKind::kVariable;
        match.var = VariableIndex(value.variable);
        return match;
      }
      case ValueKind::kIndirect:
        match.kind = ArgMatchKind::kIndirect;
        match.var = VariableIndex(value.variable);
        return match;
      case ValueKind::kFlags:
      case ValueKind::kBitmask: {
        match.kind =
            value.kind == ValueKind::kFlags ? ArgMatchKind::kFlags : ArgMatchKind::kBitmask;
        for (const std::string& flag : value.flag_names) {
          auto it = options_.flags.find(flag);
          if (it == options_.flags.end()) {
            return Error{"unknown flag '" + flag + "'", where.line, where.column};
          }
          match.mask |= it->second;
        }
        return match;
      }
    }
    return Error{"unhandled value pattern", where.line, where.column};
  }

  uint16_t VariableIndex(const std::string& name) {
    auto& variables = automaton_.variables;
    for (size_t i = 0; i < variables.size(); i++) {
      if (variables[i] == name) {
        return static_cast<uint16_t>(i);
      }
    }
    variables.push_back(name);
    return static_cast<uint16_t>(variables.size() - 1);
  }

  // Wires the body fragment between the «init» and «cleanup» transitions,
  // adds bypass cleanup edges (paper §4.1: "bypass returnfrom(syscall)
  // transitions to allow code paths that ... never pass through the assertion
  // site") and site self-loops for repeated site visits after satisfaction.
  void Assemble(const MiniNfa& body) {
    // State numbering: 0 = pre-init, 1..n = body states (+1), n+1 = accept.
    uint32_t body_offset = 1;
    uint32_t accept = body.size() + 1;
    automaton_.state_count = body.size() + 2;
    automaton_.initial_state = 0;
    automaton_.accept_state = accept;

    automaton_.AddTransition(0, automaton_.init_symbol, body.entry + body_offset);
    for (uint32_t state = 0; state < body.size(); state++) {
      for (const Edge& edge : body.edges[state]) {
        automaton_.AddTransition(state + body_offset, edge.symbol, edge.target + body_offset);
      }
    }
    for (uint32_t accepting : body.accepts) {
      automaton_.AddTransition(accepting + body_offset, automaton_.cleanup_symbol, accept);
    }

    // Timed-spec arming masks: a spec's obligation is live exactly in the
    // body states that still have a region edge to traverse (the arming
    // entry states plus the region's interior). Rate specs also collect the
    // symbols their window counts, in symbol order for determinism.
    for (size_t k = 0; k < timed_specs_.size(); k++) {
      TimedSpec& spec = timed_specs_[k];
      const uint32_t bit = 1u << k;
      for (uint32_t state = 0; state < body.size(); state++) {
        for (const Edge& edge : body.edges[state]) {
          if ((edge.specs & bit) == 0) {
            continue;
          }
          spec.armed_mask |= StateBit(state + body_offset);
          if (spec.kind == TimedSpec::kRate &&
              std::find(spec.symbols.begin(), spec.symbols.end(), edge.symbol) ==
                  spec.symbols.end()) {
            spec.symbols.push_back(edge.symbol);
          }
        }
      }
      std::sort(spec.symbols.begin(), spec.symbols.end());
    }
    automaton_.timed = std::move(timed_specs_);

    const bool site_based = automaton_.has_site || !site_variants_.empty();
    std::vector<uint16_t> site_symbols = site_variants_;
    if (automaton_.has_site) {
      site_symbols.push_back(automaton_.site_symbol);
    }
    auto is_site_symbol = [&](uint16_t symbol) {
      return std::find(site_symbols.begin(), site_symbols.end(), symbol) != site_symbols.end();
    };

    if (site_based) {
      // Pre-site states: reachable from the body entry without traversing a
      // site-symbol edge. These get bypass cleanup edges.
      std::vector<bool> pre_site(body.size(), false);
      std::deque<uint32_t> worklist{body.entry};
      pre_site[body.entry] = true;
      while (!worklist.empty()) {
        uint32_t state = worklist.front();
        worklist.pop_front();
        for (const Edge& edge : body.edges[state]) {
          if (is_site_symbol(edge.symbol) || pre_site[edge.target]) {
            continue;
          }
          pre_site[edge.target] = true;
          worklist.push_back(edge.target);
        }
      }
      for (uint32_t state = 0; state < body.size(); state++) {
        if (pre_site[state]) {
          automaton_.AddTransition(state + body_offset, automaton_.cleanup_symbol, accept);
        }
      }

      // Post-site states: forward-reachable from any site-edge target.
      // Revisiting the assertion site from a post-site state re-enters the
      // site-target states: for `previously` the targets are the already-
      // satisfied states, so a satisfied site may be revisited freely; for
      // `eventually` the revisit re-arms the obligation (each site visit must
      // be followed by its own completion before the bound closes).
      {
        // Per site-like symbol (the assertion site and each incallstack()
        // variant), the set of its transition targets.
        std::map<uint16_t, std::vector<uint32_t>> targets_by_symbol;
        std::vector<bool> post_site(body.size(), false);
        std::deque<uint32_t> frontier;
        for (uint32_t state = 0; state < body.size(); state++) {
          for (const Edge& edge : body.edges[state]) {
            if (!is_site_symbol(edge.symbol)) {
              continue;
            }
            auto& targets = targets_by_symbol[edge.symbol];
            if (std::find(targets.begin(), targets.end(), edge.target) == targets.end()) {
              targets.push_back(edge.target);
            }
            if (!post_site[edge.target]) {
              post_site[edge.target] = true;
              frontier.push_back(edge.target);
            }
          }
        }
        while (!frontier.empty()) {
          uint32_t state = frontier.front();
          frontier.pop_front();
          for (const Edge& edge : body.edges[state]) {
            if (!post_site[edge.target]) {
              post_site[edge.target] = true;
              frontier.push_back(edge.target);
            }
          }
        }
        for (uint32_t state = 0; state < body.size(); state++) {
          if (!post_site[state]) {
            continue;
          }
          for (const auto& [symbol, targets] : targets_by_symbol) {
            for (uint32_t target : targets) {
              automaton_.AddTransition(state + body_offset, symbol, target + body_offset);
            }
          }
        }
      }
    } else {
      // No assertion site in the expression: the bound may close with no
      // events consumed, but partial progress at cleanup is a violation.
      automaton_.AddTransition(body.entry + body_offset, automaton_.cleanup_symbol, accept);
    }
  }

  const Assertion& assertion_;
  const LowerOptions& options_;
  Automaton automaton_;
  CallSide side_ = CallSide::kEither;
  std::vector<uint16_t> site_variants_;  // incallstack() symbols
  std::vector<TimedSpec> timed_specs_;   // within_ms/rate clauses, build order
};

}  // namespace

Result<Automaton> Lower(const ast::Assertion& assertion, const LowerOptions& options) {
  return Lowerer(assertion, options).Run();
}

Result<Automaton> CompileAssertion(const std::string& source, const LowerOptions& options,
                                   const std::string& name, const std::string& syscall_bound) {
  parser::ParseOptions parse_options;
  parse_options.syscall_bound_function = syscall_bound;
  auto assertion = parser::ParseAssertion(source, parse_options);
  if (!assertion.ok()) {
    return assertion.error();
  }
  assertion.value().name = name.empty() ? source : name;
  return Lower(assertion.value(), options);
}

}  // namespace tesla::automata
