#include "automata/stepc.h"

namespace tesla::automata {

StepLowering LowerStep(const Automaton& automaton, const Dfa& dfa) {
  StepLowering low;
  low.nfa_state_count = automaton.state_count;
  low.dfa_state_count = static_cast<uint32_t>(dfa.states.size());
  low.symbol_count = dfa.symbol_count;

  low.single_symbol_steps = true;
  for (const EventPattern& pattern : automaton.alphabet) {
    if (pattern.kind == PatternKind::kInCallStack) {
      low.single_symbol_steps = false;
      break;
    }
  }

  low.rows.resize(static_cast<size_t>(low.dfa_state_count) * low.symbol_count,
                  Dfa::kNoTarget);
  low.dfa_sets.resize(low.dfa_state_count);
  low.symbol_edges.resize(low.symbol_count);
  for (uint32_t state = 0; state < low.dfa_state_count; state++) {
    low.dfa_sets[state] = dfa.states[state].nfa_states;
    for (uint32_t symbol = 0; symbol < low.symbol_count; symbol++) {
      const uint32_t target = dfa.states[state].transitions[symbol];
      low.rows[static_cast<size_t>(state) * low.symbol_count + symbol] = target;
      if (target != Dfa::kNoTarget) {
        low.symbol_edges[symbol].push_back({state, target});
      }
    }
  }
  for (uint16_t symbol = 0; symbol < low.symbol_count; symbol++) {
    if (!low.symbol_edges[symbol].empty()) {
      low.live_symbols.push_back(symbol);
    }
  }

  // NFA step tables. symbol_sources is Finalize()'s per-symbol source mask;
  // the dense target table folds each state's edge vector into one set per
  // (symbol, state) so stepping never chases the per-state vectors again.
  low.sources.resize(low.symbol_count, 0);
  for (uint32_t symbol = 0;
       symbol < low.symbol_count && symbol < automaton.symbol_sources.size(); symbol++) {
    low.sources[symbol] = automaton.symbol_sources[symbol];
  }
  low.targets.resize(static_cast<size_t>(low.symbol_count) * low.nfa_state_count, 0);
  for (const Transition& transition : automaton.transitions) {
    low.targets[static_cast<size_t>(transition.symbol) * low.nfa_state_count +
                transition.from] |= StateBit(transition.to);
  }
  return low;
}

}  // namespace tesla::automata
