// The TESLA automaton: an epsilon-free NFA over EventPattern symbols.
//
// Layout (paper §4.4.1, fig. 9):
//   state 0            pre-init; the «init» symbol (the bound's start event)
//                      moves to the body entry
//   body states        lowered from the assertion expression
//   accept state       reached via the «cleanup» symbol (the bound's end
//                      event) from body-accepting and bypass states
//
// Instances are simulated as 64-bit state sets, so automata are limited to 64
// states; lowering reports an error beyond that.
#ifndef TESLA_AUTOMATA_AUTOMATON_H_
#define TESLA_AUTOMATA_AUTOMATON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/pattern.h"
#include "parser/ast.h"
#include "support/intern.h"

namespace tesla::automata {

using StateSet = uint64_t;
inline constexpr uint32_t kMaxStates = 64;

constexpr StateSet StateBit(uint32_t state) { return StateSet{1} << state; }

struct Transition {
  uint32_t from = 0;
  uint16_t symbol = 0;  // index into Automaton::alphabet
  uint32_t to = 0;

  bool operator==(const Transition&) const = default;
};

// One timed clause (within_ms / rate) lowered from the assertion body. The
// runtime arms a deadline (or rate window) whenever some instance of the
// class occupies a state in armed_mask — exactly the states with a region
// edge still to traverse — and disarms once no instance does (the region
// completed or was bypassed). Manifest serialisation carries specs as
// optional `timed` lines (absent for untimed automata, so pre-timed readers
// and writers round-trip unchanged); replay depends on them — a capture's
// embedded manifest must rebuild the same deadlines the recording run armed.
struct TimedSpec {
  enum Kind : uint8_t { kWithin, kRate };
  Kind kind = kWithin;
  uint64_t bound_ns = 0;  // kWithin: deadline; kRate: tumbling-window length
  uint64_t limit = 0;     // kRate: max region events per window
  StateSet armed_mask = 0;
  std::vector<uint16_t> symbols;  // kRate: the symbols the window counts

  bool operator==(const TimedSpec&) const = default;
};

inline constexpr size_t kMaxTimedSpecs = 16;

class Automaton {
 public:
  // --- structure ---

  std::string name;                   // e.g. "sopoll_generic.c:123"
  ast::Context context = ast::Context::kPerThread;
  bool strict = false;                // strict(): unconsumable events are violations

  std::vector<EventPattern> alphabet;
  std::vector<std::string> variables;  // automaton variable names, by index

  uint32_t state_count = 0;
  uint32_t initial_state = 0;   // always 0
  uint32_t accept_state = 0;    // the post-cleanup accepting state
  std::vector<Transition> transitions;

  uint16_t init_symbol = 0;     // «init» (bound start)
  uint16_t cleanup_symbol = 0;  // «cleanup» (bound end)
  bool has_site = false;
  uint16_t site_symbol = 0;     // valid when has_site

  // Timed clauses (within_ms / rate), in lowering order; empty for purely
  // ordering-based assertions.
  std::vector<TimedSpec> timed;

  // Original surface syntax, kept for reports.
  std::string source_text;

  // --- derived data (built by Finalize) ---

  // edges[state] lists (symbol, target) pairs.
  std::vector<std::vector<Transition>> edges;
  // For each symbol, the union of states having an out-edge on it.
  std::vector<StateSet> symbol_sources;

  void Finalize();

  // Steps `states` on `symbol`; returns the successor set (may be empty).
  StateSet Step(StateSet states, uint16_t symbol) const;

  // True if `symbol` can fire from at least one state in `states`.
  bool CanStep(StateSet states, uint16_t symbol) const {
    return symbol < symbol_sources.size() && (symbol_sources[symbol] & states) != 0;
  }

  // Adds (deduplicating) a pattern to the alphabet; returns its symbol index.
  uint16_t AddPattern(const EventPattern& pattern);

  void AddTransition(uint32_t from, uint16_t symbol, uint32_t to);

  // The set {body entry} used to seed fresh instances (the state reached by
  // the «init» transition).
  StateSet InitialInstanceStates() const;

  // Variable indices bound by each symbol's patterns (for clone bookkeeping).
  std::vector<uint16_t> VariablesBoundBy(uint16_t symbol) const;

  // The automaton's *key variables*: the union of variables bound by any
  // body symbol (everything except «init»/«cleanup») — i.e. the variables a
  // clone event can bind. The runtime keys its per-class instance index on
  // exactly this set; an instance with all key variables bound is fully
  // differentiated and probe-able in O(1).
  uint32_t CloneBoundMask() const;

  std::string ToString() const;
};

}  // namespace tesla::automata

#endif  // TESLA_AUTOMATA_AUTOMATON_H_
