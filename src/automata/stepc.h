// Step-function lowering: the per-class tables every compiled stepping tier
// consumes (see runtime/step.h for the tiers themselves).
//
// An automaton is frozen once its class registers — Finalize() and
// Determinize() have run and neither the alphabet nor the transition relation
// can change. That makes the step function (symbol test → transition →
// successor set) a pure function of static tables, so we lower it once per
// class instead of re-walking edge vectors per event:
//
//   * `rows`        — the DFA transition table flattened to one load per
//                     (state, symbol); Dfa::kNoTarget marks invalid cells.
//   * `dfa_sets`    — each DFA state's NFA state-set, so a DFA-stepped
//                     instance can keep its NFA view bit-identical to the
//                     simulated one (subset construction guarantees
//                     NfaStep(dfa_sets[d], s) == dfa_sets[Dfa::Step(d, s)]).
//   * `sources`/`targets` — the NFA step as mask-and-union tables: successor
//                     of `set` on `s` is the union of targets[s][i] over the
//                     bits i of (set & sources[s]).
//   * `symbol_edges` — the DFA edges grouped per symbol, dead symbols (no
//                     edge anywhere) pruned: the threaded tier collapses a
//                     single-edge symbol to one compare instead of a row
//                     load, and the IR emitter walks the same lists.
//
// `single_symbol_steps` records the key shape fact: a class with no
// incallstack() patterns is only ever stepped on one symbol at a time (site
// variants are the sole multi-symbol dispatch), so the DFA state alone
// determines the NFA set and the class can be stepped by table lookup.
#ifndef TESLA_AUTOMATA_STEPC_H_
#define TESLA_AUTOMATA_STEPC_H_

#include <cstdint>
#include <vector>

#include "automata/automaton.h"
#include "automata/determinize.h"

namespace tesla::automata {

struct StepLowering {
  uint32_t nfa_state_count = 0;
  uint32_t dfa_state_count = 0;
  uint32_t symbol_count = 0;
  // No incallstack() pattern in the alphabet: every step is single-symbol,
  // so DFA tracking is exact (see header comment).
  bool single_symbol_steps = false;

  // dfa_state_count × symbol_count; Dfa::kNoTarget for invalid cells.
  std::vector<uint32_t> rows;
  // Per DFA state, its NFA state-set.
  std::vector<StateSet> dfa_sets;
  // Per symbol, the NFA states with an out-edge on it.
  std::vector<StateSet> sources;
  // symbol_count × nfa_state_count: targets[s * nfa_state_count + i] is the
  // successor set of NFA state i on symbol s (0 when no edge).
  std::vector<StateSet> targets;

  struct DfaEdge {
    uint32_t from = 0;
    uint32_t to = 0;
  };
  // DFA edges grouped per symbol; a dead symbol's list is empty.
  std::vector<std::vector<DfaEdge>> symbol_edges;
  // Symbols with at least one DFA edge, ascending.
  std::vector<uint16_t> live_symbols;

  uint32_t Row(uint32_t dfa_state, uint16_t symbol) const {
    return rows[static_cast<size_t>(dfa_state) * symbol_count + symbol];
  }
};

// Lowers `automaton` (finalized) and its determinisation into step tables.
StepLowering LowerStep(const Automaton& automaton, const Dfa& dfa);

}  // namespace tesla::automata

#endif  // TESLA_AUTOMATA_STEPC_H_
