// Graphviz DOT rendering of TESLA automata, optionally weighted with run-time
// transition counts (paper §4.4.2: "TESLA can combine observations of dynamic
// behaviour with static automata descriptions, producing weighted graphs like
// that in figure 9").
#ifndef TESLA_AUTOMATA_DOT_H_
#define TESLA_AUTOMATA_DOT_H_

#include <cstdint>
#include <map>
#include <string>

#include "automata/automaton.h"
#include "automata/determinize.h"

namespace tesla::automata {

// Counts of observed transitions, keyed by (from DFA state, symbol).
using TransitionWeights = std::map<std::pair<uint32_t, uint16_t>, uint64_t>;

std::string ToDot(const Automaton& automaton, const Dfa& dfa,
                  const TransitionWeights* weights = nullptr);

// NFA-level rendering (one node per NFA state).
std::string ToDotNfa(const Automaton& automaton);

}  // namespace tesla::automata

#endif  // TESLA_AUTOMATA_DOT_H_
