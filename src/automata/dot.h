// Graphviz DOT rendering of TESLA automata, optionally weighted with run-time
// transition counts (paper §4.4.2: "TESLA can combine observations of dynamic
// behaviour with static automata descriptions, producing weighted graphs like
// that in figure 9").
#ifndef TESLA_AUTOMATA_DOT_H_
#define TESLA_AUTOMATA_DOT_H_

#include <cstdint>
#include <map>
#include <string>

#include "automata/automaton.h"
#include "automata/determinize.h"

namespace tesla::automata {

// Counts of observed transitions, keyed by (from DFA state, symbol).
using TransitionWeights = std::map<std::pair<uint32_t, uint16_t>, uint64_t>;

// `highlight` is an NFA state set (e.g. the states live when a violation was
// reported): every DFA state whose NFA set intersects it is filled, so the
// rendered graph shows where the automaton was when things went wrong.
std::string ToDot(const Automaton& automaton, const Dfa& dfa,
                  const TransitionWeights* weights = nullptr, StateSet highlight = 0);

// NFA-level rendering (one node per NFA state).
std::string ToDotNfa(const Automaton& automaton);

}  // namespace tesla::automata

#endif  // TESLA_AUTOMATA_DOT_H_
