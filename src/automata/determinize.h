// Subset construction: NFA → DFA.
//
// Paper fig. 9 labels its states "NFA:0", "NFA:1,3", ...: each TESLA state is
// a set of NFA states. libtesla simulates the NFA state-set directly (see
// runtime/), while this explicit DFA is used for inspection, DOT rendering
// and the DFA-stepping ablation benchmark.
#ifndef TESLA_AUTOMATA_DETERMINIZE_H_
#define TESLA_AUTOMATA_DETERMINIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/automaton.h"

namespace tesla::automata {

struct Dfa {
  struct State {
    StateSet nfa_states = 0;
    // transitions[symbol] = successor DFA state, or kNoTarget.
    std::vector<uint32_t> transitions;
    bool contains_accept = false;
  };

  static constexpr uint32_t kNoTarget = UINT32_MAX;

  std::vector<State> states;  // state 0 is the initial state
  uint32_t symbol_count = 0;

  uint32_t Step(uint32_t state, uint16_t symbol) const {
    return states[state].transitions[symbol];
  }

  // Renders a state as the paper does: "NFA:1,3".
  std::string StateLabel(uint32_t state) const;
};

Dfa Determinize(const Automaton& automaton);

}  // namespace tesla::automata

#endif  // TESLA_AUTOMATA_DETERMINIZE_H_
