// Automaton manifests: the cross-translation-unit interchange format.
//
// Paper §4.1: "Parsed assertions are converted into an automaton
// representation, stored on disk in a file with a .tesla extension". Any
// file's assertions can name events defined in any other file, so per-TU
// manifests are merged into one program-wide manifest that drives
// instrumentation. The paper serialises with protocol buffers; we use a
// line-oriented text format with the same role.
#ifndef TESLA_AUTOMATA_MANIFEST_H_
#define TESLA_AUTOMATA_MANIFEST_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "automata/automaton.h"
#include "support/result.h"

namespace tesla::automata {

// What the instrumenter must hook, aggregated over all automata.
struct InstrumentationRequirements {
  // Function entry / exit hooks (callee-side unless only caller-side was
  // requested via the caller() modifier).
  std::set<Symbol> call_hooks;
  std::set<Symbol> return_hooks;
  // Functions whose events must be hooked at call sites (caller-side).
  std::set<Symbol> caller_side;
  // Structure fields whose stores must be hooked.
  std::set<Symbol> field_hooks;
  // Assertion names with a site event (the __tesla_inline_assertion markers
  // the instrumenter must rewrite).
  std::set<std::string> site_hooks;
  // Functions referenced by incallstack() predicates (the interpreter / native
  // runtime must maintain call-stack visibility for them).
  std::set<Symbol> stack_queries;
};

class Manifest {
 public:
  std::vector<Automaton> automata;

  void Add(Automaton automaton) { automata.push_back(std::move(automaton)); }
  void Merge(Manifest other);

  // Returns the index of the named automaton or -1.
  int Find(const std::string& name) const;

  InstrumentationRequirements ComputeRequirements() const;

  std::string Serialize() const;
  static Result<Manifest> Deserialize(std::string_view text);
};

}  // namespace tesla::automata

#endif  // TESLA_AUTOMATA_MANIFEST_H_
