#include "automata/automaton.h"

#include <algorithm>
#include <sstream>

namespace tesla::automata {

std::string ArgMatchToString(const ArgMatch& match) {
  switch (match.kind) {
    case ArgMatchKind::kAny:
      return "*";
    case ArgMatchKind::kLiteral:
      return std::to_string(match.literal);
    case ArgMatchKind::kVariable:
      return "$" + std::to_string(match.var);
    case ArgMatchKind::kIndirect:
      return "&$" + std::to_string(match.var);
    case ArgMatchKind::kFlags: {
      std::ostringstream out;
      out << "flags(0x" << std::hex << match.mask << ")";
      return out.str();
    }
    case ArgMatchKind::kBitmask: {
      std::ostringstream out;
      out << "bitmask(0x" << std::hex << match.mask << ")";
      return out.str();
    }
  }
  return "?";
}

std::string EventPattern::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case PatternKind::kAssertionSite:
      return "«site»";
    case PatternKind::kInCallStack:
      return "incallstack(" + SymbolName(function) + ")";
    case PatternKind::kFunctionCall:
    case PatternKind::kFunctionReturn: {
      out << (kind == PatternKind::kFunctionCall ? "call " : "return ");
      out << SymbolName(function) << "(";
      if (!args_specified) {
        out << "...";
      } else {
        for (size_t i = 0; i < args.size(); i++) {
          if (i > 0) out << ", ";
          out << ArgMatchToString(args[i]);
        }
      }
      out << ")";
      if (match_return) {
        out << " == " << ArgMatchToString(return_match);
      }
      return out.str();
    }
    case PatternKind::kFieldAssign: {
      out << "$" << struct_var << "." << SymbolName(field);
      switch (assign_op) {
        case ast::AssignOp::kAssign:
          out << " = " << ArgMatchToString(assign_value);
          break;
        case ast::AssignOp::kPlusEqual:
          out << " += " << ArgMatchToString(assign_value);
          break;
        case ast::AssignOp::kMinusEqual:
          out << " -= " << ArgMatchToString(assign_value);
          break;
        case ast::AssignOp::kIncrement:
          out << "++";
          break;
        case ast::AssignOp::kDecrement:
          out << "--";
          break;
      }
      return out.str();
    }
  }
  return "?";
}

uint16_t Automaton::AddPattern(const EventPattern& pattern) {
  for (size_t i = 0; i < alphabet.size(); i++) {
    if (alphabet[i] == pattern) {
      return static_cast<uint16_t>(i);
    }
  }
  alphabet.push_back(pattern);
  return static_cast<uint16_t>(alphabet.size() - 1);
}

void Automaton::AddTransition(uint32_t from, uint16_t symbol, uint32_t to) {
  Transition transition{from, symbol, to};
  if (std::find(transitions.begin(), transitions.end(), transition) == transitions.end()) {
    transitions.push_back(transition);
  }
}

void Automaton::Finalize() {
  edges.assign(state_count, {});
  symbol_sources.assign(alphabet.size(), 0);
  for (const Transition& transition : transitions) {
    edges[transition.from].push_back(transition);
    symbol_sources[transition.symbol] |= StateBit(transition.from);
  }
}

StateSet Automaton::Step(StateSet states, uint16_t symbol) const {
  if (symbol >= symbol_sources.size() || (symbol_sources[symbol] & states) == 0) {
    return 0;
  }
  StateSet next = 0;
  StateSet sources = symbol_sources[symbol] & states;
  while (sources != 0) {
    uint32_t state = static_cast<uint32_t>(__builtin_ctzll(sources));
    sources &= sources - 1;
    for (const Transition& transition : edges[state]) {
      if (transition.symbol == symbol) {
        next |= StateBit(transition.to);
      }
    }
  }
  return next;
}

StateSet Automaton::InitialInstanceStates() const {
  StateSet states = 0;
  for (const Transition& transition : transitions) {
    if (transition.from == initial_state && transition.symbol == init_symbol) {
      states |= StateBit(transition.to);
    }
  }
  return states;
}

std::vector<uint16_t> Automaton::VariablesBoundBy(uint16_t symbol) const {
  std::vector<uint16_t> bound;
  const EventPattern& pattern = alphabet.at(symbol);
  auto add = [&](const ArgMatch& match) {
    if (match.kind == ArgMatchKind::kVariable || match.kind == ArgMatchKind::kIndirect) {
      if (std::find(bound.begin(), bound.end(), match.var) == bound.end()) {
        bound.push_back(match.var);
      }
    }
  };
  for (const ArgMatch& match : pattern.args) {
    add(match);
  }
  if (pattern.match_return) {
    add(pattern.return_match);
  }
  if (pattern.kind == PatternKind::kFieldAssign) {
    ArgMatch self{ArgMatchKind::kVariable, 0, pattern.struct_var, 0};
    add(self);
    add(pattern.assign_value);
  }
  return bound;
}

uint32_t Automaton::CloneBoundMask() const {
  uint32_t mask = 0;
  for (uint16_t symbol = 0; symbol < alphabet.size(); symbol++) {
    if (symbol == init_symbol || symbol == cleanup_symbol) {
      continue;
    }
    for (uint16_t var : VariablesBoundBy(symbol)) {
      mask |= 1u << var;
    }
  }
  return mask;
}

std::string Automaton::ToString() const {
  std::ostringstream out;
  out << "automaton " << name << " (" << state_count << " states, " << alphabet.size()
      << " symbols, " << variables.size() << " variables)\n";
  for (size_t i = 0; i < alphabet.size(); i++) {
    out << "  symbol " << i << ": " << alphabet[i].ToString();
    if (i == init_symbol) out << "  «init»";
    if (i == cleanup_symbol) out << "  «cleanup»";
    if (has_site && i == site_symbol) out << "  «assertion»";
    out << "\n";
  }
  for (const Transition& transition : transitions) {
    out << "  " << transition.from << " --" << transition.symbol << "--> " << transition.to
        << "\n";
  }
  return out.str();
}

}  // namespace tesla::automata
