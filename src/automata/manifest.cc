#include "automata/manifest.h"

#include <cstdlib>
#include <sstream>

#include "support/strings.h"

namespace tesla::automata {
namespace {

// Percent-escapes newlines and '%' so any string fits on one manifest line.
std::string EscapeLine(const std::string& text) {
  std::string escaped;
  for (char c : text) {
    if (c == '%') {
      escaped += "%25";
    } else if (c == '\n') {
      escaped += "%0A";
    } else {
      escaped.push_back(c);
    }
  }
  return escaped;
}

std::string UnescapeLine(std::string_view text) {
  std::string raw;
  for (size_t i = 0; i < text.size(); i++) {
    if (text[i] == '%' && i + 2 < text.size()) {
      if (text.substr(i, 3) == "%25") {
        raw.push_back('%');
        i += 2;
        continue;
      }
      if (text.substr(i, 3) == "%0A") {
        raw.push_back('\n');
        i += 2;
        continue;
      }
    }
    raw.push_back(text[i]);
  }
  return raw;
}

void WriteArgMatch(std::ostringstream& out, const ArgMatch& match) {
  switch (match.kind) {
    case ArgMatchKind::kAny:
      out << "any";
      break;
    case ArgMatchKind::kLiteral:
      out << "lit:" << match.literal;
      break;
    case ArgMatchKind::kVariable:
      out << "var:" << match.var;
      break;
    case ArgMatchKind::kIndirect:
      out << "ind:" << match.var;
      break;
    case ArgMatchKind::kFlags:
      out << "flags:" << match.mask;
      break;
    case ArgMatchKind::kBitmask:
      out << "mask:" << match.mask;
      break;
  }
}

bool ReadArgMatch(std::string_view token, ArgMatch* match) {
  if (token == "any") {
    match->kind = ArgMatchKind::kAny;
    return true;
  }
  size_t colon = token.find(':');
  if (colon == std::string_view::npos) {
    return false;
  }
  std::string_view head = token.substr(0, colon);
  std::string_view tail = token.substr(colon + 1);
  int64_t value = 0;
  if (!ParseInt64(tail, &value)) {
    return false;
  }
  if (head == "lit") {
    match->kind = ArgMatchKind::kLiteral;
    match->literal = value;
  } else if (head == "var") {
    match->kind = ArgMatchKind::kVariable;
    match->var = static_cast<uint16_t>(value);
  } else if (head == "ind") {
    match->kind = ArgMatchKind::kIndirect;
    match->var = static_cast<uint16_t>(value);
  } else if (head == "flags") {
    match->kind = ArgMatchKind::kFlags;
    match->mask = static_cast<uint64_t>(value);
  } else if (head == "mask") {
    match->kind = ArgMatchKind::kBitmask;
    match->mask = static_cast<uint64_t>(value);
  } else {
    return false;
  }
  return true;
}

const char* PatternKindToken(PatternKind kind) {
  switch (kind) {
    case PatternKind::kFunctionCall:
      return "call";
    case PatternKind::kFunctionReturn:
      return "return";
    case PatternKind::kFieldAssign:
      return "field";
    case PatternKind::kAssertionSite:
      return "site";
    case PatternKind::kInCallStack:
      return "incallstack";
  }
  return "?";
}

}  // namespace

void Manifest::Merge(Manifest other) {
  for (Automaton& automaton : other.automata) {
    if (Find(automaton.name) < 0) {
      automata.push_back(std::move(automaton));
    }
  }
}

int Manifest::Find(const std::string& name) const {
  for (size_t i = 0; i < automata.size(); i++) {
    if (automata[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

InstrumentationRequirements Manifest::ComputeRequirements() const {
  InstrumentationRequirements requirements;
  for (const Automaton& automaton : automata) {
    for (const EventPattern& pattern : automaton.alphabet) {
      switch (pattern.kind) {
        case PatternKind::kFunctionCall:
          requirements.call_hooks.insert(pattern.function);
          if (pattern.side == CallSide::kCaller) {
            requirements.caller_side.insert(pattern.function);
          }
          break;
        case PatternKind::kFunctionReturn:
          requirements.return_hooks.insert(pattern.function);
          if (pattern.side == CallSide::kCaller) {
            requirements.caller_side.insert(pattern.function);
          }
          break;
        case PatternKind::kFieldAssign:
          requirements.field_hooks.insert(pattern.field);
          break;
        case PatternKind::kAssertionSite:
          requirements.site_hooks.insert(automaton.name);
          break;
        case PatternKind::kInCallStack:
          requirements.stack_queries.insert(pattern.function);
          requirements.call_hooks.insert(pattern.function);
          requirements.return_hooks.insert(pattern.function);
          break;
      }
    }
  }
  return requirements;
}

std::string Manifest::Serialize() const {
  std::ostringstream out;
  out << "tesla-manifest 1\n";
  for (const Automaton& automaton : automata) {
    out << "automaton " << EscapeLine(automaton.name) << "\n";
    out << "  context " << (automaton.context == ast::Context::kGlobal ? "global" : "perthread")
        << "\n";
    out << "  strict " << (automaton.strict ? 1 : 0) << "\n";
    out << "  states " << automaton.state_count << " accept " << automaton.accept_state << "\n";
    out << "  bounds " << automaton.init_symbol << " " << automaton.cleanup_symbol << " "
        << (automaton.has_site ? static_cast<int>(automaton.site_symbol) : -1) << "\n";
    out << "  source " << EscapeLine(automaton.source_text) << "\n";
    for (const std::string& variable : automaton.variables) {
      out << "  var " << EscapeLine(variable) << "\n";
    }
    for (const EventPattern& pattern : automaton.alphabet) {
      out << "  sym " << PatternKindToken(pattern.kind);
      out << " fn=" << EscapeLine(SymbolName(pattern.function));
      out << " side=" << static_cast<int>(pattern.side);
      out << " argspec=" << (pattern.args_specified ? 1 : 0);
      out << " args=";
      for (size_t i = 0; i < pattern.args.size(); i++) {
        if (i > 0) out << ",";
        WriteArgMatch(out, pattern.args[i]);
      }
      if (pattern.match_return) {
        out << " ret=";
        WriteArgMatch(out, pattern.return_match);
      }
      if (pattern.kind == PatternKind::kFieldAssign) {
        out << " svar=" << pattern.struct_var;
        out << " field=" << EscapeLine(SymbolName(pattern.field));
        out << " op=" << static_cast<int>(pattern.assign_op);
        out << " val=";
        WriteArgMatch(out, pattern.assign_value);
      }
      out << "\n";
    }
    for (const Transition& transition : automaton.transitions) {
      out << "  trans " << transition.from << " " << transition.symbol << " " << transition.to
          << "\n";
    }
    for (const TimedSpec& spec : automaton.timed) {
      out << "  timed " << (spec.kind == TimedSpec::kRate ? "rate" : "within") << " "
          << spec.bound_ns << " " << spec.limit << " " << spec.armed_mask << " sym=";
      for (size_t i = 0; i < spec.symbols.size(); i++) {
        if (i > 0) out << ",";
        out << spec.symbols[i];
      }
      out << "\n";
    }
    out << "end\n";
  }
  return out.str();
}

Result<Manifest> Manifest::Deserialize(std::string_view text) {
  Manifest manifest;
  Automaton current;
  bool in_automaton = false;
  int line_number = 0;

  auto fail = [&](const std::string& message) {
    return Error{message, line_number, 1};
  };

  for (std::string_view raw_line : SplitString(text, '\n')) {
    line_number++;
    std::string_view line = TrimWhitespace(raw_line);
    if (line.empty() || StartsWith(line, "tesla-manifest")) {
      continue;
    }
    auto words = SplitString(line, ' ');
    const std::string_view keyword = words[0];

    if (keyword == "automaton") {
      if (in_automaton) {
        return fail("nested automaton");
      }
      in_automaton = true;
      current = Automaton();
      current.name = UnescapeLine(line.substr(std::string("automaton ").size()));
      continue;
    }
    if (!in_automaton) {
      return fail("directive outside automaton block");
    }
    if (keyword == "end") {
      current.Finalize();
      manifest.automata.push_back(std::move(current));
      in_automaton = false;
      continue;
    }
    if (keyword == "context") {
      current.context = words.size() > 1 && words[1] == "global" ? ast::Context::kGlobal
                                                                 : ast::Context::kPerThread;
      continue;
    }
    if (keyword == "strict") {
      current.strict = words.size() > 1 && words[1] == "1";
      continue;
    }
    if (keyword == "states") {
      int64_t states = 0;
      int64_t accept = 0;
      if (words.size() < 4 || !ParseInt64(words[1], &states) || !ParseInt64(words[3], &accept)) {
        return fail("malformed states line");
      }
      current.state_count = static_cast<uint32_t>(states);
      current.accept_state = static_cast<uint32_t>(accept);
      continue;
    }
    if (keyword == "bounds") {
      int64_t init = 0;
      int64_t cleanup = 0;
      int64_t site = -1;
      if (words.size() < 4 || !ParseInt64(words[1], &init) || !ParseInt64(words[2], &cleanup) ||
          !ParseInt64(words[3], &site)) {
        return fail("malformed bounds line");
      }
      current.init_symbol = static_cast<uint16_t>(init);
      current.cleanup_symbol = static_cast<uint16_t>(cleanup);
      current.has_site = site >= 0;
      if (current.has_site) {
        current.site_symbol = static_cast<uint16_t>(site);
      }
      continue;
    }
    if (keyword == "source") {
      current.source_text = UnescapeLine(line.substr(std::string("source ").size()));
      continue;
    }
    if (keyword == "var") {
      current.variables.push_back(UnescapeLine(line.substr(std::string("var ").size())));
      continue;
    }
    if (keyword == "sym") {
      if (words.size() < 2) {
        return fail("malformed sym line");
      }
      EventPattern pattern;
      std::string_view kind = words[1];
      if (kind == "call") {
        pattern.kind = PatternKind::kFunctionCall;
      } else if (kind == "return") {
        pattern.kind = PatternKind::kFunctionReturn;
      } else if (kind == "field") {
        pattern.kind = PatternKind::kFieldAssign;
      } else if (kind == "site") {
        pattern.kind = PatternKind::kAssertionSite;
      } else if (kind == "incallstack") {
        pattern.kind = PatternKind::kInCallStack;
      } else {
        return fail("unknown pattern kind");
      }
      for (size_t i = 2; i < words.size(); i++) {
        std::string_view word = words[i];
        size_t equals = word.find('=');
        if (equals == std::string_view::npos) {
          return fail("malformed sym attribute");
        }
        std::string_view key = word.substr(0, equals);
        std::string_view value = word.substr(equals + 1);
        int64_t number = 0;
        if (key == "fn") {
          pattern.function = InternString(UnescapeLine(value));
        } else if (key == "side") {
          if (!ParseInt64(value, &number)) return fail("bad side");
          pattern.side = static_cast<CallSide>(number);
        } else if (key == "argspec") {
          pattern.args_specified = value == "1";
        } else if (key == "args") {
          if (!value.empty()) {
            for (std::string_view token : SplitString(value, ',')) {
              ArgMatch match;
              if (!ReadArgMatch(token, &match)) return fail("bad arg match");
              pattern.args.push_back(match);
            }
          }
        } else if (key == "ret") {
          pattern.match_return = true;
          if (!ReadArgMatch(value, &pattern.return_match)) return fail("bad return match");
        } else if (key == "svar") {
          if (!ParseInt64(value, &number)) return fail("bad svar");
          pattern.struct_var = static_cast<uint16_t>(number);
        } else if (key == "field") {
          pattern.field = InternString(UnescapeLine(value));
        } else if (key == "op") {
          if (!ParseInt64(value, &number)) return fail("bad op");
          pattern.assign_op = static_cast<ast::AssignOp>(number);
        } else if (key == "val") {
          if (!ReadArgMatch(value, &pattern.assign_value)) return fail("bad assign value");
        } else {
          return fail("unknown sym attribute");
        }
      }
      current.alphabet.push_back(std::move(pattern));
      continue;
    }
    if (keyword == "timed") {
      // Optional: only timed automata emit these, so pre-timed manifests
      // (and v≤5 capture embeds) parse exactly as before.
      if (words.size() < 5) {
        return fail("malformed timed line");
      }
      TimedSpec spec;
      if (words[1] == "within") {
        spec.kind = TimedSpec::kWithin;
      } else if (words[1] == "rate") {
        spec.kind = TimedSpec::kRate;
      } else {
        return fail("unknown timed kind");
      }
      int64_t bound = 0;
      int64_t limit = 0;
      if (!ParseInt64(words[2], &bound) || !ParseInt64(words[3], &limit) || bound <= 0 ||
          limit < 0) {
        return fail("malformed timed line");
      }
      spec.bound_ns = static_cast<uint64_t>(bound);
      spec.limit = static_cast<uint64_t>(limit);
      // The armed mask is a full 64-bit state set; parse it unsigned.
      spec.armed_mask = std::strtoull(std::string(words[4]).c_str(), nullptr, 10);
      for (size_t i = 5; i < words.size(); i++) {
        std::string_view word = words[i];
        size_t equals = word.find('=');
        if (equals == std::string_view::npos || word.substr(0, equals) != "sym") {
          return fail("malformed timed attribute");
        }
        std::string_view value = word.substr(equals + 1);
        if (!value.empty()) {
          for (std::string_view token : SplitString(value, ',')) {
            int64_t symbol = 0;
            if (!ParseInt64(token, &symbol)) return fail("bad timed symbol");
            spec.symbols.push_back(static_cast<uint16_t>(symbol));
          }
        }
      }
      if (current.timed.size() >= kMaxTimedSpecs) {
        return fail("too many timed clauses");
      }
      current.timed.push_back(std::move(spec));
      continue;
    }
    if (keyword == "trans") {
      int64_t from = 0;
      int64_t symbol = 0;
      int64_t to = 0;
      if (words.size() < 4 || !ParseInt64(words[1], &from) || !ParseInt64(words[2], &symbol) ||
          !ParseInt64(words[3], &to)) {
        return fail("malformed trans line");
      }
      current.transitions.push_back(Transition{static_cast<uint32_t>(from),
                                               static_cast<uint16_t>(symbol),
                                               static_cast<uint32_t>(to)});
      continue;
    }
    return fail("unknown directive '" + std::string(keyword) + "'");
  }
  if (in_automaton) {
    return fail("unterminated automaton block");
  }
  return manifest;
}

}  // namespace tesla::automata
