// Lowered event patterns: the alphabet of a TESLA automaton.
//
// Each EventPattern describes one class of observable program event
// (function call, function return with optional return-value match, structure
// field assignment, assertion-site reach, or the incallstack() site-time
// predicate). Patterns are produced by lowering the parser AST; argument
// positions either match statically (literals, flag masks, wildcards) or bind
// automaton-instance variables at run time (paper §4.4.1's clone mechanism).
#ifndef TESLA_AUTOMATA_PATTERN_H_
#define TESLA_AUTOMATA_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "parser/ast.h"
#include "support/intern.h"

namespace tesla::automata {

enum class PatternKind : uint8_t {
  kFunctionCall,
  kFunctionReturn,
  kFieldAssign,
  kAssertionSite,
  kInCallStack,  // evaluated against the thread's call stack at the site
};

// Which side the instrumenter should hook for a function event (§4.2):
// callee instrumentation rewrites the target function, caller instrumentation
// rewrites call sites. kEither lets the instrumenter pick (callee when the
// function body is available, caller otherwise).
enum class CallSide : uint8_t {
  kEither,
  kCallee,
  kCaller,
};

enum class ArgMatchKind : uint8_t {
  kAny,       // matches every value
  kLiteral,   // value == literal
  kVariable,  // binds / compares automaton variable `var`
  kIndirect,  // binds / compares variable `var` through one pointer dereference
  kFlags,     // minimal bitfield: (value & mask) == mask
  kBitmask,   // maximal bitfield: (value & ~mask) == 0
};

struct ArgMatch {
  ArgMatchKind kind = ArgMatchKind::kAny;
  int64_t literal = 0;
  uint16_t var = 0;
  uint64_t mask = 0;

  bool operator==(const ArgMatch&) const = default;
};

struct EventPattern {
  PatternKind kind = PatternKind::kAssertionSite;

  // kFunctionCall / kFunctionReturn / kInCallStack
  Symbol function = kNoSymbol;
  bool args_specified = false;
  std::vector<ArgMatch> args;
  bool match_return = false;   // kFunctionReturn only
  ArgMatch return_match;
  CallSide side = CallSide::kEither;

  // kFieldAssign: the structure identity is an automaton variable so that
  // instances are keyed by object (paper §3.4.1's s.foo = NEXT_STATE).
  uint16_t struct_var = 0;
  Symbol field = kNoSymbol;
  ast::AssignOp assign_op = ast::AssignOp::kAssign;
  ArgMatch assign_value;

  bool operator==(const EventPattern&) const = default;

  // Human-readable rendering used in DOT output and violation reports.
  std::string ToString() const;
};

std::string ArgMatchToString(const ArgMatch& match);

}  // namespace tesla::automata

#endif  // TESLA_AUTOMATA_PATTERN_H_
