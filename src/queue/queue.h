// tesla::queue — the bounded asynchronous ingestion front-end.
//
// The paper's runtime sits inline on every instrumented call (§4.3): the
// thread that executed the call also pays pattern matching, instance
// updates and, for global automata, lock acquisition. An EventQueue moves
// all of that off the instrumented hot path: producer threads enqueue
// trivially-copyable runtime::Events into per-producer SPSC rings
// (src/queue/ring.h) and a single consumer thread drains rounds of all
// rings, feeding each run of same-context records through
// Runtime::OnEvents() in batches. Instrumented callers pay only the
// enqueue — tens of nanoseconds — regardless of how expensive dispatch is.
//
// Interposition. Start() installs a Runtime ingest hook, so the existing
// entry points (scope guards, simulators, generated translators) route
// through the queue with no caller changes; a hook return of false (queue
// not running) falls back to inline dispatch. The hook runs before the
// runtime touches the context, so while the queue is running the consumer
// thread is the *only* mutator of every ThreadContext — producers just copy
// the event and the context pointer into their ring.
//
// Ordering. Each producer's ring is FIFO and the consumer drains rings in
// registration order, so events from one producer are dispatched in exactly
// the order they were enqueued: per-producer violation order is
// deterministic, matching what an inline run on that thread would report.
// No order is defined *between* producers — the same as inline dispatch,
// where cross-thread interleaving was already scheduler-chosen.
//
// Backpressure. A full ring either blocks the producer until the consumer
// frees slots (QueueOptions::OnFull::kBlock — lossless, bounded memory) or
// drops the event (kDrop — lossless callers, bounded latency), counted
// per-producer and folded into RuntimeStats::queue_drops so the metrics
// exposition surfaces it.
//
// Shutdown. Stop() uninstalls the hook, then lets the consumer drain every
// ring to empty before joining: all accepted events are dispatched
// (flush-on-stop), after which Enqueue() rejects. Producers must quiesce
// (stop emitting) before Stop() for the flush guarantee to be total, and
// every ThreadContext enqueued through must outlive Stop().
#ifndef TESLA_QUEUE_QUEUE_H_
#define TESLA_QUEUE_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "queue/ring.h"
#include "runtime/runtime.h"
#include "support/spinlock.h"

namespace tesla::queue {

struct QueueOptions {
  // What a producer does when its ring is full: block until the consumer
  // catches up, or drop the event (counted per producer and in
  // RuntimeStats::queue_drops).
  enum class OnFull { kBlock, kDrop };
  OnFull on_full = OnFull::kBlock;

  // Per-producer ring capacity in events: at least this many worst-case
  // records always fit (records are variable-length, so small events pack
  // denser — see ring.h).
  size_t ring_capacity = 4096;

  // Upper bound on events handed to one Runtime::OnEvents() call. Bounds
  // shard-lock hold times when global automata are registered.
  size_t batch_events = 256;

  // Interpose on Runtime::OnEvent via the ingest hook (Start/Stop install
  // and remove it). Off for callers that feed Enqueue() directly.
  bool install_hook = true;

  // Maps the RuntimeOptions queue knobs (options.h) onto a QueueOptions.
  static QueueOptions FromRuntime(const runtime::RuntimeOptions& options);
};

// Per-producer accounting, all monotonic.
struct ProducerStats {
  uint64_t enqueued = 0;  // accepted into the ring
  uint64_t dropped = 0;   // OnFull::kDrop with a full ring
  uint64_t rejected = 0;  // Enqueue() while the queue was not running
};

class EventQueue {
 public:
  explicit EventQueue(runtime::Runtime& rt, QueueOptions options = {});
  ~EventQueue();  // Stops if still running.

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Spawns the consumer thread and (install_hook) interposes on OnEvent.
  // Idempotent while running; a stopped queue may be restarted.
  void Start();

  // Uninstalls the hook, flushes every ring (all accepted events are
  // dispatched) and joins the consumer. Idempotent.
  void Stop();

  // Blocks until every event enqueued before the call has been dispatched,
  // without stopping the queue — a checkpoint barrier for callers that want
  // to read violation counts or stats mid-run. Only meaningful while the
  // caller's producers are quiescent (otherwise the target moves). Returns
  // immediately when the queue is not running. Dispatches completed before
  // Flush() returns happen-before the return (release/acquire on the
  // dispatched counter).
  void Flush() const;

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Producer-side entry: copies `event` into the calling thread's ring.
  // True when the queue took ownership (including a policy drop); false
  // when the queue is not running — the caller should dispatch inline.
  bool Enqueue(runtime::ThreadContext& ctx, const runtime::Event& event);

  // Accounting snapshots (safe to call concurrently with producers).
  ProducerStats totals() const;
  std::vector<ProducerStats> producer_stats() const;
  size_t producer_count() const;

 private:
  struct Producer {
    Producer(size_t capacity, std::thread::id id) : ring(capacity), owner(id) {}
    QueueRing ring;
    std::thread::id owner;
    // Written by the owning producer thread, read by stats snapshots.
    std::atomic<uint64_t> enqueued{0};
    std::atomic<uint64_t> dropped{0};
    std::atomic<uint64_t> rejected{0};
  };

  // The calling thread's producer, registering it on first use. Cached in a
  // thread_local keyed by the queue's process-unique id, so the cache can
  // never alias a different (or destroyed) EventQueue.
  Producer& LocalProducer();
  Producer& RegisterProducer();

  static bool IngestThunk(void* state, runtime::ThreadContext& ctx,
                          const runtime::Event& event);

  void ConsumerMain();
  // Dispatches one popped batch, splitting it into runs of records sharing
  // a serialisation context.
  void DispatchBatch(const std::vector<QueueRecord>& batch,
                     std::vector<runtime::Event>& scratch);

  runtime::Runtime& rt_;
  QueueOptions options_;
  const uint64_t id_;  // process-unique, for the thread_local producer cache

  std::atomic<bool> running_{false};  // gates Enqueue
  std::atomic<bool> stop_{false};     // tells the consumer to flush and exit
  // Events the consumer has fed through OnEvents, cumulative across
  // restarts (as the producer counters are). Drives Flush().
  std::atomic<uint64_t> dispatched_{0};
  std::thread consumer_;

  mutable Spinlock producers_lock_;  // guards the vector, not the rings
  std::vector<std::unique_ptr<Producer>> producers_;
};

}  // namespace tesla::queue

#endif  // TESLA_QUEUE_QUEUE_H_
