// tesla::queue — the bounded asynchronous ingestion front-end.
//
// The paper's runtime sits inline on every instrumented call (§4.3): the
// thread that executed the call also pays pattern matching, instance
// updates and, for global automata, lock acquisition. An EventQueue moves
// all of that off the instrumented hot path: producer threads enqueue
// trivially-copyable runtime::Events into per-producer SPSC rings
// (src/queue/ring.h) and QueueOptions::consumers drain threads feed runs of
// same-context records through Runtime::OnEventsScoped() in batches.
// Instrumented callers pay only the enqueue — tens of nanoseconds —
// regardless of how expensive dispatch is.
//
// Multi-consumer dispatch. Each producer has a *home* consumer
// (registration index modulo the consumer count); each consumer *owns* the
// unpinned global shards congruent to its index (Runtime::AssignShardOwners),
// so owned shards have exactly one writer and skip their spinlock on the
// drain hot path. A record is dispatched in two stages mirroring the
// runtime's DispatchScope:
//
//   * the claiming consumer runs the context stage (per-thread classes,
//     pinned global classes, stats/trace) plus the unpinned shards it owns,
//     via OnEventsScoped{context = true, its shard mask};
//   * for every touched unpinned shard it does NOT own
//     (Runtime::ShardStageMask), it forwards the record — once per
//     destination consumer — through a per-(producer, consumer) SPSC
//     forward ring; the destination dispatches it with
//     OnEventsScoped{context = false, its shard mask}.
//
// Batch processing of one producer's ring is serialised by a per-producer
// claim (an atomic consumer-id CAS), which is what makes the forward rings
// single-producer: only the claim holder pushes. The claim also enables
// bounded *work stealing*: an idle consumer may claim another consumer's
// producer once its backlog exceeds QueueOptions::steal_backlog_words and
// drain one batch, playing the home-consumer role for it (context stage
// with its own shard mask, forwards for the rest) — per-shard single-writer
// is never violated because shard work always runs on the shard's owner.
//
// Interposition. Start() installs a Runtime ingest hook, so the existing
// entry points (scope guards, simulators, generated translators) route
// through the queue with no caller changes; a hook return of false (queue
// not running) falls back to inline dispatch. Inline dispatches that touch
// a consumer-owned shard run the runtime's handoff protocol
// (RuntimeStats::shard_handoffs). Register all automata before Start():
// consumer shard masks are computed once from the compiled plan.
//
// Ordering. Each producer's ring is FIFO and claims serialise its batches,
// so the context stage of one producer's events runs in enqueue order; a
// forward ring is FIFO per (producer, consumer) pair, so each shard also
// sees one producer's events in enqueue order. No order is defined
// *between* producers — the same as inline dispatch, where cross-thread
// interleaving was already scheduler-chosen.
//
// Backpressure. A full ring either blocks the producer until a consumer
// frees slots (QueueOptions::OnFull::kBlock — lossless, bounded memory;
// wait iterations are counted as ProducerStats::blocked_spins) or drops the
// event (kDrop — lossless callers, bounded latency), counted per-producer
// and folded into RuntimeStats::queue_drops. A consumer blocked on a full
// *forward* ring drains its own forward-ins while waiting, so two mutually
// forwarding consumers cannot deadlock.
//
// Shutdown. Stop() uninstalls the hook, then runs a two-phase flush: every
// consumer drains its producers' rings to empty (work already claimed by a
// thief included), and once all consumers are past that barrier each drains
// its forward-ins to empty before exiting — all accepted events complete
// both stages (flush-on-stop), after which Enqueue() rejects. Producers
// must quiesce (stop emitting) before Stop() for the flush guarantee to be
// total, and every ThreadContext enqueued through must outlive Stop().
#ifndef TESLA_QUEUE_QUEUE_H_
#define TESLA_QUEUE_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "queue/ring.h"
#include "runtime/runtime.h"
#include "support/spinlock.h"

namespace tesla::queue {

struct QueueOptions {
  // What a producer does when its ring is full: block until the consumer
  // catches up, or drop the event (counted per producer and in
  // RuntimeStats::queue_drops).
  enum class OnFull { kBlock, kDrop };
  OnFull on_full = OnFull::kBlock;

  // Per-producer ring capacity in events: at least this many worst-case
  // records always fit (records are variable-length, so small events pack
  // denser — see ring.h). Forward rings use the same capacity.
  size_t ring_capacity = 4096;

  // Upper bound on events handed to one Runtime::OnEventsScoped() call.
  // Bounds shard-lock hold times when global automata are registered, and
  // is the unit of work stealing (a thief takes at most one batch).
  size_t batch_events = 256;

  // Drain threads. Each consumer owns the unpinned global shards congruent
  // to its index modulo this count and is home to the producers congruent
  // to theirs. Clamped to [1, 64]; 1 reproduces the single-consumer queue
  // (no forward rings are allocated, no records are ever forwarded).
  size_t consumers = 1;

  // An idle consumer steals a batch from another consumer's producer only
  // when that ring's backlog is at least this many words (~5 words per
  // typical event — see ring.h). 0 disables stealing.
  size_t steal_backlog_words = 512;

  // Interpose on Runtime::OnEvent via the ingest hook (Start/Stop install
  // and remove it). Off for callers that feed Enqueue() directly.
  bool install_hook = true;

  // Maps the RuntimeOptions queue knobs (options.h) onto a QueueOptions.
  static QueueOptions FromRuntime(const runtime::RuntimeOptions& options);
};

// Per-producer accounting, all monotonic.
struct ProducerStats {
  uint64_t enqueued = 0;       // accepted into the ring
  uint64_t dropped = 0;        // OnFull::kDrop with a full ring
  uint64_t rejected = 0;       // Enqueue() while the queue was not running
  uint64_t blocked_spins = 0;  // OnFull::kBlock wait iterations
};

// Per-consumer accounting, all monotonic (cumulative across restarts).
struct ConsumerStats {
  uint64_t batches = 0;       // OnEventsScoped batches dispatched (context stage)
  uint64_t events = 0;        // records dispatched in the context stage
  uint64_t forwards_in = 0;   // forwarded records dispatched (shard stage)
  uint64_t forwards_out = 0;  // records forwarded to other consumers
  uint64_t steals = 0;        // batches stolen from other consumers' producers
  uint64_t busy_ns = 0;       // thread-CPU time spent dispatching
};

class EventQueue {
 public:
  explicit EventQueue(runtime::Runtime& rt, QueueOptions options = {});
  ~EventQueue();  // Stops if still running.

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Spawns the consumer threads, assigns them the runtime's unpinned shards
  // and (install_hook) interposes on OnEvent. Idempotent while running; a
  // stopped queue may be restarted.
  void Start();

  // Uninstalls the hook, flushes every ring — both dispatch stages of all
  // accepted events complete — and joins the consumers. Idempotent.
  void Stop();

  // Blocks until every event enqueued before the call has completed both
  // dispatch stages, without stopping the queue — a checkpoint barrier for
  // callers that want to read violation counts or stats mid-run. Two
  // phases: context-stage dispatch catches up with enqueues, then
  // forwarded shard-stage work catches up with the forwards those
  // dispatches produced. Only meaningful while the caller's producers are
  // quiescent (otherwise the target moves). Returns immediately when the
  // queue is not running. Dispatches completed before Flush() returns
  // happen-before the return (release/acquire on the progress counters).
  void Flush() const;

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Producer-side entry: copies `event` into the calling thread's ring.
  // True when the queue took ownership (including a policy drop); false
  // when the queue is not running — the caller should dispatch inline.
  bool Enqueue(runtime::ThreadContext& ctx, const runtime::Event& event);

  // Accounting snapshots (safe to call concurrently with producers and
  // consumers; consumer stats remain readable after Stop()).
  ProducerStats totals() const;
  std::vector<ProducerStats> producer_stats() const;
  size_t producer_count() const;
  std::vector<ConsumerStats> consumer_stats() const;
  size_t consumer_count() const { return consumer_count_; }

 private:
  // A claimant value meaning "no consumer is processing this producer".
  static constexpr uint32_t kNoConsumer = UINT32_MAX;

  struct Producer {
    Producer(size_t capacity, std::thread::id id, uint32_t index,
             size_t consumers);
    QueueRing ring;
    std::thread::id owner;
    const uint32_t index;  // registration order; home consumer = index % consumers
    // Which consumer is currently processing this producer's batches
    // (kNoConsumer: none). The CAS/store pair is the release/acquire edge
    // that serialises successive claimants' pushes into `forwards` and pops
    // from `ring`.
    std::atomic<uint32_t> claimant{kNoConsumer};
    // Written by the owning producer thread, read by stats snapshots.
    std::atomic<uint64_t> enqueued{0};
    std::atomic<uint64_t> dropped{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> blocked_spins{0};
    // Forward rings, one per consumer, allocated only when consumers > 1:
    // pushed by whichever consumer holds this producer's claim, popped by
    // the indexed consumer.
    std::vector<std::unique_ptr<QueueRing>> forwards;
  };

  struct Consumer {
    uint32_t index = 0;
    // The unpinned global shards this consumer owns (bits s of the
    // runtime's unpinned mask with s % consumers == index).
    uint64_t shard_mask = 0;
    std::thread thread;
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> events{0};
    std::atomic<uint64_t> forwards_in{0};
    std::atomic<uint64_t> forwards_out{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> busy_ns{0};
    // Scratch for DrainForwardIns, touched only by this consumer's thread
    // (kept off the stack because PushForward drains re-entrantly while the
    // caller's batch buffer is live).
    std::vector<Producer*> fwd_round;
    std::vector<QueueRecord> fwd_batch;
    std::vector<runtime::Event> fwd_scratch;
  };

  // The calling thread's producer, registering it on first use. Cached in a
  // thread_local keyed by the queue's process-unique id, so the cache can
  // never alias a different (or destroyed) EventQueue.
  Producer& LocalProducer();
  Producer& RegisterProducer();

  static bool IngestThunk(void* state, runtime::ThreadContext& ctx,
                          const runtime::Event& event);

  bool TryClaim(Producer& producer, uint32_t consumer);
  void ReleaseClaim(Producer& producer);

  void ConsumerMain(Consumer& self);
  // Dispatches one claimed batch as its home/claiming consumer: pushes the
  // shard-stage forwards, then runs the context stage per ctx run.
  void ProcessBatch(Consumer& self, Producer& producer,
                    const std::vector<QueueRecord>& batch,
                    std::vector<runtime::Event>& scratch);
  // Pushes `record` to `dest`'s forward ring on `producer` (whose claim the
  // caller holds), draining own forward-ins while the ring is full.
  void PushForward(Consumer& self, Producer& producer, uint32_t dest,
                   const QueueRecord& record);
  // Drains this consumer's forward-in rings (shard stage). Returns records
  // dispatched.
  size_t DrainForwardIns(Consumer& self);
  // Drains one producer's forward ring into this consumer (shard stage).
  size_t DrainForwardRing(Consumer& self, Producer& producer);
  // Folds producer/consumer tallies into a metrics snapshot (the augmenter
  // registered with the runtime).
  void Augment(metrics::Snapshot& snapshot) const;

  runtime::Runtime& rt_;
  QueueOptions options_;
  const uint32_t consumer_count_;  // options_.consumers clamped to [1, 64]
  const uint64_t id_;  // process-unique, for the thread_local producer cache

  std::atomic<bool> running_{false};  // gates Enqueue
  std::atomic<bool> stop_{false};     // tells the consumers to flush and exit
  // Shutdown barrier: consumers that finished draining producer rings. The
  // forward-in flush is conclusive only once all consumers are counted (no
  // further forwards can be pushed).
  std::atomic<uint32_t> producers_done_{0};
  // Progress counters, cumulative across restarts (as the producer counters
  // are). dispatched_ counts context-stage records, forward_pushed_/
  // forward_done_ the shard-stage forwards; together they drive Flush().
  std::atomic<uint64_t> dispatched_{0};
  std::atomic<uint64_t> forward_pushed_{0};
  std::atomic<uint64_t> forward_done_{0};

  // Drain threads; rebuilt by Start(), kept after Stop() so consumer_stats()
  // outlives the run.
  std::vector<std::unique_ptr<Consumer>> consumers_;

  mutable Spinlock producers_lock_;  // guards the vector, not the rings
  std::vector<std::unique_ptr<Producer>> producers_;
};

}  // namespace tesla::queue

#endif  // TESLA_QUEUE_QUEUE_H_
