#include "queue/queue.h"

#include <bit>
#include <chrono>
#include <ctime>

#include "metrics/snapshot.h"

namespace tesla::queue {
namespace {

// Process-wide queue id source. Ids are never reused, so a thread_local
// producer cache stamped with an id can never alias a destroyed queue.
std::atomic<uint64_t> next_queue_id{1};

// Thread-CPU time, the basis of ConsumerStats::busy_ns: actual dispatch
// work, independent of how many consumers the machine can run at once —
// total events / max per-consumer busy_ns is the drain throughput on the
// critical path, which equals wall-clock throughput once cores >= consumers.
uint64_t ThreadCpuNs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

}  // namespace

QueueOptions QueueOptions::FromRuntime(const runtime::RuntimeOptions& options) {
  QueueOptions queue;
  queue.on_full = options.queue_drop_on_full ? OnFull::kDrop : OnFull::kBlock;
  queue.ring_capacity = options.queue_ring_capacity;
  queue.batch_events = options.queue_batch_events;
  queue.consumers = options.queue_consumers;
  return queue;
}

EventQueue::Producer::Producer(size_t capacity, std::thread::id id,
                               uint32_t index, size_t consumers)
    : ring(capacity), owner(id), index(index) {
  if (consumers > 1) {
    forwards.reserve(consumers);
    for (size_t c = 0; c < consumers; c++) {
      forwards.push_back(std::make_unique<QueueRing>(capacity));
    }
  }
}

EventQueue::EventQueue(runtime::Runtime& rt, QueueOptions options)
    : rt_(rt),
      options_(options),
      consumer_count_(static_cast<uint32_t>(
          options.consumers < 1 ? 1 : (options.consumers > 64 ? 64 : options.consumers))),
      id_(next_queue_id.fetch_add(1, std::memory_order_relaxed)) {
  if (options_.ring_capacity == 0) {
    options_.ring_capacity = 1;
  }
  if (options_.batch_events == 0) {
    options_.batch_events = 1;
  }
  // Fold queue accounting into every CollectMetrics() snapshot for the
  // queue's lifetime (not just while running, so post-Stop() snapshots
  // still carry the final tallies).
  rt_.SetMetricsAugmenter(
      [this](metrics::Snapshot& snapshot) { Augment(snapshot); });
}

EventQueue::~EventQueue() {
  Stop();
  rt_.SetMetricsAugmenter(nullptr);
}

void EventQueue::Start() {
  if (running_.load(std::memory_order_relaxed)) {
    return;
  }
  stop_.store(false, std::memory_order_relaxed);
  producers_done_.store(0, std::memory_order_relaxed);
  {
    // Rebuild the drain crew; the lock orders this against stats readers.
    LockGuard<Spinlock> guard(producers_lock_);
    consumers_.clear();
    const uint64_t unpinned = rt_.unpinned_shard_mask();
    for (uint32_t c = 0; c < consumer_count_; c++) {
      auto consumer = std::make_unique<Consumer>();
      consumer->index = c;
      for (uint32_t s = 0; s < 64; s++) {
        if (((unpinned >> s) & 1) != 0 && s % consumer_count_ == c) {
          consumer->shard_mask |= uint64_t{1} << s;
        }
      }
      consumers_.push_back(std::move(consumer));
    }
  }
  rt_.AssignShardOwners(consumer_count_);
  running_.store(true, std::memory_order_release);
  for (auto& consumer : consumers_) {
    consumer->thread =
        std::thread(&EventQueue::ConsumerMain, this, std::ref(*consumer));
  }
  if (options_.install_hook) {
    rt_.SetIngestHook(&EventQueue::IngestThunk, this);
  }
}

void EventQueue::Stop() {
  if (!running_.load(std::memory_order_relaxed)) {
    return;
  }
  if (options_.install_hook) {
    rt_.SetIngestHook(nullptr, nullptr);
  }
  // Reject new enqueues (and release any kBlock spinner) before asking the
  // consumers to flush, so the "clean pass after observing stop" exit
  // condition is a real flush barrier rather than a race with producers.
  running_.store(false, std::memory_order_release);
  stop_.store(true, std::memory_order_release);
  for (auto& consumer : consumers_) {
    if (consumer->thread.joinable()) {
      consumer->thread.join();
    }
  }
  rt_.ReleaseShardOwners();
}

void EventQueue::Flush() const {
  // Phase 1: context-stage dispatch catches up with everything enqueued
  // before the call.
  const uint64_t target = totals().enqueued;
  while (running_.load(std::memory_order_acquire) &&
         dispatched_.load(std::memory_order_acquire) < target) {
    std::this_thread::yield();
  }
  // Phase 2: the shard-stage forwards those dispatches produced. Forwards
  // are pushed (and counted) before the batch's dispatched_ add, so once
  // phase 1 completes this snapshot covers every forward phase 1 implies.
  const uint64_t forward_target = forward_pushed_.load(std::memory_order_acquire);
  while (running_.load(std::memory_order_acquire) &&
         forward_done_.load(std::memory_order_acquire) < forward_target) {
    std::this_thread::yield();
  }
}

bool EventQueue::IngestThunk(void* state, runtime::ThreadContext& ctx,
                             const runtime::Event& event) {
  return static_cast<EventQueue*>(state)->Enqueue(ctx, event);
}

EventQueue::Producer& EventQueue::LocalProducer() {
  static thread_local uint64_t cached_queue = 0;
  static thread_local Producer* cached = nullptr;
  if (cached_queue != id_) {
    cached = &RegisterProducer();
    cached_queue = id_;
  }
  return *cached;
}

EventQueue::Producer& EventQueue::RegisterProducer() {
  const std::thread::id self = std::this_thread::get_id();
  LockGuard<Spinlock> guard(producers_lock_);
  // Re-registration (the thread's cache was evicted by another queue) must
  // find the existing producer: a second ring for the same thread would
  // break its FIFO guarantee.
  for (auto& producer : producers_) {
    if (producer->owner == self) {
      return *producer;
    }
  }
  producers_.push_back(std::make_unique<Producer>(
      options_.ring_capacity, self, static_cast<uint32_t>(producers_.size()),
      consumer_count_));
  return *producers_.back();
}

bool EventQueue::Enqueue(runtime::ThreadContext& ctx, const runtime::Event& event) {
  Producer& producer = LocalProducer();
  if (!running_.load(std::memory_order_acquire)) {
    producer.rejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (producer.ring.TryPush(&ctx, event)) {
    producer.enqueued.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (options_.on_full == QueueOptions::OnFull::kDrop) {
    producer.dropped.fetch_add(1, std::memory_order_relaxed);
    rt_.AccountQueueDrops(1);
    return true;  // taken by policy: dropped, never dispatched inline
  }
  // kBlock: wait for a consumer to free a slot. Bails out (rejecting the
  // event) if the queue stops while we wait, so Stop() can never deadlock
  // against a blocked producer.
  while (true) {
    producer.blocked_spins.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
    if (!running_.load(std::memory_order_acquire)) {
      producer.rejected.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (producer.ring.TryPush(&ctx, event)) {
      producer.enqueued.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
}

bool EventQueue::TryClaim(Producer& producer, uint32_t consumer) {
  uint32_t expected = kNoConsumer;
  return producer.claimant.compare_exchange_strong(
      expected, consumer, std::memory_order_acquire, std::memory_order_relaxed);
}

void EventQueue::ReleaseClaim(Producer& producer) {
  producer.claimant.store(kNoConsumer, std::memory_order_release);
}

void EventQueue::ConsumerMain(Consumer& self) {
  std::vector<QueueRecord> batch;
  std::vector<runtime::Event> scratch;
  std::vector<Producer*> round;
  batch.reserve(options_.batch_events);
  scratch.reserve(options_.batch_events);
  int idle_rounds = 0;
  bool counted_done = false;
  while (true) {
    // Observe the stop flag *before* draining: events pushed before Stop()
    // flipped it are then guaranteed to be seen by this or a later pass,
    // and a clean pass after the observation means our rings are flushed.
    const bool stopping = stop_.load(std::memory_order_acquire);
    // Likewise the shutdown barrier: every forward push happens-before its
    // consumer's producers_done_ increment, so observing the full count
    // *before* an empty forward-in drain makes that drain conclusive.
    const bool all_done =
        counted_done &&
        producers_done_.load(std::memory_order_acquire) == consumer_count_;

    round.clear();
    {
      LockGuard<Spinlock> guard(producers_lock_);
      for (auto& producer : producers_) {
        round.push_back(producer.get());
      }
    }

    size_t drained = 0;
    bool clean = true;  // every home ring claimed and emptied this pass
    for (Producer* producer : round) {
      if (producer->index % consumer_count_ != self.index) {
        continue;
      }
      if (!TryClaim(*producer, self.index)) {
        clean = false;  // a thief is mid-batch; its forwards are still coming
        continue;
      }
      size_t popped;
      do {
        batch.clear();
        popped = producer->ring.Pop(batch, options_.batch_events);
        if (popped != 0) {
          ProcessBatch(self, *producer, batch, scratch);
          drained += popped;
        }
        // While stopping, drain to empty under one claim so a clean pass
        // is a real flush barrier; while running, take one batch and move
        // on so no producer starves.
      } while (stopping && popped != 0);
      ReleaseClaim(*producer);
    }

    drained += DrainForwardIns(self);

    if (stopping) {
      if (clean && !counted_done) {
        counted_done = true;
        producers_done_.fetch_add(1, std::memory_order_release);
      } else if (all_done && clean && drained == 0) {
        return;
      }
      continue;
    }

    // Idle and running: steal a batch from the most backlogged producer
    // homed elsewhere. The claim keeps the victim's batches serialised and
    // this consumer plays the home role for the stolen batch (context
    // stage with its own shard mask, forwards for the rest), so per-shard
    // single-writer still holds.
    if (drained == 0 && consumer_count_ > 1 && options_.steal_backlog_words != 0) {
      Producer* victim = nullptr;
      size_t best = options_.steal_backlog_words;
      for (Producer* producer : round) {
        if (producer->index % consumer_count_ == self.index) {
          continue;
        }
        const size_t words = producer->ring.ApproxWords();
        if (words >= best) {
          best = words;
          victim = producer;
        }
      }
      if (victim != nullptr && TryClaim(*victim, self.index)) {
        batch.clear();
        if (victim->ring.Pop(batch, options_.batch_events) != 0) {
          self.steals.fetch_add(1, std::memory_order_relaxed);
          rt_.AccountQueueSteals(1);
          ProcessBatch(self, *victim, batch, scratch);
          drained += batch.size();
        }
        ReleaseClaim(*victim);
      }
    }

    if (drained != 0) {
      idle_rounds = 0;
      continue;
    }
    // Idle: spin briefly (a producer is probably mid-burst), then back off
    // so an idle queue doesn't burn a core.
    if (++idle_rounds < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

void EventQueue::ProcessBatch(Consumer& self, Producer& producer,
                              const std::vector<QueueRecord>& batch,
                              std::vector<runtime::Event>& scratch) {
  // Shard-stage forwards first: Flush()'s second phase snapshots
  // forward_pushed_ once dispatched_ covers the enqueues, so every forward
  // must be counted before this batch's dispatched_ add below.
  if (consumer_count_ > 1) {
    for (const QueueRecord& record : batch) {
      uint64_t shards = rt_.ShardStageMask(record.event) & ~self.shard_mask;
      uint64_t destinations = 0;
      while (shards != 0) {
        const int shard = std::countr_zero(shards);
        shards &= shards - 1;
        destinations |= uint64_t{1} << (static_cast<uint32_t>(shard) % consumer_count_);
      }
      while (destinations != 0) {
        const int dest = std::countr_zero(destinations);
        destinations &= destinations - 1;
        PushForward(self, producer, static_cast<uint32_t>(dest), record);
      }
    }
  }

  // Before dispatching this batch to our own shards, drain this producer's
  // forwards to us. When batches of one producer alternate between its home
  // consumer and a thief (work stealing), earlier batches' records for our
  // shards travel through this forward ring while the batch in hand would
  // be dispatched directly — dispatching it first would reorder the
  // producer's events on those shards. The claim we hold serialises every
  // pusher of this ring, so draining it to empty here is conclusive.
  if (consumer_count_ > 1) {
    DrainForwardRing(self, producer);
  }

  // Context stage: per-thread and pinned classes plus our own shards. A
  // ring is per-thread, so a popped batch is almost always one run; the
  // split only matters for direct Enqueue() callers juggling contexts.
  const uint64_t start_ns = ThreadCpuNs();
  const runtime::DispatchScope scope{true, self.shard_mask};
  size_t i = 0;
  while (i < batch.size()) {
    runtime::ThreadContext* ctx = batch[i].ctx;
    scratch.clear();
    size_t j = i;
    while (j < batch.size() && batch[j].ctx == ctx) {
      scratch.push_back(batch[j].event);
      j++;
    }
    rt_.OnEventsScoped(
        *ctx, std::span<const runtime::Event>(scratch.data(), scratch.size()),
        scope);
    rt_.AccountQueueBatch(j - i);
    self.batches.fetch_add(1, std::memory_order_relaxed);
    self.events.fetch_add(j - i, std::memory_order_relaxed);
    dispatched_.fetch_add(j - i, std::memory_order_release);
    i = j;
  }
  self.busy_ns.fetch_add(ThreadCpuNs() - start_ns, std::memory_order_relaxed);
}

void EventQueue::PushForward(Consumer& self, Producer& producer, uint32_t dest,
                             const QueueRecord& record) {
  QueueRing& ring = *producer.forwards[dest];
  while (!ring.TryPush(record.ctx, record.event)) {
    // The destination is backlogged. Drain our own forward-ins while we
    // wait: forwarded records are terminal (their dispatch never forwards
    // again), so this cannot recurse, and it breaks the cycle where two
    // consumers block pushing to each other.
    if (DrainForwardIns(self) == 0) {
      std::this_thread::yield();
    }
  }
  forward_pushed_.fetch_add(1, std::memory_order_relaxed);
  self.forwards_out.fetch_add(1, std::memory_order_relaxed);
  rt_.AccountQueueForwards(1);
}

size_t EventQueue::DrainForwardIns(Consumer& self) {
  if (consumer_count_ <= 1) {
    return 0;
  }
  auto& round = self.fwd_round;
  round.clear();
  {
    LockGuard<Spinlock> guard(producers_lock_);
    for (auto& producer : producers_) {
      round.push_back(producer.get());
    }
  }
  size_t total = 0;
  for (Producer* producer : round) {
    total += DrainForwardRing(self, *producer);
  }
  return total;
}

size_t EventQueue::DrainForwardRing(Consumer& self, Producer& producer) {
  const runtime::DispatchScope scope{false, self.shard_mask};
  QueueRing& ring = *producer.forwards[self.index];
  size_t total = 0;
  while (true) {
    self.fwd_batch.clear();
    if (ring.Pop(self.fwd_batch, options_.batch_events) == 0) {
      break;
    }
    const uint64_t start_ns = ThreadCpuNs();
    size_t i = 0;
    while (i < self.fwd_batch.size()) {
      runtime::ThreadContext* ctx = self.fwd_batch[i].ctx;
      self.fwd_scratch.clear();
      size_t j = i;
      while (j < self.fwd_batch.size() && self.fwd_batch[j].ctx == ctx) {
        self.fwd_scratch.push_back(self.fwd_batch[j].event);
        j++;
      }
      rt_.OnEventsScoped(*ctx,
                         std::span<const runtime::Event>(
                             self.fwd_scratch.data(), self.fwd_scratch.size()),
                         scope);
      i = j;
    }
    const size_t n = self.fwd_batch.size();
    self.forwards_in.fetch_add(n, std::memory_order_relaxed);
    forward_done_.fetch_add(n, std::memory_order_release);
    self.busy_ns.fetch_add(ThreadCpuNs() - start_ns, std::memory_order_relaxed);
    total += n;
  }
  return total;
}

void EventQueue::Augment(metrics::Snapshot& snapshot) const {
  snapshot.queue_producers.clear();
  for (const ProducerStats& producer : producer_stats()) {
    metrics::QueueProducerSnapshot p;
    p.enqueued = producer.enqueued;
    p.dropped = producer.dropped;
    p.rejected = producer.rejected;
    p.blocked_spins = producer.blocked_spins;
    snapshot.queue_producers.push_back(p);
  }
  snapshot.queue_consumers.clear();
  for (const ConsumerStats& consumer : consumer_stats()) {
    metrics::QueueConsumerSnapshot c;
    c.batches = consumer.batches;
    c.events = consumer.events;
    c.forwards_in = consumer.forwards_in;
    c.forwards_out = consumer.forwards_out;
    c.steals = consumer.steals;
    c.busy_ns = consumer.busy_ns;
    snapshot.queue_consumers.push_back(c);
  }
}

ProducerStats EventQueue::totals() const {
  ProducerStats total;
  LockGuard<Spinlock> guard(producers_lock_);
  for (const auto& producer : producers_) {
    total.enqueued += producer->enqueued.load(std::memory_order_relaxed);
    total.dropped += producer->dropped.load(std::memory_order_relaxed);
    total.rejected += producer->rejected.load(std::memory_order_relaxed);
    total.blocked_spins += producer->blocked_spins.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<ProducerStats> EventQueue::producer_stats() const {
  std::vector<ProducerStats> out;
  LockGuard<Spinlock> guard(producers_lock_);
  out.reserve(producers_.size());
  for (const auto& producer : producers_) {
    ProducerStats stats;
    stats.enqueued = producer->enqueued.load(std::memory_order_relaxed);
    stats.dropped = producer->dropped.load(std::memory_order_relaxed);
    stats.rejected = producer->rejected.load(std::memory_order_relaxed);
    stats.blocked_spins = producer->blocked_spins.load(std::memory_order_relaxed);
    out.push_back(stats);
  }
  return out;
}

size_t EventQueue::producer_count() const {
  LockGuard<Spinlock> guard(producers_lock_);
  return producers_.size();
}

std::vector<ConsumerStats> EventQueue::consumer_stats() const {
  std::vector<ConsumerStats> out;
  LockGuard<Spinlock> guard(producers_lock_);
  out.reserve(consumers_.size());
  for (const auto& consumer : consumers_) {
    ConsumerStats stats;
    stats.batches = consumer->batches.load(std::memory_order_relaxed);
    stats.events = consumer->events.load(std::memory_order_relaxed);
    stats.forwards_in = consumer->forwards_in.load(std::memory_order_relaxed);
    stats.forwards_out = consumer->forwards_out.load(std::memory_order_relaxed);
    stats.steals = consumer->steals.load(std::memory_order_relaxed);
    stats.busy_ns = consumer->busy_ns.load(std::memory_order_relaxed);
    out.push_back(stats);
  }
  return out;
}

}  // namespace tesla::queue
