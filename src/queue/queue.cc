#include "queue/queue.h"

#include <chrono>

namespace tesla::queue {
namespace {

// Process-wide queue id source. Ids are never reused, so a thread_local
// producer cache stamped with an id can never alias a destroyed queue.
std::atomic<uint64_t> next_queue_id{1};

}  // namespace

QueueOptions QueueOptions::FromRuntime(const runtime::RuntimeOptions& options) {
  QueueOptions queue;
  queue.on_full = options.queue_drop_on_full ? OnFull::kDrop : OnFull::kBlock;
  queue.ring_capacity = options.queue_ring_capacity;
  queue.batch_events = options.queue_batch_events;
  return queue;
}

EventQueue::EventQueue(runtime::Runtime& rt, QueueOptions options)
    : rt_(rt),
      options_(options),
      id_(next_queue_id.fetch_add(1, std::memory_order_relaxed)) {
  if (options_.ring_capacity == 0) {
    options_.ring_capacity = 1;
  }
  if (options_.batch_events == 0) {
    options_.batch_events = 1;
  }
}

EventQueue::~EventQueue() { Stop(); }

void EventQueue::Start() {
  if (running_.load(std::memory_order_relaxed)) {
    return;
  }
  stop_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  consumer_ = std::thread(&EventQueue::ConsumerMain, this);
  if (options_.install_hook) {
    rt_.SetIngestHook(&EventQueue::IngestThunk, this);
  }
}

void EventQueue::Stop() {
  if (!running_.load(std::memory_order_relaxed)) {
    return;
  }
  if (options_.install_hook) {
    rt_.SetIngestHook(nullptr, nullptr);
  }
  // Reject new enqueues (and release any kBlock spinner) before asking the
  // consumer to flush, so the "empty round after observing stop" exit
  // condition is a real flush barrier rather than a race with producers.
  running_.store(false, std::memory_order_release);
  stop_.store(true, std::memory_order_release);
  consumer_.join();
}

void EventQueue::Flush() const {
  const uint64_t target = totals().enqueued;
  while (running_.load(std::memory_order_acquire) &&
         dispatched_.load(std::memory_order_acquire) < target) {
    std::this_thread::yield();
  }
}

bool EventQueue::IngestThunk(void* state, runtime::ThreadContext& ctx,
                             const runtime::Event& event) {
  return static_cast<EventQueue*>(state)->Enqueue(ctx, event);
}

EventQueue::Producer& EventQueue::LocalProducer() {
  static thread_local uint64_t cached_queue = 0;
  static thread_local Producer* cached = nullptr;
  if (cached_queue != id_) {
    cached = &RegisterProducer();
    cached_queue = id_;
  }
  return *cached;
}

EventQueue::Producer& EventQueue::RegisterProducer() {
  const std::thread::id self = std::this_thread::get_id();
  LockGuard<Spinlock> guard(producers_lock_);
  // Re-registration (the thread's cache was evicted by another queue) must
  // find the existing producer: a second ring for the same thread would
  // break its FIFO guarantee.
  for (auto& producer : producers_) {
    if (producer->owner == self) {
      return *producer;
    }
  }
  producers_.push_back(std::make_unique<Producer>(options_.ring_capacity, self));
  return *producers_.back();
}

bool EventQueue::Enqueue(runtime::ThreadContext& ctx, const runtime::Event& event) {
  Producer& producer = LocalProducer();
  if (!running_.load(std::memory_order_acquire)) {
    producer.rejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (producer.ring.TryPush(&ctx, event)) {
    producer.enqueued.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (options_.on_full == QueueOptions::OnFull::kDrop) {
    producer.dropped.fetch_add(1, std::memory_order_relaxed);
    rt_.AccountQueueDrops(1);
    return true;  // taken by policy: dropped, never dispatched inline
  }
  // kBlock: wait for the consumer to free a slot. Bails out (rejecting the
  // event) if the queue stops while we wait, so Stop() can never deadlock
  // against a blocked producer.
  while (true) {
    std::this_thread::yield();
    if (!running_.load(std::memory_order_acquire)) {
      producer.rejected.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (producer.ring.TryPush(&ctx, event)) {
      producer.enqueued.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
}

void EventQueue::ConsumerMain() {
  std::vector<QueueRecord> batch;
  std::vector<runtime::Event> scratch;
  std::vector<Producer*> round;
  batch.reserve(options_.batch_events);
  scratch.reserve(options_.batch_events);
  int idle_rounds = 0;
  while (true) {
    // Observe the stop flag *before* draining: events pushed before Stop()
    // flipped it are then guaranteed to be seen by this or a later round,
    // and an empty round after the observation means every ring is flushed.
    const bool stopping = stop_.load(std::memory_order_acquire);

    round.clear();
    {
      LockGuard<Spinlock> guard(producers_lock_);
      for (auto& producer : producers_) {
        round.push_back(producer.get());
      }
    }

    size_t drained = 0;
    for (Producer* producer : round) {
      batch.clear();
      if (producer->ring.Pop(batch, options_.batch_events) == 0) {
        continue;
      }
      drained += batch.size();
      DispatchBatch(batch, scratch);
    }

    if (drained != 0) {
      idle_rounds = 0;
      continue;
    }
    if (stopping) {
      return;
    }
    // Idle: spin briefly (a producer is probably mid-burst), then back off
    // so an idle queue doesn't burn a core.
    if (++idle_rounds < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

void EventQueue::DispatchBatch(const std::vector<QueueRecord>& batch,
                               std::vector<runtime::Event>& scratch) {
  // A ring is per-thread, so a popped batch is almost always one run; the
  // split only matters for direct Enqueue() callers juggling contexts.
  size_t i = 0;
  while (i < batch.size()) {
    runtime::ThreadContext* ctx = batch[i].ctx;
    scratch.clear();
    size_t j = i;
    while (j < batch.size() && batch[j].ctx == ctx) {
      scratch.push_back(batch[j].event);
      j++;
    }
    rt_.OnEvents(*ctx, std::span<const runtime::Event>(scratch.data(), scratch.size()));
    rt_.AccountQueueBatch(j - i);
    dispatched_.fetch_add(j - i, std::memory_order_release);
    i = j;
  }
}

ProducerStats EventQueue::totals() const {
  ProducerStats total;
  LockGuard<Spinlock> guard(producers_lock_);
  for (const auto& producer : producers_) {
    total.enqueued += producer->enqueued.load(std::memory_order_relaxed);
    total.dropped += producer->dropped.load(std::memory_order_relaxed);
    total.rejected += producer->rejected.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<ProducerStats> EventQueue::producer_stats() const {
  std::vector<ProducerStats> out;
  LockGuard<Spinlock> guard(producers_lock_);
  out.reserve(producers_.size());
  for (const auto& producer : producers_) {
    ProducerStats stats;
    stats.enqueued = producer->enqueued.load(std::memory_order_relaxed);
    stats.dropped = producer->dropped.load(std::memory_order_relaxed);
    stats.rejected = producer->rejected.load(std::memory_order_relaxed);
    out.push_back(stats);
  }
  return out;
}

size_t EventQueue::producer_count() const {
  LockGuard<Spinlock> guard(producers_lock_);
  return producers_.size();
}

}  // namespace tesla::queue
