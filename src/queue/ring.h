// A bounded single-producer/single-consumer ring of queued events.
//
// This is the ingestion counterpart of trace::TraceRing and reuses its
// discipline — serialise the record into the ring as relaxed 64-bit word
// stores, then publish with one release store — but where the flight
// recorder overwrites its oldest record when full, an ingestion ring must
// not lose or tear events that were accepted: it is *bounded*. The producer
// owns `head_`, the consumer owns `tail_`, and each side caches the other's
// index so the common case (ring neither full nor empty) costs no shared
// load at all:
//
//   producer: if the record wouldn't fit under cached_tail, refresh
//             cached_tail (acquire); still full → TryPush fails and the
//             caller applies its backpressure policy. Otherwise relaxed
//             word stores, release-publish the new head.
//   consumer: if cached_head == tail, refresh cached_head (acquire); still
//             empty → nothing to pop. Otherwise decode the records in
//             [tail, head), then release-publish the new tail so the
//             producer may reuse those words.
//
// The release/acquire pairs on head_ (producer→consumer) and tail_
// (consumer→producer) are the only synchronisation: ring words need no
// ordering of their own because a word is only rewritten after the consumer
// published a tail past it, and only read after the producer published a
// head past it.
//
// Records are variable-length. An Event is 96 bytes but almost always
// nearly empty — a 0–2 argument call carries 2–4 live words — so the
// producer serialises only the live prefix:
//
//   word 0   the ThreadContext pointer
//   word 1   header: kind | count | flags (truncated / has return value /
//            has vars / has timestamp) | target symbol
//   [1]      event timestamp, when stamped (timed clauses registered — the
//            consumer must see the *producer's* clock, not its own)
//   …        count argument values
//   [1]      return value, when non-zero
//   [0–2]    vars packed four per word, when any is non-zero (site events)
//
// This is lossless for every Event the factories in runtime/event.h build
// (they zero-initialise, so values/vars beyond `count` are zero) and cuts
// the producer's stores from 13 words to 2–4 for typical events — the
// difference between "tens of ns" and "~10 ns" on the instrumented thread.
#ifndef TESLA_QUEUE_RING_H_
#define TESLA_QUEUE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "runtime/event.h"

namespace tesla::runtime {
class ThreadContext;
}  // namespace tesla::runtime

namespace tesla::queue {

// One queued unit: the event plus the serialisation context it was produced
// under. Carrying the context pointer (not a copy of anything inside it)
// keeps the paper's per-thread serialisation semantics intact across the
// thread hop — the consumer dispatches into the producer's own context, so
// automaton instances, flight-recorder attribution and metrics shards all
// land exactly where an inline dispatch would have put them. The context
// must outlive EventQueue::Stop().
struct QueueRecord {
  runtime::ThreadContext* ctx = nullptr;
  runtime::Event event;
};

static_assert(std::is_trivially_copyable_v<QueueRecord>,
              "QueueRecord crosses threads as raw word copies");
static_assert(sizeof(Symbol) == 4, "header packs target into 32 bits");
static_assert(runtime::kMaxEventArgs == 8,
              "vars packing and the worst-case record size assume 8 slots");

// Worst case: ctx + header + timestamp + 8 values + return value + 2
// packed-vars words.
inline constexpr size_t kMaxRecordWords = 2 + 1 + runtime::kMaxEventArgs + 1 +
                                          (runtime::kMaxEventArgs + 3) / 4;

// Header word layout (see TryPush/Pop below).
inline constexpr uint64_t kHeaderTruncated = uint64_t{1} << 16;
inline constexpr uint64_t kHeaderHasReturn = uint64_t{1} << 17;
inline constexpr uint64_t kHeaderHasVars = uint64_t{1} << 18;
inline constexpr uint64_t kHeaderHasTs = uint64_t{1} << 19;

class QueueRing {
 public:
  // `capacity` is in events: the ring always has room for at least that many
  // worst-case records (small events pack denser and fit more).
  explicit QueueRing(size_t capacity) {
    size_t rounded = 64;
    while (rounded < capacity * kMaxRecordWords) {
      rounded *= 2;
    }
    capacity_ = rounded;
    mask_ = rounded - 1;
    words_ = std::make_unique<std::atomic<uint64_t>[]>(capacity_);
  }

  // In words, not events.
  size_t capacity() const { return capacity_; }

  // Approximate backlog in words, readable from any thread (both indices
  // are loaded fresh, so this is exact at some instant between the loads).
  // Used by idle consumers sizing up a ring before stealing a batch; the
  // steal itself still goes through the claiming protocol in queue.cc, so
  // staleness here costs at most a wasted (or missed) steal attempt.
  size_t ApproxWords() const {
    return static_cast<size_t>(head_.load(std::memory_order_acquire) -
                               tail_.load(std::memory_order_acquire));
  }

  // Producer side. Wait-free; false means the ring is full *right now* (the
  // caller blocks or drops — this class never decides).
  bool TryPush(runtime::ThreadContext* ctx, const runtime::Event& event) {
    uint64_t vars_packed[2] = {0, 0};
    for (size_t i = 0; i < event.count; i++) {
      vars_packed[i / 4] |= static_cast<uint64_t>(event.vars[i]) << (16 * (i % 4));
    }
    const bool has_return = event.return_value != 0;
    const bool has_vars = (vars_packed[0] | vars_packed[1]) != 0;
    const bool has_ts = event.ts_ns != 0;
    const size_t need = 2 + event.count + (has_return ? 1 : 0) +
                        (has_vars ? (event.count + 3) / 4 : 0) + (has_ts ? 1 : 0);

    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head + need - cached_tail_ > capacity_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head + need - cached_tail_ > capacity_) {
        return false;
      }
    }

    uint64_t pos = head;
    auto put = [&](uint64_t word) {
      words_[pos & mask_].store(word, std::memory_order_relaxed);
      pos++;
    };
    put(reinterpret_cast<uint64_t>(ctx));
    put(static_cast<uint64_t>(event.kind) |
        (static_cast<uint64_t>(event.count) << 8) |
        (event.truncated ? kHeaderTruncated : 0) |
        (has_return ? kHeaderHasReturn : 0) | (has_vars ? kHeaderHasVars : 0) |
        (has_ts ? kHeaderHasTs : 0) | (static_cast<uint64_t>(event.target) << 32));
    if (has_ts) {
      put(event.ts_ns);
    }
    for (size_t i = 0; i < event.count; i++) {
      put(static_cast<uint64_t>(event.values[i]));
    }
    if (has_return) {
      put(static_cast<uint64_t>(event.return_value));
    }
    if (has_vars) {
      for (size_t i = 0; i < (event.count + 3u) / 4; i++) {
        put(vars_packed[i]);
      }
    }
    head_.store(pos, std::memory_order_release);
    return true;
  }

  // Consumer side: appends up to `max` records to `out` in push order and
  // frees their words. Returns the number popped. Safe to decode without a
  // length prefix because the producer publishes whole records: every word
  // of a record at an index below head is valid.
  size_t Pop(std::vector<QueueRecord>& out, size_t max) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (cached_head_ == tail) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (cached_head_ == tail) {
        return 0;
      }
    }
    uint64_t pos = tail;
    size_t popped = 0;
    auto take = [&] {
      const uint64_t word = words_[pos & mask_].load(std::memory_order_relaxed);
      pos++;
      return word;
    };
    while (pos != cached_head_ && popped < max) {
      QueueRecord record;
      record.ctx = reinterpret_cast<runtime::ThreadContext*>(take());
      const uint64_t header = take();
      record.event.kind = static_cast<runtime::EventKind>(header & 0xff);
      record.event.count = static_cast<uint8_t>((header >> 8) & 0xff);
      record.event.truncated = (header & kHeaderTruncated) != 0;
      record.event.target = static_cast<Symbol>(header >> 32);
      if ((header & kHeaderHasTs) != 0) {
        record.event.ts_ns = take();
      }
      for (size_t i = 0; i < record.event.count; i++) {
        record.event.values[i] = static_cast<int64_t>(take());
      }
      if ((header & kHeaderHasReturn) != 0) {
        record.event.return_value = static_cast<int64_t>(take());
      }
      if ((header & kHeaderHasVars) != 0) {
        for (size_t i = 0; i < record.event.count; i++) {
          if (i % 4 == 0) {
            vars_scratch_ = take();
          }
          record.event.vars[i] =
              static_cast<uint16_t>(vars_scratch_ >> (16 * (i % 4)));
        }
      }
      out.push_back(record);
      popped++;
    }
    tail_.store(pos, std::memory_order_release);
    return popped;
  }

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
  size_t capacity_ = 0;
  uint64_t mask_ = 0;

  // Producer cacheline: owned index + cached view of the consumer's.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;
  // Consumer cacheline.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;
  uint64_t vars_scratch_ = 0;
};

}  // namespace tesla::queue

#endif  // TESLA_QUEUE_RING_H_
