// AST for the TESLA assertion language (paper fig. 5).
//
// The surface syntax accepted by the parser is the expanded form of the
// paper's C macros, e.g.:
//
//   TESLA_WITHIN(enclosing_fn, previously(security_check(ANY(ptr), o, op) == 0))
//   TESLA_ASSERT(global, call(f), returnfrom(f), eventually(foo(x) == 0))
//   TESLA_PERTHREAD(call(f), returnfrom(f), TSEQUENCE(a(), b()))
//
// plus the kernel conveniences TESLA_SYSCALL / TESLA_SYSCALL_PREVIOUSLY whose
// bound function is configurable (paper §3.5.2 uses amd64_syscall).
#ifndef TESLA_PARSER_AST_H_
#define TESLA_PARSER_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tesla::ast {

// ---------------------------------------------------------------------------
// Value patterns (grammar nonterminal `val`)
// ---------------------------------------------------------------------------

enum class ValueKind {
  kAny,        // ANY(type): wildcard
  kLiteral,    // integer constant
  kVariable,   // in-scope variable reference; binds the automaton instance name
  kIndirect,   // &x: match the value stored through the pointer at event time
  kFlags,      // flags(A | B): minimal bitfield — all named bits must be set
  kBitmask,    // bitmask(A | B): maximal bitfield — no bits outside the mask
};

struct ValuePattern {
  ValueKind kind = ValueKind::kAny;
  std::string type_name;               // for kAny (documentation only)
  int64_t literal = 0;                 // for kLiteral
  std::string variable;                // for kVariable / kIndirect
  std::vector<std::string> flag_names; // for kFlags / kBitmask
};

// ---------------------------------------------------------------------------
// Expressions (grammar nonterminal `expr`)
// ---------------------------------------------------------------------------

enum class ExprKind {
  kBoolean,        // expr || expr / expr ^ expr
  kSequence,       // TSEQUENCE(...) — also the expansion of previously/eventually
  kAtLeast,        // ATLEAST(n, e...): >= n events drawn from e..., any order (fig. 8)
  kModified,       // optional / callee / caller / strict / conditional
  kFunctionEvent,  // call(f(...)), returnfrom(f(...)), f(...) == v, called(f(...))
  kFieldAssign,    // s.field = v, s.field += v, ...
  kAssertionSite,  // TESLA_ASSERTION_SITE
  kInCallStack,    // incallstack(f): site-time predicate (fig. 7)
  kWithin,         // within_ms(N, e): e must complete within N ms of starting
  kRate,           // rate(N, per_ms(M), e): > N matching events per M ms window
};

enum class BooleanOp {
  kOr,   // ||: inclusive — implemented as a cross-product automaton (§3.4.2)
  kXor,  // ^: exclusive — implemented as automaton union
};

enum class Modifier {
  kOptional,
  kCallee,
  kCaller,
  kStrict,
  kConditional,
};

// Which side of a function event is being described.
enum class FunctionEventKind {
  kCall,            // call(f(args)): entry into f
  kReturn,          // returnfrom(f(args)): exit from f, return value unconstrained
  kReturnValue,     // f(args) == v: exit from f with matching return value
};

enum class AssignOp {
  kAssign,     // =
  kPlusEqual,  // +=
  kMinusEqual, // -=
  kIncrement,  // ++
  kDecrement,  // --
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;

  // kBoolean
  BooleanOp bool_op = BooleanOp::kOr;
  std::vector<ExprPtr> children;  // also: kSequence / kAtLeast operands

  // kAtLeast
  int64_t at_least = 0;

  // kWithin: deadline in milliseconds for the (single) child region.
  int64_t time_ms = 0;
  // kRate: at most rate_count child events per rate_window_ms tumbling window.
  int64_t rate_count = 0;
  int64_t rate_window_ms = 0;

  // kModified
  Modifier modifier = Modifier::kOptional;
  // (single child stored in `children`)

  // kFunctionEvent
  FunctionEventKind fn_kind = FunctionEventKind::kCall;
  std::string function;            // also: kInCallStack
  std::vector<ValuePattern> args;
  bool args_specified = false;     // f() vs f — bare call(f) matches any arguments
  ValuePattern return_pattern;     // for kReturnValue

  // kFieldAssign
  std::string struct_var;   // the variable naming the structure instance
  std::string field;
  AssignOp assign_op = AssignOp::kAssign;
  ValuePattern assign_value;

  int line = 0;
  int column = 0;
};

// ---------------------------------------------------------------------------
// Top-level assertion (grammar nonterminal `assert`)
// ---------------------------------------------------------------------------

enum class Context {
  kPerThread,  // implicit serialisation within one thread (§3.2)
  kGlobal,     // explicit, lock-based serialisation across threads
};

// A temporal bound event: call(f) or returnfrom(f) with no argument patterns
// (grammar nonterminal `staticExpr`).
struct BoundEvent {
  bool is_call = true;  // false: returnfrom
  std::string function;
};

struct Assertion {
  Context context = Context::kPerThread;
  BoundEvent start;  // «init» trigger (§4.4.1)
  BoundEvent end;    // «cleanup» trigger
  ExprPtr expr;

  // Diagnostics / naming.
  std::string name;         // stable identifier, e.g. "file.c:42"
  std::string source_file;  // translation unit holding the assertion site
  int line = 0;
};

}  // namespace tesla::ast

#endif  // TESLA_PARSER_AST_H_
