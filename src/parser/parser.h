// Recursive-descent parser for the TESLA assertion language (paper fig. 5).
#ifndef TESLA_PARSER_PARSER_H_
#define TESLA_PARSER_PARSER_H_

#include <string>
#include <string_view>

#include "parser/ast.h"
#include "support/result.h"

namespace tesla::parser {

struct ParseOptions {
  // Function that bounds TESLA_SYSCALL / TESLA_SYSCALL_PREVIOUSLY assertions.
  // FreeBSD's deployment uses amd64_syscall (paper fig. 9).
  std::string syscall_bound_function = "syscall";
};

// Parses one complete assertion, e.g.
//   "TESLA_WITHIN(foo, previously(check(ANY(ptr), o) == 0))".
Result<ast::Assertion> ParseAssertion(std::string_view source, const ParseOptions& options = {});

// Parses a bare expression (no TESLA_* wrapper); used by tests and by code
// that assembles assertions programmatically.
Result<ast::ExprPtr> ParseExpr(std::string_view source, const ParseOptions& options = {});

// Renders an expression / assertion back to (canonical) surface syntax.
std::string FormatExpr(const ast::Expr& expr);
std::string FormatAssertion(const ast::Assertion& assertion);

}  // namespace tesla::parser

#endif  // TESLA_PARSER_PARSER_H_
