#include "parser/parser.h"

#include <cassert>
#include <utility>

#include "parser/lexer.h"

namespace tesla::parser {
namespace {

using ast::Assertion;
using ast::AssignOp;
using ast::BooleanOp;
using ast::BoundEvent;
using ast::Context;
using ast::Expr;
using ast::ExprKind;
using ast::ExprPtr;
using ast::FunctionEventKind;
using ast::Modifier;
using ast::ValueKind;
using ast::ValuePattern;

class Parser {
 public:
  Parser(std::vector<Token> tokens, const ParseOptions& options)
      : tokens_(std::move(tokens)), options_(options) {}

  Result<Assertion> ParseTopLevel() {
    if (!Check(TokenKind::kIdentifier)) {
      return Fail("expected TESLA assertion macro");
    }
    const std::string macro = Peek().text;
    Advance();

    Assertion assertion;
    if (macro == "TESLA_GLOBAL" || macro == "TESLA_PERTHREAD") {
      assertion.context = macro == "TESLA_GLOBAL" ? Context::kGlobal : Context::kPerThread;
      if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();
      if (auto body = ParseBody(&assertion); !body.ok()) return body.error();
    } else if (macro == "TESLA_ASSERT") {
      if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();
      if (!Check(TokenKind::kIdentifier)) return Fail("expected context (global or perthread)");
      const std::string ctx = Peek().text;
      Advance();
      if (ctx == "global") {
        assertion.context = Context::kGlobal;
      } else if (ctx == "perthread") {
        assertion.context = Context::kPerThread;
      } else {
        return Fail("unknown context '" + ctx + "'");
      }
      if (auto s = Expect(TokenKind::kComma); !s.ok()) return s.error();
      if (auto body = ParseBody(&assertion); !body.ok()) return body.error();
    } else if (macro == "TESLA_WITHIN") {
      if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();
      if (!Check(TokenKind::kIdentifier)) return Fail("expected bounding function name");
      const std::string fn = Peek().text;
      Advance();
      if (auto s = Expect(TokenKind::kComma); !s.ok()) return s.error();
      assertion.context = Context::kPerThread;
      assertion.start = BoundEvent{true, fn};
      assertion.end = BoundEvent{false, fn};
      auto expr = ParseExpression();
      if (!expr.ok()) return expr.error();
      assertion.expr = std::move(expr.value());
      if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();
    } else if (macro == "TESLA_SYSCALL" || macro == "TESLA_SYSCALL_PREVIOUSLY") {
      if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();
      assertion.context = Context::kPerThread;
      assertion.start = BoundEvent{true, options_.syscall_bound_function};
      assertion.end = BoundEvent{false, options_.syscall_bound_function};
      auto expr = ParseExpression();
      if (!expr.ok()) return expr.error();
      if (macro == "TESLA_SYSCALL_PREVIOUSLY") {
        // previously(x) expands to [x, TESLA_ASSERTION_SITE] (§3.4.1).
        auto sequence = std::make_unique<Expr>();
        sequence->kind = ExprKind::kSequence;
        sequence->children.push_back(std::move(expr.value()));
        auto site = std::make_unique<Expr>();
        site->kind = ExprKind::kAssertionSite;
        sequence->children.push_back(std::move(site));
        assertion.expr = std::move(sequence);
      } else {
        assertion.expr = std::move(expr.value());
      }
      if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();
    } else {
      return Fail("unknown assertion macro '" + macro + "'");
    }

    if (!Check(TokenKind::kEnd)) {
      return Fail("trailing input after assertion");
    }
    return assertion;
  }

  Result<ExprPtr> ParseExpressionOnly() {
    auto expr = ParseExpression();
    if (!expr.ok()) return expr.error();
    if (!Check(TokenKind::kEnd)) {
      return Error{"trailing input after expression", Peek().line, Peek().column};
    }
    return std::move(expr.value());
  }

 private:
  // Parses "start, end, expr" and the closing paren.
  Status ParseBody(Assertion* assertion) {
    auto start = ParseBoundEvent();
    if (!start.ok()) return start.error();
    assertion->start = start.value();
    if (auto s = Expect(TokenKind::kComma); !s.ok()) return s;
    auto end = ParseBoundEvent();
    if (!end.ok()) return end.error();
    assertion->end = end.value();
    if (auto s = Expect(TokenKind::kComma); !s.ok()) return s;
    auto expr = ParseExpression();
    if (!expr.ok()) return expr.error();
    assertion->expr = std::move(expr.value());
    return Expect(TokenKind::kRightParen);
  }

  // staticExpr := call(fnName) | returnfrom(fnName)
  Result<BoundEvent> ParseBoundEvent() {
    if (!Check(TokenKind::kIdentifier)) {
      return Fail("expected call(...) or returnfrom(...) bound");
    }
    const std::string keyword = Peek().text;
    Advance();
    if (keyword != "call" && keyword != "returnfrom") {
      return Fail("bound must be call(fn) or returnfrom(fn), got '" + keyword + "'");
    }
    if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();
    if (!Check(TokenKind::kIdentifier)) return Fail("expected function name");
    BoundEvent bound;
    bound.is_call = keyword == "call";
    bound.function = Peek().text;
    Advance();
    if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();
    return bound;
  }

  // expr (op expr)* with a single operator per (unparenthesised) chain.
  Result<ExprPtr> ParseExpression() {
    auto first = ParsePrimary();
    if (!first.ok()) return first;

    if (!Check(TokenKind::kPipePipe) && !Check(TokenKind::kCaret)) {
      return first;
    }

    auto boolean = std::make_unique<Expr>();
    boolean->kind = ExprKind::kBoolean;
    boolean->bool_op = Check(TokenKind::kPipePipe) ? BooleanOp::kOr : BooleanOp::kXor;
    boolean->line = Peek().line;
    boolean->column = Peek().column;
    boolean->children.push_back(std::move(first.value()));

    const TokenKind op_token = Peek().kind;
    while (Check(op_token)) {
      Advance();
      auto operand = ParsePrimary();
      if (!operand.ok()) return operand;
      boolean->children.push_back(std::move(operand.value()));
    }
    if (Check(TokenKind::kPipePipe) || Check(TokenKind::kCaret)) {
      return Fail("mixing || and ^ requires parentheses");
    }
    return boolean;
  }

  Result<ExprPtr> ParsePrimary() {
    if (Check(TokenKind::kLeftParen)) {
      Advance();
      auto inner = ParseExpression();
      if (!inner.ok()) return inner;
      if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();
      return inner;
    }
    if (!Check(TokenKind::kIdentifier)) {
      return Fail("expected event expression");
    }

    const Token head = Peek();
    const std::string& word = head.text;

    if (word == "TESLA_ASSERTION_SITE") {
      Advance();
      return MakeLeaf(ExprKind::kAssertionSite, head);
    }
    if (word == "TSEQUENCE" || word == "previously" || word == "eventually") {
      return ParseSequence(word);
    }
    if (word == "ATLEAST") {
      return ParseAtLeast();
    }
    if (word == "optional" || word == "callee" || word == "caller" || word == "strict" ||
        word == "conditional") {
      return ParseModifier(word);
    }
    if (word == "call" || word == "called" || word == "returnfrom") {
      return ParseExplicitFunctionEvent(word);
    }
    if (word == "within_ms") {
      return ParseWithin();
    }
    if (word == "rate") {
      return ParseRate();
    }
    if (word == "incallstack") {
      Advance();
      if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();
      if (!Check(TokenKind::kIdentifier)) return Fail("expected function name");
      auto expr = MakeLeaf(ExprKind::kInCallStack, head);
      expr->function = Peek().text;
      Advance();
      if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();
      return expr;
    }

    // Remaining possibilities: `ident.field <op> ...` (field assignment) or
    // `ident(args) [== val]` (function event).
    if (PeekAhead(1).kind == TokenKind::kDot) {
      return ParseFieldAssign();
    }
    if (PeekAhead(1).kind == TokenKind::kLeftParen) {
      return ParseFunctionEvent();
    }
    return Fail("expected event expression, got '" + word + "'");
  }

  Result<ExprPtr> ParseSequence(const std::string& keyword) {
    const Token head = Peek();
    Advance();
    if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();

    auto sequence = MakeLeaf(ExprKind::kSequence, head);
    if (keyword == "eventually") {
      sequence->children.push_back(MakeLeaf(ExprKind::kAssertionSite, head));
    }
    while (true) {
      auto element = ParseExpression();
      if (!element.ok()) return element;
      sequence->children.push_back(std::move(element.value()));
      if (!Check(TokenKind::kComma)) {
        break;
      }
      Advance();
    }
    if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();
    if (keyword == "previously") {
      sequence->children.push_back(MakeLeaf(ExprKind::kAssertionSite, head));
    }
    return sequence;
  }

  Result<ExprPtr> ParseAtLeast() {
    const Token head = Peek();
    Advance();
    if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();
    if (!Check(TokenKind::kInteger)) return Fail("ATLEAST requires an integer count");
    auto at_least = MakeLeaf(ExprKind::kAtLeast, head);
    at_least->at_least = Peek().integer;
    if (at_least->at_least < 0) return Fail("ATLEAST count must be non-negative");
    Advance();
    while (Check(TokenKind::kComma)) {
      Advance();
      auto element = ParseExpression();
      if (!element.ok()) return element;
      at_least->children.push_back(std::move(element.value()));
    }
    if (at_least->children.empty()) return Fail("ATLEAST requires at least one event");
    if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();
    return at_least;
  }

  // within_ms(N, expr): the child region must run to completion within N ms
  // of its first event.
  Result<ExprPtr> ParseWithin() {
    const Token head = Peek();
    Advance();
    if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();
    if (!Check(TokenKind::kInteger)) return Fail("within_ms requires an integer bound");
    auto within = MakeLeaf(ExprKind::kWithin, head);
    within->time_ms = Peek().integer;
    if (within->time_ms <= 0) return Fail("within_ms bound must be positive");
    Advance();
    if (auto s = Expect(TokenKind::kComma); !s.ok()) return s.error();
    auto child = ParseExpression();
    if (!child.ok()) return child;
    within->children.push_back(std::move(child.value()));
    if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();
    return within;
  }

  // rate(N, per_ms(M), expr): more than N child events inside one M-ms
  // tumbling window is a violation.
  Result<ExprPtr> ParseRate() {
    const Token head = Peek();
    Advance();
    if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();
    if (!Check(TokenKind::kInteger)) return Fail("rate requires an integer event limit");
    auto rate = MakeLeaf(ExprKind::kRate, head);
    rate->rate_count = Peek().integer;
    if (rate->rate_count <= 0) return Fail("rate limit must be positive");
    Advance();
    if (auto s = Expect(TokenKind::kComma); !s.ok()) return s.error();
    if (!Check(TokenKind::kIdentifier) || Peek().text != "per_ms") {
      return Fail("rate requires a per_ms(window) argument");
    }
    Advance();
    if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();
    if (!Check(TokenKind::kInteger)) return Fail("per_ms requires an integer window");
    rate->rate_window_ms = Peek().integer;
    if (rate->rate_window_ms <= 0) return Fail("per_ms window must be positive");
    Advance();
    if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();
    if (auto s = Expect(TokenKind::kComma); !s.ok()) return s.error();
    auto child = ParseExpression();
    if (!child.ok()) return child;
    rate->children.push_back(std::move(child.value()));
    if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();
    return rate;
  }

  Result<ExprPtr> ParseModifier(const std::string& keyword) {
    const Token head = Peek();
    Advance();
    if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();
    auto modified = MakeLeaf(ExprKind::kModified, head);
    if (keyword == "optional") {
      modified->modifier = Modifier::kOptional;
    } else if (keyword == "callee") {
      modified->modifier = Modifier::kCallee;
    } else if (keyword == "caller") {
      modified->modifier = Modifier::kCaller;
    } else if (keyword == "strict") {
      modified->modifier = Modifier::kStrict;
    } else {
      modified->modifier = Modifier::kConditional;
    }
    auto child = ParseExpression();
    if (!child.ok()) return child;
    modified->children.push_back(std::move(child.value()));
    if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();
    return modified;
  }

  // call(f(args)) / called(f(args)) / returnfrom(f(args)); bare function names
  // (call(f)) match any arguments.
  Result<ExprPtr> ParseExplicitFunctionEvent(const std::string& keyword) {
    const Token head = Peek();
    Advance();
    if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();
    if (!Check(TokenKind::kIdentifier)) return Fail("expected function name");

    auto event = MakeLeaf(ExprKind::kFunctionEvent, head);
    event->fn_kind =
        keyword == "returnfrom" ? FunctionEventKind::kReturn : FunctionEventKind::kCall;
    event->function = Peek().text;
    Advance();

    if (Check(TokenKind::kLeftParen)) {
      Advance();
      event->args_specified = true;
      if (!Check(TokenKind::kRightParen)) {
        while (true) {
          auto pattern = ParseValuePattern();
          if (!pattern.ok()) return pattern.error();
          event->args.push_back(pattern.value());
          if (!Check(TokenKind::kComma)) {
            break;
          }
          Advance();
        }
      }
      if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();
    }
    if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();
    return event;
  }

  // f(args) [== val]
  Result<ExprPtr> ParseFunctionEvent() {
    const Token head = Peek();
    auto event = MakeLeaf(ExprKind::kFunctionEvent, head);
    event->function = head.text;
    Advance();
    if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();
    event->args_specified = true;
    if (!Check(TokenKind::kRightParen)) {
      while (true) {
        auto pattern = ParseValuePattern();
        if (!pattern.ok()) return pattern.error();
        event->args.push_back(pattern.value());
        if (!Check(TokenKind::kComma)) {
          break;
        }
        Advance();
      }
    }
    if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();

    if (Check(TokenKind::kEqualEqual)) {
      Advance();
      auto pattern = ParseValuePattern();
      if (!pattern.ok()) return pattern.error();
      event->fn_kind = FunctionEventKind::kReturnValue;
      event->return_pattern = pattern.value();
    } else {
      // A bare `f(args)` is a call event (matched on function entry).
      event->fn_kind = FunctionEventKind::kCall;
    }
    return event;
  }

  // s.field = v | s.field += v | s.field -= v | s.field++ | s.field--
  Result<ExprPtr> ParseFieldAssign() {
    const Token head = Peek();
    auto assign = MakeLeaf(ExprKind::kFieldAssign, head);
    assign->struct_var = head.text;
    Advance();
    if (auto s = Expect(TokenKind::kDot); !s.ok()) return s.error();
    if (!Check(TokenKind::kIdentifier)) return Fail("expected field name");
    assign->field = Peek().text;
    Advance();

    switch (Peek().kind) {
      case TokenKind::kEqual:
        assign->assign_op = AssignOp::kAssign;
        break;
      case TokenKind::kPlusEqual:
        assign->assign_op = AssignOp::kPlusEqual;
        break;
      case TokenKind::kMinusEqual:
        assign->assign_op = AssignOp::kMinusEqual;
        break;
      case TokenKind::kPlusPlus:
        assign->assign_op = AssignOp::kIncrement;
        Advance();
        return assign;
      case TokenKind::kMinusMinus:
        assign->assign_op = AssignOp::kDecrement;
        Advance();
        return assign;
      default:
        return Fail("expected assignment operator after field name");
    }
    Advance();
    auto pattern = ParseValuePattern();
    if (!pattern.ok()) return pattern.error();
    assign->assign_value = pattern.value();
    return assign;
  }

  Result<ValuePattern> ParseValuePattern() {
    ValuePattern pattern;
    if (Check(TokenKind::kInteger)) {
      pattern.kind = ValueKind::kLiteral;
      pattern.literal = Peek().integer;
      Advance();
      return pattern;
    }
    if (Check(TokenKind::kAmpersand)) {
      Advance();
      if (!Check(TokenKind::kIdentifier)) return Fail("expected variable after '&'");
      pattern.kind = ValueKind::kIndirect;
      pattern.variable = Peek().text;
      Advance();
      return pattern;
    }
    if (!Check(TokenKind::kIdentifier)) {
      return Fail("expected value pattern");
    }
    const std::string word = Peek().text;
    if (word == "ANY" || word == "any") {
      Advance();
      if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();
      if (!Check(TokenKind::kIdentifier)) return Fail("expected type name in ANY(...)");
      pattern.kind = ValueKind::kAny;
      pattern.type_name = Peek().text;
      Advance();
      if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();
      return pattern;
    }
    if (word == "flags" || word == "bitmask") {
      Advance();
      if (auto s = Expect(TokenKind::kLeftParen); !s.ok()) return s.error();
      pattern.kind = word == "flags" ? ValueKind::kFlags : ValueKind::kBitmask;
      while (true) {
        if (!Check(TokenKind::kIdentifier)) return Fail("expected flag name");
        pattern.flag_names.push_back(Peek().text);
        Advance();
        if (!Check(TokenKind::kPipe)) {
          break;
        }
        Advance();
      }
      if (auto s = Expect(TokenKind::kRightParen); !s.ok()) return s.error();
      return pattern;
    }
    // A plain identifier is an in-scope variable reference; lowering may
    // resolve it to a named constant instead (paper §3.4.1's NEXT_STATE).
    pattern.kind = ValueKind::kVariable;
    pattern.variable = word;
    Advance();
    return pattern;
  }

  // --- token plumbing ---

  const Token& Peek() const { return tokens_[position_]; }
  const Token& PeekAhead(size_t n) const {
    size_t index = position_ + n;
    return index < tokens_.size() ? tokens_[index] : tokens_.back();
  }
  void Advance() {
    if (position_ + 1 < tokens_.size()) {
      position_++;
    }
  }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }

  Status Expect(TokenKind kind) {
    if (!Check(kind)) {
      return Error{std::string("expected ") + TokenKindName(kind) + ", got " +
                       TokenKindName(Peek().kind),
                   Peek().line, Peek().column};
    }
    Advance();
    return Status::Ok();
  }

  Error Fail(const std::string& message) const {
    return Error{message, Peek().line, Peek().column};
  }

  static ExprPtr MakeLeaf(ExprKind kind, const Token& token) {
    auto expr = std::make_unique<Expr>();
    expr->kind = kind;
    expr->line = token.line;
    expr->column = token.column;
    return expr;
  }

  std::vector<Token> tokens_;
  ParseOptions options_;
  size_t position_ = 0;
};

std::string FormatValue(const ValuePattern& pattern) {
  switch (pattern.kind) {
    case ValueKind::kAny:
      return "ANY(" + (pattern.type_name.empty() ? "any" : pattern.type_name) + ")";
    case ValueKind::kLiteral:
      return std::to_string(pattern.literal);
    case ValueKind::kVariable:
      return pattern.variable;
    case ValueKind::kIndirect:
      return "&" + pattern.variable;
    case ValueKind::kFlags:
    case ValueKind::kBitmask: {
      std::string text = pattern.kind == ValueKind::kFlags ? "flags(" : "bitmask(";
      for (size_t i = 0; i < pattern.flag_names.size(); i++) {
        if (i > 0) text += " | ";
        text += pattern.flag_names[i];
      }
      return text + ")";
    }
  }
  return "?";
}

std::string FormatArgs(const Expr& expr) {
  std::string text = "(";
  for (size_t i = 0; i < expr.args.size(); i++) {
    if (i > 0) text += ", ";
    text += FormatValue(expr.args[i]);
  }
  return text + ")";
}

}  // namespace

Result<ast::Assertion> ParseAssertion(std::string_view source, const ParseOptions& options) {
  auto tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.error();
  Parser parser(std::move(tokens.value()), options);
  return parser.ParseTopLevel();
}

Result<ast::ExprPtr> ParseExpr(std::string_view source, const ParseOptions& options) {
  auto tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.error();
  Parser parser(std::move(tokens.value()), options);
  return parser.ParseExpressionOnly();
}

std::string FormatExpr(const ast::Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kBoolean: {
      std::string text = "(";
      for (size_t i = 0; i < expr.children.size(); i++) {
        if (i > 0) text += expr.bool_op == BooleanOp::kOr ? " || " : " ^ ";
        text += FormatExpr(*expr.children[i]);
      }
      return text + ")";
    }
    case ExprKind::kSequence: {
      std::string text = "TSEQUENCE(";
      for (size_t i = 0; i < expr.children.size(); i++) {
        if (i > 0) text += ", ";
        text += FormatExpr(*expr.children[i]);
      }
      return text + ")";
    }
    case ExprKind::kAtLeast: {
      std::string text = "ATLEAST(" + std::to_string(expr.at_least);
      for (const auto& child : expr.children) {
        text += ", " + FormatExpr(*child);
      }
      return text + ")";
    }
    case ExprKind::kModified: {
      const char* name = "optional";
      switch (expr.modifier) {
        case Modifier::kOptional:
          name = "optional";
          break;
        case Modifier::kCallee:
          name = "callee";
          break;
        case Modifier::kCaller:
          name = "caller";
          break;
        case Modifier::kStrict:
          name = "strict";
          break;
        case Modifier::kConditional:
          name = "conditional";
          break;
      }
      return std::string(name) + "(" + FormatExpr(*expr.children.at(0)) + ")";
    }
    case ExprKind::kFunctionEvent: {
      switch (expr.fn_kind) {
        case FunctionEventKind::kCall:
          return "call(" + expr.function + (expr.args_specified ? FormatArgs(expr) : "") + ")";
        case FunctionEventKind::kReturn:
          return "returnfrom(" + expr.function +
                 (expr.args_specified ? FormatArgs(expr) : "") + ")";
        case FunctionEventKind::kReturnValue:
          return expr.function + FormatArgs(expr) + " == " + FormatValue(expr.return_pattern);
      }
      return "?";
    }
    case ExprKind::kFieldAssign: {
      std::string text = expr.struct_var + "." + expr.field;
      switch (expr.assign_op) {
        case AssignOp::kAssign:
          return text + " = " + FormatValue(expr.assign_value);
        case AssignOp::kPlusEqual:
          return text + " += " + FormatValue(expr.assign_value);
        case AssignOp::kMinusEqual:
          return text + " -= " + FormatValue(expr.assign_value);
        case AssignOp::kIncrement:
          return text + "++";
        case AssignOp::kDecrement:
          return text + "--";
      }
      return "?";
    }
    case ExprKind::kAssertionSite:
      return "TESLA_ASSERTION_SITE";
    case ExprKind::kInCallStack:
      return "incallstack(" + expr.function + ")";
    case ExprKind::kWithin:
      return "within_ms(" + std::to_string(expr.time_ms) + ", " +
             FormatExpr(*expr.children.at(0)) + ")";
    case ExprKind::kRate:
      return "rate(" + std::to_string(expr.rate_count) + ", per_ms(" +
             std::to_string(expr.rate_window_ms) + "), " + FormatExpr(*expr.children.at(0)) +
             ")";
  }
  return "?";
}

std::string FormatAssertion(const ast::Assertion& assertion) {
  std::string text = "TESLA_ASSERT(";
  text += assertion.context == Context::kGlobal ? "global" : "perthread";
  text += ", ";
  text += (assertion.start.is_call ? "call(" : "returnfrom(") + assertion.start.function + ")";
  text += ", ";
  text += (assertion.end.is_call ? "call(" : "returnfrom(") + assertion.end.function + ")";
  text += ", ";
  text += FormatExpr(*assertion.expr);
  return text + ")";
}

}  // namespace tesla::parser
