#include "parser/lexer.h"

#include <cctype>

namespace tesla::parser {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;

  auto push = [&](TokenKind kind, std::string text, int64_t value = 0) {
    tokens.push_back(Token{kind, std::move(text), value, line, column});
  };

  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      line++;
      column = 1;
      i++;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      column++;
      continue;
    }
    // Line comments, tolerated so assertions can be annotated in .tesla files.
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') {
        i++;
      }
      continue;
    }

    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < source.size() && IsIdentBody(source[i])) {
        i++;
      }
      std::string text(source.substr(start, i - start));
      push(TokenKind::kIdentifier, std::move(text));
      column += static_cast<int>(i - start);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < source.size() &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t start = i;
      if (c == '-') {
        i++;
      }
      int base = 10;
      if (i + 1 < source.size() && source[i] == '0' &&
          (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        base = 16;
        i += 2;
      }
      size_t digits_start = i;
      while (i < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[i])) ||
              (base == 16 && std::isxdigit(static_cast<unsigned char>(source[i]))))) {
        i++;
      }
      if (digits_start == i) {
        return Error{"malformed integer literal", line, column};
      }
      std::string text(source.substr(start, i - start));
      int64_t value = std::strtoll(text.c_str(), nullptr, 0);
      push(TokenKind::kInteger, std::move(text), value);
      column += static_cast<int>(i - start);
      continue;
    }

    auto two = [&](char second) {
      return i + 1 < source.size() && source[i + 1] == second;
    };

    switch (c) {
      case '(':
        push(TokenKind::kLeftParen, "(");
        i++;
        column++;
        break;
      case ')':
        push(TokenKind::kRightParen, ")");
        i++;
        column++;
        break;
      case ',':
        push(TokenKind::kComma, ",");
        i++;
        column++;
        break;
      case '.':
        push(TokenKind::kDot, ".");
        i++;
        column++;
        break;
      case '=':
        if (two('=')) {
          push(TokenKind::kEqualEqual, "==");
          i += 2;
          column += 2;
        } else {
          push(TokenKind::kEqual, "=");
          i++;
          column++;
        }
        break;
      case '+':
        if (two('=')) {
          push(TokenKind::kPlusEqual, "+=");
          i += 2;
          column += 2;
        } else if (two('+')) {
          push(TokenKind::kPlusPlus, "++");
          i += 2;
          column += 2;
        } else {
          return Error{"unexpected '+'", line, column};
        }
        break;
      case '-':
        if (two('=')) {
          push(TokenKind::kMinusEqual, "-=");
          i += 2;
          column += 2;
        } else if (two('-')) {
          push(TokenKind::kMinusMinus, "--");
          i += 2;
          column += 2;
        } else {
          return Error{"unexpected '-'", line, column};
        }
        break;
      case '|':
        if (two('|')) {
          push(TokenKind::kPipePipe, "||");
          i += 2;
          column += 2;
        } else {
          push(TokenKind::kPipe, "|");
          i++;
          column++;
        }
        break;
      case '^':
        push(TokenKind::kCaret, "^");
        i++;
        column++;
        break;
      case '&':
        push(TokenKind::kAmpersand, "&");
        i++;
        column++;
        break;
      default:
        return Error{std::string("unexpected character '") + c + "'", line, column};
    }
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = column;
  tokens.push_back(end);
  return tokens;
}

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kLeftParen:
      return "'('";
    case TokenKind::kRightParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kEqualEqual:
      return "'=='";
    case TokenKind::kEqual:
      return "'='";
    case TokenKind::kPlusEqual:
      return "'+='";
    case TokenKind::kMinusEqual:
      return "'-='";
    case TokenKind::kPlusPlus:
      return "'++'";
    case TokenKind::kMinusMinus:
      return "'--'";
    case TokenKind::kPipePipe:
      return "'||'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kCaret:
      return "'^'";
    case TokenKind::kAmpersand:
      return "'&'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

}  // namespace tesla::parser
