// Tokeniser for the TESLA assertion language.
#ifndef TESLA_PARSER_LEXER_H_
#define TESLA_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/result.h"

namespace tesla::parser {

enum class TokenKind {
  kIdentifier,
  kInteger,
  kLeftParen,
  kRightParen,
  kComma,
  kDot,
  kEqualEqual,   // ==
  kEqual,        // =
  kPlusEqual,    // +=
  kMinusEqual,   // -=
  kPlusPlus,     // ++
  kMinusMinus,   // --
  kPipePipe,     // ||
  kPipe,         // |  (flag separator)
  kCaret,        // ^
  kAmpersand,    // &
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t integer = 0;
  int line = 1;
  int column = 1;
};

// Tokenises `source`; the final token is always kEnd.
Result<std::vector<Token>> Tokenize(std::string_view source);

const char* TokenKindName(TokenKind kind);

}  // namespace tesla::parser

#endif  // TESLA_PARSER_LEXER_H_
