// objsim/trace: TESLA instrumentation for the AppKit layer.
//
// Reproduces fig. 8's tracing assertion: within each run-loop iteration,
// some (or none) of the ~110 instrumented methods may be called:
//
//   TESLA_WITHIN(startDrawing, previously(ATLEAST(0,
//       [ANY(id) push], [ANY(id) pop], ... )));
//
// Installing GuiTesla wires the runtime's interposition table (paper §4.3)
// so every message send feeds the automaton; a custom handler records the
// event trace used to diagnose the cursor push/pop bug (§3.5.3).
#ifndef TESLA_OBJSIM_TRACE_H_
#define TESLA_OBJSIM_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "automata/manifest.h"
#include "objsim/appkit.h"
#include "runtime/runtime.h"
#include "support/result.h"

namespace tesla::objsim {

inline constexpr const char* kGuiTraceAssertion = "gui.trace";

// Builds the fig. 8 manifest for `app`'s instrumented selectors.
Result<automata::Manifest> GuiManifest(const AppKit& app);

// One recorded method event.
struct TraceEvent {
  std::string selector;
  uint64_t receiver = 0;
  uint64_t iteration = 0;
};

class GuiTesla {
 public:
  // Registers the manifest with `rt` and interposes every instrumented
  // selector; also binds the run-loop bound events and the assertion site.
  static Result<std::unique_ptr<GuiTesla>> Install(runtime::Runtime& rt,
                                                   runtime::ThreadContext& ctx, AppKit& app);

  // Trace inspection (the "custom handler code" of §3.5.3).
  const std::vector<TraceEvent>& trace() const { return trace_; }
  void EnableTraceRecording(bool enabled) { record_trace_ = enabled; }

  // Cursor-balance diagnosis: pushes minus pops per iteration.
  std::map<uint64_t, int64_t> CursorImbalanceByIteration() const;

  // §3.5.3's optimisation-opportunity analysis: "applications often save and
  // restore the graphics state (a comparatively expensive operation), when
  // the only aspects of the state that are changed in between are the
  // current drawing location and the colour." Counts save/restore pairs
  // whose intervening operations touch only colour/position state, i.e.
  // pairs a smarter cell protocol could elide.
  struct SaveRestoreProfile {
    uint64_t total_pairs = 0;
    uint64_t elidable_pairs = 0;
  };
  SaveRestoreProfile AnalyseSaveRestorePairs() const;

  uint64_t total_events() const { return total_events_; }

 private:
  GuiTesla(runtime::Runtime& rt, runtime::ThreadContext& ctx, AppKit& app)
      : rt_(rt), ctx_(ctx), app_(app) {}

  void InterposeAll();

  runtime::Runtime& rt_;
  runtime::ThreadContext& ctx_;
  AppKit& app_;
  int automaton_id_ = -1;
  bool record_trace_ = false;
  std::vector<TraceEvent> trace_;
  uint64_t total_events_ = 0;
  uint64_t iteration_ = 0;
};

}  // namespace tesla::objsim

#endif  // TESLA_OBJSIM_TRACE_H_
