#include "objsim/objc.h"

#include <cassert>

namespace tesla::objsim {

ObjcClass* ObjcRuntime::DefineClass(const std::string& name, ObjcClass* super) {
  auto cls = std::make_unique<ObjcClass>();
  cls->name = name;
  cls->super = super;
  classes_.push_back(std::move(cls));
  return classes_.back().get();
}

void ObjcRuntime::AddMethod(ObjcClass* cls, const std::string& selector, Imp imp) {
  cls->methods[InternString(selector)] = std::move(imp);
}

void ObjcRuntime::Interpose(const std::string& selector, InterpositionHook hook) {
  interpositions_[InternString(selector)] = std::move(hook);
}

const Imp* ObjcRuntime::Resolve(ObjcClass* cls, Selector selector) const {
  for (ObjcClass* c = cls; c != nullptr; c = c->super) {
    auto it = c->methods.find(selector);
    if (it != c->methods.end()) {
      return &it->second;
    }
  }
  return nullptr;
}

int64_t ObjcRuntime::MsgSend(ObjcObject* receiver, Selector selector,
                             std::span<const int64_t> args) {
  messages_sent_++;
  assert(receiver != nullptr);
  const Imp* imp = Resolve(receiver->isa, selector);
  if (imp == nullptr) {
    return 0;  // unrecognised selector: nil-like behaviour
  }

  if (mode_ == TraceMode::kRelease) {
    // Tracing support not compiled in: straight dispatch.
    return (*imp)(*this, receiver, args);
  }

  // Tracing-capable runtime: consult the global interposition table
  // (paper §4.3). In kTracingCompiled mode the table is empty, so this is
  // the cost of the lookup alone.
  auto hook = interpositions_.find(selector);
  if (hook == interpositions_.end()) {
    return (*imp)(*this, receiver, args);
  }
  if (hook->second.pre) {
    hook->second.pre(receiver, selector, args);
  }
  int64_t result = (*imp)(*this, receiver, args);
  if (hook->second.want_return && hook->second.post) {
    hook->second.post(receiver, selector, args, result);
  }
  return result;
}

int64_t ObjcRuntime::MsgSend(ObjcObject* receiver, const std::string& selector,
                             std::initializer_list<int64_t> args) {
  return MsgSend(receiver, InternString(selector),
                 std::span<const int64_t>(args.begin(), args.size()));
}

}  // namespace tesla::objsim
