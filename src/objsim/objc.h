// objsim/objc: a miniature Objective-C-style runtime.
//
// Reproduces the dynamic-dispatch substrate of paper §4.3: method calls are
// message sends resolved at run time (so no static callee is known), and the
// runtime offers the interposition mechanism the authors added to the
// GNUstep Objective-C runtime: "Before calling any method, the runtime
// consults a global table of interposition hooks" — which is how TESLA gets
// callee-side instrumentation without source access.
//
// Fig. 14a's four measurement modes map onto TraceMode:
//   kRelease         tracing support not compiled in (fast dispatch path)
//   kTracingCompiled tracing support compiled in but unused (empty table)
//   kInterposed      a trivial interposition function on the message send
//   kTesla           interposition forwards events to a TESLA automaton
#ifndef TESLA_OBJSIM_OBJC_H_
#define TESLA_OBJSIM_OBJC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/intern.h"

namespace tesla::objsim {

class ObjcRuntime;
struct ObjcObject;

// A selector is an interned name ("pushCursor:", "drawWithFrame:inView:").
using Selector = Symbol;

using Imp = std::function<int64_t(ObjcRuntime&, ObjcObject*, std::span<const int64_t>)>;

struct ObjcClass {
  std::string name;
  ObjcClass* super = nullptr;
  std::unordered_map<Selector, Imp> methods;
};

struct ObjcObject {
  ObjcClass* isa = nullptr;
  uint64_t id = 0;
  virtual ~ObjcObject() = default;
};

enum class TraceMode {
  kRelease,
  kTracingCompiled,
  kInterposed,
  kTesla,
};

// An interposition hook: pre fires before the method body; post fires after,
// with the return value, but only for selectors registered with
// `want_return` (fig. 8's "methods listed at the end are those that we
// wanted to get extra events on method return").
struct InterpositionHook {
  std::function<void(ObjcObject*, Selector, std::span<const int64_t>)> pre;
  std::function<void(ObjcObject*, Selector, std::span<const int64_t>, int64_t)> post;
  bool want_return = false;
};

class ObjcRuntime {
 public:
  explicit ObjcRuntime(TraceMode mode = TraceMode::kRelease) : mode_(mode) {}

  ObjcClass* DefineClass(const std::string& name, ObjcClass* super = nullptr);
  void AddMethod(ObjcClass* cls, const std::string& selector, Imp imp);

  template <typename T, typename... Args>
  T* CreateObject(ObjcClass* cls, Args&&... args) {
    auto object = std::make_unique<T>(std::forward<Args>(args)...);
    object->isa = cls;
    object->id = next_object_id_++;
    T* raw = object.get();
    objects_.push_back(std::move(object));
    return raw;
  }

  // Registers an interposition hook for one selector (paper §4.3's global
  // table). Only consulted in kInterposed / kTesla modes.
  void Interpose(const std::string& selector, InterpositionHook hook);
  void ClearInterpositions() { interpositions_.clear(); }

  // objc_msgSend: resolves `selector` against the receiver's class chain and
  // invokes it, consulting the interposition table per the trace mode.
  int64_t MsgSend(ObjcObject* receiver, Selector selector, std::span<const int64_t> args);
  int64_t MsgSend(ObjcObject* receiver, const std::string& selector,
                  std::initializer_list<int64_t> args = {});

  TraceMode mode() const { return mode_; }
  void set_mode(TraceMode mode) { mode_ = mode; }
  uint64_t messages_sent() const { return messages_sent_; }

 private:
  const Imp* Resolve(ObjcClass* cls, Selector selector) const;

  TraceMode mode_;
  std::vector<std::unique_ptr<ObjcClass>> classes_;
  std::vector<std::unique_ptr<ObjcObject>> objects_;
  std::unordered_map<Selector, InterpositionHook> interpositions_;
  uint64_t next_object_id_ = 1;
  uint64_t messages_sent_ = 0;
};

}  // namespace tesla::objsim

#endif  // TESLA_OBJSIM_OBJC_H_
