#include "objsim/trace.h"

#include <set>

#include "automata/lower.h"

namespace tesla::objsim {

Result<automata::Manifest> GuiManifest(const AppKit& app) {
  // TESLA_ASSERT(perthread, call(beginIteration), returnfrom(endIteration),
  //              previously(ATLEAST(0, sel1(), sel2(), ...)))
  std::string text =
      "TESLA_ASSERT(perthread, call(beginIteration), returnfrom(endIteration), "
      "previously(ATLEAST(0";
  for (const std::string& selector : app.InstrumentedSelectors()) {
    text += ", " + selector + "()";
  }
  text += ")))";

  auto automaton = automata::CompileAssertion(text, {}, kGuiTraceAssertion);
  if (!automaton.ok()) {
    return automaton.error();
  }
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  return manifest;
}

Result<std::unique_ptr<GuiTesla>> GuiTesla::Install(runtime::Runtime& rt,
                                                    runtime::ThreadContext& ctx, AppKit& app) {
  auto manifest = GuiManifest(app);
  if (!manifest.ok()) {
    return manifest.error();
  }
  auto status = rt.Register(manifest.value());
  if (!status.ok()) {
    return status.error();
  }
  std::unique_ptr<GuiTesla> tesla(new GuiTesla(rt, ctx, app));
  tesla->automaton_id_ = rt.FindAutomaton(kGuiTraceAssertion);
  tesla->InterposeAll();
  return tesla;
}

void GuiTesla::InterposeAll() {
  GuiTesla* self = this;

  // Every instrumented selector becomes a TESLA function-call event.
  for (const std::string& selector : app_.InstrumentedSelectors()) {
    Symbol symbol = InternString(selector);
    InterpositionHook hook;
    hook.pre = [self, symbol, selector](ObjcObject* receiver, Selector,
                                        std::span<const int64_t> args) {
      self->total_events_++;
      int64_t extended[9];
      extended[0] = static_cast<int64_t>(receiver->id);
      size_t count = args.size() < 8 ? args.size() : 8;
      for (size_t i = 0; i < count; i++) {
        extended[i + 1] = args[i];
      }
      self->rt_.OnEvent(self->ctx_, runtime::Event::Call(
                                        symbol, std::span<const int64_t>(extended, count + 1)));
      if (self->record_trace_) {
        self->trace_.push_back(TraceEvent{selector, receiver->id, self->iteration_});
      }
    };
    app_.runtime().Interpose(selector, std::move(hook));
  }

  // The run-loop bound: call(beginIteration) / returnfrom(endIteration).
  {
    InterpositionHook begin;
    begin.pre = [self](ObjcObject*, Selector, std::span<const int64_t>) {
      self->iteration_++;
      self->rt_.OnEvent(self->ctx_, runtime::Event::Call(InternString("beginIteration"), {}));
    };
    app_.runtime().Interpose("beginIteration", std::move(begin));

    InterpositionHook end;
    end.want_return = true;
    end.post = [self](ObjcObject*, Selector, std::span<const int64_t>, int64_t result) {
      self->rt_.OnEvent(self->ctx_,
                        runtime::Event::Return(InternString("endIteration"), {}, result));
    };
    app_.runtime().Interpose("endIteration", std::move(end));
  }

  // The assertion site fires at the end of each iteration.
  app_.iteration_site = [self]() {
    if (self->automaton_id_ >= 0) {
      self->rt_.OnEvent(self->ctx_,
                        runtime::Event::Site(static_cast<uint32_t>(self->automaton_id_), {}));
    }
  };
}

GuiTesla::SaveRestoreProfile GuiTesla::AnalyseSaveRestorePairs() const {
  SaveRestoreProfile profile;
  // Walk the trace; on each save, start tracking; on the matching restore,
  // classify the pair. Only colour/position mutations between the two make
  // the restore redundant.
  static const std::set<std::string> kCheap = {"setColor", "moveTo", "lineTo", "strokeLine",
                                               "drawWithFrame_inView"};
  std::vector<bool> only_cheap_stack;
  for (const TraceEvent& event : trace_) {
    if (event.selector == "saveGraphicsState") {
      only_cheap_stack.push_back(true);
      continue;
    }
    if (event.selector == "restoreGraphicsState") {
      if (!only_cheap_stack.empty()) {
        profile.total_pairs++;
        if (only_cheap_stack.back()) {
          profile.elidable_pairs++;
        }
        only_cheap_stack.pop_back();
      }
      continue;
    }
    if (!only_cheap_stack.empty() && kCheap.count(event.selector) == 0) {
      only_cheap_stack.back() = false;
    }
  }
  return profile;
}

std::map<uint64_t, int64_t> GuiTesla::CursorImbalanceByIteration() const {
  std::map<uint64_t, int64_t> imbalance;
  for (const TraceEvent& event : trace_) {
    if (event.selector == "push") {
      imbalance[event.iteration]++;
    } else if (event.selector == "pop") {
      imbalance[event.iteration]--;
    }
  }
  return imbalance;
}

}  // namespace tesla::objsim
