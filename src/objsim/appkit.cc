#include "objsim/appkit.h"

namespace tesla::objsim {
namespace {

// Small deterministic work unit standing in for rasterisation.
int64_t DrawWork(int64_t seed) {
  int64_t x = seed | 1;
  for (int i = 0; i < 8; i++) {
    x = x * 6364136223846793005ll + 1442695040888963407ll;
  }
  return x;
}

}  // namespace

AppKit::AppKit(ObjcRuntime& runtime, AppKitConfig config)
    : runtime_(runtime), config_(config) {
  context_class_ = runtime_.DefineClass("NSGraphicsContext");
  cursor_class_ = runtime_.DefineClass("NSCursor");
  view_class_ = runtime_.DefineClass("NSView");
  cell_class_ = runtime_.DefineClass("NSCell");
  runloop_class_ = runtime_.DefineClass("NSRunLoop");

  // --- graphics context methods ---
  runtime_.AddMethod(context_class_, "saveGraphicsState",
                     [](ObjcRuntime&, ObjcObject* self, std::span<const int64_t>) {
                       auto* gc = static_cast<GraphicsContext*>(self);
                       gc->stack.push_back(gc->stack.back());
                       gc->save_count++;
                       gc->ops += 4;  // save is comparatively expensive (§3.5.3)
                       return int64_t{0};
                     });
  runtime_.AddMethod(context_class_, "restoreGraphicsState",
                     [](ObjcRuntime&, ObjcObject* self, std::span<const int64_t>) {
                       auto* gc = static_cast<GraphicsContext*>(self);
                       if (gc->stack.size() > 1) {
                         gc->stack.pop_back();
                       }
                       gc->restore_count++;
                       gc->ops += 4;
                       return int64_t{0};
                     });
  // Non-LIFO restore: restore directly to stack depth args[0].
  runtime_.AddMethod(context_class_, "restoreGraphicsStateToDepth",
                     [this](ObjcRuntime&, ObjcObject* self, std::span<const int64_t> args) {
                       auto* gc = static_cast<GraphicsContext*>(self);
                       size_t depth = args.empty() ? 1 : static_cast<size_t>(args[0]);
                       if (depth < 1 || depth > gc->stack.size()) {
                         return int64_t{-1};
                       }
                       if (config_.backend_non_lifo_bug && depth != gc->stack.size() - 1) {
                         // §3.5.3's second bug: the new back end cannot save
                         // and restore graphics states in non-LIFO order.
                         gc->non_lifo_failures++;
                         return int64_t{-1};
                       }
                       gc->stack.resize(depth);
                       gc->restore_count++;
                       return int64_t{0};
                     });
  auto simple_op = [](int64_t cost) {
    return [cost](ObjcRuntime&, ObjcObject* self, std::span<const int64_t> args) {
      auto* gc = static_cast<GraphicsContext*>(self);
      gc->ops += static_cast<uint64_t>(cost);
      return DrawWork(static_cast<int64_t>(gc->ops) + (args.empty() ? 0 : args[0]));
    };
  };
  runtime_.AddMethod(context_class_, "setColor",
                     [](ObjcRuntime&, ObjcObject* self, std::span<const int64_t> args) {
                       auto* gc = static_cast<GraphicsContext*>(self);
                       gc->stack.back().color = args.empty() ? 0 : args[0];
                       gc->ops++;
                       return int64_t{0};
                     });
  runtime_.AddMethod(context_class_, "setTransform",
                     [](ObjcRuntime&, ObjcObject* self, std::span<const int64_t> args) {
                       auto* gc = static_cast<GraphicsContext*>(self);
                       gc->stack.back().transform = args.empty() ? 1 : args[0];
                       gc->ops++;
                       return int64_t{0};
                     });
  runtime_.AddMethod(context_class_, "moveTo",
                     [](ObjcRuntime&, ObjcObject* self, std::span<const int64_t> args) {
                       auto* gc = static_cast<GraphicsContext*>(self);
                       if (args.size() >= 2) {
                         gc->stack.back().position_x = args[0];
                         gc->stack.back().position_y = args[1];
                       }
                       gc->ops++;
                       return int64_t{0};
                     });
  runtime_.AddMethod(context_class_, "lineTo", simple_op(1));
  runtime_.AddMethod(context_class_, "strokeLine", simple_op(2));
  runtime_.AddMethod(context_class_, "fillRect", simple_op(3));

  // --- cursor methods ---
  runtime_.AddMethod(cursor_class_, "push",
                     [this](ObjcRuntime&, ObjcObject* self, std::span<const int64_t>) {
                       cursor_stack_.push_back(static_cast<Cursor*>(self));
                       cursor_pushes_++;
                       return int64_t{0};
                     });
  runtime_.AddMethod(cursor_class_, "pop",
                     [this](ObjcRuntime&, ObjcObject*, std::span<const int64_t>) {
                       if (!cursor_stack_.empty()) {
                         cursor_stack_.pop_back();
                       }
                       cursor_pops_++;
                       return int64_t{0};
                     });
  runtime_.AddMethod(cursor_class_, "set",
                     [](ObjcRuntime&, ObjcObject*, std::span<const int64_t>) {
                       return int64_t{0};
                     });

  // --- view methods ---
  runtime_.AddMethod(view_class_, "mouseEntered",
                     [this](ObjcRuntime& rt, ObjcObject* self, std::span<const int64_t>) {
                       auto* view = static_cast<View*>(self);
                       view->mouse_inside = true;
                       if (view->cursor != nullptr) {
                         rt.MsgSend(view->cursor, "push");
                       }
                       return int64_t{0};
                     });
  runtime_.AddMethod(view_class_, "mouseExited",
                     [this](ObjcRuntime& rt, ObjcObject* self, std::span<const int64_t>) {
                       auto* view = static_cast<View*>(self);
                       view->mouse_inside = false;
                       if (view->cursor != nullptr) {
                         rt.MsgSend(view->cursor, "pop");
                       }
                       return int64_t{0};
                     });
  runtime_.AddMethod(view_class_, "setNeedsDisplay",
                     [](ObjcRuntime&, ObjcObject* self, std::span<const int64_t>) {
                       static_cast<View*>(self)->needs_display = true;
                       return int64_t{0};
                     });
  runtime_.AddMethod(
      view_class_, "drawRect",
      [this](ObjcRuntime& rt, ObjcObject* self, std::span<const int64_t>) {
        auto* view = static_cast<View*>(self);
        rt.MsgSend(context_, "saveGraphicsState");
        // Views delegate drawing to cells (§3.5.3): "many views delegate
        // drawing to 'cells' ... provided by another object".
        for (Cell* cell : view->cells) {
          rt.MsgSend(cell, "drawWithFrame_inView", {static_cast<int64_t>(view->id)});
        }
        rt.MsgSend(context_, "restoreGraphicsState");
        view->needs_display = false;
        return int64_t{0};
      });
  runtime_.AddMethod(view_class_, "addTrackingRect",
                     [](ObjcRuntime&, ObjcObject* self, std::span<const int64_t> args) {
                       auto* view = static_cast<View*>(self);
                       if (args.size() >= 4) {
                         view->tracking_rect = Rect{args[0], args[1], args[2], args[3]};
                         view->has_tracking_rect = true;
                       }
                       return int64_t{0};
                     });
  runtime_.AddMethod(view_class_, "removeTrackingRect",
                     [](ObjcRuntime&, ObjcObject* self, std::span<const int64_t>) {
                       static_cast<View*>(self)->has_tracking_rect = false;
                       return int64_t{0};
                     });

  // --- cell methods ---
  runtime_.AddMethod(
      cell_class_, "drawWithFrame_inView",
      [this](ObjcRuntime& rt, ObjcObject* self, std::span<const int64_t> args) {
        auto* cell = static_cast<Cell*>(self);
        cell->draws++;
        // Each cell explicitly sets colour and position, then strokes — the
        // traffic pattern whose save/restore redundancy §3.5.3 observes.
        rt.MsgSend(context_, "setColor", {cell->color});
        rt.MsgSend(context_, "moveTo", {static_cast<int64_t>(cell->id), 0});
        rt.MsgSend(context_, "lineTo", {static_cast<int64_t>(cell->id), 8});
        rt.MsgSend(context_, "strokeLine");
        // A rotating sample of auxiliary methods pads realistic traffic.
        if (!filler_selectors_.empty()) {
          for (int i = 0; i < 3; i++) {
            const std::string& selector =
                filler_selectors_[(cell->draws + i) % filler_selectors_.size()];
            rt.MsgSend(cell, selector, {static_cast<int64_t>(cell->state)});
          }
        }
        return int64_t{0};
      });
  runtime_.AddMethod(cell_class_, "setState",
                     [](ObjcRuntime&, ObjcObject* self, std::span<const int64_t> args) {
                       static_cast<Cell*>(self)->state = args.empty() ? 0 : args[0];
                       return int64_t{0};
                     });
  runtime_.AddMethod(cell_class_, "highlight",
                     [](ObjcRuntime&, ObjcObject* self, std::span<const int64_t>) {
                       static_cast<Cell*>(self)->color ^= 1;
                       return int64_t{0};
                     });

  // Filler methods: the bulk of the ~110 selectors fig. 8 instruments.
  for (int i = 0; i < config_.filler_method_count; i++) {
    std::string selector = "cellOp" + std::to_string(i);
    filler_selectors_.push_back(selector);
    runtime_.AddMethod(cell_class_, selector,
                       [](ObjcRuntime&, ObjcObject* self, std::span<const int64_t> args) {
                         auto* cell = static_cast<Cell*>(self);
                         return DrawWork(cell->state + (args.empty() ? 0 : args[0]));
                       });
  }

  // --- run loop ---
  runtime_.AddMethod(runloop_class_, "beginIteration",
                     [](ObjcRuntime&, ObjcObject* self, std::span<const int64_t>) {
                       static_cast<RunLoopObj*>(self)->iterations++;
                       return int64_t{0};
                     });
  runtime_.AddMethod(runloop_class_, "endIteration",
                     [](ObjcRuntime&, ObjcObject*, std::span<const int64_t>) {
                       return int64_t{0};
                     });

  // --- object graph ---
  context_ = runtime_.CreateObject<GraphicsContext>(context_class_);
  run_loop_ = runtime_.CreateObject<RunLoopObj>(runloop_class_);
  for (int v = 0; v < config_.view_count; v++) {
    View* view = runtime_.CreateObject<View>(view_class_);
    view->frame = Rect{v * 100, 0, 100, 100};
    Cursor* cursor = runtime_.CreateObject<Cursor>(cursor_class_);
    cursor->shape = v;
    cursors_.push_back(cursor);
    view->cursor = cursor;
    runtime_.MsgSend(view, "addTrackingRect", {v * 100, 0, 100, 100});
    for (int c = 0; c < config_.cells_per_view; c++) {
      Cell* cell = runtime_.CreateObject<Cell>(cell_class_);
      cell->color = c;
      view->cells.push_back(cell);
    }
    views_.push_back(view);
  }
}

std::vector<std::string> AppKit::InstrumentedSelectors() const {
  std::vector<std::string> selectors = {
      "saveGraphicsState", "restoreGraphicsState", "restoreGraphicsStateToDepth",
      "setColor",          "setTransform",         "moveTo",
      "lineTo",            "strokeLine",           "fillRect",
      "push",              "pop",                  "set",
      "mouseEntered",      "mouseExited",          "setNeedsDisplay",
      "drawRect",          "addTrackingRect",      "removeTrackingRect",
      "drawWithFrame_inView", "setState",          "highlight",
  };
  selectors.insert(selectors.end(), filler_selectors_.begin(), filler_selectors_.end());
  return selectors;
}

void AppKit::DeliverEvent(const UiEvent& event) {
  switch (event.kind) {
    case UiEvent::Kind::kMouseMove: {
      for (View* view : views_) {
        bool inside = view->has_tracking_rect && view->tracking_rect.Contains(event.x, event.y);
        if (inside && !view->mouse_inside) {
          crossings_++;
          runtime_.MsgSend(view, "mouseEntered");
        } else if (!inside && view->mouse_inside) {
          // §3.5.3: "events invalidating cursor tracking rectangles were
          // being delivered after events that inspected those rectangles" —
          // with the bug, every third exit notification is lost.
          if (config_.cursor_unbalanced_bug && crossings_ % 3 == 0) {
            view->mouse_inside = false;  // the view loses track silently
          } else {
            runtime_.MsgSend(view, "mouseExited");
          }
        }
      }
      break;
    }
    case UiEvent::Kind::kClick: {
      for (View* view : views_) {
        if (view->frame.Contains(event.x, event.y)) {
          runtime_.MsgSend(view, "setNeedsDisplay");
        }
      }
      break;
    }
    case UiEvent::Kind::kExposePartial: {
      size_t dirty = 0;
      for (View* view : views_) {
        if (view->frame.Contains(event.x, event.y) ||
            view->frame.Contains(event.x + 100, event.y)) {
          runtime_.MsgSend(view, "setNeedsDisplay");
          if (++dirty == 2) {
            break;
          }
        }
      }
      break;
    }
    case UiEvent::Kind::kExposeFull: {
      for (View* view : views_) {
        runtime_.MsgSend(view, "setNeedsDisplay");
      }
      break;
    }
  }
}

void AppKit::RedrawDirtyViews() {
  for (View* view : views_) {
    if (view->needs_display) {
      runtime_.MsgSend(view, "drawRect");
    }
  }
}

uint64_t AppKit::RunLoopIteration(std::span<const UiEvent> events) {
  uint64_t ops_before = context_->ops;
  runtime_.MsgSend(run_loop_, "beginIteration");
  for (const UiEvent& event : events) {
    DeliverEvent(event);
  }
  RedrawDirtyViews();
  if (iteration_site) {
    iteration_site();
  }
  runtime_.MsgSend(run_loop_, "endIteration");
  return context_->ops - ops_before;
}

}  // namespace tesla::objsim
