// objsim/appkit: a miniature AppKit-like GUI layer on the objsim runtime.
//
// Models the GNUstep subsystems of paper §2.3/§3.5.3: views that delegate
// drawing to cells, a graphics-state stack whose save/restore is "a
// comparatively expensive operation", a cursor stack driven by
// mouse-entered/mouse-exited events over tracking rectangles, and a run loop
// whose iterations bound the fig. 8 tracing assertion.
//
// The cursor push/pop bug (reported on the GNUstep lists in June 2013) is
// injectable: with the bug enabled, tracking-rectangle invalidation is
// delivered after events that inspected those rectangles, so some
// mouse-entered events are not paired with mouse-exited events and the same
// cursor is pushed repeatedly.
#ifndef TESLA_OBJSIM_APPKIT_H_
#define TESLA_OBJSIM_APPKIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "objsim/objc.h"

namespace tesla::objsim {

struct Rect {
  int64_t x = 0;
  int64_t y = 0;
  int64_t width = 0;
  int64_t height = 0;

  bool Contains(int64_t px, int64_t py) const {
    return px >= x && px < x + width && py >= y && py < y + height;
  }
};

// One saved graphics state (colour, transform, current point).
struct GState {
  int64_t color = 0;
  int64_t transform = 1;
  int64_t position_x = 0;
  int64_t position_y = 0;
};

struct GraphicsContext : ObjcObject {
  std::vector<GState> stack{GState{}};
  uint64_t save_count = 0;
  uint64_t restore_count = 0;
  uint64_t ops = 0;  // drawing operations issued
  // Non-LIFO restore support (the second GNUstep bug was a back end unable
  // to restore states in non-LIFO order).
  bool backend_supports_non_lifo = true;
  uint64_t non_lifo_failures = 0;
};

struct Cursor : ObjcObject {
  int64_t shape = 0;
};

struct Cell;

struct View : ObjcObject {
  Rect frame;
  std::vector<View*> subviews;
  std::vector<Cell*> cells;
  Rect tracking_rect;
  bool has_tracking_rect = false;
  Cursor* cursor = nullptr;
  bool needs_display = true;
  bool mouse_inside = false;
};

struct Cell : ObjcObject {
  int64_t state = 0;
  int64_t color = 1;
  uint64_t draws = 0;
};

struct RunLoopObj : ObjcObject {
  uint64_t iterations = 0;
};

// A replayable input event (the GNU Xnee analogue of §5.3.1).
struct UiEvent {
  enum class Kind { kMouseMove, kClick, kExposePartial, kExposeFull };
  Kind kind = Kind::kMouseMove;
  int64_t x = 0;
  int64_t y = 0;
};

struct AppKitConfig {
  bool cursor_unbalanced_bug = false;  // §3.5.3 bug 1
  bool backend_non_lifo_bug = false;   // §3.5.3 bug 2
  int filler_method_count = 80;        // pads the instrumented surface to ~110
  int cells_per_view = 4;
  int view_count = 12;
};

// Assembled application: run loop + window of views + cursor machinery.
class AppKit {
 public:
  AppKit(ObjcRuntime& runtime, AppKitConfig config);

  // Runs one run-loop iteration delivering `events`; returns the number of
  // drawing operations performed (proxy for redraw work). All activity flows
  // through MsgSend, so interposition sees every method.
  uint64_t RunLoopIteration(std::span<const UiEvent> events);

  ObjcRuntime& runtime() { return runtime_; }
  GraphicsContext* context() { return context_; }
  RunLoopObj* run_loop() { return run_loop_; }
  const std::vector<View*>& views() const { return views_; }

  size_t cursor_stack_depth() const { return cursor_stack_.size(); }
  uint64_t cursor_pushes() const { return cursor_pushes_; }
  uint64_t cursor_pops() const { return cursor_pops_; }

  // Every selector the fig. 8 assertion instruments (~110 methods).
  std::vector<std::string> InstrumentedSelectors() const;

  // Called at the end of each run-loop iteration when TESLA tracing is
  // attached (the fig. 8 assertion site).
  std::function<void()> iteration_site;

 private:
  friend struct AppKitMethods;

  void DeliverEvent(const UiEvent& event);
  void RedrawDirtyViews();

  ObjcRuntime& runtime_;
  AppKitConfig config_;
  ObjcClass* view_class_ = nullptr;
  ObjcClass* cell_class_ = nullptr;
  ObjcClass* context_class_ = nullptr;
  ObjcClass* cursor_class_ = nullptr;
  ObjcClass* runloop_class_ = nullptr;

  GraphicsContext* context_ = nullptr;
  RunLoopObj* run_loop_ = nullptr;
  std::vector<View*> views_;
  std::vector<Cursor*> cursors_;
  std::vector<Cursor*> cursor_stack_;
  uint64_t cursor_pushes_ = 0;
  uint64_t cursor_pops_ = 0;
  int crossings_ = 0;
  std::vector<std::string> filler_selectors_;
};

}  // namespace tesla::objsim

#endif  // TESLA_OBJSIM_APPKIT_H_
