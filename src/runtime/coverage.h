// Logical coverage reporting (paper §4.4.2): "This allows the programmer to
// visually inspect the portions of the state graph that are executed in
// practice, as well as their relative frequencies. This visibility can be
// used ... like traditional code coverage analysis but at a logical rather
// than source-line or machine-instruction level."
//
// CoverageReport combines a CountingHandler's observations with the
// automaton's static structure: which transitions of the (determinised)
// state graph ever fired, how often, and which were never exercised.
#ifndef TESLA_RUNTIME_COVERAGE_H_
#define TESLA_RUNTIME_COVERAGE_H_

#include <string>
#include <vector>

#include "automata/determinize.h"
#include "automata/dot.h"
#include "metrics/collector.h"
#include "runtime/handler.h"
#include "runtime/runtime.h"

namespace tesla::runtime {

// --- tier-independent transition stamping ---
//
// Every stepping tier (runtime/step.h) and the «init» path stamp taken
// transitions through this one helper, so the coverage bitmap is
// bit-identical whichever tier stepped the instance — the invariant the
// step-tier differential test pins down. The bit layout is the class's
// dense (dfa_state × symbol) grid installed by Runtime::CompilePlan():
// bit = cov_first + dfa_state * cov_symbols + symbol. NFA-mode tiers stamp
// via the mirrored dfa_flat state, and a multi-symbol union with no
// single-symbol DFA edge stamps nothing — coverage may undercount, never
// misattribute. After warmup the stamp is one relaxed load (the bit is
// already set; see metrics::Collector::StampCoverage).
inline void StampTransition(metrics::Collector* collector, uint32_t cov_first,
                            uint32_t cov_symbols, uint32_t dfa_state, uint16_t symbol) {
  collector->StampCoverage(cov_first + dfa_state * cov_symbols + symbol);
}

struct TransitionCoverage {
  uint32_t from_state = 0;    // DFA state index
  uint16_t symbol = 0;
  uint64_t count = 0;
  std::string description;    // "NFA:1 --return foo(...)--> NFA:2,4"
};

struct CoverageReport {
  std::string automaton;
  size_t total_transitions = 0;
  size_t covered_transitions = 0;
  std::vector<TransitionCoverage> transitions;  // covered first, then uncovered

  double Ratio() const {
    return total_transitions == 0
               ? 0.0
               : static_cast<double>(covered_transitions) / total_transitions;
  }
  std::string ToString() const;
};

// Builds the report for one registered automaton from a counting handler's
// aggregation. `dfa` must be the runtime's determinisation of that automaton
// (Runtime::dfa(id)).
CoverageReport ComputeCoverage(const automata::Automaton& automaton, const automata::Dfa& dfa,
                               const CountingHandler& counts, uint32_t class_id);

// The observed weights in the form automata::ToDot consumes (fig. 9).
automata::TransitionWeights CoverageWeights(const automata::Dfa& dfa,
                                            const CountingHandler& counts, uint32_t class_id);

}  // namespace tesla::runtime

#endif  // TESLA_RUNTIME_COVERAGE_H_
