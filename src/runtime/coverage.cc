#include "runtime/coverage.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace tesla::runtime {
namespace {

// Maps each NFA state-set to its DFA state index.
std::map<automata::StateSet, uint32_t> DfaIndex(const automata::Dfa& dfa) {
  std::map<automata::StateSet, uint32_t> index;
  for (uint32_t state = 0; state < dfa.states.size(); state++) {
    index.emplace(dfa.states[state].nfa_states, state);
  }
  return index;
}

}  // namespace

automata::TransitionWeights CoverageWeights(const automata::Dfa& dfa,
                                            const CountingHandler& counts, uint32_t class_id) {
  automata::TransitionWeights weights;
  auto index = DfaIndex(dfa);
  for (const auto& [key, count] : counts.CountsFor(class_id)) {
    auto it = index.find(key.first);
    if (it != index.end()) {
      weights[{it->second, key.second}] += count;
    }
  }
  return weights;
}

CoverageReport ComputeCoverage(const automata::Automaton& automaton, const automata::Dfa& dfa,
                               const CountingHandler& counts, uint32_t class_id) {
  CoverageReport report;
  report.automaton = automaton.name;

  automata::TransitionWeights weights = CoverageWeights(dfa, counts, class_id);
  for (uint32_t state = 0; state < dfa.states.size(); state++) {
    for (uint16_t symbol = 0; symbol < dfa.symbol_count; symbol++) {
      uint32_t target = dfa.states[state].transitions[symbol];
      if (target == automata::Dfa::kNoTarget) {
        continue;
      }
      TransitionCoverage transition;
      transition.from_state = state;
      transition.symbol = symbol;
      auto it = weights.find({state, symbol});
      transition.count = it == weights.end() ? 0 : it->second;
      transition.description = dfa.StateLabel(state) + " --" +
                               automaton.alphabet[symbol].ToString() + "--> " +
                               dfa.StateLabel(target);
      report.total_transitions++;
      if (transition.count > 0) {
        report.covered_transitions++;
      }
      report.transitions.push_back(std::move(transition));
    }
  }
  std::stable_sort(report.transitions.begin(), report.transitions.end(),
                   [](const TransitionCoverage& a, const TransitionCoverage& b) {
                     return a.count > b.count;
                   });
  return report;
}

std::string CoverageReport::ToString() const {
  std::ostringstream out;
  out << "coverage for '" << automaton << "': " << covered_transitions << "/"
      << total_transitions << " transitions (" << static_cast<int>(Ratio() * 100) << "%)\n";
  for (const TransitionCoverage& transition : transitions) {
    out << "  " << (transition.count > 0 ? "✓" : "✗") << " " << transition.count << "\t"
        << transition.description << "\n";
  }
  return out.str();
}

}  // namespace tesla::runtime
