// Native (compiled-in) instrumentation helpers.
//
// The paper's instrumenter weaves hook calls into LLVM IR; our simulators are
// ordinary C++, so they carry the equivalent of callee-side instrumentation
// as RAII scope guards: constructing a FunctionScope fires the call event,
// destruction fires the return event with the recorded return value. This is
// exactly the shape of code the instrumenter emits ("instrumentation [added]
// to the target function's entry basic block and before any return
// instructions", §4.2).
//
// Both guards marshal through the unified Event record: the scope builds its
// Event once at entry and replays the same (possibly truncated, and counted
// as such) argument payload on return.
#ifndef TESLA_RUNTIME_SCOPE_H_
#define TESLA_RUNTIME_SCOPE_H_

#include <cstdint>
#include <initializer_list>

#include "runtime/event.h"
#include "runtime/runtime.h"
#include "support/intern.h"

namespace tesla::runtime {

class FunctionScope {
 public:
  FunctionScope(Runtime* runtime, ThreadContext* ctx, Symbol function,
                std::initializer_list<int64_t> args)
      : runtime_(runtime),
        ctx_(ctx),
        event_(Event::Call(function, std::span<const int64_t>(args.begin(), args.size()))) {
    if (runtime_ != nullptr) {
      runtime_->OnEvent(*ctx_, event_);
    }
  }

  ~FunctionScope() {
    if (runtime_ != nullptr) {
      event_.kind = EventKind::kFunctionReturn;
      event_.return_value = return_value_;
      runtime_->OnEvent(*ctx_, event_);
    }
  }

  FunctionScope(const FunctionScope&) = delete;
  FunctionScope& operator=(const FunctionScope&) = delete;

  // Records and passes through the function's return value.
  template <typename T>
  T Return(T value) {
    return_value_ = static_cast<int64_t>(value);
    return value;
  }

 private:
  Runtime* runtime_;
  ThreadContext* ctx_;
  Event event_;
  int64_t return_value_ = 0;
};

// Fires a field-store event and performs the store. Usage:
//   TeslaStoreField(rt, ctx, kSoStateField, (int64_t)so, &so->so_state, value);
template <typename T>
void StoreField(Runtime* runtime, ThreadContext* ctx, Symbol field, int64_t object, T* slot,
                T new_value) {
  T old_value = *slot;
  *slot = new_value;
  if (runtime != nullptr) {
    runtime->OnEvent(*ctx, Event::FieldStore(field, object, static_cast<int64_t>(old_value),
                                             static_cast<int64_t>(new_value)));
  }
}

}  // namespace tesla::runtime

#endif  // TESLA_RUNTIME_SCOPE_H_
