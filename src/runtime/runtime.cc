#include "runtime/runtime.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "automata/dot.h"
#include "automata/stepc.h"
#include "runtime/coverage.h"
#include "support/log.h"
#include "support/smallvec.h"
#include "trace/forensics.h"

namespace tesla::runtime {

// A shard guard that engages only when asked: per-event acquisitions are
// skipped when a batch entry point already holds the shard for the whole
// batch (the spinlock is not recursive). Engaged acquisition always runs
// the intruder side of the ownership protocol — correct whether the shard
// is consumer-owned or plain locked.
class Runtime::ShardGuard {
 public:
  ShardGuard(const Runtime& rt, uint32_t shard, bool engage)
      : rt_(rt), shard_(engage ? rt.shards_[shard].get() : nullptr) {
    if (shard_ != nullptr) {
      rt_.LockShardAsIntruder(*shard_);
    }
  }
  ~ShardGuard() {
    if (shard_ != nullptr) {
      rt_.UnlockShardAsIntruder(*shard_);
    }
  }

  ShardGuard(const ShardGuard&) = delete;
  ShardGuard& operator=(const ShardGuard&) = delete;

 private:
  const Runtime& rt_;
  GlobalShard* shard_;
};

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kBadSite:
      return "assertion failed at site";
    case ViolationKind::kBadCleanup:
      return "assertion incomplete at bound exit";
    case ViolationKind::kStrictEvent:
      return "unexpected event (strict automaton)";
    case ViolationKind::kOverflow:
      return "instance pool overflow";
    case ViolationKind::kDeadlineExpired:
      return "within_ms() deadline expired";
    case ViolationKind::kRateExceeded:
      return "rate() limit exceeded";
  }
  return "?";
}

// --- ThreadContext ---

ThreadContext::ThreadContext(Runtime& runtime)
    : runtime_(runtime),
      classes_(runtime.classes_.size()),
      store_(runtime.ContextPoolCapacity()),
      bound_epochs_(runtime.bound_slot_count_),
      active_classes_(runtime.cleanup_slot_count_),
      stack_depth_(runtime.stack_slot_count_, 0) {
  if (runtime.recorder_ != nullptr) {
    trace_ = runtime.recorder_->RegisterContext();
  }
  if (runtime.collector_ != nullptr) {
    metrics_ = runtime.collector_->RegisterShard();
  }
  if (runtime.profile_collector_ != nullptr) {
    profile_ = runtime.profile_collector_->RegisterShard();
  }
  runtime.RegisterContext(this);
}

ThreadContext::~ThreadContext() {
  for (ClassState& state : classes_) {
    for (uint32_t slot : state.instances) {
      store_.Free(slot);
    }
    state.instances.clear();
  }
  runtime_.UnregisterContext(this);
}

bool ThreadContext::InCallStack(Symbol function) const {
  const int32_t slot = runtime_.StackSlotFor(function);
  return slot >= 0 && static_cast<size_t>(slot) < stack_depth_.size() &&
         stack_depth_[slot] > 0;
}

// --- Runtime ---

thread_local const Runtime* Runtime::engaged_runtime_ = nullptr;
thread_local uint64_t Runtime::engaged_shards_ = 0;
thread_local const Runtime* Runtime::scope_runtime_ = nullptr;
thread_local const DispatchScope* Runtime::active_scope_ = nullptr;
thread_local Runtime::StatsFrame* Runtime::stats_frame_ = nullptr;
thread_local uint64_t Runtime::current_event_ts_ = 0;

// The intruder side of the shard-ownership protocol (see GlobalShard in
// runtime.h for the full memory-ordering argument). The first owner_active
// load must be seq_cst: it has to order after the owner's claim store in
// the single total order, or it could read a stale false while the owner is
// mid-claim. The spin itself is rare — the owner retreats as soon as it
// observes the intruder count.
void Runtime::LockShardAsIntruder(GlobalShard& shard) const {
  shard.intruders.fetch_add(1, std::memory_order_seq_cst);
  shard.lock.lock();
  if (shard.owner_id.load(std::memory_order_relaxed) >= 0) {
    // An inline/sync dispatch landed on a consumer-owned shard: the handoff
    // path. stats_ is logically mutable here (const accessors intrude too).
    std::atomic_ref<uint64_t>(const_cast<uint64_t&>(stats_.shard_handoffs))
        .fetch_add(1, std::memory_order_relaxed);
  }
  while (shard.owner_active.load(std::memory_order_seq_cst)) {
    // Owner mid-claim: it will see our intruder announcement and retreat.
  }
}

void Runtime::UnlockShardAsIntruder(GlobalShard& shard) const {
  // Unlock before decrementing: the owner's fast claim reads intruders == 0
  // as "no one is in (or can be entering) the critical section".
  shard.lock.unlock();
  shard.intruders.fetch_sub(1, std::memory_order_release);
}

Runtime::Runtime(RuntimeOptions options) : options_(std::move(options)) {
  const size_t requested = options_.global_shards;
  shard_count_ = static_cast<uint32_t>(requested < 1 ? 1 : (requested > 64 ? 64 : requested));
  if (options_.trace_mode != trace::TraceMode::kOff) {
    recorder_ = std::make_unique<trace::Recorder>(trace::TraceConfig{
        options_.trace_mode, options_.trace_ring_capacity, options_.trace_capture_limit});
  }
  if (options_.metrics_mode != metrics::MetricsMode::kOff) {
    collector_ = std::make_unique<metrics::Collector>(options_.metrics_mode);
    time_dispatch_ = collector_->histograms_enabled();
  }
  if (options_.profile) {
    profile_collector_ = std::make_unique<profile::Collector>();
  }
}

void Runtime::RegisterContext(ThreadContext* ctx) {
  LockGuard<Spinlock> guard(contexts_lock_);
  live_contexts_.push_back(ctx);
}

void Runtime::UnregisterContext(ThreadContext* ctx) {
  LockGuard<Spinlock> guard(contexts_lock_);
  live_contexts_.erase(std::remove(live_contexts_.begin(), live_contexts_.end(), ctx),
                       live_contexts_.end());
  // Fold the departing pool's marks into the retired maxima so its peak
  // still shows in CollectProfile()'s capacity-headroom figures.
  retired_pool_high_water_ =
      std::max<uint64_t>(retired_pool_high_water_, ctx->store_.high_water());
  retired_pool_capacity_ = std::max<uint64_t>(retired_pool_capacity_, ctx->store_.capacity());
}

Runtime::~Runtime() = default;

void Runtime::FlushStatsFrame(StatsFrame& frame) {
  uint64_t* counters = reinterpret_cast<uint64_t*>(&stats_);
  for (size_t i = 0; i < kRuntimeStatsFieldCount; i++) {
    if (frame.delta[i] != 0) {
      std::atomic_ref<uint64_t>(counters[i]).fetch_add(frame.delta[i],
                                                       std::memory_order_relaxed);
      frame.delta[i] = 0;
    }
  }
}

void Runtime::FlushThreadStats() {
  for (StatsFrame* frame = stats_frame_; frame != nullptr; frame = frame->prev) {
    if (frame->runtime == this) {
      FlushStatsFrame(*frame);
    }
  }
}

Status Runtime::Register(const automata::Manifest& manifest) {
  for (const automata::Automaton& source : manifest.automata) {
    if (source.variables.size() > kMaxVariables) {
      return Error{"automaton '" + source.name + "' uses " +
                   std::to_string(source.variables.size()) + " variables (max " +
                   std::to_string(kMaxVariables) + ")"};
    }
    if (source.state_count > automata::kMaxStates) {
      return Error{"automaton '" + source.name + "' exceeds the state limit"};
    }

    CompiledClass cls;
    cls.automaton = source;
    cls.automaton.Finalize();
    cls.dfa = automata::Determinize(cls.automaton);
    cls.is_global = source.context == ast::Context::kGlobal;

    const automata::EventPattern& init = cls.automaton.alphabet[cls.automaton.init_symbol];
    const automata::EventPattern& cleanup =
        cls.automaton.alphabet[cls.automaton.cleanup_symbol];
    cls.start_key = init.kind == automata::PatternKind::kFunctionCall ? CallKey(init.function)
                                                                      : ReturnKey(init.function);
    cls.end_key = cleanup.kind == automata::PatternKind::kFunctionCall
                      ? CallKey(cleanup.function)
                      : ReturnKey(cleanup.function);

    cls.initial_states = cls.automaton.InitialInstanceStates();
    if (cls.initial_states == 0) {
      return Error{"automaton '" + source.name + "' has no «init» transition"};
    }
    cls.initial_dfa_state = cls.dfa.Step(0, cls.automaton.init_symbol);
    if (cls.initial_dfa_state == automata::Dfa::kNoTarget) {
      return Error{"automaton '" + source.name + "' has a malformed DFA"};
    }

    uint32_t id = static_cast<uint32_t>(classes_.size());
    cls.id = id;
    for (uint16_t symbol = 0; symbol < cls.automaton.alphabet.size(); symbol++) {
      if (symbol == cls.automaton.init_symbol || symbol == cls.automaton.cleanup_symbol) {
        continue;
      }
      if (cls.automaton.alphabet[symbol].kind == automata::PatternKind::kInCallStack) {
        cls.site_variants.push_back(symbol);
      }
    }
    by_name_.emplace(cls.automaton.name, id);
    classes_.push_back(std::move(cls));
  }

  CompilePlan();

  // (Re)create the sharded global stores now that classes and the plan are
  // known; their contexts size themselves from the plan's slot counts.
  shards_.clear();
  shards_.reserve(shard_count_);
  for (uint32_t i = 0; i < shard_count_; i++) {
    auto shard = std::make_unique<GlobalShard>();
    shard->context = std::make_unique<ThreadContext>(*this);
    shards_.push_back(std::move(shard));
  }
  return Status::Ok();
}

// Compiles all per-symbol routing into flat Symbol-indexed tables. Symbols
// are dense interner indices; freezing the interner here pins the table
// extent — anything interned later cannot name a registered pattern and
// falls off the bounds check in O(1).
void Runtime::CompilePlan() {
  StringInterner& interner = GlobalInterner();
  interner.Freeze();
  const size_t symbols = interner.size();

  function_plan_.assign(symbols * 2, KeyPlan{});
  field_plan_.assign(symbols, KeyPlan{});
  candidate_pool_.clear();
  class_pool_.clear();
  closed_bounds_pool_.clear();
  bound_slot_count_ = 0;
  cleanup_slot_count_ = 0;
  stack_slot_count_ = 0;
  any_global_ = false;
  any_timed_ = false;

  // Shard partition: a global class whose site dispatch reads the
  // producer's call stack (incallstack() variants) is *pinned* — it must be
  // handled in the context stage of a scoped dispatch, under its lock. A
  // pinned and an unpinned class must never share a shard context: the two
  // stages of one scoped record would race on shared bound-epoch slots. So
  // the top shards are reserved for pinned classes when both kinds exist;
  // with a single shard the whole store degrades to pinned (always locked).
  bool any_pinned = false;
  bool any_unpinned = false;
  for (CompiledClass& cls : classes_) {
    cls.pinned = cls.is_global && !cls.site_variants.empty();
    cls.timed = !cls.automaton.timed.empty();
    any_timed_ |= cls.timed;
    // Timed classes must not take the flattened site path: it bypasses the
    // timed observation hooks (deadline arming follows instance occupancy).
    cls.site_fast = cls.automaton.has_site && cls.site_variants.empty() && !cls.timed;
    any_pinned |= cls.pinned;
    any_unpinned |= cls.is_global && !cls.pinned;
  }
  uint32_t pinned_shards = 0;
  if (any_pinned) {
    if (shard_count_ == 1 || !any_unpinned) {
      pinned_shards = shard_count_;
      for (CompiledClass& cls : classes_) {
        cls.pinned = cls.is_global;
      }
    } else {
      pinned_shards = shard_count_ >= 8 ? shard_count_ / 8 : 1;
    }
  }
  const uint32_t unpinned_shards = shard_count_ - pinned_shards;
  pinned_shard_mask_ = 0;
  unpinned_shard_mask_ = 0;
  if (any_pinned || any_unpinned) {
    for (uint32_t s = 0; s < shard_count_; s++) {
      if (s < unpinned_shards) {
        unpinned_shard_mask_ |= uint64_t{1} << s;
      } else {
        pinned_shard_mask_ |= uint64_t{1} << s;
      }
    }
  }

  // Pass 1: dense slot assignment, shard placement, candidate gathering.
  std::unordered_map<uint64_t, int32_t> bound_slots;
  std::unordered_map<uint64_t, int32_t> cleanup_slots;
  std::vector<std::vector<Candidate>> call_cands(symbols);
  std::vector<std::vector<Candidate>> return_cands(symbols);
  std::vector<std::vector<Candidate>> field_cands(symbols);

  for (CompiledClass& cls : classes_) {
    // Key-variable analysis: the variables clone events can bind form the
    // instance index's key tuple (kept as an ascending list for extraction).
    cls.key_mask = cls.automaton.CloneBoundMask();
    cls.key_count = 0;
    for (uint8_t var = 0; var < kMaxVariables; var++) {
      if ((cls.key_mask & (1u << var)) != 0) {
        cls.key_vars[cls.key_count++] = var;
      }
    }
    // Plan-hint resolution: the per-class index gate (hint override or the
    // global knob) and the profile-chosen secondary prefix index. A prefix
    // position outside the class's key set (stale profile, renamed class)
    // is ignored rather than applied wrong.
    cls.min_population = static_cast<uint32_t>(options_.index_min_population);
    cls.prefix_pos = CompiledClass::kNoPrefix;
    cls.prefix_var = 0;
    if (const profile::ClassHint* hint = options_.plan_hints.Find(cls.automaton.name)) {
      if (hint->min_population >= 0) {
        cls.min_population = static_cast<uint32_t>(hint->min_population);
      }
      if (hint->prefix_key_pos >= 0 && hint->prefix_key_pos < cls.key_count &&
          static_cast<size_t>(hint->prefix_key_pos) < profile::kMaxKeyVars) {
        cls.prefix_pos = static_cast<uint8_t>(hint->prefix_key_pos);
        cls.prefix_var = cls.key_vars[cls.prefix_pos];
      }
    }
    cls.bound_slot =
        bound_slots.emplace(cls.start_key, static_cast<int32_t>(bound_slots.size()))
            .first->second;
    cls.cleanup_slot =
        cleanup_slots.emplace(cls.end_key, static_cast<int32_t>(cleanup_slots.size()))
            .first->second;
    if (cls.is_global) {
      cls.shard = cls.pinned ? unpinned_shards + cls.id % pinned_shards
                             : cls.id % unpinned_shards;
      any_global_ = true;
    } else {
      cls.shard = 0;
    }

    // Forensics filter: every function/field symbol the class's patterns
    // name, bound init/cleanup functions included.
    cls.trace_symbols.clear();
    auto add_trace_symbol = [&cls](uint32_t symbol) {
      if (std::find(cls.trace_symbols.begin(), cls.trace_symbols.end(), symbol) ==
          cls.trace_symbols.end()) {
        cls.trace_symbols.push_back(symbol);
      }
    };
    for (const automata::EventPattern& pattern : cls.automaton.alphabet) {
      switch (pattern.kind) {
        case automata::PatternKind::kFunctionCall:
        case automata::PatternKind::kFunctionReturn:
        case automata::PatternKind::kInCallStack:
          add_trace_symbol(pattern.function);
          break;
        case automata::PatternKind::kFieldAssign:
          add_trace_symbol(pattern.field);
          break;
        case automata::PatternKind::kAssertionSite:
          break;
      }
    }

    for (uint16_t symbol = 0; symbol < cls.automaton.alphabet.size(); symbol++) {
      if (symbol == cls.automaton.init_symbol || symbol == cls.automaton.cleanup_symbol) {
        continue;
      }
      const automata::EventPattern& pattern = cls.automaton.alphabet[symbol];
      switch (pattern.kind) {
        case automata::PatternKind::kFunctionCall:
          call_cands[pattern.function].push_back({cls.id, symbol});
          break;
        case automata::PatternKind::kFunctionReturn:
          return_cands[pattern.function].push_back({cls.id, symbol});
          break;
        case automata::PatternKind::kFieldAssign:
          field_cands[pattern.field].push_back({cls.id, symbol});
          break;
        case automata::PatternKind::kInCallStack: {
          KeyPlan& call_plan = function_plan_[CallKey(pattern.function)];
          if (call_plan.stack_slot < 0) {
            const int32_t slot = static_cast<int32_t>(stack_slot_count_++);
            call_plan.stack_slot = slot;
            function_plan_[ReturnKey(pattern.function)].stack_slot = slot;
          }
          break;
        }
        case automata::PatternKind::kAssertionSite:
          break;  // routed by automaton id via site events
      }
    }
  }
  bound_slot_count_ = static_cast<uint32_t>(bound_slots.size());
  cleanup_slot_count_ = static_cast<uint32_t>(cleanup_slots.size());
  bound_slot_shards_.assign(bound_slot_count_, 0);
  cleanup_slot_shards_.assign(cleanup_slot_count_, 0);

  // Pass 2: bound routing per key.
  std::vector<std::vector<uint32_t>> starts(symbols * 2);
  std::vector<std::vector<uint32_t>> ends(symbols * 2);
  std::vector<std::vector<int32_t>> closes(symbols * 2);
  for (const CompiledClass& cls : classes_) {
    starts[cls.start_key].push_back(cls.id);
    ends[cls.end_key].push_back(cls.id);
    auto& closed = closes[cls.end_key];
    if (std::find(closed.begin(), closed.end(), cls.bound_slot) == closed.end()) {
      closed.push_back(cls.bound_slot);
    }
    KeyPlan& start_plan = function_plan_[cls.start_key];
    start_plan.bound_slot = cls.bound_slot;
    start_plan.start_contexts |= cls.is_global ? 2 : 1;
    function_plan_[cls.end_key].cleanup_slot = cls.cleanup_slot;
    if (cls.is_global) {
      bound_slot_shards_[cls.bound_slot] |= uint64_t{1} << cls.shard;
      cleanup_slot_shards_[cls.cleanup_slot] |= uint64_t{1} << cls.shard;
    }
  }

  // Pass 3: flatten the gathered lists into contiguous pools.
  for (uint64_t key = 0; key < symbols * 2; key++) {
    KeyPlan& plan = function_plan_[key];
    const Symbol symbol = static_cast<Symbol>(key >> 1);
    const auto& cands = (key & 1) != 0 ? call_cands[symbol] : return_cands[symbol];
    plan.cand_first = static_cast<uint32_t>(candidate_pool_.size());
    plan.cand_count = static_cast<uint32_t>(cands.size());
    candidate_pool_.insert(candidate_pool_.end(), cands.begin(), cands.end());
    plan.start_first = static_cast<uint32_t>(class_pool_.size());
    plan.start_count = static_cast<uint32_t>(starts[key].size());
    class_pool_.insert(class_pool_.end(), starts[key].begin(), starts[key].end());
    plan.end_first = static_cast<uint32_t>(class_pool_.size());
    plan.end_count = static_cast<uint32_t>(ends[key].size());
    class_pool_.insert(class_pool_.end(), ends[key].begin(), ends[key].end());
    plan.closes_first = static_cast<uint32_t>(closed_bounds_pool_.size());
    plan.closes_count = static_cast<uint32_t>(closes[key].size());
    closed_bounds_pool_.insert(closed_bounds_pool_.end(), closes[key].begin(),
                               closes[key].end());

    // The unpinned shards any event with this key can touch — candidates
    // plus the bound slots it opens or closes (ShardStageMask's answer).
    uint64_t touched = 0;
    for (const Candidate& cand : cands) {
      const CompiledClass& cls = classes_[cand.class_id];
      if (cls.is_global && !cls.pinned) {
        touched |= uint64_t{1} << cls.shard;
      }
    }
    if (plan.bound_slot >= 0) {
      touched |= bound_slot_shards_[plan.bound_slot];
    }
    if (plan.cleanup_slot >= 0) {
      touched |= cleanup_slot_shards_[plan.cleanup_slot];
      for (int32_t slot : closes[key]) {
        touched |= bound_slot_shards_[slot];
      }
    }
    plan.touched_shards = touched & unpinned_shard_mask_;
  }
  for (Symbol symbol = 0; symbol < symbols; symbol++) {
    KeyPlan& plan = field_plan_[symbol];
    plan.cand_first = static_cast<uint32_t>(candidate_pool_.size());
    plan.cand_count = static_cast<uint32_t>(field_cands[symbol].size());
    candidate_pool_.insert(candidate_pool_.end(), field_cands[symbol].begin(),
                           field_cands[symbol].end());
    uint64_t touched = 0;
    for (const Candidate& cand : field_cands[symbol]) {
      const CompiledClass& cls = classes_[cand.class_id];
      if (cls.is_global && !cls.pinned) {
        touched |= uint64_t{1} << cls.shard;
      }
    }
    plan.touched_shards = touched & unpinned_shard_mask_;
  }

  // Pass 4: flattened DFA tables and (metrics on) the transition-coverage
  // layout. dfa_flat — the DFA transition table in (state × symbol) indexing
  // — is built unconditionally: the step-program lowering reads it whether
  // or not metrics are on. The coverage layout gives each class a dense
  // cov_states × cov_symbols bit grid over the same indexing, 64-aligned so
  // no bitmap word is shared between classes. Reinstalling clears any
  // stamped bits — the bit layout just changed.
  size_t bits = 0;
  for (CompiledClass& cls : classes_) {
    cls.cov_states = static_cast<uint32_t>(cls.dfa.states.size());
    cls.cov_symbols = cls.dfa.symbol_count;
    const size_t grid = static_cast<size_t>(cls.cov_states) * cls.cov_symbols;
    cls.dfa_flat.resize(grid);
    for (uint32_t state = 0; state < cls.cov_states; state++) {
      for (uint32_t symbol = 0; symbol < cls.cov_symbols; symbol++) {
        cls.dfa_flat[state * cls.cov_symbols + symbol] =
            cls.dfa.states[state].transitions[symbol];
      }
    }
    if (collector_ != nullptr) {
      cls.cov_first = static_cast<uint32_t>(bits);
      bits += (grid + 63) & ~size_t{63};
    }
  }
  if (collector_ != nullptr) {
    collector_->EnsureClassCapacity(classes_.size());
    collector_->InstallCoverage(bits);
  }
  if (profile_collector_ != nullptr) {
    profile_collector_->EnsureClassCapacity(classes_.size());
  }

  // Pool sizing from capacity hints: any context can host any class's
  // instances, so the per-context pool is the sum of the per-class hints
  // (unhinted classes get a small floor — they never dispatched in the
  // profile window). Without hints the instances_per_context knob stands.
  pool_capacity_hint_ = 0;
  if (!options_.plan_hints.empty() && !classes_.empty()) {
    size_t total = 0;
    for (const CompiledClass& cls : classes_) {
      const profile::ClassHint* hint = options_.plan_hints.Find(cls.automaton.name);
      total += hint != nullptr && hint->capacity > 0 ? hint->capacity : 16;
    }
    pool_capacity_hint_ = std::clamp<size_t>(total, 64, size_t{1} << 20);
  }

  // Once-only index-gate warning state: one zeroed tally per class.
  gate_scan_count_ = classes_.size();
  gate_scans_ = gate_scan_count_ != 0
                    ? std::make_unique<std::atomic<uint32_t>[]>(gate_scan_count_)
                    : nullptr;

  // Pass 5: compile each class's step program (runtime/step.h). Recompiled
  // for every class on every Register(): classes_ may have reallocated, so
  // even previously compiled programs need their interpreted-tier
  // automaton/DFA pointers refreshed.
  for (CompiledClass& cls : classes_) {
    StepCompileOptions step_options;
    step_options.tier = options_.step_tier;
    step_options.use_dfa = options_.use_dfa;
    step_options.coverage = collector_ != nullptr;
    step_options.cov_first = cls.cov_first;
    cls.step = CompileStepProgram(cls.automaton, cls.dfa,
                                  automata::LowerStep(cls.automaton, cls.dfa), step_options);
  }
}

void Runtime::EnsurePlanCapacity(ThreadContext& ctx) {
  if (ctx.classes_.size() < classes_.size()) {
    ctx.classes_.resize(classes_.size());
  }
  if (ctx.bound_epochs_.size() < bound_slot_count_) {
    ctx.bound_epochs_.resize(bound_slot_count_);
  }
  if (ctx.active_classes_.size() < cleanup_slot_count_) {
    ctx.active_classes_.resize(cleanup_slot_count_);
  }
  if (ctx.stack_depth_.size() < stack_slot_count_) {
    ctx.stack_depth_.resize(stack_slot_count_, 0);
  }
  // A Register() after this context was created: swap in a shard sized for
  // the new classes (the stale block stays behind and is still merged).
  if (collector_ != nullptr && ctx.metrics_ != nullptr &&
      ctx.metrics_->class_capacity() < classes_.size()) {
    ctx.metrics_ = collector_->RegisterShard();
  }
  if (profile_collector_ != nullptr && ctx.profile_ != nullptr &&
      ctx.profile_->class_capacity() < classes_.size()) {
    ctx.profile_ = profile_collector_->RegisterShard();
  }
}

int Runtime::FindAutomaton(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : static_cast<int>(it->second);
}

// --- stats & metrics snapshots ---

void Runtime::ResetStats() {
  stats_ = RuntimeStats{};
  // RuntimeStats::overflows is fed by per-context pool tallies; a reset that
  // leaves those behind would double-report them through pool_overflows()
  // style accessors. The pool high-water marks rewind with them — a
  // measurement window opened now must not inherit an earlier peak through
  // shard_pool_high_water() or a profile snapshot.
  for (uint32_t s = 0; s < shards_.size(); s++) {
    ShardGuard guard(*this, s, !ShardHeld(s));
    shards_[s]->context->store_.ResetOverflows();
    shards_[s]->context->store_.ResetHighWater();
  }
  {
    // Per-thread contexts rewind too (their owners hold no overflow-style
    // tally, but their pool peaks feed CollectProfile), and the retired
    // maxima restart from nothing. Quiescent-point contract as above.
    LockGuard<Spinlock> guard(contexts_lock_);
    for (ThreadContext* ctx : live_contexts_) {
      ctx->store_.ResetHighWater();
    }
    retired_pool_high_water_ = 0;
    retired_pool_capacity_ = 0;
  }
  if (collector_ != nullptr) {
    collector_->Reset();
  }
  if (profile_collector_ != nullptr) {
    profile_collector_->Reset();
  }
}

uint64_t Runtime::shard_pool_overflows() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < shards_.size(); s++) {
    ShardGuard guard(*this, s, !ShardHeld(s));
    total += shards_[s]->context->store_.overflows();
  }
  return total;
}

uint64_t Runtime::shard_pool_high_water() const {
  uint64_t peak = 0;
  for (uint32_t s = 0; s < shards_.size(); s++) {
    ShardGuard guard(*this, s, !ShardHeld(s));
    peak = std::max<uint64_t>(peak, shards_[s]->context->store_.high_water());
  }
  return peak;
}

void Runtime::SetMetricsAugmenter(MetricsAugmenter augmenter) {
  LockGuard<Spinlock> guard(augmenter_lock_);
  metrics_augmenter_ = std::move(augmenter);
}

void Runtime::AssignShardOwners(uint32_t consumers) {
  if (consumers == 0) {
    consumers = 1;
  }
  for (uint32_t s = 0; s < shards_.size(); s++) {
    const bool owned = ((unpinned_shard_mask_ >> s) & 1) != 0;
    shards_[s]->owner_id.store(owned ? static_cast<int32_t>(s % consumers) : -1,
                               std::memory_order_release);
  }
}

void Runtime::ReleaseShardOwners() {
  for (auto& shard : shards_) {
    shard->owner_id.store(-1, std::memory_order_release);
  }
}

std::string Runtime::ManifestText() const {
  automata::Manifest manifest;
  manifest.automata.reserve(classes_.size());
  for (const CompiledClass& cls : classes_) {
    manifest.automata.push_back(cls.automaton);
  }
  return manifest.Serialize();
}

metrics::Snapshot Runtime::CollectMetrics() const {
  metrics::Snapshot snapshot;
  snapshot.stats = stats_;
  if (collector_ == nullptr) {
    AugmentSnapshot(snapshot);
    return snapshot;
  }
  snapshot.mode = collector_->mode();

  std::vector<uint64_t> counters(classes_.size() * metrics::kClassCounterCount, 0);
  if (!classes_.empty()) {
    collector_->MergeCounters(classes_.size(), counters.data());
  }
  snapshot.classes.reserve(classes_.size());
  for (const CompiledClass& cls : classes_) {
    metrics::ClassSnapshot entry;
    entry.name = cls.automaton.name;
    for (size_t k = 0; k < metrics::kClassCounterCount; k++) {
      entry.counters[k] = counters[cls.id * metrics::kClassCounterCount + k];
    }
    for (uint32_t state = 0; state < cls.cov_states; state++) {
      for (uint32_t symbol = 0; symbol < cls.cov_symbols; symbol++) {
        const uint32_t target = cls.dfa_flat[state * cls.cov_symbols + symbol];
        if (target == automata::Dfa::kNoTarget) {
          continue;
        }
        metrics::TransitionCoverage transition;
        transition.state = state;
        transition.symbol = static_cast<uint16_t>(symbol);
        transition.fired =
            collector_->CoverageBit(cls.cov_first + state * cls.cov_symbols + symbol);
        const char* role = symbol == cls.automaton.init_symbol      ? "«init» "
                           : symbol == cls.automaton.cleanup_symbol ? "«cleanup» "
                                                                    : "";
        transition.description = cls.dfa.StateLabel(state) + " --" + role +
                                 cls.automaton.alphabet[symbol].ToString() + "--> " +
                                 cls.dfa.StateLabel(target);
        entry.transitions.push_back(std::move(transition));
      }
    }
    snapshot.classes.push_back(std::move(entry));
  }
  collector_->MergeHistograms(snapshot.histograms);
  AugmentSnapshot(snapshot);
  return snapshot;
}

profile::Snapshot Runtime::CollectProfile() const {
  profile::Snapshot snapshot;
  {
    // Pool marks: the max over every live context's pool plus the retired
    // maxima. Plain reads of other threads' pools — the quiescent-point
    // contract documented on the accessor.
    LockGuard<Spinlock> guard(contexts_lock_);
    snapshot.pool_high_water = retired_pool_high_water_;
    snapshot.pool_capacity = retired_pool_capacity_;
    for (ThreadContext* ctx : live_contexts_) {
      snapshot.pool_high_water =
          std::max<uint64_t>(snapshot.pool_high_water, ctx->store_.high_water());
      snapshot.pool_capacity =
          std::max<uint64_t>(snapshot.pool_capacity, ctx->store_.capacity());
    }
  }
  if (profile_collector_ == nullptr || classes_.empty()) {
    return snapshot;
  }
  std::vector<uint64_t> words(classes_.size() * profile::kClassStride, 0);
  profile_collector_->Merge(classes_.size(), words.data());
  snapshot.classes.reserve(classes_.size());
  for (const CompiledClass& cls : classes_) {
    profile::ClassProfile entry;
    entry.name = cls.automaton.name;
    const size_t tracked = std::min<size_t>(cls.key_count, profile::kMaxKeyVars);
    entry.key_vars.reserve(tracked);
    for (size_t p = 0; p < tracked; p++) {
      entry.key_vars.push_back(cls.key_vars[p]);
    }
    const uint64_t* block = words.data() + cls.id * profile::kClassStride;
    for (size_t c = 0; c < profile::kCellCount; c++) {
      entry.cells[c] = block[c];
    }
    for (size_t p = 0; p < profile::kMaxKeyVars; p++) {
      entry.var_partial[p] = block[profile::kVarPartialOffset + p];
      for (size_t w = 0; w < profile::kSketchWords; w++) {
        entry.sketch[p][w] = block[profile::kSketchOffset + p * profile::kSketchWords + w];
      }
    }
    snapshot.classes.push_back(std::move(entry));
  }
  return snapshot;
}

// The profiler's view of one dispatch decision. Out of line so the hot path
// pays only ProfileShard's null check; `served_by` names the route
// DispatchToInstances chose (Cell::dispatches: a plain scan with no
// fallback attribution — unkeyed class or index off).
void Runtime::ProfileDispatch(ThreadContext& storage, const CompiledClass& cls,
                              const ClassState& state, const BindingSet& bindings,
                              profile::Cell served_by) {
  // The class's word block, hoisted once: every write below is base-relative
  // so no store forces a reload of the shard's internal pointer.
  std::atomic<uint64_t>* base = storage.profile_->ClassCells(cls.id);
  const uint64_t population = state.instances.size();
  profile::Shard::AddAt(base, profile::Cell::dispatches);
  profile::Shard::AddAt(base, profile::Cell::fanout_sum, population);
  profile::Shard::PeakAt(base, profile::Cell::fanout_peak, population);
  // Distinct-key sketches: one linear-counting bit per bound tracked key
  // variable. Hash of the value, so the sketch is deterministic in the
  // event stream and merges by OR.
  const size_t tracked = std::min<size_t>(cls.key_count, profile::kMaxKeyVars);
  for (size_t p = 0; p < tracked; p++) {
    const uint8_t var = cls.key_vars[p];
    for (size_t b = 0; b < bindings.count; b++) {
      if (bindings.entries[b].var == var) {
        profile::Shard::SketchAt(base, p,
                                 HashU64(static_cast<uint64_t>(bindings.entries[b].value)));
        break;
      }
    }
  }
  switch (served_by) {
    case profile::Cell::index_probes:
      profile::Shard::AddAt(base, profile::Cell::index_probes);
      break;
    case profile::Cell::prefix_probes:
      profile::Shard::AddAt(base, profile::Cell::prefix_probes);
      break;
    case profile::Cell::small_population:
      profile::Shard::AddAt(base, profile::Cell::scan_fallbacks);
      profile::Shard::AddAt(base, profile::Cell::small_population);
      NoteGatedScan(cls.id);
      break;
    case profile::Cell::partial_bound:
      profile::Shard::AddAt(base, profile::Cell::scan_fallbacks);
      profile::Shard::AddAt(base, profile::Cell::partial_bound);
      // Which tracked key variables *were* bound: the prefix-index signal —
      // a secondary index on one of these would have served this dispatch.
      for (size_t p = 0; p < tracked; p++) {
        const uint8_t var = cls.key_vars[p];
        for (size_t b = 0; b < bindings.count; b++) {
          if (bindings.entries[b].var == var) {
            profile::Shard::VarPartialAt(base, p);
            break;
          }
        }
      }
      break;
    default:
      break;  // plain scan: no index to fall back from
  }
}

void Runtime::NoteGatedScan(uint32_t class_id) {
  if (gate_scans_ == nullptr || class_id >= gate_scan_count_) {
    return;
  }
  // Saturating tally: past the threshold the hot path pays one relaxed load
  // instead of an RMW per gated dispatch (the warning can no longer fire).
  if (gate_scans_[class_id].load(std::memory_order_relaxed) >= kGateWarnThreshold) {
    return;
  }
  const uint32_t tally =
      gate_scans_[class_id].fetch_add(1, std::memory_order_relaxed) + 1;
  if (tally != kGateWarnThreshold || handlers_.empty()) {
    return;  // fires exactly once, past the warm-up threshold
  }
  const CompiledClass& cls = classes_[class_id];
  const std::string message =
      "index_min_population (" + std::to_string(cls.min_population) +
      ") keeps disabling the key probe: " + std::to_string(kGateWarnThreshold) +
      " dispatches fell back to a full scan; consider a plan hint with "
      "min_population=0 for this class";
  ClassInfo info{class_id, &cls.automaton};
  for (EventHandler* handler : handlers_) {
    handler->OnWarning(info, message);
  }
}

void Runtime::AugmentSnapshot(metrics::Snapshot& snapshot) const {
  MetricsAugmenter augmenter;
  {
    LockGuard<Spinlock> guard(augmenter_lock_);
    augmenter = metrics_augmenter_;
  }
  if (augmenter) {
    augmenter(snapshot);
  }
}

void Runtime::GrowClassStates(ThreadContext& storage) {
  storage.classes_.resize(classes_.size());
}

// --- the unified event entry point ---

void Runtime::OnEvent(ThreadContext& ctx, const Event& event) {
  // Producer-side stamping: with timed clauses registered, the monotonic
  // clock is read once, here, *before* the ingest hook can queue the event —
  // async and sidecar consumers then evaluate deadlines against the
  // producer's clock, and a capture carries the same value into replay.
  // Pre-stamped events (replay, simulators with virtual clocks) pass
  // through untouched, which is what makes timed verdicts reproducible.
  if (any_timed_ && event.ts_ns == 0) [[unlikely]] {
    Event stamped = event;
    stamped.ts_ns = NowNs();
    OnEvent(ctx, stamped);
    return;
  }
  // The ingest hook runs before the context is touched at all: with the
  // async queue installed, the producer thread only copies the event into a
  // ring while the consumer thread is the context's sole mutator.
  if (IngestHook hook = ingest_hook_.load(std::memory_order_acquire)) {
    if (hook(ingest_state_.load(std::memory_order_acquire), ctx, event)) {
      return;
    }
  }
  EnsurePlanCapacity(ctx);
  DispatchEvent(ctx, event);
}

void Runtime::OnEvents(ThreadContext& ctx, std::span<const Event> events) {
  if (events.empty()) {
    return;
  }
  EnsurePlanCapacity(ctx);
  // Batch the stats alongside the locks: every Bump in the batch becomes a
  // plain add into a thread-local frame, flushed once on exit (StatsBatch).
  StatsBatch stats_batch(*this);
  // With no flight recorder, no dispatch timing and no active scope, every
  // event's DispatchEvent prologue is the same few checks — hoist them out
  // of the loop (DispatchBatchPlain). The three inputs are fixed for the
  // runtime/context lifetime, so one test covers the whole batch.
  const bool plain = ActiveScope() == nullptr &&
                     (recorder_ == nullptr || ctx.trace_ == nullptr) &&
                     !(time_dispatch_ && ctx.metrics_ != nullptr);
  if (any_global_ && engaged_runtime_ != this) {
    // Take every shard once for the whole batch, in ascending order
    // (concurrent batches on other threads acquire in the same order, so
    // there is no cycle), running the intruder protocol on each — correct
    // whether a shard is consumer-owned or plain locked. The per-event
    // acquisitions inside DispatchEvent see ShardHeld() and elide
    // themselves. The guard releases in reverse order and clears the
    // engagement even when a violation handler throws out of DispatchEvent
    // — a leaked shard lock (or stale engagement bits marking shards as
    // held that aren't) deadlocks every later dispatch.
    struct BatchShardLocks {
      Runtime& rt;
      explicit BatchShardLocks(Runtime& runtime) : rt(runtime) {
        for (auto& shard : rt.shards_) {
          rt.LockShardAsIntruder(*shard);
        }
        Runtime::engaged_runtime_ = &rt;
        Runtime::engaged_shards_ = ~uint64_t{0};
      }
      ~BatchShardLocks() {
        Runtime::engaged_runtime_ = nullptr;
        Runtime::engaged_shards_ = 0;
        for (auto it = rt.shards_.rbegin(); it != rt.shards_.rend(); ++it) {
          rt.UnlockShardAsIntruder(**it);
        }
      }
    };
    BatchShardLocks locks(*this);
    if (plain) {
      DispatchBatchPlain(ctx, events);
    } else {
      for (const Event& event : events) {
        DispatchEvent(ctx, event);
      }
    }
    return;
  }
  if (plain) {
    DispatchBatchPlain(ctx, events);
  } else {
    for (const Event& event : events) {
      DispatchEvent(ctx, event);
    }
  }
}

void Runtime::DispatchBatchPlain(ThreadContext& ctx, std::span<const Event> events) {
  // The whole batch is counted up front (one Bump instead of one per event);
  // a violation handler observing stats mid-batch sees the batch's event
  // count already applied, which is the documented batch semantics.
  Bump(stats_.events, events.size());
  for (const Event& event : events) {
    if (event.truncated) [[unlikely]] {
      Bump(stats_.arg_truncations);
    }
    if (any_timed_) [[unlikely]] {
      current_event_ts_ = event.ts_ns != 0 ? event.ts_ns : NowNs();
      if (current_event_ts_ < ctx.timed_now_) {
        Bump(stats_.clock_regressions);
      }
      TimedTick(ctx, current_event_ts_);
    }
    switch (event.kind) {
      case EventKind::kFunctionCall:
      case EventKind::kFunctionReturn:
        ProcessFunctionEvent(ctx, event);
        break;
      case EventKind::kFieldStore:
        ProcessFieldEvent(ctx, event);
        break;
      case EventKind::kAssertionSite:
        ProcessSiteEvent(ctx, event);
        break;
    }
  }
}

void Runtime::OnEventsScoped(ThreadContext& ctx, std::span<const Event> events,
                             const DispatchScope& scope) {
  if (events.empty()) {
    return;
  }
  if (scope.context) {
    // Only the context stage may grow the producer's context: the plan is
    // frozen before consumers run, so this is a no-op in steady state, and
    // the shard stage must not write another consumer's home context.
    EnsurePlanCapacity(ctx);
  }
  // Batch the stats for the whole scoped pass (see StatsBatch).
  StatsBatch stats_batch(*this);
  // Publish the scope for the duration (restoring any outer frame so a
  // handler re-entering dispatch cannot inherit a stale scope).
  struct ScopeFrame {
    const Runtime* prev_runtime;
    const DispatchScope* prev_scope;
    ScopeFrame(const Runtime& rt, const DispatchScope& scope)
        : prev_runtime(scope_runtime_), prev_scope(active_scope_) {
      scope_runtime_ = &rt;
      active_scope_ = &scope;
    }
    ~ScopeFrame() {
      scope_runtime_ = prev_runtime;
      active_scope_ = prev_scope;
    }
  };
  ScopeFrame frame(*this, scope);

  const uint64_t mask = AllowedShardMask();
  if (mask != 0 && engaged_runtime_ != this) {
    // Claim the scope's shards for the whole batch, ascending. Shards this
    // thread owns (the queue routed them here) are claimed with the owner
    // fast path — no lock when no intruder is present; the rest (pinned
    // shards in the context stage) run the intruder protocol. The caller
    // guarantees no other thread owner-claims the same shard concurrently.
    struct BatchOwnership {
      Runtime& rt;
      uint64_t mask;
      uint64_t locked = 0;
      BatchOwnership(Runtime& runtime, uint64_t m) : rt(runtime), mask(m) {
        for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
          const uint32_t s = static_cast<uint32_t>(std::countr_zero(rest));
          GlobalShard& shard = *rt.shards_[s];
          if (shard.owner_id.load(std::memory_order_relaxed) < 0) {
            rt.LockShardAsIntruder(shard);
            locked |= uint64_t{1} << s;
            continue;
          }
          // Owner fast claim: announce, then check for intruders (the
          // Dekker pairing documented on GlobalShard).
          shard.owner_active.store(true, std::memory_order_seq_cst);
          if (shard.intruders.load(std::memory_order_seq_cst) != 0) {
            // Retreat before blocking, or a spinning intruder deadlocks.
            shard.owner_active.store(false, std::memory_order_release);
            rt.LockShardAsIntruder(shard);
            locked |= uint64_t{1} << s;
          }
        }
        Runtime::engaged_runtime_ = &rt;
        Runtime::engaged_shards_ = mask;
      }
      ~BatchOwnership() {
        Runtime::engaged_runtime_ = nullptr;
        Runtime::engaged_shards_ = 0;
        for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
          const uint32_t s = static_cast<uint32_t>(std::countr_zero(rest));
          GlobalShard& shard = *rt.shards_[s];
          if (((locked >> s) & 1) != 0) {
            rt.UnlockShardAsIntruder(shard);
          } else {
            shard.owner_active.store(false, std::memory_order_release);
          }
        }
      }
    };
    BatchOwnership ownership(*this, mask);
    for (const Event& event : events) {
      DispatchEvent(ctx, event);
    }
    return;
  }
  for (const Event& event : events) {
    DispatchEvent(ctx, event);
  }
}

uint64_t Runtime::ShardStageMask(const Event& event) const {
  switch (event.kind) {
    case EventKind::kFunctionCall:
    case EventKind::kFunctionReturn: {
      const uint64_t key = event.kind == EventKind::kFunctionReturn
                               ? ReturnKey(event.target)
                               : CallKey(event.target);
      return key < function_plan_.size() ? function_plan_[key].touched_shards : 0;
    }
    case EventKind::kFieldStore:
      return event.target < field_plan_.size() ? field_plan_[event.target].touched_shards
                                               : 0;
    case EventKind::kAssertionSite: {
      if (event.target >= classes_.size()) {
        return 0;
      }
      const CompiledClass& cls = classes_[event.target];
      return cls.is_global && !cls.pinned ? uint64_t{1} << cls.shard : 0;
    }
  }
  return 0;
}

void Runtime::DispatchEvent(ThreadContext& ctx, const Event& event) {
  // Event-level bookkeeping — the global event count, the flight recorder,
  // dispatch timing — happens exactly once per event, in the context stage
  // (a shard-stage pass of the same record skips it).
  const bool context_stage = ScopeContext();
  if (any_timed_) [[unlikely]] {
    // Resolve the event clock once per event (the timed hooks read
    // current_event_ts_ instead of re-deriving it per class). The producer
    // context ticks here, in the context stage — exactly once per event, so
    // an armed deadline fires on the next event through the context even if
    // that event touches no timed class; shard contexts tick when a timed
    // class dispatches into them. A backwards timestamp is counted here
    // (once) and clamped in TimedTick — per-context stream order is
    // preserved by the queue and by replay, so the count is deterministic.
    current_event_ts_ = event.ts_ns != 0 ? event.ts_ns : NowNs();
    if (context_stage) {
      if (current_event_ts_ < ctx.timed_now_) [[unlikely]] {
        Bump(stats_.clock_regressions);
      }
      TimedTick(ctx, current_event_ts_);
    }
  }
  if (context_stage) {
    Bump(stats_.events);
    if (event.truncated) {
      Bump(stats_.arg_truncations);
    }
    if (recorder_ != nullptr && ctx.trace_ != nullptr) {
      recorder_->Record(*ctx.trace_, event);
    }
  }
  // kFull mode: two clock reads bracket the dispatch, bucketed per event
  // kind into the entry context's shard.
  const bool timed = context_stage && time_dispatch_ && ctx.metrics_ != nullptr;
  uint64_t start_ns = 0;
  if (timed) {
    start_ns = NowNs();
  }
  switch (event.kind) {
    case EventKind::kFunctionCall:
    case EventKind::kFunctionReturn:
      ProcessFunctionEvent(ctx, event);
      break;
    case EventKind::kFieldStore:
      ProcessFieldEvent(ctx, event);
      break;
    case EventKind::kAssertionSite:
      ProcessSiteEvent(ctx, event);
      break;
  }
  if (timed) {
    const int64_t ns = static_cast<int64_t>(NowNs()) - static_cast<int64_t>(start_ns);
    if (ns < 0) {
      // A stepped clock produced a negative delta. The sample still lands
      // in bucket 0 (dropping it would skew sample counts), but it is
      // counted so a depressed p50 can be traced to the clock, not TESLA.
      Bump(stats_.negative_latencies);
    }
    ctx.metrics_->RecordLatency(static_cast<size_t>(event.kind),
                                ns > 0 ? static_cast<uint64_t>(ns) : 0);
  }
}

void Runtime::ProcessFunctionEvent(ThreadContext& ctx, const Event& event) {
  const bool is_return = event.kind == EventKind::kFunctionReturn;
  const uint64_t key = is_return ? ReturnKey(event.target) : CallKey(event.target);
  if (key >= function_plan_.size()) {
    return;  // interned after the plan was compiled: cannot name any pattern
  }
  const KeyPlan& plan = function_plan_[key];

  if (plan.stack_slot >= 0 && ScopeContext()) {
    int32_t& depth = ctx.stack_depth_[plan.stack_slot];
    if (is_return && depth == 0) {
      // A return with no tracked call: the stream started mid-call (e.g. a
      // wrapped flight-recorder capture). Clamp instead of going negative,
      // which would poison incallstack() for the rest of the run.
      Bump(stats_.unmatched_returns);
    } else {
      depth += is_return ? -1 : 1;
    }
  }

  // 1. «init» transitions for bounds opened by this event.
  if (plan.bound_slot >= 0) {
    HandleBoundStart(ctx, plan);
  }

  // 2. Body events.
  for (uint32_t i = 0; i < plan.cand_count; i++) {
    const Candidate& candidate = candidate_pool_[plan.cand_first + i];
    if (!ClassInScope(classes_[candidate.class_id])) {
      continue;  // another stage of this record dispatches it
    }
    const automata::EventPattern& pattern =
        classes_[candidate.class_id].automaton.alphabet[candidate.symbol];
    BindingSet bindings;
    if (MatchFunctionPattern(pattern, event.args(), is_return, event.return_value,
                             &bindings)) {
      HandleEvent(ctx, candidate, bindings);
    }
  }

  // 3. «cleanup» transitions for bounds closed by this event.
  if (plan.cleanup_slot >= 0) {
    HandleBoundEnd(ctx, plan);
  }
}

void Runtime::ProcessFieldEvent(ThreadContext& ctx, const Event& event) {
  if (event.target >= field_plan_.size()) {
    return;
  }
  const KeyPlan& plan = field_plan_[event.target];
  const int64_t object = event.values[0];
  const int64_t old_value = event.values[1];
  const int64_t new_value = event.values[2];
  for (uint32_t i = 0; i < plan.cand_count; i++) {
    const Candidate& candidate = candidate_pool_[plan.cand_first + i];
    if (!ClassInScope(classes_[candidate.class_id])) {
      continue;
    }
    const automata::EventPattern& pattern =
        classes_[candidate.class_id].automaton.alphabet[candidate.symbol];
    BindingSet bindings;
    if (!bindings.Add(pattern.struct_var, object)) {
      continue;
    }
    bool matched = false;
    switch (pattern.assign_op) {
      case ast::AssignOp::kAssign:
        matched = MatchArg(pattern.assign_value, new_value, &bindings);
        break;
      case ast::AssignOp::kPlusEqual:
        matched = MatchArg(pattern.assign_value, new_value - old_value, &bindings);
        break;
      case ast::AssignOp::kMinusEqual:
        matched = MatchArg(pattern.assign_value, old_value - new_value, &bindings);
        break;
      case ast::AssignOp::kIncrement:
        matched = new_value == old_value + 1;
        break;
      case ast::AssignOp::kDecrement:
        matched = new_value == old_value - 1;
        break;
    }
    if (matched) {
      HandleEvent(ctx, candidate, bindings);
    }
  }
}

void Runtime::ProcessSiteEvent(ThreadContext& ctx, const Event& event) {
  const uint32_t automaton_id = event.target;
  if (automaton_id >= classes_.size()) {
    return;
  }
  const CompiledClass& fast_cls = classes_[automaton_id];
  if (event.count == 0 && fast_cls.site_fast && !fast_cls.is_global && handlers_.empty() &&
      ActiveScope() == nullptr) [[likely]] {
    // Flattened steady-state path: an unbound site event on a per-thread
    // class whose site event is just the site symbol, with no handlers and
    // no scoped dispatch. Such an event exact-matches every live instance,
    // so the whole HandleSiteEvent → DispatchToInstances → DispatchScan
    // cascade reduces to one batch kernel call — this is where the
    // sub-30 ns/event dispatch budget is won. Anything off the steady state
    // (inactive class, lazy activation pending, empty population) falls
    // through to the generic path below, which handles it identically.
    ClassState& state = StateFor(ctx, automaton_id);
    bool active = state.active;
    if (options_.lazy_init) {
      const BoundEpoch& epoch = ctx.bound_epochs_[fast_cls.bound_slot];
      active = active && epoch.open && state.epoch == epoch.epoch;
    }
    if (active && !state.instances.empty()) {
      if (options_.instance_index && fast_cls.key_mask != 0) {
        // An unbound event cannot cover the key tuple: always a scan.
        Bump(stats_.index_scans);
        BumpClass(ctx, automaton_id, metrics::ClassCounter::index_scans);
      }
      if (ProfileShard(ctx, automaton_id) != nullptr) [[unlikely]] {
        // Same attribution the generic route computes for an unbound site:
        // gated below the crossover population, partially bound above it —
        // the determinism differential depends on the two paths agreeing.
        // (No latency sample: this is the sub-30 ns flattened path.)
        profile::Cell route = profile::Cell::dispatches;
        if (options_.instance_index && fast_cls.key_mask != 0) {
          route = state.instances.size() < fast_cls.min_population
                      ? profile::Cell::small_population
                      : profile::Cell::partial_bound;
        }
        BindingSet none;
        ProfileDispatch(ctx, fast_cls, state, none, route);
      }
      const uint32_t stepped = fast_cls.step.RunBatch(
          collector_.get(), ctx.store_.hot_data(), state.instances.data(),
          state.instances.size(),
          std::span<const uint16_t>(&fast_cls.automaton.site_symbol, 1));
      if (stepped != 0) [[likely]] {
        Bump(stats_.transitions, stepped);
        BumpClass(ctx, automaton_id, metrics::ClassCounter::transitions, stepped);
        return;
      }
      // Paper §4.4.1 "Error": no instance could consume the site.
      automata::StateSet live = 0;
      for (uint32_t slot : state.instances) {
        live |= ctx.store_.states(slot);
      }
      ReportViolation(automaton_id, ViolationKind::kBadSite,
                      "no instance could accept the assertion site", live);
      return;
    }
  }
  BindingSet bindings;
  for (uint8_t i = 0; i < event.count; i++) {
    // Variable indices beyond kMaxVariables cannot name an automaton
    // variable and would corrupt instance bound masks; treat them like
    // inconsistent caller-provided bindings and surface a site violation.
    if (event.vars[i] >= kMaxVariables || !bindings.Add(event.vars[i], event.values[i])) {
      if (ScopeContext()) {
        ReportViolation(automaton_id, ViolationKind::kBadSite, "inconsistent site bindings");
      }
      return;
    }
  }
  const CompiledClass& cls = classes_[automaton_id];
  if (!ClassInScope(cls)) {
    return;
  }
  ShardGuard guard(*this, cls.shard, cls.is_global && !ShardHeld(cls.shard));
  HandleSiteEvent(ctx, automaton_id, bindings);
}

// --- bound lifecycle ---

void Runtime::HandleBoundStart(ThreadContext& ctx, const KeyPlan& plan) {
  if (ScopeContext()) {
    Bump(stats_.bound_entries);
  }
  if (options_.lazy_init) {
    // O(1): bump the bound's epoch; instances materialise on first real
    // event. Classes sharing the bound share the epoch slot, so the cost is
    // per-storage-context, not per-automaton. Each scoped stage bumps only
    // the storage contexts it owns — the producer's context with the
    // context stage, each shard with its owner's pass.
    if ((plan.start_contexts & 1) != 0 && ScopeContext()) {
      BoundEpoch& epoch = ctx.bound_epochs_[plan.bound_slot];
      epoch.epoch++;
      epoch.open = true;
    }
    if ((plan.start_contexts & 2) != 0) {
      uint64_t mask = bound_slot_shards_[plan.bound_slot] & AllowedShardMask();
      for (uint32_t shard = 0; mask != 0; shard++, mask >>= 1) {
        if ((mask & 1) == 0) {
          continue;
        }
        ShardGuard guard(*this, shard, !ShardHeld(shard));
        BoundEpoch& epoch = shards_[shard]->context->bound_epochs_[plan.bound_slot];
        epoch.epoch++;
        epoch.open = true;
      }
    }
    return;
  }
  // Naive mode: touch every automaton sharing this bound (the per-syscall
  // cost fig. 13 measures).
  for (uint32_t i = 0; i < plan.start_count; i++) {
    const uint32_t class_id = class_pool_[plan.start_first + i];
    if (!ClassInScope(classes_[class_id])) {
      continue;
    }
    ActivateClassSharded(ctx, class_id);
  }
}

void Runtime::HandleBoundEnd(ThreadContext& ctx, const KeyPlan& plan) {
  const bool context_stage = ScopeContext();
  if (context_stage) {
    Bump(stats_.bound_exits);
  }
  if (!options_.lazy_init) {
    for (uint32_t i = 0; i < plan.end_count; i++) {
      const uint32_t class_id = class_pool_[plan.end_first + i];
      if (!ClassInScope(classes_[class_id])) {
        continue;
      }
      CleanupClassSharded(ctx, class_id);
    }
    return;
  }

  // Per-thread pass: this context's live classes and open bounds.
  if (context_stage) {
    auto& active = ctx.active_classes_[plan.cleanup_slot];
    for (uint32_t class_id : active) {
      CleanupClass(ctx, class_id);
    }
    active.clear();
  }
  uint64_t shard_mask = 0;
  for (uint32_t i = 0; i < plan.closes_count; i++) {
    const int32_t slot = closed_bounds_pool_[plan.closes_first + i];
    if (context_stage) {
      ctx.bound_epochs_[slot].open = false;
    }
    shard_mask |= bound_slot_shards_[slot];
  }
  if (!any_global_) {
    return;
  }

  // Global pass: only shards hosting classes that end or close a bound
  // here, restricted to the active scope's shards (the other stages of a
  // scoped record sweep their own).
  shard_mask |= cleanup_slot_shards_[plan.cleanup_slot];
  shard_mask &= AllowedShardMask();
  for (uint32_t shard = 0; shard_mask != 0; shard++, shard_mask >>= 1) {
    if ((shard_mask & 1) == 0) {
      continue;
    }
    ShardGuard guard(*this, shard, !ShardHeld(shard));
    ThreadContext& storage = *shards_[shard]->context;
    auto& active = storage.active_classes_[plan.cleanup_slot];
    // Classes outside the scope (possible only when pinned and unpinned
    // classes share a shard, i.e. the degraded all-pinned partition) stay
    // listed for their own stage's sweep.
    size_t kept = 0;
    for (size_t i = 0; i < active.size(); i++) {
      const uint32_t class_id = active[i];
      if (ClassInScope(classes_[class_id])) {
        CleanupClass(ctx, class_id);
      } else {
        active[kept++] = class_id;
      }
    }
    active.resize(kept);
    for (uint32_t i = 0; i < plan.closes_count; i++) {
      storage.bound_epochs_[closed_bounds_pool_[plan.closes_first + i]].open = false;
    }
  }
}

void Runtime::ActivateClassSharded(ThreadContext& ctx, uint32_t class_id) {
  const CompiledClass& cls = classes_[class_id];
  ShardGuard guard(*this, cls.shard, cls.is_global && !ShardHeld(cls.shard));
  ActivateClass(ctx, class_id);
}

void Runtime::CleanupClassSharded(ThreadContext& ctx, uint32_t class_id) {
  const CompiledClass& cls = classes_[class_id];
  ShardGuard guard(*this, cls.shard, cls.is_global && !ShardHeld(cls.shard));
  CleanupClass(ctx, class_id);
}

void Runtime::ActivateClass(ThreadContext& ctx, uint32_t class_id) {
  const CompiledClass& cls = classes_[class_id];
  ClassState& state = StateFor(ctx, class_id);
  ThreadContext& storage = ContextFor(ctx, class_id);

  for (uint32_t slot : state.instances) {
    storage.store_.Free(slot);
  }
  state.instances.clear();
  state.index.Clear();
  state.unkeyed.clear();
  state.index2.Clear();
  state.tail2.clear();

  uint32_t wildcard = storage.store_.Allocate();
  if (wildcard == kNoSlot) {
    Bump(stats_.overflows);
    ReportViolation(class_id, ViolationKind::kOverflow, "no space for (*) instance");
    state.active = false;
    return;
  }
  storage.store_.states(wildcard) = cls.initial_states;
  storage.store_.dfa_state(wildcard) = cls.initial_dfa_state;
  state.instances.push_back(wildcard);
  IndexInstance(storage, cls, state, wildcard);
  state.active = true;
  Bump(stats_.instances_created);
  Bump(stats_.transitions);  // the «init» transition itself
  BumpClass(storage, class_id, metrics::ClassCounter::instances_created);
  BumpClass(storage, class_id, metrics::ClassCounter::transitions);
  if (collector_ != nullptr) {
    // The «init» transition leaves DFA state 0 (the pre-bound start state).
    StampTransition(collector_.get(), cls.cov_first, cls.cov_symbols, 0,
                    cls.automaton.init_symbol);
  }
  if (!handlers_.empty()) {
    ClassInfo info{class_id, &cls.automaton};
    const Instance view = storage.store_.Materialize(wildcard);
    for (EventHandler* handler : handlers_) {
      handler->OnInstanceNew(info, view);
      // The «init» transition (state 0 → body entry) is observable too, so
      // counting handlers can weight it (fig. 9).
      handler->OnTransition(info, view, automata::StateBit(cls.automaton.initial_state),
                            cls.automaton.init_symbol, cls.initial_states);
    }
  }
  if (cls.timed) [[unlikely]] {
    // A (re)opened bound starts its clauses fresh: cancel anything armed by
    // a previous activation, then arm for the new wildcard if the initial
    // states already sit inside a timed region (the deadline clock starts
    // at the event that completed the preceding context — this one).
    TimedTick(storage, current_event_ts_);
    ResetTimedCells(state);
    TimedObserve(storage, cls, state, {}, false);
  }
}

void Runtime::CleanupClass(ThreadContext& ctx, uint32_t class_id) {
  const CompiledClass& cls = classes_[class_id];
  ClassState& state = StateFor(ctx, class_id);
  if (!state.active) {
    return;
  }
  ThreadContext& storage = ContextFor(ctx, class_id);
  if (cls.timed) [[unlikely]] {
    // A deadline that fully elapsed before the bound closed is a violation
    // even when its expiry and the cleanup arrive in the same batch: fire
    // anything strictly past before the cleanup sweep settles the clauses.
    TimedTick(storage, current_event_ts_);
  }
  ClassInfo info{class_id, &cls.automaton};
  const uint16_t cleanup_symbol = cls.automaton.cleanup_symbol;
  for (uint32_t slot : state.instances) {
    if (StepSlot(cls, storage, slot, std::span<const uint16_t>(&cleanup_symbol, 1))) {
      Bump(stats_.accepts);
      BumpClass(storage, class_id, metrics::ClassCounter::accepts);
      if (!handlers_.empty()) {
        const Instance view = storage.store_.Materialize(slot);
        for (EventHandler* handler : handlers_) {
          handler->OnAccept(info, view);
        }
      }
    } else {
      ReportViolation(class_id, ViolationKind::kBadCleanup,
                      "instance " + storage.store_.Materialize(slot).Name(cls.automaton) +
                          " had not completed when the bound closed",
                      storage.store_.states(slot));
    }
    storage.store_.Free(slot);
  }
  state.instances.clear();
  state.index.Clear();
  state.unkeyed.clear();
  state.index2.Clear();
  state.tail2.clear();
  state.active = false;
  if (cls.timed) [[unlikely]] {
    // The bound closed: every clause is settled. Armed deadlines cancel
    // lazily (serial bump), rate windows reset.
    ResetTimedCells(state);
  }
}

bool Runtime::EnsureActive(ThreadContext& ctx, uint32_t class_id) {
  const CompiledClass& cls = classes_[class_id];
  return EnsureActive(ctx, cls, ContextFor(ctx, class_id), StateFor(ctx, class_id));
}

bool Runtime::EnsureActive(ThreadContext& ctx, const CompiledClass& cls,
                           ThreadContext& storage, ClassState& state) {
  if (!options_.lazy_init) {
    return state.active;
  }
  const BoundEpoch& epoch_entry = storage.bound_epochs_[cls.bound_slot];
  if (!epoch_entry.open) {
    return false;  // no bound currently open for this class
  }
  const uint64_t current = epoch_entry.epoch;
  if (state.active && state.epoch == current) {
    return true;
  }
  if (!state.active && state.epoch == current) {
    return false;  // already cleaned up within this bound
  }
  // First event for this class within a newly-opened bound: lazy «init».
  ActivateClass(ctx, cls.id);
  if (!state.active) {
    return false;  // pool overflow
  }
  state.epoch = current;
  storage.active_classes_[cls.cleanup_slot].push_back(cls.id);
  return true;
}

// --- timed clauses (within_ms / rate) ---

uint64_t Runtime::NowNs() const {
  if (options_.now_ns) [[unlikely]] {
    return options_.now_ns();
  }
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void Runtime::TimedTick(ThreadContext& storage, uint64_t ts_ns) {
  // Monotonic clamp: a backwards timestamp (stepped clock, cross-producer
  // skew at a shard context) is evaluated at the context's high-water clock,
  // so windows never underflow and deadlines never arm into the past. The
  // regression *count* lives in DispatchEvent — once per event, in the
  // context stage, where it is deterministic; shard contexts see ordinary
  // cross-producer interleaving and clamp silently.
  if (ts_ns < storage.timed_now_) [[unlikely]] {
    ts_ns = storage.timed_now_;
  } else {
    storage.timed_now_ = ts_ns;
  }
  if (storage.wheel_ != nullptr && storage.wheel_->HasExpired(ts_ns)) [[unlikely]] {
    FireExpired(storage, ts_ns);
  }
}

void Runtime::FireExpired(ThreadContext& storage, uint64_t now_ns) {
  // Swap the scratch buffer out of the context: a violation handler may
  // re-enter dispatch (and hence FireExpired) on this same context.
  std::vector<DeadlineWheel::Entry> fired;
  fired.swap(storage.fired_);
  fired.clear();
  storage.wheel_->Advance(now_ns, fired);
  for (const DeadlineWheel::Entry& entry : fired) {
    if (entry.class_id >= storage.classes_.size()) {
      continue;
    }
    ClassState& state = storage.classes_[entry.class_id];
    if (entry.spec >= state.timed.size()) {
      continue;
    }
    TimedCell& cell = state.timed[entry.spec];
    if (!cell.armed || cell.serial != entry.serial ||
        cell.deadline_ns != entry.deadline_ns) {
      continue;  // lazily cancelled: the region completed or the bound closed
    }
    cell.armed = false;
    cell.serial++;
    const CompiledClass& cls = classes_[entry.class_id];
    const automata::TimedSpec& spec = cls.automaton.timed[entry.spec];
    Bump(stats_.deadline_expiries);
    if (profile::Shard* pshard = ProfileShard(storage, entry.class_id)) {
      pshard->Add(entry.class_id, profile::Cell::deadline_expiries);
    }
    // Highlight the states still inside the timed region — where the
    // automaton was stuck when the clock ran out.
    automata::StateSet live = 0;
    for (uint32_t slot : state.instances) {
      live |= storage.store_.states(slot);
    }
    ReportViolation(entry.class_id, ViolationKind::kDeadlineExpired,
                    "within_ms(" + std::to_string(spec.bound_ns / 1000000) +
                        ") deadline expired " + std::to_string(now_ns - entry.deadline_ns) +
                        " ns before the region completed",
                    live & spec.armed_mask);
  }
  fired.clear();
  storage.fired_ = std::move(fired);  // hand the capacity back
}

void Runtime::TimedObserve(ThreadContext& storage, const CompiledClass& cls,
                           ClassState& state, std::span<const uint16_t> symbols,
                           bool stepped) {
  const auto& specs = cls.automaton.timed;
  if (state.timed.size() < specs.size()) [[unlikely]] {
    state.timed.resize(specs.size());
  }
  const uint64_t now = storage.timed_now_;  // clamped by the preceding TimedTick
  // The class-level view: the union of every live instance's states. Timed
  // clauses are properties of the *class* within its bound — per-instance
  // deadlines would false-alarm on the lingering (∗) parent, which never
  // leaves the region it seeds. O(live), paid only by timed classes.
  automata::StateSet occupied = 0;
  for (uint32_t slot : state.instances) {
    occupied |= storage.store_.states(slot);
  }
  for (size_t k = 0; k < specs.size(); k++) {
    const automata::TimedSpec& spec = specs[k];
    TimedCell& cell = state.timed[k];
    if (spec.kind == automata::TimedSpec::kWithin) {
      const bool live = (occupied & spec.armed_mask) != 0;
      if (live && !cell.armed) {
        cell.armed = true;
        cell.serial++;
        cell.deadline_ns = now + spec.bound_ns;
        Bump(stats_.deadline_arms);
        if (profile::Shard* pshard = ProfileShard(storage, cls.id)) {
          pshard->Add(cls.id, profile::Cell::deadline_arms);
        }
        if (storage.wheel_ == nullptr) {
          storage.wheel_ = std::make_unique<DeadlineWheel>(now);
        }
        storage.wheel_->Arm(
            {cell.deadline_ns, cls.id, static_cast<uint32_t>(k), cell.serial});
      } else if (!live && cell.armed) {
        // The region completed (or was bypassed) in time: disarm. The wheel
        // entry cancels lazily — the serial bump makes it stale.
        cell.armed = false;
        cell.serial++;
      }
      // live && armed: a region entered again before fully emptying keeps
      // the original deadline (documented limitation for starred regions).
    } else {  // kRate
      if (!stepped) {
        continue;  // only events the class actually consumed count
      }
      bool counted = false;
      for (uint16_t symbol : symbols) {
        if (std::binary_search(spec.symbols.begin(), spec.symbols.end(), symbol)) {
          counted = true;
          break;
        }
      }
      if (!counted) {
        continue;
      }
      if (cell.window_count == 0) {
        cell.window_start = now;  // the first counted event opens the window
      } else if (now - cell.window_start >= spec.bound_ns) {
        // Tumbling: advance in whole multiples of the window length so a
        // quiet gap cannot stretch a window past its nominal span.
        cell.window_start += spec.bound_ns * ((now - cell.window_start) / spec.bound_ns);
        cell.window_count = 0;
        cell.window_tripped = false;
      }
      cell.window_count++;
      if (cell.window_count > spec.limit && !cell.window_tripped) {
        cell.window_tripped = true;  // one report per window
        Bump(stats_.rate_violations);
        ReportViolation(cls.id, ViolationKind::kRateExceeded,
                        "rate(" + std::to_string(spec.limit) + ", per_ms(" +
                            std::to_string(spec.bound_ns / 1000000) + ")) exceeded: event " +
                            std::to_string(cell.window_count) + " in the window",
                        occupied & spec.armed_mask);
      }
    }
  }
}

void Runtime::ResetTimedCells(ClassState& state) {
  for (TimedCell& cell : state.timed) {
    cell.armed = false;
    cell.serial++;  // lazily cancels any wheel entry still pending
    cell.deadline_ns = 0;
    cell.window_start = 0;
    cell.window_count = 0;
    cell.window_tripped = false;
  }
}

// --- event dispatch ---

void Runtime::HandleEvent(ThreadContext& ctx, const Candidate& candidate,
                          const BindingSet& bindings) {
  const CompiledClass& cls = classes_[candidate.class_id];
  ShardGuard guard(*this, cls.shard, cls.is_global && !ShardHeld(cls.shard));
  HandleEventLocked(ctx, candidate, bindings);
}

void Runtime::HandleEventLocked(ThreadContext& ctx, const Candidate& candidate,
                                const BindingSet& bindings) {
  const CompiledClass& timed_cls = classes_[candidate.class_id];
  if (timed_cls.timed) [[unlikely]] {
    // Expiries precede the arriving event: an event at ts == deadline can
    // still satisfy its region, anything strictly later fires first.
    TimedTick(ContextFor(ctx, candidate.class_id), current_event_ts_);
  }
  if (!EnsureActive(ctx, candidate.class_id)) {
    return;
  }
  const uint16_t symbol = candidate.symbol;
  bool stepped = DispatchToInstances(ctx, candidate.class_id, bindings,
                                     std::span<const uint16_t>(&symbol, 1));
  if (timed_cls.timed) [[unlikely]] {
    TimedObserve(ContextFor(ctx, candidate.class_id), timed_cls,
                 StateFor(ctx, candidate.class_id),
                 std::span<const uint16_t>(&symbol, 1), stepped);
  }
  if (!stepped) {
    if (classes_[candidate.class_id].automaton.strict) {
      ThreadContext& storage = ContextFor(ctx, candidate.class_id);
      automata::StateSet live = 0;
      for (uint32_t slot : StateFor(ctx, candidate.class_id).instances) {
        live |= storage.store_.states(slot);
      }
      ReportViolation(candidate.class_id, ViolationKind::kStrictEvent,
                      "event '" +
                          classes_[candidate.class_id]
                              .automaton.alphabet[candidate.symbol]
                              .ToString() +
                          "' had no valid transition",
                      live);
    } else {
      Bump(stats_.ignored_events);
    }
  }
}

void Runtime::HandleSiteEvent(ThreadContext& ctx, uint32_t class_id,
                              const BindingSet& bindings) {
  // Resolve the class's storage context and state once; everything below —
  // activation check, dispatch, the stuck-automaton report — reuses them.
  const CompiledClass& cls = classes_[class_id];
  ThreadContext& storage = ContextFor(ctx, class_id);
  ClassState& state = StateFor(ctx, class_id);
  if (cls.timed) [[unlikely]] {
    // Expiries strictly before this event's timestamp fire before the site
    // dispatches (see HandleEventLocked).
    TimedTick(storage, current_event_ts_);
  }
  if (!EnsureActive(ctx, cls, storage, state)) {
    Bump(stats_.ignored_events);  // site reached outside its temporal bound
    return;
  }

  // The assertion-site event plus any satisfied incallstack() predicates.
  // Classes with no incallstack() variants (the common shape) dispatch the
  // site symbol straight from the automaton; otherwise the symbol list keeps
  // the common handful of variants inline and grows past that, so no
  // satisfied predicate is ever dropped — RuntimeStats::site_variant_truncations
  // can only be zero now, and is kept solely so ablations and old reports
  // keep their schema.
  SmallVector<uint16_t, 17> symbols;
  std::span<const uint16_t> symbol_span;
  if (cls.site_variants.empty()) [[likely]] {
    if (!cls.automaton.has_site) {
      // The assertion's expression references no site event (e.g. a pure
      // TSEQUENCE or optional() form); the site marker carries no automaton
      // meaning and is ignored.
      Bump(stats_.ignored_events);
      return;
    }
    symbol_span = std::span<const uint16_t>(&cls.automaton.site_symbol, 1);
  } else {
    if (cls.automaton.has_site) {
      symbols.push_back(cls.automaton.site_symbol);
    }
    for (uint16_t variant : cls.site_variants) {
      if (ctx.InCallStack(cls.automaton.alphabet[variant].function)) {
        symbols.push_back(variant);
      }
    }
    if (symbols.empty()) {
      // incallstack()-only site, with no predicate satisfied: the site could
      // not be consumed.
      ReportViolation(class_id, ViolationKind::kBadSite,
                      "assertion site with no satisfiable site event");
      return;
    }
    symbol_span = std::span<const uint16_t>(symbols.data(), symbols.size());
  }

  bool stepped = DispatchToInstances(storage, cls, state, bindings, symbol_span);
  if (cls.timed) [[unlikely]] {
    TimedObserve(storage, cls, state, symbol_span, stepped);
  }
  if (!stepped) {
    // Paper §4.4.1 "Error": reaching the site with no instance able to
    // consume it (e.g. the (vp3) case) is a violation. The union of live
    // instance states tells forensics where the automaton got stuck.
    automata::StateSet live = 0;
    for (uint32_t slot : state.instances) {
      live |= storage.store_.states(slot);
    }
    ReportViolation(class_id, ViolationKind::kBadSite,
                    "no instance could accept the assertion site", live);
  }
}

namespace {

// The set of variables an event's bindings name, as a bit mask. Pattern
// variables are bounded by kMaxVariables at Register() time and site
// variables are range-checked in ProcessSiteEvent, so shifts are safe.
uint32_t BindingsVarMask(const Binding* entries, size_t count) {
  uint32_t mask = 0;
  for (size_t i = 0; i < count; i++) {
    mask |= 1u << entries[i].var;
  }
  return mask;
}

}  // namespace

bool Runtime::DispatchToInstances(ThreadContext& ctx, uint32_t class_id,
                                  const BindingSet& bindings,
                                  std::span<const uint16_t> symbols) {
  const CompiledClass& cls = classes_[class_id];
  return DispatchToInstances(ContextFor(ctx, class_id), cls, StateFor(ctx, class_id), bindings,
                             symbols);
}

bool Runtime::DispatchToInstances(ThreadContext& storage, const CompiledClass& cls,
                                  ClassState& state, const BindingSet& bindings,
                                  std::span<const uint16_t> symbols) {
  const uint32_t class_id = cls.id;
  // Route decision, made once: the profile cell naming the route doubles as
  // the profiler's attribution (Cell::dispatches = plain scan, nothing to
  // attribute). The RuntimeStats/metrics bumps stay exactly the seed's.
  profile::Cell route = profile::Cell::dispatches;
  if (options_.instance_index && cls.key_mask != 0) {
    if (state.instances.size() < cls.min_population) {
      // Below the crossover population, hashing the key tuple costs more
      // than walking the handful of live instances (BENCH_instances.json);
      // fall through to the scan. The index stays coherent — IndexInstance
      // still files every clone — so the probe path is valid again the
      // moment the population grows past the threshold. Per-class since
      // plan hints can override the knob (min_population=0 probes always).
      Bump(stats_.index_scans);
      BumpClass(storage, class_id, metrics::ClassCounter::index_scans);
      route = profile::Cell::small_population;
    } else {
      const uint32_t bound = BindingsVarMask(bindings.entries, bindings.count);
      if (bound == cls.key_mask) {
        Bump(stats_.index_probes);
        BumpClass(storage, class_id, metrics::ClassCounter::index_probes);
        route = profile::Cell::index_probes;
      } else if (cls.prefix_pos != CompiledClass::kNoPrefix &&
                 ((bound >> cls.prefix_var) & 1) != 0) {
        // Partially bound, but the profile-hinted prefix variable is bound:
        // the secondary index narrows the walk to one prefix bucket plus
        // the short prefix-unbound tail.
        Bump(stats_.index_probes);
        BumpClass(storage, class_id, metrics::ClassCounter::index_probes);
        route = profile::Cell::prefix_probes;
      } else {
        // An event binding a strict subset (or superset) of the key
        // variables cannot be answered by one bucket; fall back to the
        // scan. The index stays coherent because clone insertion goes
        // through IndexInstance.
        Bump(stats_.index_scans);
        BumpClass(storage, class_id, metrics::ClassCounter::index_scans);
        route = profile::Cell::partial_bound;
      }
    }
  }
  auto run = [&]() {
    if (route == profile::Cell::index_probes) {
      return DispatchIndexed(storage, cls, state, bindings, symbols);
    }
    if (route == profile::Cell::prefix_probes) {
      return DispatchPrefix(storage, cls, state, bindings, symbols);
    }
    return DispatchScan(storage, cls, state, bindings, symbols);
  };
  profile::Shard* pshard = ProfileShard(storage, class_id);
  if (pshard == nullptr) [[likely]] {
    return run();
  }
  ProfileDispatch(storage, cls, state, bindings, route);
  // 1-in-64 sampled dispatch latency: two clock reads amortised to well
  // under a nanosecond per event, keeping the profiler inside its ≤5
  // ns/event budget (BENCH_profile.json gates it).
  if ((pshard->NextTick() & 63) != 0) [[likely]] {
    return run();
  }
  const uint64_t start = NowNs();
  const bool stepped = run();
  const int64_t ns = static_cast<int64_t>(NowNs()) - static_cast<int64_t>(start);
  if (ns < 0) {
    // Same clock-skew accounting as the kFull dispatch bracket above: the
    // sample still lands in bucket 0 (dropping it would skew sample
    // counts), but the stepped clock is counted instead of silently
    // clamped — a depressed sampled p50 must be traceable to the clock.
    Bump(stats_.negative_latencies);
  }
  pshard->Add(class_id, profile::Cell::latency_ns, ns > 0 ? static_cast<uint64_t>(ns) : 0);
  pshard->Add(class_id, profile::Cell::latency_samples);
  return stepped;
}

// Fast path: the event binds exactly the class's key variables, so the
// exact-match set of the naive pass-1 is precisely one index bucket, and —
// when that bucket is empty — every possible clone parent of pass-2 sits in
// the unkeyed tail (a fully-keyed instance consistent with the bindings
// would carry the probed tuple and hence be in the bucket). An event
// touching one socket therefore steps O(1) instances no matter how many
// other sockets are live.
bool Runtime::DispatchIndexed(ThreadContext& storage, const CompiledClass& cls,
                              ClassState& state, const BindingSet& bindings,
                              std::span<const uint16_t> symbols) {
  int64_t key[kMaxVariables];
  for (uint8_t i = 0; i < cls.key_count; i++) {
    for (size_t b = 0; b < bindings.count; b++) {
      if (bindings.entries[b].var == cls.key_vars[i]) {
        key[i] = bindings.entries[b].value;
        break;
      }
    }
  }
  const uint64_t hash = HashKeyTuple(key, cls.key_count);
  auto key_equals = [&](uint32_t slot) {
    const auto& values = storage.store_.values(slot);
    for (uint8_t i = 0; i < cls.key_count; i++) {
      if (values[cls.key_vars[i]] != key[i]) {
        return false;
      }
    }
    return true;
  };

  // Pass 1 (exact matches) = the probed bucket.
  uint32_t head = state.index.Find(hash, key_equals);
  if (head != kNoSlot) {
    bool any_step = false;
    for (uint32_t slot = head; slot != kNoSlot; slot = storage.store_.next(slot)) {
      if (StepSlot(cls, storage, slot, symbols)) {
        any_step = true;
      }
    }
    return any_step;
  }

  // Pass 2 (paper §4.4.1 "Clone"): parents come from the unkeyed tail only.
  // Clones bind every key variable, so they land in the probed bucket — the
  // tail never grows while we walk it, and intra-event deduplication is a
  // walk of the bucket's fresh chain.
  bool any_step = false;
  ClassInfo info{cls.id, &cls.automaton};
  const size_t unkeyed_count = state.unkeyed.size();
  uint32_t new_head = kNoSlot;
  for (size_t i = 0; i < unkeyed_count; i++) {
    const uint32_t parent = state.unkeyed[i];
    if (!storage.store_.ConsistentWith(parent, bindings.entries, bindings.count)) {
      continue;
    }
    Instance candidate = storage.store_.Materialize(parent);
    for (size_t b = 0; b < bindings.count; b++) {
      candidate.Bind(bindings.entries[b].var, bindings.entries[b].value);
    }
    bool duplicate = false;
    for (uint32_t s = new_head; s != kNoSlot; s = storage.store_.next(s)) {
      if (storage.store_.bound_mask(s) == candidate.bound_mask &&
          storage.store_.values(s) == candidate.values) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      continue;
    }
    if (!StepInstance(cls, storage, candidate, symbols)) {
      continue;  // the clone could not consume the event; discard it
    }
    uint32_t slot = storage.store_.Allocate();
    if (slot == kNoSlot) {
      Bump(stats_.overflows);
      ReportViolation(cls.id, ViolationKind::kOverflow, "no space to clone instance");
      continue;
    }
    storage.store_.Assign(slot, candidate);
    state.instances.push_back(slot);
    storage.store_.next(slot) = state.index.InsertHead(hash, key_equals, slot);
    if (cls.prefix_pos != CompiledClass::kNoPrefix) {
      // The clone binds every key variable, the prefix included: file it in
      // the secondary index too (this path bypasses IndexInstance).
      IndexSecondary(storage, cls, state, slot);
    }
    new_head = slot;
    any_step = true;
    Bump(stats_.instances_cloned);
    BumpClass(storage, cls.id, metrics::ClassCounter::instances_cloned);
    if (!handlers_.empty()) {
      const Instance parent_view = storage.store_.Materialize(parent);
      for (EventHandler* handler : handlers_) {
        handler->OnClone(info, parent_view, candidate);
      }
    }
  }
  return any_step;
}

// Naive scan (the seed's algorithm, now over SoA slots): used when the index
// is disabled, the class binds no variables, or the event's bindings do not
// cover the key tuple. Keeps the index coherent for later fast-path events.
bool Runtime::DispatchScan(ThreadContext& storage, const CompiledClass& cls, ClassState& state,
                           const BindingSet& bindings, std::span<const uint16_t> symbols) {
  if (bindings.count == 0 && handlers_.empty()) {
    // An unbound event (the common assertion-site shape) exact-matches every
    // live instance, so pass 1 degenerates to stepping the whole population
    // and pass 2 never runs (any instance at all is an exact match). With no
    // handlers subscribed the walk is one batch kernel call — the per-slot
    // match/step/bump round trip is replaced by the kernel's own slot loop
    // and a single aggregated transition count.
    if (state.instances.empty()) {
      return false;
    }
    const uint32_t stepped =
        cls.step.RunBatch(collector_.get(), storage.store_.hot_data(), state.instances.data(),
                          state.instances.size(), symbols);
    if (stepped != 0) {
      Bump(stats_.transitions, stepped);
      BumpClass(storage, cls.id, metrics::ClassCounter::transitions, stepped);
    }
    return stepped != 0;
  }

  // Pass 1: instances already bound to exactly these values.
  bool any_exact = false;
  bool any_step = false;
  for (uint32_t slot : state.instances) {
    if (!storage.store_.ExactMatch(slot, bindings.entries, bindings.count)) {
      continue;
    }
    any_exact = true;
    if (StepSlot(cls, storage, slot, symbols)) {
      any_step = true;
    }
  }
  if (any_exact) {
    return any_step;
  }

  // Pass 2: clone consistent instances, binding the event's new values
  // (paper §4.4.1 "Clone"). The parent — typically (∗) — is retained.
  ClassInfo info{cls.id, &cls.automaton};
  size_t existing = state.instances.size();
  for (size_t i = 0; i < existing; i++) {
    const uint32_t parent = state.instances[i];
    if (!storage.store_.ConsistentWith(parent, bindings.entries, bindings.count)) {
      continue;
    }
    Instance candidate = storage.store_.Materialize(parent);
    for (size_t b = 0; b < bindings.count; b++) {
      candidate.Bind(bindings.entries[b].var, bindings.entries[b].value);
    }
    // Deduplicate against instances created earlier in this event.
    bool duplicate = false;
    for (size_t j = existing; j < state.instances.size(); j++) {
      const uint32_t other = state.instances[j];
      if (storage.store_.bound_mask(other) == candidate.bound_mask &&
          storage.store_.values(other) == candidate.values) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      continue;
    }
    if (!StepInstance(cls, storage, candidate, symbols)) {
      continue;  // the clone could not consume the event; discard it
    }
    uint32_t slot = storage.store_.Allocate();
    if (slot == kNoSlot) {
      Bump(stats_.overflows);
      ReportViolation(cls.id, ViolationKind::kOverflow, "no space to clone instance");
      continue;
    }
    storage.store_.Assign(slot, candidate);
    state.instances.push_back(slot);
    IndexInstance(storage, cls, state, slot);
    any_step = true;
    Bump(stats_.instances_cloned);
    BumpClass(storage, cls.id, metrics::ClassCounter::instances_cloned);
    if (!handlers_.empty()) {
      const Instance parent_view = storage.store_.Materialize(parent);
      for (EventHandler* handler : handlers_) {
        handler->OnClone(info, parent_view, candidate);
      }
    }
  }
  return any_step;
}

void Runtime::IndexInstance(ThreadContext& storage, const CompiledClass& cls,
                            ClassState& state, uint32_t slot) {
  if (!options_.instance_index || cls.key_mask == 0) {
    return;  // classes without key variables use the flat list only
  }
  if ((storage.store_.bound_mask(slot) & cls.key_mask) != cls.key_mask) {
    state.unkeyed.push_back(slot);  // wildcard / partially bound: linear tail
  } else {
    int64_t key[kMaxVariables];
    const auto& values = storage.store_.values(slot);
    for (uint8_t i = 0; i < cls.key_count; i++) {
      key[i] = values[cls.key_vars[i]];
    }
    auto key_equals = [&](uint32_t other) {
      const auto& other_values = storage.store_.values(other);
      for (uint8_t i = 0; i < cls.key_count; i++) {
        if (other_values[cls.key_vars[i]] != key[i]) {
          return false;
        }
      }
      return true;
    };
    storage.store_.next(slot) =
        state.index.InsertHead(HashKeyTuple(key, cls.key_count), key_equals, slot);
  }
  if (cls.prefix_pos != CompiledClass::kNoPrefix) {
    IndexSecondary(storage, cls, state, slot);
  }
}

void Runtime::IndexSecondary(ThreadContext& storage, const CompiledClass& cls,
                             ClassState& state, uint32_t slot) {
  if (!storage.store_.IsBound(slot, cls.prefix_var)) {
    state.tail2.push_back(slot);  // prefix unbound: the (∗)-side tail
    return;
  }
  const int64_t value = storage.store_.values(slot)[cls.prefix_var];
  auto prefix_equals = [&](uint32_t other) {
    return storage.store_.values(other)[cls.prefix_var] == value;
  };
  storage.store_.next2(slot) =
      state.index2.InsertHead(HashKeyTuple(&value, 1), prefix_equals, slot);
}

// Partially-bound fast path over the profile-hinted secondary prefix index.
// Semantically a DispatchScan: pass 1's exact matches all carry the prefix
// binding, so they sit in the probed prefix bucket; pass 2's clone parents
// are consistent instances — prefix bound to the probed value (the bucket)
// or prefix unbound (tail2). Clones bind the prefix, so they land in the
// bucket (insertion at the head cannot disturb the forward walk) and never
// in tail2.
bool Runtime::DispatchPrefix(ThreadContext& storage, const CompiledClass& cls,
                             ClassState& state, const BindingSet& bindings,
                             std::span<const uint16_t> symbols) {
  int64_t prefix_value = 0;
  for (size_t b = 0; b < bindings.count; b++) {
    if (bindings.entries[b].var == cls.prefix_var) {
      prefix_value = bindings.entries[b].value;
      break;
    }
  }
  auto prefix_equals = [&](uint32_t slot) {
    return storage.store_.values(slot)[cls.prefix_var] == prefix_value;
  };
  const uint32_t head = state.index2.Find(HashKeyTuple(&prefix_value, 1), prefix_equals);

  // Pass 1: exact matches live in the prefix bucket only.
  bool any_exact = false;
  bool any_step = false;
  for (uint32_t slot = head; slot != kNoSlot; slot = storage.store_.next2(slot)) {
    if (!storage.store_.ExactMatch(slot, bindings.entries, bindings.count)) {
      continue;
    }
    any_exact = true;
    if (StepSlot(cls, storage, slot, symbols)) {
      any_step = true;
    }
  }
  if (any_exact) {
    return any_step;
  }

  // Pass 2 (paper §4.4.1 "Clone"): parents from the bucket and tail2,
  // deduplicated against the clones this event already created (they are
  // appended to `instances`, same as the scan path).
  ClassInfo info{cls.id, &cls.automaton};
  const size_t existing = state.instances.size();
  auto try_clone = [&](uint32_t parent) {
    if (!storage.store_.ConsistentWith(parent, bindings.entries, bindings.count)) {
      return;
    }
    Instance candidate = storage.store_.Materialize(parent);
    for (size_t b = 0; b < bindings.count; b++) {
      candidate.Bind(bindings.entries[b].var, bindings.entries[b].value);
    }
    for (size_t j = existing; j < state.instances.size(); j++) {
      const uint32_t other = state.instances[j];
      if (storage.store_.bound_mask(other) == candidate.bound_mask &&
          storage.store_.values(other) == candidate.values) {
        return;  // duplicate of a clone created earlier in this event
      }
    }
    if (!StepInstance(cls, storage, candidate, symbols)) {
      return;  // the clone could not consume the event; discard it
    }
    uint32_t slot = storage.store_.Allocate();
    if (slot == kNoSlot) {
      Bump(stats_.overflows);
      ReportViolation(cls.id, ViolationKind::kOverflow, "no space to clone instance");
      return;
    }
    storage.store_.Assign(slot, candidate);
    state.instances.push_back(slot);
    IndexInstance(storage, cls, state, slot);
    any_step = true;
    Bump(stats_.instances_cloned);
    BumpClass(storage, cls.id, metrics::ClassCounter::instances_cloned);
    if (!handlers_.empty()) {
      const Instance parent_view = storage.store_.Materialize(parent);
      for (EventHandler* handler : handlers_) {
        handler->OnClone(info, parent_view, candidate);
      }
    }
  };
  for (uint32_t slot = head; slot != kNoSlot; slot = storage.store_.next2(slot)) {
    try_clone(slot);
  }
  const size_t tail_count = state.tail2.size();
  for (size_t i = 0; i < tail_count; i++) {
    try_clone(state.tail2[i]);
  }
  return any_step;
}

bool Runtime::StepSlot(const CompiledClass& cls, ThreadContext& storage, uint32_t slot,
                       std::span<const uint16_t> symbols) {
  automata::StateSet from = 0;
  uint16_t symbol = 0;
  if (!StepCore(cls, storage.store_.states(slot), storage.store_.dfa_state(slot), symbols,
                &from, &symbol)) {
    return false;
  }
  Bump(stats_.transitions);
  BumpClass(storage, cls.id, metrics::ClassCounter::transitions);
  if (!handlers_.empty()) {
    ClassInfo info{cls.id, &cls.automaton};
    const Instance view = storage.store_.Materialize(slot);
    for (EventHandler* handler : handlers_) {
      handler->OnTransition(info, view, from, symbol, view.states);
    }
  }
  return true;
}

bool Runtime::StepInstance(const CompiledClass& cls, ThreadContext& storage,
                           Instance& instance, std::span<const uint16_t> symbols) {
  automata::StateSet from = 0;
  uint16_t symbol = 0;
  if (!StepCore(cls, instance.states, instance.dfa_state, symbols, &from, &symbol)) {
    return false;
  }
  Bump(stats_.transitions);
  BumpClass(storage, cls.id, metrics::ClassCounter::transitions);
  if (!handlers_.empty()) {
    ClassInfo info{cls.id, &cls.automaton};
    for (EventHandler* handler : handlers_) {
      handler->OnTransition(info, instance, from, symbol, instance.states);
    }
  }
  return true;
}

// --- matching ---

bool Runtime::MatchFunctionPattern(const automata::EventPattern& pattern,
                                   std::span<const int64_t> args, bool have_return,
                                   int64_t return_value, BindingSet* bindings) const {
  if (pattern.args_specified) {
    if (pattern.args.size() > args.size()) {
      return false;
    }
    for (size_t i = 0; i < pattern.args.size(); i++) {
      if (!MatchArg(pattern.args[i], args[i], bindings)) {
        return false;
      }
    }
  }
  if (pattern.match_return) {
    if (!have_return) {
      return false;
    }
    if (!MatchArg(pattern.return_match, return_value, bindings)) {
      return false;
    }
  }
  return true;
}

bool Runtime::MatchArg(const automata::ArgMatch& match, int64_t value,
                       BindingSet* bindings) const {
  switch (match.kind) {
    case automata::ArgMatchKind::kAny:
      return true;
    case automata::ArgMatchKind::kLiteral:
      return value == match.literal;
    case automata::ArgMatchKind::kFlags:
      return (static_cast<uint64_t>(value) & match.mask) == match.mask;
    case automata::ArgMatchKind::kBitmask:
      return (static_cast<uint64_t>(value) & ~match.mask) == 0;
    case automata::ArgMatchKind::kVariable:
      return bindings->count < kMaxVariables && bindings->Add(match.var, value);
    case automata::ArgMatchKind::kIndirect: {
      if (!options_.memory_reader) {
        return false;
      }
      int64_t pointee = 0;
      if (!options_.memory_reader(value, &pointee)) {
        return false;
      }
      return bindings->count < kMaxVariables && bindings->Add(match.var, pointee);
    }
  }
  return false;
}

void Runtime::ReportViolation(uint32_t class_id, ViolationKind kind, const std::string& detail,
                              automata::StateSet highlight) {
  Bump(stats_.violations);
  // A violation handler (or the fail-stop abort below) may read stats();
  // push any batched deltas out so it sees everything that led up to the
  // violation, including the violation itself.
  FlushThreadStats();
  if (collector_ != nullptr) {
    // No storage context is in scope here; the lock-guarded spill table is
    // fine for a path that already formats strings.
    collector_->BumpSpill(class_id, metrics::ClassCounter::violations);
  }
  Violation violation;
  violation.kind = kind;
  violation.automaton = classes_[class_id].automaton.name;
  violation.detail = detail;
  if (recorder_ != nullptr) {
    violation.backtrace = BuildForensics(class_id, highlight);
    LockGuard<Spinlock> guard(violation_log_lock_);
    violation_log_.emplace_back(kind, violation.automaton);
  }

  ClassInfo info{class_id, &classes_[class_id].automaton};
  for (EventHandler* handler : handlers_) {
    handler->OnViolation(info, violation);
  }
  TESLA_LOG(kError) << "TESLA violation in '" << violation.automaton
                    << "': " << ViolationKindName(kind) << " — " << detail;
  if (options_.fail_stop) {
    std::fprintf(stderr, "tesla: fail-stop on violation in '%s': %s (%s)\n",
                 violation.automaton.c_str(), ViolationKindName(kind), detail.c_str());
    if (!violation.backtrace.empty()) {
      std::fprintf(stderr, "%s", violation.backtrace.c_str());
    }
    std::abort();
  }
}

std::string Runtime::BuildForensics(uint32_t class_id, automata::StateSet highlight) const {
  const CompiledClass& cls = classes_[class_id];
  const trace::Snapshot snapshot = recorder_->Harvest();
  std::string report =
      trace::RenderBacktrace(snapshot, cls.automaton, class_id, cls.trace_symbols,
                             options_.trace_backtrace_events, trace::InternerResolver());
  report += "automaton state at the violation (DOT; live states highlighted):\n";
  report += automata::ToDot(cls.automaton, cls.dfa, nullptr, highlight);
  return report;
}

// --- StderrHandler ---

void StderrHandler::OnInstanceNew(const ClassInfo& cls, const Instance& instance) {
  std::fprintf(stderr, "tesla: [%s] new instance %s\n", cls.automaton->name.c_str(),
               instance.Name(*cls.automaton).c_str());
}

void StderrHandler::OnClone(const ClassInfo& cls, const Instance& parent,
                            const Instance& clone) {
  std::fprintf(stderr, "tesla: [%s] clone %s -> %s\n", cls.automaton->name.c_str(),
               parent.Name(*cls.automaton).c_str(), clone.Name(*cls.automaton).c_str());
}

void StderrHandler::OnTransition(const ClassInfo& cls, const Instance& instance,
                                 automata::StateSet from, uint16_t symbol,
                                 automata::StateSet to) {
  std::fprintf(stderr, "tesla: [%s] %s: 0x%llx --%s--> 0x%llx\n", cls.automaton->name.c_str(),
               instance.Name(*cls.automaton).c_str(), static_cast<unsigned long long>(from),
               cls.automaton->alphabet[symbol].ToString().c_str(),
               static_cast<unsigned long long>(to));
}

void StderrHandler::OnAccept(const ClassInfo& cls, const Instance& instance) {
  std::fprintf(stderr, "tesla: [%s] accept %s\n", cls.automaton->name.c_str(),
               instance.Name(*cls.automaton).c_str());
}

void StderrHandler::OnViolation(const ClassInfo& cls, const Violation& violation) {
  std::fprintf(stderr, "tesla: [%s] VIOLATION: %s — %s\n", violation.automaton.c_str(),
               ViolationKindName(violation.kind), violation.detail.c_str());
  if (!violation.backtrace.empty()) {
    std::fprintf(stderr, "%s", violation.backtrace.c_str());
  }
}

void StderrHandler::OnWarning(const ClassInfo& cls, const std::string& message) {
  std::fprintf(stderr, "tesla: [%s] warning: %s\n", cls.automaton->name.c_str(),
               message.c_str());
}

}  // namespace tesla::runtime
