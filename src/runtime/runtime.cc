#include "runtime/runtime.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "support/log.h"

namespace tesla::runtime {

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kBadSite:
      return "assertion failed at site";
    case ViolationKind::kBadCleanup:
      return "assertion incomplete at bound exit";
    case ViolationKind::kStrictEvent:
      return "unexpected event (strict automaton)";
    case ViolationKind::kOverflow:
      return "instance pool overflow";
  }
  return "?";
}

// --- ThreadContext ---

ThreadContext::ThreadContext(Runtime& runtime)
    : runtime_(runtime),
      classes_(runtime.classes_.size()),
      pool_(runtime.options_.instances_per_context) {}

ThreadContext::~ThreadContext() {
  for (ClassState& state : classes_) {
    for (Instance* instance : state.instances) {
      pool_.Free(instance);
    }
    state.instances.clear();
  }
}

// --- Runtime ---

Runtime::Runtime(RuntimeOptions options) : options_(std::move(options)) {}

Runtime::~Runtime() = default;

void Runtime::Bump(uint64_t& counter, uint64_t amount) {
  std::atomic_ref<uint64_t>(counter).fetch_add(amount, std::memory_order_relaxed);
}

Status Runtime::Register(const automata::Manifest& manifest) {
  for (const automata::Automaton& source : manifest.automata) {
    if (source.variables.size() > kMaxVariables) {
      return Error{"automaton '" + source.name + "' uses " +
                   std::to_string(source.variables.size()) + " variables (max " +
                   std::to_string(kMaxVariables) + ")"};
    }
    if (source.state_count > automata::kMaxStates) {
      return Error{"automaton '" + source.name + "' exceeds the state limit"};
    }

    CompiledClass cls;
    cls.automaton = source;
    cls.automaton.Finalize();
    cls.dfa = automata::Determinize(cls.automaton);
    cls.is_global = source.context == ast::Context::kGlobal;

    const automata::EventPattern& init = cls.automaton.alphabet[cls.automaton.init_symbol];
    const automata::EventPattern& cleanup =
        cls.automaton.alphabet[cls.automaton.cleanup_symbol];
    cls.start_key = init.kind == automata::PatternKind::kFunctionCall ? CallKey(init.function)
                                                                      : ReturnKey(init.function);
    cls.end_key = cleanup.kind == automata::PatternKind::kFunctionCall
                      ? CallKey(cleanup.function)
                      : ReturnKey(cleanup.function);

    cls.initial_states = cls.automaton.InitialInstanceStates();
    if (cls.initial_states == 0) {
      return Error{"automaton '" + source.name + "' has no «init» transition"};
    }
    cls.initial_dfa_state = cls.dfa.Step(0, cls.automaton.init_symbol);
    if (cls.initial_dfa_state == automata::Dfa::kNoTarget) {
      return Error{"automaton '" + source.name + "' has a malformed DFA"};
    }

    uint32_t id = static_cast<uint32_t>(classes_.size());
    cls.id = id;
    for (uint16_t symbol = 0; symbol < cls.automaton.alphabet.size(); symbol++) {
      if (symbol == cls.automaton.init_symbol || symbol == cls.automaton.cleanup_symbol) {
        continue;
      }
      const automata::EventPattern& pattern = cls.automaton.alphabet[symbol];
      switch (pattern.kind) {
        case automata::PatternKind::kFunctionCall:
          call_candidates_[pattern.function].push_back({id, symbol});
          break;
        case automata::PatternKind::kFunctionReturn:
          return_candidates_[pattern.function].push_back({id, symbol});
          break;
        case automata::PatternKind::kFieldAssign:
          field_candidates_[pattern.field].push_back({id, symbol});
          break;
        case automata::PatternKind::kInCallStack:
          cls.site_variants.push_back(symbol);
          tracked_stack_functions_[pattern.function] = true;
          break;
        case automata::PatternKind::kAssertionSite:
          break;  // routed by automaton id via OnAssertionSite
      }
    }

    classes_by_start_[cls.start_key].push_back(id);
    classes_by_end_[cls.end_key].push_back(id);
    bound_start_contexts_[cls.start_key] |= cls.is_global ? 2 : 1;
    auto& closed = bounds_closed_by_[cls.end_key];
    if (std::find(closed.begin(), closed.end(), cls.start_key) == closed.end()) {
      closed.push_back(cls.start_key);
    }
    if (cls.is_global) {
      any_global_ = true;
    }
    by_name_.emplace(cls.automaton.name, id);
    classes_.push_back(std::move(cls));
  }

  // (Re)create the shared global-context store now that classes are known.
  global_context_ = std::make_unique<ThreadContext>(*this);
  return Status::Ok();
}

int Runtime::FindAutomaton(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : static_cast<int>(it->second);
}

ClassState& Runtime::StateFor(ThreadContext& ctx, uint32_t class_id) {
  ThreadContext& storage = ContextFor(ctx, class_id);
  if (storage.classes_.size() <= class_id) {
    storage.classes_.resize(classes_.size());
  }
  return storage.classes_[class_id];
}

// --- event entry points ---

void Runtime::OnFunctionCall(ThreadContext& ctx, Symbol function,
                             std::span<const int64_t> args) {
  ProcessFunctionEvent(ctx, function, args, /*is_return=*/false, 0);
}

void Runtime::OnFunctionReturn(ThreadContext& ctx, Symbol function,
                               std::span<const int64_t> args, int64_t return_value) {
  ProcessFunctionEvent(ctx, function, args, /*is_return=*/true, return_value);
}

void Runtime::ProcessFunctionEvent(ThreadContext& ctx, Symbol function,
                                   std::span<const int64_t> args, bool is_return,
                                   int64_t return_value) {
  Bump(stats_.events);

  if (!tracked_stack_functions_.empty() && tracked_stack_functions_.count(function) != 0) {
    ctx.stack_depth_[function] += is_return ? -1 : 1;
  }

  const uint64_t key = is_return ? ReturnKey(function) : CallKey(function);

  // The global store serialises every event that might touch it (§3.2); we
  // conservatively take the lock for the whole event when any global
  // automaton is registered.
  std::unique_ptr<LockGuard<Spinlock>> guard;
  if (any_global_) {
    guard = std::make_unique<LockGuard<Spinlock>>(global_lock_);
  }

  // 1. «init» transitions for bounds opened by this event.
  auto starts = classes_by_start_.find(key);
  if (starts != classes_by_start_.end()) {
    HandleBoundStart(ctx, key);
  }

  // 2. Body events.
  const auto& index = is_return ? return_candidates_ : call_candidates_;
  auto candidates = index.find(function);
  if (candidates != index.end()) {
    for (const Candidate& candidate : candidates->second) {
      const automata::EventPattern& pattern =
          classes_[candidate.class_id].automaton.alphabet[candidate.symbol];
      BindingSet bindings;
      if (MatchFunctionPattern(pattern, args, is_return, return_value, &bindings)) {
        HandleEvent(ctx, candidate, bindings);
      }
    }
  }

  // 3. «cleanup» transitions for bounds closed by this event.
  auto ends = classes_by_end_.find(key);
  if (ends != classes_by_end_.end()) {
    HandleBoundEnd(ctx, key);
  }
}

void Runtime::OnFieldStore(ThreadContext& ctx, Symbol field, int64_t object, int64_t old_value,
                           int64_t new_value) {
  Bump(stats_.events);
  auto candidates = field_candidates_.find(field);
  if (candidates == field_candidates_.end()) {
    return;
  }
  std::unique_ptr<LockGuard<Spinlock>> guard;
  if (any_global_) {
    guard = std::make_unique<LockGuard<Spinlock>>(global_lock_);
  }
  for (const Candidate& candidate : candidates->second) {
    const automata::EventPattern& pattern =
        classes_[candidate.class_id].automaton.alphabet[candidate.symbol];
    BindingSet bindings;
    if (!bindings.Add(pattern.struct_var, object)) {
      continue;
    }
    bool matched = false;
    switch (pattern.assign_op) {
      case ast::AssignOp::kAssign:
        matched = MatchArg(pattern.assign_value, new_value, &bindings);
        break;
      case ast::AssignOp::kPlusEqual:
        matched = MatchArg(pattern.assign_value, new_value - old_value, &bindings);
        break;
      case ast::AssignOp::kMinusEqual:
        matched = MatchArg(pattern.assign_value, old_value - new_value, &bindings);
        break;
      case ast::AssignOp::kIncrement:
        matched = new_value == old_value + 1;
        break;
      case ast::AssignOp::kDecrement:
        matched = new_value == old_value - 1;
        break;
    }
    if (matched) {
      HandleEvent(ctx, candidate, bindings);
    }
  }
}

void Runtime::OnAssertionSite(ThreadContext& ctx, uint32_t automaton_id,
                              std::span<const Binding> site_bindings) {
  Bump(stats_.events);
  if (automaton_id >= classes_.size()) {
    return;
  }
  std::unique_ptr<LockGuard<Spinlock>> guard;
  if (any_global_) {
    guard = std::make_unique<LockGuard<Spinlock>>(global_lock_);
  }
  BindingSet bindings;
  for (const Binding& binding : site_bindings) {
    if (!bindings.Add(binding.var, binding.value)) {
      // Inconsistent caller-provided bindings; surface as a site violation.
      ReportViolation(automaton_id, ViolationKind::kBadSite, "inconsistent site bindings");
      return;
    }
  }
  HandleSiteEvent(ctx, automaton_id, bindings);
}

// --- bound lifecycle ---

void Runtime::HandleBoundStart(ThreadContext& ctx, uint64_t key) {
  Bump(stats_.bound_entries);
  if (options_.lazy_init) {
    // O(1): bump the bound's epoch; instances materialise on first real
    // event. Classes sharing the bound share the epoch entry, so the cost is
    // per-storage-context, not per-automaton.
    uint8_t contexts = bound_start_contexts_.at(key);
    if (contexts & 1) {
      BoundEpoch& epoch = ctx.bound_epochs_[key];
      epoch.epoch++;
      epoch.open = true;
    }
    if (contexts & 2) {
      BoundEpoch& epoch = global_context_->bound_epochs_[key];
      epoch.epoch++;
      epoch.open = true;
    }
    return;
  }
  // Naive mode: touch every automaton sharing this bound (the per-syscall
  // cost fig. 13 measures).
  for (uint32_t class_id : classes_by_start_.at(key)) {
    ActivateClass(ctx, class_id);
  }
}

void Runtime::HandleBoundEnd(ThreadContext& ctx, uint64_t key) {
  Bump(stats_.bound_exits);
  if (options_.lazy_init) {
    for (bool global_pass : {false, true}) {
      ThreadContext& storage = global_pass ? *global_context_ : ctx;
      auto it = storage.active_classes_.find(key);
      if (it != storage.active_classes_.end()) {
        for (uint32_t class_id : it->second) {
          CleanupClass(ctx, class_id);
        }
        it->second.clear();
      }
      auto closed = bounds_closed_by_.find(key);
      if (closed != bounds_closed_by_.end()) {
        for (uint64_t start_key : closed->second) {
          auto epoch = storage.bound_epochs_.find(start_key);
          if (epoch != storage.bound_epochs_.end()) {
            epoch->second.open = false;
          }
        }
      }
      if (!any_global_) {
        break;
      }
    }
    return;
  }
  for (uint32_t class_id : classes_by_end_.at(key)) {
    CleanupClass(ctx, class_id);
  }
}

void Runtime::ActivateClass(ThreadContext& ctx, uint32_t class_id) {
  const CompiledClass& cls = classes_[class_id];
  ClassState& state = StateFor(ctx, class_id);
  ThreadContext& storage = ContextFor(ctx, class_id);

  for (Instance* instance : state.instances) {
    storage.pool_.Free(instance);
  }
  state.instances.clear();

  Instance* wildcard = storage.pool_.Allocate();
  if (wildcard == nullptr) {
    Bump(stats_.overflows);
    ReportViolation(class_id, ViolationKind::kOverflow, "no space for (*) instance");
    state.active = false;
    return;
  }
  wildcard->states = cls.initial_states;
  wildcard->dfa_state = cls.initial_dfa_state;
  state.instances.push_back(wildcard);
  state.active = true;
  Bump(stats_.instances_created);
  Bump(stats_.transitions);  // the «init» transition itself
  ClassInfo info{class_id, &cls.automaton};
  for (EventHandler* handler : handlers_) {
    handler->OnInstanceNew(info, *wildcard);
    // The «init» transition (state 0 → body entry) is observable too, so
    // counting handlers can weight it (fig. 9).
    handler->OnTransition(info, *wildcard, automata::StateBit(cls.automaton.initial_state),
                          cls.automaton.init_symbol, cls.initial_states);
  }
}

void Runtime::CleanupClass(ThreadContext& ctx, uint32_t class_id) {
  const CompiledClass& cls = classes_[class_id];
  ClassState& state = StateFor(ctx, class_id);
  if (!state.active) {
    return;
  }
  ThreadContext& storage = ContextFor(ctx, class_id);
  ClassInfo info{class_id, &cls.automaton};
  const uint16_t cleanup_symbol = cls.automaton.cleanup_symbol;
  for (Instance* instance : state.instances) {
    if (StepInstance(cls, *instance, std::span<const uint16_t>(&cleanup_symbol, 1))) {
      Bump(stats_.accepts);
      for (EventHandler* handler : handlers_) {
        handler->OnAccept(info, *instance);
      }
    } else {
      ReportViolation(class_id, ViolationKind::kBadCleanup,
                      "instance " + instance->Name(cls.automaton) +
                          " had not completed when the bound closed");
    }
    storage.pool_.Free(instance);
  }
  state.instances.clear();
  state.active = false;
}

bool Runtime::EnsureActive(ThreadContext& ctx, uint32_t class_id) {
  const CompiledClass& cls = classes_[class_id];
  ClassState& state = StateFor(ctx, class_id);
  if (!options_.lazy_init) {
    return state.active;
  }
  ThreadContext& storage = ContextFor(ctx, class_id);
  auto it = storage.bound_epochs_.find(cls.start_key);
  if (it == storage.bound_epochs_.end() || !it->second.open) {
    return false;  // no bound currently open for this class
  }
  const uint64_t current = it->second.epoch;
  if (state.active && state.epoch == current) {
    return true;
  }
  if (!state.active && state.epoch == current) {
    return false;  // already cleaned up within this bound
  }
  // First event for this class within a newly-opened bound: lazy «init».
  ActivateClass(ctx, class_id);
  if (!state.active) {
    return false;  // pool overflow
  }
  state.epoch = current;
  storage.active_classes_[cls.end_key].push_back(class_id);
  return true;
}

// --- event dispatch ---

void Runtime::HandleEvent(ThreadContext& ctx, const Candidate& candidate,
                          const BindingSet& bindings) {
  if (!EnsureActive(ctx, candidate.class_id)) {
    return;
  }
  const uint16_t symbol = candidate.symbol;
  bool stepped = DispatchToInstances(ctx, candidate.class_id, bindings,
                                     std::span<const uint16_t>(&symbol, 1));
  if (!stepped) {
    if (classes_[candidate.class_id].automaton.strict) {
      ReportViolation(candidate.class_id, ViolationKind::kStrictEvent,
                      "event '" +
                          classes_[candidate.class_id]
                              .automaton.alphabet[candidate.symbol]
                              .ToString() +
                          "' had no valid transition");
    } else {
      Bump(stats_.ignored_events);
    }
  }
}

void Runtime::HandleSiteEvent(ThreadContext& ctx, uint32_t class_id,
                              const BindingSet& bindings) {
  if (!EnsureActive(ctx, class_id)) {
    Bump(stats_.ignored_events);  // site reached outside its temporal bound
    return;
  }
  const CompiledClass& cls = classes_[class_id];

  // The assertion-site event plus any satisfied incallstack() predicates.
  uint16_t symbols[1 + 16];
  size_t symbol_count = 0;
  if (cls.automaton.has_site) {
    symbols[symbol_count++] = cls.automaton.site_symbol;
  }
  for (uint16_t variant : cls.site_variants) {
    if (symbol_count >= sizeof(symbols) / sizeof(symbols[0])) {
      break;
    }
    if (ctx.InCallStack(cls.automaton.alphabet[variant].function)) {
      symbols[symbol_count++] = variant;
    }
  }
  if (symbol_count == 0) {
    if (!cls.automaton.has_site && cls.site_variants.empty()) {
      // The assertion's expression references no site event (e.g. a pure
      // TSEQUENCE or optional() form); the site marker carries no automaton
      // meaning and is ignored.
      Bump(stats_.ignored_events);
    } else {
      // incallstack()-only site, with no predicate satisfied: the site could
      // not be consumed.
      ReportViolation(class_id, ViolationKind::kBadSite,
                      "assertion site with no satisfiable site event");
    }
    return;
  }

  bool stepped = DispatchToInstances(ctx, class_id, bindings,
                                     std::span<const uint16_t>(symbols, symbol_count));
  if (!stepped) {
    // Paper §4.4.1 "Error": reaching the site with no instance able to
    // consume it (e.g. the (vp3) case) is a violation.
    std::string detail = "no instance could accept the assertion site";
    ReportViolation(class_id, ViolationKind::kBadSite, detail);
  }
}

bool Runtime::DispatchToInstances(ThreadContext& ctx, uint32_t class_id,
                                  const BindingSet& bindings,
                                  std::span<const uint16_t> symbols) {
  const CompiledClass& cls = classes_[class_id];
  ClassState& state = StateFor(ctx, class_id);
  ThreadContext& storage = ContextFor(ctx, class_id);

  // Pass 1: instances already bound to exactly these values.
  bool any_exact = false;
  bool any_step = false;
  for (Instance* instance : state.instances) {
    if (!instance->ExactMatch(bindings.entries, bindings.count)) {
      continue;
    }
    any_exact = true;
    if (StepInstance(cls, *instance, symbols)) {
      any_step = true;
    }
  }
  if (any_exact) {
    return any_step;
  }

  // Pass 2: clone consistent instances, binding the event's new values
  // (paper §4.4.1 "Clone"). The parent — typically (∗) — is retained.
  ClassInfo info{class_id, &cls.automaton};
  size_t existing = state.instances.size();
  for (size_t i = 0; i < existing; i++) {
    Instance* parent = state.instances[i];
    if (!parent->ConsistentWith(bindings.entries, bindings.count)) {
      continue;
    }
    Instance candidate = *parent;
    for (size_t b = 0; b < bindings.count; b++) {
      candidate.Bind(bindings.entries[b].var, bindings.entries[b].value);
    }
    // Deduplicate against instances created earlier in this event.
    bool duplicate = false;
    for (size_t j = existing; j < state.instances.size(); j++) {
      if (state.instances[j]->bound_mask == candidate.bound_mask &&
          state.instances[j]->values == candidate.values) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      continue;
    }
    if (!StepInstance(cls, candidate, symbols)) {
      continue;  // the clone could not consume the event; discard it
    }
    Instance* clone = storage.pool_.Allocate(candidate);
    if (clone == nullptr) {
      Bump(stats_.overflows);
      ReportViolation(class_id, ViolationKind::kOverflow, "no space to clone instance");
      continue;
    }
    state.instances.push_back(clone);
    any_step = true;
    Bump(stats_.instances_cloned);
    for (EventHandler* handler : handlers_) {
      handler->OnClone(info, *parent, *clone);
    }
  }
  return any_step;
}

bool Runtime::StepInstance(const CompiledClass& cls, Instance& instance,
                           std::span<const uint16_t> symbols) {
  ClassInfo info{cls.id, &cls.automaton};

  if (options_.use_dfa) {
    for (uint16_t symbol : symbols) {
      uint32_t target = cls.dfa.Step(instance.dfa_state, symbol);
      if (target == automata::Dfa::kNoTarget) {
        continue;
      }
      automata::StateSet from = instance.states;
      instance.dfa_state = target;
      instance.states = cls.dfa.states[target].nfa_states;
      Bump(stats_.transitions);
      for (EventHandler* handler : handlers_) {
        handler->OnTransition(info, instance, from, symbol, instance.states);
      }
      return true;
    }
    return false;
  }

  automata::StateSet next = 0;
  uint16_t stepped_symbol = symbols.empty() ? 0 : symbols[0];
  for (uint16_t symbol : symbols) {
    automata::StateSet result = cls.automaton.Step(instance.states, symbol);
    if (result != 0 && next == 0) {
      stepped_symbol = symbol;
    }
    next |= result;
  }
  if (next == 0) {
    return false;
  }
  automata::StateSet from = instance.states;
  instance.states = next;
  Bump(stats_.transitions);
  for (EventHandler* handler : handlers_) {
    handler->OnTransition(info, instance, from, stepped_symbol, next);
  }
  return true;
}

// --- matching ---

bool Runtime::MatchFunctionPattern(const automata::EventPattern& pattern,
                                   std::span<const int64_t> args, bool have_return,
                                   int64_t return_value, BindingSet* bindings) const {
  if (pattern.args_specified) {
    if (pattern.args.size() > args.size()) {
      return false;
    }
    for (size_t i = 0; i < pattern.args.size(); i++) {
      if (!MatchArg(pattern.args[i], args[i], bindings)) {
        return false;
      }
    }
  }
  if (pattern.match_return) {
    if (!have_return) {
      return false;
    }
    if (!MatchArg(pattern.return_match, return_value, bindings)) {
      return false;
    }
  }
  return true;
}

bool Runtime::MatchArg(const automata::ArgMatch& match, int64_t value,
                       BindingSet* bindings) const {
  switch (match.kind) {
    case automata::ArgMatchKind::kAny:
      return true;
    case automata::ArgMatchKind::kLiteral:
      return value == match.literal;
    case automata::ArgMatchKind::kFlags:
      return (static_cast<uint64_t>(value) & match.mask) == match.mask;
    case automata::ArgMatchKind::kBitmask:
      return (static_cast<uint64_t>(value) & ~match.mask) == 0;
    case automata::ArgMatchKind::kVariable:
      return bindings->count < kMaxVariables && bindings->Add(match.var, value);
    case automata::ArgMatchKind::kIndirect: {
      if (!options_.memory_reader) {
        return false;
      }
      int64_t pointee = 0;
      if (!options_.memory_reader(value, &pointee)) {
        return false;
      }
      return bindings->count < kMaxVariables && bindings->Add(match.var, pointee);
    }
  }
  return false;
}

void Runtime::ReportViolation(uint32_t class_id, ViolationKind kind,
                              const std::string& detail) {
  Bump(stats_.violations);
  Violation violation;
  violation.kind = kind;
  violation.automaton = classes_[class_id].automaton.name;
  violation.detail = detail;

  ClassInfo info{class_id, &classes_[class_id].automaton};
  for (EventHandler* handler : handlers_) {
    handler->OnViolation(info, violation);
  }
  TESLA_LOG(kError) << "TESLA violation in '" << violation.automaton
                    << "': " << ViolationKindName(kind) << " — " << detail;
  if (options_.fail_stop) {
    std::fprintf(stderr, "tesla: fail-stop on violation in '%s': %s (%s)\n",
                 violation.automaton.c_str(), ViolationKindName(kind), detail.c_str());
    std::abort();
  }
}

// --- StderrHandler ---

void StderrHandler::OnInstanceNew(const ClassInfo& cls, const Instance& instance) {
  std::fprintf(stderr, "tesla: [%s] new instance %s\n", cls.automaton->name.c_str(),
               instance.Name(*cls.automaton).c_str());
}

void StderrHandler::OnClone(const ClassInfo& cls, const Instance& parent,
                            const Instance& clone) {
  std::fprintf(stderr, "tesla: [%s] clone %s -> %s\n", cls.automaton->name.c_str(),
               parent.Name(*cls.automaton).c_str(), clone.Name(*cls.automaton).c_str());
}

void StderrHandler::OnTransition(const ClassInfo& cls, const Instance& instance,
                                 automata::StateSet from, uint16_t symbol,
                                 automata::StateSet to) {
  std::fprintf(stderr, "tesla: [%s] %s: 0x%llx --%s--> 0x%llx\n", cls.automaton->name.c_str(),
               instance.Name(*cls.automaton).c_str(), static_cast<unsigned long long>(from),
               cls.automaton->alphabet[symbol].ToString().c_str(),
               static_cast<unsigned long long>(to));
}

void StderrHandler::OnAccept(const ClassInfo& cls, const Instance& instance) {
  std::fprintf(stderr, "tesla: [%s] accept %s\n", cls.automaton->name.c_str(),
               instance.Name(*cls.automaton).c_str());
}

void StderrHandler::OnViolation(const ClassInfo& cls, const Violation& violation) {
  std::fprintf(stderr, "tesla: [%s] VIOLATION: %s — %s\n", violation.automaton.c_str(),
               ViolationKindName(violation.kind), violation.detail.c_str());
}

}  // namespace tesla::runtime
