// An automaton instance: one (partially) bound copy of an automaton class
// (paper §4.4.1: instances are "differentiated by the variables they
// reference", e.g. the (∗) wildcard and its (vp1), (vp2) clones).
#ifndef TESLA_RUNTIME_INSTANCE_H_
#define TESLA_RUNTIME_INSTANCE_H_

#include <array>
#include <cstdint>
#include <sstream>
#include <string>

#include "automata/automaton.h"

namespace tesla::runtime {

// Up to this many automaton variables per assertion. The paper's largest
// assertions bind 2–3 values; 8 leaves ample headroom.
inline constexpr int kMaxVariables = 8;

struct Binding {
  uint16_t var = 0;
  int64_t value = 0;
};

struct Instance {
  uint32_t bound_mask = 0;
  std::array<int64_t, kMaxVariables> values{};
  automata::StateSet states = 0;  // NFA state set (fig. 9's "NFA:1,3")
  uint32_t dfa_state = 0;         // used in DFA-stepping mode

  bool IsBound(uint16_t var) const { return (bound_mask & (1u << var)) != 0; }

  void Bind(uint16_t var, int64_t value) {
    bound_mask |= 1u << var;
    values[var] = value;
  }

  // True if every already-bound variable named by `bindings` agrees.
  bool ConsistentWith(const Binding* bindings, size_t count) const {
    for (size_t i = 0; i < count; i++) {
      if (IsBound(bindings[i].var) && values[bindings[i].var] != bindings[i].value) {
        return false;
      }
    }
    return true;
  }

  // True if every variable named by `bindings` is bound and agrees.
  bool ExactMatch(const Binding* bindings, size_t count) const {
    for (size_t i = 0; i < count; i++) {
      if (!IsBound(bindings[i].var) || values[bindings[i].var] != bindings[i].value) {
        return false;
      }
    }
    return true;
  }

  // The "(vp1)" in fig. 9: a human-readable instance name.
  std::string Name(const automata::Automaton& automaton) const {
    std::ostringstream out;
    out << "(";
    bool first = true;
    for (size_t i = 0; i < automaton.variables.size(); i++) {
      if (!first) out << ", ";
      first = false;
      if (IsBound(static_cast<uint16_t>(i))) {
        out << automaton.variables[i] << "=" << values[i];
      } else {
        out << "*";
      }
    }
    if (automaton.variables.empty()) {
      out << "*";
    }
    out << ")";
    return out.str();
  }
};

}  // namespace tesla::runtime

#endif  // TESLA_RUNTIME_INSTANCE_H_
