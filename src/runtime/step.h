// Compiled stepping tiers (paper §4.2: the automaton is frozen at
// plan-compile time, so the step function is a pure specialisation target).
//
// At Register() time each CompiledClass's step function — symbol test, DFA
// transition, successor-set update, coverage stamp — is lowered through
// automata::LowerStep() into a per-class StepProgram, selected by
// RuntimeOptions::step_tier:
//
//   kInterpreted  the reference walk: Automaton::Step's per-state edge
//                 vectors (NFA mode) / Dfa::Step (use_dfa ablation). Kept
//                 byte-for-byte equivalent to the seed algorithm; the other
//                 tiers are differential-tested against it.
//
//   kThreaded     a threaded interpreter over compact per-class bytecode
//                 (layout below): dead symbols pruned to a zero entry
//                 offset, single-transition symbols collapsed to one
//                 compare, dense rows inlined as immediates. Opcode
//                 dispatch uses computed goto under GCC/Clang.
//
//   kSpecialised  per-shape kernels:
//                   * DFA-trackable classes (no incallstack() patterns →
//                     every step is single-symbol, so the DFA state alone
//                     determines the NFA set) step by one branchless row
//                     load; automata with ≤ 8 DFA states and ≤ 64 symbols
//                     pack each symbol's whole row into a single u64 — the
//                     table lives in a register, not a cache line.
//                   * incallstack() classes keep exact NFA semantics via
//                     mask-and-union tables, with the mirrored dfa_flat
//                     coverage stamp — bitmaps stay bit-identical across
//                     tiers.
//
// Coverage stamping is resolved at compile time too: when the runtime has a
// metrics collector every kernel stamps through runtime/coverage.h's
// StampTransition with the same (cov_first, dfa_state, symbol) bit the
// interpreted tier uses; without one the non-stamping variant is selected
// and the hot path carries no collector branch.
//
// Semantics note (deliberate, unobservable divergence): DFA-tracking kernels
// advance the instance's dfa_state even with metrics off — it *is* their
// stepping state — while the interpreted NFA walk leaves the mirror stale
// until a collector exists. Verdicts, stats and coverage are unaffected;
// the differential test compares exactly those.
//
// Threaded bytecode layout (u32 words):
//   code[0]  flags: bit 0 = DFA-semantics program (use_dfa ablation or a
//            DFA-trackable class); bit clear = NFA union program
//   code[1]  symbol count          code[2]  NFA state count
//   entry[symbol] — offset of the symbol's op, 0 = dead symbol (pruned)
//   ops (word 0 = opcode | count << 8):
//     kStepOpEdge   from, to                  one DFA edge: a single compare
//     kStepOpChain  count × (from, to)        few edges: compare chain
//     kStepOpRow    dfa_states × target       dense row, kNoTarget sentinel
//     kStepOpNfa    mask_lo, mask_hi,         NFA step: source mask, then
//                   nfa_states × (lo, hi)     per-state successor sets
#ifndef TESLA_RUNTIME_STEP_H_
#define TESLA_RUNTIME_STEP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "automata/automaton.h"
#include "automata/determinize.h"
#include "automata/stepc.h"
#include "metrics/collector.h"
#include "runtime/options.h"

namespace tesla::runtime {

struct StepProgram;

// One compiled step: advances (states, dfa_state) on the first consumable
// symbol of `symbols` (NFA mode unions every consumable symbol), returns
// whether anything stepped, and reports the pre-step set and the stepped
// symbol through the out-params. The signature is shared by every tier so
// Runtime::StepCore is a single indirect call.
using StepFn = bool (*)(const StepProgram&, metrics::Collector*, automata::StateSet& states,
                        uint32_t& dfa_state, const uint16_t* symbols, size_t symbol_count,
                        automata::StateSet* from_out, uint16_t* symbol_out);

// The hot per-instance stepping state. This is the instance store's SoA hot
// array element: batch kernels walk the array directly, so the layout is
// defined here where the kernels can see it (sixteen bytes — four instances
// per cache line).
struct InstanceHot {
  automata::StateSet states = 0;  // NFA state set (fig. 9's "NFA:1,3")
  uint32_t dfa_state = 0;         // used in DFA-stepping mode
  uint32_t bound_mask = 0;
};
static_assert(sizeof(InstanceHot) == 16, "four instances per cache line");

// One compiled batch step: applies the class's step kernel to every slot in
// `slots`, returning how many stepped. Per kernel family the per-step
// function is inlined into this loop, so the whole pass-1 population walk of
// an unbound event is one indirect call with the kernel's tables held in
// registers — per-slot dispatch cost is what the specialised tier exists to
// remove. Slots that cannot consume any symbol are left untouched.
using StepBatchFn = uint32_t (*)(const StepProgram&, metrics::Collector*, InstanceHot* hot,
                                 const uint32_t* slots, size_t slot_count,
                                 const uint16_t* symbols, size_t symbol_count);

// Threaded-tier opcodes (see the layout comment above).
inline constexpr uint32_t kStepOpEdge = 0;
inline constexpr uint32_t kStepOpChain = 1;
inline constexpr uint32_t kStepOpRow = 2;
inline constexpr uint32_t kStepOpNfa = 3;

// In packed rows, 0xff marks "no transition" (valid states are ≤ 7).
inline constexpr uint32_t kStepPackedMiss = 0xff;

struct StepCompileOptions {
  StepTier tier = StepTier::kSpecialised;
  bool use_dfa = false;   // RuntimeOptions::use_dfa ablation semantics
  bool coverage = false;  // the runtime has a metrics collector
  uint32_t cov_first = 0;  // class's first coverage bit (coverage only)
};

// A compiled per-class step function plus the tables its kernel reads. Owns
// flat copies of the lowered tables (vector buffers survive CompiledClass
// moves); the interpreted tier instead walks the automaton/DFA in place via
// the pointers, which CompilePlan() refreshes after every Register().
struct StepProgram {
  StepFn fn = nullptr;
  StepBatchFn batch = nullptr;
  StepTier tier = StepTier::kInterpreted;  // the tier actually selected
  bool use_dfa = false;
  // DFA state fully determines the NFA set (single-symbol steps); the
  // specialised tier steps these classes by table lookup alone.
  bool dfa_track = false;

  // Interpreted tier: the frozen automaton and its determinisation.
  const automata::Automaton* automaton = nullptr;
  const automata::Dfa* dfa = nullptr;

  uint32_t dfa_state_count = 0;
  uint32_t symbol_count = 0;
  uint32_t nfa_state_count = 0;
  uint32_t cov_first = 0;

  // Flat DFA rows (dfa_state_count × symbol_count, Dfa::kNoTarget invalid)
  // and each DFA state's NFA set.
  std::vector<uint32_t> rows;
  std::vector<automata::StateSet> dfa_sets;
  // Packed rows (dfa_state_count ≤ 8, symbol_count ≤ 64): one u64 per
  // symbol, one byte per DFA state, kStepPackedMiss for no transition.
  std::vector<uint64_t> packed;
  // NFA step tables: per-symbol source mask and dense per-(symbol, state)
  // successor sets.
  std::vector<automata::StateSet> nfa_sources;
  std::vector<automata::StateSet> nfa_targets;

  // Threaded tier: bytecode and the per-symbol entry offsets.
  std::vector<uint32_t> code;
  std::vector<uint32_t> entry;

  bool Run(metrics::Collector* collector, automata::StateSet& states, uint32_t& dfa_state,
           std::span<const uint16_t> symbols, automata::StateSet* from_out,
           uint16_t* symbol_out) const {
    return fn(*this, collector, states, dfa_state, symbols.data(), symbols.size(), from_out,
              symbol_out);
  }

  // Steps every slot in `slots` (the pass-1 walk of an unbound event), and
  // returns how many stepped. Semantically identical to calling Run() per
  // slot and discarding the out-params.
  uint32_t RunBatch(metrics::Collector* collector, InstanceHot* hot, const uint32_t* slots,
                    size_t slot_count, std::span<const uint16_t> symbols) const {
    return batch(*this, collector, hot, slots, slot_count, symbols.data(), symbols.size());
  }
};

// Compiles the step program for one class. `automaton`/`dfa` must outlive
// the program (they are the interpreted tier's tables); `lowering` is
// consumed by value into the program's flat tables.
StepProgram CompileStepProgram(const automata::Automaton& automaton, const automata::Dfa& dfa,
                               automata::StepLowering lowering,
                               const StepCompileOptions& options);

}  // namespace tesla::runtime

#endif  // TESLA_RUNTIME_STEP_H_
