// Hierarchical deadline wheel for timed assertions (within_ms clauses).
//
// One wheel per event-serialisation context (per-thread contexts and global
// shard contexts alike), single-writer under the same discipline as the
// context's instances — no locks, no timer thread. Deadlines are armed when
// a timed region goes live and fire as a side effect of the next event the
// owning context observes: dispatch already reads the event clock, so the
// steady-state cost with nothing armed is one compare (HasExpired).
//
// Layout: kLevels wheels of kSlots slots over ~1 ms ticks (1 << kTickBits
// ns). Level 0 resolves single ticks (~67 ms horizon); each level up covers
// 64× more at 64× coarser resolution (~4.8 h total); later deadlines sit in
// an overflow list. Entries cascade toward level 0 as the cursor passes
// their slot, land in an imminent bucket for their final tick, and fire only
// when their deadline is *strictly* before the clock — an event at
// ts == deadline can still satisfy its region.
//
// Cancellation is lazy: the runtime bumps the owning cell's serial and the
// stale entry is discarded when it eventually pops (Entry::serial mismatch).
// next_deadline() is a lower bound, never late: HasExpired may ask for a
// redundant Advance but can never suppress a due expiry.
#ifndef TESLA_RUNTIME_DEADLINE_H_
#define TESLA_RUNTIME_DEADLINE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace tesla::runtime {

class DeadlineWheel {
 public:
  struct Entry {
    uint64_t deadline_ns = 0;
    uint32_t class_id = 0;
    uint32_t spec = 0;
    uint64_t serial = 0;
  };

  static constexpr uint32_t kTickBits = 20;  // ~1.05 ms per level-0 tick
  static constexpr uint32_t kSlotBits = 6;
  static constexpr uint32_t kSlots = 1u << kSlotBits;
  static constexpr uint32_t kLevels = 4;

  explicit DeadlineWheel(uint64_t now_ns) : now_ns_(now_ns), now_tick_(now_ns >> kTickBits) {}

  bool empty() const { return live_ == 0; }
  size_t live() const { return live_; }

  // The hot-path emptiness/expiry probe: one load-and-compare when nothing
  // is armed. next_deadline_ is a lower bound on every live deadline, so a
  // true return means "worth advancing", never "something definitely fired".
  bool HasExpired(uint64_t now_ns) const { return live_ != 0 && next_deadline_ < now_ns; }

  void Arm(const Entry& entry) {
    live_++;
    next_deadline_ = std::min(next_deadline_, entry.deadline_ns);
    Place(entry);
  }

  // Advances the wheel to `now_ns` (callers pass a monotonically clamped
  // clock), appending every entry with deadline_ns < now_ns to `fired` in
  // an order deterministic in the arm sequence. Entries sharing the current
  // tick but not yet strictly past stay pending for the next call.
  void Advance(uint64_t now_ns, std::vector<Entry>& fired) {
    if (now_ns < now_ns_) {
      return;  // defensive; the owning context clamps before calling
    }
    now_ns_ = now_ns;
    const uint64_t target_tick = now_ns >> kTickBits;
    if (live_ == 0) {
      now_tick_ = target_tick;
      next_deadline_ = kFarFuture;
      return;
    }
    if (target_tick - now_tick_ > 2 * kSlots) {
      Rebuild(target_tick);
    } else {
      while (now_tick_ < target_tick) {
        now_tick_++;
        PullLevel0();
        Cascade();
      }
    }
    FireImminent(fired);
    RecomputeNext();
  }

 private:
  static constexpr uint64_t kFarFuture = ~uint64_t{0};

  void Place(const Entry& entry) {
    const uint64_t dtick = entry.deadline_ns >> kTickBits;
    if (dtick <= now_tick_) {
      imminent_.push_back(entry);
      return;
    }
    const uint64_t delta = dtick - now_tick_;
    for (uint32_t level = 0; level < kLevels; level++) {
      if (delta < (uint64_t{1} << ((level + 1) * kSlotBits))) {
        slots_[level][(dtick >> (level * kSlotBits)) & (kSlots - 1)].push_back(entry);
        return;
      }
    }
    overflow_.push_back(entry);
  }

  void PullLevel0() {
    auto& slot = slots_[0][now_tick_ & (kSlots - 1)];
    for (const Entry& entry : slot) {
      imminent_.push_back(entry);
    }
    slot.clear();
  }

  // On every 64^level boundary, re-place the newly current upper slot so its
  // entries keep cascading toward level 0. The overflow list re-places when
  // the top level wraps (once per ~4.8 h of wheel time on the slow path;
  // larger jumps take Rebuild instead).
  void Cascade() {
    for (uint32_t level = 1; level < kLevels; level++) {
      if ((now_tick_ & ((uint64_t{1} << (level * kSlotBits)) - 1)) != 0) {
        return;
      }
      auto& slot = slots_[level][(now_tick_ >> (level * kSlotBits)) & (kSlots - 1)];
      scratch_.clear();
      scratch_.swap(slot);
      for (const Entry& entry : scratch_) {
        Place(entry);
      }
    }
    if ((now_tick_ & ((uint64_t{1} << (kLevels * kSlotBits)) - 1)) == 0 &&
        !overflow_.empty()) {
      scratch_.clear();
      scratch_.swap(overflow_);
      for (const Entry& entry : scratch_) {
        Place(entry);
      }
    }
  }

  // Large clock jump: collect everything, snap the cursor, re-place. O(live
  // + slots), amortised by how rarely a context sleeps past the walk bound.
  void Rebuild(uint64_t target_tick) {
    scratch_.clear();
    scratch_.swap(imminent_);
    for (auto& level : slots_) {
      for (auto& slot : level) {
        scratch_.insert(scratch_.end(), slot.begin(), slot.end());
        slot.clear();
      }
    }
    scratch_.insert(scratch_.end(), overflow_.begin(), overflow_.end());
    overflow_.clear();
    now_tick_ = target_tick;
    for (const Entry& entry : scratch_) {
      Place(entry);
    }
  }

  void FireImminent(std::vector<Entry>& fired) {
    size_t kept = 0;
    for (size_t i = 0; i < imminent_.size(); i++) {
      if (imminent_[i].deadline_ns < now_ns_) {
        fired.push_back(imminent_[i]);
        live_--;
      } else {
        imminent_[kept++] = imminent_[i];
      }
    }
    imminent_.resize(kept);
  }

  void RecomputeNext() {
    if (live_ == 0) {
      next_deadline_ = kFarFuture;
      return;
    }
    // Entries still in slots have dtick > now_tick_, so the next tick start
    // is a valid lower bound; imminent entries can only tighten it.
    uint64_t next = (now_tick_ + 1) << kTickBits;
    for (const Entry& entry : imminent_) {
      next = std::min(next, entry.deadline_ns);
    }
    next_deadline_ = next;
  }

  uint64_t now_ns_ = 0;
  uint64_t now_tick_ = 0;
  uint64_t next_deadline_ = kFarFuture;
  size_t live_ = 0;
  std::vector<Entry> imminent_;  // entries in (or before) the current tick
  std::vector<Entry> slots_[kLevels][kSlots];
  std::vector<Entry> overflow_;
  std::vector<Entry> scratch_;
};

}  // namespace tesla::runtime

#endif  // TESLA_RUNTIME_DEADLINE_H_
