// The unified event spine (paper §4.2/§4.4): one trivially-copyable record
// for every observation the instrumentation can make — function call,
// function return, structure field store, assertion-site reach.
//
// Every emitter (generated event translators, native scope guards, the
// simulators' compiled-in hooks) marshals into an Event and hands it to
// Runtime::OnEvent(); the runtime routes it through its compiled dispatch
// plan. Keeping the record flat and fixed-size means events can be queued,
// batched or shipped across threads by memcpy — the load-bearing property
// for future batching work.
#ifndef TESLA_RUNTIME_EVENT_H_
#define TESLA_RUNTIME_EVENT_H_

#include <cstdint>
#include <span>
#include <type_traits>

#include "runtime/instance.h"
#include "support/intern.h"

namespace tesla::runtime {

enum class EventKind : uint8_t {
  kFunctionCall = 0,
  kFunctionReturn,
  kFieldStore,     // values = {object, old value, new value}
  kAssertionSite,  // target = automaton id; (vars[i], values[i]) = bindings
};

// Argument payload capacity. Longer argument lists are truncated and the
// truncation is flagged so the runtime can account for it (RuntimeStats::
// arg_truncations) — silent truncation would make a pattern on argument 9
// unmatchable with no trace.
inline constexpr size_t kMaxEventArgs = 8;
static_assert(kMaxEventArgs >= static_cast<size_t>(kMaxVariables),
              "site events must be able to carry one value per automaton variable");

struct Event {
  EventKind kind = EventKind::kFunctionCall;
  uint8_t count = 0;       // live entries in values[] (and vars[] for sites)
  bool truncated = false;  // argument list exceeded kMaxEventArgs
  Symbol target = kNoSymbol;  // function / field symbol; site: automaton id
  // Monotonic timestamp, nanoseconds; 0 = unstamped. Stamped once at
  // ingestion (producer side) when any timed clause is registered, carried
  // verbatim through the queue/ipc wire formats and TSLATRC captures so
  // async, sidecar and replayed runs evaluate deadlines against the same
  // clock. Timed verdicts are pure functions of the (event, ts) stream.
  uint64_t ts_ns = 0;
  int64_t return_value = 0;   // kFunctionReturn only
  int64_t values[kMaxEventArgs] = {};
  uint16_t vars[kMaxEventArgs] = {};  // kAssertionSite: variable index per value

  std::span<const int64_t> args() const { return {values, count}; }

  static Event Call(Symbol function, std::span<const int64_t> args) {
    Event event;
    event.kind = EventKind::kFunctionCall;
    event.target = function;
    event.CopyValues(args);
    return event;
  }

  static Event Return(Symbol function, std::span<const int64_t> args, int64_t return_value) {
    Event event;
    event.kind = EventKind::kFunctionReturn;
    event.target = function;
    event.return_value = return_value;
    event.CopyValues(args);
    return event;
  }

  static Event FieldStore(Symbol field, int64_t object, int64_t old_value, int64_t new_value) {
    Event event;
    event.kind = EventKind::kFieldStore;
    event.target = field;
    event.count = 3;
    event.values[0] = object;
    event.values[1] = old_value;
    event.values[2] = new_value;
    return event;
  }

  static Event Site(uint32_t automaton_id, std::span<const Binding> bindings) {
    Event event;
    event.kind = EventKind::kAssertionSite;
    event.target = automaton_id;
    if (bindings.size() > kMaxEventArgs) {
      event.truncated = true;
    }
    event.count = static_cast<uint8_t>(
        bindings.size() < kMaxEventArgs ? bindings.size() : kMaxEventArgs);
    for (size_t i = 0; i < event.count; i++) {
      event.vars[i] = bindings[i].var;
      event.values[i] = bindings[i].value;
    }
    return event;
  }

 private:
  void CopyValues(std::span<const int64_t> source) {
    if (source.size() > kMaxEventArgs) {
      truncated = true;
    }
    count = static_cast<uint8_t>(source.size() < kMaxEventArgs ? source.size()
                                                               : kMaxEventArgs);
    for (size_t i = 0; i < count; i++) {
      values[i] = source[i];
    }
  }
};

static_assert(std::is_trivially_copyable_v<Event>);

}  // namespace tesla::runtime

#endif  // TESLA_RUNTIME_EVENT_H_
