// libtesla configuration, violation reports and statistics.
#ifndef TESLA_RUNTIME_OPTIONS_H_
#define TESLA_RUNTIME_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "metrics/metrics.h"
#include "profile/hints.h"
#include "trace/record.h"

namespace tesla::runtime {

// Reads one 64-bit value through a pointer-valued event argument; used by
// ArgMatchKind::kIndirect patterns (paper §3.4.1: arguments specified
// "indirectly using the C address-of operator"). Returns false if the address
// cannot be read. The IR interpreter supplies heap access; native simulators
// supply process-memory access.
using MemoryReader = std::function<bool(int64_t address, int64_t* value)>;

// How a registered class's step function executes (see runtime/step.h and
// DESIGN.md "Stepping tiers"). Every tier is semantically identical —
// verdicts, RuntimeStats and coverage bitmaps are bit-for-bit equal; the
// differential tests enforce it — so the knob is purely a speed/ablation
// choice.
enum class StepTier : uint8_t {
  // The reference walk: per-state edge vectors for NFA simulation,
  // Dfa::Step for the use_dfa ablation. The seed's algorithm.
  kInterpreted = 0,
  // A threaded interpreter over compact per-class bytecode: dead symbols
  // pruned, single-transition symbols collapsed to one compare, dense rows
  // inlined as immediates. Computed-goto dispatch where the compiler
  // supports it.
  kThreaded = 1,
  // Per-shape specialised kernels picked at Register() time: branchless
  // table lookups for DFA-trackable classes (table-in-registers for small
  // automata), mask-and-union tables for incallstack() classes.
  kSpecialised = 2,
};

struct RuntimeOptions {
  // Lazy automaton-instance initialisation (paper §5.2.2, fig. 13): bound
  // entry/exit only touch automata that received a non-initialisation event
  // within the bound, instead of every automaton sharing the bound.
  bool lazy_init = true;

  // Fail-stop on violation (paper §4.4.2: "cause the program to fail-stop by
  // default, but this is configurable at run-time").
  bool fail_stop = true;

  // Ablation: step the determinised DFA instead of simulating NFA state sets.
  bool use_dfa = false;

  // Binding-keyed instance index: events whose bindings cover a class's key
  // variables probe a per-class hash index (one bucket visit, O(matching))
  // instead of scanning every live instance twice (O(live)). Off reproduces
  // the naive scan; the differential tests drive both modes through
  // identical schedules and require event-for-event agreement.
  bool instance_index = true;

  // Below this live-instance population, a keyed class skips the index
  // probe and falls through to the flat chain walk: hashing the key tuple
  // costs more than scanning a handful of instances (BENCH_instances.json
  // put the crossover between 1 and 10 live instances). Counted as
  // RuntimeStats::index_scans. 0 probes unconditionally; the crossover test
  // checks the probe decision stays monotone in the population.
  size_t index_min_population = 8;

  // Step-function execution tier (see StepTier). The default is the best
  // available: per-class specialised kernels, compiled at Register() time.
  StepTier step_tier = StepTier::kSpecialised;

  // Instances preallocated per event-serialisation context (§4.4.1:
  // "we preallocate a fixed-size memory block per thread, giving a
  // deterministic memory footprint, and report overflows").
  size_t instances_per_context = 256;

  // Global-automaton storage shards. Each global automaton class is assigned
  // to one of `global_shards` contexts (class id modulo shard count), each
  // behind its own spinlock, so independent global automata no longer
  // serialise against each other (fig. 12's cost is per-shard, not
  // process-wide). Clamped to [1, 64]; 1 reproduces the paper's single
  // explicitly-synchronised store.
  size_t global_shards = 8;

  // Flight recorder / trace capture (src/trace). kFlightRecorder keeps the
  // last `trace_ring_capacity` events per context in wait-free SPSC rings so
  // violations carry a temporal backtrace; kFullCapture additionally retains
  // the complete event history (up to `trace_capture_limit` records per
  // context) for writing a replayable capture file.
  trace::TraceMode trace_mode = trace::TraceMode::kOff;
  size_t trace_ring_capacity = 4096;
  size_t trace_capture_limit = 1 << 20;
  // Events shown in a violation's temporal backtrace.
  size_t trace_backtrace_events = 16;

  // Asynchronous ingestion (src/queue, layered above the runtime): when
  // async_queue is set, frontends construct an EventQueue over this runtime
  // so instrumented callers pay only an SPSC-ring enqueue and one consumer
  // thread runs all dispatch. The knobs live here so one options struct
  // configures a whole run (the runtime itself never reads them; see
  // queue::QueueOptions::FromRuntime).
  bool async_queue = false;
  // Per-producer ring slots (rounded up to a power of two).
  size_t queue_ring_capacity = 4096;
  // Max events per consumer Runtime::OnEvents() batch.
  size_t queue_batch_events = 256;
  // Full-ring policy: false blocks the producer (lossless), true drops the
  // event and counts it (RuntimeStats::queue_drops).
  bool queue_drop_on_full = false;
  // Drain threads. Each consumer owns the global shards whose index is
  // congruent to it modulo the consumer count (see Runtime shard ownership):
  // owned shards skip their spinlock on the drain hot path. 1 reproduces the
  // original single-consumer queue.
  size_t queue_consumers = 1;

  // Cross-process publication (src/ipc, layered above the runtime like the
  // async queue): when shm_publish names a POSIX shm segment, frontends
  // construct a ShmPublisher over this runtime so every event is shipped to
  // an external sidecar checker (`tesla-trace attach <name>`) instead of
  // being dispatched in-process. The runtime itself never reads these; see
  // ipc::PublisherOptions::FromRuntime.
  std::string shm_publish;
  // SPSC lanes in the segment — the max producer threads that can publish
  // concurrently (threads beyond this drop events, counted in the header).
  size_t shm_lanes = 8;
  // Per-lane capacity in events (worst-case records; rounded up to a power
  // of two of words).
  size_t shm_lane_capacity = 1 << 14;
  // Full-lane policy: false blocks the producer until the sidecar drains
  // (lossless), true drops the event and counts it.
  bool shm_drop_on_full = false;

  // Continuous observability (src/metrics). kCounters keeps per-class
  // counters and the transition-coverage bitmap (a few ns/event, sharded
  // single-writer cells merged only at snapshot time); kFull additionally
  // times every dispatch into log-bucketed per-event-kind histograms (two
  // clock reads per event). Snapshots: Runtime::CollectMetrics().
  metrics::MetricsMode metrics_mode = metrics::MetricsMode::kOff;

  // Workload profiling (src/profile, layered beside metrics). When on, every
  // dispatch records instance fan-out, index-probe/scan attribution,
  // binding-key distinct-value sketches and sampled dispatch latency into
  // per-context single-writer shards (~3 ns/event; BENCH_profile.json gates
  // the overhead). Snapshots: Runtime::CollectProfile(); captures embed them
  // in the TSLATRC v5 footer and `tesla-trace profile` renders the report.
  bool profile = false;

  // Profile-guided plan hints (see profile/hints.h), typically loaded from a
  // prior run's `--profile-out` file. Consumed at Register() time: per-class
  // SlotPool capacity hints size each context's pool (replacing the single
  // instances_per_context knob with data), per-class min_population overrides
  // re-enable the index probe, and prefix_key_pos builds a secondary
  // prefix-key index for classes whose profile shows partially-bound scan
  // fallbacks. Unknown class names are ignored (the profile may cover more
  // automata than this manifest registers).
  profile::PlanHints plan_hints;

  MemoryReader memory_reader;

  // Monotonic clock override, nanoseconds. Used by every runtime clock read:
  // timed-clause event stamping, dispatch-latency histograms and the profile
  // latency sampler. Null uses std::chrono::steady_clock. Tests inject
  // stepped or backwards clocks through this; production leaves it null.
  std::function<uint64_t()> now_ns;
};

enum class ViolationKind {
  kBadSite,          // assertion site reached but no instance could accept it
  kBadCleanup,       // bound closed with an automaton mid-way (e.g. unmet eventually)
  kStrictEvent,      // strict() automaton observed an unconsumable event
  kOverflow,         // instance pool exhausted; event dropped
  // Appended for timed assertions (TSLATRC v6); the capture reader's
  // kind-validity check tracks the last enumerator here.
  kDeadlineExpired,  // within_ms() region still live past its deadline
  kRateExceeded,     // rate() region saw more than its limit in one window
};

struct Violation {
  ViolationKind kind = ViolationKind::kBadSite;
  std::string automaton;
  std::string detail;
  // Violation forensics (trace_mode != off): the temporal backtrace of the
  // last recorded events relevant to the violating automaton, followed by
  // the automaton's DOT graph with the states live at the violation
  // highlighted. Empty when the flight recorder is off.
  std::string backtrace;
};

const char* ViolationKindName(ViolationKind kind);

// The global RuntimeStats schema. This X-macro is the single source of truth
// for the struct itself, the trace-capture footer table (trace::kStatsFields)
// and the metrics exposition — a counter added or removed here moves every
// consumer at once, so a field can never be silently dropped from the wire.
// Order matters: it is the footer's field order, and captures written by
// older builds carry a prefix of this list (see trace/format.h) — new
// counters may only be appended, never inserted or reordered.
//
// The third column is replay comparability: 1 when a faithful replay of the
// captured event stream must reproduce the counter exactly, 0 for counters
// fed by ingestion-side or wall-clock machinery (the async queue front-end,
// dispatch timing) that a replay legitimately does not reproduce. Replay
// still records and displays the 0-column fields; it just never calls a
// mismatch a divergence.
//
// Notes on individual fields:
//   * accepts — automaton acceptance (§4.4.2 finalisation).
//   * ignored_events — events with no consumable transition (non-strict).
//   * arg_truncations — argument lists exceeding kMaxEventArgs.
//   * site_variant_truncations — incallstack() variants dropped at a site;
//     always zero since the site symbol buffer became growable, kept so
//     stats consumers and the trace-file footer keep a stable schema.
//   * unmatched_returns — kFunctionReturn with no tracked call to match
//     (stream starts mid-call, e.g. a wrapped flight-recorder capture);
//     the per-context stack depth is clamped at zero instead of going
//     negative and poisoning incallstack() for the rest of the run.
//   * negative_latencies — dispatch timings whose clock delta came back
//     negative; the sample is clamped into bucket 0, and counted here so a
//     stepped clock cannot quietly drag the histogram p50 down.
//   * queue_* — the tesla::queue async ingestion front-end: events
//     delivered through consumer batches, events dropped at enqueue under
//     the drop policy, and OnEvents batches dispatched. With multiple drain
//     threads (queue_consumers > 1) these are sums over every consumer —
//     queue_batches in particular counts each consumer's OnEvents calls, so
//     it is a per-consumer sum, not a single thread's cadence.
//   * queue_forwards / queue_steals — multi-consumer routing: records
//     forwarded to the consumer owning a touched shard, and whole batches
//     stolen from a skewed producer's ring by an idle consumer.
//   * shard_handoffs — inline (non-queue) dispatches that landed on a shard
//     currently owned by a consumer and had to run the locked handoff
//     protocol to intrude on it.
#define TESLA_RUNTIME_STATS(X)                                                \
  X(events, "program events examined", 1)                                     \
  X(bound_entries, "temporal-bound entries (init transitions or lazy epoch bumps)", 1) \
  X(bound_exits, "temporal-bound exits (cleanup sweeps)", 1)                  \
  X(instances_created, "automaton instances created", 1)                      \
  X(instances_cloned, "automaton instances cloned", 1)                        \
  X(transitions, "automaton transitions taken", 1)                            \
  X(accepts, "automaton acceptances", 1)                                      \
  X(violations, "assertion violations reported", 1)                           \
  X(overflows, "instance-pool overflows (events dropped)", 1)                 \
  X(ignored_events, "events consumable by no instance (non-strict)", 1)       \
  X(arg_truncations, "events with truncated argument lists", 1)               \
  X(index_probes, "dispatches answered by one index-bucket probe", 1)         \
  X(index_scans, "indexed dispatches falling back to a full scan", 1)         \
  X(site_variant_truncations, "incallstack() site variants dropped (always 0)", 1) \
  X(unmatched_returns, "function returns with no matching tracked call", 1)   \
  X(negative_latencies, "dispatch timings with a negative clock delta (clamped)", 0) \
  X(queue_events, "events delivered through the async ingestion queue", 0)    \
  X(queue_drops, "events dropped at enqueue (async queue, drop policy)", 0)   \
  X(queue_batches, "OnEvents batches dispatched by the async queue (summed over consumers)", 0) \
  X(queue_forwards, "records forwarded between queue consumers for shard-stage dispatch", 0) \
  X(queue_steals, "producer batches stolen by an idle queue consumer", 0)     \
  X(shard_handoffs, "inline dispatches that intruded on a consumer-owned shard", 0) \
  X(deadline_arms, "within_ms() deadlines armed", 1)                          \
  X(deadline_expiries, "within_ms() deadlines that expired (kDeadlineExpired)", 1) \
  X(rate_violations, "rate() windows that exceeded their limit (kRateExceeded)", 1) \
  X(clock_regressions, "event timestamps that stepped backwards mid-window (clamped)", 1)

struct RuntimeStats {
#define TESLA_STATS_MEMBER(name, desc, replay) uint64_t name = 0;
  TESLA_RUNTIME_STATS(TESLA_STATS_MEMBER)
#undef TESLA_STATS_MEMBER
};

inline constexpr size_t kRuntimeStatsFieldCount = 0
#define TESLA_STATS_COUNT(name, desc, replay) +1
    TESLA_RUNTIME_STATS(TESLA_STATS_COUNT)
#undef TESLA_STATS_COUNT
    ;

// Every field is one uint64_t: anything else would desynchronise the
// generated field tables from the struct layout.
static_assert(sizeof(RuntimeStats) == kRuntimeStatsFieldCount * sizeof(uint64_t),
              "RuntimeStats must contain exactly the TESLA_RUNTIME_STATS fields");

}  // namespace tesla::runtime

#endif  // TESLA_RUNTIME_OPTIONS_H_
