#include "runtime/step.h"

#include <bit>
#include <utility>

#include "runtime/coverage.h"

// Computed-goto opcode dispatch for the threaded tier; the portable switch
// below is the fallback.
#if defined(__GNUC__) || defined(__clang__)
#define TESLA_STEP_COMPUTED_GOTO 1
#else
#define TESLA_STEP_COMPUTED_GOTO 0
#endif

namespace tesla::runtime {
namespace {

using automata::StateSet;

constexpr uint32_t kNoTarget = automata::Dfa::kNoTarget;

// Shared DFA-step commit: record the pre-step view, stamp (compile-time
// gated), advance the tracked DFA state and its NFA set.
template <bool kCov>
inline void CommitDfaStep(const StepProgram& p, metrics::Collector* collector,
                          StateSet& states, uint32_t& dfa_state, uint16_t symbol,
                          uint32_t target, StateSet* from_out, uint16_t* symbol_out) {
  *from_out = states;
  *symbol_out = symbol;
  if constexpr (kCov) {
    StampTransition(collector, p.cov_first, p.symbol_count, dfa_state, symbol);
  }
  dfa_state = target;
  states = p.dfa_sets[target];
}

// Shared NFA-step commit: the mirrored dfa_flat stamp (see coverage.h). A
// multi-symbol union with no single-symbol DFA edge leaves the mirror alone
// and stamps nothing — undercount, never misattribute.
template <bool kCov>
inline void CommitNfaStep(const StepProgram& p, metrics::Collector* collector,
                          StateSet& states, uint32_t& dfa_state, uint16_t stepped,
                          StateSet next, StateSet* from_out, uint16_t* symbol_out) {
  *from_out = states;
  *symbol_out = stepped;
  states = next;
  if constexpr (kCov) {
    const uint32_t target = p.rows[static_cast<size_t>(dfa_state) * p.symbol_count + stepped];
    if (target != kNoTarget) {
      StampTransition(collector, p.cov_first, p.symbol_count, dfa_state, stepped);
      dfa_state = target;
    }
  }
}

// --- interpreted tier: the seed's walk, verbatim ---

template <bool kUseDfa>
bool StepInterpreted(const StepProgram& p, metrics::Collector* collector, StateSet& states,
                     uint32_t& dfa_state, const uint16_t* symbols, size_t n,
                     StateSet* from_out, uint16_t* symbol_out) {
  if constexpr (kUseDfa) {
    for (size_t i = 0; i < n; i++) {
      const uint16_t symbol = symbols[i];
      const uint32_t target = p.dfa->Step(dfa_state, symbol);
      if (target == kNoTarget) {
        continue;
      }
      *from_out = states;
      *symbol_out = symbol;
      if (collector != nullptr) {
        StampTransition(collector, p.cov_first, p.symbol_count, dfa_state, symbol);
      }
      dfa_state = target;
      states = p.dfa->states[target].nfa_states;
      return true;
    }
    return false;
  } else {
    StateSet next = 0;
    uint16_t stepped = n == 0 ? 0 : symbols[0];
    for (size_t i = 0; i < n; i++) {
      const StateSet result = p.automaton->Step(states, symbols[i]);
      if (result != 0 && next == 0) {
        stepped = symbols[i];
      }
      next |= result;
    }
    if (next == 0) {
      return false;
    }
    *from_out = states;
    *symbol_out = stepped;
    states = next;
    if (collector != nullptr) {
      const uint32_t target =
          p.rows[static_cast<size_t>(dfa_state) * p.symbol_count + stepped];
      if (target != kNoTarget) {
        StampTransition(collector, p.cov_first, p.symbol_count, dfa_state, stepped);
        dfa_state = target;
      }
    }
    return true;
  }
}

// --- threaded tier: bytecode executor ---

template <bool kCov>
bool StepThreaded(const StepProgram& p, metrics::Collector* collector, StateSet& states,
                  uint32_t& dfa_state, const uint16_t* symbols, size_t n, StateSet* from_out,
                  uint16_t* symbol_out) {
  const uint32_t* code = p.code.data();
  const uint32_t* entry = p.entry.data();

  if ((code[0] & 1u) != 0) {
    // DFA-semantics program: first consumable symbol wins.
    for (size_t i = 0; i < n; i++) {
      const uint16_t symbol = symbols[i];
      const uint32_t off = entry[symbol];
      if (off == 0) {
        continue;  // dead symbol, pruned at assembly
      }
      const uint32_t* op = code + off;
      uint32_t target = kNoTarget;
#if TESLA_STEP_COMPUTED_GOTO
      {
        static const void* const kDispatch[] = {&&op_edge, &&op_chain, &&op_row};
        goto* kDispatch[op[0] & 0xffu];
      op_edge:
        if (dfa_state == op[1]) {
          target = op[2];
        }
        goto op_done;
      op_chain: {
        const uint32_t count = op[0] >> 8;
        for (uint32_t e = 0; e < count; e++) {
          if (op[1 + 2 * e] == dfa_state) {
            target = op[2 + 2 * e];
            break;
          }
        }
        goto op_done;
      }
      op_row:
        target = op[1 + dfa_state];
      op_done:;
      }
#else
      switch (op[0] & 0xffu) {
        case kStepOpEdge:
          if (dfa_state == op[1]) {
            target = op[2];
          }
          break;
        case kStepOpChain: {
          const uint32_t count = op[0] >> 8;
          for (uint32_t e = 0; e < count; e++) {
            if (op[1 + 2 * e] == dfa_state) {
              target = op[2 + 2 * e];
              break;
            }
          }
          break;
        }
        default:
          target = op[1 + dfa_state];
          break;
      }
#endif
      if (target == kNoTarget) {
        continue;
      }
      CommitDfaStep<kCov>(p, collector, states, dfa_state, symbol, target, from_out,
                          symbol_out);
      return true;
    }
    return false;
  }

  // NFA union program: every op is kStepOpNfa.
  StateSet next = 0;
  uint16_t stepped = n == 0 ? 0 : symbols[0];
  for (size_t i = 0; i < n; i++) {
    const uint16_t symbol = symbols[i];
    const uint32_t off = entry[symbol];
    if (off == 0) {
      continue;
    }
    const uint32_t* op = code + off;
    const StateSet mask =
        static_cast<StateSet>(op[1]) | (static_cast<StateSet>(op[2]) << 32);
    StateSet rest = states & mask;
    if (rest == 0) {
      continue;
    }
    const uint32_t* sets = op + 3;
    StateSet result = 0;
    do {
      const int s = std::countr_zero(rest);
      result |= static_cast<StateSet>(sets[2 * s]) |
                (static_cast<StateSet>(sets[2 * s + 1]) << 32);
      rest &= rest - 1;
    } while (rest != 0);
    if (result != 0 && next == 0) {
      stepped = symbol;
    }
    next |= result;
  }
  if (next == 0) {
    return false;
  }
  CommitNfaStep<kCov>(p, collector, states, dfa_state, stepped, next, from_out, symbol_out);
  return true;
}

// --- specialised tier ---

// DFA-trackable classes (and the use_dfa ablation): one row load per symbol.
template <bool kCov>
bool StepDfaRow(const StepProgram& p, metrics::Collector* collector, StateSet& states,
                uint32_t& dfa_state, const uint16_t* symbols, size_t n, StateSet* from_out,
                uint16_t* symbol_out) {
  const uint32_t* rows = p.rows.data();
  for (size_t i = 0; i < n; i++) {
    const uint16_t symbol = symbols[i];
    const uint32_t target = rows[static_cast<size_t>(dfa_state) * p.symbol_count + symbol];
    if (target == kNoTarget) {
      continue;
    }
    CommitDfaStep<kCov>(p, collector, states, dfa_state, symbol, target, from_out,
                        symbol_out);
    return true;
  }
  return false;
}

// Small DFA-trackable classes: the symbol's whole transition row is one u64
// (a byte per DFA state), so the "table" is a register and the step is a
// load, a shift and a compare — no row indexing at all.
template <bool kCov>
bool StepDfaPacked(const StepProgram& p, metrics::Collector* collector, StateSet& states,
                   uint32_t& dfa_state, const uint16_t* symbols, size_t n,
                   StateSet* from_out, uint16_t* symbol_out) {
  const uint64_t* packed = p.packed.data();
  for (size_t i = 0; i < n; i++) {
    const uint16_t symbol = symbols[i];
    const uint32_t target =
        static_cast<uint32_t>((packed[symbol] >> (dfa_state * 8)) & 0xff);
    if (target == kStepPackedMiss) {
      continue;
    }
    CommitDfaStep<kCov>(p, collector, states, dfa_state, symbol, target, from_out,
                        symbol_out);
    return true;
  }
  return false;
}

// incallstack() classes: exact NFA semantics from flat mask/target tables —
// no per-state edge vectors to chase.
template <bool kCov>
bool StepNfaMask(const StepProgram& p, metrics::Collector* collector, StateSet& states,
                 uint32_t& dfa_state, const uint16_t* symbols, size_t n, StateSet* from_out,
                 uint16_t* symbol_out) {
  StateSet next = 0;
  uint16_t stepped = n == 0 ? 0 : symbols[0];
  for (size_t i = 0; i < n; i++) {
    const uint16_t symbol = symbols[i];
    StateSet rest = states & p.nfa_sources[symbol];
    if (rest == 0) {
      continue;
    }
    const StateSet* targets =
        p.nfa_targets.data() + static_cast<size_t>(symbol) * p.nfa_state_count;
    StateSet result = 0;
    do {
      result |= targets[std::countr_zero(rest)];
      rest &= rest - 1;
    } while (rest != 0);
    if (result != 0 && next == 0) {
      stepped = symbol;
    }
    next |= result;
  }
  if (next == 0) {
    return false;
  }
  CommitNfaStep<kCov>(p, collector, states, dfa_state, stepped, next, from_out, symbol_out);
  return true;
}

// The batch entry point for one kernel: the per-step function is a non-type
// template parameter, so each family's batch is the kernel inlined into a
// tight slot loop — its tables are hoisted into registers and the per-slot
// cost is the step itself, not a dispatch round trip. Used by the unbound
// fast path of Runtime::DispatchScan, which discards the out-params.
template <StepFn kFn>
uint32_t StepBatch(const StepProgram& p, metrics::Collector* collector, InstanceHot* hot,
                   const uint32_t* slots, size_t slot_count, const uint16_t* symbols,
                   size_t symbol_count) {
  uint32_t stepped = 0;
  StateSet from = 0;
  uint16_t symbol = 0;
  for (size_t i = 0; i < slot_count; i++) {
    InstanceHot& h = hot[slots[i]];
    if (kFn(p, collector, h.states, h.dfa_state, symbols, symbol_count, &from, &symbol)) {
      stepped++;
    }
  }
  return stepped;
}

// Installs a kernel and its batch twin together, so no tier can end up with
// a mismatched pair.
template <StepFn kFn>
void SetKernel(StepProgram& p) {
  p.fn = kFn;
  p.batch = &StepBatch<kFn>;
}

// --- compilation ---

void BuildPacked(StepProgram& p) {
  p.packed.assign(p.symbol_count, ~uint64_t{0});
  for (uint32_t symbol = 0; symbol < p.symbol_count; symbol++) {
    for (uint32_t state = 0; state < p.dfa_state_count; state++) {
      const uint32_t target = p.rows[static_cast<size_t>(state) * p.symbol_count + symbol];
      if (target == kNoTarget) {
        continue;
      }
      p.packed[symbol] &= ~(uint64_t{0xff} << (state * 8));
      p.packed[symbol] |= uint64_t{target} << (state * 8);
    }
  }
}

void AssembleBytecode(StepProgram& p,
                      const std::vector<std::vector<automata::StepLowering::DfaEdge>>& edges,
                      bool dfa_semantics) {
  p.code = {dfa_semantics ? 1u : 0u, p.symbol_count, p.nfa_state_count};
  p.entry.assign(p.symbol_count, 0);
  for (uint32_t symbol = 0; symbol < p.symbol_count; symbol++) {
    if (dfa_semantics) {
      const auto& symbol_edges = edges[symbol];
      if (symbol_edges.empty()) {
        continue;  // dead symbol: entry offset 0
      }
      p.entry[symbol] = static_cast<uint32_t>(p.code.size());
      if (symbol_edges.size() == 1) {
        // Single-transition collapse: one compare instead of a row.
        p.code.push_back(kStepOpEdge);
        p.code.push_back(symbol_edges[0].from);
        p.code.push_back(symbol_edges[0].to);
      } else if (symbol_edges.size() <= 4) {
        p.code.push_back(kStepOpChain | (static_cast<uint32_t>(symbol_edges.size()) << 8));
        for (const auto& edge : symbol_edges) {
          p.code.push_back(edge.from);
          p.code.push_back(edge.to);
        }
      } else {
        // Dense row inlined as immediates.
        p.code.push_back(kStepOpRow | (p.dfa_state_count << 8));
        for (uint32_t state = 0; state < p.dfa_state_count; state++) {
          p.code.push_back(p.rows[static_cast<size_t>(state) * p.symbol_count + symbol]);
        }
      }
    } else {
      const StateSet mask = p.nfa_sources[symbol];
      if (mask == 0) {
        continue;
      }
      p.entry[symbol] = static_cast<uint32_t>(p.code.size());
      p.code.push_back(kStepOpNfa | (p.nfa_state_count << 8));
      p.code.push_back(static_cast<uint32_t>(mask));
      p.code.push_back(static_cast<uint32_t>(mask >> 32));
      for (uint32_t state = 0; state < p.nfa_state_count; state++) {
        const StateSet target =
            p.nfa_targets[static_cast<size_t>(symbol) * p.nfa_state_count + state];
        p.code.push_back(static_cast<uint32_t>(target));
        p.code.push_back(static_cast<uint32_t>(target >> 32));
      }
    }
  }
}

}  // namespace

StepProgram CompileStepProgram(const automata::Automaton& automaton, const automata::Dfa& dfa,
                               automata::StepLowering lowering,
                               const StepCompileOptions& options) {
  StepProgram p;
  p.tier = options.tier;
  p.use_dfa = options.use_dfa;
  p.dfa_track = lowering.single_symbol_steps;
  p.automaton = &automaton;
  p.dfa = &dfa;
  p.dfa_state_count = lowering.dfa_state_count;
  p.symbol_count = lowering.symbol_count;
  p.nfa_state_count = lowering.nfa_state_count;
  p.cov_first = options.cov_first;
  p.rows = std::move(lowering.rows);
  p.dfa_sets = std::move(lowering.dfa_sets);
  p.nfa_sources = std::move(lowering.sources);
  p.nfa_targets = std::move(lowering.targets);

  const bool dfa_semantics = options.use_dfa || p.dfa_track;
  switch (options.tier) {
    case StepTier::kInterpreted:
      if (options.use_dfa) {
        SetKernel<&StepInterpreted<true>>(p);
      } else {
        SetKernel<&StepInterpreted<false>>(p);
      }
      break;
    case StepTier::kThreaded:
      AssembleBytecode(p, lowering.symbol_edges, dfa_semantics);
      if (options.coverage) {
        SetKernel<&StepThreaded<true>>(p);
      } else {
        SetKernel<&StepThreaded<false>>(p);
      }
      break;
    case StepTier::kSpecialised:
      if (dfa_semantics) {
        if (p.dfa_state_count <= 8 && p.symbol_count <= 64) {
          BuildPacked(p);
          if (options.coverage) {
            SetKernel<&StepDfaPacked<true>>(p);
          } else {
            SetKernel<&StepDfaPacked<false>>(p);
          }
        } else if (options.coverage) {
          SetKernel<&StepDfaRow<true>>(p);
        } else {
          SetKernel<&StepDfaRow<false>>(p);
        }
      } else if (options.coverage) {
        SetKernel<&StepNfaMask<true>>(p);
      } else {
        SetKernel<&StepNfaMask<false>>(p);
      }
      break;
  }
  return p;
}

}  // namespace tesla::runtime
