// Structure-of-arrays instance storage and the binding-keyed instance index.
//
// The seed kept automaton instances as pool-allocated AoS records behind
// `std::vector<Instance*>`, so every event routed to a class walked all live
// instances twice (exact-match pass, then clone pass) touching one ~90-byte
// record per step — per-event cost grew linearly with live instances
// (thousands of sockets/vnodes in the kernelsim workloads).
//
// InstanceStore splits the record: the fields the stepping hot path reads
// (NFA state set, DFA state, bound-variable mask) live in one dense 16-byte
// `InstanceHot` entry per slot (the layout is defined in runtime/step.h so
// the batch step kernels can walk the array directly), while the bound
// *values* live out-of-line — the exact-match pass touches one cache line per
// instance, four instances per line. Slots come from a SlotPool (fixed
// capacity, counted overflow, §4.4.1's deterministic-footprint contract).
//
// KeyIndex is a compact open-addressing hash map from an instance's *key
// tuple* — the values of the class's key variables, those bound by clone
// events (computed per class at plan-compile time) — to a chain of slots
// threaded through InstanceStore::next(). An event whose bindings cover
// exactly the key variables probes one bucket instead of scanning all
// instances; instances missing a key variable (the (∗) wildcard and partial
// bindings) stay in a short unkeyed tail. Buckets are cleared wholesale on
// bound cleanup, never element-by-element, which keeps coherence trivial.
#ifndef TESLA_RUNTIME_INSTANCE_STORE_H_
#define TESLA_RUNTIME_INSTANCE_STORE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "runtime/instance.h"
#include "runtime/step.h"
#include "support/hash.h"
#include "support/pool.h"

namespace tesla::runtime {

inline constexpr uint32_t kNoSlot = SlotPool::kNoSlot;

class InstanceStore {
 public:
  explicit InstanceStore(size_t capacity)
      : pool_(capacity),
        hot_(capacity),
        values_(capacity),
        next_(capacity, kNoSlot),
        next2_(capacity, kNoSlot) {}

  InstanceStore(const InstanceStore&) = delete;
  InstanceStore& operator=(const InstanceStore&) = delete;

  // Returns kNoSlot (counted) when full; otherwise a slot reset to the
  // wildcard state (nothing bound, all values zero).
  uint32_t Allocate() {
    uint32_t slot = pool_.Allocate();
    if (slot == kNoSlot) {
      return kNoSlot;
    }
    hot_[slot] = InstanceHot{};
    values_[slot] = {};
    next_[slot] = kNoSlot;
    next2_[slot] = kNoSlot;
    return slot;
  }

  void Free(uint32_t slot) { pool_.Free(slot); }

  automata::StateSet& states(uint32_t slot) { return hot_[slot].states; }
  uint32_t& dfa_state(uint32_t slot) { return hot_[slot].dfa_state; }
  // Raw hot array, for StepProgram::RunBatch's slot loop.
  InstanceHot* hot_data() { return hot_.data(); }
  uint32_t bound_mask(uint32_t slot) const { return hot_[slot].bound_mask; }
  const std::array<int64_t, kMaxVariables>& values(uint32_t slot) const {
    return values_[slot];
  }
  // Bucket-chain link (owned by the class's KeyIndex).
  uint32_t& next(uint32_t slot) { return next_[slot]; }
  uint32_t next(uint32_t slot) const { return next_[slot]; }
  // Second bucket-chain link, for the profile-hinted secondary prefix index
  // (an instance can sit in both the full-key chain and a prefix chain).
  uint32_t& next2(uint32_t slot) { return next2_[slot]; }
  uint32_t next2(uint32_t slot) const { return next2_[slot]; }

  void Bind(uint32_t slot, uint16_t var, int64_t value) {
    hot_[slot].bound_mask |= 1u << var;
    values_[slot][var] = value;
  }

  // Writes a stack-built candidate (see the clone pass) into `slot`.
  void Assign(uint32_t slot, const Instance& instance) {
    hot_[slot].states = instance.states;
    hot_[slot].dfa_state = instance.dfa_state;
    hot_[slot].bound_mask = instance.bound_mask;
    values_[slot] = instance.values;
    next_[slot] = kNoSlot;
    next2_[slot] = kNoSlot;
  }

  // AoS view of a slot, for handler callbacks and violation reports.
  Instance Materialize(uint32_t slot) const {
    Instance instance;
    instance.bound_mask = hot_[slot].bound_mask;
    instance.values = values_[slot];
    instance.states = hot_[slot].states;
    instance.dfa_state = hot_[slot].dfa_state;
    return instance;
  }

  bool IsBound(uint32_t slot, uint16_t var) const {
    return (hot_[slot].bound_mask & (1u << var)) != 0;
  }

  // Slot-wise twins of Instance::ExactMatch / ConsistentWith.
  bool ExactMatch(uint32_t slot, const Binding* bindings, size_t count) const {
    for (size_t i = 0; i < count; i++) {
      if (!IsBound(slot, bindings[i].var) ||
          values_[slot][bindings[i].var] != bindings[i].value) {
        return false;
      }
    }
    return true;
  }

  bool ConsistentWith(uint32_t slot, const Binding* bindings, size_t count) const {
    for (size_t i = 0; i < count; i++) {
      if (IsBound(slot, bindings[i].var) &&
          values_[slot][bindings[i].var] != bindings[i].value) {
        return false;
      }
    }
    return true;
  }

  size_t capacity() const { return pool_.capacity(); }
  size_t live() const { return pool_.live(); }
  size_t high_water() const { return pool_.high_water(); }
  uint64_t overflows() const { return pool_.overflows(); }
  void ResetOverflows() { pool_.ResetOverflows(); }
  void ResetHighWater() { pool_.ResetHighWater(); }

 private:
  SlotPool pool_;
  std::vector<InstanceHot> hot_;
  std::vector<std::array<int64_t, kMaxVariables>> values_;  // out-of-line
  std::vector<uint32_t> next_;   // bucket chains, threaded per slot
  std::vector<uint32_t> next2_;  // secondary (prefix-index) chains
};

// Hashes a key tuple (the values of a class's key variables, in ascending
// variable order).
inline uint64_t HashKeyTuple(const int64_t* key, size_t count) {
  uint64_t hash = kFnvOffsetBasis;
  for (size_t i = 0; i < count; i++) {
    hash = HashCombine(hash, HashU64(static_cast<uint64_t>(key[i])));
  }
  // Finalise so that low bits (the table index) see every input.
  return HashU64(hash);
}

// Open-addressing map: key-tuple hash → head slot of a chain of instances
// sharing that key tuple. Cell identity is the *tuple*, not the hash — the
// caller confirms equality against the chain head via `eq(slot)` (all chain
// members share one tuple by construction). Supports insert-at-head and
// wholesale Clear() only; instances are never expunged one at a time
// (activation and cleanup replace a class's whole population).
class KeyIndex {
 public:
  KeyIndex() = default;

  // Returns the chain head for the probed tuple, or kNoSlot.
  template <typename KeyEq>
  uint32_t Find(uint64_t hash, KeyEq&& eq) const {
    if (cells_.empty()) {
      return kNoSlot;
    }
    const size_t mask = cells_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      const Cell& cell = cells_[i];
      if (cell.head == kNoSlot) {
        return kNoSlot;
      }
      if (cell.hash == hash && eq(cell.head)) {
        return cell.head;
      }
    }
  }

  // Makes `slot` the head of its tuple's chain; returns the previous head
  // (kNoSlot for a fresh tuple) so the caller can link slot → previous.
  template <typename KeyEq>
  uint32_t InsertHead(uint64_t hash, KeyEq&& eq, uint32_t slot) {
    if (cells_.size() < 2 * (used_ + 1)) {
      Grow();
    }
    const size_t mask = cells_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      Cell& cell = cells_[i];
      if (cell.head == kNoSlot) {
        cell = Cell{hash, slot};
        used_++;
        return kNoSlot;
      }
      if (cell.hash == hash && eq(cell.head)) {
        uint32_t previous = cell.head;
        cell.head = slot;
        return previous;
      }
    }
  }

  void Clear() {
    std::fill(cells_.begin(), cells_.end(), Cell{});
    used_ = 0;
  }

  size_t tuple_count() const { return used_; }

 private:
  struct Cell {
    uint64_t hash = 0;
    uint32_t head = kNoSlot;  // kNoSlot marks an empty cell
  };

  void Grow() {
    size_t capacity = cells_.empty() ? 16 : cells_.size() * 2;
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(capacity, Cell{});
    const size_t mask = capacity - 1;
    for (const Cell& cell : old) {
      if (cell.head == kNoSlot) {
        continue;
      }
      size_t i = cell.hash & mask;
      while (cells_[i].head != kNoSlot) {
        i = (i + 1) & mask;
      }
      cells_[i] = cell;
    }
  }

  std::vector<Cell> cells_;
  size_t used_ = 0;
};

}  // namespace tesla::runtime

#endif  // TESLA_RUNTIME_INSTANCE_STORE_H_
