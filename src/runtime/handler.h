// Pluggable event-notification framework (paper §4.4.2).
//
// libtesla reports instance initialisation, clones, updates, errors and
// finalisation (automaton acceptance) to registered handlers. The default
// userspace handler writes to stderr under TESLA_DEBUG; CountingHandler plays
// the role of the paper's DTrace aggregation, counting "how often a
// transition is triggered" and feeding the weighted graphs of fig. 9.
#ifndef TESLA_RUNTIME_HANDLER_H_
#define TESLA_RUNTIME_HANDLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "automata/automaton.h"
#include "runtime/instance.h"
#include "runtime/options.h"

namespace tesla::runtime {

struct ClassInfo {
  uint32_t id = 0;
  const automata::Automaton* automaton = nullptr;
};

class EventHandler {
 public:
  virtual ~EventHandler() = default;

  virtual void OnInstanceNew(const ClassInfo& cls, const Instance& instance) {}
  virtual void OnClone(const ClassInfo& cls, const Instance& parent, const Instance& clone) {}
  virtual void OnTransition(const ClassInfo& cls, const Instance& instance,
                            automata::StateSet from, uint16_t symbol, automata::StateSet to) {}
  virtual void OnAccept(const ClassInfo& cls, const Instance& instance) {}
  virtual void OnViolation(const ClassInfo& cls, const Violation& violation) {}
  // Non-fatal runtime degradations (e.g. dropped incallstack() site variants)
  // that are counted in RuntimeStats but deserve one loud notice.
  virtual void OnWarning(const ClassInfo& cls, const std::string& message) {}
};

// Writes one line per event to stderr (gated by the caller wiring it up only
// when TESLA_DEBUG requests it).
class StderrHandler : public EventHandler {
 public:
  void OnInstanceNew(const ClassInfo& cls, const Instance& instance) override;
  void OnClone(const ClassInfo& cls, const Instance& parent, const Instance& clone) override;
  void OnTransition(const ClassInfo& cls, const Instance& instance, automata::StateSet from,
                    uint16_t symbol, automata::StateSet to) override;
  void OnAccept(const ClassInfo& cls, const Instance& instance) override;
  void OnViolation(const ClassInfo& cls, const Violation& violation) override;
  void OnWarning(const ClassInfo& cls, const std::string& message) override;
};

// Aggregates transition counts per (class, source state-set, symbol): the
// DTrace-style aggregation used for coverage-style inspection and fig. 9's
// edge weights.
class CountingHandler : public EventHandler {
 public:
  using Key = std::pair<automata::StateSet, uint16_t>;

  void OnTransition(const ClassInfo& cls, const Instance& instance, automata::StateSet from,
                    uint16_t symbol, automata::StateSet to) override {
    counts_[cls.id][{from, symbol}]++;
  }
  void OnViolation(const ClassInfo& cls, const Violation& violation) override {
    violations_.push_back(violation);
  }

  const std::map<Key, uint64_t>& CountsFor(uint32_t class_id) const {
    static const std::map<Key, uint64_t> kEmpty;
    auto it = counts_.find(class_id);
    return it == counts_.end() ? kEmpty : it->second;
  }
  const std::vector<Violation>& violations() const { return violations_; }

 private:
  std::map<uint32_t, std::map<Key, uint64_t>> counts_;
  std::vector<Violation> violations_;
};

}  // namespace tesla::runtime

#endif  // TESLA_RUNTIME_HANDLER_H_
