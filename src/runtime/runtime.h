// libtesla: the TESLA run-time support library (paper §4.4).
//
// A Runtime holds compiled automaton classes registered from a Manifest and
// manages their instances. Events arrive through the On*() entry points —
// called either by generated event translators (the IR instrumentation path)
// or by native instrumentation scope guards (see runtime/scope.h).
//
// Event serialisation contexts (§3.2):
//   * per-thread automata store instances in a ThreadContext, one per
//     (simulated or real) thread — serialisation is implicit;
//   * global automata store instances in a runtime-owned context behind a
//     spinlock — the explicit synchronisation whose cost fig. 12 measures.
//
// Instance lifecycle (§4.4.1): «init» on the bound's start event creates the
// wildcard (∗) instance; events binding new variable values clone it; the
// assertion-site event must be consumable by some matching instance or a
// violation is reported; «cleanup» on the bound's end event checks automata
// that passed their site, reports acceptance, and expunges all instances.
#ifndef TESLA_RUNTIME_RUNTIME_H_
#define TESLA_RUNTIME_RUNTIME_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "automata/determinize.h"
#include "automata/manifest.h"
#include "runtime/handler.h"
#include "runtime/instance.h"
#include "runtime/options.h"
#include "support/pool.h"
#include "support/result.h"
#include "support/spinlock.h"

namespace tesla::runtime {

class Runtime;

// Per-serialisation-context storage for one automaton class.
struct ClassState {
  bool active = false;
  uint64_t epoch = 0;  // bound epoch at activation (lazy-init bookkeeping)
  std::vector<Instance*> instances;
};

// Lazy-init bookkeeping for one temporal bound (paper §5.2.2's optimisation:
// "keeping a per-context record of common initialisation and cleanup events
// and doing lazy initialisation of automaton instances after they received
// their first non-initialisation event").
struct BoundEpoch {
  uint64_t epoch = 0;
  bool open = false;
};

// One event-serialisation context: all per-thread automata instances for one
// thread of execution, plus its instance pool and call-stack view. Simulated
// kernels may host many ThreadContexts on one host thread.
class ThreadContext {
 public:
  explicit ThreadContext(Runtime& runtime);
  ~ThreadContext();

  ThreadContext(const ThreadContext&) = delete;
  ThreadContext& operator=(const ThreadContext&) = delete;

  // incallstack() support: whether `function` is on this context's stack.
  bool InCallStack(Symbol function) const {
    auto it = stack_depth_.find(function);
    return it != stack_depth_.end() && it->second > 0;
  }

  uint64_t pool_overflows() const { return pool_.overflows(); }

 private:
  friend class Runtime;

  Runtime& runtime_;
  std::vector<ClassState> classes_;
  FixedPool<Instance> pool_;
  std::unordered_map<uint64_t, BoundEpoch> bound_epochs_;  // keyed by start-event key
  // Lazy cleanup: classes with live instances, grouped by end-event key.
  std::unordered_map<uint64_t, std::vector<uint32_t>> active_classes_;
  std::unordered_map<Symbol, int> stack_depth_;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Compiles and registers every automaton in `manifest`. Must be called
  // before ThreadContexts are created. Fails on automata with more than
  // kMaxVariables variables or malformed bounds.
  Status Register(const automata::Manifest& manifest);

  // Looks up a registered automaton by name; returns -1 if absent.
  int FindAutomaton(const std::string& name) const;

  void AddHandler(EventHandler* handler) { handlers_.push_back(handler); }

  // --- event entry points ---

  void OnFunctionCall(ThreadContext& ctx, Symbol function, std::span<const int64_t> args);
  void OnFunctionReturn(ThreadContext& ctx, Symbol function, std::span<const int64_t> args,
                        int64_t return_value);
  // A store to `object`'s field: `old_value` is the field's prior contents
  // (the translator receives "a pointer to the field (and thus its current
  // value) and the new value", §4.2), which lets compound-assignment patterns
  // (+=, ++) match.
  void OnFieldStore(ThreadContext& ctx, Symbol field, int64_t object, int64_t old_value,
                    int64_t new_value);
  // `automaton_id` is FindAutomaton()'s result; `site_bindings` carries the
  // current values of the assertion's in-scope variables.
  void OnAssertionSite(ThreadContext& ctx, uint32_t automaton_id,
                       std::span<const Binding> site_bindings);

  const RuntimeStats& stats() const { return stats_; }
  void ResetStats() { stats_ = RuntimeStats{}; }
  const RuntimeOptions& options() const { return options_; }

  size_t class_count() const { return classes_.size(); }
  const automata::Automaton& automaton(uint32_t id) const { return classes_[id].automaton; }
  const automata::Dfa& dfa(uint32_t id) const { return classes_[id].dfa; }

 private:
  friend class ThreadContext;

  struct CompiledClass {
    uint32_t id = 0;
    automata::Automaton automaton;
    automata::Dfa dfa;
    bool is_global = false;
    uint64_t start_key = 0;  // (function, kind) key of the «init» event
    uint64_t end_key = 0;    // (function, kind) key of the «cleanup» event
    std::vector<uint16_t> site_variants;  // incallstack() symbols
    automata::StateSet initial_states = 0;
    uint32_t initial_dfa_state = 0;
  };

  struct Candidate {
    uint32_t class_id = 0;
    uint16_t symbol = 0;
  };

  // An event's variable bindings: a fixed-size buffer, one slot per variable.
  struct BindingSet {
    Binding entries[kMaxVariables];
    size_t count = 0;

    // Returns false if `var` is already present with a different value.
    bool Add(uint16_t var, int64_t value) {
      for (size_t i = 0; i < count; i++) {
        if (entries[i].var == var) {
          return entries[i].value == value;
        }
      }
      entries[count++] = Binding{var, value};
      return true;
    }
  };

  // Routing keys: function symbol + call/return discriminator.
  static uint64_t CallKey(Symbol function) { return (uint64_t{function} << 1) | 1; }
  static uint64_t ReturnKey(Symbol function) { return uint64_t{function} << 1; }

  ThreadContext& ContextFor(ThreadContext& ctx, uint32_t class_id) {
    return classes_[class_id].is_global ? *global_context_ : ctx;
  }
  ClassState& StateFor(ThreadContext& ctx, uint32_t class_id);

  void ProcessFunctionEvent(ThreadContext& ctx, Symbol function, std::span<const int64_t> args,
                            bool is_return, int64_t return_value);

  void HandleBoundStart(ThreadContext& ctx, uint64_t key);
  void HandleBoundEnd(ThreadContext& ctx, uint64_t key);
  void ActivateClass(ThreadContext& ctx, uint32_t class_id);
  void CleanupClass(ThreadContext& ctx, uint32_t class_id);
  // Returns true if the class is (or, lazily, becomes) active.
  bool EnsureActive(ThreadContext& ctx, uint32_t class_id);

  void HandleEvent(ThreadContext& ctx, const Candidate& candidate, const BindingSet& bindings);
  void HandleSiteEvent(ThreadContext& ctx, uint32_t class_id, const BindingSet& bindings);
  // Shared instance-matching core: steps exact matches or clones consistent
  // instances on any of `symbols`; returns true if any instance stepped.
  bool DispatchToInstances(ThreadContext& ctx, uint32_t class_id, const BindingSet& bindings,
                           std::span<const uint16_t> symbols);

  bool StepInstance(const CompiledClass& cls, Instance& instance,
                    std::span<const uint16_t> symbols);

  bool MatchFunctionPattern(const automata::EventPattern& pattern,
                            std::span<const int64_t> args, bool have_return,
                            int64_t return_value, BindingSet* bindings) const;
  bool MatchArg(const automata::ArgMatch& match, int64_t value, BindingSet* bindings) const;

  void ReportViolation(uint32_t class_id, ViolationKind kind, const std::string& detail);
  void Bump(uint64_t& counter, uint64_t amount = 1);

  RuntimeOptions options_;
  RuntimeStats stats_;
  std::vector<CompiledClass> classes_;
  std::vector<EventHandler*> handlers_;
  std::unordered_map<std::string, uint32_t> by_name_;

  std::unordered_map<uint64_t, std::vector<uint32_t>> classes_by_start_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> classes_by_end_;
  // Per start key: bit 0 = some per-thread class uses it, bit 1 = some
  // global class does. Lets the lazy bound-entry path run in O(1) instead of
  // scanning every class sharing the bound.
  std::unordered_map<uint64_t, uint8_t> bound_start_contexts_;
  // end-event key → distinct start-event keys it closes (lazy bookkeeping).
  std::unordered_map<uint64_t, std::vector<uint64_t>> bounds_closed_by_;
  std::unordered_map<Symbol, std::vector<Candidate>> call_candidates_;
  std::unordered_map<Symbol, std::vector<Candidate>> return_candidates_;
  std::unordered_map<Symbol, std::vector<Candidate>> field_candidates_;
  std::unordered_map<Symbol, bool> tracked_stack_functions_;
  bool any_global_ = false;

  // Global-context storage (shared across threads, spinlock-serialised).
  Spinlock global_lock_;
  std::unique_ptr<ThreadContext> global_context_;
};

}  // namespace tesla::runtime

#endif  // TESLA_RUNTIME_RUNTIME_H_
