// libtesla: the TESLA run-time support library (paper §4.4).
//
// A Runtime holds compiled automaton classes registered from a Manifest and
// manages their instances. Events arrive as unified Event records (see
// runtime/event.h) through OnEvent() — built either by generated event
// translators (the IR instrumentation path) or by native instrumentation
// scope guards (see runtime/scope.h). The legacy On*() entry points are thin
// wrappers that marshal into an Event.
//
// Dispatch plan: Register() compiles all per-symbol routing into flat
// vectors indexed by (Symbol, call/return) keys — candidate lists, bound
// start/end handling, tracked-call-stack slots. Symbols are dense interner
// indices (the interner is frozen at Register() time), so the hot path
// performs zero hash lookups: every event costs one or two vector indexings
// plus the per-candidate pattern matches.
//
// Event serialisation contexts (§3.2):
//   * per-thread automata store instances in a ThreadContext, one per
//     (simulated or real) thread — serialisation is implicit;
//   * global automata store instances in runtime-owned shard contexts, each
//     behind its own spinlock — the explicit synchronisation whose cost
//     fig. 12 measures. Automaton classes map to shards by id, so
//     independent global automata no longer contend on one lock.
//
// Shard ownership (async multi-consumer dispatch, src/queue): a shard is
// either *locked* — the legacy state; every toucher takes its spinlock — or
// *owned* by one queue consumer. The owner claims its shards per batch with
// two fetch-free atomics (owner_active + an intruder count) and, when no
// inline caller is intruding, skips the spinlock entirely: the owner is the
// shard's single writer. Inline callers that land on an owned shard run the
// handoff protocol — announce themselves as intruders, take the lock, and
// wait for the owner to retreat (RuntimeStats::shard_handoffs counts these).
// Consumers restrict a dispatch pass to the shards they own via a
// DispatchScope; see OnEventsScoped(). Classes whose site dispatch must read
// the *producer's* call stack (incallstack() variants) are pinned to
// dedicated always-locked shards handled in the context stage.
//
// Instance lifecycle (§4.4.1): «init» on the bound's start event creates the
// wildcard (∗) instance; events binding new variable values clone it; the
// assertion-site event must be consumable by some matching instance or a
// violation is reported; «cleanup» on the bound's end event checks automata
// that passed their site, reports acceptance, and expunges all instances.
#ifndef TESLA_RUNTIME_RUNTIME_H_
#define TESLA_RUNTIME_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "automata/determinize.h"
#include "automata/manifest.h"
#include "metrics/collector.h"
#include "metrics/snapshot.h"
#include "profile/collector.h"
#include "profile/snapshot.h"
#include "runtime/deadline.h"
#include "runtime/event.h"
#include "runtime/handler.h"
#include "runtime/instance.h"
#include "runtime/instance_store.h"
#include "runtime/options.h"
#include "runtime/step.h"
#include "support/pool.h"
#include "support/result.h"
#include "support/spinlock.h"
#include "trace/recorder.h"

namespace tesla::runtime {

class Runtime;

// Restricts one dispatch pass to a slice of the runtime's state. The async
// queue splits each record into two stages that may run on different
// consumer threads:
//   * the *context* stage (context = true) — everything anchored to the
//     producer's ThreadContext: per-thread classes, pinned global classes
//     (incallstack() site variants need the producer's stack), event-level
//     stats/trace/timing, and the per-event bookkeeping that must happen
//     exactly once;
//   * the *shard* stage (context = false) — unpinned global classes living
//     on the shards in shard_mask, run by the consumer owning them.
// Inline dispatch uses no scope (both stages at once, all shards).
struct DispatchScope {
  bool context = true;
  uint64_t shard_mask = ~uint64_t{0};
};

// Timed-clause bookkeeping for one TimedSpec of one class in one storage
// context. within_ms: `armed` + `deadline_ns` track the live deadline (the
// first arm wins until the region fully empties); `serial` lazily cancels
// wheel entries — a popped entry whose serial mismatches is stale. rate:
// `window_start`/`window_count` implement the tumbling window, and
// `window_tripped` dedups the per-window violation report.
struct TimedCell {
  uint64_t deadline_ns = 0;
  uint64_t serial = 0;
  uint64_t window_start = 0;
  uint64_t window_count = 0;
  bool armed = false;
  bool window_tripped = false;
};

// Per-serialisation-context storage for one automaton class. Instances are
// slots into the owning context's InstanceStore; `instances` is the full
// population in creation order (the cleanup sweep and the naive scan walk
// it), while the binding-keyed index partitions the same population into
// keyed buckets (all key variables bound; chained through the store's
// next() links) and the short unkeyed tail (the (∗) wildcard and partial
// bindings — the only possible clone parents on the indexed fast path).
struct ClassState {
  bool active = false;
  uint64_t epoch = 0;  // bound epoch at activation (lazy-init bookkeeping)
  std::vector<uint32_t> instances;
  KeyIndex index;
  std::vector<uint32_t> unkeyed;
  // Profile-hinted secondary prefix index (CompiledClass::prefix_pos): the
  // same population partitioned by one key variable's value — instances with
  // the prefix variable bound chain through the store's next2() links;
  // instances without it (the (∗) wildcard) sit in the tail2 list. Empty for
  // classes without a prefix hint.
  KeyIndex index2;
  std::vector<uint32_t> tail2;
  // Timed-clause cells, one per entry of the class automaton's `timed` list
  // (lazily sized on first observation; empty for untimed classes).
  std::vector<TimedCell> timed;
};

// Lazy-init bookkeeping for one temporal bound (paper §5.2.2's optimisation:
// "keeping a per-context record of common initialisation and cleanup events
// and doing lazy initialisation of automaton instances after they received
// their first non-initialisation event").
struct BoundEpoch {
  uint64_t epoch = 0;
  bool open = false;
};

// One event-serialisation context: all per-thread automata instances for one
// thread of execution, plus its instance pool and call-stack view. Simulated
// kernels may host many ThreadContexts on one host thread. The runtime's
// global shards are ThreadContexts too, owned by the Runtime and guarded by
// their shard's lock.
class ThreadContext {
 public:
  explicit ThreadContext(Runtime& runtime);
  ~ThreadContext();

  ThreadContext(const ThreadContext&) = delete;
  ThreadContext& operator=(const ThreadContext&) = delete;

  // incallstack() support: whether `function` is on this context's stack.
  bool InCallStack(Symbol function) const;

  uint64_t pool_overflows() const { return store_.overflows(); }
  // The instance pool's high-water mark and capacity (the capacity-headroom
  // signal a workload profile reports). Rewound by Runtime::ResetStats().
  size_t pool_high_water() const { return store_.high_water(); }
  size_t pool_capacity() const { return store_.capacity(); }

 private:
  friend class Runtime;

  Runtime& runtime_;
  std::vector<ClassState> classes_;
  InstanceStore store_;
  // Dense plan-slot indexed state (see Runtime's compiled dispatch plan):
  std::vector<BoundEpoch> bound_epochs_;               // by bound slot
  std::vector<std::vector<uint32_t>> active_classes_;  // live classes, by cleanup slot
  std::vector<int32_t> stack_depth_;                   // by tracked-stack slot
  // Flight-recorder log for events entering through this context (null when
  // tracing is off). Owned by the runtime's Recorder, which outlives us —
  // the history survives context teardown for capture and forensics.
  trace::ContextLog* trace_ = nullptr;
  // Metrics shard for counters/histograms recorded through this context
  // (null when RuntimeOptions::metrics_mode is off). Owned by the runtime's
  // Collector; single-writer — per-thread contexts by contract, global shard
  // contexts by their shard lock.
  metrics::Shard* metrics_ = nullptr;
  // Workload-profile shard (null when RuntimeOptions::profile is off). Same
  // ownership and single-writer discipline as metrics_.
  profile::Shard* profile_ = nullptr;
  // Timed-clause clock domain for this context: the deadline wheel (lazily
  // allocated on first arm — untimed workloads never pay its footprint), the
  // monotonically clamped event clock (a backwards timestamp is clamped and
  // counted in RuntimeStats::clock_regressions, never underflows a window),
  // and a scratch buffer for expiry pops. Single-writer like everything
  // else here: per-thread contexts by contract, shard contexts by lock.
  std::unique_ptr<DeadlineWheel> wheel_;
  uint64_t timed_now_ = 0;
  std::vector<DeadlineWheel::Entry> fired_;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Compiles and registers every automaton in `manifest`, then (re)compiles
  // the dispatch plan. Must be called before ThreadContexts are created.
  // Fails on automata with more than kMaxVariables variables or malformed
  // bounds.
  Status Register(const automata::Manifest& manifest);

  // Looks up a registered automaton by name; returns -1 if absent.
  int FindAutomaton(const std::string& name) const;

  void AddHandler(EventHandler* handler) { handlers_.push_back(handler); }

  // --- the unified event entry point ---

  void OnEvent(ThreadContext& ctx, const Event& event);

  // Async ingestion interposition (src/queue). When a hook is installed,
  // OnEvent offers every event to it *before* touching the context or any
  // dispatch state; a true return means the hook took ownership (queued it
  // for dispatch elsewhere) and OnEvent returns immediately. A false return
  // falls back to inline dispatch. A plain function pointer plus state —
  // not std::function — so the uninstalled fast path is one relaxed-ish
  // atomic load. Install with SetIngestHook(hook, state); uninstall with
  // SetIngestHook(nullptr, nullptr) — the queue drains in-flight events
  // itself before uninstalling.
  using IngestHook = bool (*)(void* state, ThreadContext& ctx, const Event& event);
  void SetIngestHook(IngestHook hook, void* state) {
    // State first, hook second: a reader that observes the hook (acquire)
    // is guaranteed to observe its matching state.
    ingest_state_.store(state, std::memory_order_release);
    ingest_hook_.store(hook, std::memory_order_release);
  }

  // Queue-side accounting (folded into RuntimeStats so the existing
  // exposition formats surface it): a consumer batch of `events` events
  // dispatched, and `dropped` events rejected at enqueue.
  void AccountQueueBatch(uint64_t events) {
    Bump(stats_.queue_events, events);
    Bump(stats_.queue_batches);
  }
  void AccountQueueDrops(uint64_t dropped) { Bump(stats_.queue_drops, dropped); }
  void AccountQueueForwards(uint64_t forwards) { Bump(stats_.queue_forwards, forwards); }
  void AccountQueueSteals(uint64_t steals) { Bump(stats_.queue_steals, steals); }

  // Batch ingestion: semantically identical to calling OnEvent once per
  // element, but amortises the per-call overheads — plan-capacity checks run
  // once, and when global automata are registered every shard lock is taken
  // once for the whole batch instead of once per event (nested per-event
  // acquisitions are elided via the batch-owner check). The replay path and
  // event-queue front-ends feed this.
  void OnEvents(ThreadContext& ctx, std::span<const Event> events);

  // Scope-restricted batch dispatch for the async queue's two-stage routing
  // (see DispatchScope). The caller promises that for every event in the
  // batch, the work outside `scope` is (or will be) dispatched elsewhere —
  // the queue forwards records to the consumers owning the other shards.
  // Shards inside the scope's mask that this runtime registered as owned by
  // a consumer are claimed with the ownership fast path; everything else is
  // locked as an intruder.
  void OnEventsScoped(ThreadContext& ctx, std::span<const Event> events,
                      const DispatchScope& scope);

  // The unpinned global shards `event` can touch, as a bit mask — the
  // queue's routing key: a consumer forwards the record to the owner of
  // every touched shard outside its own set. Conservative (a superset of
  // the shards the dispatch will really lock) and cheap: one plan lookup.
  uint64_t ShardStageMask(const Event& event) const;

  // Shards hosting only unpinned global classes — the shards eligible for
  // consumer ownership. Pinned classes (incallstack() site variants need
  // the producer context's stack) live outside this mask and are always
  // dispatched in the context stage under their locks.
  uint64_t unpinned_shard_mask() const { return unpinned_shard_mask_; }

  // Marks each unpinned shard s as owned by consumer (s % consumers); the
  // owner id is bookkeeping for the handoff counter, the protocol itself is
  // per-batch (owner_active). Called by EventQueue::Start()/Stop(); a
  // runtime has at most one owning queue at a time.
  void AssignShardOwners(uint32_t consumers);
  void ReleaseShardOwners();

  // --- legacy entry points (thin wrappers over OnEvent) ---

  void OnFunctionCall(ThreadContext& ctx, Symbol function, std::span<const int64_t> args) {
    OnEvent(ctx, Event::Call(function, args));
  }
  void OnFunctionReturn(ThreadContext& ctx, Symbol function, std::span<const int64_t> args,
                        int64_t return_value) {
    OnEvent(ctx, Event::Return(function, args, return_value));
  }
  // A store to `object`'s field: `old_value` is the field's prior contents
  // (the translator receives "a pointer to the field (and thus its current
  // value) and the new value", §4.2), which lets compound-assignment patterns
  // (+=, ++) match.
  void OnFieldStore(ThreadContext& ctx, Symbol field, int64_t object, int64_t old_value,
                    int64_t new_value) {
    OnEvent(ctx, Event::FieldStore(field, object, old_value, new_value));
  }
  // `automaton_id` is FindAutomaton()'s result; `site_bindings` carries the
  // current values of the assertion's in-scope variables.
  void OnAssertionSite(ThreadContext& ctx, uint32_t automaton_id,
                       std::span<const Binding> site_bindings) {
    OnEvent(ctx, Event::Site(automaton_id, site_bindings));
  }

  const RuntimeStats& stats() const { return stats_; }
  // Zeroes the global stats *and* every derived tally a stats consumer can
  // observe: the per-shard instance-pool overflow counts and the metrics
  // collector's counters, histograms and coverage bitmap. Call at a
  // quiescent point for exact deltas.
  void ResetStats();
  const RuntimeOptions& options() const { return options_; }

  // The metrics collector (null when RuntimeOptions::metrics_mode is off).
  metrics::Collector* collector() { return collector_.get(); }
  const metrics::Collector* collector() const { return collector_.get(); }

  // Merges every shard into one snapshot and joins it with the static
  // automaton structure (class names, statically-valid DFA transitions and
  // their coverage bits). Cheap enough to call from a scrape handler.
  metrics::Snapshot CollectMetrics() const;

  // The workload-profile collector (null when RuntimeOptions::profile is
  // off) and its merged snapshot: per-class fan-out, probe/scan attribution,
  // binding-key sketches and pool marks, in plan (class-id) order. Pool
  // marks cover every live context plus the high-water folded in when a
  // context was destroyed; call at a quiescent point for exact figures.
  profile::Collector* profile_collector() { return profile_collector_.get(); }
  const profile::Collector* profile_collector() const { return profile_collector_.get(); }
  profile::Snapshot CollectProfile() const;

  // Lets a front-end (the async queue) append its own sections — per-
  // producer and per-consumer tallies — to every CollectMetrics() snapshot.
  // One augmenter at a time; pass nullptr to clear. The callback must be
  // safe to invoke from any thread calling CollectMetrics().
  using MetricsAugmenter = std::function<void(metrics::Snapshot&)>;
  void SetMetricsAugmenter(MetricsAugmenter augmenter);

  // Sum of the global shard contexts' instance-pool overflow tallies (the
  // per-context counts behind RuntimeStats::overflows); reset by
  // ResetStats(). Exposed so stats-reset consumers can verify the derived
  // counters really rewound.
  uint64_t shard_pool_overflows() const;
  // Largest instance-pool high-water mark across the global shard contexts;
  // rewound (to each pool's current live population) by ResetStats() like
  // the overflow tallies above.
  uint64_t shard_pool_high_water() const;

  // The registered automata re-serialised in the .tesla text format, in
  // registration order — so assertion-site targets (automaton ids) resolve
  // by position on a fresh Register() of the deserialised result. Cold path:
  // capture writers embed this so their files are self-describing
  // (trace/format.h's v4 manifest section, ipc's shm header).
  std::string ManifestText() const;

  size_t class_count() const { return classes_.size(); }
  const automata::Automaton& automaton(uint32_t id) const { return classes_[id].automaton; }
  const automata::Dfa& dfa(uint32_t id) const { return classes_[id].dfa; }

  // Number of global-context shards in use (≤ RuntimeOptions::global_shards).
  uint32_t shard_count() const { return shard_count_; }

  // The flight recorder (null when RuntimeOptions::trace_mode is off).
  trace::Recorder* recorder() { return recorder_.get(); }
  const trace::Recorder* recorder() const { return recorder_.get(); }

  // The violation sequence observed while tracing was active: (kind,
  // automaton name) in report order. Captures embed it so replays can check
  // they reproduce not just the stats but the same failures in the same
  // order. Empty when trace_mode is off.
  std::vector<std::pair<ViolationKind, std::string>> violation_log() const {
    LockGuard<Spinlock> guard(violation_log_lock_);
    return violation_log_;
  }

 private:
  friend class ThreadContext;

  struct CompiledClass {
    uint32_t id = 0;
    automata::Automaton automaton;
    automata::Dfa dfa;
    bool is_global = false;
    // Global classes with incallstack() site variants must dispatch where
    // the producer's call stack is visible: they are *pinned* — placed on
    // shards excluded from consumer ownership and handled in the context
    // stage of a scoped dispatch.
    bool pinned = false;
    uint32_t shard = 0;      // global classes: owning shard index
    uint64_t start_key = 0;  // (function, kind) key of the «init» event
    uint64_t end_key = 0;    // (function, kind) key of the «cleanup» event
    int32_t bound_slot = -1;    // dense slot shared by classes with this start key
    int32_t cleanup_slot = -1;  // dense slot shared by classes with this end key
    std::vector<uint16_t> site_variants;  // incallstack() symbols
    // Computed in CompilePlan(): the class's site event is exactly the
    // automaton's site symbol (no incallstack() variants to evaluate), so an
    // unbound site event on an already-active per-thread class can take the
    // flattened steady-state path in ProcessSiteEvent.
    bool site_fast = false;
    // The automaton carries within_ms()/rate() clauses: dispatch must run
    // the timed-observation hooks (and skip the flattened site fast path,
    // which bypasses them).
    bool timed = false;
    automata::StateSet initial_states = 0;
    uint32_t initial_dfa_state = 0;
    // Key-variable analysis (computed once per class in CompilePlan()): the
    // variables clone events can bind, i.e. the instance index's key tuple.
    // key_vars holds the same set as an ascending list for tuple extraction.
    uint32_t key_mask = 0;
    uint8_t key_count = 0;
    std::array<uint8_t, kMaxVariables> key_vars{};
    // Plan-hint resolution (CompilePlan): the index_min_population gate for
    // this class (the global knob, or a PlanHints override), and the
    // profile-chosen secondary prefix index — prefix_pos is the key_vars
    // position (kNoPrefix: none), prefix_var the variable id it names.
    static constexpr uint8_t kNoPrefix = 0xff;
    uint32_t min_population = 0;
    uint8_t prefix_pos = kNoPrefix;
    uint8_t prefix_var = 0;
    // Every function/field symbol the class's patterns name (including the
    // bound's init/cleanup functions): the forensics filter for "events
    // relevant to this automaton".
    std::vector<uint32_t> trace_symbols;
    // Transition-coverage layout (metrics on only). The class owns a dense
    // bit grid of cov_states × cov_symbols slots starting at cov_first in
    // the collector's bitmap — bit = cov_first + dfa_state*cov_symbols +
    // symbol. dfa_flat is the DFA transition table flattened to the same
    // indexing (kNoTarget for invalid), so NFA-mode stepping can advance the
    // mirrored DFA state with a single load.
    uint32_t cov_first = 0;
    uint32_t cov_symbols = 0;
    uint32_t cov_states = 0;
    std::vector<uint32_t> dfa_flat;
    // The compiled step function (see runtime/step.h): lowered from the
    // frozen automaton at Register() time, tier per RuntimeOptions::step_tier.
    StepProgram step;
  };

  struct Candidate {
    uint32_t class_id = 0;
    uint16_t symbol = 0;
  };

  // Compiled routing for one (symbol, call/return) key — or, in field_plan_,
  // for one field symbol (only the candidate range is used there). All
  // ranges index the flat pools below; every hot-path decision is a couple
  // of loads from this one cache line.
  struct KeyPlan {
    uint32_t cand_first = 0;  // candidate_pool_ range
    uint32_t cand_count = 0;
    int32_t bound_slot = -1;    // ≥0: this key opens a temporal bound
    int32_t cleanup_slot = -1;  // ≥0: this key closes a temporal bound
    int32_t stack_slot = -1;    // ≥0: incallstack()-tracked function
    uint8_t start_contexts = 0;  // bit0: per-thread classes start here; bit1: global
    uint32_t start_first = 0;  // class_pool_ range: classes to activate (naive mode)
    uint32_t start_count = 0;
    uint32_t end_first = 0;  // class_pool_ range: classes to clean up (naive mode)
    uint32_t end_count = 0;
    uint32_t closes_first = 0;  // closed_bounds_pool_ range: bound slots closed here
    uint32_t closes_count = 0;
    // Union of the *unpinned* global shards any event with this key can
    // touch: candidate classes' shards plus the bound/cleanup slot masks it
    // opens or closes. ShardStageMask()'s answer — the queue's routing key.
    uint64_t touched_shards = 0;
  };

  // One global-automaton storage shard: a runtime-owned context behind its
  // own lock (heap-allocated so the vector never needs to move a Spinlock).
  //
  // Ownership protocol (see the header comment). The spinlock serialises
  // *intruders* — inline/sync callers and non-owning scoped passes. The
  // owning consumer claims the shard per batch without the lock:
  //
  //   owner, per batch:   owner_active.store(true, seq_cst);
  //                       if (intruders.load(seq_cst) == 0) → lock-free claim
  //                       else retreat (owner_active = false) and take the
  //                       lock like everyone else;
  //                       release: owner_active.store(false, release).
  //   intruder, always:   intruders.fetch_add(1, seq_cst);
  //                       lock.lock();
  //                       while (owner_active.load(seq_cst)) spin;  // owner
  //                       ... critical section under the lock ...   // retreats
  //                       lock.unlock();
  //                       intruders.fetch_sub(1, release);
  //
  // The seq_cst store-then-load on each side (owner_active/intruders,
  // Dekker-style) guarantees at least one side sees the other: either the
  // owner sees the intruder and falls back to the lock, or the intruder
  // sees owner_active and waits for the owner's release store (the
  // intruder's load sits after the owner's store in the seq_cst order, so
  // it cannot read the stale false). Every hand-over then gives the usual
  // release/acquire happens-before edge — the owner's release of
  // owner_active, or the intruder's unlock + release-decrement that the
  // owner's next seq_cst intruders load acquires — so the shard's plain
  // state stays single-writer without fences TSan cannot model.
  // Deadlock-free: the owner retreats *before* blocking on the lock, and
  // everyone acquires multi-shard sets in ascending index order.
  struct GlobalShard {
    Spinlock lock;
    std::atomic<uint32_t> intruders{0};
    std::atomic<bool> owner_active{false};
    // Who owns this shard (-1: locked/legacy). Bookkeeping only — used to
    // count handoffs and by tests; the claim protocol never reads it.
    std::atomic<int32_t> owner_id{-1};
    std::unique_ptr<ThreadContext> context;
  };

  // An event's variable bindings: a fixed-size buffer, one slot per variable.
  struct BindingSet {
    Binding entries[kMaxVariables];
    size_t count = 0;

    // Returns false if `var` is already present with a different value.
    bool Add(uint16_t var, int64_t value) {
      for (size_t i = 0; i < count; i++) {
        if (entries[i].var == var) {
          return entries[i].value == value;
        }
      }
      entries[count++] = Binding{var, value};
      return true;
    }
  };

  // Routing keys: function symbol + call/return discriminator.
  static uint64_t CallKey(Symbol function) { return (uint64_t{function} << 1) | 1; }
  static uint64_t ReturnKey(Symbol function) { return uint64_t{function} << 1; }

  // Recompiles the flat dispatch plan from classes_ (idempotent; run after
  // every Register() so repeated registration stays legal).
  void CompilePlan();
  // Grows `ctx`'s slot-indexed vectors to the current plan's extents. Only
  // does work when Register() ran after the context was created.
  void EnsurePlanCapacity(ThreadContext& ctx);

  ThreadContext& ContextFor(ThreadContext& ctx, uint32_t class_id) {
    const CompiledClass& cls = classes_[class_id];
    return cls.is_global ? *shards_[cls.shard]->context : ctx;
  }
  // Inline (it sits on every event's dispatch path, usually twice); the grow
  // branch only fires for a context created before a later Register().
  ClassState& StateFor(ThreadContext& ctx, uint32_t class_id) {
    ThreadContext& storage = ContextFor(ctx, class_id);
    if (storage.classes_.size() <= class_id) [[unlikely]] {
      GrowClassStates(storage);
    }
    return storage.classes_[class_id];
  }
  void GrowClassStates(ThreadContext& storage);
  int32_t StackSlotFor(Symbol function) const {
    const uint64_t key = CallKey(function);
    return key < function_plan_.size() ? function_plan_[key].stack_slot : -1;
  }

  // OnEvent minus the per-call capacity check: the shared core of the
  // one-at-a-time and batch entry points (records to the flight recorder,
  // then routes by kind).
  void DispatchEvent(ThreadContext& ctx, const Event& event);
  // The batch loop with DispatchEvent's per-event prologue hoisted out —
  // valid only with no active scope, no flight recorder on this context and
  // no dispatch timing (OnEvents checks once per batch).
  void DispatchBatchPlain(ThreadContext& ctx, std::span<const Event> events);

  void ProcessFunctionEvent(ThreadContext& ctx, const Event& event);
  void ProcessFieldEvent(ThreadContext& ctx, const Event& event);
  void ProcessSiteEvent(ThreadContext& ctx, const Event& event);

  // True when the calling thread already holds (locked or owner-claimed)
  // `shard` via a batch entry point; per-event acquisitions must then be
  // elided (the spinlock is not recursive).
  bool ShardHeld(uint32_t shard) const {
    return engaged_runtime_ == this && ((engaged_shards_ >> shard) & 1) != 0;
  }

  // The active scope's view of the plan (thread-local; null scope — or a
  // scope belonging to a different Runtime — means full inline semantics).
  const DispatchScope* ActiveScope() const {
    return scope_runtime_ == this ? active_scope_ : nullptr;
  }
  bool ScopeContext() const {
    const DispatchScope* scope = ActiveScope();
    return scope == nullptr || scope->context;
  }
  bool ClassInScope(const CompiledClass& cls) const {
    const DispatchScope* scope = ActiveScope();
    if (scope == nullptr) {
      return true;
    }
    if (!cls.is_global || cls.pinned) {
      return scope->context;
    }
    return ((scope->shard_mask >> cls.shard) & 1) != 0;
  }
  // Shards the active scope may touch: pinned shards ride with the context
  // stage, unpinned shards follow the scope's mask.
  uint64_t AllowedShardMask() const {
    const DispatchScope* scope = ActiveScope();
    if (scope == nullptr) {
      return ~uint64_t{0};
    }
    return (scope->context ? pinned_shard_mask_ : 0) |
           (scope->shard_mask & unpinned_shard_mask_);
  }

  // The intruder side of the shard-ownership protocol (see GlobalShard).
  // Const (with the handoff counter bumped through an atomic_ref) so const
  // accessors like shard_pool_overflows() can intrude too.
  void LockShardAsIntruder(GlobalShard& shard) const;
  void UnlockShardAsIntruder(GlobalShard& shard) const;
  class ShardGuard;

  // Runs the registered metrics augmenter (if any) over `snapshot`.
  void AugmentSnapshot(metrics::Snapshot& snapshot) const;

  // Live-context registry (profile pool marks and stats reset): every
  // ThreadContext registers for its lifetime; unregistration folds its pool
  // marks into the retired maxima so a destroyed context's peak still shows
  // in CollectProfile().
  void RegisterContext(ThreadContext* ctx);
  void UnregisterContext(ThreadContext* ctx);
  // Per-context SlotPool capacity: the plan-hint total when hints are
  // loaded, else the instances_per_context knob.
  size_t ContextPoolCapacity() const {
    return pool_capacity_hint_ != 0 ? pool_capacity_hint_ : options_.instances_per_context;
  }

  void HandleBoundStart(ThreadContext& ctx, const KeyPlan& plan);
  void HandleBoundEnd(ThreadContext& ctx, const KeyPlan& plan);
  // Lock-aware wrappers: take the class's shard lock for global classes.
  void ActivateClassSharded(ThreadContext& ctx, uint32_t class_id);
  void CleanupClassSharded(ThreadContext& ctx, uint32_t class_id);
  void ActivateClass(ThreadContext& ctx, uint32_t class_id);
  void CleanupClass(ThreadContext& ctx, uint32_t class_id);
  // Returns true if the class is (or, lazily, becomes) active. For global
  // classes the caller must hold the class's shard lock. The hoisted form
  // takes the class/storage/state the caller already resolved — the
  // per-event site path computes them exactly once.
  bool EnsureActive(ThreadContext& ctx, uint32_t class_id);
  bool EnsureActive(ThreadContext& ctx, const CompiledClass& cls, ThreadContext& storage,
                    ClassState& state);

  void HandleEvent(ThreadContext& ctx, const Candidate& candidate, const BindingSet& bindings);
  void HandleEventLocked(ThreadContext& ctx, const Candidate& candidate,
                         const BindingSet& bindings);
  void HandleSiteEvent(ThreadContext& ctx, uint32_t class_id, const BindingSet& bindings);
  // Shared instance-matching core: steps exact matches or clones consistent
  // instances on any of `symbols`; returns true if any instance stepped.
  // Routes to the index probe when the event's bindings cover the class's
  // key variables, otherwise to the (semantics-identical) linear scan.
  bool DispatchToInstances(ThreadContext& ctx, uint32_t class_id, const BindingSet& bindings,
                           std::span<const uint16_t> symbols);
  bool DispatchToInstances(ThreadContext& storage, const CompiledClass& cls, ClassState& state,
                           const BindingSet& bindings, std::span<const uint16_t> symbols);
  bool DispatchIndexed(ThreadContext& storage, const CompiledClass& cls, ClassState& state,
                       const BindingSet& bindings, std::span<const uint16_t> symbols);
  bool DispatchScan(ThreadContext& storage, const CompiledClass& cls, ClassState& state,
                    const BindingSet& bindings, std::span<const uint16_t> symbols);
  // Partially-bound fast path via the profile-hinted secondary prefix index:
  // the event binds the class's prefix variable (but not the full key
  // tuple), so pass 1 walks one prefix bucket and pass 2's clone parents are
  // the bucket plus the prefix-unbound tail2 — semantically identical to
  // DispatchScan, O(bucket + tail2) instead of O(live).
  bool DispatchPrefix(ThreadContext& storage, const CompiledClass& cls, ClassState& state,
                      const BindingSet& bindings, std::span<const uint16_t> symbols);

  // Files a freshly created slot under the class's index partition (keyed
  // bucket or unkeyed tail). `instances` membership is the caller's job.
  void IndexInstance(ThreadContext& storage, const CompiledClass& cls, ClassState& state,
                     uint32_t slot);
  // Files a slot under the class's secondary prefix-index partition (prefix
  // bucket through next2(), or the prefix-unbound tail2). Only called for
  // classes with a prefix hint (cls.prefix_pos != kNoPrefix).
  void IndexSecondary(ThreadContext& storage, const CompiledClass& cls, ClassState& state,
                      uint32_t slot);

  // Steps a stored instance (slot form) or a stack-built clone candidate.
  // `storage` is the context owning (or about to own) the instance — the
  // metrics shard the transition is attributed to.
  bool StepSlot(const CompiledClass& cls, ThreadContext& storage, uint32_t slot,
                std::span<const uint16_t> symbols);
  bool StepInstance(const CompiledClass& cls, ThreadContext& storage, Instance& instance,
                    std::span<const uint16_t> symbols);
  // One indirect call into the class's compiled step program (runtime/step.h).
  bool StepCore(const CompiledClass& cls, automata::StateSet& states, uint32_t& dfa_state,
                std::span<const uint16_t> symbols, automata::StateSet* from_out,
                uint16_t* symbol_out) {
    return cls.step.Run(collector_.get(), states, dfa_state, symbols, from_out, symbol_out);
  }

  bool MatchFunctionPattern(const automata::EventPattern& pattern,
                            std::span<const int64_t> args, bool have_return,
                            int64_t return_value, BindingSet* bindings) const;
  bool MatchArg(const automata::ArgMatch& match, int64_t value, BindingSet* bindings) const;

  // `highlight`: the automaton states live at the violation (0 when the call
  // site cannot cheaply know them) — rendered into the forensic DOT graph.
  void ReportViolation(uint32_t class_id, ViolationKind kind, const std::string& detail,
                       automata::StateSet highlight = 0);
  // Harvests the flight recorder and renders the temporal backtrace plus the
  // highlighted DOT graph for one violating class.
  std::string BuildForensics(uint32_t class_id, automata::StateSet highlight) const;

  // Stats batching: the batch entry points open a per-thread StatsFrame so
  // every Bump inside the batch is one plain add into a local delta array
  // instead of an atomic RMW on the shared RuntimeStats cache lines; the
  // frame flushes its nonzero deltas on close. RuntimeStats is uint64_t-only
  // (the X-macro static_assert), so a counter's index is its offset from the
  // struct base. Frames chain (a handler may re-enter a batch entry point)
  // and carry their runtime, so a frame for another Runtime never absorbs
  // this one's counts. ReportViolation flushes mid-batch: a violation
  // handler reading stats() must see everything that led up to it.
  struct StatsFrame {
    const Runtime* runtime = nullptr;
    StatsFrame* prev = nullptr;
    uint64_t delta[kRuntimeStatsFieldCount] = {};
  };
  class StatsBatch {
   public:
    explicit StatsBatch(Runtime& runtime) : runtime_(runtime) {
      frame_.runtime = &runtime;
      frame_.prev = stats_frame_;
      stats_frame_ = &frame_;
    }
    ~StatsBatch() {
      stats_frame_ = frame_.prev;
      runtime_.FlushStatsFrame(frame_);
    }
    StatsBatch(const StatsBatch&) = delete;
    StatsBatch& operator=(const StatsBatch&) = delete;

   private:
    Runtime& runtime_;
    StatsFrame frame_;
  };
  void FlushStatsFrame(StatsFrame& frame);
  // Flushes every frame on this thread's chain that belongs to this runtime.
  void FlushThreadStats();

  void Bump(uint64_t& counter, uint64_t amount = 1) {
    StatsFrame* frame = stats_frame_;
    if (frame != nullptr && frame->runtime == this) {
      frame->delta[&counter - reinterpret_cast<uint64_t*>(&stats_)] += amount;
      return;
    }
    std::atomic_ref<uint64_t>(counter).fetch_add(amount, std::memory_order_relaxed);
  }

  // Per-class metrics bump, attributed to `storage`'s shard. One null check
  // when metrics are off; the spill path only runs for events racing a late
  // Register() (the shard predates the class).
  void BumpClass(ThreadContext& storage, uint32_t class_id, metrics::ClassCounter kind,
                 uint64_t amount = 1) {
    metrics::Shard* shard = storage.metrics_;
    if (shard == nullptr) {
      return;
    }
    if (class_id < shard->class_capacity()) {
      shard->Bump(class_id, kind, amount);
    } else {
      collector_->BumpSpill(class_id, kind, amount);
    }
  }

  // `storage`'s profile shard if it can record `class_id`, else null (after
  // routing additive cells racing a late Register() to the spill block —
  // peaks and sketches have no spill form and are simply not recorded on
  // that cold path). One null check when profiling is off.
  profile::Shard* ProfileShard(ThreadContext& storage, uint32_t class_id) {
    profile::Shard* shard = storage.profile_;
    if (shard == nullptr || class_id >= shard->class_capacity()) [[unlikely]] {
      return nullptr;
    }
    return shard;
  }

  // The profiler's view of one dispatch decision (called from
  // DispatchToInstances and the flattened site path): fan-out, probe/scan
  // attribution, partial-binding analysis per tracked key variable,
  // distinct-key sketches, and 1-in-64 sampled latency. Out of line — the
  // hot path pays only the shard null check.
  void ProfileDispatch(ThreadContext& storage, const CompiledClass& cls,
                       const ClassState& state, const BindingSet& bindings,
                       profile::Cell served_by);

  // --- timed clauses (within_ms / rate) ---

  // The monotonic clock behind every runtime clock read — event stamping,
  // the dispatch-latency bracket and the profile latency sampler — so
  // RuntimeOptions::now_ns can substitute a deterministic source in tests.
  uint64_t NowNs() const;
  // Clamps `storage`'s clock forward to `ts_ns` (counting regressions) and
  // fires any deadlines that are strictly past. Runs *before* the event is
  // dispatched into the context: an event arriving at ts == deadline can
  // still satisfy its region, anything later fires first.
  void TimedTick(ThreadContext& storage, uint64_t ts_ns);
  void FireExpired(ThreadContext& storage, uint64_t now_ns);
  // Post-dispatch bookkeeping for one timed class: recompute the union of
  // live instance states, arm/disarm within_ms deadlines on armed_mask
  // occupancy edges, and advance rate windows (`stepped` gates counting to
  // events the class actually consumed).
  void TimedObserve(ThreadContext& storage, const CompiledClass& cls, ClassState& state,
                    std::span<const uint16_t> symbols, bool stepped);
  // Cleanup-time teardown: cancels armed deadlines (serial bump) and resets
  // rate windows — the bound closed, so its clauses are settled.
  void ResetTimedCells(ClassState& state);

  // Satellite fix: a class whose index_min_population gate keeps forcing
  // scans would silently degrade to O(live) dispatch; once the gated-scan
  // tally crosses the warm-up threshold, OnWarning fires once for the class.
  static constexpr uint32_t kGateWarnThreshold = 64;
  void NoteGatedScan(uint32_t class_id);

  RuntimeOptions options_;
  RuntimeStats stats_;
  // Async ingestion interposition (SetIngestHook): read first in OnEvent.
  std::atomic<IngestHook> ingest_hook_{nullptr};
  std::atomic<void*> ingest_state_{nullptr};
  std::vector<CompiledClass> classes_;
  std::vector<EventHandler*> handlers_;
  std::unordered_map<std::string, uint32_t> by_name_;

  // --- the compiled dispatch plan (rebuilt by CompilePlan()) ---
  std::vector<KeyPlan> function_plan_;  // by (symbol << 1) | is_call
  std::vector<KeyPlan> field_plan_;     // by field symbol (candidates only)
  std::vector<Candidate> candidate_pool_;
  std::vector<uint32_t> class_pool_;         // naive-mode start/end class lists
  std::vector<int32_t> closed_bounds_pool_;  // bound slots closed per end key
  // Shard masks, by slot: which shards host global classes sharing the slot.
  std::vector<uint64_t> bound_slot_shards_;
  std::vector<uint64_t> cleanup_slot_shards_;
  uint32_t bound_slot_count_ = 0;
  uint32_t cleanup_slot_count_ = 0;
  uint32_t stack_slot_count_ = 0;
  bool any_global_ = false;
  // Any registered class carries timed clauses (CompilePlan). False keeps
  // the timed machinery entirely off the hot path: no stamping, no clock
  // reads, no wheel probes.
  bool any_timed_ = false;
  // Shard partition (CompilePlan): pinned classes segregate onto their own
  // shards so a pinned and an unpinned class never share a shard context —
  // the context and shard stages of a scoped dispatch would otherwise race
  // on shared bound-epoch slots.
  uint64_t pinned_shard_mask_ = 0;
  uint64_t unpinned_shard_mask_ = 0;

  // Live-context registry (see RegisterContext). Declared before shards_ so
  // the shard contexts' destructors can still unregister while the runtime
  // itself is being destroyed (members destruct in reverse order).
  mutable Spinlock contexts_lock_;
  std::vector<ThreadContext*> live_contexts_;
  uint64_t retired_pool_high_water_ = 0;  // guarded by contexts_lock_
  uint64_t retired_pool_capacity_ = 0;

  // Global-context storage, sharded (shared across threads, each shard
  // spinlock-serialised).
  uint32_t shard_count_ = 1;
  std::vector<std::unique_ptr<GlobalShard>> shards_;

  // The metrics collector (metrics_mode != off); owns every context's shard
  // and the transition-coverage bitmap.
  std::unique_ptr<metrics::Collector> collector_;
  // Cached collector_->histograms_enabled(): the per-event timing decision
  // must not cost a pointer chase when metrics are off.
  bool time_dispatch_ = false;

  // The workload profiler (options_.profile): owns every context's profile
  // shard; merged by CollectProfile().
  std::unique_ptr<profile::Collector> profile_collector_;
  // Per-context SlotPool capacity resolved from plan hints in CompilePlan()
  // (0: no hints loaded; use options_.instances_per_context).
  size_t pool_capacity_hint_ = 0;
  // Gated-scan tallies behind the once-only index-gate warning
  // (NoteGatedScan), by class id; rebuilt zeroed on every CompilePlan().
  std::unique_ptr<std::atomic<uint32_t>[]> gate_scans_;
  size_t gate_scan_count_ = 0;

  // The flight recorder (trace_mode != off) and the violation sequence it
  // captures alongside the event stream.
  std::unique_ptr<trace::Recorder> recorder_;
  mutable Spinlock violation_log_lock_;
  std::vector<std::pair<ViolationKind, std::string>> violation_log_;

  // Snapshot augmentation (SetMetricsAugmenter): the async queue's hook for
  // folding its per-producer/per-consumer tallies into CollectMetrics().
  mutable Spinlock augmenter_lock_;
  MetricsAugmenter metrics_augmenter_;

  // The runtime whose batch entry point currently holds shards on this
  // thread, and which shards (a bit per index). Thread-local so concurrent
  // batches on other threads still serialise on the shards themselves.
  static thread_local const Runtime* engaged_runtime_;
  static thread_local uint64_t engaged_shards_;
  // The DispatchScope restricting dispatch on this thread (null: full) and
  // the runtime it belongs to.
  static thread_local const Runtime* scope_runtime_;
  static thread_local const DispatchScope* active_scope_;
  // The innermost open stats batch on this thread (see StatsBatch).
  static thread_local StatsFrame* stats_frame_;
  // The timestamp of the event currently being dispatched on this thread
  // (set by DispatchEvent/DispatchBatchPlain when any_timed_; the timed
  // hooks read it instead of re-deriving the clock per class).
  static thread_local uint64_t current_event_ts_;
};

}  // namespace tesla::runtime

#endif  // TESLA_RUNTIME_RUNTIME_H_
