#include "ipc/subscriber.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <span>
#include <thread>

#include <signal.h>
#include <unistd.h>

#include "support/intern.h"
#include "trace/wire.h"

namespace tesla::ipc {

Result<std::unique_ptr<ShmSubscriber>> ShmSubscriber::Attach(const std::string& name,
                                                             int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  Error last_error{"shm attach never attempted"};
  std::unique_ptr<ShmSegment> segment;
  for (;;) {
    Result<std::unique_ptr<ShmSegment>> opened = ShmSegment::OpenExisting(name);
    if (opened.ok()) {
      // Wait (within the same deadline) for the creator to finish writing.
      ShmHeader& header = opened.value()->header();
      for (;;) {
        const uint32_t state = header.state.load(std::memory_order_acquire);
        if (state == static_cast<uint32_t>(ShmState::kLive) ||
            state == static_cast<uint32_t>(ShmState::kClosed)) {
          segment = std::move(opened.value());
          break;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (segment != nullptr) {
        break;
      }
      last_error = Error{"shm segment '" + name + "' never became live", 0, 0,
                         trace::kErrUnreadable};
    } else {
      last_error = opened.error();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return last_error;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  if (Status status = segment->ValidateGeometry(); !status.ok()) {
    return status.error();
  }

  auto subscriber = std::unique_ptr<ShmSubscriber>(new ShmSubscriber());
  const ShmHeader& header = segment->header();

  // Decode the symbol table through the same hardened cursor the capture
  // reader uses — the segment was written by another process and is as
  // untrusted as a file.
  trace::Cursor cursor{segment->symtab(), static_cast<size_t>(header.symtab_bytes)};
  uint64_t symbol_count = 0;
  cursor.Varint(&symbol_count);
  if (!cursor.FitsRemaining(symbol_count)) {
    return Error{"shm segment '" + segment->name() + "': symbol table overruns its region",
                 0, 0, trace::kErrCorrupt};
  }
  if (symbol_count != header.symbol_count) {
    return Error{"shm segment '" + segment->name() + "': symbol table count " +
                     std::to_string(symbol_count) + " disagrees with header " +
                     std::to_string(header.symbol_count),
                 0, 0, trace::kErrCorrupt};
  }
  subscriber->spellings_.reserve(static_cast<size_t>(symbol_count));
  for (uint64_t i = 0; i < symbol_count; i++) {
    std::string spelling;
    if (!cursor.String(&spelling)) {
      return Error{"shm segment '" + segment->name() + "': truncated symbol table", 0, 0,
                   trace::kErrCorrupt};
    }
    subscriber->spellings_.push_back(std::move(spelling));
  }

  subscriber->info_.origin = std::string(
      header.origin, strnlen(header.origin, kShmOriginBytes));
  subscriber->info_.manifest_text.assign(
      reinterpret_cast<const char*>(segment->manifest()),
      static_cast<size_t>(header.manifest_bytes));
  subscriber->info_.options.lazy_init = (header.opt_flags & 1) != 0;
  subscriber->info_.options.use_dfa = (header.opt_flags & 2) != 0;
  subscriber->info_.options.instance_index = (header.opt_flags & 4) != 0;
  subscriber->info_.options.instances_per_context = header.instances_per_context;
  subscriber->info_.options.global_shards = header.global_shards;
  subscriber->info_.lane_count = header.lane_count;
  subscriber->info_.symbol_count = header.symbol_count;
  subscriber->info_.producer_pid = header.producer_pid.load(std::memory_order_relaxed);

  subscriber->readers_.resize(header.lane_count);
  for (uint32_t lane = 0; lane < header.lane_count; lane++) {
    subscriber->readers_[lane].ctl = segment->lane_control(lane);
    subscriber->readers_[lane].words = segment->lane_words(lane);
    subscriber->readers_[lane].mask = header.lane_words - 1;
  }

  segment->header().consumer_attached.fetch_add(1, std::memory_order_acq_rel);
  subscriber->segment_ = std::move(segment);
  return subscriber;
}

runtime::RuntimeOptions ShmSubscriber::PublisherRuntimeOptions() const {
  runtime::RuntimeOptions options;
  options.lazy_init = info_.options.lazy_init;
  options.use_dfa = info_.options.use_dfa;
  options.instance_index = info_.options.instance_index;
  options.instances_per_context = static_cast<size_t>(info_.options.instances_per_context);
  options.global_shards = static_cast<size_t>(info_.options.global_shards);
  return options;
}

void ShmSubscriber::InternSymbols() {
  if (interned_) {
    return;
  }
  remap_.reserve(spellings_.size());
  for (const std::string& spelling : spellings_) {
    remap_.push_back(InternString(spelling));
  }
  interned_ = true;
}

size_t ShmSubscriber::PollLane(uint32_t lane, std::vector<runtime::Event>& out,
                               size_t max) {
  const size_t start = out.size();
  const size_t popped = readers_[lane].Pop(out, max);
  for (size_t i = start; i < out.size(); i++) {
    runtime::Event& event = out[i];
    if (event.kind == runtime::EventKind::kAssertionSite) {
      continue;  // target is an automaton id; registration order carries it
    }
    if (event.target < remap_.size()) {
      event.target = remap_[event.target];
    } else {
      unknown_symbols_++;
    }
  }
  return popped;
}

bool ShmSubscriber::closed() const {
  return segment_->header().state.load(std::memory_order_acquire) ==
         static_cast<uint32_t>(ShmState::kClosed);
}

bool ShmSubscriber::ProducerDead() const {
  if (closed()) {
    return false;
  }
  const int32_t pid = segment_->header().producer_pid.load(std::memory_order_relaxed);
  if (pid <= 0) {
    return false;
  }
  return ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
}

uint64_t ShmSubscriber::dropped() const {
  return segment_->header().dropped.load(std::memory_order_relaxed);
}

uint64_t ShmSubscriber::lane_overflow() const {
  return segment_->header().lane_overflow.load(std::memory_order_relaxed);
}

DrainReport DrainAll(ShmSubscriber& subscriber, runtime::Runtime& rt,
                     size_t batch_events) {
  if (batch_events == 0) {
    batch_events = 1;
  }
  DrainReport report;
  const uint32_t lanes = subscriber.info().lane_count;
  // One dispatch context per lane: a lane is one producer thread's ordered
  // stream, so this reproduces the publisher's per-thread serialisation.
  std::vector<std::unique_ptr<runtime::ThreadContext>> contexts(lanes);
  std::vector<runtime::Event> batch;
  batch.reserve(batch_events);
  uint64_t idle_sweeps = 0;
  for (;;) {
    // Observe the close flag *before* sweeping: everything published before
    // kClosed is visible once we see it, so one empty sweep after the
    // observation proves the lanes are dry.
    const bool was_closed = subscriber.closed();
    uint64_t swept = 0;
    for (uint32_t lane = 0; lane < lanes; lane++) {
      for (;;) {
        batch.clear();
        if (subscriber.PollLane(lane, batch, batch_events) == 0) {
          break;
        }
        if (contexts[lane] == nullptr) {
          contexts[lane] = std::make_unique<runtime::ThreadContext>(rt);
        }
        rt.OnEvents(*contexts[lane],
                    std::span<const runtime::Event>(batch.data(), batch.size()));
        rt.AccountQueueBatch(batch.size());
        report.events += batch.size();
        report.batches++;
        swept += batch.size();
      }
    }
    if (swept != 0) {
      idle_sweeps = 0;
      continue;
    }
    if (was_closed) {
      break;
    }
    // Throttled death check: a publisher that crashed never sets kClosed.
    if (++idle_sweeps % 64 == 0 && subscriber.ProducerDead()) {
      report.producer_died = true;
      // The pid check races the final publishes only if the producer died
      // mid-push, and a dead producer publishes nothing more — one last
      // sweep below the loop would see an already-consistent lane, and the
      // sweep we just completed was empty. Salvage is complete.
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  report.producer_dropped = subscriber.dropped();
  report.lane_overflow = subscriber.lane_overflow();
  if (report.producer_dropped != 0) {
    rt.AccountQueueDrops(report.producer_dropped);
  }
  return report;
}

}  // namespace tesla::ipc
