#include "ipc/publisher.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include <unistd.h>

#include "support/intern.h"
#include "trace/wire.h"

namespace tesla::ipc {
namespace {

// Process-wide publisher id source: ids are never reused, so a thread_local
// lane cache stamped with an id can never alias a destroyed publisher.
std::atomic<uint64_t> next_publisher_id{1};

struct LocalLaneCache {
  uint64_t publisher_id = 0;
  void* slot = nullptr;  // LaneSlot*; null = no lane available
  bool resolved = false;
};

thread_local LocalLaneCache local_lane;

}  // namespace

PublisherOptions PublisherOptions::FromRuntime(const runtime::RuntimeOptions& options) {
  PublisherOptions publisher;
  publisher.lanes = static_cast<uint32_t>(
      options.shm_lanes < 1 ? 1
                            : (options.shm_lanes > kShmMaxLanes ? kShmMaxLanes
                                                                : options.shm_lanes));
  publisher.lane_capacity_events = options.shm_lane_capacity;
  publisher.drop_on_full = options.shm_drop_on_full;
  return publisher;
}

ShmPublisher::ShmPublisher(runtime::Runtime& rt, std::string shm_name,
                           PublisherOptions options)
    : rt_(rt),
      shm_name_(std::move(shm_name)),
      options_(options),
      id_(next_publisher_id.fetch_add(1, std::memory_order_relaxed)) {
  if (options_.lanes < 1) {
    options_.lanes = 1;
  }
  if (options_.lanes > kShmMaxLanes) {
    options_.lanes = kShmMaxLanes;
  }
  if (options_.lane_capacity_events < 16) {
    options_.lane_capacity_events = 16;
  }
}

ShmPublisher::~ShmPublisher() { Stop(); }

Status ShmPublisher::Start(const std::string& origin) {
  if (running_.load(std::memory_order_relaxed)) {
    return Error{"shm publisher already running"};
  }

  // Snapshot the interner: the dense prefix [0, size()) is the segment's
  // symbol generation. Register() has already frozen the runtime's plan, and
  // producers are quiescent until Start() returns, so the table is stable.
  StringInterner& interner = GlobalInterner();
  const size_t symbol_count = interner.size();
  std::vector<uint8_t> symtab;
  trace::PutVarint(symtab, symbol_count);
  for (size_t i = 0; i < symbol_count; i++) {
    trace::PutString(symtab, interner.Spelling(static_cast<Symbol>(i)));
  }
  const std::string manifest_text = rt_.ManifestText();

  ShmSegment::Geometry geometry;
  geometry.lane_count = options_.lanes;
  geometry.lane_words =
      static_cast<uint64_t>(options_.lane_capacity_events) * kShmMaxRecordWords;
  geometry.symtab_bytes = symtab.size();
  geometry.manifest_bytes = manifest_text.size();
  Result<std::unique_ptr<ShmSegment>> created = ShmSegment::Create(shm_name_, geometry);
  if (!created.ok()) {
    return created.error();
  }
  segment_ = std::move(created.value());

  std::memcpy(segment_->symtab(), symtab.data(), symtab.size());
  std::memcpy(segment_->manifest(), manifest_text.data(), manifest_text.size());

  ShmHeader& header = segment_->header();
  header.symbol_count = static_cast<uint32_t>(symbol_count);
  const runtime::RuntimeOptions& ro = rt_.options();
  header.opt_flags = static_cast<uint8_t>((ro.lazy_init ? 1 : 0) | (ro.use_dfa ? 2 : 0) |
                                          (ro.instance_index ? 4 : 0));
  header.instances_per_context = ro.instances_per_context;
  header.global_shards = ro.global_shards;
  std::snprintf(header.origin, kShmOriginBytes, "%s", origin.c_str());
  header.producer_pid.store(static_cast<int32_t>(::getpid()), std::memory_order_relaxed);

  lanes_.clear();
  for (uint32_t lane = 0; lane < options_.lanes; lane++) {
    auto slot = std::make_unique<LaneSlot>();
    slot->writer.ctl = segment_->lane_control(lane);
    slot->writer.words = segment_->lane_words(lane);
    slot->writer.mask = segment_->header().lane_words - 1;
    lanes_.push_back(std::move(slot));
  }

  stopping_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  // The release store makes everything above — mapped regions, header
  // fields, lane slots — visible to any process that acquires kLive.
  header.state.store(static_cast<uint32_t>(ShmState::kLive), std::memory_order_release);

  if (options_.install_hook) {
    rt_.SetIngestHook(&ShmPublisher::IngestThunk, this);
    hook_installed_ = true;
  }
  return Status::Ok();
}

void ShmPublisher::Stop() {
  if (!running_.load(std::memory_order_relaxed)) {
    return;
  }
  if (hook_installed_) {
    rt_.SetIngestHook(nullptr, nullptr);
    hook_installed_ = false;
  }
  // Release any producer still spinning on a full lane: from here on a full
  // lane drops instead of blocking (the sidecar may already be gone).
  stopping_.store(true, std::memory_order_release);

  ShmHeader& header = segment_->header();
  if (options_.wait_for_consumer) {
    // Block until a sidecar has attached: closing (and unlinking) first
    // would strand a consumer that races our shutdown, and the whole point
    // of the transport is that the sidecar sees every event.
    while (header.consumer_attached.load(std::memory_order_acquire) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // Producers are quiescent (caller contract) and every published record is
  // visible via its lane's release head, so kClosed is the drain barrier:
  // the consumer empties each lane after observing it, then detaches.
  header.state.store(static_cast<uint32_t>(ShmState::kClosed), std::memory_order_release);
  running_.store(false, std::memory_order_release);
  // Remove the name now that the consumer holds a mapping; the segment
  // itself lives until both sides unmap.
  ShmSegment::Unlink(shm_name_);
}

bool ShmPublisher::IngestThunk(void* state, runtime::ThreadContext& ctx,
                               const runtime::Event& event) {
  (void)ctx;
  return static_cast<ShmPublisher*>(state)->Publish(event);
}

ShmPublisher::LaneSlot* ShmPublisher::LocalLane() {
  if (local_lane.publisher_id == id_ && local_lane.resolved) {
    return static_cast<LaneSlot*>(local_lane.slot);
  }
  local_lane.publisher_id = id_;
  local_lane.resolved = true;
  const uint32_t lane =
      segment_->header().lanes_allocated.fetch_add(1, std::memory_order_relaxed);
  if (lane >= options_.lanes) {
    local_lane.slot = nullptr;  // over-subscribed: this thread cannot publish
    return nullptr;
  }
  local_lane.slot = lanes_[lane].get();
  return lanes_[lane].get();
}

bool ShmPublisher::Publish(const runtime::Event& event) {
  if (!running_.load(std::memory_order_acquire)) {
    return false;  // ingest hook falls back to inline dispatch
  }
  LaneSlot* slot = LocalLane();
  ShmHeader& header = segment_->header();
  if (slot == nullptr) {
    header.lane_overflow.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (slot->writer.TryPush(event)) {
    slot->published.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (options_.drop_on_full) {
    header.dropped.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Lossless policy: spin until the sidecar drains. Shutdown breaks the
  // wait (and counts the loss) so an abandoned publisher can still exit.
  uint32_t spins = 0;
  while (!slot->writer.TryPush(event)) {
    if (stopping_.load(std::memory_order_acquire)) {
      header.dropped.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (++spins % 1024 == 0) {
      std::this_thread::yield();
    }
  }
  slot->published.fetch_add(1, std::memory_order_relaxed);
  return true;
}

PublisherStats ShmPublisher::stats() const {
  PublisherStats stats;
  for (const auto& slot : lanes_) {
    stats.published += slot->published.load(std::memory_order_relaxed);
  }
  if (segment_ != nullptr) {
    stats.dropped = segment_->header().dropped.load(std::memory_order_relaxed);
    stats.lane_overflow = segment_->header().lane_overflow.load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace tesla::ipc
