// ShmSubscriber: the sidecar side of the cross-process capture transport
// (see src/ipc/shm.h for the segment protocol).
//
// Attach() maps a live segment published by an instrumented process this
// sidecar does not share code or address space with, and recovers everything
// needed to check the stream:
//   * the publisher's symbol table — InternSymbols() interns every spelling
//     into *this* process's interner and builds the id remap, so the
//     sidecar's dispatch plan routes the publisher's symbols;
//   * the embedded manifest text and origin — the assertion set to register;
//   * the semantics-bearing runtime options — so the sidecar's Runtime
//     reproduces the publisher's configuration.
//
// Call order matters: InternSymbols() must run before the sidecar's
// Runtime::Register(), which freezes the interner — a symbol interned after
// the plan is compiled would be unroutable.
//
// DrainAll() is the canonical consumption loop (`tesla-trace attach` wraps
// it): one ThreadContext per lane — a lane carries exactly one producer
// thread's events in order, so per-lane contexts preserve the paper's
// per-thread serialisation semantics — dispatched through Runtime::OnEvents
// until the publisher closes the segment or dies.
#ifndef TESLA_IPC_SUBSCRIBER_H_
#define TESLA_IPC_SUBSCRIBER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ipc/shm.h"
#include "runtime/runtime.h"
#include "support/result.h"
#include "trace/format.h"

namespace tesla::ipc {

// Everything the segment header + regions describe about the publisher.
struct ShmInfo {
  std::string origin;
  std::string manifest_text;          // empty if the publisher embedded none
  trace::CaptureOptions options;      // semantics-bearing runtime options
  uint32_t lane_count = 0;
  uint32_t symbol_count = 0;
  int32_t producer_pid = 0;
};

struct DrainReport {
  uint64_t events = 0;           // events dispatched
  uint64_t batches = 0;          // OnEvents calls
  uint64_t producer_dropped = 0; // publisher-side full-lane drops
  uint64_t lane_overflow = 0;    // publisher events from threads past the lanes
  bool producer_died = false;    // publisher vanished without closing cleanly
};

class ShmSubscriber {
 public:
  // Maps `name` and validates it. Waits up to `timeout_ms` for the segment
  // to appear and reach kLive (0: a single immediate attempt) — publishers
  // and sidecars race at startup by design. Errors carry trace::ErrorCode
  // values: kErrUnreadable when the name never appears, kErrCorrupt /
  // kErrVersionMismatch from geometry validation.
  static Result<std::unique_ptr<ShmSubscriber>> Attach(const std::string& name,
                                                       int timeout_ms = 0);

  const ShmInfo& info() const { return info_; }

  // RuntimeOptions reproducing the publisher's semantics (plus whatever the
  // caller layers on top — metrics, tracing).
  runtime::RuntimeOptions PublisherRuntimeOptions() const;

  // Interns every publisher symbol into this process's interner and builds
  // the id remap applied by PollLane(). Must precede Runtime::Register().
  void InternSymbols();

  // Drains up to `max` events from `lane` into `out` (appended), with
  // publisher symbol ids rewritten to this process's. Returns the number
  // appended. Site events' targets are automaton ids, not symbols, and pass
  // through untouched — manifest registration order preserves them.
  size_t PollLane(uint32_t lane, std::vector<runtime::Event>& out, size_t max);

  // Clean shutdown observed (drain every lane to empty, then detach).
  bool closed() const;
  // The publisher process is gone without a clean close.
  bool ProducerDead() const;

  uint64_t dropped() const;        // publisher-side drop counter
  uint64_t lane_overflow() const;  // publisher-side overflow counter

  // Non-site events whose symbol id fell outside the segment's symbol
  // generation (interned by the publisher after Start) — left unmapped.
  uint64_t unknown_symbols() const { return unknown_symbols_; }

  ShmHeader& header_for_test() { return segment_->header(); }

 private:
  ShmSubscriber() = default;

  std::unique_ptr<ShmSegment> segment_;
  ShmInfo info_;
  std::vector<std::string> spellings_;  // publisher id → spelling
  std::vector<Symbol> remap_;           // publisher id → local symbol
  bool interned_ = false;
  std::vector<LaneReader> readers_;
  uint64_t unknown_symbols_ = 0;
};

// Drains every lane through `rt` until the publisher closes the segment (all
// lanes emptied after kClosed) or dies (salvages what the lanes still hold,
// reports producer_died). The runtime must have the segment's manifest
// registered and must not be fed events by anyone else during the drain.
// Dispatched batches are folded into RuntimeStats::queue_events/queue_batches
// and publisher drops into queue_drops, so the usual exposition formats show
// transport accounting.
DrainReport DrainAll(ShmSubscriber& subscriber, runtime::Runtime& rt,
                     size_t batch_events = 256);

}  // namespace tesla::ipc

#endif  // TESLA_IPC_SUBSCRIBER_H_
