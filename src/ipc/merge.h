// Fleet-level capture aggregation: `tesla-trace merge`.
//
// Each shard of a fleet — one instrumented process, container or machine —
// writes its own TSLATRC capture. MergeCaptureFiles() unions them into one
// deterministic report:
//
//   * RuntimeStats counters are summed field-by-field (via the
//     TESLA_RUNTIME_STATS schema, so a new counter merges automatically);
//   * violations become a multiset: (kind, automaton) with an occurrence
//     count, sorted — the fleet's failure census, independent of which shard
//     saw what;
//   * metrics snapshots merge per class, keyed by automaton name: counters
//     sum, transition-coverage bits OR — a clause is *dead fleet-wide* only
//     if no shard ever fired it, which is the question a fleet coverage
//     report answers — and dispatch-latency histograms sum bucket-wise;
//   * shards recorded against different assertion sets are rejected: two
//     same-named classes whose transition grids disagree (different states,
//     symbols or descriptions) make coverage bits incomparable.
//
// Determinism: every combine step is commutative and associative and classes
// are sorted by name, so any input order yields byte-identical ToJson() /
// ToPrometheus() output — merge outputs can themselves be diffed, cached or
// re-merged.
//
// The merged snapshot feeds the existing exposition formats
// (metrics::ToJson / ToPrometheus / RenderText), so one Prometheus scrape
// target can serve a whole fleet's assertion coverage.
#ifndef TESLA_IPC_MERGE_H_
#define TESLA_IPC_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/snapshot.h"
#include "profile/snapshot.h"
#include "support/result.h"
#include "trace/format.h"

namespace tesla::ipc {

// One (kind, automaton) violation class with its fleet-wide occurrence count.
struct ViolationCount {
  runtime::ViolationKind kind = runtime::ViolationKind::kBadSite;
  std::string automaton;
  uint64_t count = 0;
};

struct FleetReport {
  uint64_t shards = 0;          // captures merged
  uint64_t dropped = 0;         // summed capture-side drops
  uint64_t events = 0;          // summed record counts
  runtime::RuntimeStats stats;  // summed across shards
  std::vector<ViolationCount> violations;  // sorted by (kind, automaton)
  // Merged metrics (has_metrics: at least one shard carried a snapshot;
  // shards without one contribute stats and violations only, so dead-clause
  // verdicts cover exactly the shards that recorded coverage).
  bool has_metrics = false;
  uint64_t metric_shards = 0;  // captures that carried a metrics snapshot
  metrics::Snapshot metrics;
  // Merged workload profile (v5 captures): cells combine per the profile
  // schema's merge rule (sum / max), sketches OR, pool marks max — so the
  // fleet profile answers the same plan-compilation questions a single
  // shard's does, and `tesla-trace profile` can compile hints from it.
  bool has_profile = false;
  uint64_t profile_shards = 0;  // captures that carried a profile section
  profile::Snapshot profile;
};

// Merges already-parsed captures. `labels[i]` names capture i in error
// messages (the CLI passes file paths).
Result<FleetReport> MergeCaptures(const std::vector<trace::TraceFile>& captures,
                                  const std::vector<std::string>& labels);

// Reads and merges capture files. Read errors keep their ErrorCode tags
// (kErrUnreadable/kErrCorrupt/kErrVersionMismatch) so the CLI maps them to
// exit codes; a transition-grid mismatch is tagged kErrVersionMismatch.
Result<FleetReport> MergeCaptureFiles(const std::vector<std::string>& paths);

// The fleet report as JSON: a "fleet" object (shards, drops, events), the
// summed stats, the violation census, and — when any shard carried metrics —
// the merged snapshot under "metrics" (metrics::ToJson form). Deterministic
// for any input order.
std::string FleetToJson(const FleetReport& report);

// The merged snapshot in Prometheus text exposition format, preceded by
// fleet-level gauges (shards merged, capture drops). Valid scrape output
// whether or not any shard carried metrics (stats counters are always
// present in the snapshot).
std::string FleetToPrometheus(const FleetReport& report);

}  // namespace tesla::ipc

#endif  // TESLA_IPC_MERGE_H_
