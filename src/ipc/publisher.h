// ShmPublisher: the instrumented-process side of the cross-process capture
// transport (see src/ipc/shm.h for the segment protocol).
//
// Start() creates the named segment, serialises everything a sidecar needs
// to check the event stream — the interner's spellings, the registered
// manifest, the semantics-bearing runtime options, the origin string — and
// installs a Runtime ingest hook that ships every event into the calling
// thread's SPSC lane instead of dispatching it in-process. The instrumented
// binary pays one ring enqueue per event; all automaton work happens in the
// sidecar (`tesla-trace attach <name>`).
//
// Threading contract (same as tesla::queue): Start() and Stop() come from
// one coordinating thread while no producer is mid-OnEvent; any number of
// producer threads may publish concurrently, each on its own lane. Threads
// beyond PublisherOptions::lanes cannot publish — their events are dropped
// and counted in the segment header's lane_overflow.
#ifndef TESLA_IPC_PUBLISHER_H_
#define TESLA_IPC_PUBLISHER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ipc/shm.h"
#include "runtime/runtime.h"
#include "support/result.h"

namespace tesla::ipc {

struct PublisherOptions {
  // SPSC lanes (max concurrently-publishing threads), clamped to
  // [1, kShmMaxLanes].
  uint32_t lanes = 8;
  // Per-lane capacity in events, sized for worst-case records (the lane
  // holds at least this many events of any shape; small records pack
  // denser).
  size_t lane_capacity_events = 1 << 14;
  // Full-lane policy: false blocks the producer until the sidecar drains
  // (lossless), true drops the event and counts it in the header.
  bool drop_on_full = false;
  // Interpose on Runtime::OnEvent via the ingest hook. Tests that drive
  // Publish() by hand turn this off.
  bool install_hook = true;
  // Stop() blocks until a consumer has attached before closing the segment —
  // without this, a publisher that finishes its workload before the sidecar
  // attaches would unlink the name and strand the sidecar.
  bool wait_for_consumer = true;

  static PublisherOptions FromRuntime(const runtime::RuntimeOptions& options);
};

struct PublisherStats {
  uint64_t published = 0;      // events shipped into lanes
  uint64_t dropped = 0;        // full-lane drops (drop policy / shutdown)
  uint64_t lane_overflow = 0;  // events from threads past the lane count
};

class ShmPublisher {
 public:
  // `rt` must outlive the publisher and have its manifest registered before
  // Start() (the segment embeds rt.ManifestText() and the interner table as
  // of Start).
  ShmPublisher(runtime::Runtime& rt, std::string shm_name, PublisherOptions options = {});
  ~ShmPublisher();

  ShmPublisher(const ShmPublisher&) = delete;
  ShmPublisher& operator=(const ShmPublisher&) = delete;

  // Creates the segment, publishes it as live and (by default) installs the
  // ingest hook. `origin` is recorded in the header for sidecars that want
  // to name their capture's manifest source.
  Status Start(const std::string& origin);

  // Uninstalls the hook, waits for a consumer when configured, marks the
  // segment closed and unlinks the name. Producers must be quiescent.
  // Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Ships one event on the calling thread's lane. Returns true when the
  // event was consumed (shipped, dropped by policy, or dropped for lack of
  // a lane), false only when the publisher is not running — the ingest hook
  // then falls back to inline dispatch.
  bool Publish(const runtime::Event& event);

  PublisherStats stats() const;
  const std::string& shm_name() const { return shm_name_; }

  // The mapped segment, for tests poking at the header. Null until Start().
  ShmSegment* segment_for_test() { return segment_.get(); }

 private:
  // One lane's producer-side state. The writer (with its cached tail) is
  // owned by the single thread the lane was assigned to; the counter is
  // read by stats() from other threads.
  struct alignas(64) LaneSlot {
    LaneWriter writer;
    std::atomic<uint64_t> published{0};
  };

  static bool IngestThunk(void* state, runtime::ThreadContext& ctx,
                          const runtime::Event& event);
  LaneSlot* LocalLane();

  runtime::Runtime& rt_;
  std::string shm_name_;
  PublisherOptions options_;
  uint64_t id_ = 0;  // process-unique, stamps the thread_local lane cache
  std::unique_ptr<ShmSegment> segment_;
  std::vector<std::unique_ptr<LaneSlot>> lanes_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  bool hook_installed_ = false;
};

}  // namespace tesla::ipc

#endif  // TESLA_IPC_PUBLISHER_H_
