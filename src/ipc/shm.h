// tesla::ipc shared-memory segment: the cross-process capture transport.
//
// A named POSIX shm segment carries TESLA events from an instrumented
// process (the *publisher*, src/ipc/publisher.h) to a sidecar checker it
// does not link against (the *subscriber*, src/ipc/subscriber.h — driven by
// `tesla-trace attach`). The segment is self-describing in the same spirit
// as a TSLATRC v4 capture: besides the event lanes it embeds everything a
// fresh process needs to dispatch the stream — the publisher's interner
// table (so symbol ids remap), the serialised manifest (so the assertion
// set registers), the semantics-bearing runtime options and the origin
// string.
//
// Layout (offsets computed from the header's geometry fields):
//
//   ShmHeader                  magic "TSLASHM1", version, geometry, options,
//                              origin, and the live coordination atomics
//   symbol table               varint count, then count varint-length-
//                              prefixed spellings — the publisher interner's
//                              frozen prefix [0, symbol_count), written
//                              before the segment goes live (the "interner
//                              generation" the subscriber remaps against)
//   manifest                   manifest_bytes of .tesla text (may be empty)
//   LaneControl × lane_count   per-lane head/tail, a cacheline each
//   lane words                 lane_count rings of lane_words 64-bit words
//
// Lanes are SPSC rings speaking the tesla::queue word format
// (src/queue/ring.h) minus the leading ThreadContext-pointer word — a
// pointer is meaningless across address spaces; the subscriber gives each
// lane its own ThreadContext instead, which preserves the paper's
// per-thread serialisation semantics because a lane has exactly one
// producer thread. Record:
//
//   word 0   header: kind | count<<8 | flags (truncated / has return /
//            has vars / has timestamp) | target symbol << 32
//   [1]      event timestamp, when stamped (timed clauses: the sidecar
//            evaluates deadlines against the publisher's clock)
//   …        count argument values
//   [1]      return value, when non-zero
//   [0–2]    vars packed four per word, when any is non-zero (site events)
//
// Synchronisation is exactly the ring's: the producer relaxed-stores the
// record words then release-publishes head; the consumer acquire-loads head,
// decodes, release-publishes tail. The atomics live in the mapped region —
// std::atomic<uint64_t> is address-free on every platform we build for
// (static_asserted below), so the protocol works across processes.
//
// Attach/detach protocol:
//   * the publisher creates the segment (O_CREAT|O_EXCL), writes geometry,
//     symbols, manifest and options, then release-stores state = kLive;
//   * a subscriber opens the name, acquire-loads state until kLive (bounded
//     wait), validates magic/version/geometry against the mapped size, and
//     fetch_add's consumer_attached;
//   * the publisher's clean shutdown stores state = kClosed *after* its
//     producers quiesce; the subscriber drains every lane to empty after
//     observing kClosed, then detaches;
//   * producer death without kClosed is detected by the subscriber via
//     kill(producer_pid, 0) == ESRCH — the drain loop reports it and
//     salvages whatever the lanes still hold;
//   * the publisher shm_unlink()s the name once a consumer has attached
//     (an mmap keeps the segment alive until both sides unmap).
#ifndef TESLA_IPC_SHM_H_
#define TESLA_IPC_SHM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/event.h"
#include "support/result.h"

namespace tesla::ipc {

inline constexpr char kShmMagic[8] = {'T', 'S', 'L', 'A', 'S', 'H', 'M', '1'};
inline constexpr uint32_t kShmVersion = 1;
inline constexpr uint32_t kShmMaxLanes = 64;
inline constexpr size_t kShmOriginBytes = 120;

// Worst case record: header + timestamp + 8 values + return + 2 packed-vars
// words.
inline constexpr size_t kShmMaxRecordWords =
    1 + 1 + runtime::kMaxEventArgs + 1 + (runtime::kMaxEventArgs + 3) / 4;

// Header word flags (same bit positions as queue::QueueRing).
inline constexpr uint64_t kShmHeaderTruncated = uint64_t{1} << 16;
inline constexpr uint64_t kShmHeaderHasReturn = uint64_t{1} << 17;
inline constexpr uint64_t kShmHeaderHasVars = uint64_t{1} << 18;
inline constexpr uint64_t kShmHeaderHasTs = uint64_t{1} << 19;

enum class ShmState : uint32_t {
  kInitialising = 0,  // creator is still writing geometry/symbols/manifest
  kLive = 1,          // publisher accepting events
  kClosed = 2,        // clean shutdown: drain to empty, then detach
};

// One lane's indices, a cacheline per side so the producer's head stores
// never bounce the consumer's tail line.
struct LaneControl {
  alignas(64) std::atomic<uint64_t> head;
  alignas(64) std::atomic<uint64_t> tail;
};
static_assert(sizeof(LaneControl) == 128, "one cacheline per side");

struct ShmHeader {
  // --- immutable after state becomes kLive ---
  char magic[8];
  uint32_t version = 0;
  uint32_t lane_count = 0;
  uint64_t lane_words = 0;  // per lane, power of two
  uint64_t symtab_bytes = 0;
  uint64_t manifest_bytes = 0;
  uint32_t symbol_count = 0;  // interner generation: spellings serialised
  // The semantics-bearing runtime options (same encoding as a capture's
  // options section): lazy_init | use_dfa<<1 | instance_index<<2.
  uint8_t opt_flags = 0;
  uint8_t pad_[3] = {};
  uint64_t instances_per_context = 0;
  uint64_t global_shards = 0;
  char origin[kShmOriginBytes] = {};  // NUL-terminated

  // --- live coordination ---
  std::atomic<uint32_t> state{0};         // ShmState
  std::atomic<int32_t> producer_pid{0};   // for death detection
  std::atomic<uint32_t> lanes_allocated{0};
  std::atomic<uint32_t> consumer_attached{0};
  std::atomic<uint64_t> dropped{0};        // full-lane drops (drop policy)
  std::atomic<uint64_t> lane_overflow{0};  // events from threads past lane_count
};

static_assert(std::atomic<uint64_t>::is_always_lock_free &&
                  std::atomic<uint32_t>::is_always_lock_free,
              "shm coordination requires address-free lock-free atomics");

// Producer-side view of one lane. Mirrors queue::QueueRing::TryPush with the
// context word dropped; `cached_tail` lives here (process-local), not in the
// shared region.
struct LaneWriter {
  LaneControl* ctl = nullptr;
  std::atomic<uint64_t>* words = nullptr;
  uint64_t mask = 0;
  uint64_t cached_tail = 0;

  bool TryPush(const runtime::Event& event) {
    uint64_t vars_packed[2] = {0, 0};
    for (size_t i = 0; i < event.count; i++) {
      vars_packed[i / 4] |= static_cast<uint64_t>(event.vars[i]) << (16 * (i % 4));
    }
    const bool has_return = event.return_value != 0;
    const bool has_vars = (vars_packed[0] | vars_packed[1]) != 0;
    const bool has_ts = event.ts_ns != 0;
    const size_t need = 1 + event.count + (has_return ? 1 : 0) +
                        (has_vars ? (event.count + 3) / 4 : 0) + (has_ts ? 1 : 0);

    const uint64_t head = ctl->head.load(std::memory_order_relaxed);
    const uint64_t capacity = mask + 1;
    if (head + need - cached_tail > capacity) {
      cached_tail = ctl->tail.load(std::memory_order_acquire);
      if (head + need - cached_tail > capacity) {
        return false;
      }
    }

    uint64_t pos = head;
    auto put = [&](uint64_t word) {
      words[pos & mask].store(word, std::memory_order_relaxed);
      pos++;
    };
    put(static_cast<uint64_t>(event.kind) | (static_cast<uint64_t>(event.count) << 8) |
        (event.truncated ? kShmHeaderTruncated : 0) |
        (has_return ? kShmHeaderHasReturn : 0) | (has_vars ? kShmHeaderHasVars : 0) |
        (has_ts ? kShmHeaderHasTs : 0) | (static_cast<uint64_t>(event.target) << 32));
    if (has_ts) {
      put(event.ts_ns);
    }
    for (size_t i = 0; i < event.count; i++) {
      put(static_cast<uint64_t>(event.values[i]));
    }
    if (has_return) {
      put(static_cast<uint64_t>(event.return_value));
    }
    if (has_vars) {
      for (size_t i = 0; i < (event.count + 3u) / 4; i++) {
        put(vars_packed[i]);
      }
    }
    ctl->head.store(pos, std::memory_order_release);
    return true;
  }
};

// Consumer-side view of one lane.
struct LaneReader {
  LaneControl* ctl = nullptr;
  std::atomic<uint64_t>* words = nullptr;
  uint64_t mask = 0;
  uint64_t cached_head = 0;

  bool Empty() {
    const uint64_t tail = ctl->tail.load(std::memory_order_relaxed);
    if (cached_head != tail) {
      return false;
    }
    cached_head = ctl->head.load(std::memory_order_acquire);
    return cached_head == tail;
  }

  // Appends up to `max` decoded events; returns the number popped. Whole
  // records only (the producer publishes record-at-a-time), so decoding
  // below head never reads unwritten words.
  size_t Pop(std::vector<runtime::Event>& out, size_t max) {
    const uint64_t tail = ctl->tail.load(std::memory_order_relaxed);
    if (cached_head == tail) {
      cached_head = ctl->head.load(std::memory_order_acquire);
      if (cached_head == tail) {
        return 0;
      }
    }
    uint64_t pos = tail;
    size_t popped = 0;
    uint64_t vars_scratch = 0;
    auto take = [&] {
      const uint64_t word = words[pos & mask].load(std::memory_order_relaxed);
      pos++;
      return word;
    };
    while (pos != cached_head && popped < max) {
      runtime::Event event;
      const uint64_t header = take();
      event.kind = static_cast<runtime::EventKind>(header & 0xff);
      event.count = static_cast<uint8_t>((header >> 8) & 0xff);
      event.truncated = (header & kShmHeaderTruncated) != 0;
      event.target = static_cast<Symbol>(header >> 32);
      if ((header & kShmHeaderHasTs) != 0) {
        event.ts_ns = take();
      }
      for (size_t i = 0; i < event.count; i++) {
        event.values[i] = static_cast<int64_t>(take());
      }
      if ((header & kShmHeaderHasReturn) != 0) {
        event.return_value = static_cast<int64_t>(take());
      }
      if ((header & kShmHeaderHasVars) != 0) {
        for (size_t i = 0; i < event.count; i++) {
          if (i % 4 == 0) {
            vars_scratch = take();
          }
          event.vars[i] = static_cast<uint16_t>(vars_scratch >> (16 * (i % 4)));
        }
      }
      out.push_back(event);
      popped++;
    }
    ctl->tail.store(pos, std::memory_order_release);
    return popped;
  }
};

// The mapped segment. Create() is the publisher side (owns the name and
// unlinks it), OpenExisting() the subscriber side (maps an existing name and
// validates its geometry). Both unmap on destruction.
class ShmSegment {
 public:
  struct Geometry {
    uint32_t lane_count = 1;
    uint64_t lane_words = 1 << 16;  // rounded up to a power of two by Create
    size_t symtab_bytes = 0;
    size_t manifest_bytes = 0;
  };

  ~ShmSegment();

  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  // Creates and maps a fresh segment (state = kInitialising, header geometry
  // filled in). The caller writes symbols/manifest/options, then publishes
  // with header().state.store(kLive, release). Fails (kErrUnreadable-coded
  // errors) on OS-level shm failures, including a leftover segment of the
  // same name.
  static Result<std::unique_ptr<ShmSegment>> Create(const std::string& name,
                                                    const Geometry& geometry);

  // Maps an existing segment. Only the mapped size is checked here — the
  // creator may still be writing the header; call ValidateGeometry() after
  // observing state ≥ kLive (the subscriber layers its bounded wait on top).
  static Result<std::unique_ptr<ShmSegment>> OpenExisting(const std::string& name);

  // Validates magic, version, lane geometry and that the whole layout fits
  // the mapped size, then computes the region offsets. Must be called (once)
  // on an OpenExisting() segment after an acquire load of header().state
  // observed kLive or kClosed — the geometry fields are immutable from then
  // on. Errors carry trace::ErrorCode values (kErrVersionMismatch for a
  // newer segment version, kErrCorrupt otherwise).
  Status ValidateGeometry();

  // Removes the name (idempotent; the mapping stays valid).
  static void Unlink(const std::string& name);

  ShmHeader& header() { return *header_; }
  const ShmHeader& header() const { return *header_; }
  uint8_t* symtab() { return base_ + symtab_offset_; }
  const uint8_t* symtab() const { return base_ + symtab_offset_; }
  uint8_t* manifest() { return base_ + manifest_offset_; }
  const uint8_t* manifest() const { return base_ + manifest_offset_; }
  LaneControl* lane_control(uint32_t lane);
  std::atomic<uint64_t>* lane_words(uint32_t lane);
  const std::string& name() const { return name_; }
  bool owner() const { return owner_; }

 private:
  ShmSegment() = default;
  Status MapAndValidate(int fd, bool created, const Geometry* geometry);

  std::string name_;  // normalised ("/"-prefixed)
  uint8_t* base_ = nullptr;
  size_t mapped_bytes_ = 0;
  ShmHeader* header_ = nullptr;
  size_t symtab_offset_ = 0;
  size_t manifest_offset_ = 0;
  size_t lanes_offset_ = 0;  // LaneControl array
  size_t words_offset_ = 0;  // lane word arrays
  bool owner_ = false;
};

}  // namespace tesla::ipc

#endif  // TESLA_IPC_SHM_H_
