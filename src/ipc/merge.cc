#include "ipc/merge.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace tesla::ipc {
namespace {

// Transition grids are comparable only when they describe the same automaton
// build: same (state, symbol) slots with the same human description. A
// mismatch means the shards ran different assertion sets (or different
// compiler versions of one), and OR-ing their coverage bits would fabricate
// a verdict.
Status CheckSameGrid(const metrics::ClassSnapshot& have, const metrics::ClassSnapshot& add,
                     const std::string& label) {
  if (have.transitions.size() != add.transitions.size()) {
    return Error{"capture '" + label + "': class '" + add.name + "' has " +
                     std::to_string(add.transitions.size()) +
                     " statically-valid transitions where earlier shards had " +
                     std::to_string(have.transitions.size()) +
                     " — shards recorded against different assertion sets",
                 0, 0, trace::kErrVersionMismatch};
  }
  for (size_t i = 0; i < have.transitions.size(); i++) {
    const metrics::TransitionCoverage& a = have.transitions[i];
    const metrics::TransitionCoverage& b = add.transitions[i];
    if (a.state != b.state || a.symbol != b.symbol || a.description != b.description) {
      return Error{"capture '" + label + "': class '" + add.name + "' transition #" +
                       std::to_string(i) + " (" + b.description +
                       ") disagrees with earlier shards (" + a.description +
                       ") — shards recorded against different assertion sets",
                   0, 0, trace::kErrVersionMismatch};
    }
  }
  return Status::Ok();
}

void EscapeJson(const std::string& text, std::string* out) {
  for (const char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", static_cast<unsigned char>(c));
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
}

// Prometheus label values escape backslash, quote and newline.
void EscapeLabel(const std::string& text, std::string* out) {
  for (const char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default: *out += c;
    }
  }
}

}  // namespace

Result<FleetReport> MergeCaptures(const std::vector<trace::TraceFile>& captures,
                                  const std::vector<std::string>& labels) {
  if (captures.empty()) {
    return Error{"merge needs at least one capture"};
  }
  FleetReport report;

  // Violation census and per-class metrics both accumulate in ordered maps —
  // the sort that makes the output independent of input order.
  std::map<std::pair<int, std::string>, uint64_t> violations;
  std::map<std::string, metrics::ClassSnapshot> classes;

  for (size_t i = 0; i < captures.size(); i++) {
    const trace::TraceFile& capture = captures[i];
    const std::string& label = i < labels.size() ? labels[i] : "capture";
    report.shards++;
    report.dropped += capture.summary.dropped;
    report.events += capture.records.size();
    for (const trace::StatsField& field : trace::kStatsFields) {
      report.stats.*field.field += capture.summary.stats.*field.field;
    }
    for (const auto& [kind, automaton] : capture.summary.violations) {
      violations[{static_cast<int>(kind), automaton}]++;
    }
    if (capture.summary.has_profile) {
      report.has_profile = true;
      report.profile_shards++;
      // MergeInto is commutative and associative and sorts classes by name,
      // so the fleet profile is independent of input order, like the rest.
      profile::MergeInto(&report.profile, capture.summary.profile);
    }
    if (!capture.summary.has_metrics) {
      continue;
    }
    report.has_metrics = true;
    report.metric_shards++;
    const metrics::Snapshot& snapshot = capture.summary.metrics;
    if (static_cast<int>(snapshot.mode) > static_cast<int>(report.metrics.mode)) {
      report.metrics.mode = snapshot.mode;
    }
    for (const metrics::ClassSnapshot& cls : snapshot.classes) {
      auto [it, inserted] = classes.try_emplace(cls.name, cls);
      if (inserted) {
        continue;
      }
      if (Status status = CheckSameGrid(it->second, cls, label); !status.ok()) {
        return status.error();
      }
      for (size_t k = 0; k < metrics::kClassCounterCount; k++) {
        it->second.counters[k] += cls.counters[k];
      }
      for (size_t t = 0; t < cls.transitions.size(); t++) {
        it->second.transitions[t].fired |= cls.transitions[t].fired;
      }
    }
    for (size_t kind = 0; kind < metrics::kEventKinds; kind++) {
      const metrics::HistogramData& from = snapshot.histograms[kind];
      metrics::HistogramData& into = report.metrics.histograms[kind];
      into.count += from.count;
      into.sum_ns += from.sum_ns;
      for (size_t b = 0; b < metrics::kHistogramBuckets; b++) {
        into.buckets[b] += from.buckets[b];
      }
    }
    // Queue producer/consumer sections are per-process wall-clock detail
    // that does not aggregate meaningfully across shards; leaving the
    // vectors empty suppresses them in every exposition format.
  }

  for (auto& [key, count] : violations) {
    report.violations.push_back(ViolationCount{
        static_cast<runtime::ViolationKind>(key.first), key.second, count});
  }
  report.metrics.stats = report.stats;
  for (auto& [name, cls] : classes) {
    report.metrics.classes.push_back(std::move(cls));
  }
  return report;
}

Result<FleetReport> MergeCaptureFiles(const std::vector<std::string>& paths) {
  std::vector<trace::TraceFile> captures;
  captures.reserve(paths.size());
  for (const std::string& path : paths) {
    Result<trace::TraceFile> read = trace::TraceFile::Read(path);
    if (!read.ok()) {
      return read.error();
    }
    captures.push_back(std::move(read.value()));
  }
  return MergeCaptures(captures, paths);
}

std::string FleetToJson(const FleetReport& report) {
  std::string out = "{\n";
  out += "  \"fleet\": {\n";
  out += "    \"shards\": " + std::to_string(report.shards) + ",\n";
  out += "    \"metric_shards\": " + std::to_string(report.metric_shards) + ",\n";
  out += "    \"events\": " + std::to_string(report.events) + ",\n";
  out += "    \"dropped\": " + std::to_string(report.dropped) + "\n";
  out += "  },\n";
  out += "  \"stats\": {\n";
  bool first = true;
  for (const trace::StatsField& field : trace::kStatsFields) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "    \"" + std::string(field.name) +
           "\": " + std::to_string(report.stats.*field.field);
  }
  out += "\n  },\n";
  out += "  \"violations\": [";
  for (size_t i = 0; i < report.violations.size(); i++) {
    const ViolationCount& violation = report.violations[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"kind\": \"";
    out += runtime::ViolationKindName(violation.kind);
    out += "\", \"automaton\": \"";
    EscapeJson(violation.automaton, &out);
    out += "\", \"count\": " + std::to_string(violation.count) + "}";
  }
  out += report.violations.empty() ? "],\n" : "\n  ],\n";
  out += "  \"metrics\": ";
  if (report.has_metrics) {
    out += metrics::ToJson(report.metrics);
  } else {
    out += "null";
  }
  out += ",\n  \"profile\": ";
  if (report.has_profile) {
    out += profile::ToJson(report.profile);
  } else {
    out += "null";
  }
  out += "\n}\n";
  return out;
}

std::string FleetToPrometheus(const FleetReport& report) {
  std::string out;
  out +=
      "# HELP tesla_fleet_shards captures merged into this report\n"
      "# TYPE tesla_fleet_shards gauge\n"
      "tesla_fleet_shards " + std::to_string(report.shards) + "\n";
  out +=
      "# HELP tesla_fleet_metric_shards merged captures that carried a metrics snapshot\n"
      "# TYPE tesla_fleet_metric_shards gauge\n"
      "tesla_fleet_metric_shards " + std::to_string(report.metric_shards) + "\n";
  out +=
      "# HELP tesla_fleet_capture_drops_total capture-side event drops summed over shards\n"
      "# TYPE tesla_fleet_capture_drops_total counter\n"
      "tesla_fleet_capture_drops_total " + std::to_string(report.dropped) + "\n";
  if (!report.violations.empty()) {
    out +=
        "# HELP tesla_fleet_violations_total fleet-wide violation census by kind and "
        "automaton\n"
        "# TYPE tesla_fleet_violations_total counter\n";
    for (const ViolationCount& violation : report.violations) {
      out += "tesla_fleet_violations_total{kind=\"";
      out += runtime::ViolationKindName(violation.kind);
      out += "\",automaton=\"";
      EscapeLabel(violation.automaton, &out);
      out += "\"} " + std::to_string(violation.count) + "\n";
    }
  }
  out += metrics::ToPrometheus(report.metrics);
  if (report.has_profile) {
    out +=
        "# HELP tesla_fleet_profile_shards merged captures that carried a workload "
        "profile\n"
        "# TYPE tesla_fleet_profile_shards gauge\n"
        "tesla_fleet_profile_shards " + std::to_string(report.profile_shards) + "\n";
    out += profile::ToPrometheus(report.profile);
  }
  return out;
}

}  // namespace tesla::ipc
