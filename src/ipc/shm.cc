#include "ipc/shm.h"

#include <cerrno>
#include <cstring>
#include <new>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "trace/format.h"  // ErrorCode values for coded errors

namespace tesla::ipc {
namespace {

constexpr size_t AlignUp(size_t value, size_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

uint64_t RoundUpPow2(uint64_t value) {
  uint64_t pow2 = 1;
  while (pow2 < value) {
    pow2 <<= 1;
  }
  return pow2;
}

// POSIX wants a name of the form "/name" with no further slashes.
Result<std::string> NormaliseName(const std::string& name) {
  std::string normalised = name;
  if (normalised.empty() || normalised == "/") {
    return Error{"shm name must be non-empty", 0, 0, trace::kErrUnreadable};
  }
  if (normalised[0] != '/') {
    normalised = "/" + normalised;
  }
  if (normalised.find('/', 1) != std::string::npos) {
    return Error{"shm name '" + name + "' must not contain '/' beyond the leading one",
                 0, 0, trace::kErrUnreadable};
  }
  return normalised;
}

struct Offsets {
  size_t symtab = 0;
  size_t manifest = 0;
  size_t lanes = 0;
  size_t words = 0;
  size_t total = 0;
};

Offsets ComputeOffsets(uint32_t lane_count, uint64_t lane_words, size_t symtab_bytes,
                       size_t manifest_bytes) {
  Offsets offsets;
  offsets.symtab = AlignUp(sizeof(ShmHeader), 8);
  offsets.manifest = offsets.symtab + symtab_bytes;
  // LaneControl demands cacheline alignment; the word arrays follow the
  // controls (whose size is a multiple of 64) so they inherit it.
  offsets.lanes = AlignUp(offsets.manifest + manifest_bytes, 64);
  offsets.words = offsets.lanes + static_cast<size_t>(lane_count) * sizeof(LaneControl);
  offsets.total =
      offsets.words + static_cast<size_t>(lane_count) * static_cast<size_t>(lane_words) * 8;
  return offsets;
}

}  // namespace

ShmSegment::~ShmSegment() {
  if (base_ != nullptr) {
    ::munmap(base_, mapped_bytes_);
  }
  if (owner_) {
    Unlink(name_);
  }
}

void ShmSegment::Unlink(const std::string& name) {
  Result<std::string> normalised = NormaliseName(name);
  if (normalised.ok()) {
    ::shm_unlink(normalised.value().c_str());
  }
}

Result<std::unique_ptr<ShmSegment>> ShmSegment::Create(const std::string& name,
                                                       const Geometry& geometry) {
  Result<std::string> normalised = NormaliseName(name);
  if (!normalised.ok()) {
    return normalised.error();
  }
  if (geometry.lane_count == 0 || geometry.lane_count > kShmMaxLanes) {
    return Error{"shm lane count must be in [1, " + std::to_string(kShmMaxLanes) + "]",
                 0, 0, trace::kErrUnreadable};
  }
  uint64_t lane_words = RoundUpPow2(geometry.lane_words);
  if (lane_words < 2 * kShmMaxRecordWords) {
    lane_words = RoundUpPow2(2 * kShmMaxRecordWords);
  }

  const int fd = ::shm_open(normalised.value().c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  if (fd < 0) {
    const bool exists = errno == EEXIST;
    return Error{"shm_open('" + normalised.value() + "') failed: " +
                     std::string(std::strerror(errno)) +
                     (exists ? " (leftover segment from a crashed publisher? "
                               "remove it from /dev/shm)"
                             : ""),
                 0, 0, trace::kErrUnreadable};
  }

  const Offsets offsets = ComputeOffsets(geometry.lane_count, lane_words,
                                         geometry.symtab_bytes, geometry.manifest_bytes);
  if (::ftruncate(fd, static_cast<off_t>(offsets.total)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    ::shm_unlink(normalised.value().c_str());
    return Error{"ftruncate(shm, " + std::to_string(offsets.total) + ") failed: " + detail,
                 0, 0, trace::kErrUnreadable};
  }
  void* base = ::mmap(nullptr, offsets.total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    ::shm_unlink(normalised.value().c_str());
    return Error{"mmap(shm) failed: " + std::string(std::strerror(errno)), 0, 0,
                 trace::kErrUnreadable};
  }

  auto segment = std::unique_ptr<ShmSegment>(new ShmSegment());
  segment->name_ = normalised.value();
  segment->base_ = static_cast<uint8_t*>(base);
  segment->mapped_bytes_ = offsets.total;
  segment->owner_ = true;
  segment->symtab_offset_ = offsets.symtab;
  segment->manifest_offset_ = offsets.manifest;
  segment->lanes_offset_ = offsets.lanes;
  segment->words_offset_ = offsets.words;

  // The mapping is zero-filled; placement-new gives the header (and its
  // atomics) defined values, then the geometry fields are filled in before
  // any other process can observe state != kInitialising.
  ShmHeader* header = new (base) ShmHeader();
  std::memcpy(header->magic, kShmMagic, sizeof(kShmMagic));
  header->version = kShmVersion;
  header->lane_count = geometry.lane_count;
  header->lane_words = lane_words;
  header->symtab_bytes = geometry.symtab_bytes;
  header->manifest_bytes = geometry.manifest_bytes;
  segment->header_ = header;
  for (uint32_t lane = 0; lane < geometry.lane_count; lane++) {
    new (segment->base_ + offsets.lanes + lane * sizeof(LaneControl)) LaneControl();
  }
  return segment;
}

Result<std::unique_ptr<ShmSegment>> ShmSegment::OpenExisting(const std::string& name) {
  Result<std::string> normalised = NormaliseName(name);
  if (!normalised.ok()) {
    return normalised.error();
  }
  const int fd = ::shm_open(normalised.value().c_str(), O_RDWR, 0);
  if (fd < 0) {
    return Error{"shm_open('" + normalised.value() + "') failed: " +
                     std::string(std::strerror(errno)),
                 0, 0, trace::kErrUnreadable};
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return Error{"fstat(shm) failed: " + detail, 0, 0, trace::kErrUnreadable};
  }
  if (static_cast<size_t>(st.st_size) < sizeof(ShmHeader)) {
    ::close(fd);
    return Error{"shm segment '" + normalised.value() +
                     "' is smaller than its header (creator still initialising?)",
                 0, 0, trace::kErrCorrupt};
  }
  void* base =
      ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return Error{"mmap(shm) failed: " + std::string(std::strerror(errno)), 0, 0,
                 trace::kErrUnreadable};
  }

  auto segment = std::unique_ptr<ShmSegment>(new ShmSegment());
  segment->name_ = normalised.value();
  segment->base_ = static_cast<uint8_t*>(base);
  segment->mapped_bytes_ = static_cast<size_t>(st.st_size);
  segment->header_ = reinterpret_cast<ShmHeader*>(base);
  segment->owner_ = false;
  // Offsets stay zero until ValidateGeometry() — the header's geometry
  // fields are only stable once state is kLive.
  return segment;
}

Status ShmSegment::ValidateGeometry() {
  const ShmHeader& header = *header_;
  if (std::memcmp(header.magic, kShmMagic, sizeof(kShmMagic)) != 0) {
    return Error{"shm segment '" + name_ + "': bad magic (not a TESLA shm segment)", 0, 0,
                 trace::kErrCorrupt};
  }
  if (header.version != kShmVersion) {
    return Error{"shm segment '" + name_ + "' is format v" + std::to_string(header.version) +
                     "; this build speaks v" + std::to_string(kShmVersion),
                 0, 0, trace::kErrVersionMismatch};
  }
  if (header.lane_count == 0 || header.lane_count > kShmMaxLanes) {
    return Error{"shm segment '" + name_ + "': invalid lane count " +
                     std::to_string(header.lane_count),
                 0, 0, trace::kErrCorrupt};
  }
  if (header.lane_words < 2 * kShmMaxRecordWords ||
      (header.lane_words & (header.lane_words - 1)) != 0) {
    return Error{"shm segment '" + name_ + "': invalid lane size " +
                     std::to_string(header.lane_words) + " words",
                 0, 0, trace::kErrCorrupt};
  }
  const Offsets offsets =
      ComputeOffsets(header.lane_count, header.lane_words,
                     static_cast<size_t>(header.symtab_bytes),
                     static_cast<size_t>(header.manifest_bytes));
  if (offsets.total > mapped_bytes_ || offsets.manifest < offsets.symtab ||
      offsets.words < offsets.lanes) {
    return Error{"shm segment '" + name_ + "': geometry exceeds the mapped " +
                     std::to_string(mapped_bytes_) + " bytes",
                 0, 0, trace::kErrCorrupt};
  }
  symtab_offset_ = offsets.symtab;
  manifest_offset_ = offsets.manifest;
  lanes_offset_ = offsets.lanes;
  words_offset_ = offsets.words;
  return Status::Ok();
}

LaneControl* ShmSegment::lane_control(uint32_t lane) {
  return reinterpret_cast<LaneControl*>(base_ + lanes_offset_ + lane * sizeof(LaneControl));
}

std::atomic<uint64_t>* ShmSegment::lane_words(uint32_t lane) {
  return reinterpret_cast<std::atomic<uint64_t>*>(
      base_ + words_offset_ +
      static_cast<size_t>(lane) * static_cast<size_t>(header_->lane_words) * 8);
}

}  // namespace tesla::ipc
