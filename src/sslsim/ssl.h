// sslsim/ssl: a miniature libssl.
//
// Reproduces the handshake slice around OpenSSL 0.9.8's
// ssl3_get_key_exchange, including the historical incorrect tri-state check
// (CVE-2008-5077 class): `if (!EVP_VerifyFinal(...))` treats the exceptional
// −1 result as success. The bug ships enabled (as it did historically); a
// fixed client can opt out via SslConfig::correct_verify_check.
#ifndef TESLA_SSLSIM_SSL_H_
#define TESLA_SSLSIM_SSL_H_

#include <cstdint>
#include <string>

#include "sslsim/crypto.h"

namespace tesla::sslsim {

// The "network": what a server presents during the handshake.
struct ServerHello {
  EvpKey server_key;
  Signature key_exchange_signature;
  uint64_t key_exchange_params = 0;  // the signed blob
  std::string document;              // returned after the handshake
};

// A server endpoint; Connect() produces its hello.
class Server {
 public:
  // An honest server signs its key-exchange parameters correctly.
  static Server Honest(uint64_t secret, std::string document);
  // The paper's malicious s_server: forges an ASN.1 tag inside the DSA
  // signature so verification fails *exceptionally* (−1, not 0).
  static Server Malicious(uint64_t secret, std::string document);

  ServerHello Hello() const { return hello_; }

 private:
  ServerHello hello_;
};

struct Ssl {
  const Server* peer = nullptr;
  ServerHello hello;
  bool connected = false;
  int64_t last_verify_result = -2;  // for tests/introspection
};

struct SslConfig {
  // false (default): the historical buggy check `if (!verify)`.
  // true: the fixed check `if (verify != 1)`.
  bool correct_verify_check = false;
};

// Handshake message processing: fetches the server's key exchange and
// verifies its signature. Returns 1 on (apparent) success, 0 on failure —
// with the buggy check, an exceptional −1 from EVP_VerifyFinal is treated as
// success. Instrumented callee-side.
int64_t ssl3_get_key_exchange(const SslInstrumentation& instr, const SslConfig& config,
                              Ssl* ssl);

// The application-facing connect; drives ssl3_get_key_exchange.
int64_t SSL_connect(const SslInstrumentation& instr, const SslConfig& config, Ssl* ssl);

// Reads the document over the (apparently) established connection.
int64_t SSL_read(const SslInstrumentation& instr, Ssl* ssl, std::string* out);

}  // namespace tesla::sslsim

#endif  // TESLA_SSLSIM_SSL_H_
