// sslsim/fetch: a miniature libfetch client.
//
// The outermost library of §3.5.1's three-layer stack: libfetch uses libssl,
// which uses libcrypto. The TESLA assertion (fig. 6) is written *here*, in
// the client, yet drives instrumentation across the libssl/libcrypto API
// boundary:
//
//   TESLA_WITHIN(main, previously(
//       EVP_VerifyFinal(ANY(ptr), ANY(ptr), ANY(int), ANY(ptr)) == 1));
#ifndef TESLA_SSLSIM_FETCH_H_
#define TESLA_SSLSIM_FETCH_H_

#include <string>

#include "automata/manifest.h"
#include "sslsim/ssl.h"
#include "support/result.h"

namespace tesla::sslsim {

// The fig. 6 assertion, compiled; register this with the runtime driving a
// FetchClient.
Result<automata::Manifest> FetchAssertions();

// Name of the fig. 6 automaton within FetchAssertions().
inline constexpr const char* kVerifyAssertionName = "fetch.verify";

struct FetchResult {
  bool ok = false;
  std::string document;
  int64_t verify_result = -2;  // EVP_VerifyFinal's tri-state, for inspection
};

class FetchClient {
 public:
  FetchClient(SslInstrumentation instr, SslConfig config) : instr_(instr), config_(config) {}

  // Retrieves a document from `server`; the whole retrieval runs within the
  // client's `main` bound, with the fig. 6 assertion site after the TLS
  // handshake (certificate/key-exchange verification must have succeeded by
  // the time application data flows).
  FetchResult FetchDocument(const Server& server);

 private:
  SslInstrumentation instr_;
  SslConfig config_;
};

}  // namespace tesla::sslsim

#endif  // TESLA_SSLSIM_FETCH_H_
