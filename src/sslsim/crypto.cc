#include "sslsim/crypto.h"

#include "runtime/scope.h"
#include "support/hash.h"

namespace tesla::sslsim {
namespace {

uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>((static_cast<__uint128_t>(a) * b) % m);
}

uint64_t PowMod(uint64_t base, uint64_t exponent, uint64_t modulus) {
  uint64_t result = 1;
  base %= modulus;
  while (exponent != 0) {
    if (exponent & 1) {
      result = MulMod(result, base, modulus);
    }
    base = MulMod(base, base, modulus);
    exponent >>= 1;
  }
  return result;
}

Symbol VerifySymbol() {
  static Symbol symbol = InternString("EVP_VerifyFinal");
  return symbol;
}

}  // namespace

void EvpMdCtx::Update(const void* data, size_t size) {
  digest = FnvHashBytes(static_cast<const char*>(data), size, digest ^ kFnvOffsetBasis);
}

EvpKey EvpGenerateKey(uint64_t secret) {
  EvpKey key;
  key.public_key = PowMod(key.generator, secret, key.modulus);
  return key;
}

Signature EvpSign(const EvpKey& key, uint64_t secret, uint64_t digest) {
  // A toy discrete-log signature: r = g^digest, s = r^secret. Verification
  // checks s == r^x via the public key relation s == PowMod(r, secret).
  Signature signature;
  signature.r.tag = Asn1Tag::kInteger;
  signature.r.value = PowMod(key.generator, digest | 1, key.modulus);
  signature.s.tag = Asn1Tag::kInteger;
  signature.s.value = PowMod(signature.r.value, secret, key.modulus);
  return signature;
}

int64_t EVP_VerifyFinal(const SslInstrumentation& instr, EvpMdCtx* ctx,
                        const Signature* signature, int64_t sig_len, const EvpKey* pkey) {
  runtime::FunctionScope scope(instr.rt, instr.ctx, VerifySymbol(),
                               {reinterpret_cast<int64_t>(ctx),
                                reinterpret_cast<int64_t>(signature), sig_len,
                                reinterpret_cast<int64_t>(pkey)});
  if (ctx == nullptr || signature == nullptr || pkey == nullptr || sig_len <= 0) {
    return scope.Return(int64_t{-1});
  }
  // ASN.1 structure check: both signature halves must be INTEGERs. A forged
  // tag is an *exceptional* failure — the tri-state −1 that CVE-2008-5077's
  // callers conflated with success.
  if (signature->r.tag != Asn1Tag::kInteger || signature->s.tag != Asn1Tag::kInteger) {
    return scope.Return(int64_t{-1});
  }
  // The actual verification equation. We cannot recompute r^x without the
  // secret, but the signer's s equals r^x, and public_key = g^x, so checking
  // g^(digest|1)·x == s reduces to comparing PowMod(public_key, digest|1)
  // with s (both equal g^(x·(digest|1))).
  uint64_t expected = PowMod(pkey->public_key, ctx->digest | 1, pkey->modulus);
  bool ok = expected == signature->s.value &&
            signature->r.value == PowMod(pkey->generator, ctx->digest | 1, pkey->modulus);
  return scope.Return(int64_t{ok ? 1 : 0});
}

}  // namespace tesla::sslsim
