#include "sslsim/fetch.h"

#include "automata/lower.h"
#include "runtime/scope.h"

namespace tesla::sslsim {
namespace {

Symbol MainSymbol() {
  static Symbol symbol = InternString("main");
  return symbol;
}

}  // namespace

Result<automata::Manifest> FetchAssertions() {
  automata::Manifest manifest;
  auto automaton = automata::CompileAssertion(
      "TESLA_WITHIN(main, previously("
      "EVP_VerifyFinal(ANY(ptr), ANY(ptr), ANY(int), ANY(ptr)) == 1))",
      {}, kVerifyAssertionName);
  if (!automaton.ok()) {
    return automaton.error();
  }
  manifest.Add(std::move(automaton.value()));
  return manifest;
}

FetchResult FetchClient::FetchDocument(const Server& server) {
  // The client's main execution: the fig. 6 temporal bound.
  runtime::FunctionScope main_scope(instr_.rt, instr_.ctx, MainSymbol(), {});

  FetchResult result;
  Ssl ssl;
  ssl.peer = &server;

  if (SSL_connect(instr_, config_, &ssl) != 1) {
    result.verify_result = ssl.last_verify_result;
    return result;  // handshake visibly failed; nothing was fetched
  }
  result.verify_result = ssl.last_verify_result;

  // Application data is about to flow: by now a key-exchange signature must
  // have verified *successfully* (fig. 6's assertion site).
  if (instr_.rt != nullptr) {
    int id = instr_.rt->FindAutomaton(kVerifyAssertionName);
    if (id >= 0) {
      instr_.rt->OnEvent(*instr_.ctx, runtime::Event::Site(static_cast<uint32_t>(id), {}));
    }
  }

  int64_t got = SSL_read(instr_, &ssl, &result.document);
  result.ok = got >= 0;
  return result;
}

}  // namespace tesla::sslsim
