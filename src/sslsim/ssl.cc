#include "sslsim/ssl.h"

#include "runtime/scope.h"

namespace tesla::sslsim {
namespace {

Symbol KeyExchangeSymbol() {
  static Symbol symbol = InternString("ssl3_get_key_exchange");
  return symbol;
}
Symbol ConnectSymbol() {
  static Symbol symbol = InternString("SSL_connect");
  return symbol;
}
Symbol ReadSymbol() {
  static Symbol symbol = InternString("SSL_read");
  return symbol;
}

}  // namespace

Server Server::Honest(uint64_t secret, std::string document) {
  Server server;
  server.hello_.server_key = EvpGenerateKey(secret);
  server.hello_.key_exchange_params = 0xd00dfeed;
  EvpMdCtx digest;
  digest.Update(&server.hello_.key_exchange_params,
                sizeof(server.hello_.key_exchange_params));
  server.hello_.key_exchange_signature =
      EvpSign(server.hello_.server_key, secret, digest.digest);
  server.hello_.document = std::move(document);
  return server;
}

Server Server::Malicious(uint64_t secret, std::string document) {
  Server server = Honest(secret, std::move(document));
  // Forge the ASN.1 tag of `s`: the verifier now fails with −1 rather than 0,
  // landing in the code path that buggy callers conflate with success.
  server.hello_.key_exchange_signature.s.tag = Asn1Tag::kBitString;
  return server;
}

int64_t ssl3_get_key_exchange(const SslInstrumentation& instr, const SslConfig& config,
                              Ssl* ssl) {
  runtime::FunctionScope scope(instr.rt, instr.ctx, KeyExchangeSymbol(),
                               {reinterpret_cast<int64_t>(ssl)});
  ssl->hello = ssl->peer->Hello();

  EvpMdCtx digest;
  digest.Update(&ssl->hello.key_exchange_params, sizeof(ssl->hello.key_exchange_params));

  int64_t verify = EVP_VerifyFinal(instr, &digest, &ssl->hello.key_exchange_signature,
                                   static_cast<int64_t>(sizeof(Signature)),
                                   &ssl->hello.server_key);
  ssl->last_verify_result = verify;

  if (config.correct_verify_check) {
    // The post-CVE-2008-5077 form: only 1 is success.
    if (verify != 1) {
      return scope.Return(int64_t{0});
    }
  } else {
    // The historical bug: `if (!EVP_VerifyFinal(...))` — 0 fails, but the
    // exceptional −1 sails through as success.
    if (verify == 0) {
      return scope.Return(int64_t{0});
    }
  }
  return scope.Return(int64_t{1});
}

int64_t SSL_connect(const SslInstrumentation& instr, const SslConfig& config, Ssl* ssl) {
  runtime::FunctionScope scope(instr.rt, instr.ctx, ConnectSymbol(),
                               {reinterpret_cast<int64_t>(ssl)});
  if (ssl->peer == nullptr) {
    return scope.Return(int64_t{0});
  }
  if (ssl3_get_key_exchange(instr, config, ssl) != 1) {
    return scope.Return(int64_t{0});
  }
  ssl->connected = true;
  return scope.Return(int64_t{1});
}

int64_t SSL_read(const SslInstrumentation& instr, Ssl* ssl, std::string* out) {
  runtime::FunctionScope scope(instr.rt, instr.ctx, ReadSymbol(),
                               {reinterpret_cast<int64_t>(ssl)});
  if (!ssl->connected) {
    return scope.Return(int64_t{-1});
  }
  *out = ssl->hello.document;
  return scope.Return(static_cast<int64_t>(out->size()));
}

}  // namespace tesla::sslsim
