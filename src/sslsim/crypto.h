// sslsim/crypto: a miniature libcrypto.
//
// Models the slice of OpenSSL's EVP layer that the paper's §3.5.1 use case
// exercises: signature verification with a *tri-state* result — 1 (verified),
// 0 (bad signature), −1 (exceptional failure, e.g. a malformed ASN.1
// structure). CVE-2008-5077 existed because callers conflated −1 with
// success.
#ifndef TESLA_SSLSIM_CRYPTO_H_
#define TESLA_SSLSIM_CRYPTO_H_

#include <cstdint>
#include <vector>

#include "runtime/runtime.h"

namespace tesla::sslsim {

// ASN.1 universal tags (the subset we parse).
enum class Asn1Tag : uint8_t {
  kInteger = 0x02,
  kBitString = 0x03,
  kSequence = 0x30,
};

// A DSA-like signature: SEQUENCE { INTEGER r, INTEGER s }. The malicious
// server forges the tag of one integer (paper §3.5.1: "forging an ASN.1 tag
// inside a DSA signature so that one of two large integers claimed to have
// the BIT STRING type rather than INTEGER").
struct Asn1Element {
  Asn1Tag tag = Asn1Tag::kInteger;
  uint64_t value = 0;
};

struct Signature {
  Asn1Element r;
  Asn1Element s;
};

struct EvpKey {
  uint64_t modulus = 0xffffffffffffffc5ull;  // a 64-bit prime
  uint64_t generator = 5;
  uint64_t public_key = 0;  // g^x mod p
};

struct EvpMdCtx {
  uint64_t digest = 0;

  void Update(const void* data, size_t size);
};

// Instrumentation context shared by the three library layers: the TESLA
// runtime plus the event-serialisation context of the calling thread. Null
// runtime → uninstrumented build.
struct SslInstrumentation {
  runtime::Runtime* rt = nullptr;
  runtime::ThreadContext* ctx = nullptr;
};

// Key generation / signing (used by the simulated server).
EvpKey EvpGenerateKey(uint64_t secret);
Signature EvpSign(const EvpKey& key, uint64_t secret, uint64_t digest);

// Verifies `signature` over `ctx`'s accumulated digest.
// Returns 1 on success, 0 when the signature does not verify, and −1 on an
// exceptional failure (malformed ASN.1: a non-INTEGER tag inside the
// signature). Instrumented callee-side when `instr.rt` is set.
int64_t EVP_VerifyFinal(const SslInstrumentation& instr, EvpMdCtx* ctx,
                        const Signature* signature, int64_t sig_len, const EvpKey* pkey);

}  // namespace tesla::sslsim

#endif  // TESLA_SSLSIM_CRYPTO_H_
