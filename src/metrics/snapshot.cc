#include "metrics/snapshot.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace tesla::metrics {
namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buf, static_cast<size_t>(n) < sizeof(buf) ? static_cast<size_t>(n)
                                                          : sizeof(buf) - 1);
  }
}

// JSON string escaping (control characters, quote, backslash).
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendF(out, "\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Prometheus label-value escaping: backslash, double-quote and newline.
void AppendPromLabel(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string ToJson(const Snapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  AppendF(&out, "{\n  \"mode\": \"%s\",\n  \"stats\": {", MetricsModeName(snapshot.mode));
  bool first = true;
#define TESLA_STATS_JSON(name, desc, replay)                                    \
  AppendF(&out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",", #name,    \
          snapshot.stats.name);                                         \
  first = false;
  TESLA_RUNTIME_STATS(TESLA_STATS_JSON)
#undef TESLA_STATS_JSON
  out.append("\n  },");
  if (!snapshot.queue_producers.empty() || !snapshot.queue_consumers.empty()) {
    out.append("\n  \"queue\": {\n    \"producers\": [");
    for (size_t p = 0; p < snapshot.queue_producers.size(); p++) {
      const QueueProducerSnapshot& producer = snapshot.queue_producers[p];
      AppendF(&out,
              "%s\n      {\"enqueued\": %" PRIu64 ", \"dropped\": %" PRIu64
              ", \"rejected\": %" PRIu64 ", \"blocked_spins\": %" PRIu64 "}",
              p == 0 ? "" : ",", producer.enqueued, producer.dropped,
              producer.rejected, producer.blocked_spins);
    }
    out.append(snapshot.queue_producers.empty() ? "],\n    \"consumers\": ["
                                                : "\n    ],\n    \"consumers\": [");
    for (size_t c = 0; c < snapshot.queue_consumers.size(); c++) {
      const QueueConsumerSnapshot& consumer = snapshot.queue_consumers[c];
      AppendF(&out,
              "%s\n      {\"batches\": %" PRIu64 ", \"events\": %" PRIu64
              ", \"forwards_in\": %" PRIu64 ", \"forwards_out\": %" PRIu64
              ", \"steals\": %" PRIu64 ", \"busy_ns\": %" PRIu64 "}",
              c == 0 ? "" : ",", consumer.batches, consumer.events,
              consumer.forwards_in, consumer.forwards_out, consumer.steals,
              consumer.busy_ns);
    }
    out.append(snapshot.queue_consumers.empty() ? "]\n  }," : "\n    ]\n  },");
  }
  out.append("\n  \"classes\": [");
  for (size_t c = 0; c < snapshot.classes.size(); c++) {
    const ClassSnapshot& cls = snapshot.classes[c];
    AppendF(&out, "%s\n    {\"name\": ", c == 0 ? "" : ",");
    AppendJsonString(&out, cls.name);
    out.append(", \"counters\": {");
    for (size_t k = 0; k < kClassCounterCount; k++) {
      AppendF(&out, "%s\"%s\": %" PRIu64, k == 0 ? "" : ", ", kClassCounterNames[k],
              cls.counters[k]);
    }
    AppendF(&out, "},\n     \"coverage\": {\"total\": %zu, \"fired\": %zu, \"transitions\": [",
            cls.transitions.size(), cls.CoveredTransitions());
    for (size_t t = 0; t < cls.transitions.size(); t++) {
      const TransitionCoverage& tc = cls.transitions[t];
      AppendF(&out, "%s\n       {\"state\": %u, \"symbol\": %u, \"fired\": %s, \"description\": ",
              t == 0 ? "" : ",", tc.state, tc.symbol, tc.fired ? "true" : "false");
      AppendJsonString(&out, tc.description);
      out.push_back('}');
    }
    out.append(cls.transitions.empty() ? "]}}" : "\n     ]}}");
  }
  out.append(snapshot.classes.empty() ? "],\n" : "\n  ],\n");
  out.append("  \"histograms\": {");
  if (snapshot.mode == MetricsMode::kFull) {
    for (size_t kind = 0; kind < kEventKinds; kind++) {
      const HistogramData& hist = snapshot.histograms[kind];
      AppendF(&out, "%s\n    \"%s\": {\"count\": %" PRIu64 ", \"sum_ns\": %" PRIu64
                    ", \"buckets\": [",
              kind == 0 ? "" : ",", kEventKindNames[kind], hist.count, hist.sum_ns);
      bool first_bucket = true;
      for (size_t bucket = 0; bucket < kHistogramBuckets; bucket++) {
        if (hist.buckets[bucket] == 0) {
          continue;
        }
        AppendF(&out, "%s[%" PRIu64 ", %" PRIu64 "]", first_bucket ? "" : ", ",
                BucketUpperNs(bucket), hist.buckets[bucket]);
        first_bucket = false;
      }
      out.append("]}");
    }
    out.append("\n  }\n}\n");
  } else {
    out.append("}\n}\n");
  }
  return out;
}

std::string ToPrometheus(const Snapshot& snapshot) {
  std::string out;
  out.reserve(4096);

  // Global counters: one family per RuntimeStats field.
#define TESLA_STATS_PROM(name, desc, replay)                                       \
  AppendF(&out,                                                            \
          "# HELP tesla_%s_total %s\n# TYPE tesla_%s_total counter\n"      \
          "tesla_%s_total %" PRIu64 "\n",                                  \
          #name, desc, #name, #name, snapshot.stats.name);
  TESLA_RUNTIME_STATS(TESLA_STATS_PROM)
#undef TESLA_STATS_PROM

  // Async-queue accounting, labelled by producer/consumer index. Families
  // are emitted only when a queue augmenter filled the vectors, so a
  // queue-less runtime's exposition is unchanged.
  if (!snapshot.queue_producers.empty()) {
    static constexpr struct {
      const char* name;
      const char* help;
      uint64_t QueueProducerSnapshot::*field;
    } kProducerSeries[] = {
        {"enqueued", "events accepted into the producer's ring",
         &QueueProducerSnapshot::enqueued},
        {"dropped", "events dropped at enqueue (OnFull::kDrop policy)",
         &QueueProducerSnapshot::dropped},
        {"rejected", "events rejected while the queue was not running",
         &QueueProducerSnapshot::rejected},
        {"blocked_spins", "full-ring wait iterations (OnFull::kBlock backpressure)",
         &QueueProducerSnapshot::blocked_spins},
    };
    for (const auto& series : kProducerSeries) {
      AppendF(&out,
              "# HELP tesla_queue_producer_%s_total %s\n"
              "# TYPE tesla_queue_producer_%s_total counter\n",
              series.name, series.help, series.name);
      for (size_t p = 0; p < snapshot.queue_producers.size(); p++) {
        AppendF(&out, "tesla_queue_producer_%s_total{producer=\"%zu\"} %" PRIu64 "\n",
                series.name, p, snapshot.queue_producers[p].*series.field);
      }
    }
  }
  if (!snapshot.queue_consumers.empty()) {
    static constexpr struct {
      const char* name;
      const char* help;
      uint64_t QueueConsumerSnapshot::*field;
    } kConsumerSeries[] = {
        {"batches", "OnEvents batches dispatched by the consumer",
         &QueueConsumerSnapshot::batches},
        {"events", "records dispatched by the consumer (context stage)",
         &QueueConsumerSnapshot::events},
        {"forwards_in", "forwarded records dispatched (shard stage)",
         &QueueConsumerSnapshot::forwards_in},
        {"forwards_out", "records forwarded to other consumers",
         &QueueConsumerSnapshot::forwards_out},
        {"steals", "batches stolen from other consumers' producers",
         &QueueConsumerSnapshot::steals},
    };
    for (const auto& series : kConsumerSeries) {
      AppendF(&out,
              "# HELP tesla_queue_consumer_%s_total %s\n"
              "# TYPE tesla_queue_consumer_%s_total counter\n",
              series.name, series.help, series.name);
      for (size_t c = 0; c < snapshot.queue_consumers.size(); c++) {
        AppendF(&out, "tesla_queue_consumer_%s_total{consumer=\"%zu\"} %" PRIu64 "\n",
                series.name, c, snapshot.queue_consumers[c].*series.field);
      }
    }
    out.append(
        "# HELP tesla_queue_consumer_busy_seconds_total thread-CPU time spent dispatching\n"
        "# TYPE tesla_queue_consumer_busy_seconds_total counter\n");
    for (size_t c = 0; c < snapshot.queue_consumers.size(); c++) {
      AppendF(&out, "tesla_queue_consumer_busy_seconds_total{consumer=\"%zu\"} %.9f\n",
              c, static_cast<double>(snapshot.queue_consumers[c].busy_ns) / 1e9);
    }
  }

  // Per-class counters, labelled by automaton name.
  for (size_t k = 0; k < kClassCounterCount; k++) {
    AppendF(&out, "# HELP tesla_class_%s_total %s\n# TYPE tesla_class_%s_total counter\n",
            kClassCounterNames[k], kClassCounterHelp[k], kClassCounterNames[k]);
    for (const ClassSnapshot& cls : snapshot.classes) {
      AppendF(&out, "tesla_class_%s_total{automaton=\"", kClassCounterNames[k]);
      AppendPromLabel(&out, cls.name);
      AppendF(&out, "\"} %" PRIu64 "\n", cls.counters[k]);
    }
  }

  // Transition coverage: static total and fired count per class. Gauges —
  // fired can move back to zero across a ResetStats().
  out.append(
      "# HELP tesla_coverage_transitions statically-valid automaton transitions\n"
      "# TYPE tesla_coverage_transitions gauge\n");
  for (const ClassSnapshot& cls : snapshot.classes) {
    out.append("tesla_coverage_transitions{automaton=\"");
    AppendPromLabel(&out, cls.name);
    AppendF(&out, "\"} %zu\n", cls.transitions.size());
  }
  out.append(
      "# HELP tesla_coverage_transitions_fired transitions observed at least once\n"
      "# TYPE tesla_coverage_transitions_fired gauge\n");
  for (const ClassSnapshot& cls : snapshot.classes) {
    out.append("tesla_coverage_transitions_fired{automaton=\"");
    AppendPromLabel(&out, cls.name);
    AppendF(&out, "\"} %zu\n", cls.CoveredTransitions());
  }

  // Dispatch-latency histograms, Prometheus histogram convention: cumulative
  // le buckets, then _sum and _count. Only present when histograms ran.
  if (snapshot.mode == MetricsMode::kFull) {
    out.append(
        "# HELP tesla_dispatch_latency_ns event dispatch latency, nanoseconds\n"
        "# TYPE tesla_dispatch_latency_ns histogram\n");
    for (size_t kind = 0; kind < kEventKinds; kind++) {
      const HistogramData& hist = snapshot.histograms[kind];
      size_t top = 0;
      for (size_t bucket = 0; bucket < kHistogramBuckets; bucket++) {
        if (hist.buckets[bucket] != 0) {
          top = bucket;
        }
      }
      uint64_t cumulative = 0;
      for (size_t bucket = 0; bucket <= top; bucket++) {
        cumulative += hist.buckets[bucket];
        AppendF(&out,
                "tesla_dispatch_latency_ns_bucket{kind=\"%s\",le=\"%" PRIu64
                "\"} %" PRIu64 "\n",
                kEventKindNames[kind], BucketUpperNs(bucket), cumulative);
      }
      AppendF(&out,
              "tesla_dispatch_latency_ns_bucket{kind=\"%s\",le=\"+Inf\"} %" PRIu64 "\n",
              kEventKindNames[kind], hist.count);
      AppendF(&out, "tesla_dispatch_latency_ns_sum{kind=\"%s\"} %" PRIu64 "\n",
              kEventKindNames[kind], hist.sum_ns);
      AppendF(&out, "tesla_dispatch_latency_ns_count{kind=\"%s\"} %" PRIu64 "\n",
              kEventKindNames[kind], hist.count);
    }
  }
  return out;
}

std::string RenderText(const Snapshot& snapshot) {
  std::string out;
  AppendF(&out, "metrics mode: %s\n", MetricsModeName(snapshot.mode));

  out.append("\nglobal stats:\n");
#define TESLA_STATS_TEXT(name, desc, replay) \
  AppendF(&out, "  %-25s %12" PRIu64 "   %s\n", #name, snapshot.stats.name, desc);
  TESLA_RUNTIME_STATS(TESLA_STATS_TEXT)
#undef TESLA_STATS_TEXT

  if (!snapshot.queue_producers.empty()) {
    out.append("\nqueue producers:\n");
    AppendF(&out, "  %-10s %12s %12s %12s %14s\n", "producer", "enqueued", "dropped",
            "rejected", "blocked_spins");
    for (size_t p = 0; p < snapshot.queue_producers.size(); p++) {
      const QueueProducerSnapshot& producer = snapshot.queue_producers[p];
      AppendF(&out, "  %-10zu %12" PRIu64 " %12" PRIu64 " %12" PRIu64 " %14" PRIu64 "\n",
              p, producer.enqueued, producer.dropped, producer.rejected,
              producer.blocked_spins);
    }
  }
  if (!snapshot.queue_consumers.empty()) {
    out.append("\nqueue consumers:\n");
    AppendF(&out, "  %-10s %10s %10s %12s %13s %8s %12s\n", "consumer", "batches",
            "events", "forwards_in", "forwards_out", "steals", "busy_ms");
    for (size_t c = 0; c < snapshot.queue_consumers.size(); c++) {
      const QueueConsumerSnapshot& consumer = snapshot.queue_consumers[c];
      AppendF(&out,
              "  %-10zu %10" PRIu64 " %10" PRIu64 " %12" PRIu64 " %13" PRIu64
              " %8" PRIu64 " %12.2f\n",
              c, consumer.batches, consumer.events, consumer.forwards_in,
              consumer.forwards_out, consumer.steals,
              static_cast<double>(consumer.busy_ns) / 1e6);
    }
  }

  if (!snapshot.classes.empty()) {
    out.append("\nper-class counters:\n");
    AppendF(&out, "  %-40s", "automaton");
    for (size_t k = 0; k < kClassCounterCount; k++) {
      AppendF(&out, " %12s", kClassCounterNames[k]);
    }
    out.push_back('\n');
    for (const ClassSnapshot& cls : snapshot.classes) {
      AppendF(&out, "  %-40s", cls.name.c_str());
      for (size_t k = 0; k < kClassCounterCount; k++) {
        AppendF(&out, " %12" PRIu64, cls.counters[k]);
      }
      out.push_back('\n');
    }
  }

  if (snapshot.mode == MetricsMode::kFull) {
    out.append("\ndispatch latency (ns, bucket upper bounds):\n");
    AppendF(&out, "  %-16s %12s %10s %10s %10s\n", "event kind", "count", "p50", "p99",
            "max");
    for (size_t kind = 0; kind < kEventKinds; kind++) {
      const HistogramData& hist = snapshot.histograms[kind];
      AppendF(&out, "  %-16s %12" PRIu64 " %10" PRIu64 " %10" PRIu64 " %10" PRIu64 "\n",
              kEventKindNames[kind], hist.count, hist.QuantileNs(0.50),
              hist.QuantileNs(0.99), hist.MaxNs());
    }
  }

  if (!snapshot.classes.empty()) {
    out.append("\ntransition coverage:\n");
    for (const ClassSnapshot& cls : snapshot.classes) {
      AppendF(&out, "  %s: %zu/%zu transitions (%.0f%%)\n", cls.name.c_str(),
              cls.CoveredTransitions(), cls.transitions.size(),
              100.0 * cls.CoverageRatio());
      for (const TransitionCoverage& tc : cls.transitions) {
        AppendF(&out, "    [%s] %s\n", tc.fired ? "x" : " ", tc.description.c_str());
      }
    }
  }
  return out;
}

std::string RenderUncovered(const Snapshot& snapshot) {
  std::string out;
  for (const ClassSnapshot& cls : snapshot.classes) {
    if (cls.transitions.empty() || cls.CoveredTransitions() == cls.transitions.size()) {
      continue;
    }
    AppendF(&out, "%s: %zu uncovered transition(s) — possible dead clauses:\n",
            cls.name.c_str(), cls.transitions.size() - cls.CoveredTransitions());
    for (const TransitionCoverage& tc : cls.transitions) {
      if (!tc.fired) {
        AppendF(&out, "  %s\n", tc.description.c_str());
      }
    }
  }
  return out;
}

}  // namespace tesla::metrics
