// Merged metrics snapshots and their exposition formats.
//
// A Snapshot is the collector's state at one instant, merged across shards
// and joined with the runtime's static automaton structure (class names,
// statically-valid transitions and their descriptions). It is produced by
// Runtime::CollectMetrics(), serialised three ways:
//
//   * ToJson        — machine-readable, embeds everything (the form that
//                     round-trips through the trace-capture footer);
//   * ToPrometheus  — Prometheus text exposition format 0.0.4: HELP/TYPE
//                     headers, counter/gauge families labelled by automaton,
//                     dispatch-latency histograms with cumulative buckets;
//   * RenderText    — the human tables the tesla-trace CLI prints
//                     (per-class counters, p50/p99/max latency, coverage).
//
// Transition coverage is "branch coverage for temporal assertions": every
// statically-valid DFA transition of each class, flagged fired or not. A
// never-fired transition on an OR alternative or TSEQUENCE clause is a dead
// clause — the assertion passes without that path ever being checked.
#ifndef TESLA_METRICS_SNAPSHOT_H_
#define TESLA_METRICS_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/collector.h"
#include "metrics/metrics.h"
#include "runtime/options.h"

namespace tesla::metrics {

struct TransitionCoverage {
  uint32_t state = 0;   // source DFA state
  uint16_t symbol = 0;  // alphabet symbol
  bool fired = false;
  std::string description;  // "NFA:1 --returnfrom check(x) == 0--> NFA:2,4"
};

struct ClassSnapshot {
  std::string name;
  uint64_t counters[kClassCounterCount] = {};
  // Statically-valid transitions in (state, symbol) order.
  std::vector<TransitionCoverage> transitions;

  size_t CoveredTransitions() const {
    size_t fired = 0;
    for (const TransitionCoverage& transition : transitions) {
      fired += transition.fired ? 1 : 0;
    }
    return fired;
  }
  double CoverageRatio() const {
    return transitions.empty()
               ? 0.0
               : static_cast<double>(CoveredTransitions()) / transitions.size();
  }
};

// Async-queue accounting, filled in by the queue's metrics augmenter
// (Runtime::SetMetricsAugmenter) when an EventQueue is attached to the
// runtime; empty vectors mean "no queue" and suppress the queue sections in
// every exposition format. Producer i is the i-th registered producer
// thread; consumer i is drain thread i.
struct QueueProducerSnapshot {
  uint64_t enqueued = 0;       // accepted into the ring
  uint64_t dropped = 0;        // rejected by the OnFull::kDrop policy
  uint64_t rejected = 0;       // Enqueue() while the queue was not running
  uint64_t blocked_spins = 0;  // OnFull::kBlock wait iterations (backpressure)
};

struct QueueConsumerSnapshot {
  uint64_t batches = 0;       // OnEvents batches dispatched
  uint64_t events = 0;        // records dispatched in the context stage
  uint64_t forwards_in = 0;   // forwarded records dispatched (shard stage)
  uint64_t forwards_out = 0;  // records forwarded to other consumers
  uint64_t steals = 0;        // batches stolen from other consumers' producers
  uint64_t busy_ns = 0;       // thread-CPU time spent dispatching
};

struct Snapshot {
  MetricsMode mode = MetricsMode::kOff;
  runtime::RuntimeStats stats;
  std::vector<ClassSnapshot> classes;
  HistogramData histograms[kEventKinds];
  std::vector<QueueProducerSnapshot> queue_producers;
  std::vector<QueueConsumerSnapshot> queue_consumers;
};

std::string ToJson(const Snapshot& snapshot);
std::string ToPrometheus(const Snapshot& snapshot);
std::string RenderText(const Snapshot& snapshot);

// The classes whose coverage is incomplete, with their never-fired
// transitions — the "dead clause" report.
std::string RenderUncovered(const Snapshot& snapshot);

}  // namespace tesla::metrics

#endif  // TESLA_METRICS_SNAPSHOT_H_
