// tesla::metrics — always-on observability for the assertion runtime.
//
// The paper's evaluation (§5, figs. 11–14) is built on numbers the runtime
// should be able to report about itself continuously: how often each
// automaton class fires, what each event costs, and which temporal clauses
// are ever exercised. This module supplies the vocabulary shared by the
// collector (hot-path recording), the snapshot (merge + exposition) and the
// runtime options: the recording mode, the per-class counter schema, and the
// log-bucketed latency histogram layout.
//
// Design lineage: Fay's low-overhead aggregated probes (counters merged at
// read time, never a lock on the write path) and Dapper's always-on
// production tracing. Everything here is written by exactly one thread per
// shard with relaxed atomics and merged only when a snapshot is taken.
#ifndef TESLA_METRICS_METRICS_H_
#define TESLA_METRICS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tesla::metrics {

// How much the runtime records on the OnEvent hot path (mirrors
// trace::TraceMode's off/flight-recorder/full-capture ladder).
enum class MetricsMode : uint8_t {
  kOff = 0,       // no collector; zero bytes, zero cycles
  kCounters = 1,  // per-class counters + transition-coverage bitmap (~ns/event)
  kFull = 2,      // counters + per-event-kind dispatch-latency histograms
};

const char* MetricsModeName(MetricsMode mode);

// The per-automaton-class counter schema. One X-macro is the single source
// of truth for the enum, the merge loops and both exposition formats — a
// counter added here appears everywhere or nowhere.
#define TESLA_CLASS_COUNTERS(X)                                              \
  X(instances_created, "automaton instances created ((*) activations)")      \
  X(instances_cloned, "instances cloned by binding events")                  \
  X(transitions, "automaton transitions taken")                              \
  X(accepts, "instances accepted at bound cleanup")                          \
  X(violations, "violations reported against this class")                    \
  X(index_probes, "dispatches answered by one index-bucket probe")           \
  X(index_scans, "indexed dispatches falling back to a full scan")

enum class ClassCounter : uint8_t {
#define TESLA_METRICS_ENUM(name, desc) name,
  TESLA_CLASS_COUNTERS(TESLA_METRICS_ENUM)
#undef TESLA_METRICS_ENUM
};

inline constexpr size_t kClassCounterCount = 0
#define TESLA_METRICS_COUNT(name, desc) +1
    TESLA_CLASS_COUNTERS(TESLA_METRICS_COUNT)
#undef TESLA_METRICS_COUNT
    ;

inline constexpr const char* kClassCounterNames[kClassCounterCount] = {
#define TESLA_METRICS_NAME(name, desc) #name,
    TESLA_CLASS_COUNTERS(TESLA_METRICS_NAME)
#undef TESLA_METRICS_NAME
};

inline constexpr const char* kClassCounterHelp[kClassCounterCount] = {
#define TESLA_METRICS_HELP(name, desc) desc,
    TESLA_CLASS_COUNTERS(TESLA_METRICS_HELP)
#undef TESLA_METRICS_HELP
};

// Dispatch-latency histograms: HDR-style power-of-2 buckets. A sample of `ns`
// nanoseconds lands in bucket floor(log2(ns)) (bucket 0 holds 0–1 ns), so 64
// buckets cover every uint64 duration with ≤2x relative error — enough for
// p50/p99/max summaries without per-sample storage.
inline constexpr size_t kHistogramBuckets = 64;

inline constexpr size_t BucketFor(uint64_t ns) {
  return ns == 0 ? 0 : 64 - static_cast<size_t>(__builtin_clzll(ns)) - 1;
}

// Upper bound (inclusive) of a bucket, for exposition ("le" labels).
inline constexpr uint64_t BucketUpperNs(size_t bucket) {
  return bucket >= 63 ? UINT64_MAX : (uint64_t{2} << bucket) - 1;
}

// Histograms are kept per event kind so a slow class of event (assertion
// sites stepping many instances) cannot hide behind cheap ones.
inline constexpr size_t kEventKinds = 4;  // runtime::EventKind values
inline constexpr const char* kEventKindNames[kEventKinds] = {
    "call", "return", "field_store", "assertion_site"};

}  // namespace tesla::metrics

#endif  // TESLA_METRICS_METRICS_H_
