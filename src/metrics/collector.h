// The metrics collector: sharded hot-path recording, merge-on-snapshot.
//
// One Collector per Runtime (when RuntimeOptions::metrics_mode is not off).
// Every event-serialisation context registers a Shard and writes its own
// counters and histograms through it; shards outlive their contexts (the
// Collector owns them), so short-lived simulated threads still contribute to
// the merged totals. A shard has exactly one writer at a time — per-thread
// contexts are single-threaded by contract, and the runtime's global shard
// contexts are serialised by their shard lock — so the write path is a
// relaxed atomic load + store pair (no RMW, no fence, no lock), and the
// merger's concurrent relaxed loads see word-consistent monotone values.
//
// The transition-coverage bitmap is collector-global rather than sharded:
// bits are idempotent, and the stamp checks before setting, so after warmup
// the hot path pays one load per transition. The layout (one dense bit per
// statically-valid DFA transition, per class) is installed at plan-compile
// time; see Runtime::CompilePlan().
//
// Late registration: a shard sizes its counter block for the classes known
// when it was created. If automata are registered afterwards, the runtime
// re-registers the context's shard (the stale block stays behind and is
// still merged); bumps that race the transition spill into a central,
// lock-guarded table so nothing is ever dropped.
#ifndef TESLA_METRICS_COLLECTOR_H_
#define TESLA_METRICS_COLLECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "metrics/metrics.h"
#include "support/spinlock.h"

namespace tesla::metrics {

// Merged view of one dispatch-latency histogram (also the exposition form).
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  uint64_t buckets[kHistogramBuckets] = {};

  // Bucket-resolution quantile: the upper bound of the bucket holding the
  // q-th sample (0 when empty). Power-of-2 buckets give ≤2x relative error.
  uint64_t QuantileNs(double q) const;
  // Upper bound of the highest occupied bucket (0 when empty).
  uint64_t MaxNs() const;
};

// One context's recording block. Created by Collector::RegisterShard and
// owned by the Collector for its whole lifetime.
class Shard {
 public:
  Shard(size_t class_capacity, bool histograms);

  size_t class_capacity() const { return class_capacity_; }

  // Single-writer increment: relaxed load + relaxed store. The caller must
  // ensure class_id < class_capacity() (see Collector::BumpSpill otherwise).
  void Bump(uint32_t class_id, ClassCounter kind, uint64_t amount = 1) {
    std::atomic<uint64_t>& cell =
        counters_[class_id * kClassCounterCount + static_cast<size_t>(kind)];
    cell.store(cell.load(std::memory_order_relaxed) + amount, std::memory_order_relaxed);
  }

  void RecordLatency(size_t event_kind, uint64_t ns) {
    Histogram& hist = histograms_[event_kind];
    Add(hist.count);
    Add(hist.sum_ns, ns);
    Add(hist.buckets[BucketFor(ns)]);
  }

 private:
  friend class Collector;

  struct Histogram {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_ns{0};
    std::atomic<uint64_t> buckets[kHistogramBuckets]{};
  };

  static void Add(std::atomic<uint64_t>& cell, uint64_t amount = 1) {
    cell.store(cell.load(std::memory_order_relaxed) + amount, std::memory_order_relaxed);
  }

  size_t class_capacity_;
  // class_capacity_ * kClassCounterCount cells, class-major.
  std::unique_ptr<std::atomic<uint64_t>[]> counters_;
  // Allocated only in kFull mode (4 * 66 words otherwise wasted per context).
  std::unique_ptr<Histogram[]> histograms_;
};

class Collector {
 public:
  explicit Collector(MetricsMode mode) : mode_(mode) {}

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  MetricsMode mode() const { return mode_; }
  bool histograms_enabled() const { return mode_ == MetricsMode::kFull; }

  // Thread-safe; the returned shard stays valid for the Collector's lifetime
  // and is sized for the classes known now (EnsureClassCapacity).
  Shard* RegisterShard();

  // Grows the central spill table (and the capacity granted to future
  // shards) to `count` classes. Called at Register() time, before contexts.
  void EnsureClassCapacity(size_t count);

  // (Re)installs the coverage bitmap: `bits` statically-valid-transition
  // slots, all cleared. Called from plan compilation; any previously stamped
  // coverage is reset (the plan's bit layout changed).
  void InstallCoverage(size_t bits);

  // Hot path: idempotent bit set. Check-before-set keeps the warm cost to
  // one relaxed load; the fetch_or only runs the first time a bit fires.
  void StampCoverage(uint32_t bit) {
    std::atomic<uint64_t>& word = coverage_[bit >> 6];
    const uint64_t mask = uint64_t{1} << (bit & 63);
    if ((word.load(std::memory_order_relaxed) & mask) == 0) {
      word.fetch_or(mask, std::memory_order_relaxed);
    }
  }

  bool CoverageBit(uint32_t bit) const {
    return bit < coverage_bits_ &&
           (coverage_[bit >> 6].load(std::memory_order_relaxed) &
            (uint64_t{1} << (bit & 63))) != 0;
  }
  size_t coverage_bits() const { return coverage_bits_; }

  // Cold-path bump for callers without a (large-enough) shard: violations
  // reported outside any context, and events racing a late Register().
  void BumpSpill(uint32_t class_id, ClassCounter kind, uint64_t amount = 1);

  // Sums every shard's and the spill table's counters for classes
  // [0, class_count) into `out` (class-major, kClassCounterCount per class).
  void MergeCounters(size_t class_count, uint64_t* out) const;

  // Sums every shard's histograms into `out[kEventKinds]`.
  void MergeHistograms(HistogramData* out) const;

  // Zeroes all counters, histograms and the coverage bitmap (snapshot-delta
  // support; see Runtime::ResetStats()). Concurrent writers keep writing —
  // like stats resets anywhere, call this at a quiescent point for exact
  // deltas.
  void Reset();

 private:
  MetricsMode mode_;
  mutable Spinlock lock_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t class_capacity_ = 0;
  std::vector<uint64_t> spill_;  // class-major, guarded by lock_

  std::unique_ptr<std::atomic<uint64_t>[]> coverage_;
  size_t coverage_bits_ = 0;
};

}  // namespace tesla::metrics

#endif  // TESLA_METRICS_COLLECTOR_H_
