#include "metrics/collector.h"

namespace tesla::metrics {

const char* MetricsModeName(MetricsMode mode) {
  switch (mode) {
    case MetricsMode::kOff:
      return "off";
    case MetricsMode::kCounters:
      return "counters";
    case MetricsMode::kFull:
      return "counters+histograms";
  }
  return "?";
}

uint64_t HistogramData::QuantileNs(double q) const {
  if (count == 0) {
    return 0;
  }
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (size_t bucket = 0; bucket < kHistogramBuckets; bucket++) {
    seen += buckets[bucket];
    if (seen > rank) {
      return BucketUpperNs(bucket);
    }
  }
  return BucketUpperNs(kHistogramBuckets - 1);
}

uint64_t HistogramData::MaxNs() const {
  for (size_t bucket = kHistogramBuckets; bucket-- > 0;) {
    if (buckets[bucket] != 0) {
      return BucketUpperNs(bucket);
    }
  }
  return 0;
}

Shard::Shard(size_t class_capacity, bool histograms) : class_capacity_(class_capacity) {
  if (class_capacity_ > 0) {
    counters_ =
        std::make_unique<std::atomic<uint64_t>[]>(class_capacity_ * kClassCounterCount);
  }
  if (histograms) {
    histograms_ = std::make_unique<Histogram[]>(kEventKinds);
  }
}

Shard* Collector::RegisterShard() {
  LockGuard<Spinlock> guard(lock_);
  shards_.push_back(std::make_unique<Shard>(class_capacity_, histograms_enabled()));
  return shards_.back().get();
}

void Collector::EnsureClassCapacity(size_t count) {
  LockGuard<Spinlock> guard(lock_);
  if (count > class_capacity_) {
    class_capacity_ = count;
    spill_.resize(count * kClassCounterCount, 0);
  }
}

void Collector::InstallCoverage(size_t bits) {
  const size_t words = (bits + 63) / 64;
  auto fresh = words > 0 ? std::make_unique<std::atomic<uint64_t>[]>(words) : nullptr;
  LockGuard<Spinlock> guard(lock_);
  coverage_ = std::move(fresh);
  coverage_bits_ = bits;
}

void Collector::BumpSpill(uint32_t class_id, ClassCounter kind, uint64_t amount) {
  LockGuard<Spinlock> guard(lock_);
  const size_t cell = class_id * kClassCounterCount + static_cast<size_t>(kind);
  if (cell < spill_.size()) {
    spill_[cell] += amount;
  }
}

void Collector::MergeCounters(size_t class_count, uint64_t* out) const {
  const size_t cells = class_count * kClassCounterCount;
  for (size_t i = 0; i < cells; i++) {
    out[i] = 0;
  }
  LockGuard<Spinlock> guard(lock_);
  for (const auto& shard : shards_) {
    const size_t shard_cells =
        (shard->class_capacity_ < class_count ? shard->class_capacity_ : class_count) *
        kClassCounterCount;
    for (size_t i = 0; i < shard_cells; i++) {
      out[i] += shard->counters_[i].load(std::memory_order_relaxed);
    }
  }
  const size_t spill_cells = spill_.size() < cells ? spill_.size() : cells;
  for (size_t i = 0; i < spill_cells; i++) {
    out[i] += spill_[i];
  }
}

void Collector::MergeHistograms(HistogramData* out) const {
  for (size_t kind = 0; kind < kEventKinds; kind++) {
    out[kind] = HistogramData{};
  }
  LockGuard<Spinlock> guard(lock_);
  for (const auto& shard : shards_) {
    if (shard->histograms_ == nullptr) {
      continue;
    }
    for (size_t kind = 0; kind < kEventKinds; kind++) {
      const Shard::Histogram& hist = shard->histograms_[kind];
      out[kind].count += hist.count.load(std::memory_order_relaxed);
      out[kind].sum_ns += hist.sum_ns.load(std::memory_order_relaxed);
      for (size_t bucket = 0; bucket < kHistogramBuckets; bucket++) {
        out[kind].buckets[bucket] += hist.buckets[bucket].load(std::memory_order_relaxed);
      }
    }
  }
}

void Collector::Reset() {
  LockGuard<Spinlock> guard(lock_);
  for (const auto& shard : shards_) {
    for (size_t i = 0; i < shard->class_capacity_ * kClassCounterCount; i++) {
      shard->counters_[i].store(0, std::memory_order_relaxed);
    }
    if (shard->histograms_ != nullptr) {
      for (size_t kind = 0; kind < kEventKinds; kind++) {
        Shard::Histogram& hist = shard->histograms_[kind];
        hist.count.store(0, std::memory_order_relaxed);
        hist.sum_ns.store(0, std::memory_order_relaxed);
        for (size_t bucket = 0; bucket < kHistogramBuckets; bucket++) {
          hist.buckets[bucket].store(0, std::memory_order_relaxed);
        }
      }
    }
  }
  for (uint64_t& cell : spill_) {
    cell = 0;
  }
  for (size_t word = 0; word < (coverage_bits_ + 63) / 64; word++) {
    coverage_[word].store(0, std::memory_order_relaxed);
  }
}

}  // namespace tesla::metrics
