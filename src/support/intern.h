// String interning: maps strings to dense 32-bit symbols.
//
// The instrumenter and runtime key automata and events by function / field
// names; interning makes those comparisons O(1) and the event structures
// trivially copyable. Because symbols are handed out densely from 0, a
// frozen interner doubles as the index space for flat dispatch tables: the
// runtime snapshots the symbol count with Freeze() at Register() time and
// routes events through vectors indexed by Symbol instead of hash maps.
#ifndef TESLA_SUPPORT_INTERN_H_
#define TESLA_SUPPORT_INTERN_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tesla {

// A dense handle for an interned string. Symbol 0 is always the empty string.
using Symbol = uint32_t;

inline constexpr Symbol kNoSymbol = 0;

// Transparent (heterogeneous) hashing: lets the interner probe its index
// with a string_view directly, so Intern()/Lookup() of an already-interned
// name never allocates a temporary std::string.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view text) const noexcept {
    return std::hash<std::string_view>{}(text);
  }
};

// Thread-safe: interning happens at parse/registration/instrumentation
// time, never on the dispatch hot path (events carry Symbols), so one
// mutex over the table is plenty — but producers feeding the async queue
// may intern from any thread, so it must be there. The spellings live in a
// deque: references handed out by Spelling() stay valid across later
// Intern() calls.
class StringInterner {
 public:
  StringInterner() { Intern(""); }

  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  Symbol Intern(std::string_view text) {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = index_.find(text);
    if (it != index_.end()) {
      return it->second;
    }
    Symbol symbol = static_cast<Symbol>(strings_.size());
    strings_.emplace_back(text);
    index_.emplace(strings_.back(), symbol);
    return symbol;
  }

  // Returns kNoSymbol when `text` has never been interned.
  Symbol Lookup(std::string_view text) const {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = index_.find(text);
    return it == index_.end() ? kNoSymbol : it->second;
  }

  // Marks the dense prefix [0, size()) as stable and returns its extent.
  // Interning stays legal afterwards (late-loaded units keep working), but
  // table-based consumers size their flat arrays to frozen_size() and treat
  // later symbols as unroutable, which is exactly right: a symbol interned
  // after the dispatch plan was compiled cannot name any registered pattern.
  Symbol Freeze() {
    std::lock_guard<std::mutex> guard(mutex_);
    frozen_size_.store(static_cast<Symbol>(strings_.size()), std::memory_order_relaxed);
    return frozen_size_.load(std::memory_order_relaxed);
  }

  Symbol frozen_size() const { return frozen_size_.load(std::memory_order_relaxed); }
  bool frozen() const { return frozen_size() != 0; }

  const std::string& Spelling(Symbol symbol) const {
    std::lock_guard<std::mutex> guard(mutex_);
    return strings_.at(symbol);
  }

  size_t size() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return strings_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::deque<std::string> strings_;
  std::unordered_map<std::string, Symbol, TransparentStringHash, std::equal_to<>> index_;
  std::atomic<Symbol> frozen_size_{0};
};

// Process-wide interner. TESLA manifests name functions across translation
// units, so the analyser, instrumenter and runtime must agree on symbols.
StringInterner& GlobalInterner();

// Shorthands over the global interner.
Symbol InternString(std::string_view text);
const std::string& SymbolName(Symbol symbol);

}  // namespace tesla

#endif  // TESLA_SUPPORT_INTERN_H_
