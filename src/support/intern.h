// String interning: maps strings to dense 32-bit symbols.
//
// The instrumenter and runtime key automata and events by function / field
// names; interning makes those comparisons O(1) and the event structures
// trivially copyable.
#ifndef TESLA_SUPPORT_INTERN_H_
#define TESLA_SUPPORT_INTERN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tesla {

// A dense handle for an interned string. Symbol 0 is always the empty string.
using Symbol = uint32_t;

inline constexpr Symbol kNoSymbol = 0;

class StringInterner {
 public:
  StringInterner() { Intern(""); }

  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  Symbol Intern(std::string_view text) {
    auto it = index_.find(std::string(text));
    if (it != index_.end()) {
      return it->second;
    }
    Symbol symbol = static_cast<Symbol>(strings_.size());
    strings_.emplace_back(text);
    index_.emplace(strings_.back(), symbol);
    return symbol;
  }

  // Returns kNoSymbol when `text` has never been interned.
  Symbol Lookup(std::string_view text) const {
    auto it = index_.find(std::string(text));
    return it == index_.end() ? kNoSymbol : it->second;
  }

  const std::string& Spelling(Symbol symbol) const { return strings_.at(symbol); }

  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, Symbol> index_;
};

// Process-wide interner. TESLA manifests name functions across translation
// units, so the analyser, instrumenter and runtime must agree on symbols.
StringInterner& GlobalInterner();

// Shorthands over the global interner.
Symbol InternString(std::string_view text);
const std::string& SymbolName(Symbol symbol);

}  // namespace tesla

#endif  // TESLA_SUPPORT_INTERN_H_
