// Leveled stderr logging, gated by the TESLA_DEBUG environment variable.
//
// Paper §4.4.2: "In userspace, TESLA's default behaviour is to output event
// information to stderr, controlled by the TESLA_DEBUG environment variable."
#ifndef TESLA_SUPPORT_LOG_H_
#define TESLA_SUPPORT_LOG_H_

#include <sstream>
#include <string>

namespace tesla {

enum class LogLevel {
  kSilent = 0,
  kError = 1,
  kWarning = 2,
  kInfo = 3,
  kDebug = 4,
};

// The current log level; initialised from TESLA_DEBUG on first use
// (unset/empty → kError, "0".."4" → that level, any other value → kDebug).
LogLevel CurrentLogLevel();
void SetLogLevel(LogLevel level);

void LogMessage(LogLevel level, const std::string& message);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tesla

#define TESLA_LOG(level)                                       \
  if (::tesla::CurrentLogLevel() < ::tesla::LogLevel::level) { \
  } else                                                       \
    ::tesla::internal::LogLine(::tesla::LogLevel::level)

#endif  // TESLA_SUPPORT_LOG_H_
