// Result<T>: value-or-error return type used across TESLA's tooling layers.
//
// TESLA's analyser, parser and instrumenter report user-facing diagnostics
// (bad assertion syntax, unknown function names, ...) rather than programmer
// errors, so they return Result<T> instead of throwing.
#ifndef TESLA_SUPPORT_RESULT_H_
#define TESLA_SUPPORT_RESULT_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace tesla {

// A diagnostic attached to a source location (1-based; 0 means "unknown").
struct Error {
  std::string message;
  int line = 0;
  int column = 0;
  // Optional machine-readable failure class (0: unclassified). Layers that
  // need to branch on *why* something failed — the tesla-trace CLI maps
  // trace::ErrorCode values to distinct exit codes — set this; everything
  // else ignores it, and aggregate-initialised Error{...} literals leave it 0.
  int code = 0;

  std::string ToString() const {
    if (line == 0) {
      return message;
    }
    return std::to_string(line) + ":" + std::to_string(column) + ": " + message;
  }
};

template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse: `return value;` / `return Error{...};`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : value_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Error> value_;
};

// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), ok_(false) {}  // NOLINT

  static Status Ok() { return Status(); }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const Error& error() const {
    assert(!ok_);
    return error_;
  }

 private:
  Error error_;
  bool ok_ = true;
};

}  // namespace tesla

#endif  // TESLA_SUPPORT_RESULT_H_
