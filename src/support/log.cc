#include "support/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tesla {
namespace {

LogLevel LevelFromEnvironment() {
  const char* value = std::getenv("TESLA_DEBUG");
  if (value == nullptr || value[0] == '\0') {
    return LogLevel::kError;
  }
  if (value[0] >= '0' && value[0] <= '4' && value[1] == '\0') {
    return static_cast<LogLevel>(value[0] - '0');
  }
  return LogLevel::kDebug;
}

std::atomic<int> g_level{-1};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarning:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kSilent:
      return "silent";
  }
  return "?";
}

}  // namespace

LogLevel CurrentLogLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(LevelFromEnvironment());
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "tesla[%s]: %s\n", LevelTag(level), message.c_str());
}

}  // namespace tesla
