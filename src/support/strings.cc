#include "support/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace tesla {

std::vector<std::string_view> SplitString(std::string_view text, char separator) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(separator, start);
    if (end == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin]))) {
    begin++;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    end--;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view separator) {
  std::string joined;
  for (size_t i = 0; i < parts.size(); i++) {
    if (i > 0) {
      joined.append(separator);
    }
    joined.append(parts[i]);
  }
  return joined;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) {
    return false;
  }
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 0);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) {
    return false;
  }
  *out = static_cast<int64_t>(value);
  return true;
}

}  // namespace tesla
