// A minimal test-and-set spinlock.
//
// libtesla's global-context store serialises events from all threads (paper
// §3.2); the critical sections are a handful of loads and stores, so a
// spinlock beats a mutex on the instrumented fast path and — matching the
// paper's kernel deployment — never sleeps.
#ifndef TESLA_SUPPORT_SPINLOCK_H_
#define TESLA_SUPPORT_SPINLOCK_H_

#include <atomic>

namespace tesla {

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() {
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) {
        // Spin on a plain load to avoid cache-line ping-pong.
      }
    }
  }

  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

// RAII guard, usable with either Spinlock or std::mutex-like types.
template <typename Lock>
class LockGuard {
 public:
  explicit LockGuard(Lock& lock) : lock_(lock) { lock_.lock(); }
  ~LockGuard() { lock_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Lock& lock_;
};

}  // namespace tesla

#endif  // TESLA_SUPPORT_SPINLOCK_H_
