// A small-size-optimised growable array for trivially-copyable elements.
//
// Hot paths that gather a handful of items (e.g. the assertion-site symbol
// list with its incallstack() variants) want a fixed inline buffer with zero
// allocations in the common case — but a hard ceiling silently truncates the
// rare workload that exceeds it. SmallVector keeps the first InlineCapacity
// elements inline and spills the whole sequence to the heap only past that,
// so data() stays contiguous and no element is ever dropped.
#ifndef TESLA_SUPPORT_SMALLVEC_H_
#define TESLA_SUPPORT_SMALLVEC_H_

#include <cstddef>
#include <type_traits>
#include <vector>

namespace tesla {

template <typename T, size_t InlineCapacity>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector only supports trivially-copyable elements");

 public:
  void push_back(const T& value) {
    if (heap_.empty()) {
      if (size_ < InlineCapacity) {
        inline_[size_++] = value;
        return;
      }
      // First spill: move the inline prefix to the heap so the sequence
      // stays contiguous.
      heap_.reserve(InlineCapacity * 2);
      heap_.assign(inline_, inline_ + size_);
    }
    heap_.push_back(value);
    size_++;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T* data() const { return heap_.empty() ? inline_ : heap_.data(); }
  T* data() { return heap_.empty() ? inline_ : heap_.data(); }

  const T& operator[](size_t index) const { return data()[index]; }
  T& operator[](size_t index) { return data()[index]; }

  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

 private:
  T inline_[InlineCapacity];
  std::vector<T> heap_;
  size_t size_ = 0;
};

}  // namespace tesla

#endif  // TESLA_SUPPORT_SMALLVEC_H_
