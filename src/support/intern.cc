#include "support/intern.h"

namespace tesla {

StringInterner& GlobalInterner() {
  static StringInterner interner;
  return interner;
}

Symbol InternString(std::string_view text) { return GlobalInterner().Intern(text); }

const std::string& SymbolName(Symbol symbol) { return GlobalInterner().Spelling(symbol); }

}  // namespace tesla
