// Small string helpers shared by the DSL parser, manifest serialiser and
// report formatting.
#ifndef TESLA_SUPPORT_STRINGS_H_
#define TESLA_SUPPORT_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace tesla {

std::vector<std::string_view> SplitString(std::string_view text, char separator);

std::string_view TrimWhitespace(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view separator);

// Parses a signed 64-bit decimal (optionally 0x-prefixed hex) integer.
// Returns false on malformed input or overflow.
bool ParseInt64(std::string_view text, int64_t* out);

}  // namespace tesla

#endif  // TESLA_SUPPORT_STRINGS_H_
