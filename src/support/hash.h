// FNV-1a hashing and combination helpers.
//
// libtesla keys automaton instances by their bound variable values; a cheap,
// deterministic hash keeps lookups out of the instrumented fast path's way.
#ifndef TESLA_SUPPORT_HASH_H_
#define TESLA_SUPPORT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tesla {

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

constexpr uint64_t FnvHashBytes(const char* data, size_t size,
                                uint64_t seed = kFnvOffsetBasis) {
  uint64_t hash = seed;
  for (size_t i = 0; i < size; i++) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

constexpr uint64_t FnvHashString(std::string_view text, uint64_t seed = kFnvOffsetBasis) {
  return FnvHashBytes(text.data(), text.size(), seed);
}

constexpr uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // 64-bit variant of boost::hash_combine's mixing constant.
  return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 12) + (seed >> 4));
}

constexpr uint64_t HashU64(uint64_t value) {
  // SplitMix64 finaliser: good avalanche for pointer-like keys.
  value ^= value >> 30;
  value *= 0xbf58476d1ce4e5b9ull;
  value ^= value >> 27;
  value *= 0x94d049bb133111ebull;
  value ^= value >> 31;
  return value;
}

}  // namespace tesla

#endif  // TESLA_SUPPORT_HASH_H_
