// Fixed-capacity object pool with overflow accounting.
//
// Paper §4.4.1: "we preallocate a fixed-size memory block per thread, giving
// a deterministic memory footprint, and report overflows so that we can
// adjust preallocation size on the next run." FixedPool implements exactly
// that contract: allocation never touches the heap after construction, and
// exhaustion is counted rather than fatal.
#ifndef TESLA_SUPPORT_POOL_H_
#define TESLA_SUPPORT_POOL_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace tesla {

template <typename T>
class FixedPool {
 public:
  explicit FixedPool(size_t capacity)
      : capacity_(capacity),
        storage_(static_cast<Slot*>(::operator new[](capacity * sizeof(Slot)))) {
    free_list_.reserve(capacity);
    for (size_t i = 0; i < capacity_; i++) {
      free_list_.push_back(&storage_[capacity_ - 1 - i]);
    }
  }

  ~FixedPool() {
    assert(live_ == 0 && "pool destroyed with live objects");
    ::operator delete[](storage_);
  }

  FixedPool(const FixedPool&) = delete;
  FixedPool& operator=(const FixedPool&) = delete;

  // Returns nullptr (and bumps the overflow counter) when the pool is full.
  template <typename... Args>
  T* Allocate(Args&&... args) {
    if (free_list_.empty()) {
      overflows_++;
      return nullptr;
    }
    Slot* slot = free_list_.back();
    free_list_.pop_back();
    live_++;
    high_water_ = live_ > high_water_ ? live_ : high_water_;
    return new (slot->bytes) T(std::forward<Args>(args)...);
  }

  void Free(T* object) {
    assert(object != nullptr);
    object->~T();
    live_--;
    free_list_.push_back(reinterpret_cast<Slot*>(object));
  }

  size_t capacity() const { return capacity_; }
  size_t live() const { return live_; }
  size_t high_water() const { return high_water_; }
  uint64_t overflows() const { return overflows_; }
  void ResetOverflows() { overflows_ = 0; }
  // Rewinds the mark to the current live population so a measurement window
  // opened now isn't polluted by earlier peaks.
  void ResetHighWater() { high_water_ = live_; }

 private:
  union Slot {
    alignas(T) char bytes[sizeof(T)];
  };

  const size_t capacity_;
  Slot* storage_;
  std::vector<Slot*> free_list_;
  size_t live_ = 0;
  size_t high_water_ = 0;
  uint64_t overflows_ = 0;
};

// Fixed-capacity *slot* allocator: the index-based sibling of FixedPool.
//
// SlotPool hands out dense uint32 slot ids instead of pointers, which lets a
// client keep the per-object fields in structure-of-arrays form (parallel
// vectors indexed by slot) so that hot loops touch only the arrays they need.
// Same contract as FixedPool: no heap traffic after construction, exhaustion
// is counted (kNoSlot) rather than fatal.
class SlotPool {
 public:
  static constexpr uint32_t kNoSlot = 0xffffffffu;

  explicit SlotPool(size_t capacity) : capacity_(capacity) {
    free_list_.reserve(capacity);
    for (size_t i = 0; i < capacity; i++) {
      free_list_.push_back(static_cast<uint32_t>(capacity - 1 - i));
    }
  }

  SlotPool(const SlotPool&) = delete;
  SlotPool& operator=(const SlotPool&) = delete;

  // Returns kNoSlot (and bumps the overflow counter) when the pool is full.
  uint32_t Allocate() {
    if (free_list_.empty()) {
      overflows_++;
      return kNoSlot;
    }
    uint32_t slot = free_list_.back();
    free_list_.pop_back();
    live_++;
    high_water_ = live_ > high_water_ ? live_ : high_water_;
    return slot;
  }

  void Free(uint32_t slot) {
    assert(slot < capacity_);
    live_--;
    free_list_.push_back(slot);
  }

  size_t capacity() const { return capacity_; }
  size_t live() const { return live_; }
  size_t high_water() const { return high_water_; }
  uint64_t overflows() const { return overflows_; }
  void ResetOverflows() { overflows_ = 0; }
  // Rewinds the mark to the current live population so a measurement window
  // opened now isn't polluted by earlier peaks.
  void ResetHighWater() { high_water_ = live_; }

 private:
  const size_t capacity_;
  std::vector<uint32_t> free_list_;
  size_t live_ = 0;
  size_t high_water_ = 0;
  uint64_t overflows_ = 0;
};

}  // namespace tesla

#endif  // TESLA_SUPPORT_POOL_H_
