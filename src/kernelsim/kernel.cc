#include "kernelsim/kernel.h"

#include <cassert>

#include "support/hash.h"

namespace tesla::kernelsim {

namespace {

using runtime::Binding;
using runtime::FunctionScope;

// Callee-side instrumentation for a kernel function: what the TESLA
// instrumenter would weave into the function's entry block and returns.
#define KERNEL_FN(td, name, ...) \
  FunctionScope _tesla_scope(tesla(), (td).tesla.get(), Syms().name, {__VA_ARGS__})
#define KERNEL_RET(value) _tesla_scope.Return(value)

}  // namespace

const KernelSymbols& Syms() {
  static KernelSymbols symbols;
  return symbols;
}

Kernel::Kernel(KernelConfig config) : config_(std::move(config)) {
  vnode_lock_ = witness_.RegisterClass("vnode");
  socket_lock_ = witness_.RegisterClass("socket");
  proc_lock_ = witness_.RegisterClass("proc");
  mac_lock_ = witness_.RegisterClass("mac");

  generic_usrreqs_.pru_sopoll = &Kernel::SopollGenericThunk;
  generic_usrreqs_.pru_sosend = &Kernel::SosendGenericThunk;
  generic_usrreqs_.pru_soreceive = &Kernel::SoreceiveGenericThunk;
  tcp_proto_.name = "tcp";
  tcp_proto_.pr_usrreqs = &generic_usrreqs_;

  // A small boot filesystem: /, /etc, /etc/passwd, /bin/sh, /lib/mod.ko,
  // plus a pool of data files the workloads read and write.
  auto make_vnode = [this](const std::string& name, bool dir, bool exec) {
    auto vnode = std::make_unique<Vnode>();
    vnode->id = vnodes_.size() + 1;
    vnode->name = name;
    vnode->is_dir = dir;
    vnode->is_executable = exec;
    vnode->size = 4096;
    namecache_[name] = vnode->id;
    vnodes_.push_back(std::move(vnode));
    return vnodes_.back().get();
  };
  Vnode* root = make_vnode("/", true, false);
  Vnode* etc = make_vnode("/etc", true, false);
  root->children.push_back(etc->id);
  etc->children.push_back(make_vnode("/etc/passwd", false, false)->id);
  make_vnode("/bin/sh", false, true);
  make_vnode("/lib/mod.ko", false, false);
  for (int i = 0; i < 64; i++) {
    Vnode* file = make_vnode("/data/file" + std::to_string(i), false, false);
    root->children.push_back(file->id);
  }
}

Proc* Kernel::NewProcess(int64_t uid) {
  auto proc = std::make_unique<Proc>();
  proc->pid = next_pid_++;
  proc->cred.uid = uid;
  proc->cred.label = uid;
  proc->cred.id = next_cred_id_++;
  procs_.push_back(std::move(proc));
  return procs_.back().get();
}

Vnode* Kernel::VnodeById(uint64_t id) {
  return id >= 1 && id <= vnodes_.size() ? vnodes_[id - 1].get() : nullptr;
}

Socket* Kernel::SocketById(uint64_t id) {
  return id >= 1 && id <= sockets_.size() ? sockets_[id - 1].get() : nullptr;
}

Vnode* Kernel::Lookup(const std::string& path) {
  auto it = namecache_.find(path);
  return it == namecache_.end() ? nullptr : VnodeById(it->second);
}

Proc* Kernel::ProcByPid(int64_t pid) {
  for (const auto& proc : procs_) {
    if (proc->pid == pid) {
      return proc.get();
    }
  }
  return nullptr;
}

void Kernel::Site(KThread& td, const std::string& name,
                  std::initializer_list<Binding> bindings) {
  if (tesla() == nullptr || td.tesla == nullptr) {
    return;
  }
  auto it = site_cache_.find(name);
  if (it == site_cache_.end()) {
    it = site_cache_.emplace(name, tesla()->FindAutomaton(name)).first;
  }
  if (it->second < 0) {
    return;  // assertion not registered in this kernel configuration
  }
  tesla()->OnEvent(*td.tesla,
                   runtime::Event::Site(static_cast<uint32_t>(it->second),
                                        std::span<const Binding>(bindings.begin(),
                                                                 bindings.size())));
}

// --- debug-kernel (WITNESS / INVARIANTS analogue) work ---

void Kernel::LockAcquire(KThread& td, LockClassId cls) {
  if (!config_.debug_checks) {
    td.locks.held.push_back(cls);
    return;
  }
  witness_.Acquire(td.locks, cls);
  RunInvariantChecks(td);
}

void Kernel::LockRelease(KThread& td, LockClassId cls) {
  if (!config_.debug_checks) {
    witness_.Release(td.locks, cls);
    return;
  }
  witness_.Release(td.locks, cls);
}

void Kernel::RunInvariantChecks(KThread& td) {
  // INVARIANTS-style structure validation: walk a bounded slice of kernel
  // state, check consistency properties, and verify namecache entries —
  // the kind of per-operation work FreeBSD's INVARIANTS kernels perform.
  uint64_t checksum = 0;
  size_t limit = vnodes_.size() < 8 ? vnodes_.size() : 8;
  for (size_t i = 0; i < limit; i++) {
    const Vnode& vnode = *vnodes_[i];
    assert(vnode.v_usecount >= 0);
    checksum = FnvHashString(vnode.name, checksum ^ kFnvOffsetBasis);
    checksum += static_cast<uint64_t>(vnode.v_usecount);
    if (vnode.is_dir && !vnode.children.empty()) {
      checksum ^= vnode.children.front() * 0x9e3779b97f4a7c15ull;
    }
  }
  // The thread must not hold more locks than lock classes allow recursively.
  assert(td.locks.held.size() < 64);
  // Fold the checksum into the counter so the validation walk cannot be
  // optimised away.
  debug_work_ += 1 + (checksum & 1);
}

// --- MAC framework ---

int64_t Kernel::MacCheckCommon(Ucred* cred, int64_t object_label) {
  mac_checks_++;
  // Biba-style policy shadow: a subject may access objects whose integrity
  // label does not exceed its own. uid 0 bypasses.
  if (cred->uid == 0) {
    return kOk;
  }
  return object_label <= cred->label ? kOk : kEperm;
}

int64_t Kernel::mac_vnode_check_open(KThread& td, Ucred* cred, Vnode* vp, uint64_t accmode) {
  KERNEL_FN(td, mac_vnode_check_open, static_cast<int64_t>(cred->id),
            static_cast<int64_t>(vp->id), static_cast<int64_t>(accmode));
  return KERNEL_RET(MacCheckCommon(cred, vp->label));
}

int64_t Kernel::mac_vnode_check_read(KThread& td, Ucred* active_cred, Ucred* file_cred,
                                     Vnode* vp) {
  KERNEL_FN(td, mac_vnode_check_read, static_cast<int64_t>(active_cred->id),
            static_cast<int64_t>(file_cred->id), static_cast<int64_t>(vp->id));
  return KERNEL_RET(MacCheckCommon(active_cred, vp->label));
}

int64_t Kernel::mac_vnode_check_write(KThread& td, Ucred* active_cred, Ucred* file_cred,
                                      Vnode* vp) {
  KERNEL_FN(td, mac_vnode_check_write, static_cast<int64_t>(active_cred->id),
            static_cast<int64_t>(file_cred->id), static_cast<int64_t>(vp->id));
  return KERNEL_RET(MacCheckCommon(active_cred, vp->label));
}

int64_t Kernel::mac_vnode_check_exec(KThread& td, Ucred* cred, Vnode* vp) {
  KERNEL_FN(td, mac_vnode_check_exec, static_cast<int64_t>(cred->id),
            static_cast<int64_t>(vp->id));
  return KERNEL_RET(MacCheckCommon(cred, vp->label));
}

int64_t Kernel::mac_vnode_check_readdir(KThread& td, Ucred* cred, Vnode* vp) {
  KERNEL_FN(td, mac_vnode_check_readdir, static_cast<int64_t>(cred->id),
            static_cast<int64_t>(vp->id));
  return KERNEL_RET(MacCheckCommon(cred, vp->label));
}

int64_t Kernel::mac_vnode_check_getextattr(KThread& td, Ucred* cred, Vnode* vp) {
  KERNEL_FN(td, mac_vnode_check_getextattr, static_cast<int64_t>(cred->id),
            static_cast<int64_t>(vp->id));
  return KERNEL_RET(MacCheckCommon(cred, vp->label));
}

int64_t Kernel::mac_kld_check_load(KThread& td, Ucred* cred, Vnode* vp) {
  KERNEL_FN(td, mac_kld_check_load, static_cast<int64_t>(cred->id),
            static_cast<int64_t>(vp->id));
  return KERNEL_RET(MacCheckCommon(cred, vp->label));
}

int64_t Kernel::mac_socket_check_create(KThread& td, Ucred* cred) {
  KERNEL_FN(td, mac_socket_check_create, static_cast<int64_t>(cred->id));
  return KERNEL_RET(MacCheckCommon(cred, 0));
}

int64_t Kernel::mac_socket_check_bind(KThread& td, Ucred* cred, Socket* so) {
  KERNEL_FN(td, mac_socket_check_bind, static_cast<int64_t>(cred->id),
            static_cast<int64_t>(so->id));
  return KERNEL_RET(MacCheckCommon(cred, so->label));
}

int64_t Kernel::mac_socket_check_connect(KThread& td, Ucred* cred, Socket* so) {
  KERNEL_FN(td, mac_socket_check_connect, static_cast<int64_t>(cred->id),
            static_cast<int64_t>(so->id));
  return KERNEL_RET(MacCheckCommon(cred, so->label));
}

int64_t Kernel::mac_socket_check_send(KThread& td, Ucred* cred, Socket* so) {
  KERNEL_FN(td, mac_socket_check_send, static_cast<int64_t>(cred->id),
            static_cast<int64_t>(so->id));
  return KERNEL_RET(MacCheckCommon(cred, so->label));
}

int64_t Kernel::mac_socket_check_receive(KThread& td, Ucred* cred, Socket* so) {
  KERNEL_FN(td, mac_socket_check_receive, static_cast<int64_t>(cred->id),
            static_cast<int64_t>(so->id));
  return KERNEL_RET(MacCheckCommon(cred, so->label));
}

int64_t Kernel::mac_socket_check_poll(KThread& td, Ucred* active_cred, Socket* so) {
  KERNEL_FN(td, mac_socket_check_poll, static_cast<int64_t>(active_cred->id),
            static_cast<int64_t>(so->id));
  return KERNEL_RET(MacCheckCommon(active_cred, so->label));
}

int64_t Kernel::mac_proc_check_signal(KThread& td, Ucred* cred, Proc* target, int64_t signal) {
  KERNEL_FN(td, mac_proc_check_signal, static_cast<int64_t>(cred->id), target->pid, signal);
  return KERNEL_RET(MacCheckCommon(cred, target->cred.label));
}

int64_t Kernel::mac_proc_check_setuid(KThread& td, Ucred* cred, int64_t uid) {
  KERNEL_FN(td, mac_proc_check_setuid, static_cast<int64_t>(cred->id), uid);
  return KERNEL_RET(cred->uid == 0 || uid == cred->uid ? kOk : kEperm);
}

// --- VFS / UFS ---

int64_t Kernel::ufs_open(KThread& td, Vnode* vp, Ucred* cred, uint64_t flags,
                         uint64_t site_mode) {
  KERNEL_FN(td, ufs_open, static_cast<int64_t>(vp->id), static_cast<int64_t>(cred->id));
  // fig. 7: within this syscall, *some* open-authorising check must already
  // have run for vp — open, exec, or kld-load, depending on the path.
  Site(td, "mac.fs.open", {{0, static_cast<int64_t>(vp->id)}});
  LockAcquire(td, vnode_lock_);
  vp->v_usecount++;
  LockRelease(td, vnode_lock_);
  return KERNEL_RET(kOk);
}

int64_t Kernel::ffs_read(KThread& td, Vnode* vp, Ucred* active_cred, Ucred* file_cred,
                         int64_t bytes, uint64_t flags) {
  KERNEL_FN(td, ffs_read, static_cast<int64_t>(vp->id), static_cast<int64_t>(active_cred->id),
            bytes);
  // fig. 7: reads reached via ufs_readdir, via vn_rdwr(IO_NOMACCHECK) or via
  // an explicit prior mac_vnode_check_read are all legitimate.
  Site(td, "mac.fs.read", {{0, static_cast<int64_t>(vp->id)}});
  LockAcquire(td, vnode_lock_);
  int64_t copied = bytes < vp->size ? bytes : vp->size;
  LockRelease(td, vnode_lock_);
  return KERNEL_RET(copied);
}

int64_t Kernel::ffs_write(KThread& td, Vnode* vp, Ucred* active_cred, Ucred* file_cred,
                          int64_t bytes) {
  KERNEL_FN(td, ffs_write, static_cast<int64_t>(vp->id), static_cast<int64_t>(active_cred->id),
            bytes);
  Site(td, "mac.fs.write", {{0, static_cast<int64_t>(vp->id)}});
  LockAcquire(td, vnode_lock_);
  vp->size += bytes;
  LockRelease(td, vnode_lock_);
  return KERNEL_RET(bytes);
}

int64_t Kernel::vn_rdwr(KThread& td, Vnode* vp, bool write, int64_t bytes, uint64_t flags) {
  KERNEL_FN(td, vn_rdwr, static_cast<int64_t>(vp->id), write ? 1 : 0, bytes,
            static_cast<int64_t>(flags));
  KThread& thread = td;
  Ucred* cred = &thread.proc->cred;
  if ((flags & kIoNoMacCheck) == 0) {
    int64_t error = write ? mac_vnode_check_write(td, cred, cred, vp)
                          : mac_vnode_check_read(td, cred, cred, vp);
    if (error != kOk) {
      return KERNEL_RET(error);
    }
  }
  int64_t done = write ? ffs_write(td, vp, cred, cred, bytes)
                       : ffs_read(td, vp, cred, cred, bytes, flags);
  return KERNEL_RET(done);
}

int64_t Kernel::ufs_readdir(KThread& td, Vnode* vp) {
  KERNEL_FN(td, ufs_readdir, static_cast<int64_t>(vp->id));
  Site(td, "mac.fs.readdir", {{0, static_cast<int64_t>(vp->id)}});
  // Directory reads issue internal ffs_read calls without re-checking MAC;
  // fig. 7's incallstack(ufs_readdir) branch covers them.
  int64_t total = 0;
  for (uint64_t child_id : vp->children) {
    Vnode* child = VnodeById(child_id);
    if (child != nullptr) {
      total += ffs_read(td, vp, &td.proc->cred, &td.proc->cred, 64, 0);
      (void)child;
    }
    if (total > 512) {
      break;
    }
  }
  return KERNEL_RET(total);
}

int64_t Kernel::OpenCommon(KThread& td, const std::string& path, uint64_t flags) {
  Vnode* vp = Lookup(path);
  if (vp == nullptr) {
    if ((flags & kOCreat) == 0) {
      return -kEnoent;
    }
    auto vnode = std::make_unique<Vnode>();
    vnode->id = vnodes_.size() + 1;
    vnode->name = path;
    namecache_[path] = vnode->id;
    vnodes_.push_back(std::move(vnode));
    vp = vnodes_.back().get();
  }
  Ucred* cred = &td.proc->cred;
  int64_t error = mac_vnode_check_open(td, cred, vp, flags & (kFRead | kFWrite));
  if (error != kOk) {
    return -error;
  }
  error = ufs_open(td, vp, cred, flags, 0);
  if (error != kOk) {
    return -error;
  }
  int64_t fd = td.proc->next_fd++;
  File file;
  file.kind = File::Kind::kVnode;
  file.vnode = vp->id;
  file.flags = flags;
  file.f_cred = *cred;
  td.proc->fds[fd] = file;
  return fd;
}

// --- sockets (fig. 3's indirection chain) ---

int64_t Kernel::SopollGenericThunk(Kernel& k, KThread& td, Socket& so, int64_t events,
                                   Ucred* active_cred) {
  return k.sopoll_generic(td, so, events, active_cred);
}
int64_t Kernel::SosendGenericThunk(Kernel& k, KThread& td, Socket& so, int64_t bytes) {
  return k.sosend_generic(td, so, bytes);
}
int64_t Kernel::SoreceiveGenericThunk(Kernel& k, KThread& td, Socket& so, int64_t bytes) {
  return k.soreceive_generic(td, so, bytes);
}

int64_t Kernel::soo_poll(KThread& td, File& fp, int64_t events, Ucred* active_cred) {
  KERNEL_FN(td, soo_poll, static_cast<int64_t>(fp.socket), events,
            static_cast<int64_t>(active_cred->id));
  Socket* so = SocketById(fp.socket);
  if (so == nullptr) {
    return KERNEL_RET(-kEbadf);
  }
  int64_t error = mac_socket_check_poll(td, active_cred, so);
  if (error != kOk) {
    return KERNEL_RET(-error);
  }
  // The paper's wrong-credential bug: one dynamic call graph passes the
  // cached file credential down instead of the active thread credential.
  Ucred* passed = config_.bugs.poll_uses_file_credential ? &fp.f_cred : active_cred;
  return KERNEL_RET(sopoll(td, *so, events, passed));
}

int64_t Kernel::sopoll(KThread& td, Socket& so, int64_t events, Ucred* cred) {
  KERNEL_FN(td, sopoll, static_cast<int64_t>(so.id), events);
  // fig. 3: fp = so->so_proto->pr_usrreqs->pru_sopoll; return fp(...);
  auto fp = so.so_proto->pr_usrreqs->pru_sopoll;
  return KERNEL_RET(fp(*this, td, so, events, cred));
}

int64_t Kernel::sopoll_generic(KThread& td, Socket& so, int64_t events, Ucred* active_cred) {
  KERNEL_FN(td, sopoll_generic, static_cast<int64_t>(so.id), events,
            static_cast<int64_t>(active_cred->id));
  // fig. 4: "Here, we expect that an access-control check has already been
  // done" — with the *active* credential.
  Site(td, "mac.socket.poll",
       {{0, static_cast<int64_t>(active_cred->id)}, {1, static_cast<int64_t>(so.id)}});
  LockAcquire(td, socket_lock_);
  int64_t ready = so.buffered > 0 ? events : 0;
  LockRelease(td, socket_lock_);
  return KERNEL_RET(ready);
}

int64_t Kernel::sosend_generic(KThread& td, Socket& so, int64_t bytes) {
  KERNEL_FN(td, sosend, static_cast<int64_t>(so.id), bytes);
  Site(td, "mac.socket.send", {{0, static_cast<int64_t>(so.id)}});
  LockAcquire(td, socket_lock_);
  so.buffered += bytes;
  LockRelease(td, socket_lock_);
  return KERNEL_RET(bytes);
}

int64_t Kernel::soreceive_generic(KThread& td, Socket& so, int64_t bytes) {
  KERNEL_FN(td, soreceive, static_cast<int64_t>(so.id), bytes);
  Site(td, "mac.socket.receive", {{0, static_cast<int64_t>(so.id)}});
  LockAcquire(td, socket_lock_);
  int64_t got = so.buffered < bytes ? so.buffered : bytes;
  so.buffered -= got;
  LockRelease(td, socket_lock_);
  return KERNEL_RET(got);
}

// --- processes ---

int64_t Kernel::proc_set_cred(KThread& td, Proc* proc, int64_t uid) {
  KERNEL_FN(td, proc_set_cred, proc->pid, uid);
  Site(td, "proc.setuid", {{0, proc->pid}});
  LockAcquire(td, proc_lock_);
  proc->cred.uid = uid;
  proc->cred.label = uid;
  proc->cred.id = next_cred_id_++;
  // §3.5.2: "if a process credential is modified, then the P_SUGID process
  // flag must be set to prevent privilege escalation attacks via debuggers."
  Site(td, "proc.sugid", {{0, proc->pid}});
  if (!config_.bugs.setuid_skips_sugid_flag) {
    runtime::StoreField(tesla(), td.tesla.get(), Syms().p_flag, proc->pid,
                        &proc->p_flag,
                        static_cast<int64_t>(proc->p_flag | kPSugid));
  }
  LockRelease(td, proc_lock_);
  return KERNEL_RET(kOk);
}

// --- system calls ---

int64_t Kernel::SysOpen(KThread& td, const std::string& path, uint64_t flags) {
  KERNEL_FN(td, amd64_syscall, 5 /* SYS_open */);
  return KERNEL_RET(OpenCommon(td, path, flags));
}

int64_t Kernel::SysClose(KThread& td, int64_t fd) {
  KERNEL_FN(td, amd64_syscall, 6 /* SYS_close */);
  auto it = td.proc->fds.find(fd);
  if (it == td.proc->fds.end()) {
    return KERNEL_RET(-kEbadf);
  }
  if (it->second.kind == File::Kind::kVnode) {
    Vnode* vp = VnodeById(it->second.vnode);
    if (vp != nullptr) {
      LockAcquire(td, vnode_lock_);
      vp->v_usecount--;
      LockRelease(td, vnode_lock_);
    }
  }
  td.proc->fds.erase(it);
  return KERNEL_RET(kOk);
}

int64_t Kernel::SysRead(KThread& td, int64_t fd, int64_t bytes) {
  KERNEL_FN(td, amd64_syscall, 3 /* SYS_read */);
  auto it = td.proc->fds.find(fd);
  if (it == td.proc->fds.end()) {
    return KERNEL_RET(-kEbadf);
  }
  if (it->second.kind == File::Kind::kSocket) {
    Socket* so = SocketById(it->second.socket);
    return KERNEL_RET(so->so_proto->pr_usrreqs->pru_soreceive(*this, td, *so, bytes));
  }
  Vnode* vp = VnodeById(it->second.vnode);
  Ucred* active = &td.proc->cred;
  int64_t error = mac_vnode_check_read(td, active, &it->second.f_cred, vp);
  if (error != kOk) {
    return KERNEL_RET(-error);
  }
  return KERNEL_RET(ffs_read(td, vp, active, &it->second.f_cred, bytes, 0));
}

int64_t Kernel::SysWrite(KThread& td, int64_t fd, int64_t bytes) {
  KERNEL_FN(td, amd64_syscall, 4 /* SYS_write */);
  auto it = td.proc->fds.find(fd);
  if (it == td.proc->fds.end()) {
    return KERNEL_RET(-kEbadf);
  }
  if (it->second.kind == File::Kind::kSocket) {
    Socket* so = SocketById(it->second.socket);
    return KERNEL_RET(so->so_proto->pr_usrreqs->pru_sosend(*this, td, *so, bytes));
  }
  Vnode* vp = VnodeById(it->second.vnode);
  Ucred* active = &td.proc->cred;
  int64_t error = mac_vnode_check_write(td, active, &it->second.f_cred, vp);
  if (error != kOk) {
    return KERNEL_RET(-error);
  }
  return KERNEL_RET(ffs_write(td, vp, active, &it->second.f_cred, bytes));
}

int64_t Kernel::SysReaddir(KThread& td, int64_t fd) {
  KERNEL_FN(td, amd64_syscall, 196 /* SYS_getdirentries */);
  auto it = td.proc->fds.find(fd);
  if (it == td.proc->fds.end() || it->second.kind != File::Kind::kVnode) {
    return KERNEL_RET(-kEbadf);
  }
  Vnode* vp = VnodeById(it->second.vnode);
  if (!vp->is_dir) {
    return KERNEL_RET(-kEinval);
  }
  int64_t error = mac_vnode_check_readdir(td, &td.proc->cred, vp);
  if (error != kOk) {
    return KERNEL_RET(-error);
  }
  return KERNEL_RET(ufs_readdir(td, vp));
}

int64_t Kernel::SysSocket(KThread& td) {
  KERNEL_FN(td, amd64_syscall, 97 /* SYS_socket */);
  int64_t error = mac_socket_check_create(td, &td.proc->cred);
  if (error != kOk) {
    return KERNEL_RET(-error);
  }
  {
    FunctionScope socreate_scope(tesla(), td.tesla.get(), Syms().socreate, {});
    auto so = std::make_unique<Socket>();
    so->id = sockets_.size() + 1;
    so->so_proto = &tcp_proto_;
    sockets_.push_back(std::move(so));
    socreate_scope.Return(kOk);
  }
  int64_t fd = td.proc->next_fd++;
  File file;
  file.kind = File::Kind::kSocket;
  file.socket = sockets_.back()->id;
  file.f_cred = td.proc->cred;
  td.proc->fds[fd] = file;
  return KERNEL_RET(fd);
}

int64_t Kernel::SysBind(KThread& td, int64_t fd) {
  KERNEL_FN(td, amd64_syscall, 104 /* SYS_bind */);
  auto it = td.proc->fds.find(fd);
  if (it == td.proc->fds.end() || it->second.kind != File::Kind::kSocket) {
    return KERNEL_RET(-kEbadf);
  }
  Socket* so = SocketById(it->second.socket);
  int64_t error = mac_socket_check_bind(td, &td.proc->cred, so);
  if (error != kOk) {
    return KERNEL_RET(-error);
  }
  FunctionScope bind_scope(tesla(), td.tesla.get(), Syms().sobind,
                           {static_cast<int64_t>(so->id)});
  Site(td, "mac.socket.bind", {{0, static_cast<int64_t>(so->id)}});
  so->so_state |= 0x1;
  return KERNEL_RET(bind_scope.Return(kOk));
}

int64_t Kernel::SysConnect(KThread& td, int64_t fd) {
  KERNEL_FN(td, amd64_syscall, 98 /* SYS_connect */);
  auto it = td.proc->fds.find(fd);
  if (it == td.proc->fds.end() || it->second.kind != File::Kind::kSocket) {
    return KERNEL_RET(-kEbadf);
  }
  Socket* so = SocketById(it->second.socket);
  int64_t error = mac_socket_check_connect(td, &td.proc->cred, so);
  if (error != kOk) {
    return KERNEL_RET(-error);
  }
  FunctionScope connect_scope(tesla(), td.tesla.get(), Syms().soconnect,
                              {static_cast<int64_t>(so->id)});
  Site(td, "mac.socket.connect", {{0, static_cast<int64_t>(so->id)}});
  so->so_state |= 0x2;
  return KERNEL_RET(connect_scope.Return(kOk));
}

int64_t Kernel::SysSend(KThread& td, int64_t fd, int64_t bytes) {
  KERNEL_FN(td, amd64_syscall, 28 /* SYS_sendmsg */);
  auto it = td.proc->fds.find(fd);
  if (it == td.proc->fds.end() || it->second.kind != File::Kind::kSocket) {
    return KERNEL_RET(-kEbadf);
  }
  Socket* so = SocketById(it->second.socket);
  int64_t error = mac_socket_check_send(td, &td.proc->cred, so);
  if (error != kOk) {
    return KERNEL_RET(-error);
  }
  return KERNEL_RET(so->so_proto->pr_usrreqs->pru_sosend(*this, td, *so, bytes));
}

int64_t Kernel::SysRecv(KThread& td, int64_t fd, int64_t bytes) {
  KERNEL_FN(td, amd64_syscall, 27 /* SYS_recvmsg */);
  auto it = td.proc->fds.find(fd);
  if (it == td.proc->fds.end() || it->second.kind != File::Kind::kSocket) {
    return KERNEL_RET(-kEbadf);
  }
  Socket* so = SocketById(it->second.socket);
  int64_t error = mac_socket_check_receive(td, &td.proc->cred, so);
  if (error != kOk) {
    return KERNEL_RET(-error);
  }
  return KERNEL_RET(so->so_proto->pr_usrreqs->pru_soreceive(*this, td, *so, bytes));
}

int64_t Kernel::SysPoll(KThread& td, int64_t fd, int64_t events) {
  KERNEL_FN(td, amd64_syscall, 209 /* SYS_poll */);
  auto it = td.proc->fds.find(fd);
  if (it == td.proc->fds.end() || it->second.kind != File::Kind::kSocket) {
    return KERNEL_RET(-kEbadf);
  }
  return KERNEL_RET(soo_poll(td, it->second, events, &td.proc->cred));
}

int64_t Kernel::SysSelect(KThread& td, int64_t fd, int64_t events) {
  KERNEL_FN(td, amd64_syscall, 93 /* SYS_select */);
  auto it = td.proc->fds.find(fd);
  if (it == td.proc->fds.end() || it->second.kind != File::Kind::kSocket) {
    return KERNEL_RET(-kEbadf);
  }
  return KERNEL_RET(soo_poll(td, it->second, events, &td.proc->cred));
}

int64_t Kernel::SysKevent(KThread& td, int64_t fd, int64_t events) {
  KERNEL_FN(td, amd64_syscall, 363 /* SYS_kevent */);
  auto it = td.proc->fds.find(fd);
  if (it == td.proc->fds.end() || it->second.kind != File::Kind::kSocket) {
    return KERNEL_RET(-kEbadf);
  }
  Socket* so = SocketById(it->second.socket);
  FunctionScope register_scope(tesla(), td.tesla.get(), Syms().kqueue_register,
                               {static_cast<int64_t>(so->id)});
  // §3.5.2: "mac_socket_check_poll was being invoked for the select and poll
  // system calls, but not kqueue" — the injected bug skips the check here.
  if (!config_.bugs.kqueue_missing_mac_check) {
    int64_t error = mac_socket_check_poll(td, &td.proc->cred, so);
    if (error != kOk) {
      return KERNEL_RET(register_scope.Return(-error));
    }
  }
  register_scope.Return(kOk);
  FunctionScope scan_scope(tesla(), td.tesla.get(), Syms().kqueue_scan,
                           {static_cast<int64_t>(so->id)});
  int64_t ready = sopoll(td, *so, events, &td.proc->cred);
  return KERNEL_RET(scan_scope.Return(ready));
}

int64_t Kernel::SysSetuid(KThread& td, int64_t uid) {
  KERNEL_FN(td, amd64_syscall, 23 /* SYS_setuid */);
  int64_t error = mac_proc_check_setuid(td, &td.proc->cred, uid);
  if (error != kOk) {
    return KERNEL_RET(-error);
  }
  return KERNEL_RET(proc_set_cred(td, td.proc, uid));
}

int64_t Kernel::SysExecve(KThread& td, const std::string& path) {
  KERNEL_FN(td, amd64_syscall, 59 /* SYS_execve */);
  Vnode* vp = Lookup(path);
  if (vp == nullptr) {
    return KERNEL_RET(-kEnoent);
  }
  if (!vp->is_executable) {
    return KERNEL_RET(-kEinval);
  }
  int64_t error = mac_vnode_check_exec(td, &td.proc->cred, vp);
  if (error != kOk) {
    return KERNEL_RET(-error);
  }
  FunctionScope exec_scope(tesla(), td.tesla.get(), Syms().do_execve,
                           {static_cast<int64_t>(vp->id)});
  // Execution opens the image through ufs_open — the fig. 7 exec path.
  int64_t open_error = ufs_open(td, vp, &td.proc->cred, kFRead, 1);
  (void)vn_rdwr(td, vp, false, 4096, kIoNoMacCheck);  // image read, MAC-exempt
  return KERNEL_RET(exec_scope.Return(open_error));
}

int64_t Kernel::SysKldload(KThread& td, const std::string& path) {
  KERNEL_FN(td, amd64_syscall, 304 /* SYS_kldload */);
  Vnode* vp = Lookup(path);
  if (vp == nullptr) {
    return KERNEL_RET(-kEnoent);
  }
  int64_t error = mac_kld_check_load(td, &td.proc->cred, vp);
  if (error != kOk) {
    return KERNEL_RET(-error);
  }
  FunctionScope load_scope(tesla(), td.tesla.get(), Syms().kern_kldload,
                           {static_cast<int64_t>(vp->id)});
  // Module loading opens the object through ufs_open — fig. 7's third path.
  int64_t open_error = ufs_open(td, vp, &td.proc->cred, kFRead, 2);
  return KERNEL_RET(load_scope.Return(open_error));
}

int64_t Kernel::SysKill(KThread& td, int64_t pid, int64_t signal) {
  KERNEL_FN(td, amd64_syscall, 37 /* SYS_kill */);
  Proc* target = ProcByPid(pid);
  if (target == nullptr) {
    return KERNEL_RET(-kEnoent);
  }
  int64_t error = mac_proc_check_signal(td, &td.proc->cred, target, signal);
  if (error != kOk) {
    return KERNEL_RET(-error);
  }
  FunctionScope signal_scope(tesla(), td.tesla.get(), Syms().psignal, {pid, signal});
  Site(td, "proc.signal", {{0, pid}});
  return KERNEL_RET(signal_scope.Return(kOk));
}

int64_t Kernel::SysGetExtAttr(KThread& td, int64_t fd) {
  KERNEL_FN(td, amd64_syscall, 354 /* SYS_extattr_get_fd */);
  auto it = td.proc->fds.find(fd);
  if (it == td.proc->fds.end() || it->second.kind != File::Kind::kVnode) {
    return KERNEL_RET(-kEbadf);
  }
  Vnode* vp = VnodeById(it->second.vnode);
  int64_t error = mac_vnode_check_getextattr(td, &td.proc->cred, vp);
  if (error != kOk) {
    return KERNEL_RET(-error);
  }
  FunctionScope attr_scope(tesla(), td.tesla.get(), Syms().ufs_getextattr,
                           {static_cast<int64_t>(vp->id)});
  Site(td, "mac.fs.extattr", {{0, static_cast<int64_t>(vp->id)}});
  return KERNEL_RET(attr_scope.Return(kOk));
}

// --- watchdog service loop (timed-assertion demo) --------------------------

void Kernel::AdvanceClock(uint64_t ns) {
  if (config_.clock_ns != nullptr) {
    *config_.clock_ns += ns;
  }
}

int64_t Kernel::watchdog_arm(KThread& td) {
  KERNEL_FN(td, watchdog_arm);
  return KERNEL_RET(kOk);
}

int64_t Kernel::watchdog_kick(KThread& td) {
  KERNEL_FN(td, watchdog_kick);
  return KERNEL_RET(kOk);
}

int64_t Kernel::watchdog_pat(KThread& td) {
  KERNEL_FN(td, watchdog_pat);
  return KERNEL_RET(kOk);
}

int64_t Kernel::SysWatchdogService(KThread& td, int kicks) {
  KERNEL_FN(td, watchdog_service);
  watchdog_arm(td);
  // Each device kick costs ~1 ms of (virtual) service time, so the default
  // 4-kick pass finishes well inside the 10 ms SLO and a >8-kick storm
  // trips the rate() guard without also blowing the deadline budget's slack.
  for (int i = 0; i < kicks; i++) {
    AdvanceClock(1'000'000);
    watchdog_kick(td);
  }
  if (config_.bugs.watchdog_slow_service) {
    // The injected latency bug: a retry loop stalls the service thread for
    // 15 ms before the pat. No event is missing and no ordering is wrong —
    // only within_ms() can see this.
    AdvanceClock(15'000'000);
  }
  watchdog_pat(td);
  return KERNEL_RET(kOk);
}

}  // namespace tesla::kernelsim
