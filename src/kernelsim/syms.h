// Pre-interned symbols for every instrumentable kernelsim function and field.
//
// The TESLA instrumenter keys hooks by function name; kernelsim's native
// (compiled-in) instrumentation resolves each name to a Symbol once, at
// start-up, so the hot path never touches the interner.
#ifndef TESLA_KERNELSIM_SYMS_H_
#define TESLA_KERNELSIM_SYMS_H_

#include "support/intern.h"

namespace tesla::kernelsim {

struct KernelSymbols {
  // Syscall layer (the common temporal bound, paper fig. 9).
  Symbol amd64_syscall = InternString("amd64_syscall");

  // VFS / UFS (paper fig. 7).
  Symbol vn_open = InternString("vn_open");
  Symbol vn_close = InternString("vn_close");
  Symbol vn_rdwr = InternString("vn_rdwr");
  Symbol ufs_open = InternString("ufs_open");
  Symbol ufs_close = InternString("ufs_close");
  Symbol ffs_read = InternString("ffs_read");
  Symbol ffs_write = InternString("ffs_write");
  Symbol ufs_readdir = InternString("ufs_readdir");
  Symbol ufs_getextattr = InternString("ufs_getextattr");
  Symbol vop_getacl = InternString("vop_getacl");

  // Sockets (paper figs. 3/4/9).
  Symbol socreate = InternString("socreate");
  Symbol sobind = InternString("sobind");
  Symbol soconnect = InternString("soconnect");
  Symbol sosend = InternString("sosend");
  Symbol soreceive = InternString("soreceive");
  Symbol soo_poll = InternString("soo_poll");
  Symbol sopoll = InternString("sopoll");
  Symbol sopoll_generic = InternString("sopoll_generic");
  Symbol kqueue_register = InternString("kqueue_register");
  Symbol kqueue_scan = InternString("kqueue_scan");

  // Processes.
  Symbol proc_set_cred = InternString("proc_set_cred");
  Symbol do_execve = InternString("do_execve");
  Symbol kern_kldload = InternString("kern_kldload");
  Symbol psignal = InternString("psignal");
  Symbol proc_reap = InternString("proc_reap");
  Symbol proc_fork = InternString("proc_fork");

  // MAC framework hooks (paper §3.5.2).
  Symbol mac_vnode_check_open = InternString("mac_vnode_check_open");
  Symbol mac_vnode_check_read = InternString("mac_vnode_check_read");
  Symbol mac_vnode_check_write = InternString("mac_vnode_check_write");
  Symbol mac_vnode_check_exec = InternString("mac_vnode_check_exec");
  Symbol mac_vnode_check_stat = InternString("mac_vnode_check_stat");
  Symbol mac_vnode_check_readdir = InternString("mac_vnode_check_readdir");
  Symbol mac_vnode_check_getextattr = InternString("mac_vnode_check_getextattr");
  Symbol mac_vnode_check_getacl = InternString("mac_vnode_check_getacl");
  Symbol mac_kld_check_load = InternString("mac_kld_check_load");
  Symbol mac_socket_check_create = InternString("mac_socket_check_create");
  Symbol mac_socket_check_bind = InternString("mac_socket_check_bind");
  Symbol mac_socket_check_connect = InternString("mac_socket_check_connect");
  Symbol mac_socket_check_send = InternString("mac_socket_check_send");
  Symbol mac_socket_check_receive = InternString("mac_socket_check_receive");
  Symbol mac_socket_check_poll = InternString("mac_socket_check_poll");
  Symbol mac_proc_check_signal = InternString("mac_proc_check_signal");
  Symbol mac_proc_check_setuid = InternString("mac_proc_check_setuid");
  Symbol mac_proc_check_debug = InternString("mac_proc_check_debug");
  Symbol mac_proc_check_sched = InternString("mac_proc_check_sched");
  Symbol mac_proc_check_wait = InternString("mac_proc_check_wait");

  // Watchdog service loop (the timed-assertion / SLO demo).
  Symbol watchdog_service = InternString("watchdog_service");
  Symbol watchdog_arm = InternString("watchdog_arm");
  Symbol watchdog_kick = InternString("watchdog_kick");
  Symbol watchdog_pat = InternString("watchdog_pat");

  // Structure fields referenced by field-assignment assertions.
  Symbol p_flag = InternString("p_flag");
  Symbol so_state = InternString("so_state");
  Symbol v_usecount = InternString("v_usecount");
};

const KernelSymbols& Syms();

}  // namespace tesla::kernelsim

#endif  // TESLA_KERNELSIM_SYMS_H_
