// Workload drivers for the kernelsim benchmarks (paper §5.2.2).
//
//  * OpenCloseLoop    — lmbench's `open close` microbenchmark.
//  * OltpTransactions — SysBench OLTP against a memory-backed MySQL:
//                       socket-intensive query/response transactions.
//  * BuildCompile     — a Clang-build-style workload: filesystem traffic plus
//                       user-mode compute between syscalls.
#ifndef TESLA_KERNELSIM_WORKLOADS_H_
#define TESLA_KERNELSIM_WORKLOADS_H_

#include <cstdint>

#include "kernelsim/kernel.h"

namespace tesla::kernelsim {

struct WorkloadResult {
  uint64_t syscalls = 0;
  uint64_t errors = 0;
  uint64_t bytes = 0;
  uint64_t compute_checksum = 0;  // defeats dead-code elimination
};

// Opens and closes /etc/passwd `iterations` times.
WorkloadResult OpenCloseLoop(Kernel& kernel, KThread& td, int iterations);

// Runs `transactions` OLTP-style transactions: each sends a query over a
// socket, polls for the response, receives it, and appends to a journal file
// every few transactions.
WorkloadResult OltpTransactions(Kernel& kernel, KThread& td, int transactions);

// Compiles `files` translation units: read headers, read the source, burn
// `compute_per_file` units of user-mode CPU, write the object file.
WorkloadResult BuildCompile(Kernel& kernel, KThread& td, int files, int compute_per_file);

// Runs `services` watchdog service passes with `kicks_per_service` device
// kicks each, idling ~50 ms of virtual clock between passes. The timed
// kSetTimed assertions watch this loop: the default 4-kick pass is clean,
// >8 kicks per pass trips rate(), and bugs.watchdog_slow_service trips
// within_ms(). Deterministic when the kernel runs on a virtual clock.
WorkloadResult WatchdogDaemon(Kernel& kernel, KThread& td, int services,
                              int kicks_per_service);

}  // namespace tesla::kernelsim

#endif  // TESLA_KERNELSIM_WORKLOADS_H_
