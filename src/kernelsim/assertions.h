// The kernel TESLA assertion suite (paper §3.5.2, table 1).
//
// Assertion sets, matching the paper's table 1 symbols:
//   MF   MAC (filesystem)   25 assertions
//   MS   MAC (sockets)      11
//   MP   MAC (processes)    10
//   M    all MAC            48  (MF + MS + MP + 2 framework-wide assertions)
//   P    process lifetimes  37
//   All  everything         96  (M + P + 11 instrumentation-test assertions)
//
// As in the paper, a large fraction of the suite is *not* exercised by the
// simulated workloads (the paper found 26 of 37 inter-process assertions
// unexercised, 19 of them in the deprecated procfs); those automata register,
// instrument and idle.
#ifndef TESLA_KERNELSIM_ASSERTIONS_H_
#define TESLA_KERNELSIM_ASSERTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "support/result.h"

namespace tesla::kernelsim {

enum AssertionSet : uint32_t {
  kSetNone = 0,
  kSetMacFs = 1u << 0,       // MF
  kSetMacSocket = 1u << 1,   // MS
  kSetMacProc = 1u << 2,     // MP
  kSetMacExtra = 1u << 3,    // the 2 framework-wide MAC assertions
  kSetProc = 1u << 4,        // P
  kSetTest = 1u << 5,        // instrumentation-test assertions
  // Timed SLO assertions (within_ms / rate) over the watchdog service loop.
  // Not part of the paper's 96 — kSetAll keeps the table 1 count — so timed
  // runs opt in with kSetAll | kSetTimed.
  kSetTimed = 1u << 6,
  kSetMac = kSetMacFs | kSetMacSocket | kSetMacProc | kSetMacExtra,  // M
  kSetAll = kSetMac | kSetProc | kSetTest,                           // All
};

// Lowering options carrying the kernel's flag and constant vocabulary
// (IO_NOMACCHECK, P_SUGID, ...).
automata::LowerOptions KernelLowerOptions();

// Builds the manifest for the selected assertion sets.
Result<automata::Manifest> KernelAssertions(uint32_t sets);

// The assertion source texts of one set, as (name, text) pairs — exposed for
// tests and for the table 1 bench.
std::vector<std::pair<std::string, std::string>> KernelAssertionSources(uint32_t sets);

}  // namespace tesla::kernelsim

#endif  // TESLA_KERNELSIM_ASSERTIONS_H_
