#include "kernelsim/witness.h"

#include <deque>

namespace tesla::kernelsim {

LockClassId Witness::RegisterClass(const std::string& name) {
  LockClassId id = static_cast<LockClassId>(names_.size());
  names_.push_back(name);
  for (auto& row : order_) {
    row.push_back(false);
  }
  order_.emplace_back(names_.size(), false);
  return id;
}

bool Witness::EdgeWouldCycle(LockClassId from, LockClassId to) const {
  // Is `from` reachable from `to` in the current order graph? If so, adding
  // to→...→from→to would close a cycle.
  if (from == to) {
    return true;
  }
  std::vector<bool> seen(names_.size(), false);
  std::deque<LockClassId> worklist{to};
  seen[to] = true;
  while (!worklist.empty()) {
    LockClassId node = worklist.front();
    worklist.pop_front();
    for (LockClassId next = 0; next < names_.size(); next++) {
      if (!order_[node][next] || seen[next]) {
        continue;
      }
      if (next == from) {
        return true;
      }
      seen[next] = true;
      worklist.push_back(next);
    }
  }
  return false;
}

bool Witness::Acquire(ThreadLocks& locks, LockClassId cls) {
  bool ok = true;
  for (LockClassId held : locks.held) {
    if (held == cls) {
      continue;  // recursive acquisition of the same class: not an order edge
    }
    if (!order_[held][cls] && EdgeWouldCycle(held, cls)) {
      reversals_++;
      reports_.push_back("lock order reversal: " + names_[cls] + " after " + names_[held]);
      ok = false;
      continue;
    }
    order_[held][cls] = true;
  }
  locks.held.push_back(cls);
  return ok;
}

void Witness::Release(ThreadLocks& locks, LockClassId cls) {
  for (auto it = locks.held.rbegin(); it != locks.held.rend(); ++it) {
    if (*it == cls) {
      locks.held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace tesla::kernelsim
