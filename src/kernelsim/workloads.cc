#include "kernelsim/workloads.h"

namespace tesla::kernelsim {
namespace {

// User-mode compute between syscalls; returns a checksum so the optimiser
// cannot remove it.
uint64_t BurnCompute(int units, uint64_t seed) {  // ~64 xorshift rounds per unit
  uint64_t x = seed | 1;
  for (int i = 0; i < units * 64; i++) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

}  // namespace

WorkloadResult OpenCloseLoop(Kernel& kernel, KThread& td, int iterations) {
  WorkloadResult result;
  for (int i = 0; i < iterations; i++) {
    int64_t fd = kernel.SysOpen(td, "/etc/passwd", kFRead);
    result.syscalls++;
    if (fd < 0) {
      result.errors++;
      continue;
    }
    if (kernel.SysClose(td, fd) != kOk) {
      result.errors++;
    }
    result.syscalls++;
  }
  return result;
}

WorkloadResult OltpTransactions(Kernel& kernel, KThread& td, int transactions) {
  WorkloadResult result;

  int64_t sock = kernel.SysSocket(td);
  result.syscalls++;
  if (sock < 0) {
    result.errors++;
    return result;
  }
  if (kernel.SysConnect(td, sock) != kOk) {
    result.errors++;
  }
  result.syscalls++;

  int64_t journal = kernel.SysOpen(td, "/data/file0", kFRead | kFWrite);
  result.syscalls++;

  for (int i = 0; i < transactions; i++) {
    // Send the query.
    int64_t sent = kernel.SysSend(td, sock, 128);
    result.syscalls++;
    if (sent < 0) {
      result.errors++;
      continue;
    }
    result.bytes += static_cast<uint64_t>(sent);

    // Wait for the response, then read it.
    if (kernel.SysPoll(td, sock, 0x1) < 0) {
      result.errors++;
    }
    result.syscalls++;
    int64_t received = kernel.SysRecv(td, sock, 128);
    result.syscalls++;
    if (received < 0) {
      result.errors++;
    } else {
      result.bytes += static_cast<uint64_t>(received);
    }

    // Commit every fourth transaction to the journal.
    if (journal >= 0 && i % 4 == 3) {
      int64_t written = kernel.SysWrite(td, journal, 512);
      result.syscalls++;
      if (written < 0) {
        result.errors++;
      }
    }
    result.compute_checksum ^= BurnCompute(1, static_cast<uint64_t>(i));
  }

  if (journal >= 0) {
    kernel.SysClose(td, journal);
    result.syscalls++;
  }
  kernel.SysClose(td, sock);
  result.syscalls++;
  return result;
}

WorkloadResult BuildCompile(Kernel& kernel, KThread& td, int files, int compute_per_file) {
  WorkloadResult result;
  for (int i = 0; i < files; i++) {
    // Read a few headers.
    for (int h = 0; h < 3; h++) {
      std::string header = "/data/file" + std::to_string((i + h * 7) % 64);
      int64_t fd = kernel.SysOpen(td, header, kFRead);
      result.syscalls++;
      if (fd < 0) {
        result.errors++;
        continue;
      }
      int64_t got = kernel.SysRead(td, fd, 4096);
      result.syscalls++;
      if (got > 0) {
        result.bytes += static_cast<uint64_t>(got);
      }
      kernel.SysClose(td, fd);
      result.syscalls++;
    }

    // Read the source file.
    std::string source = "/data/file" + std::to_string(i % 64);
    int64_t fd = kernel.SysOpen(td, source, kFRead);
    result.syscalls++;
    if (fd >= 0) {
      int64_t got = kernel.SysRead(td, fd, 16384);
      result.syscalls++;
      if (got > 0) {
        result.bytes += static_cast<uint64_t>(got);
      }
      kernel.SysClose(td, fd);
      result.syscalls++;
    }

    // The compiler itself: user-mode compute dominates a real build.
    result.compute_checksum ^= BurnCompute(compute_per_file, static_cast<uint64_t>(i + 1));

    // Write the object file.
    int64_t out =
        kernel.SysOpen(td, "/obj/file" + std::to_string(i) + ".o", kFWrite | kOCreat);
    result.syscalls++;
    if (out >= 0) {
      if (kernel.SysWrite(td, out, 8192) < 0) {
        result.errors++;
      }
      result.syscalls++;
      kernel.SysClose(td, out);
      result.syscalls++;
    }
  }
  return result;
}

WorkloadResult WatchdogDaemon(Kernel& kernel, KThread& td, int services,
                              int kicks_per_service) {
  WorkloadResult result;
  for (int i = 0; i < services; i++) {
    // The daemon sleeps between passes; the gap keeps each pass's rate()
    // window and within_ms() deadline from straddling the next pass.
    kernel.AdvanceClock(50'000'000);
    if (kernel.SysWatchdogService(td, kicks_per_service) != kOk) {
      result.errors++;
    }
    result.syscalls++;
  }
  return result;
}

}  // namespace tesla::kernelsim
