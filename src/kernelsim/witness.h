// A WITNESS-style lock-order verifier.
//
// The paper's baseline "Debug" kernels enable FreeBSD's WITNESS and
// INVARIANTS options ("up to a 15% slow down in ... macrobenchmarks and up to
// a 3× slowdown in microbenchmarks", §5.2.2). kernelsim reproduces that cost
// with a real lock-order checker: every acquisition records an edge from each
// currently-held lock class to the new one, and a cycle in the resulting
// order graph is reported as a potential deadlock — the same algorithm
// WITNESS uses, at miniature scale.
#ifndef TESLA_KERNELSIM_WITNESS_H_
#define TESLA_KERNELSIM_WITNESS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tesla::kernelsim {

using LockClassId = uint32_t;

class Witness {
 public:
  // Registers a lock class (e.g. "vnode", "socket", "proc").
  LockClassId RegisterClass(const std::string& name);

  // Per-thread lock tracking; the caller passes its held-lock stack.
  struct ThreadLocks {
    std::vector<LockClassId> held;
  };

  // Records an acquisition; returns false (and remembers the report) if the
  // acquisition creates a lock-order reversal.
  bool Acquire(ThreadLocks& locks, LockClassId cls);
  void Release(ThreadLocks& locks, LockClassId cls);

  uint64_t reversals() const { return reversals_; }
  const std::vector<std::string>& reports() const { return reports_; }
  size_t class_count() const { return names_.size(); }

 private:
  bool EdgeWouldCycle(LockClassId from, LockClassId to) const;

  std::vector<std::string> names_;
  // order_[a][b] = true when a has been observed held while acquiring b.
  std::vector<std::vector<bool>> order_;
  uint64_t reversals_ = 0;
  std::vector<std::string> reports_;
};

}  // namespace tesla::kernelsim

#endif  // TESLA_KERNELSIM_WITNESS_H_
