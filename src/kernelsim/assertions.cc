#include "kernelsim/assertions.h"

#include "kernelsim/kernel.h"

namespace tesla::kernelsim {
namespace {

struct Source {
  const char* name;
  const char* text;
};

// --- MF: MAC filesystem assertions (25) -----------------------------------
//
// The first five are exercised by the simulated workloads; the remainder
// cover procfs, ACLs, quotas and extended attributes, mirroring the breadth
// (and the partially-unexercised nature) of the paper's suite.
const Source kMacFs[] = {
    // fig. 7: ufs_open must be preceded by one of the three open-authorising
    // checks, depending on the code path (open / exec / kldload).
    {"mac.fs.open",
     "TESLA_SYSCALL_PREVIOUSLY(mac_kld_check_load(ANY(ptr), vp) == 0"
     " || mac_vnode_check_exec(ANY(ptr), vp) == 0"
     " || mac_vnode_check_open(ANY(ptr), vp, ANY(int)) == 0)"},
    // fig. 7: reads are authorised by an explicit check, exempted by
    // IO_NOMACCHECK, or internal to ufs_readdir.
    {"mac.fs.read",
     "TESLA_SYSCALL(incallstack(ufs_readdir)"
     " || previously(called(vn_rdwr(vp, ANY(int), ANY(int), flags(IO_NOMACCHECK))))"
     " || previously(mac_vnode_check_read(ANY(ptr), ANY(ptr), vp) == 0))"},
    {"mac.fs.write",
     "TESLA_SYSCALL(previously(called(vn_rdwr(vp, ANY(int), ANY(int), flags(IO_NOMACCHECK))))"
     " || previously(mac_vnode_check_write(ANY(ptr), ANY(ptr), vp) == 0))"},
    {"mac.fs.readdir",
     "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_readdir(ANY(ptr), vp) == 0)"},
    {"mac.fs.extattr",
     "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_getextattr(ANY(ptr), vp) == 0)"},
    // Unexercised breadth: stat, ACLs, quota, rename, unlink, procfs nodes...
    {"mac.fs.stat", "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_stat(ANY(ptr), vp) == 0)"},
    {"mac.fs.getacl", "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_getacl(ANY(ptr), vp) == 0)"},
    {"mac.fs.setacl", "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_setacl(ANY(ptr), vp) == 0)"},
    {"mac.fs.setattr", "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_setattr(ANY(ptr), vp) == 0)"},
    {"mac.fs.setextattr",
     "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_setextattr(ANY(ptr), vp) == 0)"},
    {"mac.fs.rename_from",
     "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_rename_from(ANY(ptr), vp) == 0)"},
    {"mac.fs.rename_to",
     "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_rename_to(ANY(ptr), vp) == 0)"},
    {"mac.fs.unlink", "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_unlink(ANY(ptr), vp) == 0)"},
    {"mac.fs.create", "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_create(ANY(ptr), dvp) == 0)"},
    {"mac.fs.link", "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_link(ANY(ptr), vp) == 0)"},
    {"mac.fs.chdir", "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_chdir(ANY(ptr), vp) == 0)"},
    {"mac.fs.chroot", "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_chroot(ANY(ptr), vp) == 0)"},
    {"mac.fs.mmap", "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_mmap(ANY(ptr), vp, ANY(int)) == 0)"},
    {"mac.fs.mprotect",
     "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_mprotect(ANY(ptr), vp, ANY(int)) == 0)"},
    {"mac.fs.truncate",
     "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_truncate(ANY(ptr), ANY(ptr), vp) == 0)"},
    {"mac.fs.revoke", "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_revoke(ANY(ptr), vp) == 0)"},
    {"mac.fs.mount", "TESLA_SYSCALL_PREVIOUSLY(mac_mount_check_stat(ANY(ptr), mp) == 0)"},
    {"mac.fs.quota", "TESLA_SYSCALL_PREVIOUSLY(ufs_quota_check(ANY(ptr), vp) == 0)"},
    {"mac.fs.label_update",
     "TESLA_SYSCALL(eventually(mac_vnode_label_commit(vp) == 0)"
     " || previously(mac_vnode_check_relabel(ANY(ptr), vp) == 0))"},
    {"mac.fs.deleteextattr",
     "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_deleteextattr(ANY(ptr), vp) == 0)"},
};
static_assert(sizeof(kMacFs) / sizeof(kMacFs[0]) == 25, "MF must have 25 assertions");

// --- MS: MAC socket assertions (11) ----------------------------------------
const Source kMacSocket[] = {
    // figs. 4 and 9: the poll check, with the *active* credential, must
    // precede protocol-specific poll work.
    {"mac.socket.poll",
     "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(active_cred, so) == 0)"},
    {"mac.socket.send", "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_send(ANY(ptr), so) == 0)"},
    {"mac.socket.receive",
     "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_receive(ANY(ptr), so) == 0)"},
    {"mac.socket.bind", "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_bind(ANY(ptr), so) == 0)"},
    {"mac.socket.connect",
     "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_connect(ANY(ptr), so) == 0)"},
    // Unexercised in the simulated workloads:
    {"mac.socket.listen", "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_listen(ANY(ptr), so) == 0)"},
    {"mac.socket.accept", "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_accept(ANY(ptr), so) == 0)"},
    {"mac.socket.stat", "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_stat(ANY(ptr), so) == 0)"},
    {"mac.socket.relabel",
     "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_relabel(ANY(ptr), so) == 0)"},
    {"mac.socket.visible",
     "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_visible(ANY(ptr), so) == 0)"},
    {"mac.socket.deliver",
     "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_deliver(so, ANY(ptr)) == 0)"},
};
static_assert(sizeof(kMacSocket) / sizeof(kMacSocket[0]) == 11, "MS must have 11 assertions");

// --- MP: MAC process assertions (10) ---------------------------------------
const Source kMacProc[] = {
    {"proc.signal",
     "TESLA_SYSCALL_PREVIOUSLY(mac_proc_check_signal(ANY(ptr), p, ANY(int)) == 0)"},
    {"proc.setuid", "TESLA_SYSCALL_PREVIOUSLY(mac_proc_check_setuid(ANY(ptr), ANY(int)) == 0)"},
    {"proc.debug", "TESLA_SYSCALL_PREVIOUSLY(mac_proc_check_debug(ANY(ptr), p) == 0)"},
    {"proc.sched", "TESLA_SYSCALL_PREVIOUSLY(mac_proc_check_sched(ANY(ptr), p) == 0)"},
    {"proc.wait", "TESLA_SYSCALL_PREVIOUSLY(mac_proc_check_wait(ANY(ptr), p) == 0)"},
    {"proc.setgid", "TESLA_SYSCALL_PREVIOUSLY(mac_proc_check_setgid(ANY(ptr), ANY(int)) == 0)"},
    {"proc.setgroups", "TESLA_SYSCALL_PREVIOUSLY(mac_proc_check_setgroups(ANY(ptr), p) == 0)"},
    {"proc.setresuid",
     "TESLA_SYSCALL_PREVIOUSLY(mac_proc_check_setresuid(ANY(ptr), ANY(int)) == 0)"},
    {"proc.rlimit", "TESLA_SYSCALL_PREVIOUSLY(mac_proc_check_setrlimit(ANY(ptr), p) == 0)"},
    {"proc.ktrace", "TESLA_SYSCALL_PREVIOUSLY(mac_proc_check_ktrace(ANY(ptr), p) == 0)"},
};
static_assert(sizeof(kMacProc) / sizeof(kMacProc[0]) == 10, "MP must have 10 assertions");

// --- the 2 framework-wide MAC assertions (M = MF + MS + MP + these) --------
const Source kMacExtra[] = {
    {"mac.framework.init",
     "TESLA_WITHIN(mac_policy_register, eventually(mac_policy_attach(ANY(ptr)) == 0))"},
    {"mac.framework.label_alloc",
     "TESLA_SYSCALL(previously(mac_label_alloc(ANY(ptr)) == 0)"
     " || optional(mac_label_free(ANY(ptr))))"},
};
static_assert(sizeof(kMacExtra) / sizeof(kMacExtra[0]) == 2, "M extras must be 2");

// --- P: inter-process / process-lifetime assertions (37) -------------------
//
// One is exercised (proc.sugid — the `eventually` example from §3.5.2); the
// rest mirror the paper's composition: 19 procfs assertions (deprecated
// facility, disabled by default), 5 POSIX real-time scheduling assertions,
// 2 CPUSET assertions, and 10 further lifecycle orderings.
std::vector<Source> ProcSources() {
  std::vector<Source> sources;
  // §3.5.2: "if a process credential is modified, then the P_SUGID process
  // flag must be set".
  sources.push_back(
      {"proc.sugid", "TESLA_SYSCALL(eventually(p.p_flag = flags(P_SUGID)))"});
  sources.push_back(
      {"proc.fork.ordering",
       "TESLA_SYSCALL(TSEQUENCE(proc_fork(ANY(ptr)) == 0, optional(called(proc_reap))))"});
  sources.push_back(
      {"proc.exit.reap",
       "TESLA_WITHIN(proc_exit, eventually(proc_reap(p) == 0))"});
  sources.push_back(
      {"proc.exec.image",
       "TESLA_SYSCALL_PREVIOUSLY(mac_vnode_check_exec(ANY(ptr), vp) == 0)"});
  sources.push_back(
      {"proc.sigacts.hold",
       "TESLA_SYSCALL_PREVIOUSLY(sigacts_hold(p) == 0)"});
  sources.push_back(
      {"proc.cred.hold",
       "TESLA_SYSCALL(TSEQUENCE(crhold(ANY(ptr)), eventually(called(crfree))))"});
  sources.push_back(
      {"proc.pgrp.lock",
       "TESLA_SYSCALL_PREVIOUSLY(pgrp_lock_held(p) == 1)"});
  sources.push_back(
      {"proc.session.leader",
       "TESLA_SYSCALL_PREVIOUSLY(session_leader_check(p) == 0)"});
  sources.push_back(
      {"proc.jail.attach",
       "TESLA_SYSCALL_PREVIOUSLY(prison_check(ANY(ptr), p) == 0)"});
  sources.push_back(
      {"proc.umask.update",
       "TESLA_SYSCALL(eventually(p.p_flag = flags(P_CONTROLT)))"});
  sources.push_back(
      {"proc.ptrace.attach",
       "TESLA_SYSCALL_PREVIOUSLY(mac_proc_check_debug(ANY(ptr), p) == 0)"});
  // 19 procfs assertions (the paper's biggest unexercised block), 5 POSIX
  // real-time scheduling assertions, and 2 CPUSET assertions (added after the
  // inter-process test suite was written, per §3.5.2).
  static std::vector<std::string> storage;
  if (storage.empty()) {
    for (int i = 0; i < 19; i++) {
      storage.push_back("proc.procfs.op" + std::to_string(i));
      storage.push_back("TESLA_SYSCALL_PREVIOUSLY(procfs_check_op" + std::to_string(i) +
                        "(ANY(ptr), p) == 0)");
    }
    for (int i = 0; i < 5; i++) {
      storage.push_back("proc.rtprio.op" + std::to_string(i));
      storage.push_back("TESLA_SYSCALL_PREVIOUSLY(rtp_check_op" + std::to_string(i) +
                        "(ANY(ptr), p) == 0)");
    }
    for (int i = 0; i < 2; i++) {
      storage.push_back("proc.cpuset.op" + std::to_string(i));
      storage.push_back("TESLA_SYSCALL_PREVIOUSLY(cpuset_check_op" + std::to_string(i) +
                        "(ANY(ptr), p) == 0)");
    }
  }
  for (size_t i = 0; i + 1 < storage.size() && sources.size() < 37; i += 2) {
    sources.push_back({storage[i].c_str(), storage[i + 1].c_str()});
  }
  return sources;
}

// --- instrumentation-test assertions (11; part of "Infrastructure") --------
std::vector<Source> TestSources() {
  static std::vector<std::string> storage;
  std::vector<Source> sources;
  if (storage.empty()) {
    for (int i = 0; i < 11; i++) {
      storage.push_back("tesla.test" + std::to_string(i));
      storage.push_back("TESLA_SYSCALL_PREVIOUSLY(tesla_selftest" + std::to_string(i) +
                        "(ANY(int)) == 0)");
    }
  }
  for (size_t i = 0; i + 1 < storage.size(); i += 2) {
    sources.push_back({storage[i].c_str(), storage[i + 1].c_str()});
  }
  return sources;
}

// --- timed SLO assertions (within_ms / rate; opt-in, not in the 96) --------
const Source kTimed[] = {
    // The watchdog SLO: once the service loop arms the watchdog it must pat
    // it within 10 ms (virtual clock) or the device resets the machine.
    {"watchdog.latency",
     "TESLA_WITHIN(watchdog_service, within_ms(10, TSEQUENCE(called(watchdog_arm),"
     " called(watchdog_pat))))"},
    // Kick-storm guard: more than 8 device kicks inside one 10 ms window
    // means an interrupt storm, not a healthy service pass.
    {"watchdog.kick_storm",
     "TESLA_WITHIN(watchdog_service, rate(8, per_ms(10),"
     " ATLEAST(1, called(watchdog_kick))))"},
};

}  // namespace

automata::LowerOptions KernelLowerOptions() {
  automata::LowerOptions options;
  options.flags["IO_NOMACCHECK"] = kIoNoMacCheck;
  options.flags["P_SUGID"] = 0x100;
  options.flags["P_CONTROLT"] = 0x200;
  options.flags["FREAD"] = 0x1;
  options.flags["FWRITE"] = 0x2;
  return options;
}

std::vector<std::pair<std::string, std::string>> KernelAssertionSources(uint32_t sets) {
  std::vector<std::pair<std::string, std::string>> sources;
  auto add = [&sources](const Source& source) {
    sources.emplace_back(source.name, source.text);
  };
  if (sets & kSetMacFs) {
    for (const Source& source : kMacFs) add(source);
  }
  if (sets & kSetMacSocket) {
    for (const Source& source : kMacSocket) add(source);
  }
  if (sets & kSetMacProc) {
    for (const Source& source : kMacProc) add(source);
  }
  if (sets & kSetMacExtra) {
    for (const Source& source : kMacExtra) add(source);
  }
  if (sets & kSetProc) {
    for (const Source& source : ProcSources()) add(source);
  }
  if (sets & kSetTest) {
    for (const Source& source : TestSources()) add(source);
  }
  if (sets & kSetTimed) {
    for (const Source& source : kTimed) add(source);
  }
  return sources;
}

Result<automata::Manifest> KernelAssertions(uint32_t sets) {
  automata::LowerOptions lower = KernelLowerOptions();
  automata::Manifest manifest;
  for (const auto& [name, text] : KernelAssertionSources(sets)) {
    auto automaton = automata::CompileAssertion(text, lower, name, "amd64_syscall");
    if (!automaton.ok()) {
      return Error{"assertion '" + name + "': " + automaton.error().ToString()};
    }
    manifest.Add(std::move(automaton.value()));
  }
  return manifest;
}

}  // namespace tesla::kernelsim
