// kernelsim: a miniature FreeBSD-like kernel substrate.
//
// This is the simulator the paper's §3.5.2 / §5.2 experiments run against in
// our reproduction: a syscall layer (amd64_syscall bounds every TESLA kernel
// assertion), a VFS with UFS-style vnode operations, sockets reached through
// fig. 3's protosw function-pointer indirection, process credentials, and the
// MAC framework whose hooks the assertions reference.
//
// The three bugs TESLA found in the paper are injected behind BugConfig
// flags:
//  * kqueue-based polling skips mac_socket_check_poll (found via MS
//    assertions);
//  * one dynamic call graph passes the cached file credential where the
//    active thread credential is required;
//  * a credential-changing path fails to set P_SUGID (found via an
//    `eventually` assertion).
#ifndef TESLA_KERNELSIM_KERNEL_H_
#define TESLA_KERNELSIM_KERNEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernelsim/syms.h"
#include "kernelsim/witness.h"
#include "runtime/runtime.h"
#include "runtime/scope.h"

namespace tesla::kernelsim {

// Errno values (positive, FreeBSD-style returns).
inline constexpr int64_t kOk = 0;
inline constexpr int64_t kEperm = 1;
inline constexpr int64_t kEnoent = 2;
inline constexpr int64_t kEbadf = 9;
inline constexpr int64_t kEinval = 22;
inline constexpr int64_t kEmfile = 24;

// Open / I/O flags (fig. 7's IO_NOMACCHECK among them).
inline constexpr uint64_t kFRead = 0x1;
inline constexpr uint64_t kFWrite = 0x2;
inline constexpr uint64_t kOCreat = 0x4;
inline constexpr uint64_t kIoNoMacCheck = 0x10;

// Process flags.
inline constexpr uint64_t kPSugid = 0x100;

struct Ucred {
  int64_t uid = 0;
  int64_t label = 0;  // MAC label; checks compare subject/object labels
  uint64_t id = 0;    // unique identity (what assertions bind)
};

struct Vnode {
  uint64_t id = 0;
  std::string name;
  int64_t label = 0;
  int64_t size = 0;
  int64_t v_usecount = 0;
  bool is_dir = false;
  bool is_executable = false;
  std::vector<uint64_t> children;  // vnode ids, for directories
};

struct Socket;

// fig. 3: struct pr_usrreqs { int (*pru_sopoll)(struct socket *, ...); }
struct PrUsrreqs {
  int64_t (*pru_sopoll)(struct Kernel&, struct KThread&, Socket&, int64_t events,
                        Ucred* active_cred) = nullptr;
  int64_t (*pru_sosend)(struct Kernel&, struct KThread&, Socket&, int64_t bytes) = nullptr;
  int64_t (*pru_soreceive)(struct Kernel&, struct KThread&, Socket&, int64_t bytes) = nullptr;
};

struct Protosw {
  std::string name;
  PrUsrreqs* pr_usrreqs = nullptr;
};

struct Socket {
  uint64_t id = 0;
  Protosw* so_proto = nullptr;
  int64_t label = 0;
  int64_t so_state = 0;
  int64_t buffered = 0;  // bytes queued for receive
};

// One open-file description; f_cred is the credential that *created* the
// file — the wrong-credential bug passes it where active_cred belongs.
struct File {
  enum class Kind { kVnode, kSocket };
  Kind kind = Kind::kVnode;
  uint64_t vnode = 0;
  uint64_t socket = 0;
  uint64_t flags = 0;
  Ucred f_cred;
};

struct Proc {
  int64_t pid = 0;
  Ucred cred;
  int64_t p_flag = 0;
  std::map<int64_t, File> fds;
  int64_t next_fd = 3;
};

// A kernel thread: owns the TESLA per-thread event context and the witness
// lock stack.
struct KThread {
  explicit KThread(runtime::Runtime* rt, Proc* process)
      : proc(process), tesla(rt != nullptr ? std::make_unique<runtime::ThreadContext>(*rt)
                                           : nullptr) {}
  Proc* proc;
  std::unique_ptr<runtime::ThreadContext> tesla;
  Witness::ThreadLocks locks;
};

struct BugConfig {
  bool kqueue_missing_mac_check = false;   // §3.5.2 bug 1
  bool poll_uses_file_credential = false;  // §3.5.2 bug 2
  bool setuid_skips_sugid_flag = false;    // §3.5.2 bug 3 (eventually-check)
  // Timed-assertion demo: a slow path stalls the watchdog service loop past
  // its 10 ms SLO between arm and pat (caught by within_ms, not by any
  // ordering assertion — every event still happens, just too late).
  bool watchdog_slow_service = false;
};

struct KernelConfig {
  // Instrumentation: null → a "Release" kernel with no TESLA hooks compiled
  // in. Non-null with an empty manifest → the paper's "Infrastructure"
  // configuration (hooks fire, no automata listen).
  runtime::Runtime* tesla = nullptr;

  // WITNESS/INVARIANTS-style debug checking (the paper's "Debug" baseline).
  bool debug_checks = false;

  // Virtual clock (nanoseconds) for deterministic timed-assertion runs: the
  // kernel advances it as simulated work happens, and the caller wires the
  // same variable into RuntimeOptions::now_ns so every TESLA event is
  // stamped from it. Null: the kernel does no clock accounting and timed
  // clauses (if registered) read the real steady clock.
  uint64_t* clock_ns = nullptr;

  BugConfig bugs;
};

class Kernel {
 public:
  explicit Kernel(KernelConfig config);

  // --- process management ---
  Proc* NewProcess(int64_t uid);
  KThread NewThread(Proc* proc) { return KThread(config_.tesla, proc); }

  // --- system calls (each dispatches through amd64_syscall) ---
  int64_t SysOpen(KThread& td, const std::string& path, uint64_t flags);
  int64_t SysClose(KThread& td, int64_t fd);
  int64_t SysRead(KThread& td, int64_t fd, int64_t bytes);
  int64_t SysWrite(KThread& td, int64_t fd, int64_t bytes);
  int64_t SysReaddir(KThread& td, int64_t fd);
  int64_t SysSocket(KThread& td);
  int64_t SysBind(KThread& td, int64_t fd);
  int64_t SysConnect(KThread& td, int64_t fd);
  int64_t SysSend(KThread& td, int64_t fd, int64_t bytes);
  int64_t SysRecv(KThread& td, int64_t fd, int64_t bytes);
  int64_t SysPoll(KThread& td, int64_t fd, int64_t events);
  int64_t SysSelect(KThread& td, int64_t fd, int64_t events);
  // kqueue-style event polling: the buggy path from §3.5.2.
  int64_t SysKevent(KThread& td, int64_t fd, int64_t events);
  int64_t SysSetuid(KThread& td, int64_t uid);
  int64_t SysExecve(KThread& td, const std::string& path);
  int64_t SysKldload(KThread& td, const std::string& path);
  int64_t SysKill(KThread& td, int64_t pid, int64_t signal);
  int64_t SysGetExtAttr(KThread& td, int64_t fd);
  // One watchdog service pass: arm, `kicks` device kicks (~1 ms of virtual
  // time each), pat. With bugs.watchdog_slow_service the loop stalls 15 ms
  // before the pat — past the 10 ms SLO the kSetTimed assertions enforce.
  int64_t SysWatchdogService(KThread& td, int kicks);

  // Advances the virtual clock (no-op without KernelConfig::clock_ns).
  void AdvanceClock(uint64_t ns);

  // --- MAC framework (mechanism/policy split; hooks are instrumented) ---
  int64_t mac_vnode_check_open(KThread& td, Ucred* cred, Vnode* vp, uint64_t accmode);
  int64_t mac_vnode_check_read(KThread& td, Ucred* active_cred, Ucred* file_cred, Vnode* vp);
  int64_t mac_vnode_check_write(KThread& td, Ucred* active_cred, Ucred* file_cred, Vnode* vp);
  int64_t mac_vnode_check_exec(KThread& td, Ucred* cred, Vnode* vp);
  int64_t mac_vnode_check_readdir(KThread& td, Ucred* cred, Vnode* vp);
  int64_t mac_vnode_check_getextattr(KThread& td, Ucred* cred, Vnode* vp);
  int64_t mac_kld_check_load(KThread& td, Ucred* cred, Vnode* vp);
  int64_t mac_socket_check_create(KThread& td, Ucred* cred);
  int64_t mac_socket_check_bind(KThread& td, Ucred* cred, Socket* so);
  int64_t mac_socket_check_connect(KThread& td, Ucred* cred, Socket* so);
  int64_t mac_socket_check_send(KThread& td, Ucred* cred, Socket* so);
  int64_t mac_socket_check_receive(KThread& td, Ucred* cred, Socket* so);
  int64_t mac_socket_check_poll(KThread& td, Ucred* active_cred, Socket* so);
  int64_t mac_proc_check_signal(KThread& td, Ucred* cred, Proc* target, int64_t signal);
  int64_t mac_proc_check_setuid(KThread& td, Ucred* cred, int64_t uid);

  // --- internals reachable from multiple layers (instrumented) ---
  int64_t vn_rdwr(KThread& td, Vnode* vp, bool write, int64_t bytes, uint64_t flags);
  int64_t ufs_readdir(KThread& td, Vnode* vp);
  int64_t proc_set_cred(KThread& td, Proc* proc, int64_t uid);
  int64_t watchdog_arm(KThread& td);
  int64_t watchdog_kick(KThread& td);
  int64_t watchdog_pat(KThread& td);

  Witness& witness() { return witness_; }
  const KernelConfig& config() const { return config_; }
  runtime::Runtime* tesla() { return config_.tesla; }

  Vnode* VnodeById(uint64_t id);
  Socket* SocketById(uint64_t id);
  Vnode* Lookup(const std::string& path);
  Proc* ProcByPid(int64_t pid);

  uint64_t mac_checks_performed() const { return mac_checks_; }
  uint64_t debug_work() const { return debug_work_; }

  // Fires the named TESLA assertion site (resolved once, cached).
  void Site(KThread& td, const std::string& name, std::initializer_list<runtime::Binding> b);

 private:
  // Debug-kernel work: witness bookkeeping plus INVARIANTS-style structure
  // walks, charged on every lock operation.
  void LockAcquire(KThread& td, LockClassId cls);
  void LockRelease(KThread& td, LockClassId cls);
  void RunInvariantChecks(KThread& td);

  int64_t OpenCommon(KThread& td, const std::string& path, uint64_t flags);
  int64_t ufs_open(KThread& td, Vnode* vp, Ucred* cred, uint64_t flags, uint64_t site_mode);
  int64_t ffs_read(KThread& td, Vnode* vp, Ucred* active_cred, Ucred* file_cred, int64_t bytes,
                   uint64_t flags);
  int64_t ffs_write(KThread& td, Vnode* vp, Ucred* active_cred, Ucred* file_cred, int64_t bytes);
  int64_t soo_poll(KThread& td, File& fp, int64_t events, Ucred* active_cred);
  int64_t sopoll(KThread& td, Socket& so, int64_t events, Ucred* cred);

  static int64_t SopollGenericThunk(Kernel& k, KThread& td, Socket& so, int64_t events,
                                    Ucred* active_cred);
  static int64_t SosendGenericThunk(Kernel& k, KThread& td, Socket& so, int64_t bytes);
  static int64_t SoreceiveGenericThunk(Kernel& k, KThread& td, Socket& so, int64_t bytes);
  int64_t sopoll_generic(KThread& td, Socket& so, int64_t events, Ucred* active_cred);
  int64_t sosend_generic(KThread& td, Socket& so, int64_t bytes);
  int64_t soreceive_generic(KThread& td, Socket& so, int64_t bytes);

  int64_t MacCheckCommon(Ucred* cred, int64_t object_label);

  KernelConfig config_;
  Witness witness_;
  LockClassId vnode_lock_ = 0;
  LockClassId socket_lock_ = 0;
  LockClassId proc_lock_ = 0;
  LockClassId mac_lock_ = 0;

  std::vector<std::unique_ptr<Proc>> procs_;
  std::vector<std::unique_ptr<Vnode>> vnodes_;
  std::vector<std::unique_ptr<Socket>> sockets_;
  std::map<std::string, uint64_t> namecache_;

  PrUsrreqs generic_usrreqs_;
  Protosw tcp_proto_;

  std::map<std::string, int> site_cache_;
  uint64_t mac_checks_ = 0;
  uint64_t debug_work_ = 0;
  int64_t next_pid_ = 1;
  uint64_t next_cred_id_ = 1;
};

}  // namespace tesla::kernelsim

#endif  // TESLA_KERNELSIM_KERNEL_H_
