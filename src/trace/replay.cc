#include "trace/replay.h"

#include <map>
#include <memory>
#include <span>

#include "support/intern.h"
#include "trace/origins.h"

namespace tesla::trace {
namespace {

class ViolationCollector : public runtime::EventHandler {
 public:
  void OnViolation(const runtime::ClassInfo& cls,
                   const runtime::Violation& violation) override {
    violations_.emplace_back(violation.kind, violation.automaton);
  }

  std::vector<std::pair<runtime::ViolationKind, std::string>> take() {
    return std::move(violations_);
  }

 private:
  std::vector<std::pair<runtime::ViolationKind, std::string>> violations_;
};

}  // namespace

Status WriteCapture(const std::string& path, const std::string& origin,
                    const runtime::Runtime& rt) {
  const Recorder* recorder = rt.recorder();
  if (recorder == nullptr || recorder->mode() != TraceMode::kFullCapture) {
    return Error{"writing a capture requires trace_mode = full-capture"};
  }
  const Snapshot snapshot = recorder->Harvest();

  CaptureOptions options;
  const runtime::RuntimeOptions& ro = rt.options();
  options.lazy_init = ro.lazy_init;
  options.use_dfa = ro.use_dfa;
  options.instance_index = ro.instance_index;
  options.instances_per_context = ro.instances_per_context;
  options.global_shards = ro.global_shards;

  TraceWriter writer;
  // Embedding the registered manifest makes the capture self-describing:
  // replay prefers it over resolving `origin`, so the file replays on any
  // machine — including user assertion sets no build ships a manifest for.
  if (Status status = writer.Open(path, origin, options, GlobalInterner(), rt.ManifestText());
      !status.ok()) {
    return status;
  }
  for (const TraceRecord& record : snapshot.records) {
    writer.Append(record);
  }
  SemanticSummary summary;
  summary.dropped = snapshot.dropped;
  summary.stats = rt.stats();
  summary.violations = rt.violation_log();
  if (rt.collector() != nullptr) {
    summary.has_metrics = true;
    summary.metrics = rt.CollectMetrics();
  }
  if (rt.profile_collector() != nullptr) {
    summary.has_profile = true;
    summary.profile = rt.CollectProfile();
  }
  return writer.Finish(summary);
}

runtime::RuntimeOptions ReplayOptions(const TraceFile& file) {
  runtime::RuntimeOptions options;
  options.lazy_init = file.options.lazy_init;
  options.use_dfa = file.options.use_dfa;
  options.instance_index = file.options.instance_index;
  options.instances_per_context = static_cast<size_t>(file.options.instances_per_context);
  options.global_shards = static_cast<size_t>(file.options.global_shards);
  options.fail_stop = false;
  options.trace_mode = TraceMode::kOff;
  // A capture with an embedded metrics footer is replayed with counters on
  // so per-class counters and transition coverage can be diffed. Histograms
  // stay off — they time the replayer, not the original run.
  options.metrics_mode = file.summary.has_metrics ? metrics::MetricsMode::kCounters
                                                  : metrics::MetricsMode::kOff;
  // Likewise, a capture with an embedded profile section is replayed with
  // profiling on so the deterministic cells can be diffed.
  options.profile = file.summary.has_profile;
  return options;
}

Result<ReplayResult> Replay(const TraceFile& file, runtime::Runtime& rt) {
  ViolationCollector collector;
  rt.AddHandler(&collector);

  // One replay context per capture context, fed in global sequence order and
  // batched by runs of the same context — the batch path (OnEvents) is both
  // the fast path and the code under differential test here.
  std::map<uint32_t, std::unique_ptr<runtime::ThreadContext>> contexts;
  std::vector<runtime::Event> batch;
  ReplayResult result;
  size_t i = 0;
  while (i < file.records.size()) {
    const uint32_t ctx_id = file.records[i].ctx;
    batch.clear();
    while (i < file.records.size() && file.records[i].ctx == ctx_id) {
      batch.push_back(ToEvent(file.records[i]));
      i++;
    }
    std::unique_ptr<runtime::ThreadContext>& ctx = contexts[ctx_id];
    if (ctx == nullptr) {
      ctx = std::make_unique<runtime::ThreadContext>(rt);
    }
    rt.OnEvents(*ctx, std::span<const runtime::Event>(batch.data(), batch.size()));
    result.events_replayed += batch.size();
  }
  contexts.clear();

  result.stats = rt.stats();
  result.violations = collector.take();
  result.matched = true;
  if (file.summary.dropped > 0) {
    result.matched = false;
    result.divergence += "capture dropped " + std::to_string(file.summary.dropped) +
                         " records; the replayed history is incomplete\n";
  }
  for (const StatsField& field : kStatsFields) {
    if (!field.replay_compared) {
      continue;  // ingestion-side / wall-clock counters; see options.h
    }
    const uint64_t want = file.summary.stats.*field.field;
    const uint64_t got = result.stats.*field.field;
    if (want != got) {
      result.matched = false;
      result.divergence += std::string(field.name) + ": capture " + std::to_string(want) +
                           " vs replay " + std::to_string(got) + "\n";
    }
  }
  if (file.summary.has_metrics && rt.collector() != nullptr) {
    result.metrics = rt.CollectMetrics();
    const metrics::Snapshot& want = file.summary.metrics;
    if (want.classes.size() != result.metrics.classes.size()) {
      result.matched = false;
      result.divergence += "metrics class count: capture " +
                           std::to_string(want.classes.size()) + " vs replay " +
                           std::to_string(result.metrics.classes.size()) + "\n";
    } else {
      for (size_t c = 0; c < want.classes.size(); c++) {
        const metrics::ClassSnapshot& a = want.classes[c];
        const metrics::ClassSnapshot& b = result.metrics.classes[c];
        for (size_t k = 0; k < metrics::kClassCounterCount; k++) {
          if (a.counters[k] != b.counters[k]) {
            result.matched = false;
            result.divergence += "metrics " + a.name + "." +
                                 metrics::kClassCounterNames[k] + ": capture " +
                                 std::to_string(a.counters[k]) + " vs replay " +
                                 std::to_string(b.counters[k]) + "\n";
          }
        }
        if (a.transitions.size() != b.transitions.size()) {
          result.matched = false;
          result.divergence += "metrics " + a.name + " coverage grid: capture " +
                               std::to_string(a.transitions.size()) + " vs replay " +
                               std::to_string(b.transitions.size()) + " transitions\n";
          continue;
        }
        for (size_t t = 0; t < a.transitions.size(); t++) {
          if (a.transitions[t].fired != b.transitions[t].fired) {
            result.matched = false;
            result.divergence += "coverage " + a.name + " [" +
                                 a.transitions[t].description + "]: capture " +
                                 (a.transitions[t].fired ? "fired" : "never") +
                                 " vs replay " +
                                 (b.transitions[t].fired ? "fired" : "never") + "\n";
          }
        }
      }
    }
  }

  if (file.summary.has_profile && rt.profile_collector() != nullptr) {
    result.profile = rt.CollectProfile();
    const profile::Snapshot& want = file.summary.profile;
    if (want.classes.size() != result.profile.classes.size()) {
      result.matched = false;
      result.divergence += "profile class count: capture " +
                           std::to_string(want.classes.size()) + " vs replay " +
                           std::to_string(result.profile.classes.size()) + "\n";
    } else {
      for (size_t c = 0; c < want.classes.size(); c++) {
        const profile::ClassProfile& a = want.classes[c];
        const profile::ClassProfile& b = result.profile.classes[c];
        for (size_t i = 0; i < profile::kCellCount; i++) {
          if (!profile::kCellDeterministic[i]) {
            continue;  // latency cells time the replayer, not the capture
          }
          if (a.cells[i] != b.cells[i]) {
            result.matched = false;
            result.divergence += "profile " + a.name + "." + profile::kCellNames[i] +
                                 ": capture " + std::to_string(a.cells[i]) +
                                 " vs replay " + std::to_string(b.cells[i]) + "\n";
          }
        }
        for (size_t p = 0; p < profile::kMaxKeyVars; p++) {
          if (a.var_partial[p] != b.var_partial[p]) {
            result.matched = false;
            result.divergence += "profile " + a.name + " partial[" + std::to_string(p) +
                                 "]: capture " + std::to_string(a.var_partial[p]) +
                                 " vs replay " + std::to_string(b.var_partial[p]) + "\n";
          }
          for (size_t w = 0; w < profile::kSketchWords; w++) {
            if (a.sketch[p][w] != b.sketch[p][w]) {
              result.matched = false;
              result.divergence += "profile " + a.name + " sketch[" + std::to_string(p) +
                                   "] diverges\n";
              break;
            }
          }
        }
      }
    }
  }

  if (file.summary.violations.size() != result.violations.size()) {
    result.matched = false;
    result.divergence += "violation count: capture " +
                         std::to_string(file.summary.violations.size()) + " vs replay " +
                         std::to_string(result.violations.size()) + "\n";
  } else {
    for (size_t v = 0; v < result.violations.size(); v++) {
      if (file.summary.violations[v] != result.violations[v]) {
        result.matched = false;
        result.divergence += "violation #" + std::to_string(v) + ": capture (" +
                             std::string(runtime::ViolationKindName(
                                 file.summary.violations[v].first)) +
                             ", " + file.summary.violations[v].second + ") vs replay (" +
                             std::string(runtime::ViolationKindName(
                                 result.violations[v].first)) +
                             ", " + result.violations[v].second + ")\n";
      }
    }
  }
  return result;
}

Result<ReplayResult> ReplayFile(const std::string& path) {
  Result<TraceFile> read = TraceFile::Read(path);
  if (!read.ok()) {
    return read.error();
  }
  TraceFile file = std::move(read.value());
  // v4 captures are self-describing: the embedded manifest wins, so the
  // origin string is informational and replay needs no built-in manifest.
  // Older captures (or writers that embedded nothing) fall back to origin
  // resolution — including the file:<path> form.
  Result<automata::Manifest> manifest =
      file.manifest_text.empty() ? ManifestForOrigin(file.origin)
                                 : automata::Manifest::Deserialize(file.manifest_text);
  if (!manifest.ok()) {
    return manifest.error();
  }
  file.InternAndRemap();
  runtime::Runtime rt(ReplayOptions(file));
  if (Status status = rt.Register(manifest.value()); !status.ok()) {
    return status.error();
  }
  return Replay(file, rt);
}

}  // namespace tesla::trace
