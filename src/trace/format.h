// The binary trace-capture format (versioned, self-describing, compact).
//
// A capture file turns a recorded run into a deterministic repro and a bench
// input: it carries everything a fresh process needs to replay the event
// stream through a fresh Runtime and check that the semantics agree.
//
// Layout (all integers varint/LEB128, signed values zigzag-encoded):
//
//   magic "TSLATRC1" (8 bytes)        version gate: the '1' is the version
//   origin   string                   e.g. "kernelsim:all" — names the
//                                     manifest a replayer must register
//   options                           the semantics-bearing RuntimeOptions:
//     flags byte (lazy_init | use_dfa<<1 | instance_index<<2)
//     instances_per_context, global_shards
//   symbols  count, then count strings   the capture process's interner
//                                     table; record targets index into it
//   records  per record: kind byte (0xFF terminates the stream),
//     flags byte, ctx, seq delta (vs previous record), target, count,
//     count zigzag values, count vars (sites only),
//     zigzag return_value (returns only)
//   footer   dropped, the 14 RuntimeStats fields in declaration order,
//     violation count, then (kind byte, automaton-name string) each
//
// Strings are varint length + bytes. Seq deltas are non-negative because the
// writer is handed a sequence-sorted snapshot.
#ifndef TESLA_TRACE_FORMAT_H_
#define TESLA_TRACE_FORMAT_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "runtime/options.h"
#include "support/intern.h"
#include "support/result.h"
#include "trace/record.h"

namespace tesla::trace {

inline constexpr char kTraceMagic[8] = {'T', 'S', 'L', 'A', 'T', 'R', 'C', '1'};
inline constexpr uint32_t kTraceVersion = 1;

// The footer's RuntimeStats fields, in declaration order. The writer, the
// reader, the replay comparator and the CLI's stats dump all walk this one
// table, so the wire schema and every consumer move together.
struct StatsField {
  const char* name;
  uint64_t runtime::RuntimeStats::* field;
};

inline constexpr StatsField kStatsFields[] = {
    {"events", &runtime::RuntimeStats::events},
    {"bound_entries", &runtime::RuntimeStats::bound_entries},
    {"bound_exits", &runtime::RuntimeStats::bound_exits},
    {"instances_created", &runtime::RuntimeStats::instances_created},
    {"instances_cloned", &runtime::RuntimeStats::instances_cloned},
    {"transitions", &runtime::RuntimeStats::transitions},
    {"accepts", &runtime::RuntimeStats::accepts},
    {"violations", &runtime::RuntimeStats::violations},
    {"overflows", &runtime::RuntimeStats::overflows},
    {"ignored_events", &runtime::RuntimeStats::ignored_events},
    {"arg_truncations", &runtime::RuntimeStats::arg_truncations},
    {"index_probes", &runtime::RuntimeStats::index_probes},
    {"index_scans", &runtime::RuntimeStats::index_scans},
    {"site_variant_truncations", &runtime::RuntimeStats::site_variant_truncations},
};

// The subset of RuntimeOptions that changes replay semantics.
struct CaptureOptions {
  bool lazy_init = true;
  bool use_dfa = false;
  bool instance_index = true;
  uint64_t instances_per_context = 256;
  uint64_t global_shards = 8;
};

// What the original run observed; replay must reproduce it event for event.
struct SemanticSummary {
  uint64_t dropped = 0;  // capture-side drops (nonzero ⇒ replay may diverge)
  runtime::RuntimeStats stats;
  std::vector<std::pair<runtime::ViolationKind, std::string>> violations;
};

class TraceWriter {
 public:
  TraceWriter() = default;
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // Writes the header, including the interner's current table.
  Status Open(const std::string& path, const std::string& origin,
              const CaptureOptions& options, const StringInterner& interner);

  void Append(const TraceRecord& record);

  // Writes the end marker and footer, and closes the file.
  Status Finish(const SemanticSummary& summary);

 private:
  std::FILE* out_ = nullptr;
  uint64_t prev_seq_ = 0;
  std::vector<uint8_t> buffer_;
};

// A fully parsed capture.
struct TraceFile {
  uint32_t version = 0;
  std::string origin;
  CaptureOptions options;
  std::vector<std::string> symbols;  // index = symbol id in the capture process
  std::vector<TraceRecord> records;
  SemanticSummary summary;

  static Result<TraceFile> Read(const std::string& path);

  // Interns every embedded symbol into this process's interner and rewrites
  // record targets accordingly. Must run before Runtime::Register() so the
  // replaying dispatch plan covers every recorded symbol.
  void InternAndRemap();
};

}  // namespace tesla::trace

#endif  // TESLA_TRACE_FORMAT_H_
