// The binary trace-capture format (versioned, self-describing, compact).
//
// A capture file turns a recorded run into a deterministic repro and a bench
// input: it carries everything a fresh process needs to replay the event
// stream through a fresh Runtime and check that the semantics agree.
//
// Layout (all integers varint/LEB128, signed values zigzag-encoded):
//
//   magic "TSLATRC6" (8 bytes)        version gate: the trailing digit is
//                                     the version (v1–v5 files are still
//                                     read; v1 carries no metrics section,
//                                     v1/v2 carry the legacy 14-field
//                                     stats footer, v1–v3 have no embedded
//                                     manifest, v1–v4 have no profile
//                                     section, and v1–v5 carry no record
//                                     timestamps or timestamp footer)
//   origin   string                   e.g. "kernelsim:all" — names the
//                                     manifest a replayer must register
//   options                           the semantics-bearing RuntimeOptions:
//     flags byte (lazy_init | use_dfa<<1 | instance_index<<2)
//     instances_per_context, global_shards
//   manifest string (v4)              the registered manifest, serialised in
//     the .tesla text format (automata/manifest.h), in registration order —
//     so assertion-site targets (automaton ids) resolve by position. Makes
//     the capture *self-describing*: a replayer prefers this over resolving
//     the origin, so user assertion sets replay on machines with no
//     built-in manifest. Empty when the writer had none to embed.
//   symbols  count, then count strings   the capture process's interner
//                                     table; record targets index into it
//   records  per record: kind byte (0xFF terminates the stream),
//     flags byte, ctx, seq delta (vs previous record), zigzag ts delta
//     (v6; vs previous record — signed because contexts interleave),
//     target, count, count zigzag values, count vars (sites only),
//     zigzag return_value (returns only)
//   footer   dropped, the RuntimeStats field count (v3+; v1/v2 have no
//     count and carry exactly kLegacyFooterStatsFields fields), the
//     RuntimeStats fields in declaration order, violation count, then
//     (kind byte, automaton-name string) each
//   metrics  (v2) presence byte; when 1: mode byte, class count, then per
//     class: name string, the per-class counters in TESLA_CLASS_COUNTERS
//     order, transition count, then per statically-valid transition:
//     state, symbol, fired byte, description string. In kFull mode, per
//     event kind: sample count, ns sum, occupied-bucket count, then
//     (bucket index, count) pairs. Descriptions are embedded so a coverage
//     report needs no origin-manifest resolution, and replays can diff
//     coverage bit for bit.
//   profile  (v5) presence byte; when 1: pool capacity, pool high-water,
//     class count, then per class: name string, tracked-key-var count and
//     the variable ids, a self-describing cell count followed by the cells
//     in TESLA_PROFILE_CELLS order (a reader discards cells a newer writer
//     appended; cells the capture predates stay zero), kMaxKeyVars
//     partial-binding counters, then kMaxKeyVars × kSketchWords sketch
//     words. The section is the workload profile `tesla-trace profile`
//     renders and `--hints-out` compiles into PlanHints.
//   timestamps (v6) presence byte; when 1 (some record carried a nonzero
//     timestamp): a self-describing field count, then the fields — base
//     (first nonzero) timestamp, last timestamp. Same append policy as the
//     stats footer: a reader discards fields a newer writer appended. The
//     section lets `tesla-trace` report the capture's clock domain span
//     without scanning records, and anchors replayed deadline arithmetic.
//
// Strings are varint length + bytes. Seq deltas are non-negative because the
// writer is handed a sequence-sorted snapshot.
#ifndef TESLA_TRACE_FORMAT_H_
#define TESLA_TRACE_FORMAT_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "metrics/snapshot.h"
#include "profile/snapshot.h"
#include "runtime/options.h"
#include "support/intern.h"
#include "support/result.h"
#include "trace/record.h"

namespace tesla::trace {

inline constexpr char kTraceMagic[8] = {'T', 'S', 'L', 'A', 'T', 'R', 'C', '6'};
inline constexpr uint32_t kTraceVersion = 6;

// Machine-readable Error::code values (support/result.h) attached by the
// trace readers and origin resolver, so callers — the tesla-trace CLI in
// particular — can map failure *classes* to distinct exit codes without
// parsing message strings.
enum ErrorCode : int {
  kErrNone = 0,
  kErrUnreadable = 1,       // the file cannot be opened or read at the OS level
  kErrCorrupt = 2,          // bad magic, truncated section, invalid enum value
  kErrVersionMismatch = 3,  // a TSLATRC capture newer than this reader
  kErrUnknownOrigin = 4,    // ManifestForOrigin() has no resolution
};

// The footer's RuntimeStats fields, in declaration order — generated from
// the TESLA_RUNTIME_STATS X-macro in runtime/options.h, so a RuntimeStats
// counter cannot be added (or dropped) without the capture footer, the
// replay comparator, the CLI's stats dump and the metrics exposition all
// moving with it. `replay_compared` mirrors the X-macro's third column:
// ingestion-side and wall-clock counters are carried in the footer but a
// replay is not expected to reproduce them.
struct StatsField {
  const char* name;
  uint64_t runtime::RuntimeStats::* field;
  bool replay_compared;
};

inline constexpr StatsField kStatsFields[] = {
#define TESLA_STATS_FIELD(name, desc, replay) \
  {#name, &runtime::RuntimeStats::name, replay != 0},
    TESLA_RUNTIME_STATS(TESLA_STATS_FIELD)
#undef TESLA_STATS_FIELD
};

static_assert(sizeof(kStatsFields) / sizeof(kStatsFields[0]) ==
                  runtime::kRuntimeStatsFieldCount,
              "footer schema out of sync with RuntimeStats");

// v1/v2 captures carry exactly the first 14 RuntimeStats fields (the schema
// at the time those formats were current); v3 footers are self-describing —
// they lead with a field count, so future appends stay readable. The
// RuntimeStats X-macro may therefore only ever append.
inline constexpr size_t kLegacyFooterStatsFields = 14;
static_assert(runtime::kRuntimeStatsFieldCount >= kLegacyFooterStatsFields,
              "RuntimeStats fields may be appended, never removed");

// The subset of RuntimeOptions that changes replay semantics.
struct CaptureOptions {
  bool lazy_init = true;
  bool use_dfa = false;
  bool instance_index = true;
  uint64_t instances_per_context = 256;
  uint64_t global_shards = 8;
};

// What the original run observed; replay must reproduce it event for event.
struct SemanticSummary {
  uint64_t dropped = 0;  // capture-side drops (nonzero ⇒ replay may diverge)
  runtime::RuntimeStats stats;
  std::vector<std::pair<runtime::ViolationKind, std::string>> violations;
  // The capture run's metrics snapshot (v2, metrics_mode != off only).
  // Per-class counters and the transition-coverage table are deterministic
  // and replay-comparable; histograms are wall-clock and informational.
  bool has_metrics = false;
  metrics::Snapshot metrics;
  // The capture run's workload profile (v5, Runtime profiling on only).
  // Deterministic cells are replay-comparable; latency cells are wall-clock.
  bool has_profile = false;
  profile::Snapshot profile;
  // The capture's timestamp span (v6; present only when some record carried
  // a nonzero timestamp, i.e. a timed clause was registered or the producer
  // pre-stamped events). Replays inherit timestamps from the records
  // themselves; the span is a summary for tooling.
  bool has_timestamps = false;
  uint64_t ts_base_ns = 0;  // first nonzero record timestamp
  uint64_t ts_last_ns = 0;  // last nonzero record timestamp
};

class TraceWriter {
 public:
  TraceWriter() = default;
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // Writes the header, including the interner's current table.
  // `manifest_text` is the registered manifest serialised in the .tesla text
  // format (empty: the capture is not self-describing and replays only
  // against a resolvable origin).
  Status Open(const std::string& path, const std::string& origin,
              const CaptureOptions& options, const StringInterner& interner,
              const std::string& manifest_text = std::string());

  void Append(const TraceRecord& record);

  // Writes the end marker and footer, and closes the file.
  Status Finish(const SemanticSummary& summary);

 private:
  std::FILE* out_ = nullptr;
  uint64_t prev_seq_ = 0;
  uint64_t prev_ts_ = 0;   // ts delta base (record stream is seq-sorted)
  uint64_t base_ts_ = 0;   // first nonzero record timestamp seen
  uint64_t last_ts_ = 0;   // most recent nonzero record timestamp
  bool any_ts_ = false;
  std::vector<uint8_t> buffer_;
};

// A fully parsed capture.
struct TraceFile {
  uint32_t version = 0;
  std::string origin;
  CaptureOptions options;
  // The embedded manifest (v4; empty for older captures or writers with
  // nothing to embed). When present, replay prefers it over resolving
  // `origin` — the capture carries its own assertion set.
  std::string manifest_text;
  std::vector<std::string> symbols;  // index = symbol id in the capture process
  std::vector<TraceRecord> records;
  SemanticSummary summary;

  // Fails with an ErrorCode-tagged Error: kErrUnreadable (OS-level open or
  // read failure), kErrVersionMismatch (a TSLATRC file newer than this
  // reader), or kErrCorrupt (bad magic, truncated or invalid sections —
  // every length and enum field is validated before use).
  static Result<TraceFile> Read(const std::string& path);

  // Interns every embedded symbol into this process's interner and rewrites
  // record targets accordingly. Must run before Runtime::Register() so the
  // replaying dispatch plan covers every recorded symbol.
  void InternAndRemap();
};

}  // namespace tesla::trace

#endif  // TESLA_TRACE_FORMAT_H_
