#include "trace/forensics.h"

#include <algorithm>
#include <sstream>

#include "support/intern.h"

namespace tesla::trace {

SymbolResolver InternerResolver() {
  return [](uint32_t symbol) -> std::string {
    const StringInterner& interner = GlobalInterner();
    if (symbol < interner.size()) {
      return interner.Spelling(symbol);
    }
    return "sym#" + std::to_string(symbol);
  };
}

std::string DescribeRecord(const TraceRecord& record, const SymbolResolver& resolve) {
  std::ostringstream out;
  out << "#" << record.seq << " [ctx " << record.ctx << "] ";
  const auto kind = static_cast<runtime::EventKind>(record.kind);
  switch (kind) {
    case runtime::EventKind::kFunctionCall:
    case runtime::EventKind::kFunctionReturn: {
      out << (kind == runtime::EventKind::kFunctionCall ? "call " : "ret  ");
      out << resolve(record.target) << "(";
      for (uint8_t i = 0; i < record.count; i++) {
        out << (i == 0 ? "" : ", ") << record.values[i];
      }
      if ((record.flags & kFlagTruncated) != 0) {
        out << (record.count == 0 ? "..." : ", ...");
      }
      out << ")";
      if (kind == runtime::EventKind::kFunctionReturn) {
        out << " = " << record.return_value;
      }
      break;
    }
    case runtime::EventKind::kFieldStore:
      out << "store " << resolve(record.target) << " obj=" << record.values[0] << " "
          << record.values[1] << " -> " << record.values[2];
      break;
    case runtime::EventKind::kAssertionSite:
      out << "site  automaton#" << record.target;
      for (uint8_t i = 0; i < record.count; i++) {
        out << (i == 0 ? " " : ", ") << "v" << record.vars[i] << "=" << record.values[i];
      }
      break;
  }
  return out.str();
}

std::vector<TraceRecord> FilterRelevant(std::span<const TraceRecord> records,
                                        uint32_t class_id, std::span<const uint32_t> symbols,
                                        size_t max_events) {
  // Walk backwards so huge full-capture snapshots cost O(relevant tail), then
  // restore chronological order.
  std::vector<TraceRecord> relevant;
  for (size_t i = records.size(); i-- > 0 && relevant.size() < max_events;) {
    const TraceRecord& record = records[i];
    const auto kind = static_cast<runtime::EventKind>(record.kind);
    if (kind == runtime::EventKind::kAssertionSite) {
      if (record.target == class_id) {
        relevant.push_back(record);
      }
      continue;
    }
    if (std::find(symbols.begin(), symbols.end(), record.target) != symbols.end()) {
      relevant.push_back(record);
    }
  }
  std::reverse(relevant.begin(), relevant.end());
  return relevant;
}

std::string RenderBacktrace(const Snapshot& snapshot, const automata::Automaton& automaton,
                            uint32_t class_id, std::span<const uint32_t> symbols,
                            size_t max_events, const SymbolResolver& resolve) {
  std::vector<TraceRecord> relevant =
      FilterRelevant(snapshot.records, class_id, symbols, max_events);
  std::ostringstream out;
  out << "temporal backtrace for '" << automaton.name << "' (" << relevant.size()
      << " relevant of " << snapshot.produced << " recorded events";
  if (snapshot.dropped > 0) {
    out << ", " << snapshot.dropped << " outside the flight-recorder window";
  }
  out << "):\n";
  if (relevant.empty()) {
    out << "  (no relevant events recorded)\n";
    return out.str();
  }
  for (const TraceRecord& record : relevant) {
    out << "  " << DescribeRecord(record, resolve) << "\n";
  }
  return out.str();
}

}  // namespace tesla::trace
