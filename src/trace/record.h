// tesla::trace — the flight-recorder record (paper §"Debugging with TESLA").
//
// A bare "assertion failed in state 4" is nearly useless without the event
// history that drove the automaton there; trace-based assertion checking
// treats the recorded trace as the first-class artifact. TraceRecord is the
// unit of that artifact: a runtime::Event plus the provenance replay and
// forensics need — the originating context and a global monotonic sequence
// number that totally orders events across all contexts.
//
// The record is trivially copyable and exactly a whole number of 64-bit
// words, so the SPSC ring can publish it as a burst of relaxed atomic word
// stores (wait-free, tear-detectable) and the binary format can varint-pack
// it field by field.
#ifndef TESLA_TRACE_RECORD_H_
#define TESLA_TRACE_RECORD_H_

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "runtime/event.h"

namespace tesla::trace {

// How much the runtime records on the OnEvent hot path.
enum class TraceMode : uint8_t {
  kOff = 0,             // no recording; the recorder is never constructed
  kFlightRecorder = 1,  // per-context SPSC rings, oldest records overwritten
  kFullCapture = 2,     // unbounded per-context logs for trace-file capture
};

const char* TraceModeName(TraceMode mode);

struct TraceRecord {
  uint64_t seq = 0;    // global monotonic sequence (total order across rings)
  uint64_t ts_ns = 0;  // event timestamp (0: capture predates timed clauses)
  uint32_t ctx = 0;    // originating context id (recorder-assigned, dense)
  uint32_t target = 0; // function/field symbol; assertion site: automaton id
  int64_t return_value = 0;
  int64_t values[runtime::kMaxEventArgs] = {};
  uint16_t vars[runtime::kMaxEventArgs] = {};
  uint8_t kind = 0;    // runtime::EventKind
  uint8_t count = 0;   // live entries in values[] (and vars[] for sites)
  uint8_t flags = 0;   // kFlagTruncated
  uint8_t reserved[5] = {};
};

inline constexpr uint8_t kFlagTruncated = 0x1;

inline constexpr size_t kRecordWords = sizeof(TraceRecord) / sizeof(uint64_t);
static_assert(sizeof(TraceRecord) % sizeof(uint64_t) == 0,
              "ring slots are published as whole 64-bit words");
static_assert(std::is_trivially_copyable_v<TraceRecord>);

inline TraceRecord MakeRecord(uint64_t seq, uint32_t ctx, const runtime::Event& event) {
  TraceRecord record;
  record.seq = seq;
  record.ts_ns = event.ts_ns;
  record.ctx = ctx;
  record.target = event.target;
  record.return_value = event.return_value;
  record.kind = static_cast<uint8_t>(event.kind);
  record.count = event.count;
  record.flags = event.truncated ? kFlagTruncated : 0;
  std::memcpy(record.values, event.values, sizeof(record.values));
  std::memcpy(record.vars, event.vars, sizeof(record.vars));
  return record;
}

inline runtime::Event ToEvent(const TraceRecord& record) {
  runtime::Event event;
  event.kind = static_cast<runtime::EventKind>(record.kind);
  event.count = record.count;
  event.truncated = (record.flags & kFlagTruncated) != 0;
  event.target = record.target;
  event.ts_ns = record.ts_ns;
  event.return_value = record.return_value;
  std::memcpy(event.values, record.values, sizeof(event.values));
  std::memcpy(event.vars, record.vars, sizeof(event.vars));
  return event;
}

}  // namespace tesla::trace

#endif  // TESLA_TRACE_RECORD_H_
