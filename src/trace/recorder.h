// The flight recorder: per-context trace logs behind one global sequence.
//
// The Runtime owns one Recorder (when RuntimeOptions::trace_mode is not off);
// every ThreadContext registers itself at construction and receives a
// ContextLog it writes through on the OnEvent hot path. ContextLogs outlive
// their contexts — simulated threads come and go, but their history must
// survive until the capture is written or a violation is dissected.
//
// Two recording modes:
//  * flight recorder — each context writes its SPSC ring; the last
//    ring-capacity events per context are always available, older history is
//    overwritten (and the loss accounted). The write is wait-free.
//  * full capture — each context appends to an unbounded (capped by
//    `capture_limit`) log under a per-context spinlock; nothing is lost, and
//    the harvest is the byte-exact input for the binary trace writer.
//
// Harvest() freezes a view without stopping writers: it stamps a new harvest
// epoch, collects every log (ring harvest or capture copy), merges across
// contexts and sorts by the global sequence. Concurrent writers keep writing;
// records that race the harvest are dropped from the snapshot and counted,
// never torn.
#ifndef TESLA_TRACE_RECORDER_H_
#define TESLA_TRACE_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/event.h"
#include "support/spinlock.h"
#include "trace/record.h"
#include "trace/ring.h"

namespace tesla::trace {

struct TraceConfig {
  TraceMode mode = TraceMode::kFlightRecorder;
  size_t ring_capacity = 4096;      // per-context, flight-recorder mode
  size_t capture_limit = 1 << 20;   // per-context record cap, full capture
};

// One context's recording state. Created by Recorder::RegisterContext and
// owned by the Recorder for its whole lifetime.
class ContextLog {
 public:
  // Full capture never reads the ring, so it gets the minimum allocation.
  ContextLog(uint32_t id, const TraceConfig& config)
      : id_(id), ring_(config.mode == TraceMode::kFullCapture ? 0 : config.ring_capacity) {}

  uint32_t id() const { return id_; }

 private:
  friend class Recorder;

  uint32_t id_;
  TraceRing ring_;
  mutable Spinlock capture_lock_;
  std::vector<TraceRecord> capture_;
  uint64_t capture_dropped_ = 0;
};

// A frozen view of all per-context histories, merged and sequence-ordered.
struct Snapshot {
  uint64_t epoch = 0;     // harvest epoch (monotone per recorder)
  uint64_t produced = 0;  // records ever recorded, all contexts
  uint64_t dropped = 0;   // overwritten + torn + capture-cap drops
  std::vector<TraceRecord> records;
};

class Recorder {
 public:
  explicit Recorder(TraceConfig config) : config_(config) {}

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  TraceMode mode() const { return config_.mode; }
  const TraceConfig& config() const { return config_; }

  // Thread-safe; the returned log stays valid for the Recorder's lifetime.
  ContextLog* RegisterContext() {
    LockGuard<Spinlock> guard(registry_lock_);
    logs_.push_back(std::make_unique<ContextLog>(static_cast<uint32_t>(logs_.size()), config_));
    return logs_.back().get();
  }

  // The hot path: one relaxed fetch_add for the global order, then either a
  // wait-free ring push (flight recorder) or a locked append (full capture).
  void Record(ContextLog& log, const runtime::Event& event) {
    const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
    const TraceRecord record = MakeRecord(seq, log.id_, event);
    if (config_.mode == TraceMode::kFullCapture) {
      LockGuard<Spinlock> guard(log.capture_lock_);
      if (log.capture_.size() < config_.capture_limit) {
        log.capture_.push_back(record);
      } else {
        log.capture_dropped_++;
      }
      return;
    }
    log.ring_.Push(record);
  }

  Snapshot Harvest() const;

  uint64_t records_produced() const { return seq_.load(std::memory_order_relaxed); }

 private:
  TraceConfig config_;
  std::atomic<uint64_t> seq_{0};
  mutable std::atomic<uint64_t> epoch_{0};
  mutable Spinlock registry_lock_;
  std::vector<std::unique_ptr<ContextLog>> logs_;
};

}  // namespace tesla::trace

#endif  // TESLA_TRACE_RECORDER_H_
