// Capture origins: mapping the origin string embedded in a trace file back to
// the assertion manifest the capture was recorded against.
//
// A capture is only replayable if the fresh Runtime registers the same
// automata the recording Runtime had; the origin string ("kernelsim:all",
// "sslsim:fetch", "objsim:gui") names that manifest without serialising it.
// This lives in the replay library (not the trace core) because resolving an
// origin drags in the simulators.
#ifndef TESLA_TRACE_ORIGINS_H_
#define TESLA_TRACE_ORIGINS_H_

#include <string>
#include <vector>

#include "automata/manifest.h"
#include "support/result.h"

namespace tesla::trace {

// Resolves `origin` to its manifest. Known origins:
//   kernelsim:all | kernelsim:mac | kernelsim:proc | kernelsim:test
//   sslsim:fetch
//   objsim:gui
//   file:<path>   — a serialised .tesla manifest on disk (teslac analyse /
//                   teslac run --emit-manifest / tesla-trace emit-manifest),
//                   so user assertion sets replay with no built-in manifest
// Failures carry an ErrorCode (trace/format.h): kErrUnknownOrigin for an
// unresolvable name, kErrUnreadable/kErrCorrupt for a file: path that cannot
// be opened or parsed.
Result<automata::Manifest> ManifestForOrigin(const std::string& origin);

// The built-in origins ManifestForOrigin() accepts (for CLI help and error
// messages; the `file:<path>` form is additionally always accepted).
std::vector<std::string> KnownOrigins();

}  // namespace tesla::trace

#endif  // TESLA_TRACE_ORIGINS_H_
