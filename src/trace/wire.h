// Shared wire primitives for TESLA's binary interchange surfaces.
//
// The TSLATRC capture format (trace/format.cc) and the shared-memory
// transport's embedded symbol table (src/ipc) speak the same low-level
// vocabulary: LEB128 varints, zigzag-coded signed values, and
// length-prefixed strings. Both read *untrusted* bytes — a capture handed to
// `tesla-trace merge` or a shm segment created by another process — so the
// single reader here is bounds-checked on every access: a truncated or
// bit-flipped input can only ever set `failed`, never index out of bounds.
//
// Cursor discipline: every accessor returns false and latches `failed` on
// exhaustion; callers may batch several reads and test `failed` once, since
// a failed cursor never advances past `size` and subsequent reads keep
// failing. Length fields must still be validated against the *remaining*
// input by the caller before trusting them for allocation (see
// Cursor::FitsRemaining).
#ifndef TESLA_TRACE_WIRE_H_
#define TESLA_TRACE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tesla::trace {

inline void PutVarint(std::vector<uint8_t>& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

inline uint64_t Zigzag(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
}

inline int64_t Unzigzag(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

inline void PutString(std::vector<uint8_t>& out, const std::string& text) {
  PutVarint(out, text.size());
  out.insert(out.end(), text.begin(), text.end());
}

// Bounds-checked sequential reader over a loaded byte buffer.
struct Cursor {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  bool failed = false;

  size_t remaining() const { return failed ? 0 : size - pos; }

  // Sanity bound for count fields: a collection of `count` elements, each at
  // least `min_bytes_each` bytes on the wire, cannot outnumber the bytes
  // left to read. Rejecting early keeps a flipped count byte from turning
  // into a multi-gigabyte resize before the per-element reads fail.
  bool FitsRemaining(uint64_t count, size_t min_bytes_each = 1) {
    if (failed || count > remaining() / (min_bytes_each == 0 ? 1 : min_bytes_each)) {
      failed = true;
      return false;
    }
    return true;
  }

  bool Varint(uint64_t* value) {
    uint64_t result = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos >= size) {
        failed = true;
        return false;
      }
      const uint8_t byte = data[pos++];
      result |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        *value = result;
        return true;
      }
    }
    failed = true;  // > 10 continuation bytes: not a valid LEB128 uint64
    return false;
  }

  bool Byte(uint8_t* value) {
    if (pos >= size) {
      failed = true;
      return false;
    }
    *value = data[pos++];
    return true;
  }

  bool String(std::string* text) {
    uint64_t length = 0;
    if (!Varint(&length) || size - pos < length) {
      failed = true;
      return false;
    }
    text->assign(reinterpret_cast<const char*>(data + pos), static_cast<size_t>(length));
    pos += static_cast<size_t>(length);
    return true;
  }
};

}  // namespace tesla::trace

#endif  // TESLA_TRACE_WIRE_H_
