#include "trace/origins.h"

#include <cstdio>

#include "kernelsim/assertions.h"
#include "objsim/appkit.h"
#include "objsim/trace.h"
#include "sslsim/fetch.h"
#include "trace/format.h"

namespace tesla::trace {
namespace {

// file:<path> — a serialised .tesla manifest on disk.
Result<automata::Manifest> ManifestFromFile(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Error{"cannot open manifest file '" + path + "'", 0, 0, kErrUnreadable};
  }
  std::string text;
  char chunk[1 << 14];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), in)) > 0) {
    text.append(chunk, got);
  }
  const bool read_error = std::ferror(in) != 0;
  std::fclose(in);
  if (read_error) {
    return Error{"I/O error while reading manifest '" + path + "'", 0, 0, kErrUnreadable};
  }
  Result<automata::Manifest> manifest = automata::Manifest::Deserialize(text);
  if (!manifest.ok()) {
    Error error = manifest.error();
    error.message = "manifest '" + path + "': " + error.message;
    error.code = kErrCorrupt;
    return error;
  }
  return manifest;
}

}  // namespace

Result<automata::Manifest> ManifestForOrigin(const std::string& origin) {
  if (origin.rfind("file:", 0) == 0) {
    return ManifestFromFile(origin.substr(5));
  }
  if (origin == "kernelsim:all") {
    return kernelsim::KernelAssertions(kernelsim::kSetAll);
  }
  if (origin == "kernelsim:mac") {
    return kernelsim::KernelAssertions(kernelsim::kSetMac);
  }
  if (origin == "kernelsim:proc") {
    return kernelsim::KernelAssertions(kernelsim::kSetProc);
  }
  if (origin == "kernelsim:test") {
    return kernelsim::KernelAssertions(kernelsim::kSetTest);
  }
  if (origin == "sslsim:fetch") {
    return sslsim::FetchAssertions();
  }
  if (origin == "objsim:gui") {
    // The GUI manifest is derived from the instrumented selector table, which
    // only depends on the AppKit build, not on any run-time state.
    objsim::ObjcRuntime objc(objsim::TraceMode::kTesla);
    objsim::AppKit app(objc, objsim::AppKitConfig{});
    return objsim::GuiManifest(app);
  }
  std::string known;
  for (const std::string& name : KnownOrigins()) {
    known += known.empty() ? name : ", " + name;
  }
  return Error{"unknown capture origin '" + origin + "' (known: " + known +
                   ", or file:<manifest.tesla>)",
               0, 0, kErrUnknownOrigin};
}

std::vector<std::string> KnownOrigins() {
  return {"kernelsim:all",  "kernelsim:mac", "kernelsim:proc",
          "kernelsim:test", "sslsim:fetch",  "objsim:gui"};
}

}  // namespace tesla::trace
