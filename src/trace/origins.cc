#include "trace/origins.h"

#include "kernelsim/assertions.h"
#include "objsim/appkit.h"
#include "objsim/trace.h"
#include "sslsim/fetch.h"

namespace tesla::trace {

Result<automata::Manifest> ManifestForOrigin(const std::string& origin) {
  if (origin == "kernelsim:all") {
    return kernelsim::KernelAssertions(kernelsim::kSetAll);
  }
  if (origin == "kernelsim:mac") {
    return kernelsim::KernelAssertions(kernelsim::kSetMac);
  }
  if (origin == "kernelsim:proc") {
    return kernelsim::KernelAssertions(kernelsim::kSetProc);
  }
  if (origin == "kernelsim:test") {
    return kernelsim::KernelAssertions(kernelsim::kSetTest);
  }
  if (origin == "sslsim:fetch") {
    return sslsim::FetchAssertions();
  }
  if (origin == "objsim:gui") {
    // The GUI manifest is derived from the instrumented selector table, which
    // only depends on the AppKit build, not on any run-time state.
    objsim::ObjcRuntime objc(objsim::TraceMode::kTesla);
    objsim::AppKit app(objc, objsim::AppKitConfig{});
    return objsim::GuiManifest(app);
  }
  std::string known;
  for (const std::string& name : KnownOrigins()) {
    known += known.empty() ? name : ", " + name;
  }
  return Error{"unknown capture origin '" + origin + "' (known: " + known + ")"};
}

std::vector<std::string> KnownOrigins() {
  return {"kernelsim:all",  "kernelsim:mac", "kernelsim:proc",
          "kernelsim:test", "sslsim:fetch",  "objsim:gui"};
}

}  // namespace tesla::trace
