#include "trace/recorder.h"

#include <algorithm>

namespace tesla::trace {

const char* TraceModeName(TraceMode mode) {
  switch (mode) {
    case TraceMode::kOff:
      return "off";
    case TraceMode::kFlightRecorder:
      return "flight-recorder";
    case TraceMode::kFullCapture:
      return "full-capture";
  }
  return "?";
}

Snapshot Recorder::Harvest() const {
  Snapshot snapshot;
  snapshot.epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;

  // Freeze the registry membership; logs themselves are harvested without
  // stopping their producers.
  std::vector<ContextLog*> logs;
  {
    LockGuard<Spinlock> guard(registry_lock_);
    logs.reserve(logs_.size());
    for (const auto& log : logs_) {
      logs.push_back(log.get());
    }
  }

  for (ContextLog* log : logs) {
    if (config_.mode == TraceMode::kFullCapture) {
      LockGuard<Spinlock> guard(log->capture_lock_);
      snapshot.produced += log->capture_.size() + log->capture_dropped_;
      snapshot.dropped += log->capture_dropped_;
      snapshot.records.insert(snapshot.records.end(), log->capture_.begin(),
                              log->capture_.end());
      continue;
    }
    TraceRing::HarvestStats stats = log->ring_.Harvest(snapshot.records);
    snapshot.produced += stats.produced;
    snapshot.dropped += stats.overwritten + stats.torn;
  }

  std::sort(snapshot.records.begin(), snapshot.records.end(),
            [](const TraceRecord& a, const TraceRecord& b) { return a.seq < b.seq; });
  return snapshot;
}

}  // namespace tesla::trace
