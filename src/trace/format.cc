#include "trace/format.h"

#include <cstring>

#include "trace/wire.h"

namespace tesla::trace {
namespace {

constexpr uint8_t kEndMarker = 0xFF;

Error Corrupt(const std::string& path, const std::string& what) {
  return Error{"'" + path + "': " + what, 0, 0, kErrCorrupt};
}

}  // namespace

TraceWriter::~TraceWriter() {
  if (out_ != nullptr) {
    std::fclose(out_);
  }
}

Status TraceWriter::Open(const std::string& path, const std::string& origin,
                         const CaptureOptions& options, const StringInterner& interner,
                         const std::string& manifest_text) {
  out_ = std::fopen(path.c_str(), "wb");
  if (out_ == nullptr) {
    return Error{"cannot open trace file '" + path + "' for writing", 0, 0, kErrUnreadable};
  }
  buffer_.clear();
  buffer_.insert(buffer_.end(), kTraceMagic, kTraceMagic + sizeof(kTraceMagic));
  PutString(buffer_, origin);
  const uint8_t flags = static_cast<uint8_t>(options.lazy_init ? 1 : 0) |
                        static_cast<uint8_t>(options.use_dfa ? 2 : 0) |
                        static_cast<uint8_t>(options.instance_index ? 4 : 0);
  buffer_.push_back(flags);
  PutVarint(buffer_, options.instances_per_context);
  PutVarint(buffer_, options.global_shards);
  PutString(buffer_, manifest_text);
  PutVarint(buffer_, interner.size());
  for (Symbol symbol = 0; symbol < interner.size(); symbol++) {
    PutString(buffer_, interner.Spelling(symbol));
  }
  std::fwrite(buffer_.data(), 1, buffer_.size(), out_);
  prev_seq_ = 0;
  prev_ts_ = 0;
  base_ts_ = 0;
  last_ts_ = 0;
  any_ts_ = false;
  return Status::Ok();
}

void TraceWriter::Append(const TraceRecord& record) {
  buffer_.clear();
  buffer_.push_back(record.kind);
  buffer_.push_back(record.flags);
  PutVarint(buffer_, record.ctx);
  PutVarint(buffer_, record.seq - prev_seq_);
  prev_seq_ = record.seq;
  // Timestamps delta well within one context but interleave across contexts,
  // so the delta is signed (zigzag). Unstamped records (no timed clause
  // registered) encode a zero delta — one byte.
  PutVarint(buffer_, Zigzag(static_cast<int64_t>(record.ts_ns - prev_ts_)));
  prev_ts_ = record.ts_ns;
  if (record.ts_ns != 0) {
    if (!any_ts_) {
      base_ts_ = record.ts_ns;
      any_ts_ = true;
    }
    last_ts_ = record.ts_ns;
  }
  PutVarint(buffer_, record.target);
  buffer_.push_back(record.count);
  for (uint8_t i = 0; i < record.count; i++) {
    PutVarint(buffer_, Zigzag(record.values[i]));
  }
  if (static_cast<runtime::EventKind>(record.kind) == runtime::EventKind::kAssertionSite) {
    for (uint8_t i = 0; i < record.count; i++) {
      PutVarint(buffer_, record.vars[i]);
    }
  }
  if (static_cast<runtime::EventKind>(record.kind) == runtime::EventKind::kFunctionReturn) {
    PutVarint(buffer_, Zigzag(record.return_value));
  }
  std::fwrite(buffer_.data(), 1, buffer_.size(), out_);
}

Status TraceWriter::Finish(const SemanticSummary& summary) {
  buffer_.clear();
  buffer_.push_back(kEndMarker);
  PutVarint(buffer_, summary.dropped);
  // v3 footers are self-describing: the field count precedes the fields, so
  // a reader built before a future schema append can still parse the file.
  PutVarint(buffer_, runtime::kRuntimeStatsFieldCount);
  for (const StatsField& field : kStatsFields) {
    PutVarint(buffer_, summary.stats.*field.field);
  }
  PutVarint(buffer_, summary.violations.size());
  for (const auto& [kind, automaton] : summary.violations) {
    buffer_.push_back(static_cast<uint8_t>(kind));
    PutString(buffer_, automaton);
  }
  buffer_.push_back(summary.has_metrics ? 1 : 0);
  if (summary.has_metrics) {
    const metrics::Snapshot& snap = summary.metrics;
    buffer_.push_back(static_cast<uint8_t>(snap.mode));
    PutVarint(buffer_, snap.classes.size());
    for (const metrics::ClassSnapshot& cls : snap.classes) {
      PutString(buffer_, cls.name);
      for (size_t k = 0; k < metrics::kClassCounterCount; k++) {
        PutVarint(buffer_, cls.counters[k]);
      }
      PutVarint(buffer_, cls.transitions.size());
      for (const metrics::TransitionCoverage& transition : cls.transitions) {
        PutVarint(buffer_, transition.state);
        PutVarint(buffer_, transition.symbol);
        buffer_.push_back(transition.fired ? 1 : 0);
        PutString(buffer_, transition.description);
      }
    }
    if (snap.mode == metrics::MetricsMode::kFull) {
      for (size_t kind = 0; kind < metrics::kEventKinds; kind++) {
        const metrics::HistogramData& hist = snap.histograms[kind];
        PutVarint(buffer_, hist.count);
        PutVarint(buffer_, hist.sum_ns);
        uint64_t occupied = 0;
        for (uint64_t count : hist.buckets) {
          occupied += count != 0 ? 1 : 0;
        }
        PutVarint(buffer_, occupied);
        for (size_t bucket = 0; bucket < metrics::kHistogramBuckets; bucket++) {
          if (hist.buckets[bucket] != 0) {
            PutVarint(buffer_, bucket);
            PutVarint(buffer_, hist.buckets[bucket]);
          }
        }
      }
    }
  }
  buffer_.push_back(summary.has_profile ? 1 : 0);
  if (summary.has_profile) {
    const profile::Snapshot& prof = summary.profile;
    PutVarint(buffer_, prof.pool_capacity);
    PutVarint(buffer_, prof.pool_high_water);
    PutVarint(buffer_, prof.classes.size());
    for (const profile::ClassProfile& cls : prof.classes) {
      PutString(buffer_, cls.name);
      PutVarint(buffer_, cls.key_vars.size());
      for (uint16_t var : cls.key_vars) {
        PutVarint(buffer_, var);
      }
      // Cell count precedes the cells so the schema X-macro may append
      // without breaking older readers (same policy as the stats footer).
      PutVarint(buffer_, profile::kCellCount);
      for (size_t i = 0; i < profile::kCellCount; i++) {
        PutVarint(buffer_, cls.cells[i]);
      }
      for (size_t p = 0; p < profile::kMaxKeyVars; p++) {
        PutVarint(buffer_, cls.var_partial[p]);
      }
      for (size_t p = 0; p < profile::kMaxKeyVars; p++) {
        for (size_t w = 0; w < profile::kSketchWords; w++) {
          PutVarint(buffer_, cls.sketch[p][w]);
        }
      }
    }
  }
  // v6 timestamp footer: present only when some record carried a nonzero
  // timestamp. Self-describing field count, same append policy as the stats
  // footer — a reader discards fields a newer writer appended.
  buffer_.push_back(any_ts_ ? 1 : 0);
  if (any_ts_) {
    PutVarint(buffer_, 2);  // field count: base ts, last ts
    PutVarint(buffer_, base_ts_);
    PutVarint(buffer_, last_ts_);
  }
  std::fwrite(buffer_.data(), 1, buffer_.size(), out_);
  const bool ok = std::fflush(out_) == 0 && std::ferror(out_) == 0;
  std::fclose(out_);
  out_ = nullptr;
  if (!ok) {
    return Error{"I/O error while writing trace file"};
  }
  return Status::Ok();
}

Result<TraceFile> TraceFile::Read(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Error{"cannot open trace file '" + path + "'", 0, 0, kErrUnreadable};
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[1 << 16];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), in)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool read_error = std::ferror(in) != 0;
  std::fclose(in);
  if (read_error) {
    return Error{"I/O error while reading '" + path + "'", 0, 0, kErrUnreadable};
  }

  // "TSLATRC<digit>": v1–v3 files are still readable — v1 ends after the
  // violation list with no metrics section, v1/v2 carry the fixed legacy
  // stats footer instead of the self-describing one, and only v4 embeds a
  // manifest. A well-formed magic with a *newer* digit is a version
  // mismatch, reported as such (distinct exit code in the CLI) rather than
  // as corruption.
  if (bytes.size() < sizeof(kTraceMagic) ||
      std::memcmp(bytes.data(), kTraceMagic, sizeof(kTraceMagic) - 1) != 0) {
    return Corrupt(path, "not a TESLA trace capture (bad magic)");
  }
  if (bytes[7] < '1' || bytes[7] > '9') {
    return Corrupt(path, "not a TESLA trace capture (bad version byte)");
  }
  if (bytes[7] > '0' + kTraceVersion) {
    return Error{"'" + path + "' is a TSLATRC v" + std::string(1, bytes[7]) +
                     " capture; this build reads up to v" + std::to_string(kTraceVersion),
                 0, 0, kErrVersionMismatch};
  }

  TraceFile file;
  file.version = static_cast<uint32_t>(bytes[7] - '0');
  Cursor cursor{bytes.data(), bytes.size(), sizeof(kTraceMagic)};

  uint8_t flags = 0;
  uint64_t value = 0;
  cursor.String(&file.origin);
  cursor.Byte(&flags);
  if (!cursor.failed && (flags & ~uint8_t{7}) != 0) {
    return Corrupt(path, "invalid options flags");
  }
  file.options.lazy_init = (flags & 1) != 0;
  file.options.use_dfa = (flags & 2) != 0;
  file.options.instance_index = (flags & 4) != 0;
  cursor.Varint(&file.options.instances_per_context);
  cursor.Varint(&file.options.global_shards);
  if (file.version >= 4) {
    cursor.String(&file.manifest_text);
  }

  uint64_t symbol_count = 0;
  cursor.Varint(&symbol_count);
  if (!cursor.FitsRemaining(symbol_count)) {
    return Corrupt(path, "truncated trace header");
  }
  file.symbols.resize(static_cast<size_t>(symbol_count));
  for (auto& symbol : file.symbols) {
    cursor.String(&symbol);
  }
  if (cursor.failed) {
    return Corrupt(path, "truncated symbol table");
  }

  uint64_t seq = 0;
  uint64_t ts = 0;
  while (!cursor.failed) {
    uint8_t kind = 0;
    if (!cursor.Byte(&kind)) {
      return Corrupt(path, "trace stream ended without a footer");
    }
    if (kind == kEndMarker) {
      break;
    }
    if (kind > static_cast<uint8_t>(runtime::EventKind::kAssertionSite)) {
      return Corrupt(path, "corrupt record kind");
    }
    TraceRecord record;
    record.kind = kind;
    cursor.Byte(&record.flags);
    cursor.Varint(&value);
    record.ctx = static_cast<uint32_t>(value);
    cursor.Varint(&value);
    seq += value;
    record.seq = seq;
    if (file.version >= 6) {
      cursor.Varint(&value);
      ts = static_cast<uint64_t>(static_cast<int64_t>(ts) + Unzigzag(value));
      record.ts_ns = ts;
    }
    cursor.Varint(&value);
    record.target = static_cast<uint32_t>(value);
    cursor.Byte(&record.count);
    if (!cursor.failed && record.count > runtime::kMaxEventArgs) {
      return Corrupt(path, "corrupt record arity");
    }
    for (uint8_t i = 0; i < record.count; i++) {
      cursor.Varint(&value);
      record.values[i] = Unzigzag(value);
    }
    if (static_cast<runtime::EventKind>(kind) == runtime::EventKind::kAssertionSite) {
      for (uint8_t i = 0; i < record.count; i++) {
        cursor.Varint(&value);
        record.vars[i] = static_cast<uint16_t>(value);
      }
    }
    if (static_cast<runtime::EventKind>(kind) == runtime::EventKind::kFunctionReturn) {
      cursor.Varint(&value);
      record.return_value = Unzigzag(value);
    }
    if (cursor.failed) {
      return Corrupt(path, "truncated record");
    }
    file.records.push_back(record);
  }

  cursor.Varint(&file.summary.dropped);
  // v3+ footers lead with a field count; v1/v2 carry exactly the legacy
  // prefix of today's schema. Either way, fields we don't know about (a
  // capture from a newer build) are read and discarded, and fields the
  // capture predates stay zero.
  uint64_t footer_fields = kLegacyFooterStatsFields;
  if (file.version >= 3) {
    cursor.Varint(&footer_fields);
    if (!cursor.FitsRemaining(footer_fields)) {
      return Corrupt(path, "truncated footer");
    }
  }
  for (uint64_t i = 0; i < footer_fields; i++) {
    cursor.Varint(&value);
    if (i < runtime::kRuntimeStatsFieldCount) {
      file.summary.stats.*kStatsFields[i].field = value;
    }
  }
  uint64_t violation_count = 0;
  cursor.Varint(&violation_count);
  if (!cursor.FitsRemaining(violation_count, 2)) {  // kind byte + empty string
    return Corrupt(path, "truncated footer");
  }
  file.summary.violations.reserve(static_cast<size_t>(violation_count));
  for (uint64_t i = 0; i < violation_count; i++) {
    uint8_t kind = 0;
    std::string automaton;
    cursor.Byte(&kind);
    cursor.String(&automaton);
    if (cursor.failed) {
      return Corrupt(path, "truncated footer");
    }
    if (kind > static_cast<uint8_t>(runtime::ViolationKind::kRateExceeded)) {
      return Corrupt(path, "invalid violation kind");
    }
    file.summary.violations.emplace_back(static_cast<runtime::ViolationKind>(kind),
                                         std::move(automaton));
  }
  if (cursor.failed) {
    return Corrupt(path, "truncated footer");
  }

  if (file.version >= 2) {
    // The presence byte is mandatory in v2+ — a capture ending before it was
    // cut mid-footer, even though every field so far decoded cleanly.
    uint8_t has_metrics = 0;
    cursor.Byte(&has_metrics);
    if (cursor.failed) {
      return Corrupt(path, "truncated footer");
    }
    if (has_metrics > 1) {
      return Corrupt(path, "invalid metrics presence byte");
    }
    if (has_metrics != 0) {
      file.summary.has_metrics = true;
      metrics::Snapshot& snap = file.summary.metrics;
      snap.stats = file.summary.stats;
      uint8_t mode = 0;
      cursor.Byte(&mode);
      if (!cursor.failed && mode > static_cast<uint8_t>(metrics::MetricsMode::kFull)) {
        return Corrupt(path, "invalid metrics mode");
      }
      snap.mode = static_cast<metrics::MetricsMode>(mode);
      uint64_t class_count = 0;
      cursor.Varint(&class_count);
      // Every class carries at least a name length and its counter varints.
      if (!cursor.FitsRemaining(class_count, 1 + metrics::kClassCounterCount)) {
        return Corrupt(path, "truncated metrics section");
      }
      snap.classes.resize(static_cast<size_t>(class_count));
      for (metrics::ClassSnapshot& cls : snap.classes) {
        cursor.String(&cls.name);
        for (size_t k = 0; k < metrics::kClassCounterCount; k++) {
          cursor.Varint(&cls.counters[k]);
        }
        uint64_t transition_count = 0;
        cursor.Varint(&transition_count);
        // state + symbol + fired + description length: ≥ 4 bytes each.
        if (!cursor.FitsRemaining(transition_count, 4)) {
          return Corrupt(path, "truncated metrics section");
        }
        cls.transitions.resize(static_cast<size_t>(transition_count));
        for (metrics::TransitionCoverage& transition : cls.transitions) {
          uint8_t fired = 0;
          cursor.Varint(&value);
          transition.state = static_cast<uint32_t>(value);
          cursor.Varint(&value);
          transition.symbol = static_cast<uint16_t>(value);
          cursor.Byte(&fired);
          transition.fired = fired != 0;
          cursor.String(&transition.description);
        }
      }
      if (snap.mode == metrics::MetricsMode::kFull) {
        for (size_t kind = 0; kind < metrics::kEventKinds; kind++) {
          metrics::HistogramData& hist = snap.histograms[kind];
          cursor.Varint(&hist.count);
          cursor.Varint(&hist.sum_ns);
          uint64_t occupied = 0;
          cursor.Varint(&occupied);
          if (cursor.failed || occupied > metrics::kHistogramBuckets) {
            return Corrupt(path, "truncated metrics section");
          }
          for (uint64_t i = 0; i < occupied; i++) {
            uint64_t bucket = 0;
            cursor.Varint(&bucket);
            cursor.Varint(&value);
            if (bucket < metrics::kHistogramBuckets) {
              hist.buckets[bucket] = value;
            }
          }
        }
      }
      if (cursor.failed) {
        return Corrupt(path, "truncated metrics section");
      }
    }
  }

  if (file.version >= 5) {
    uint8_t has_profile = 0;
    cursor.Byte(&has_profile);
    if (cursor.failed) {
      return Corrupt(path, "truncated footer");
    }
    if (has_profile > 1) {
      return Corrupt(path, "invalid profile presence byte");
    }
    if (has_profile != 0) {
      file.summary.has_profile = true;
      profile::Snapshot& prof = file.summary.profile;
      cursor.Varint(&prof.pool_capacity);
      cursor.Varint(&prof.pool_high_water);
      uint64_t class_count = 0;
      cursor.Varint(&class_count);
      // Every class carries at least a name length, a key-var count, a cell
      // count, and the fixed partial/sketch words.
      const uint64_t min_class_bytes =
          3 + profile::kMaxKeyVars + profile::kMaxKeyVars * profile::kSketchWords;
      if (!cursor.FitsRemaining(class_count, min_class_bytes)) {
        return Corrupt(path, "truncated profile section");
      }
      prof.classes.resize(static_cast<size_t>(class_count));
      for (profile::ClassProfile& cls : prof.classes) {
        cursor.String(&cls.name);
        uint64_t key_var_count = 0;
        cursor.Varint(&key_var_count);
        if (cursor.failed || key_var_count > profile::kMaxKeyVars) {
          return Corrupt(path, "truncated profile section");
        }
        cls.key_vars.resize(static_cast<size_t>(key_var_count));
        for (uint16_t& var : cls.key_vars) {
          cursor.Varint(&value);
          var = static_cast<uint16_t>(value);
        }
        uint64_t cell_count = 0;
        cursor.Varint(&cell_count);
        if (!cursor.FitsRemaining(cell_count)) {
          return Corrupt(path, "truncated profile section");
        }
        // Cells a newer writer appended are read and discarded; cells the
        // capture predates stay zero.
        for (uint64_t i = 0; i < cell_count; i++) {
          cursor.Varint(&value);
          if (i < profile::kCellCount) {
            cls.cells[i] = value;
          }
        }
        for (size_t p = 0; p < profile::kMaxKeyVars; p++) {
          cursor.Varint(&cls.var_partial[p]);
        }
        for (size_t p = 0; p < profile::kMaxKeyVars; p++) {
          for (size_t w = 0; w < profile::kSketchWords; w++) {
            cursor.Varint(&cls.sketch[p][w]);
          }
        }
        if (cursor.failed) {
          return Corrupt(path, "truncated profile section");
        }
      }
    }
  }

  if (file.version >= 6) {
    uint8_t has_timestamps = 0;
    cursor.Byte(&has_timestamps);
    if (cursor.failed) {
      return Corrupt(path, "truncated footer");
    }
    if (has_timestamps > 1) {
      return Corrupt(path, "invalid timestamp presence byte");
    }
    if (has_timestamps != 0) {
      file.summary.has_timestamps = true;
      uint64_t ts_fields = 0;
      cursor.Varint(&ts_fields);
      if (!cursor.FitsRemaining(ts_fields)) {
        return Corrupt(path, "truncated timestamp section");
      }
      // Fields a newer writer appended are read and discarded (same policy
      // as the stats footer); fields the capture predates stay zero.
      for (uint64_t i = 0; i < ts_fields; i++) {
        cursor.Varint(&value);
        if (i == 0) {
          file.summary.ts_base_ns = value;
        } else if (i == 1) {
          file.summary.ts_last_ns = value;
        }
      }
      if (cursor.failed) {
        return Corrupt(path, "truncated timestamp section");
      }
    }
  }
  return file;
}

void TraceFile::InternAndRemap() {
  std::vector<uint32_t> remap(symbols.size());
  for (size_t i = 0; i < symbols.size(); i++) {
    remap[i] = InternString(symbols[i]);
  }
  for (TraceRecord& record : records) {
    if (static_cast<runtime::EventKind>(record.kind) == runtime::EventKind::kAssertionSite) {
      continue;  // site targets are automaton ids, not symbols
    }
    if (record.target < remap.size()) {
      record.target = remap[record.target];
    }
  }
}

}  // namespace tesla::trace
