// Violation forensics: turning a flight-recorder snapshot into the "temporal
// backtrace" a developer actually wants next to "assertion failed in state 4"
// (paper §"Debugging with TESLA"; fig. 8's per-instance lifecycles).
//
// The renderer is deliberately decoupled from the Runtime: it consumes a
// Snapshot, the violating automaton, and the class's relevant symbol set (the
// functions and fields its dispatch plan listens to), so it can run inside
// ReportViolation, in the tesla-trace CLI, and in tests without dragging the
// runtime into the trace library.
#ifndef TESLA_TRACE_FORENSICS_H_
#define TESLA_TRACE_FORENSICS_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "automata/automaton.h"
#include "trace/recorder.h"

namespace tesla::trace {

// Maps a symbol id to a printable name. The default resolver reads the
// process-wide interner and degrades to "sym#N" for ids it has never seen
// (e.g. when dumping a foreign trace file without remapping).
using SymbolResolver = std::function<std::string(uint32_t symbol)>;

SymbolResolver InternerResolver();

// One trace record, one line: "#17 [ctx 0] call  syscall(3, 0x2)".
std::string DescribeRecord(const TraceRecord& record, const SymbolResolver& resolve);

// The records relevant to `class_id`: function/field records naming one of
// `symbols`, plus assertion-site records targeting the class. Returns the
// most recent `max_events`, oldest first.
std::vector<TraceRecord> FilterRelevant(std::span<const TraceRecord> records,
                                        uint32_t class_id, std::span<const uint32_t> symbols,
                                        size_t max_events);

// The human-readable temporal backtrace: the relevant tail of `snapshot`,
// one DescribeRecord line per event, with drop accounting in the header.
std::string RenderBacktrace(const Snapshot& snapshot, const automata::Automaton& automaton,
                            uint32_t class_id, std::span<const uint32_t> symbols,
                            size_t max_events, const SymbolResolver& resolve);

}  // namespace tesla::trace

#endif  // TESLA_TRACE_FORENSICS_H_
