// Capture writing and deterministic event replay.
//
// A full-capture run's event history, semantic stats and violation sequence
// go into a trace file (WriteCapture); Replay() drives the same events —
// grouped into per-context batches, in global sequence order — through a
// fresh Runtime and checks that the semantics agree event for event.
//
// Determinism caveat: for single-threaded captures the reproduction is
// exact. A multi-threaded capture orders events by their OnEvent entry
// (the global sequence), which can differ from the order in which the
// original threads acquired the shard locks — replays of racy histories can
// legitimately diverge, and `SemanticSummary::dropped` > 0 (flight-recorder
// overwrites or capture-cap drops) makes divergence expected.
#ifndef TESLA_TRACE_REPLAY_H_
#define TESLA_TRACE_REPLAY_H_

#include <string>
#include <utility>
#include <vector>

#include "runtime/runtime.h"
#include "support/result.h"
#include "trace/format.h"

namespace tesla::trace {

// Serialises `rt`'s full-capture history plus its semantic summary to
// `path`. `origin` names the manifest (see trace/origins.h) a replayer must
// register. Fails unless rt was built with trace_mode = kFullCapture.
Status WriteCapture(const std::string& path, const std::string& origin,
                    const runtime::Runtime& rt);

struct ReplayResult {
  uint64_t events_replayed = 0;
  runtime::RuntimeStats stats;
  std::vector<std::pair<runtime::ViolationKind, std::string>> violations;
  bool matched = false;    // stats and violation sequence agree with the capture
  std::string divergence;  // per-field mismatch report ("" when matched)
  // When the capture embeds a metrics footer, the replay runs with counters
  // on and its snapshot lands here; per-class counters and transition
  // coverage are folded into the matched/divergence verdict (histograms are
  // wall-clock and never compared).
  metrics::Snapshot metrics;
  // When the capture embeds a profile section, the replay runs with
  // profiling on and its snapshot lands here; deterministic cells, partial
  // attribution and sketches are folded into the verdict (latency cells are
  // wall-clock and never compared).
  profile::Snapshot profile;
};

// RuntimeOptions reproducing the capture's semantics: the recorded
// semantics-bearing options, tracing off, and fail_stop off (a capture that
// reached its footer never aborted, so continuing past violations is
// equivalent — and required to compare complete runs).
runtime::RuntimeOptions ReplayOptions(const TraceFile& file);

// Replays `file` through `rt` — whose manifest must already be registered
// against a remapped file (TraceFile::InternAndRemap() before
// Runtime::Register()) — and compares stats and violations with the footer.
// Installs a temporary violation-collecting handler: `rt` must not process
// further events after this returns.
Result<ReplayResult> Replay(const TraceFile& file, runtime::Runtime& rt);

// Convenience: read `path`, obtain its manifest (the embedded v4 manifest
// when present, else the resolved origin — see trace/origins.h), build a
// matching Runtime and replay.
Result<ReplayResult> ReplayFile(const std::string& path);

}  // namespace tesla::trace

#endif  // TESLA_TRACE_REPLAY_H_
