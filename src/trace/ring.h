// A single-producer flight-recorder ring of TraceRecords.
//
// The producer is the one thread driving events through a ThreadContext; the
// consumer is a (possibly concurrent) snapshotter harvesting the ring after a
// violation. Writes are wait-free: serialise the record into the slot as
// relaxed 64-bit word stores, then publish the new head with one release
// store. The ring never blocks the producer — when full it overwrites the
// oldest record, and the overwritten history is accounted for at harvest.
//
// Harvest copies the window [head-capacity, head) without stopping the
// producer, then re-reads the head: any copied record whose slot the producer
// may have begun rewriting during the copy is discarded and counted as torn.
// A record at index i is rewritten only by the write of index i+capacity,
// which starts no earlier than the head reaching i+capacity — so records with
// i + capacity > head_after are guaranteed intact. No retries, no per-slot
// version words, and every load/store the two sides share is atomic.
#ifndef TESLA_TRACE_RING_H_
#define TESLA_TRACE_RING_H_

#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "trace/record.h"

namespace tesla::trace {

class TraceRing {
 public:
  explicit TraceRing(size_t capacity) {
    size_t rounded = 8;
    while (rounded < capacity) {
      rounded *= 2;
    }
    capacity_ = rounded;
    mask_ = rounded - 1;
    words_ = std::make_unique<std::atomic<uint64_t>[]>(capacity_ * kRecordWords);
  }

  size_t capacity() const { return capacity_; }

  // Producer side. Wait-free: word stores plus one release publish.
  void Push(const TraceRecord& record) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t words[kRecordWords];
    std::memcpy(words, &record, sizeof(record));
    std::atomic<uint64_t>* slot = &words_[(head & mask_) * kRecordWords];
    for (size_t i = 0; i < kRecordWords; i++) {
      slot[i].store(words[i], std::memory_order_relaxed);
    }
    head_.store(head + 1, std::memory_order_release);
  }

  struct HarvestStats {
    uint64_t produced = 0;     // records ever pushed
    uint64_t overwritten = 0;  // lost to wrap before the harvest began
    uint64_t torn = 0;         // discarded: possibly rewritten mid-copy
  };

  // Consumer side: appends the surviving window to `out`, oldest first.
  HarvestStats Harvest(std::vector<TraceRecord>& out) const {
    const uint64_t h1 = head_.load(std::memory_order_acquire);
    const uint64_t begin = h1 > capacity_ ? h1 - capacity_ : 0;

    std::vector<TraceRecord> copied;
    copied.reserve(static_cast<size_t>(h1 - begin));
    for (uint64_t i = begin; i < h1; i++) {
      uint64_t words[kRecordWords];
      const std::atomic<uint64_t>* slot = &words_[(i & mask_) * kRecordWords];
      for (size_t w = 0; w < kRecordWords; w++) {
        words[w] = slot[w].load(std::memory_order_relaxed);
      }
      TraceRecord record;
      std::memcpy(&record, words, sizeof(record));
      copied.push_back(record);
    }

    const uint64_t h2 = head_.load(std::memory_order_acquire);
    // Index i survives iff its overwriter (index i+capacity) had not started
    // when we finished: i + capacity > h2.
    const uint64_t valid_from = h2 >= capacity_ ? h2 - capacity_ + 1 : 0;

    HarvestStats stats;
    stats.produced = h1;
    stats.overwritten = begin;
    for (uint64_t i = begin; i < h1; i++) {
      if (i < valid_from) {
        stats.torn++;
        continue;
      }
      out.push_back(copied[static_cast<size_t>(i - begin)]);
    }
    return stats;
  }

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
  size_t capacity_ = 0;
  uint64_t mask_ = 0;
  std::atomic<uint64_t> head_{0};
};

}  // namespace tesla::trace

#endif  // TESLA_TRACE_RING_H_
